# Developer entry points. `make check` is the pre-merge gate: vet + build +
# race tests over the numeric hot paths, the observability/serving path, and
# the oracle-backed differential harness + a fuzz smoke pass over every fuzz
# target + the batched propagation benchmark with its metrics snapshot
# (results/BENCH_batch.json, results/BENCH_obs.prom) + smoke runs of the
# serving, registry, compiled-propagator, quantized-propagator, and
# sequence-path benchmarks (the last three diffed against their committed
# trajectories with tools/benchdiff).

.PHONY: check test fuzz bench bench-hooks bench-serve bench-registry bench-compile bench-quant bench-cluster bench-seq bench-sessions build

check:
	./tools/check.sh

build:
	go build ./...

test:
	go test ./...

# Longer fuzz cells than the check.sh smoke pass: run before touching the
# closed-form activation moments, the blocked kernels, or the serializer.
fuzz:
	go test -run NONE -fuzz 'FuzzPropagateVsOracle' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzBatchVsSequential' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzCompiledVsInterpreted' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzQuantizedVsFloat' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzExactVsOracle' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzConvVsOracle' -fuzztime 2m ./internal/proptest
	go test -run NONE -fuzz 'FuzzQMadd' -fuzztime 2m ./internal/tensor
	go test -run NONE -fuzz 'FuzzLoadModel' -fuzztime 2m ./internal/nn

bench:
	go test -run NONE -bench . -benchtime 2s .

# The instrumentation-overhead pair: PropagateBatch with nil hooks must stay
# within noise of the pre-instrumentation baseline recorded in
# internal/core/hooks_bench_test.go; the Hooked variant shows the cost of
# live callbacks.
bench-hooks:
	go test -run NONE -bench 'PropagateBatch(NilHooks|Hooked)' -benchtime 2s ./internal/core

# The serving benchmark: closed-loop clients at concurrency 1/8/64, coalesced
# vs per-request, recorded as results/BENCH_serve.json (the committed
# artifact; EXPERIMENTS.md documents the recorded run).
bench-serve:
	go run ./cmd/apds-bench -serve -results results

# The registry benchmark: serving through the model registry while route
# tables swap, versions hot-reload, and shadow traffic duplicates to a
# candidate, recorded as results/BENCH_registry.json (the committed artifact).
bench-registry:
	go run ./cmd/apds-bench -registry -results results

# The compiled-propagator benchmark: the load-time specialized program vs the
# interpreted path at batch 1/8/64 plus a hot-reload-while-serving
# measurement, recorded as results/BENCH_compile.json (the committed
# artifact). `tools/benchdiff` diffs a fresh run against it in check.sh.
bench-compile:
	go run ./cmd/apds-bench -compile -results results

# The quantized-propagator benchmark: the int8/int16 fixed-point path vs the
# float interpreted and compiled paths at batch 1/8/64, plus model-size and
# Edison cost-model projections, recorded as results/BENCH_quant.json (the
# committed artifact). `tools/benchdiff` diffs a fresh run against it in
# check.sh.
bench-quant:
	go run ./cmd/apds-bench -quant -results results

# The cluster benchmark: N replica processes behind the consistent-hash
# router under open-loop load — replica scaling at fixed offered load, node
# kill, rolling reload, and Zipf hot-key skew — recorded as
# results/BENCH_cluster.json (the committed artifact). check.sh runs a
# 2-replica smoke and diffs it against this file.
bench-cluster:
	go run ./cmd/apds-bench -cluster -results results

# The sequence benchmark: conv/RNN/GRU moment-propagation paths plus the
# exact-vs-PWL activation backend cost-parity measurement, recorded as
# results/BENCH_seq.json (the committed artifact). `tools/benchdiff` diffs a
# fresh run against it in check.sh.
bench-seq:
	go run ./cmd/apds-bench -seq -results results

# The session-fleet benchmark: 1M resident device sessions through the
# struct-of-arrays arena — create/ingest/window throughput, bytes per
# session, whole-fleet snapshot/restore with verdict continuity, and a full
# idle-eviction churn through the timing wheel — recorded as
# results/BENCH_stream.json (the committed artifact). check.sh runs a 20k
# smoke and diffs its rates against this file.
bench-sessions:
	go run ./cmd/apds-bench -sessions -results results
