# Developer entry points. `make check` is the pre-merge gate: vet + build +
# race tests over the numeric hot paths + the batched propagation benchmark
# (results/BENCH_batch.json).

.PHONY: check test bench build

check:
	./tools/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -run NONE -bench . -benchtime 2s .
