# Developer entry points. `make check` is the pre-merge gate: vet + build +
# race tests over the numeric hot paths and the observability/serving path +
# the batched propagation benchmark with its metrics snapshot
# (results/BENCH_batch.json, results/BENCH_obs.prom).

.PHONY: check test bench bench-hooks build

check:
	./tools/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -run NONE -bench . -benchtime 2s .

# The instrumentation-overhead pair: PropagateBatch with nil hooks must stay
# within noise of the pre-instrumentation baseline recorded in
# internal/core/hooks_bench_test.go; the Hooked variant shows the cost of
# live callbacks.
bench-hooks:
	go test -run NONE -bench 'PropagateBatch(NilHooks|Hooked)' -benchtime 2s ./internal/core
