# Developer entry points. `make check` is the pre-merge gate: vet + build +
# race tests over the numeric hot paths and the observability/serving path +
# the batched propagation benchmark with its metrics snapshot
# (results/BENCH_batch.json, results/BENCH_obs.prom) + a smoke run of the
# serving benchmark.

.PHONY: check test bench bench-hooks bench-serve build

check:
	./tools/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -run NONE -bench . -benchtime 2s .

# The instrumentation-overhead pair: PropagateBatch with nil hooks must stay
# within noise of the pre-instrumentation baseline recorded in
# internal/core/hooks_bench_test.go; the Hooked variant shows the cost of
# live callbacks.
bench-hooks:
	go test -run NONE -bench 'PropagateBatch(NilHooks|Hooked)' -benchtime 2s ./internal/core

# The serving benchmark: closed-loop clients at concurrency 1/8/64, coalesced
# vs per-request, recorded as results/BENCH_serve.json (the committed
# artifact; EXPERIMENTS.md documents the recorded run).
bench-serve:
	go run ./cmd/apds-bench -serve -results results
