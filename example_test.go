package apdeepsense_test

import (
	"fmt"
	"math/rand"

	apds "github.com/apdeepsense/apdeepsense"
)

// ExampleNew demonstrates the core workflow: train a dropout network and get
// a predictive distribution from one deterministic ApDeepSense pass.
func ExampleNew() {
	rng := rand.New(rand.NewSource(1))
	var data []apds.TrainSample
	for i := 0; i < 600; i++ {
		x := rng.Float64()
		data = append(data, apds.TrainSample{
			X: apds.Vector{x},
			Y: apds.Vector{3 * x},
		})
	}
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 1, Hidden: []int{16}, OutputDim: 1,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := apds.Fit(net, data, nil, apds.TrainConfig{
		Epochs: 30, BatchSize: 32, Seed: 2,
		Loss: apds.MSELoss(), Optimizer: apds.NewAdam(0.01),
	}); err != nil {
		fmt.Println(err)
		return
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	g, err := est.Predict(apds.Vector{0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("prediction near 1.5: %v, has uncertainty: %v\n",
		g.Mean[0] > 1.2 && g.Mean[0] < 1.8, g.Var[0] > 0)
	// Output: prediction near 1.5: true, has uncertainty: true
}

// ExampleNewEdison shows the device cost model comparing ApDeepSense against
// MCDrop-50 on the paper's 5-layer 512-wide architecture.
func ExampleNewEdison() {
	net, err := apds.NewNetwork(apds.NetworkConfig{
		InputDim: 16, Hidden: []int{512, 512, 512, 512}, OutputDim: 2,
		Activation: apds.ActReLU, OutputActivation: apds.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	est, err := apds.New(net, apds.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	mc, err := apds.NewMCDrop(net, 50, 0, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	dev := apds.NewEdison()
	saving := 1 - dev.TimeMillis(est.Cost())/dev.TimeMillis(mc.Cost())
	fmt.Printf("ApDeepSense saves > 90%% of MCDrop-50's modeled cost: %v\n", saving > 0.9)
	// Output: ApDeepSense saves > 90% of MCDrop-50's modeled cost: true
}

// ExampleBPEst shows generating one of the paper's synthetic IoT tasks.
func ExampleBPEst() {
	d, err := apds.BPEst(apds.DatasetSize{Train: 50, Val: 10, Test: 10, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(d.Name, d.InputDim, d.OutputDim, d.Unit)
	// Output: BPEst 250 250 mmHg
}
