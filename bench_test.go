// Benchmarks regenerating the paper's evaluation artifacts.
//
// One benchmark per table (Tables I–IV: estimator-grid evaluation over a
// task's test split) and per figure family (Figure 1's stochastic hidden-unit
// sampling, Figures 2–5's device cost model, Figures 6–9's tradeoff
// assembly), plus microbenchmarks of the hot primitives: the paper-scale
// forward pass, ApDeepSense moment propagation, MCDrop-k sampling, the
// truncated-Gaussian moment kernel, and the dense matmul.
//
// Model-quality benchmarks run at quick scale (models trained once per
// process); the system-cost benchmarks use the paper's exact 5-layer
// 512-wide architecture, where the measured wall-clock ratio between
// ApDeepSense and MCDrop-50 is the headline claim (§IV-E).
package apdeepsense_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/experiments"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// sharedRunner trains quick-scale models once per benchmark process.
var (
	runnerOnce sync.Once
	runner     *experiments.Runner
	runnerErr  error
)

func quickRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner, runnerErr = experiments.NewRunner(experiments.QuickScale)
	})
	if runnerErr != nil {
		b.Fatalf("runner: %v", runnerErr)
	}
	return runner
}

func benchmarkTable(b *testing.B, n int) {
	r := quickRunner(b)
	if _, err := r.Table(n); err != nil { // warm: trains + caches models
		b.Fatalf("warm table %d: %v", n, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1BPEst regenerates Table I (BPEst MAE + NLL grid).
func BenchmarkTable1BPEst(b *testing.B) { benchmarkTable(b, 1) }

// BenchmarkTable2NYCommute regenerates Table II (NYCommute MAE + NLL grid).
func BenchmarkTable2NYCommute(b *testing.B) { benchmarkTable(b, 2) }

// BenchmarkTable3GasSen regenerates Table III (GasSen MAE + NLL grid).
func BenchmarkTable3GasSen(b *testing.B) { benchmarkTable(b, 3) }

// BenchmarkTable4HHAR regenerates Table IV (HHAR ACC + NLL grid).
func BenchmarkTable4HHAR(b *testing.B) { benchmarkTable(b, 4) }

// BenchmarkFigure1HiddenUnits regenerates Figure 1 (hidden-unit output
// distributions of the 20-layer toy network).
func BenchmarkFigure1HiddenUnits(b *testing.B) {
	r := quickRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkFigure(b *testing.B, n int) {
	r := quickRunner(b)
	if _, err := r.Figure(n); err != nil {
		b.Fatalf("warm figure %d: %v", n, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2BPEstCost regenerates Figure 2 (BPEst time + energy bars).
func BenchmarkFigure2BPEstCost(b *testing.B) { benchmarkFigure(b, 2) }

// BenchmarkFigure3NYCommuteCost regenerates Figure 3.
func BenchmarkFigure3NYCommuteCost(b *testing.B) { benchmarkFigure(b, 3) }

// BenchmarkFigure4GasSenCost regenerates Figure 4.
func BenchmarkFigure4GasSenCost(b *testing.B) { benchmarkFigure(b, 4) }

// BenchmarkFigure5HHARCost regenerates Figure 5.
func BenchmarkFigure5HHARCost(b *testing.B) { benchmarkFigure(b, 5) }

// BenchmarkFigure6BPEstTradeoff regenerates Figure 6 (energy vs NLL).
func BenchmarkFigure6BPEstTradeoff(b *testing.B) { benchmarkFigure(b, 6) }

// BenchmarkFigure7NYCommuteTradeoff regenerates Figure 7.
func BenchmarkFigure7NYCommuteTradeoff(b *testing.B) { benchmarkFigure(b, 7) }

// BenchmarkFigure8GasSenTradeoff regenerates Figure 8.
func BenchmarkFigure8GasSenTradeoff(b *testing.B) { benchmarkFigure(b, 8) }

// BenchmarkFigure9HHARTradeoff regenerates Figure 9.
func BenchmarkFigure9HHARTradeoff(b *testing.B) { benchmarkFigure(b, 9) }

// paperNet builds the paper's 5-layer 512-wide architecture for the
// NYCommute dimensions (5 → 1).
func paperNet(b *testing.B, act nn.Activation) *nn.Network {
	b.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{512, 512, 512, 512}, OutputDim: 1,
		Activation: act, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return net
}

var paperInput = tensor.Vector{0.1, -0.5, 0.3, 1.2, -0.7}

// BenchmarkForwardPassReLU is one plain stochastic pass — the MCDrop unit of
// cost — at paper scale.
func BenchmarkForwardPassReLU(b *testing.B) {
	net := paperNet(b, nn.ActReLU)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ForwardSample(paperInput, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkApDeepSense(b *testing.B, act nn.Activation) {
	net := paperNet(b, act)
	est, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(paperInput); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApDeepSenseReLU is the full ApDeepSense pass at paper scale
// (exact 2-piece ReLU moments).
func BenchmarkApDeepSenseReLU(b *testing.B) { benchmarkApDeepSense(b, nn.ActReLU) }

// BenchmarkApDeepSenseTanh is the full ApDeepSense pass at paper scale
// (7-piece tanh approximation).
func BenchmarkApDeepSenseTanh(b *testing.B) { benchmarkApDeepSense(b, nn.ActTanh) }

func benchmarkMCDrop(b *testing.B, k int) {
	net := paperNet(b, nn.ActReLU)
	est, err := mcdrop.New(net, k, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(paperInput); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCDrop3 is MCDrop with 3 samples at paper scale.
func BenchmarkMCDrop3(b *testing.B) { benchmarkMCDrop(b, 3) }

// BenchmarkMCDrop10 is MCDrop with 10 samples at paper scale.
func BenchmarkMCDrop10(b *testing.B) { benchmarkMCDrop(b, 10) }

// BenchmarkMCDrop50 is MCDrop with 50 samples at paper scale — the
// comparison point of the headline 88.9%/90.0% savings claim.
func BenchmarkMCDrop50(b *testing.B) { benchmarkMCDrop(b, 50) }

// BenchmarkTruncatedMoments is the per-piece kernel of the activation
// moment propagation (eqs. 23–25).
func BenchmarkTruncatedMoments(b *testing.B) {
	var sink stats.PartialMoments
	for i := 0; i < b.N; i++ {
		sink = stats.TruncatedMoments(-0.5, 1.5, 0.3, 1.1)
	}
	_ = sink
}

// BenchmarkActivationMomentsTanh7 is the per-element moment propagation
// through the paper's 7-piece tanh approximation.
func BenchmarkActivationMomentsTanh7(b *testing.B) {
	f, err := piecewise.Tanh(7)
	if err != nil {
		b.Fatal(err)
	}
	var m, v float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, v = core.ActivationMoments(0.4, 0.8, f)
	}
	_, _ = m, v
}

// batchNet builds the 2-hidden-layer 256-unit network of the batched-path
// acceptance benchmark (5 → 256 → 256 → 1).
func batchNet(b *testing.B, act nn.Activation) *nn.Network {
	b.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: act, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return net
}

func batchBenchInputs(n int) []tensor.Vector {
	rng := rand.New(rand.NewSource(7))
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		v := make(tensor.Vector, 5)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		inputs[i] = v
	}
	return inputs
}

// benchmarkPropagateSequential is the per-sample baseline: the batch pushed
// through Propagate one vector at a time, as PredictBatch did before the
// matrix-level path existed. One benchmark op = one 64-sample batch.
func benchmarkPropagateSequential(b *testing.B, act nn.Activation, batch int) {
	prop, err := core.NewPropagator(batchNet(b, act), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inputs := batchBenchInputs(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range inputs {
			if _, err := prop.Propagate(x); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchmarkPropagateBatch is the batched matrix-level path over the same
// inputs. One benchmark op = one 64-sample batch, so ns/op is directly
// comparable with the sequential baseline.
func benchmarkPropagateBatch(b *testing.B, act nn.Activation, batch int) {
	prop, err := core.NewPropagator(batchNet(b, act), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	inputs := batchBenchInputs(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prop.PropagateBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateSequential64ReLU vs BenchmarkPropagateBatch64ReLU is the
// acceptance pair: the batched path must be >= 2x the sequential loop at
// batch size 64 on the 2-hidden-layer 256-unit network.
func BenchmarkPropagateSequential64ReLU(b *testing.B) {
	benchmarkPropagateSequential(b, nn.ActReLU, 64)
}

// BenchmarkPropagateBatch64ReLU is the batched counterpart.
func BenchmarkPropagateBatch64ReLU(b *testing.B) { benchmarkPropagateBatch(b, nn.ActReLU, 64) }

// BenchmarkPropagateSequential64Tanh is the sequential baseline with the
// 7-piece tanh approximation, where activation moments dominate.
func BenchmarkPropagateSequential64Tanh(b *testing.B) {
	benchmarkPropagateSequential(b, nn.ActTanh, 64)
}

// BenchmarkPropagateBatch64Tanh is the batched counterpart.
func BenchmarkPropagateBatch64Tanh(b *testing.B) { benchmarkPropagateBatch(b, nn.ActTanh, 64) }

// BenchmarkDenseMatMul64x512 is the blocked matrix–matrix kernel feeding the
// batched path, directly comparable (per 64 rows) with 64 MulVecInto calls.
func BenchmarkDenseMatMul64x512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.NewMatrix(512, 512)
	w.RandomNormal(rng, 0, 1)
	x := tensor.NewMatrix(64, 512)
	x.RandomNormal(rng, 0, 1)
	dst := tensor.NewMatrix(64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.MulInto(w, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseMatVec512 is the 512×512 dense kernel underlying every pass.
func BenchmarkDenseMatVec512(b *testing.B) {
	w := tensor.NewMatrix(512, 512)
	w.RandomNormal(rand.New(rand.NewSource(1)), 0, 1)
	x := make(tensor.Vector, 512)
	for i := range x {
		x[i] = rand.Float64()
	}
	dst := make(tensor.Vector, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulVecInto(x, dst)
	}
}
