module github.com/apdeepsense/apdeepsense

go 1.22
