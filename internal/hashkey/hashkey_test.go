package hashkey

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"testing"
)

// fmix64 is the reference finisher, applied to the stdlib FNV-1a sum. The
// package's manual FNV loop must be bit-identical to hash/fnv — this is what
// keeps the extracted hash exactly the one the registry's canary splitter
// shipped with (registry behavior must not change under the refactor).
func referenceHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func TestHash64MatchesStdlibFNV(t *testing.T) {
	keys := []string{"", "a", "ab", "request-1", "request-2", "zzzzzzzz",
		"device/0000", "device/0001", "\x00\xff", "日本語"}
	for i := 0; i < 1000; i++ {
		keys = append(keys, fmt.Sprintf("user-%d", i))
	}
	for _, k := range keys {
		if got, want := Hash64(k), referenceHash(k); got != want {
			t.Fatalf("Hash64(%q) = %#x, reference (stdlib fnv + fmix64) = %#x", k, got, want)
		}
	}
}

func TestFractionRangeAndDeterminism(t *testing.T) {
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		f := Fraction(k)
		if !(f >= 0 && f < 1) {
			t.Fatalf("Fraction(%q) = %v outside [0,1)", k, f)
		}
		if f != Fraction(k) {
			t.Fatalf("Fraction(%q) not deterministic", k)
		}
	}
}

// TestHash64Distribution buckets sequential human-style keys by their high
// bits: the clump FNV alone would produce. Each of 64 buckets should hold
// ~1/64 of the keys; a chi-squared-style bound catches gross skew.
func TestHash64Distribution(t *testing.T) {
	const (
		n       = 1 << 17
		buckets = 64
	)
	prefixes := []string{"user-", "device/", "req", ""}
	for _, prefix := range prefixes {
		var counts [buckets]int
		for i := 0; i < n; i++ {
			h := Hash64(fmt.Sprintf("%s%d", prefix, i))
			counts[h>>(64-6)]++
		}
		mean := float64(n) / buckets
		for b, c := range counts {
			dev := math.Abs(float64(c)-mean) / mean
			// 4σ for a binomial with p=1/64: σ/mean = sqrt((1-p)/(n·p)) ≈ 2.2%.
			if dev > 0.10 {
				t.Errorf("prefix %q bucket %d holds %d keys, mean %.0f (%.1f%% off)",
					prefix, b, c, mean, 100*dev)
			}
		}
	}
}

// TestHash64Avalanche flips single input bits and checks that on average
// about half the 64 output bits flip — the property that makes short keys
// with a common prefix spread across the whole ring instead of clumping.
func TestHash64Avalanche(t *testing.T) {
	var flips, trials int
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%08d", i))
		base := Hash64(string(key))
		for bit := 0; bit < 8*len(key); bit++ {
			mutated := append([]byte(nil), key...)
			mutated[bit/8] ^= 1 << (bit % 8)
			flips += bits.OnesCount64(base ^ Hash64(string(mutated)))
			trials++
		}
		if trials > 50000 {
			break
		}
	}
	avg := float64(flips) / float64(trials)
	if avg < 30 || avg > 34 {
		t.Fatalf("average output bits flipped per input-bit flip = %.2f, want ~32", avg)
	}
}

func BenchmarkHash64(b *testing.B) {
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("device/%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash64(keys[i%len(keys)])
	}
}
