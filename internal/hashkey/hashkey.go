// Package hashkey is the request-key hash shared by every layer that
// partitions traffic by key: the registry's deterministic canary splitter and
// the cluster tier's consistent-hash ring. Both need the same property — a
// short, human-chosen key (a request ID, a device name, "user-42") must land
// uniformly on [0, 2^64) — and both must agree on the mapping, so a key that
// hashes to the canary side of a split on one node hashes the same way
// everywhere.
//
// The construction is FNV-1a followed by murmur3's fmix64 avalanche
// finisher. The finalizer matters: raw FNV of short keys leaves the high
// bits nearly constant (the trailing bytes only reach the low bits), so
// without it every short key would land on the same side of a weighted
// split, and ring vnodes would clump. fmix64 makes every input bit flip
// every output bit with probability ~1/2 (see the avalanche test).
package hashkey

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 maps key to a uniformly distributed 64-bit value: FNV-1a over the
// bytes of key, finished with murmur3's fmix64 avalanche step. It is
// allocation-free and deterministic across processes (no per-process seed),
// which is what lets independent routers and replicas agree on key placement.
func Hash64(key string) uint64 {
	x := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= fnvPrime64
	}
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Fraction maps key to [0, 1) with 53 bits of precision: the weighted-split
// form of Hash64 (a canary weight w captures exactly the keys with
// Fraction < w).
func Fraction(key string) float64 {
	return float64(Hash64(key)>>11) / float64(1<<53)
}
