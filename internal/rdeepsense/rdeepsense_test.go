package rdeepsense

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func heteroData(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]train.Sample, n)
	for i := range out {
		x := 0.5 + rng.Float64()*2
		out[i] = train.Sample{
			X: tensor.Vector{x},
			Y: tensor.Vector{2*x + x*rng.NormFloat64()},
		}
	}
	return out
}

func regCfg() TrainConfig {
	return TrainConfig{
		Hidden: []int{24, 24}, Activation: nn.ActTanh, KeepProb: 0.95,
		Epochs: 40, BatchSize: 32, LearningRate: 0.01, Seed: 3,
	}
}

func TestTrainRegression(t *testing.T) {
	est, err := TrainRegression(heteroData(1200, 1), heteroData(200, 2), 1, 1, regCfg())
	if err != nil {
		t.Fatalf("TrainRegression: %v", err)
	}
	if est.Name() != "RDeepSense" {
		t.Errorf("Name = %q", est.Name())
	}
	if est.Task() != TaskRegression {
		t.Errorf("Task = %v", est.Task())
	}
	// Mean tracks 2x and std grows with x.
	g1, err := est.Predict(tensor.Vector{0.8})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := est.Predict(tensor.Vector{2.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g1.Mean[0]-1.6) > 0.5 {
		t.Errorf("mean(0.8) = %v, want ≈ 1.6", g1.Mean[0])
	}
	if math.Abs(g2.Mean[0]-4.4) > 0.7 {
		t.Errorf("mean(2.2) = %v, want ≈ 4.4", g2.Mean[0])
	}
	if g2.Var[0] <= g1.Var[0] {
		t.Errorf("variance should grow with x: %v vs %v", g1.Var[0], g2.Var[0])
	}
	// PredictProbs is an error for regression.
	if _, err := est.PredictProbs(tensor.Vector{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("PredictProbs err = %v, want ErrConfig", err)
	}
	// Cost is a single pass: far below 2 passes of the same net.
	if est.Cost().DenseFLOPs != est.Network().ForwardFLOPs()-est.Network().ForwardFLOPs()%1 {
		// DenseFLOPs counts only matmuls; just check it is positive and
		// consistent across calls.
	}
	if est.Cost().DenseFLOPs <= 0 {
		t.Error("cost should be positive")
	}
}

func TestTrainClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var data []train.Sample
	for i := 0; i < 500; i++ {
		cls := i % 3
		center := float64(cls)*3 - 3
		x := tensor.Vector{center + rng.NormFloat64()*0.6, rng.NormFloat64()}
		y := tensor.Vector{0, 0, 0}
		y[cls] = 1
		data = append(data, train.Sample{X: x, Y: y})
	}
	cfg := TrainConfig{
		Hidden: []int{16}, Activation: nn.ActReLU, KeepProb: 0.9,
		Epochs: 30, BatchSize: 16, LearningRate: 0.01, Seed: 5,
	}
	est, err := TrainClassification(data, nil, 2, 3, cfg)
	if err != nil {
		t.Fatalf("TrainClassification: %v", err)
	}
	correct := 0
	for _, s := range data {
		p, err := est.PredictProbs(s.X)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Sum()-1) > 1e-9 {
			t.Fatalf("probs sum to %v", p.Sum())
		}
		_, pi := p.Max()
		_, ti := s.Y.Max()
		if pi == ti {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.9 {
		t.Errorf("accuracy = %v, want >= 0.9", acc)
	}
	// Predict on a classifier returns logits with zero variance.
	g, err := est.Predict(data[0].X)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 3 {
		t.Errorf("Predict dim = %d", g.Dim())
	}
	for _, v := range g.Var {
		if v != 0 {
			t.Errorf("classifier Predict variance = %v, want 0", v)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	data := heteroData(10, 1)
	bad := regCfg()
	bad.Epochs = 0
	if _, err := TrainRegression(data, nil, 1, 1, bad); !errors.Is(err, ErrConfig) {
		t.Errorf("epochs err = %v", err)
	}
	bad = regCfg()
	bad.LearningRate = 0
	if _, err := TrainRegression(data, nil, 1, 1, bad); !errors.Is(err, ErrConfig) {
		t.Errorf("lr err = %v", err)
	}
	bad = regCfg()
	bad.Alpha = 2
	if _, err := TrainRegression(data, nil, 1, 1, bad); !errors.Is(err, ErrConfig) {
		t.Errorf("alpha err = %v", err)
	}
	if _, err := TrainRegression(data, nil, 0, 1, regCfg()); !errors.Is(err, ErrConfig) {
		t.Errorf("dim err = %v", err)
	}
}

func TestFromNetwork(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 2, Hidden: []int{4}, OutputDim: 6,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 outputs = regression with outDim 3 or classification with 6 classes.
	if _, err := FromNetwork(net, TaskRegression, 3); err != nil {
		t.Errorf("regression FromNetwork: %v", err)
	}
	if _, err := FromNetwork(net, TaskClassification, 6); err != nil {
		t.Errorf("classification FromNetwork: %v", err)
	}
	if _, err := FromNetwork(net, TaskRegression, 2); !errors.Is(err, ErrConfig) {
		t.Errorf("bad regression head err = %v", err)
	}
	if _, err := FromNetwork(net, TaskClassification, 3); !errors.Is(err, ErrConfig) {
		t.Errorf("bad classifier head err = %v", err)
	}
	if _, err := FromNetwork(net, Task(99), 3); !errors.Is(err, ErrConfig) {
		t.Errorf("bad task err = %v", err)
	}
}

func TestPredictLogVarClamp(t *testing.T) {
	// A network with huge weights produces extreme log-variances; Predict
	// must clamp them to finite variances.
	net, err := nn.New(nn.Config{
		InputDim: 1, Hidden: nil, OutputDim: 2,
		Activation: nn.ActIdentity, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Layers()[0].W.Set(0, 1, 1000) // logvar head = 1000*x
	est, err := FromNetwork(net, TaskRegression, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := est.Predict(tensor.Vector{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(g.Var[0], 0) || math.IsNaN(g.Var[0]) {
		t.Errorf("variance = %v, want clamped finite", g.Var[0])
	}
}
