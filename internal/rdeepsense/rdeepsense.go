// Package rdeepsense implements the RDeepSense baseline (the paper's
// reference [22]): an uncertainty-aware network obtained by *retraining*
// with a proper scoring rule. For regression the network carries a
// mean + log-variance head trained with the heteroscedastic Gaussian NLL
// (blended with MSE by a weight α, RDeepSense's bias-variance knob); for
// classification it is a dropout softmax classifier whose probabilities are
// read directly. The paper introduces RDeepSense as the quality upper bound
// achievable when retraining is allowed — precisely the requirement
// ApDeepSense removes.
package rdeepsense

import (
	"errors"
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// ErrConfig is returned (wrapped) for invalid configurations.
var ErrConfig = errors.New("rdeepsense: invalid configuration")

// Task selects the estimator head.
type Task int

// Supported tasks.
const (
	// TaskRegression uses a mean + log-variance output head.
	TaskRegression Task = iota + 1
	// TaskClassification uses a softmax head.
	TaskClassification
)

// Estimator is a retrained RDeepSense model. It implements core.Estimator.
type Estimator struct {
	net    *nn.Network
	task   Task
	outDim int // task output dimension (half the network output for regression)
}

var _ core.Estimator = (*Estimator)(nil)

// TrainConfig controls RDeepSense retraining.
type TrainConfig struct {
	// Hidden lists hidden-layer widths (matching the dropout network being
	// compared against).
	Hidden []int
	// Activation is the hidden activation.
	Activation nn.Activation
	// KeepProb is the dropout keep probability used during retraining.
	KeepProb float64
	// Alpha blends NLL (1) against MSE (0) for the regression head.
	// Zero defaults to 0.95.
	Alpha float64
	// Epochs, BatchSize, LearningRate, Seed parameterize optimization.
	Epochs       int
	BatchSize    int
	LearningRate float64
	Seed         int64
	// Logf, when non-nil, receives training progress lines.
	Logf func(format string, args ...any)
}

// TrainRegression retrains an RDeepSense regression model from scratch on
// the given data. inDim/outDim are the task's dimensions; the network output
// is 2·outDim (means then log-variances).
func TrainRegression(trainSet, valSet []train.Sample, inDim, outDim int, cfg TrainConfig) (*Estimator, error) {
	if err := validate(cfg, inDim, outDim); err != nil {
		return nil, err
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.95
	}
	net, err := nn.New(nn.Config{
		InputDim: inDim, Hidden: cfg.Hidden, OutputDim: 2 * outDim,
		Activation: cfg.Activation, OutputActivation: nn.ActIdentity,
		KeepProb: cfg.KeepProb, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("rdeepsense: build net: %w", err)
	}
	_, err = train.Fit(net, trainSet, valSet, train.Config{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Loss:              train.HeteroscedasticNLL{Alpha: alpha},
		Optimizer:         train.NewAdam(cfg.LearningRate),
		ClipNorm:          5,
		EarlyStopPatience: patience(valSet),
		Logf:              cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("rdeepsense: fit regression: %w", err)
	}
	return &Estimator{net: net, task: TaskRegression, outDim: outDim}, nil
}

// TrainClassification retrains an RDeepSense classifier from scratch.
func TrainClassification(trainSet, valSet []train.Sample, inDim, numClasses int, cfg TrainConfig) (*Estimator, error) {
	if err := validate(cfg, inDim, numClasses); err != nil {
		return nil, err
	}
	net, err := nn.New(nn.Config{
		InputDim: inDim, Hidden: cfg.Hidden, OutputDim: numClasses,
		Activation: cfg.Activation, OutputActivation: nn.ActIdentity,
		KeepProb: cfg.KeepProb, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("rdeepsense: build net: %w", err)
	}
	_, err = train.Fit(net, trainSet, valSet, train.Config{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: cfg.Seed,
		Loss:              train.SoftmaxCrossEntropy{},
		Optimizer:         train.NewAdam(cfg.LearningRate),
		ClipNorm:          5,
		EarlyStopPatience: patience(valSet),
		Logf:              cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("rdeepsense: fit classification: %w", err)
	}
	return &Estimator{net: net, task: TaskClassification, outDim: numClasses}, nil
}

// FromNetwork wraps an already-trained RDeepSense network (e.g. loaded from
// disk). For regression, net.OutputDim() must be 2·outDim.
func FromNetwork(net *nn.Network, task Task, outDim int) (*Estimator, error) {
	switch task {
	case TaskRegression:
		if net.OutputDim() != 2*outDim {
			return nil, fmt.Errorf("regression head %d, want %d: %w", net.OutputDim(), 2*outDim, ErrConfig)
		}
	case TaskClassification:
		if net.OutputDim() != outDim {
			return nil, fmt.Errorf("classifier head %d, want %d: %w", net.OutputDim(), outDim, ErrConfig)
		}
	default:
		return nil, fmt.Errorf("unknown task %d: %w", task, ErrConfig)
	}
	return &Estimator{net: net, task: task, outDim: outDim}, nil
}

func validate(cfg TrainConfig, inDim, outDim int) error {
	if inDim < 1 || outDim < 1 {
		return fmt.Errorf("dims %dx%d: %w", inDim, outDim, ErrConfig)
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LearningRate <= 0 {
		return fmt.Errorf("epochs=%d batch=%d lr=%v: %w", cfg.Epochs, cfg.BatchSize, cfg.LearningRate, ErrConfig)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return fmt.Errorf("alpha %v outside [0,1]: %w", cfg.Alpha, ErrConfig)
	}
	return nil
}

func patience(valSet []train.Sample) int {
	if len(valSet) == 0 {
		return 0
	}
	return 5
}

// Network returns the underlying trained network (for serialization).
func (e *Estimator) Network() *nn.Network { return e.net }

// Task returns the estimator's task type.
func (e *Estimator) Task() Task { return e.task }

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "RDeepSense" }

// Predict implements core.Estimator. For regression the network directly
// emits the predictive mean and log-variance; one deterministic forward pass.
func (e *Estimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	out, err := e.net.Forward(x)
	if err != nil {
		return core.GaussianVec{}, fmt.Errorf("rdeepsense: %w", err)
	}
	switch e.task {
	case TaskRegression:
		g := core.NewGaussianVec(e.outDim)
		for i := 0; i < e.outDim; i++ {
			g.Mean[i] = out[i]
			lv := math.Min(math.Max(out[e.outDim+i], -20), 20)
			g.Var[i] = math.Exp(lv)
		}
		return g, nil
	default:
		// Classification: logits as means, zero variance (uncertainty lives
		// in the softmax probabilities).
		g := core.GaussianVec{Mean: out.Clone(), Var: tensor.NewVector(len(out))}
		return g, nil
	}
}

// PredictProbs implements core.Estimator: the softmax of one deterministic
// forward pass.
func (e *Estimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	if e.task != TaskClassification {
		return nil, fmt.Errorf("PredictProbs on regression estimator: %w", ErrConfig)
	}
	out, err := e.net.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("rdeepsense: %w", err)
	}
	return core.Softmax(out), nil
}

// Cost implements core.Estimator: one deterministic forward pass (plus the
// exp over the variance head for regression).
func (e *Estimator) Cost() edison.Cost {
	c := core.ForwardPassCost(e.net)
	if e.task == TaskRegression {
		c.ElementOps += 8 * int64(e.outDim) // exp on the log-variance head
	}
	return c
}
