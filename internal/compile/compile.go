// Package compile specializes a whole network at load time into fused
// per-layer closures — a compiled batch propagator for internal/core.
//
// The interpreted batched path (core.Propagator.PropagateBatch) is already
// blocked and fused, but it re-derives per-layer facts on every call: it
// wraps scratch slices in Matrix headers, dispatches two generic MulInto
// calls per layer, re-reads the squared-weight matrix that lives apart from
// W, and sizes pooled scratch lazily. Compile pays those costs once per
// model instead:
//
//   - W and W² are packed into a single cache-blocked panel per layer,
//     interleaved row-by-row over the shared dimension, so the fused dual
//     matmul streams one contiguous buffer per k-block instead of two
//     matrices half a heap apart.
//   - The activation kernel, bias vector, next-layer keep probability, and
//     layer dimensions are baked into one closure per layer; the hot loop
//     has no interface calls, shape checks, or matrix-header construction.
//   - Scratch is sized exactly once, for the registered maximum batch, and
//     recycled through a fixed free list; the steady state allocates only
//     the result batch.
//   - The row-chunk plan for every batch size 1..maxBatch is precomputed,
//     so dispatch is a table lookup instead of per-call arithmetic.
//
// The compiled program is a specialization, not a reimplementation: every
// output element accumulates over the shared dimension in the same ascending
// order, through the same tensor.Axpy4 kernel, with the same zero-skips,
// bias adds, variance clamps, and core.ActKernel moment evaluations as the
// interpreted path. Outputs are therefore Float64bits-identical — a property
// gated by Program.Warm at install time and by internal/proptest over random
// networks, hostile inputs, and a fuzz corpus.
//
// One freedom the compiled path does take: its row-chunk plan is fixed at
// compile time, while the interpreted path re-reads GOMAXPROCS per call.
// Chunking only changes which rows share a 4-row register block, and a
// blocked accumulator that starts at +0 can never become −0 (x+(−0) = x and
// +0+(−0) = +0 in round-to-nearest), so for finite weight panels the chunk
// plan is invisible in the output bits. TestCompiledChunkPlanInvariance pins
// this.
package compile

import (
	"fmt"
	"runtime"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// span is one worker's half-open row range within a batch.
type span struct{ lo, hi int }

// Program is a network compiled for batches of at most MaxBatch rows. It
// implements core.CompiledBatch; install it with Propagator.SetCompiled
// after Warm succeeds. A Program is immutable after Compile and safe for
// concurrent RunBatch calls.
type Program struct {
	inDim, outDim int
	maxBatch      int
	// keep0 is the first layer's dropout keep probability, applied to the
	// input moments before layer 0 (for later layers the prep is fused into
	// the previous layer's activation sweep, inside each step closure).
	keep0 float64
	// steps holds one fused closure per layer: dual-panel matmul, bias add,
	// variance clamp, activation moments, and next-layer dropout prep.
	steps []func(sc *scratch, rows int)
	// plans[b] is the precomputed row-chunk plan for a b-row batch,
	// b in 1..maxBatch. plans[0] is unused (core returns empty batches
	// before dispatch).
	plans [][]span
	// free recycles scratch buffers; see getScratch.
	free chan *scratch
	// elems is the ping-pong panel length (largest chunk × widest layer);
	// nBounds the boundary-scratch length (largest knot count).
	elems, nBounds int
}

// Compile specializes p's network for batches of up to maxBatch rows. The
// worker fan-out rule and 4-row chunk rounding mirror the interpreted path,
// resolved once against the propagator's worker bound (or GOMAXPROCS) at
// compile time. Compile is pure precomputation — it never touches the
// serving path and can run concurrently with traffic on p.
func Compile(p *core.Propagator, maxBatch int) (*Program, error) {
	if p == nil {
		return nil, fmt.Errorf("compile: nil propagator")
	}
	if maxBatch < 1 {
		return nil, fmt.Errorf("compile: max batch %d, want >= 1", maxBatch)
	}
	net := p.Network()
	layers := net.Layers()
	pg := &Program{
		inDim:    net.InputDim(),
		outDim:   net.OutputDim(),
		maxBatch: maxBatch,
		keep0:    layers[0].KeepProb,
		nBounds:  p.MaxBounds(),
		plans:    make([][]span, maxBatch+1),
	}

	workers := p.Workers()
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxChunk, maxSpans := 0, 0
	for b := 1; b <= maxBatch; b++ {
		plan := chunkPlan(b, workers)
		pg.plans[b] = plan
		if n := len(plan); n > maxSpans {
			maxSpans = n
		}
		for _, s := range plan {
			if rows := s.hi - s.lo; rows > maxChunk {
				maxChunk = rows
			}
		}
	}
	pg.elems = maxChunk * p.MaxLayerDim()

	// Pre-fill the free list with one scratch per concurrent chunk; the
	// channel holds twice that so a second in-flight batch recycles instead
	// of allocating. Steady state is allocation-free either way.
	pg.free = make(chan *scratch, 2*maxSpans)
	for i := 0; i < maxSpans; i++ {
		pg.free <- pg.newScratch()
	}

	for li := range layers {
		l := layers[li]
		nextKeep := 0.0
		last := li == len(layers)-1
		if !last {
			nextKeep = layers[li+1].KeepProb
		}
		pg.steps = append(pg.steps, makeStep(
			p.Kernel(li), packPanel(l.W),
			append([]float64(nil), l.B...),
			l.InDim(), l.OutDim(), nextKeep, last,
		))
	}
	return pg, nil
}

// MaxBatch reports the largest batch the program was specialized for.
func (pg *Program) MaxBatch() int { return pg.maxBatch }

// InputDim reports the compiled network's input dimension.
func (pg *Program) InputDim() int { return pg.inDim }

// OutputDim reports the compiled network's output dimension.
func (pg *Program) OutputDim() int { return pg.outDim }

// chunkPlan reproduces the interpreted path's fan-out for a b-row batch
// under the given worker bound: at least core.MinRowsPerWorker rows per
// worker, chunks rounded up to a multiple of 4 so every worker but the last
// stays on the 4-row register-blocked fast path.
func chunkPlan(b, workerBound int) []span {
	workers := workerBound
	if max := (b + core.MinRowsPerWorker - 1) / core.MinRowsPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		return []span{{0, b}}
	}
	chunk := (b + workers - 1) / workers
	if chunk%4 != 0 {
		chunk += 4 - chunk%4
	}
	plan := make([]span, 0, workers)
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		plan = append(plan, span{lo, hi})
	}
	return plan
}

// packPanel lays W and W² out as one interleaved panel: for each row kk of
// the shared dimension, the nOut weights followed by their squares. The
// fused dual matmul then touches one contiguous 2·nOut stripe per k-step —
// both moments' weights arrive on the same cache lines — while each output
// element still sees exactly the values MulInto would have read (the squares
// are the same x*x the Propagator precomputes via Matrix.Square).
func packPanel(w *tensor.Matrix) []float64 {
	nIn, nOut := w.Rows, w.Cols
	panel := make([]float64, 2*nIn*nOut)
	for kk := 0; kk < nIn; kk++ {
		row := w.Data[kk*nOut : (kk+1)*nOut]
		dst := panel[kk*2*nOut:]
		for j, wj := range row {
			dst[j] = wj
			dst[nOut+j] = wj * wj
		}
	}
	return panel
}

// makeStep bakes one layer into a fused closure: dual-panel matmul into the
// ping-pong scratch, then one sweep doing bias add, variance clamp,
// activation moments, and (for all but the last layer) the next layer's
// dropout prep — the same element-wise operation sequence as the interpreted
// propagateRows, with every per-layer fact captured as a constant.
func makeStep(ak *core.ActKernel, panel, bias []float64, nIn, nOut int, nextKeep float64, last bool) func(sc *scratch, rows int) {
	return func(sc *scratch, rows int) {
		outMu := sc.nxtMu[:rows*nOut]
		outVa := sc.nxtVar[:rows*nOut]
		fusedDualMul(panel, sc.curMu[:rows*nIn], sc.curVar[:rows*nIn], outMu, outVa, rows, nIn, nOut)
		for r := 0; r < rows; r++ {
			o := outMu[r*nOut : (r+1)*nOut]
			v := outVa[r*nOut : (r+1)*nOut][:nOut]
			if !last {
				for j, bj := range bias {
					s2 := v[j]
					if s2 < 0 {
						s2 = 0
					}
					m, mv := ak.Moments(o[j]+bj, s2, sc.bounds, sc.pms)
					o[j] = m * nextKeep
					v[j] = (m*m+mv)*nextKeep - m*m*nextKeep*nextKeep
				}
			} else {
				for j, bj := range bias {
					s2 := v[j]
					if s2 < 0 {
						s2 = 0
					}
					o[j], v[j] = ak.Moments(o[j]+bj, s2, sc.bounds, sc.pms)
				}
			}
		}
		sc.curMu, sc.nxtMu = sc.nxtMu, sc.curMu
		sc.curVar, sc.nxtVar = sc.nxtVar, sc.curVar
	}
}

// scratch is one chunk worker's buffers: ping-pong mean/variance panels plus
// the activation kernel's boundary-term arrays, all sized once at compile
// time for the largest chunk × widest layer.
type scratch struct {
	curMu, curVar []float64
	nxtMu, nxtVar []float64
	bounds        []stats.Boundary
	pms           []stats.PartialMoments
}

func (pg *Program) newScratch() *scratch {
	return &scratch{
		curMu:  make([]float64, pg.elems),
		curVar: make([]float64, pg.elems),
		nxtMu:  make([]float64, pg.elems),
		nxtVar: make([]float64, pg.elems),
		bounds: make([]stats.Boundary, pg.nBounds),
		pms:    make([]stats.PartialMoments, pg.nBounds),
	}
}

// getScratch recycles from the fixed free list, falling back to a fresh
// allocation only when more batches are in flight than the list was sized
// for (it never blocks the serving path on a buffer). The second result
// feeds Hooks.ScratchGet: true for a recycled buffer set, false for an
// overflow allocation.
func (pg *Program) getScratch() (*scratch, bool) {
	select {
	case sc := <-pg.free:
		return sc, true
	default:
		return pg.newScratch(), false
	}
}

func (pg *Program) putScratch(sc *scratch) {
	select {
	case pg.free <- sc:
	default: // list full; let the overflow buffer be collected
	}
}
