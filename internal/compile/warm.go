package compile

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
)

// Warm exercises the program end-to-end and verifies Float64bits identity
// against p's interpreted path (PropagateBatchReference) before the program
// is installed. It runs deterministic pseudo-random batches at batch 1, an
// intermediate size, and the registered maximum — covering the inline
// single-chunk plan, the multi-chunk fan-out, the 4-row register blocks, the
// scalar tail rows, the zero-skip paths (exact-zero means and variances are
// sprinkled in), and the point-mass activation fast path.
//
// Warm doubles as the cache warmup: it touches every packed panel and cycles
// the scratch free list, so the first production batch after install pays no
// cold-start. It never mutates p and is safe to run while p serves traffic
// on the interpreted path; install with p.SetCompiled only after it returns
// nil.
func (pg *Program) Warm(p *core.Propagator) error {
	if got := p.Network().InputDim(); got != pg.inDim {
		return fmt.Errorf("compile: warm against input dim %d, program compiled for %d", got, pg.inDim)
	}
	if got := p.Network().OutputDim(); got != pg.outDim {
		return fmt.Errorf("compile: warm against output dim %d, program compiled for %d", got, pg.outDim)
	}
	rng := rand.New(rand.NewSource(0x5eed))
	sizes := []int{1}
	if pg.maxBatch > 1 {
		if mid := (pg.maxBatch + 1) / 2; mid > 1 && mid < pg.maxBatch {
			sizes = append(sizes, mid)
		}
		sizes = append(sizes, pg.maxBatch)
	}
	for _, b := range sizes {
		in := core.NewGaussianBatch(b, pg.inDim)
		for t := range in.Mean.Data {
			switch rng.Intn(8) {
			case 0:
				// Exact zeros exercise the matmul zero-skips.
				in.Mean.Data[t], in.Var.Data[t] = 0, 0
			case 1:
				// Point masses exercise the activation fast path.
				in.Mean.Data[t], in.Var.Data[t] = rng.NormFloat64(), 0
			default:
				in.Mean.Data[t] = rng.NormFloat64()
				in.Var.Data[t] = math.Abs(rng.NormFloat64())
			}
		}
		want, err := p.PropagateBatchReference(in)
		if err != nil {
			return fmt.Errorf("compile: warm reference batch %d: %w", b, err)
		}
		got := core.NewGaussianBatch(b, pg.outDim)
		pg.RunBatch(in, got, nil)
		for t := range want.Mean.Data {
			if math.Float64bits(got.Mean.Data[t]) != math.Float64bits(want.Mean.Data[t]) {
				return fmt.Errorf("compile: warm batch %d: mean[%d] = %x, interpreted %x",
					b, t, math.Float64bits(got.Mean.Data[t]), math.Float64bits(want.Mean.Data[t]))
			}
			if math.Float64bits(got.Var.Data[t]) != math.Float64bits(want.Var.Data[t]) {
				return fmt.Errorf("compile: warm batch %d: var[%d] = %x, interpreted %x",
					b, t, math.Float64bits(got.Var.Data[t]), math.Float64bits(want.Var.Data[t]))
			}
		}
	}
	return nil
}
