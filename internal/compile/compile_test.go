package compile

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/proptest"
)

func mustPropagator(t testing.TB, net *nn.Network, extra ...core.Option) *core.Propagator {
	t.Helper()
	p, err := core.NewPropagator(net, core.Options{}, extra...)
	if err != nil {
		t.Fatalf("propagator: %v", err)
	}
	return p
}

func mustProgram(t testing.TB, p *core.Propagator, maxBatch int) *Program {
	t.Helper()
	pg, err := Compile(p, maxBatch)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := pg.Warm(p); err != nil {
		t.Fatalf("warm: %v", err)
	}
	return pg
}

func genBatch(rng *rand.Rand, b, dim int) core.GaussianBatch {
	in := core.NewGaussianBatch(b, dim)
	for r := 0; r < b; r++ {
		g := proptest.GenGaussian(rng, dim)
		copy(in.Mean.Row(r), g.Mean)
		copy(in.Var.Row(r), g.Var)
	}
	return in
}

func requireBitIdentical(t *testing.T, got, want core.GaussianBatch, ctx string) {
	t.Helper()
	for i := range want.Mean.Data {
		if math.Float64bits(got.Mean.Data[i]) != math.Float64bits(want.Mean.Data[i]) {
			t.Fatalf("%s: mean[%d] = %v (%x), interpreted %v (%x)", ctx, i,
				got.Mean.Data[i], math.Float64bits(got.Mean.Data[i]),
				want.Mean.Data[i], math.Float64bits(want.Mean.Data[i]))
		}
		if math.Float64bits(got.Var.Data[i]) != math.Float64bits(want.Var.Data[i]) {
			t.Fatalf("%s: var[%d] = %v (%x), interpreted %v (%x)", ctx, i,
				got.Var.Data[i], math.Float64bits(got.Var.Data[i]),
				want.Var.Data[i], math.Float64bits(want.Var.Data[i]))
		}
	}
}

// TestCompiledBitIdenticalRandomNets is the core gate at the package level:
// over random networks (full generator space: depths 1–6, widths to 300, all
// activations, dropout corners) and corner-heavy Gaussian batches, the
// compiled path must match the interpreted path bit for bit at every batch
// size class. internal/proptest extends the same gate with hostile inputs
// and a fuzz corpus.
func TestCompiledBitIdenticalRandomNets(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		net := proptest.GenNetwork(rng)
		p := mustPropagator(t, net)
		maxBatch := 1 + rng.Intn(64)
		pg := mustProgram(t, p, maxBatch)
		p.SetCompiled(pg)
		for _, b := range []int{1, (maxBatch + 1) / 2, maxBatch} {
			in := genBatch(rng, b, net.InputDim())
			got, err := p.PropagateBatchFrom(in) // dispatches compiled
			if err != nil {
				t.Fatalf("trial %d: compiled: %v", trial, err)
			}
			want, err := p.PropagateBatchReference(in)
			if err != nil {
				t.Fatalf("trial %d: reference: %v", trial, err)
			}
			requireBitIdentical(t, got, want, "trial")
		}
	}
}

// TestCompiledHostileInputs pushes non-finite moments through both paths:
// NaN and ±Inf means, Inf variances, and exact zeros sharing 4-row register
// blocks with them (the configuration where a zero-skip discrepancy would
// show, if there were one).
func TestCompiledHostileInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	net := proptest.GenNetworkBounded(rng)
	p := mustPropagator(t, net)
	pg := mustProgram(t, p, 16)
	p.SetCompiled(pg)

	dim := net.InputDim()
	hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, 1e300, -1e300}
	in := genBatch(rng, 16, dim)
	for r := 0; r < 16; r++ {
		in.Mean.Row(r)[rng.Intn(dim)] = hostile[r%len(hostile)]
		if r%2 == 0 {
			in.Var.Row(r)[rng.Intn(dim)] = hostile[rng.Intn(3)] // NaN or ±Inf
		}
	}
	got, err := p.PropagateBatchFrom(in)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	want, err := p.PropagateBatchReference(in)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	requireBitIdentical(t, got, want, "hostile")
}

// TestCompiledChunkPlanInvariance pins the freedom the package doc claims:
// the chunk plan (fixed at compile time from the worker bound) does not
// affect output bits, because blocked accumulators starting at +0 cannot be
// steered to different values by row grouping when the weight panels are
// finite.
func TestCompiledChunkPlanInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	net := proptest.GenNetwork(rng)
	in := genBatch(rng, 48, net.InputDim())

	var ref core.GaussianBatch
	for i, workers := range []int{1, 2, 5, 16} {
		p := mustPropagator(t, net, core.WithWorkers(workers))
		pg := mustProgram(t, p, 48)
		out := core.NewGaussianBatch(48, net.OutputDim())
		pg.RunBatch(in, out, nil)
		if i == 0 {
			ref = out
			continue
		}
		requireBitIdentical(t, out, ref, "workers")
	}
}

// countingProgram wraps a Program to make dispatch directly observable: the
// propagator routes through the CompiledBatch interface, so a wrapper counts
// exactly the batches that took the compiled path.
type countingProgram struct {
	*Program
	runs atomic.Int64
}

func (c *countingProgram) RunBatch(in, out core.GaussianBatch, h *core.Hooks) {
	c.runs.Add(1)
	c.Program.RunBatch(in, out, h)
}

// TestCompiledDispatch verifies the routing contract: batches within
// MaxBatch hit the compiled program, larger batches fall back to the
// interpreted path, SetCompiled(nil) restores it entirely — and the hooks
// contract is path-independent: BatchStart fires once per batch and
// LayerTime once per layer on the compiled path too, so per-layer
// observability doesn't go dark when a program is installed.
func TestCompiledDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	net := proptest.GenNetworkBounded(rng)
	p := mustPropagator(t, net, core.WithWorkers(1))
	cp := &countingProgram{Program: mustProgram(t, p, 8)}
	p.SetCompiled(cp)

	var batches, layerCalls atomic.Int64
	p.SetHooks(&core.Hooks{
		BatchStart: func(rows int) { batches.Add(1) },
		LayerTime:  func(layer, rows int, d time.Duration) { layerCalls.Add(1) },
	})

	if _, err := p.PropagateBatchFrom(genBatch(rng, 4, net.InputDim())); err != nil {
		t.Fatal(err)
	}
	if got := cp.runs.Load(); got != 1 {
		t.Errorf("compiled program ran %d times for an in-range batch, want 1", got)
	}
	if got := batches.Load(); got != 1 {
		t.Errorf("BatchStart fired %d times on compiled path, want 1", got)
	}
	// WithWorkers(1) pins a single-chunk plan, so exactly one LayerTime call
	// per layer.
	if got, want := layerCalls.Load(), int64(len(net.Layers())); got != want {
		t.Errorf("LayerTime fired %d times on compiled path, want %d (one per layer)", got, want)
	}

	if _, err := p.PropagateBatchFrom(genBatch(rng, 9, net.InputDim())); err != nil {
		t.Fatal(err)
	}
	if got := cp.runs.Load(); got != 1 {
		t.Errorf("compiled program ran %d times after an over-MaxBatch batch, want still 1", got)
	}

	p.SetCompiled(nil)
	if _, err := p.PropagateBatchFrom(genBatch(rng, 4, net.InputDim())); err != nil {
		t.Fatal(err)
	}
	if got := cp.runs.Load(); got != 1 {
		t.Errorf("compiled program ran %d times after SetCompiled(nil), want still 1", got)
	}
}

// TestWarmCatchesCorruption proves the warmup self-check has teeth: a
// program whose output drifts by even one ulp must be refused.
func TestWarmCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	net := proptest.GenNetworkBounded(rng)
	p := mustPropagator(t, net)
	pg := mustProgram(t, p, 4)

	// Corrupt the final layer's output (post-swap curMu is what runChunk
	// copies out) — an earlier-layer perturbation could legitimately wash
	// out through a saturating activation, but the last one cannot.
	lastStep := len(pg.steps) - 1
	orig := pg.steps[lastStep]
	pg.steps[lastStep] = func(sc *scratch, rows int) {
		orig(sc, rows)
		sc.curMu[0] = math.Nextafter(sc.curMu[0], math.Inf(1))
	}
	if err := pg.Warm(p); err == nil {
		t.Fatal("one-ulp corrupted program passed Warm")
	}
}

// TestWarmRejectsShapeMismatch: warming against a propagator for a different
// network shape is an install-time error, not a runtime surprise.
func TestWarmRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	var a, b *nn.Network
	a = proptest.GenNetworkBounded(rng)
	for {
		b = proptest.GenNetworkBounded(rng)
		if b.InputDim() != a.InputDim() || b.OutputDim() != a.OutputDim() {
			break
		}
	}
	pg := mustProgram(t, mustPropagator(t, a), 2)
	if err := pg.Warm(mustPropagator(t, b)); err == nil {
		t.Fatal("warm accepted a mismatched network shape")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, 4); err == nil {
		t.Error("nil propagator accepted")
	}
	rng := rand.New(rand.NewSource(67))
	p := mustPropagator(t, proptest.GenNetworkBounded(rng))
	if _, err := Compile(p, 0); err == nil {
		t.Error("max batch 0 accepted")
	}
}

// TestChunkPlanProperties checks the precomputed plans against the
// interpreted path's fan-out rule for every batch size and worker bound the
// program can see: plans tile [0, b) exactly, every chunk but the last is a
// multiple of 4, no chunk exceeds the scratch sizing, and small batches
// collapse to one inline chunk.
func TestChunkPlanProperties(t *testing.T) {
	for workers := 1; workers <= 32; workers *= 2 {
		for b := 1; b <= 128; b++ {
			plan := chunkPlan(b, workers)
			next := 0
			for i, s := range plan {
				if s.lo != next || s.hi <= s.lo {
					t.Fatalf("workers=%d b=%d: plan %v not a tiling", workers, b, plan)
				}
				if i < len(plan)-1 && (s.hi-s.lo)%4 != 0 {
					t.Fatalf("workers=%d b=%d: interior chunk %v not a multiple of 4", workers, b, s)
				}
				next = s.hi
			}
			if next != b {
				t.Fatalf("workers=%d b=%d: plan %v does not cover the batch", workers, b, plan)
			}
			if b <= core.MinRowsPerWorker && len(plan) != 1 {
				t.Fatalf("workers=%d b=%d: small batch split into %d chunks", workers, b, len(plan))
			}
		}
	}
}

// TestRunBatchSteadyStateAllocs pins the free-list contract: after warmup,
// sequential RunBatch calls allocate nothing beyond what the caller hands
// in.
func TestRunBatchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	net := proptest.GenNetworkBounded(rng)
	p := mustPropagator(t, net, core.WithWorkers(1))
	pg := mustProgram(t, p, 8)
	in := genBatch(rng, 8, net.InputDim())
	out := core.NewGaussianBatch(8, net.OutputDim())
	pg.RunBatch(in, out, nil) // warm the free list
	allocs := testing.AllocsPerRun(50, func() { pg.RunBatch(in, out, nil) })
	if allocs > 0 {
		t.Errorf("steady-state RunBatch allocates %v objects per call, want 0", allocs)
	}
}

func benchNet(t testing.TB) *nn.Network {
	net, err := nn.New(nn.Config{
		InputDim:         64,
		Hidden:           []int{256, 256, 256},
		OutputDim:        16,
		Activation:       nn.ActReLU,
		OutputActivation: nn.ActIdentity,
		KeepProb:         0.9,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func benchmarkPath(b *testing.B, batch int, compiled bool) {
	net := benchNet(b)
	p := mustPropagator(b, net)
	if compiled {
		p.SetCompiled(mustProgram(b, p, 64))
	}
	rng := rand.New(rand.NewSource(9))
	in := genBatch(rng, batch, net.InputDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PropagateBatchFrom(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretedBatch1(b *testing.B)  { benchmarkPath(b, 1, false) }
func BenchmarkCompiledBatch1(b *testing.B)     { benchmarkPath(b, 1, true) }
func BenchmarkInterpretedBatch8(b *testing.B)  { benchmarkPath(b, 8, false) }
func BenchmarkCompiledBatch8(b *testing.B)     { benchmarkPath(b, 8, true) }
func BenchmarkInterpretedBatch64(b *testing.B) { benchmarkPath(b, 64, false) }
func BenchmarkCompiledBatch64(b *testing.B)    { benchmarkPath(b, 64, true) }
