package compile

import (
	"sync"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// RunBatch propagates in into out along the compiled fast path. It
// implements core.CompiledBatch: the caller (core.Propagator's batch
// dispatch) guarantees 1 <= in.Batch() <= MaxBatch(), matching input
// dimension, and a pre-shaped out. h is the dispatcher's hooks snapshot (may
// be nil); LayerTime and ScratchGet fire exactly as on the interpreted path,
// and never touch the numeric state. The precomputed chunk plan for this
// batch size decides the fan-out; a single-chunk plan runs inline on the
// caller's goroutine.
func (pg *Program) RunBatch(in, out core.GaussianBatch, h *core.Hooks) {
	plan := pg.plans[in.Batch()]
	if len(plan) == 1 {
		pg.runChunk(in, out, plan[0].lo, plan[0].hi, h)
		return
	}
	var wg sync.WaitGroup
	for _, s := range plan {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pg.runChunk(in, out, lo, hi, h)
		}(s.lo, s.hi)
	}
	wg.Wait()
}

// runChunk pushes rows [lo, hi) through every compiled layer step. The
// sequence mirrors the interpreted propagateRows exactly: copy the rows in,
// apply the first layer's dropout prep (E[xz] = μp, Var[xz] = (μ²+σ²)p −
// μ²p²), run the fused per-layer closures, copy the final ping-pong panel
// out.
func (pg *Program) runChunk(in, out core.GaussianBatch, lo, hi int, h *core.Hooks) {
	sc, warm := pg.getScratch()
	if h != nil && h.ScratchGet != nil {
		h.ScratchGet(warm)
	}
	rows := hi - lo
	dim := pg.inDim
	copy(sc.curMu[:rows*dim], in.Mean.Data[lo*dim:hi*dim])
	copy(sc.curVar[:rows*dim], in.Var.Data[lo*dim:hi*dim])

	keep := pg.keep0
	mu := sc.curMu[:rows*dim]
	va := sc.curVar[:rows*dim]
	for t, m := range mu {
		s2 := va[t]
		mu[t] = m * keep
		va[t] = (m*m+s2)*keep - m*m*keep*keep
	}

	if timed := h != nil && h.LayerTime != nil; timed {
		var t0 time.Time
		for li, step := range pg.steps {
			t0 = time.Now()
			step(sc, rows)
			h.LayerTime(li, rows, time.Since(t0))
		}
	} else {
		for _, step := range pg.steps {
			step(sc, rows)
		}
	}

	od := pg.outDim
	copy(out.Mean.Data[lo*od:hi*od], sc.curMu[:rows*od])
	copy(out.Var.Data[lo*od:hi*od], sc.curVar[:rows*od])
	pg.putScratch(sc)
}

// fusedDualMul computes outMu = mu × W and outVa = va × W² in one pass over
// the packed panel, replicating tensor's mulBlocked structure exactly:
// k-blocked in tensor.KBlock tiles, 4-row register blocking through
// tensor.Axpy4 with the all-four-zero skip, and a scalar tail loop with the
// per-row x == 0 skip. Interleaving the two products at the k level leaves
// every output element's accumulation in the same ascending-k order as two
// separate MulInto calls — mean and variance elements are disjoint
// accumulators, so their interleaving is bit-invisible — while the packed
// layout keeps both weight rows on the cache lines the k-step just pulled.
func fusedDualMul(panel, mu, va, outMu, outVa []float64, rows, nIn, nOut int) {
	for i := range outMu {
		outMu[i] = 0
	}
	for i := range outVa {
		outVa[i] = 0
	}
	stride := 2 * nOut
	for kb := 0; kb < nIn; kb += tensor.KBlock {
		kEnd := kb + tensor.KBlock
		if kEnd > nIn {
			kEnd = nIn
		}
		i := 0
		for ; i+4 <= rows; i += 4 {
			m0 := mu[(i+0)*nIn : (i+1)*nIn]
			m1 := mu[(i+1)*nIn : (i+2)*nIn]
			m2 := mu[(i+2)*nIn : (i+3)*nIn]
			m3 := mu[(i+3)*nIn : (i+4)*nIn]
			v0 := va[(i+0)*nIn : (i+1)*nIn]
			v1 := va[(i+1)*nIn : (i+2)*nIn]
			v2 := va[(i+2)*nIn : (i+3)*nIn]
			v3 := va[(i+3)*nIn : (i+4)*nIn]
			om0 := outMu[(i+0)*nOut : (i+1)*nOut]
			om1 := outMu[(i+1)*nOut : (i+2)*nOut]
			om2 := outMu[(i+2)*nOut : (i+3)*nOut]
			om3 := outMu[(i+3)*nOut : (i+4)*nOut]
			ov0 := outVa[(i+0)*nOut : (i+1)*nOut]
			ov1 := outVa[(i+1)*nOut : (i+2)*nOut]
			ov2 := outVa[(i+2)*nOut : (i+3)*nOut]
			ov3 := outVa[(i+3)*nOut : (i+4)*nOut]
			for kk := kb; kk < kEnd; kk++ {
				base := kk * stride
				x0, x1, x2, x3 := m0[kk], m1[kk], m2[kk], m3[kk]
				y0, y1, y2, y3 := v0[kk], v1[kk], v2[kk], v3[kk]
				// The all-four-zero skips replicate mulBlocked exactly, per
				// side; the fused kernel runs only when both sides are live
				// (the common case), loading the panel stripe once for both
				// moments.
				mLive := x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0
				vLive := y0 != 0 || y1 != 0 || y2 != 0 || y3 != 0
				switch {
				case mLive && vLive:
					tensor.Axpy4Dual(x0, x1, x2, x3, y0, y1, y2, y3,
						panel[base:base+nOut], panel[base+nOut:base+stride],
						om0, om1, om2, om3, ov0, ov1, ov2, ov3)
				case mLive:
					tensor.Axpy4(x0, x1, x2, x3, panel[base:base+nOut], om0, om1, om2, om3)
				case vLive:
					tensor.Axpy4(y0, y1, y2, y3, panel[base+nOut:base+stride], ov0, ov1, ov2, ov3)
				}
			}
		}
		for ; i < rows; i++ {
			mi := mu[i*nIn : (i+1)*nIn]
			vi := va[i*nIn : (i+1)*nIn]
			omi := outMu[i*nOut : (i+1)*nOut]
			ovi := outVa[i*nOut : (i+1)*nOut]
			for kk := kb; kk < kEnd; kk++ {
				base := kk * stride
				xm, xv := mi[kk], vi[kk]
				// Per-side zero-skips replicate mulBlocked's tail. When both
				// moments are live (the common case), the dual kernel runs
				// mean and variance in one vector pass — this is what makes
				// the compiled batch-1 path faster than the interpreted one,
				// whose tail has no single-row vector kernel.
				if xm != 0 && xv != 0 {
					tensor.AxpyDual(xm, xv, panel[base:base+nOut], panel[base+nOut:base+stride], omi, ovi)
					continue
				}
				if xm != 0 {
					w := panel[base : base+nOut]
					o := omi[:len(w)]
					for j, wj := range w {
						o[j] += xm * wj
					}
				}
				if xv != 0 {
					w := panel[base+nOut : base+stride]
					o := ovi[:len(w)]
					for j, wj := range w {
						o[j] += xv * wj
					}
				}
			}
		}
	}
}
