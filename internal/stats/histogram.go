package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Finite values
// outside the range are clamped into the first/last bin so no sample is
// lost, which is the behaviour wanted when visualizing near-Gaussian
// hidden-unit distributions (Figure 1 of the paper).
//
// Non-finite samples (NaN, ±Inf) are never binned: converting NaN through
// int(float64) is implementation-defined per the Go spec (it happens to land
// in bin 0 on amd64 and elsewhere on other targets), so one NaN-emitting
// producer would silently poison a bin. Add drops them into the NonFinite
// counter instead, keeping Counts and Total about real observations only.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	// NonFinite counts samples dropped because they were NaN or ±Inf. They
	// are excluded from Total, Density, and GaussianFitError.
	NonFinite int64
	total     int64
}

// NewHistogram returns a histogram over [lo, hi) with bins buckets.
// It panics only on programmer error (bins < 1 or hi <= lo) — these indicate
// a hard-coded misconfiguration, not runtime data.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add records one observation. Non-finite x is counted in NonFinite and
// otherwise ignored (see the type comment for why it must not be binned).
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.NonFinite++
		return
	}
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the normalized density of bin i (integrates to ~1).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * w)
}

// Render draws the histogram as ASCII art with the given bar width, one bin
// per line, suitable for terminal reproduction of the paper's Figure 1.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var maxC int64
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = int(math.Round(float64(width) * float64(c) / float64(maxC)))
		}
		fmt.Fprintf(&b, "%9.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	if h.NonFinite > 0 {
		fmt.Fprintf(&b, "%9s | %-*s %d\n", "non-fin", width, "", h.NonFinite)
	}
	return b.String()
}

// GaussianFitError compares the histogram against the Gaussian whose mean and
// variance match the recorded samples' (given by the caller, typically from a
// Welford accumulator over the same stream) and returns the total variation
// distance: 0 means a perfect Gaussian fit, 1 means disjoint. It is used to
// check empirically, as the paper does in §III-A, that hidden-unit output
// distributions are bell-shaped.
func (h *Histogram) GaussianFitError(mu, sigma float64) float64 {
	if h.total == 0 || sigma <= 0 {
		return 1
	}
	var tv float64
	nBins := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(nBins)
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*w
		hi := lo + w
		p := NormCDF(hi, mu, sigma) - NormCDF(lo, mu, sigma)
		q := float64(c) / float64(h.total)
		tv += math.Abs(p - q)
	}
	return tv / 2
}
