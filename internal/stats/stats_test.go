package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormPDF(t *testing.T) {
	// Standard normal at 0 is 1/sqrt(2π).
	if got := NormPDF(0, 0, 1); math.Abs(got-0.3989422804014327) > 1e-15 {
		t.Errorf("NormPDF(0,0,1) = %v", got)
	}
	// Symmetry.
	if NormPDF(1.3, 0, 1) != NormPDF(-1.3, 0, 1) {
		t.Error("NormPDF not symmetric")
	}
	// Scaling: N(mu, sigma) at mu equals standard peak / sigma.
	if got := NormPDF(5, 5, 2); math.Abs(got-0.3989422804014327/2) > 1e-15 {
		t.Errorf("NormPDF(5,5,2) = %v", got)
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.9750021048517795},
		{-1.96, 0, 1, 0.0249978951482205},
		{10, 10, 3, 0.5},
	}
	for _, c := range cases {
		if got := NormCDF(c.x, c.mu, c.sigma); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{1e-10, 0.001, 0.025, 0.25, 0.5, 0.75, 0.975, 0.999, 1 - 1e-10} {
		x := NormQuantile(q, 0, 1)
		back := NormCDF(x, 0, 1)
		if math.Abs(back-q) > 1e-9 {
			t.Errorf("quantile round-trip q=%v: x=%v, CDF(x)=%v", q, x, back)
		}
	}
	if !math.IsInf(NormQuantile(0, 0, 1), -1) {
		t.Error("quantile(0) should be -Inf")
	}
	if !math.IsInf(NormQuantile(1, 0, 1), 1) {
		t.Error("quantile(1) should be +Inf")
	}
	// Location-scale.
	if got := NormQuantile(0.5, 7, 3); math.Abs(got-7) > 1e-9 {
		t.Errorf("median of N(7,9) = %v, want 7", got)
	}
}

func TestGaussianNLL(t *testing.T) {
	// At the mean with unit variance: 0.5 log(2π).
	want := 0.5 * math.Log(2*math.Pi)
	if got := GaussianNLL(0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("GaussianNLL(0,0,1) = %v, want %v", got, want)
	}
	// NLL = -log pdf.
	x, mu, v := 1.7, 0.4, 2.3
	if got, w := GaussianNLL(x, mu, v), -math.Log(NormPDF(x, mu, math.Sqrt(v))); math.Abs(got-w) > 1e-12 {
		t.Errorf("GaussianNLL = %v, want -log pdf = %v", got, w)
	}
}

func TestTruncatedMomentsFullLine(t *testing.T) {
	// Over (-inf, +inf), D=1, M=0, V=sigma².
	pm := TruncatedMoments(math.Inf(-1), math.Inf(1), 2.5, 1.7)
	if math.Abs(pm.D-1) > 1e-12 {
		t.Errorf("D = %v, want 1", pm.D)
	}
	if math.Abs(pm.M) > 1e-12 {
		t.Errorf("M = %v, want 0", pm.M)
	}
	if math.Abs(pm.V-1.7*1.7) > 1e-10 {
		t.Errorf("V = %v, want %v", pm.V, 1.7*1.7)
	}
}

func TestTruncatedMomentsHalfLine(t *testing.T) {
	// Standard normal over [0, inf): D=1/2, M=sigma/sqrt(2π), V=sigma²/2.
	pm := TruncatedMoments(0, math.Inf(1), 0, 1)
	if math.Abs(pm.D-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", pm.D)
	}
	if math.Abs(pm.M-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("M = %v, want %v", pm.M, 1/math.Sqrt(2*math.Pi))
	}
	if math.Abs(pm.V-0.5) > 1e-12 {
		t.Errorf("V = %v, want 0.5", pm.V)
	}
}

// TestTruncatedMomentsVsNumeric checks D, M, V against trapezoid-rule
// numerical integration for random finite intervals.
func TestTruncatedMomentsVsNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		mu := rng.NormFloat64() * 3
		sigma := 0.2 + 3*rng.Float64()
		lo := mu + sigma*(rng.Float64()*6-3)
		hi := lo + sigma*rng.Float64()*4
		pm := TruncatedMoments(lo, hi, mu, sigma)

		const steps = 20000
		var d, m, v float64
		h := (hi - lo) / steps
		for i := 0; i <= steps; i++ {
			x := lo + float64(i)*h
			wgt := h
			if i == 0 || i == steps {
				wgt = h / 2
			}
			p := NormPDF(x, mu, sigma)
			d += wgt * p
			m += wgt * (x - mu) * p
			v += wgt * (x - mu) * (x - mu) * p
		}
		if math.Abs(pm.D-d) > 1e-6 {
			t.Fatalf("trial %d: D=%v, numeric %v (lo=%v hi=%v mu=%v s=%v)", trial, pm.D, d, lo, hi, mu, sigma)
		}
		if math.Abs(pm.M-m) > 1e-6 {
			t.Fatalf("trial %d: M=%v, numeric %v", trial, pm.M, m)
		}
		if math.Abs(pm.V-v) > 1e-6 {
			t.Fatalf("trial %d: V=%v, numeric %v", trial, pm.V, v)
		}
	}
}

func TestTruncatedMomentsFarTail(t *testing.T) {
	// A piece 50 sigma into the tail: everything underflows to zero, no NaN.
	pm := TruncatedMoments(50, 60, 0, 1)
	if pm.D != 0 || pm.M != 0 || pm.V != 0 {
		t.Errorf("far-tail moments = %+v, want zeros", pm)
	}
	if math.IsNaN(pm.D) || math.IsNaN(pm.M) || math.IsNaN(pm.V) {
		t.Error("far-tail moments produced NaN")
	}
}

// Property: partial moments over adjacent pieces add up to the full-interval
// moments, which is the additivity the layer-wise approximation relies on.
func TestPropertyMomentsAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := rng.NormFloat64() * 2
		sigma := 0.3 + 2*rng.Float64()
		mid := mu + sigma*(rng.Float64()*4-2)
		left := TruncatedMoments(math.Inf(-1), mid, mu, sigma)
		right := TruncatedMoments(mid, math.Inf(1), mu, sigma)
		whole := TruncatedMoments(math.Inf(-1), math.Inf(1), mu, sigma)
		return math.Abs(left.D+right.D-whole.D) < 1e-10 &&
			math.Abs(left.M+right.M-whole.M) < 1e-10 &&
			math.Abs(left.V+right.V-whole.V) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.SampleVariance()-32.0/7.0) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", w.SampleVariance(), 32.0/7.0)
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Error("empty Welford should be zero")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-10 {
		t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-10 {
		t.Errorf("merged variance %v, want %v", a.Variance(), all.Variance())
	}
	// Merge into empty.
	var empty Welford
	empty.Merge(all)
	if empty.Count() != all.Count() || empty.Mean() != all.Mean() {
		t.Error("merge into empty lost state")
	}
	// Merge empty is a no-op.
	before := all
	all.Merge(Welford{})
	if all != before {
		t.Error("merging empty changed state")
	}
}

func TestVecWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all := NewVecWelford(3)
	chunks := []*VecWelford{NewVecWelford(3), NewVecWelford(3), NewVecWelford(3)}
	for i := 0; i < 900; i++ {
		x := []float64{rng.NormFloat64() * 2, rng.Float64()*10 - 5, rng.ExpFloat64()}
		all.Add(x)
		chunks[i%3].Add(x)
	}
	merged := NewVecWelford(3)
	for _, c := range chunks {
		merged.Merge(c)
	}
	if merged.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), all.Count())
	}
	gm, gv := merged.Mean(), merged.SampleVariance()
	wm, wv := all.Mean(), all.SampleVariance()
	for j := 0; j < 3; j++ {
		if math.Abs(gm[j]-wm[j]) > 1e-10 {
			t.Errorf("dim %d: merged mean %v, want %v", j, gm[j], wm[j])
		}
		if math.Abs(gv[j]-wv[j]) > 1e-10 {
			t.Errorf("dim %d: merged variance %v, want %v", j, gv[j], wv[j])
		}
	}
	// Merge into empty copies the source state.
	empty := NewVecWelford(3)
	empty.Merge(all)
	if empty.Count() != all.Count() || empty.Mean()[1] != all.Mean()[1] {
		t.Error("merge into empty lost state")
	}
	// Merging nil or empty is a no-op.
	before := merged.Mean()
	merged.Merge(nil)
	merged.Merge(NewVecWelford(3))
	if merged.Mean()[0] != before[0] || merged.Count() != all.Count() {
		t.Error("merging nil/empty changed state")
	}
}

func TestVecWelford(t *testing.T) {
	w := NewVecWelford(2)
	if w.Dim() != 2 {
		t.Fatalf("Dim = %d, want 2", w.Dim())
	}
	w.Add([]float64{1, 10})
	w.Add([]float64{3, 30})
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}
	mean := w.Mean()
	if mean[0] != 2 || mean[1] != 20 {
		t.Errorf("Mean = %v, want [2 20]", mean)
	}
	v := w.Variance()
	if v[0] != 1 || v[1] != 100 {
		t.Errorf("Variance = %v, want [1 100]", v)
	}
	sv := w.SampleVariance()
	if sv[0] != 2 || sv[1] != 200 {
		t.Errorf("SampleVariance = %v, want [2 200]", sv)
	}
	// Returned slices are copies.
	mean[0] = 999
	if w.Mean()[0] == 999 {
		t.Error("Mean returned internal storage")
	}
}

func TestVecWelfordMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vw := NewVecWelford(3)
	ws := make([]Welford, 3)
	for i := 0; i < 500; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64() * 10, rng.ExpFloat64()}
		vw.Add(x)
		for j := range ws {
			ws[j].Add(x[j])
		}
	}
	mean, vr := vw.Mean(), vw.Variance()
	for j := range ws {
		if math.Abs(mean[j]-ws[j].Mean()) > 1e-12 {
			t.Errorf("dim %d mean mismatch", j)
		}
		if math.Abs(vr[j]-ws[j].Variance()) > 1e-12 {
			t.Errorf("dim %d variance mismatch", j)
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, -5, 15} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	// -5 clamps into bin 0, 15 into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9, 15
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for 0 bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for empty range")
	}
}

func TestHistogramNonFinite(t *testing.T) {
	// Regression: Add used to push NaN through int(float64), which the Go
	// spec leaves implementation-defined (bin 0 on amd64, elsewhere on other
	// targets) — one NaN-emitting producer silently poisoned bin 0. Non-
	// finite samples must land in the NonFinite counter and nowhere else.
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	if h.NonFinite != 3 {
		t.Errorf("NonFinite = %d, want 3", h.NonFinite)
	}
	if h.Total() != 0 {
		t.Errorf("Total = %d, want 0 (non-finite samples are not observations)", h.Total())
	}
	for i, c := range h.Counts {
		if c != 0 {
			t.Errorf("bin %d = %d, want 0", i, c)
		}
	}
	// Finite samples still bin normally alongside dropped ones.
	h.Add(0.5)
	h.Add(math.NaN())
	if h.Counts[0] != 1 || h.Total() != 1 || h.NonFinite != 4 {
		t.Errorf("after mixed adds: bin0=%d total=%d nonfinite=%d, want 1/1/4",
			h.Counts[0], h.Total(), h.NonFinite)
	}
	if got := h.Render(10); !strings.Contains(got, "non-fin") {
		t.Errorf("Render does not surface the non-finite count:\n%s", got)
	}
	// A histogram with no dropped samples renders exactly as before.
	clean, _ := NewHistogram(0, 10, 5)
	clean.Add(1)
	if got := clean.Render(10); strings.Contains(got, "non-fin") {
		t.Errorf("Render shows a non-finite line with none dropped:\n%s", got)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(-4, 4, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		h.Add(rng.NormFloat64())
	}
	w := 8.0 / 64.0
	var total float64
	for i := range h.Counts {
		total += h.Density(i) * w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("density integrates to %v, want 1", total)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(10)
	if out == "" {
		t.Fatal("empty render")
	}
	// Zero-width falls back to default.
	if h.Render(0) == "" {
		t.Error("Render(0) empty")
	}
}

func TestGaussianFitError(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gauss, _ := NewHistogram(-5, 5, 50)
	var w Welford
	for i := 0; i < 50000; i++ {
		x := rng.NormFloat64()
		gauss.Add(x)
		w.Add(x)
	}
	if err := gauss.GaussianFitError(w.Mean(), w.Std()); err > 0.03 {
		t.Errorf("Gaussian samples fit error = %v, want < 0.03", err)
	}

	// A uniform distribution should fit much worse.
	unif, _ := NewHistogram(-5, 5, 50)
	var wu Welford
	for i := 0; i < 50000; i++ {
		x := rng.Float64()*8 - 4
		unif.Add(x)
		wu.Add(x)
	}
	if err := unif.GaussianFitError(wu.Mean(), wu.Std()); err < 0.1 {
		t.Errorf("uniform samples fit error = %v, want > 0.1", err)
	}

	// Degenerate inputs.
	empty, _ := NewHistogram(0, 1, 2)
	if empty.GaussianFitError(0, 1) != 1 {
		t.Error("empty histogram should report fit error 1")
	}
	if gauss.GaussianFitError(0, 0) != 1 {
		t.Error("zero sigma should report fit error 1")
	}
}

// TestBoundaryDecompositionExact verifies that assembling partial moments
// from shared per-knot Boundary terms is bit-identical to the direct
// TruncatedMoments computation — the property the batched activation kernel
// in internal/core relies on for batch-vs-sequential parity.
func TestBoundaryDecompositionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	intervals := [][2]float64{
		{math.Inf(-1), -1.2}, {-1.2, 0}, {0, 0.7}, {0.7, math.Inf(1)},
		{math.Inf(-1), math.Inf(1)}, {50, 60},
	}
	for trial := 0; trial < 200; trial++ {
		mu := rng.NormFloat64() * 3
		sigma := 1e-6 + 3*rng.Float64()
		for _, iv := range intervals {
			want := TruncatedMoments(iv[0], iv[1], mu, sigma)
			got := MomentsBetween(BoundaryAt(iv[0], mu, sigma), BoundaryAt(iv[1], mu, sigma), sigma)
			if got != want {
				t.Fatalf("interval %v mu=%v sigma=%v: decomposed %+v != direct %+v", iv, mu, sigma, got, want)
			}
		}
	}
}
