// Package stats provides the probabilistic primitives behind ApDeepSense:
// univariate Gaussian densities, truncated-Gaussian partial moments
// (equations 23–25 of the paper), streaming moment accumulators, and
// histogram utilities used to reproduce Figure 1.
package stats

import "math"

// invSqrt2Pi is 1/sqrt(2π).
const invSqrt2Pi = 0.3989422804014327

// sqrt2 is sqrt(2).
const sqrt2 = 1.4142135623730951

// NormPDF returns the density of N(mu, sigma²) at x. sigma must be positive.
func NormPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return invSqrt2Pi / sigma * math.Exp(-0.5*z*z)
}

// NormCDF returns P(X <= x) for X ~ N(mu, sigma²). sigma must be positive.
func NormCDF(x, mu, sigma float64) float64 {
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*sqrt2)))
}

// NormQuantile returns the q-th quantile of N(mu, sigma²) for q in (0, 1),
// using the Acklam rational approximation refined by one Halley step. The
// absolute error is below 1e-9 across (1e-300, 1-1e-16).
func NormQuantile(q, mu, sigma float64) float64 {
	return mu + sigma*stdNormQuantile(q)
}

// stdNormQuantile computes the standard normal inverse CDF.
func stdNormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's algorithm.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// GaussianNLL returns the negative log-likelihood of observation y under
// N(mu, variance): 0.5·log(2π·variance) + (y−mu)²/(2·variance).
// variance must be positive; callers apply their own variance floor.
func GaussianNLL(y, mu, variance float64) float64 {
	return 0.5*math.Log(2*math.Pi*variance) + (y-mu)*(y-mu)/(2*variance)
}

// PartialMoments holds the three truncated-Gaussian quantities the paper
// names D_p, M_p, and V_p for one piece of a piece-wise linear activation.
//
// For Y ~ N(mu, sigma²) restricted to the interval [lo, hi]:
//
//	D = ∫ N(y; mu, sigma²) dy                  (probability mass, eq. 23)
//	M = ∫ (y − mu)   · N(y; mu, sigma²) dy     (first central partial moment, eq. 24)
//	V = ∫ (y − mu)²  · N(y; mu, sigma²) dy     (second central partial moment, eq. 25)
type PartialMoments struct {
	D, M, V float64
}

// TruncatedMoments computes the partial moments of N(mu, sigma²) over
// [lo, hi]. Infinite bounds are allowed; the implementation is numerically
// stable for pieces far in the tails (where every term underflows to zero
// together). sigma must be positive, and lo <= hi.
func TruncatedMoments(lo, hi, mu, sigma float64) PartialMoments {
	// Standardize: a = (lo-mu)/sigma, b = (hi-mu)/sigma.
	a := (lo - mu) / sigma
	b := (hi - mu) / sigma

	var pm PartialMoments
	pm.D = 0.5 * (math.Erf(b/sqrt2) - math.Erf(a/sqrt2))

	// phi(a), phi(b): standard normal density; exp underflows gracefully for
	// |z| beyond ~38, matching the mass underflow.
	phiA := stdPhi(a)
	phiB := stdPhi(b)

	// M = sigma · (phi(a) − phi(b)).
	pm.M = sigma * (phiA - phiB)

	// V = sigma² · (D + a·phi(a) − b·phi(b)); the a·phi(a) terms vanish for
	// infinite bounds since phi decays super-polynomially.
	ta := 0.0
	if !math.IsInf(a, 0) {
		ta = a * phiA
	}
	tb := 0.0
	if !math.IsInf(b, 0) {
		tb = b * phiB
	}
	pm.V = sigma * sigma * (pm.D + ta - tb)
	if pm.V < 0 {
		// Guard against catastrophic cancellation on very thin slices.
		pm.V = 0
	}
	if pm.D < 0 {
		pm.D = 0
	}
	return pm
}

// stdPhi is the standard normal density.
func stdPhi(z float64) float64 {
	if math.IsInf(z, 0) {
		return 0
	}
	return invSqrt2Pi * math.Exp(-0.5*z*z)
}

// Boundary holds the transcendental terms of the truncated-moment
// decomposition at one knot x, standardized as z = (x − mu)/sigma:
//
//	Erf  = erf(z/√2)    (CDF term of eq. 23)
//	Phi  = φ(z)         (standard normal density, eqs. 24–25)
//	ZPhi = z·φ(z)       (tail term of eq. 25; 0 at infinite knots)
//
// Adjacent pieces of a PWL activation share their interior knots, so a
// batched moment kernel evaluates one Boundary per knot (n+1 for n pieces)
// and assembles every piece's PartialMoments with MomentsBetween, instead of
// paying two erf/exp pairs per piece inside TruncatedMoments.
type Boundary struct {
	Erf, Phi, ZPhi float64
}

// BoundaryAt computes the boundary terms of N(mu, sigma²) at knot x. The
// standardization and the per-term expressions match TruncatedMoments
// exactly, so moments assembled from Boundary values are bit-identical to
// the direct computation.
func BoundaryAt(x, mu, sigma float64) Boundary {
	z := (x - mu) / sigma
	b := Boundary{Erf: math.Erf(z / sqrt2), Phi: stdPhi(z)}
	if !math.IsInf(z, 0) {
		b.ZPhi = z * b.Phi
	}
	return b
}

// MomentsBetween assembles the partial moments of N(mu, sigma²) over one
// interval from its precomputed Boundary terms. It performs the same
// floating-point operations in the same order as TruncatedMoments, so
// MomentsBetween(BoundaryAt(lo, mu, sigma), BoundaryAt(hi, mu, sigma), sigma)
// equals TruncatedMoments(lo, hi, mu, sigma) bit for bit.
func MomentsBetween(lo, hi Boundary, sigma float64) PartialMoments {
	var pm PartialMoments
	pm.D = 0.5 * (hi.Erf - lo.Erf)
	pm.M = sigma * (lo.Phi - hi.Phi)
	pm.V = sigma * sigma * (pm.D + lo.ZPhi - hi.ZPhi)
	if pm.V < 0 {
		// Guard against catastrophic cancellation on very thin slices.
		pm.V = 0
	}
	if pm.D < 0 {
		pm.D = 0
	}
	return pm
}
