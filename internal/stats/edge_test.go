package stats

import (
	"math"
	"testing"
)

// knotGrids are representative PWL knot sets (interior knots of relu and of
// 7-piece sigmoid/tanh-like fits) used to check that piece masses partition
// the total probability.
var knotGrids = [][]float64{
	{0},
	{-4, -2, -0.7, 0.7, 2, 4},
	{-8.5, -1e-3, 1e-3, 8.5},
}

// edgeParams crosses distribution parameters the partial moments must
// survive: knots standardized past |z| = 8 (tail saturation), σ close to the
// point-mass regime, and very wide spreads.
var edgeParams = []struct {
	mu, sigma float64
}{
	{0, 1},
	{0, 1e-9},
	{0, 1e6},
	{25, 1},       // every knot at z < -8: total tail saturation
	{-25, 1},      // every knot at z > 8
	{1e6, 1e-3},   // extreme |z| ~ 1e9
	{-3.5, 1e-12}, // sigma at the scale of the propagation point-mass floor
	{0.7, 1e-9},   // sigma tiny with mu exactly on a knot
}

// TestTruncatedMomentsPartition checks Σ_p D_p = 1, Σ_p M_p = 0, and
// Σ_p V_p = σ² when the pieces tile (−∞, +∞): the defining partition
// identities of eqs. 23–25, which any boundary-sharing optimization must
// preserve exactly.
func TestTruncatedMomentsPartition(t *testing.T) {
	for _, knots := range knotGrids {
		for _, p := range edgeParams {
			edges := append(append([]float64{math.Inf(-1)}, knots...), math.Inf(1))
			var sumD, sumM, sumV float64
			for i := 0; i+1 < len(edges); i++ {
				pm := TruncatedMoments(edges[i], edges[i+1], p.mu, p.sigma)
				if pm.D < 0 || pm.D > 1+1e-15 {
					t.Fatalf("knots %v mu=%v sigma=%v piece %d: D = %v outside [0, 1]", knots, p.mu, p.sigma, i, pm.D)
				}
				if pm.V < 0 {
					t.Fatalf("knots %v mu=%v sigma=%v piece %d: V = %v < 0", knots, p.mu, p.sigma, i, pm.V)
				}
				sumD += pm.D
				sumM += pm.M
				sumV += pm.V
			}
			if math.Abs(sumD-1) > 1e-12 {
				t.Errorf("knots %v mu=%v sigma=%v: Σ D = %v, want 1", knots, p.mu, p.sigma, sumD)
			}
			if math.Abs(sumM) > 1e-12*p.sigma {
				t.Errorf("knots %v mu=%v sigma=%v: Σ M = %v, want 0 (tol %g)", knots, p.mu, p.sigma, sumM, 1e-12*p.sigma)
			}
			if s2 := p.sigma * p.sigma; math.Abs(sumV-s2) > 1e-12*s2 {
				t.Errorf("knots %v mu=%v sigma=%v: Σ V = %v, want σ² = %v", knots, p.mu, p.sigma, sumV, s2)
			}
		}
	}
}

// TestTruncatedMomentsTailSaturation pins the |z| > 8 behavior: a piece
// lying entirely beyond 8σ carries essentially no mass, and the complement
// piece carries essentially all of it — with every term finite.
func TestTruncatedMomentsTailSaturation(t *testing.T) {
	for _, sigma := range []float64{1e-9, 1, 1e6} {
		mu := 3.25
		far := mu + 8.5*sigma
		tail := TruncatedMoments(far, math.Inf(1), mu, sigma)
		if tail.D > 1e-16 {
			t.Errorf("sigma=%v: mass beyond 8.5σ = %v, want < 1e-16", sigma, tail.D)
		}
		if tail.M < 0 || tail.V < 0 {
			t.Errorf("sigma=%v: tail moments negative: %+v", sigma, tail)
		}
		bulk := TruncatedMoments(math.Inf(-1), far, mu, sigma)
		if math.Abs(bulk.D-1) > 1e-15 {
			t.Errorf("sigma=%v: bulk mass = %v, want ≈1", sigma, bulk.D)
		}
		// Far left tail: both phi terms underflow together, no 0·Inf or NaN.
		left := TruncatedMoments(math.Inf(-1), mu-40*sigma, mu, sigma)
		if left.D != 0 || left.M != 0 || left.V != 0 {
			t.Errorf("sigma=%v: 40σ left tail = %+v, want exact zeros", sigma, left)
		}
	}
}

// TestTruncatedMomentsPointMassLimit drives σ→0 over a fixed interval: the
// moments must converge to the indicator of mu ∈ [lo, hi] with vanishing
// central moments, never to NaN.
func TestTruncatedMomentsPointMassLimit(t *testing.T) {
	for _, sigma := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15, 1e-300} {
		in := TruncatedMoments(-1, 1, 0.25, sigma)
		if math.Abs(in.D-1) > 1e-15 {
			t.Errorf("sigma=%v: D over containing interval = %v, want 1", sigma, in.D)
		}
		if math.Abs(in.M) > sigma || in.V > sigma*sigma*(1+1e-12) {
			t.Errorf("sigma=%v: central moments M=%v V=%v exceed σ scales", sigma, in.M, in.V)
		}
		out := TruncatedMoments(-1, 1, 7.5, sigma)
		if out.D != 0 || out.M != 0 || out.V != 0 {
			t.Errorf("sigma=%v: moments of excluded interval = %+v, want zeros", sigma, out)
		}
	}
}

// TestTruncatedMomentsInfiniteBounds checks the doubly-infinite piece (a
// k = 0 constant piece spanning the whole line sees exactly the full
// distribution) and the half-infinite forms used by relu's two pieces.
func TestTruncatedMomentsInfiniteBounds(t *testing.T) {
	for _, p := range edgeParams {
		full := TruncatedMoments(math.Inf(-1), math.Inf(1), p.mu, p.sigma)
		if full.D != 1 {
			t.Errorf("mu=%v sigma=%v: full-line D = %v, want exactly 1", p.mu, p.sigma, full.D)
		}
		if full.M != 0 {
			t.Errorf("mu=%v sigma=%v: full-line M = %v, want exactly 0", p.mu, p.sigma, full.M)
		}
		s2 := p.sigma * p.sigma
		if math.Abs(full.V-s2) > 1e-15*s2 {
			t.Errorf("mu=%v sigma=%v: full-line V = %v, want σ² = %v", p.mu, p.sigma, full.V, s2)
		}
		lo := TruncatedMoments(math.Inf(-1), p.mu, p.mu, p.sigma)
		hi := TruncatedMoments(p.mu, math.Inf(1), p.mu, p.sigma)
		if math.Abs(lo.D-0.5) > 1e-15 || math.Abs(hi.D-0.5) > 1e-15 {
			t.Errorf("mu=%v sigma=%v: half-line masses %v, %v, want 0.5 each", p.mu, p.sigma, lo.D, hi.D)
		}
	}
}

// TestTruncatedMomentsNoNaNLeaks sweeps a hostile parameter grid and
// requires every returned moment to be finite: the moment kernels feed
// these values straight into matmuls, where a single NaN poisons the batch.
func TestTruncatedMomentsNoNaNLeaks(t *testing.T) {
	// sigma stays below ~1.3e154 so sigma² is representable: callers derive
	// sigma from a float64 variance, so larger values cannot reach the
	// library (and σ²·0 would be Inf·0 = NaN beyond that point).
	bounds := []float64{math.Inf(-1), -1e300, -1e6, -1, -1e-300, 0, 1e-300, 1, 1e6, 1e300, math.Inf(1)}
	sigmas := []float64{1e-300, 1e-15, 1e-3, 1, 1e3, 1e15, 1e150}
	mus := []float64{-1e6, -1, 0, 1e-9, 1, 1e6}
	check := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is %v", name, v)
		}
	}
	for _, mu := range mus {
		for _, sigma := range sigmas {
			for i, lo := range bounds {
				for _, hi := range bounds[i:] {
					pm := TruncatedMoments(lo, hi, mu, sigma)
					check("D", pm.D)
					check("M", pm.M)
					check("V", pm.V)
					bl, bh := BoundaryAt(lo, mu, sigma), BoundaryAt(hi, mu, sigma)
					bb := MomentsBetween(bl, bh, sigma)
					check("boundary D", bb.D)
					check("boundary M", bb.M)
					check("boundary V", bb.V)
				}
			}
		}
	}
}

// TestMomentsBetweenBitIdentical verifies the documented contract that
// boundary-sharing assembly reproduces TruncatedMoments bit for bit on the
// edge grid — the identity the batched activation kernel depends on.
func TestMomentsBetweenBitIdentical(t *testing.T) {
	for _, knots := range knotGrids {
		for _, p := range edgeParams {
			edges := append(append([]float64{math.Inf(-1)}, knots...), math.Inf(1))
			bs := make([]Boundary, len(edges))
			for i, x := range edges {
				bs[i] = BoundaryAt(x, p.mu, p.sigma)
			}
			for i := 0; i+1 < len(edges); i++ {
				direct := TruncatedMoments(edges[i], edges[i+1], p.mu, p.sigma)
				shared := MomentsBetween(bs[i], bs[i+1], p.sigma)
				if math.Float64bits(direct.D) != math.Float64bits(shared.D) ||
					math.Float64bits(direct.M) != math.Float64bits(shared.M) ||
					math.Float64bits(direct.V) != math.Float64bits(shared.V) {
					t.Errorf("knots %v mu=%v sigma=%v piece %d: direct %+v != shared %+v",
						knots, p.mu, p.sigma, i, direct, shared)
				}
			}
		}
	}
}
