package stats

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateExactGolden regenerates testdata/exact_moments_golden.json from the
// current implementation:
//
//	go test ./internal/stats -run TestGoldenExactMoments -update
//
// The golden file pins the exact rectified-Gaussian closed forms bit-for-bit
// on a grid that spans the bulk, both deep tails, sub-floor sigmas, and
// extreme magnitudes. The exact backend is the default moment path for every
// ReLU/leaky-ReLU layer, so any reformulation of the Φ/φ identities — however
// innocent-looking — must show up as an explicit diff here, not as a silent
// drift in trained-model predictions.
var updateExactGolden = flag.Bool("update", false, "rewrite the exact-moments golden file")

const exactGoldenPath = "testdata/exact_moments_golden.json"

type goldenMoment struct {
	Mu    string `json:"mu"`
	Sigma string `json:"sigma"`
	Alpha string `json:"alpha,omitempty"`
	Mean  string `json:"mean"`
	Var   string `json:"var"`
}

type exactGoldenFile struct {
	Comment string         `json:"comment"`
	ReLU    []goldenMoment `json:"relu"`
	Leaky   []goldenMoment `json:"leaky"`
}

// exactGoldenGrid is the pinned input grid: z from deep negative to deep
// positive at several sigma scales, plus denormal and huge magnitudes.
func exactGoldenGrid() (mus, sigmas []float64) {
	for _, sigma := range []float64{1e-300, 1e-9, 1e-3, 1, 1e3, 1e8} {
		for _, z := range []float64{-30, -12, -9, -6, -2, -0.5, 0, 0.5, 2, 6, 9, 12, 30} {
			mus = append(mus, z*sigma)
			sigmas = append(sigmas, sigma)
		}
	}
	// Off-grid irrationals so the table is not accidentally symmetric.
	mus = append(mus, math.Pi, -math.E, 1e6*math.Sqrt2)
	sigmas = append(sigmas, math.Sqrt2, math.Pi, 1e-2)
	return mus, sigmas
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseG(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("golden file holds unparseable float %q: %v", s, err)
	}
	return v
}

// TestGoldenExactMoments pins RectifiedMoments and LeakyRectifiedMoments
// bit-exactly against testdata/exact_moments_golden.json.
func TestGoldenExactMoments(t *testing.T) {
	mus, sigmas := exactGoldenGrid()
	const alpha = 0.01

	var relu, leaky []goldenMoment
	for i := range mus {
		m, v := RectifiedMoments(mus[i], sigmas[i])
		relu = append(relu, goldenMoment{
			Mu: fmtG(mus[i]), Sigma: fmtG(sigmas[i]), Mean: fmtG(m), Var: fmtG(v),
		})
		m, v = LeakyRectifiedMoments(mus[i], sigmas[i], alpha)
		leaky = append(leaky, goldenMoment{
			Mu: fmtG(mus[i]), Sigma: fmtG(sigmas[i]), Alpha: fmtG(alpha), Mean: fmtG(m), Var: fmtG(v),
		})
	}

	if *updateExactGolden {
		g := exactGoldenFile{
			Comment: "Exact rectified-Gaussian moments, bit-pinned. Regenerate with: go test ./internal/stats -run TestGoldenExactMoments -update",
			ReLU:    relu,
			Leaky:   leaky,
		}
		js, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(exactGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(exactGoldenPath, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", exactGoldenPath)
		return
	}

	raw, err := os.ReadFile(exactGoldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want exactGoldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want []goldenMoment) {
		if len(want) != len(got) {
			t.Fatalf("%s: golden has %d rows, implementation grid has %d", name, len(want), len(got))
		}
		for i := range got {
			for _, c := range []struct {
				field string
				g, w  string
			}{
				{"mu", got[i].Mu, want[i].Mu},
				{"sigma", got[i].Sigma, want[i].Sigma},
				{"mean", got[i].Mean, want[i].Mean},
				{"var", got[i].Var, want[i].Var},
			} {
				gv, wv := parseG(t, c.g), parseG(t, c.w)
				if math.Float64bits(gv) != math.Float64bits(wv) {
					t.Errorf("%s row %d (mu=%s sigma=%s) field %s: got %v (bits %#x), golden %v (bits %#x)\n"+
						"intentional change? regenerate with -update and review the diff",
						name, i, got[i].Mu, got[i].Sigma, c.field, gv, math.Float64bits(gv), wv, math.Float64bits(wv))
				}
			}
		}
	}
	check("relu", relu, want.ReLU)
	check("leaky", leaky, want.Leaky)
}
