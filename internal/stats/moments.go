package stats

import (
	"fmt"
	"math"
)

// Welford is a streaming mean/variance accumulator using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations added so far.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (divides by n). It returns 0
// before the second observation.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (divides by n−1).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (parallel variance combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// VecWelford tracks streaming per-element mean and variance for fixed-length
// vectors; it is how MCDrop accumulates its sample moments without storing
// every sample.
type VecWelford struct {
	n    int64
	mean []float64
	m2   []float64
}

// NewVecWelford returns an accumulator for vectors of length dim.
func NewVecWelford(dim int) *VecWelford {
	return &VecWelford{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Dim returns the tracked vector length.
func (w *VecWelford) Dim() int { return len(w.mean) }

// Count returns the number of vectors added.
func (w *VecWelford) Count() int64 { return w.n }

// Add folds one vector observation in. x must have length Dim(); extra or
// missing elements indicate a caller bug and are ignored beyond the shorter
// length to keep the hot path branch-free — callers validate shapes upstream.
func (w *VecWelford) Add(x []float64) {
	w.n++
	inv := 1.0 / float64(w.n)
	for i := range w.mean {
		delta := x[i] - w.mean[i]
		w.mean[i] += delta * inv
		w.m2[i] += delta * (x[i] - w.mean[i])
	}
}

// Merge folds another accumulator into w (the parallel variance combination
// of Welford.Merge, element-wise). Both accumulators must track the same
// dimension; merging is how parallel samplers (mcdrop worker streams)
// combine their per-chunk moments without storing samples.
func (w *VecWelford) Merge(o *VecWelford) {
	if o == nil || o.n == 0 {
		return
	}
	if w.n == 0 {
		w.n = o.n
		copy(w.mean, o.mean)
		copy(w.m2, o.m2)
		return
	}
	n := w.n + o.n
	wn, on := float64(w.n), float64(o.n)
	for i := range w.mean {
		delta := o.mean[i] - w.mean[i]
		w.m2[i] += o.m2[i] + delta*delta*wn*on/float64(n)
		w.mean[i] += delta * on / float64(n)
	}
	w.n = n
}

// State returns the accumulator's raw streaming state — the observation
// count and the per-element running means and M2 sums — as copies. Together
// with VecWelfordFromState it is the persistence contract: a restored
// accumulator continues the stream bit-for-bit where the snapshot left off
// (Add and Merge touch only these three fields).
func (w *VecWelford) State() (n int64, mean, m2 []float64) {
	mean = make([]float64, len(w.mean))
	m2 = make([]float64, len(w.m2))
	copy(mean, w.mean)
	copy(m2, w.m2)
	return w.n, mean, m2
}

// VecWelfordFromState rebuilds an accumulator from State output. The slices
// are copied. It rejects mismatched lengths and a negative count; deeper
// validation (finiteness, non-negative M2) belongs to the serialization
// layer that owns the wire format.
func VecWelfordFromState(n int64, mean, m2 []float64) (*VecWelford, error) {
	if len(mean) != len(m2) {
		return nil, fmt.Errorf("stats: welford state mean len %d != m2 len %d", len(mean), len(m2))
	}
	if n < 0 {
		return nil, fmt.Errorf("stats: welford state count %d < 0", n)
	}
	w := NewVecWelford(len(mean))
	w.n = n
	copy(w.mean, mean)
	copy(w.m2, m2)
	return w, nil
}

// Mean returns the running per-element mean. The returned slice is a copy.
func (w *VecWelford) Mean() []float64 {
	out := make([]float64, len(w.mean))
	copy(out, w.mean)
	return out
}

// Variance returns the per-element population variance as a copy.
func (w *VecWelford) Variance() []float64 {
	out := make([]float64, len(w.m2))
	if w.n < 2 {
		return out
	}
	inv := 1.0 / float64(w.n)
	for i, m2 := range w.m2 {
		out[i] = m2 * inv
	}
	return out
}

// SampleVariance returns the per-element unbiased variance as a copy.
func (w *VecWelford) SampleVariance() []float64 {
	out := make([]float64, len(w.m2))
	if w.n < 2 {
		return out
	}
	inv := 1.0 / float64(w.n-1)
	for i, m2 := range w.m2 {
		out[i] = m2 * inv
	}
	return out
}
