package stats

import "math"

// Exact rectified-Gaussian moments (Thompson & McCrory 2026, "Uncertainty
// propagation through trained multi-layer perceptrons: Exact analytical
// results"). For X ~ N(μ, σ²) the ReLU output relu(X) = max(0, X) has
// closed-form moments in terms of the standard normal CDF Φ and PDF φ at
// z = μ/σ:
//
//	E[relu(X)]   = μΦ(z) + σφ(z)
//	E[relu(X)²]  = (μ² + σ²)Φ(z) + μσφ(z)
//
// The naive variance E[relu²] − E[relu]² cancels catastrophically for z ≫ 0
// (both terms approach μ², so the σ²-scale answer is the difference of two
// μ²-scale numbers). Expanding in z and grouping removes every μ²-scale
// term:
//
//	Var[relu(X)]/σ² = Φ(z) + z²Φ(z)Φ(−z) + zφ(z)(Φ(−z) − Φ(z)) − φ(z)²
//
// Each summand is O(1), the limits are 1 (z → +∞) and 0 (z → −∞), and the
// only subtraction is the benign −φ² term, so the form is accurate at both
// tails. Φ(z) is computed as ½·erfc(−z/√2) — NOT ½(1 + erf(z/√2)), which
// loses all relative accuracy below z ≈ −8.3 (the erf form saturates at
// −1 and the sum cancels to the last ulp of 1, an absolute error of ~1e−16
// against a true value of ~7.6e−24 at z = −10). math.Erfc carries relative
// accuracy into both tails, so the mean μΦ + σφ cancels to an absolute
// error of order eps·φ(z)·σ — far inside the oracle's condEps·S budget.
//
// These are the exact-moment activation backend behind
// core.Options.ActivationMoments / nn.MomentsExact; the PWL closed form
// (PartialMoments over pieces) remains as the general-activation path and
// as an independent cross-check.

// RectifiedMoments returns the exact mean and variance of relu(X) = max(0, X)
// for X ~ N(mu, sigma²). sigma must be positive; callers handle the σ → 0
// point mass (core.SigmaFloor) before dispatching here.
func RectifiedMoments(mu, sigma float64) (mean, variance float64) {
	z := mu / sigma
	cdf := 0.5 * math.Erfc(-z/sqrt2) // Φ(z), tail-accurate on both sides
	cdfC := 0.5 * math.Erfc(z/sqrt2) // Φ(−z)
	pdf := stdPhi(z)                 // φ(z)
	mean = mu*cdf + sigma*pdf
	v := cdf + z*z*cdf*cdfC + z*pdf*(cdfC-cdf) - pdf*pdf
	if v < 0 {
		v = 0
	}
	variance = sigma * sigma * v
	return mean, variance
}

// LeakyRectifiedMoments returns the exact mean and variance of the leaky
// rectifier f(X) = X for X > 0, αX otherwise, for X ~ N(mu, sigma²) and
// slope 0 ≤ alpha ≤ 1. Writing f(x) = αx + (1−α)·relu(x) and using Stein's
// identity Cov(X, relu(X)) = σ²Φ(z):
//
//	E[f]   = αμ + (1−α)·E[relu]
//	Var[f] = α²σ² + (1−α)²·Var[relu] + 2α(1−α)σ²Φ(z)
//
// Every variance term is nonnegative, so the leaky form inherits the
// tail stability of RectifiedMoments with no new cancellation. alpha = 0
// reduces bit-exactly to RectifiedMoments; alpha = 1 to the identity.
// sigma must be positive, as for RectifiedMoments.
func LeakyRectifiedMoments(mu, sigma, alpha float64) (mean, variance float64) {
	z := mu / sigma
	cdf := 0.5 * math.Erfc(-z/sqrt2)
	cdfC := 0.5 * math.Erfc(z/sqrt2)
	pdf := stdPhi(z)
	meanR := mu*cdf + sigma*pdf
	vR := cdf + z*z*cdf*cdfC + z*pdf*(cdfC-cdf) - pdf*pdf
	if vR < 0 {
		vR = 0
	}
	b := 1 - alpha
	mean = alpha*mu + b*meanR
	variance = sigma * sigma * (alpha*alpha + b*b*vR + 2*alpha*b*cdf)
	return mean, variance
}
