package stats

import (
	"math"
	"testing"
)

// quadRectified integrates the rectifier's moments numerically: composite
// Simpson over [0, μ+tail·σ] (the negative half contributes αx terms handled
// analytically below for leaky), plus the point mass of the clamped negative
// half. Independent of the closed forms under test — it goes through the
// density directly.
func quadRectified(mu, sigma, alpha float64, t *testing.T) (mean, variance float64) {
	t.Helper()
	const n = 200001 // odd
	integ := func(lo, hi float64, f func(float64) float64) float64 {
		if hi <= lo {
			return 0
		}
		h := (hi - lo) / float64(n-1)
		sum := f(lo) + f(hi)
		for i := 1; i < n-1; i++ {
			x := lo + float64(i)*h
			if i%2 == 1 {
				sum += 4 * f(x)
			} else {
				sum += 2 * f(x)
			}
		}
		return sum * h / 3
	}
	dens := func(x float64) float64 {
		z := (x - mu) / sigma
		return invSqrt2Pi / sigma * math.Exp(-0.5*z*z)
	}
	leaky := func(x float64) float64 {
		if x > 0 {
			return x
		}
		return alpha * x
	}
	// Split at the kink: Simpson across x = 0 converges too slowly.
	lo, hi := mu-12*sigma, mu+12*sigma
	split := math.Min(math.Max(0, lo), hi)
	m1 := integ(lo, split, func(x float64) float64 { return leaky(x) * dens(x) }) +
		integ(split, hi, func(x float64) float64 { return leaky(x) * dens(x) })
	m2 := integ(lo, split, func(x float64) float64 { return leaky(x) * leaky(x) * dens(x) }) +
		integ(split, hi, func(x float64) float64 { return leaky(x) * leaky(x) * dens(x) })
	return m1, m2 - m1*m1
}

func TestRectifiedMomentsVsQuadrature(t *testing.T) {
	// Benign z range where both quadrature and the naive subtraction are
	// trustworthy; tails are covered by the invariant and limit tests.
	for _, mu := range []float64{-4, -1.5, -0.1, 0, 0.1, 1.5, 4} {
		for _, sigma := range []float64{0.3, 1, 7.5} {
			wantM, wantV := quadRectified(mu, sigma, 0, t)
			gotM, gotV := RectifiedMoments(mu, sigma)
			if relErr(gotM, wantM) > 1e-9 {
				t.Errorf("mean(mu=%v,sigma=%v) = %v, quadrature %v", mu, sigma, gotM, wantM)
			}
			if relErr(gotV, wantV) > 1e-8 {
				t.Errorf("var(mu=%v,sigma=%v) = %v, quadrature %v", mu, sigma, gotV, wantV)
			}
		}
	}
}

func TestLeakyRectifiedMomentsVsQuadrature(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.2, 0.9} {
		for _, mu := range []float64{-3, -0.5, 0, 2} {
			for _, sigma := range []float64{0.5, 2} {
				wantM, wantV := quadRectified(mu, sigma, alpha, t)
				gotM, gotV := LeakyRectifiedMoments(mu, sigma, alpha)
				if relErr(gotM, wantM) > 1e-8 {
					t.Errorf("mean(mu=%v,sigma=%v,a=%v) = %v, quadrature %v", mu, sigma, alpha, gotM, wantM)
				}
				if relErr(gotV, wantV) > 1e-7 {
					t.Errorf("var(mu=%v,sigma=%v,a=%v) = %v, quadrature %v", mu, sigma, alpha, gotV, wantV)
				}
			}
		}
	}
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if s := math.Abs(want); s > 1 {
		return d / s
	}
	return d
}

// TestRectifiedMomentsInvariants drives the closed forms across a hostile
// μ/σ grid — |z| up to 1e15 in both directions — and checks the exact
// distributional invariants that the naive E[y²]−E[y]² form violates at the
// tails: 0 ≤ Var ≤ σ², max(0, μ) ≤ mean ≤ max(0, μ) + σφ(0), and everything
// finite.
func TestRectifiedMomentsInvariants(t *testing.T) {
	mus := []float64{0, 1e-300, -1e-300, 1e-9, -1e-9, 1, -1, 42.5, -42.5, 1e6, -1e6, 1e12, -1e12}
	sigmas := []float64{1e-12, 1e-6, 0.37, 1, 2e3, 1e9}
	for _, mu := range mus {
		for _, sigma := range sigmas {
			m, v := RectifiedMoments(mu, sigma)
			if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite moments at mu=%v sigma=%v: %v, %v", mu, sigma, m, v)
			}
			if v < 0 || v > sigma*sigma*(1+1e-12) {
				t.Errorf("var(mu=%v,sigma=%v) = %v outside [0, σ²]", mu, sigma, v)
			}
			floor := math.Max(0, mu)
			ceil := floor + sigma*invSqrt2Pi
			if m < floor-1e-12*(1+math.Abs(floor)) || m > ceil*(1+1e-12) {
				t.Errorf("mean(mu=%v,sigma=%v) = %v outside [%v, %v]", mu, sigma, m, floor, ceil)
			}
		}
	}
}

// TestRectifiedMomentsTailLimits pins the saturation behaviour: deep in the
// positive tail the rectifier is the identity (mean → μ, var → σ², at
// relative eps), deep in the negative tail it is the zero point mass — and
// the mean keeps RELATIVE accuracy there, which is the whole reason Φ is
// computed via erfc. At z = −10 the true mean is σφ(10)/10·(1−1/100+…)
// ≈ 7.63e−24·σ; the erf-based Φ would return ~1e−17-scale garbage.
func TestRectifiedMomentsTailLimits(t *testing.T) {
	// Positive saturation.
	for _, z := range []float64{9, 15, 40, 1e8} {
		m, v := RectifiedMoments(z, 1) // sigma = 1, mu = z
		if relErr(m, z) > 1e-15 {
			t.Errorf("positive tail mean(z=%v) = %v, want %v", z, m, z)
		}
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("positive tail var(z=%v) = %v, want 1", z, v)
		}
	}
	// Negative tail: compare against the asymptotic series
	// E[relu] = φ(z)/z²·(1 − 3/z² + O(z⁻⁴)) for z → −∞.
	for _, z := range []float64{-9, -12, -20} {
		m, _ := RectifiedMoments(z, 1)
		z2 := z * z
		want := stdPhi(z) / z2 * (1 - 3/z2 + 15/(z2*z2) - 105/(z2*z2*z2))
		// The series is asymptotic; its own truncation error is ~945/z⁸.
		tol := 2000 / (z2 * z2 * z2 * z2)
		if m <= 0 {
			t.Fatalf("negative tail mean(z=%v) = %v, want positive", z, m)
		}
		if d := math.Abs(m-want) / want; d > tol {
			t.Errorf("negative tail mean(z=%v) = %v, asymptotic %v (rel %v)", z, m, want, d)
		}
	}
}

// TestLeakyRectifiedMomentsEndpoints pins the algebraic endpoints: α = 0 is
// bit-identical to RectifiedMoments (the kernel dispatch relies on either
// being safe to call for plain ReLU) and α = 1 is bit-identical to the
// identity's moments.
func TestLeakyRectifiedMomentsEndpoints(t *testing.T) {
	for _, mu := range []float64{-7, -0.3, 0, 0.3, 7, 1e6, -1e6} {
		for _, sigma := range []float64{1e-6, 1, 1e3} {
			wm, wv := RectifiedMoments(mu, sigma)
			gm, gv := LeakyRectifiedMoments(mu, sigma, 0)
			if math.Float64bits(gm) != math.Float64bits(wm) || math.Float64bits(gv) != math.Float64bits(wv) {
				t.Errorf("alpha=0 (mu=%v,sigma=%v): (%v,%v) != RectifiedMoments (%v,%v)", mu, sigma, gm, gv, wm, wv)
			}
			im, iv := LeakyRectifiedMoments(mu, sigma, 1)
			if math.Float64bits(im) != math.Float64bits(mu) || math.Float64bits(iv) != math.Float64bits(sigma*sigma) {
				t.Errorf("alpha=1 (mu=%v,sigma=%v): (%v,%v), want identity (%v,%v)", mu, sigma, im, iv, mu, sigma*sigma)
			}
		}
	}
}
