package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentHammer is the arena's concurrency acceptance test (run
// under -race by tools/check.sh): many goroutines create, ingest, evict,
// and recreate disjoint device sets concurrently — with snapshot passes
// racing the whole time — and then the exact same per-device schedules are
// replayed on a fresh manager by a single goroutine. Every verdict must be
// bit-identical and no update may be lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		devsPerG   = 16
		samples    = 150
		evictAt    = 90 // each goroutine evicts half its devices here
	)
	cfg := Config{
		Channels: 2, Length: 4, Stride: 2,
		Standardize: true, WarmupWindows: 2,
		DriftThreshold: 0.6, Shards: 32,
	}

	// Deterministic per-device schedules, generated up front so the
	// concurrent run and the replay consume identical inputs.
	type step struct {
		sample []float64
		evict  bool // evict the device before ingesting this sample
	}
	schedules := make(map[string][]step)
	for g := 0; g < goroutines; g++ {
		for d := 0; d < devsPerG; d++ {
			dev := fmt.Sprintf("fleet%d/dev%d", g, d)
			rng := rand.New(rand.NewSource(int64(g*1000 + d)))
			steps := make([]step, samples)
			for i := range steps {
				val := rng.NormFloat64()
				if i > samples*2/3 {
					val *= 40
				}
				steps[i] = step{
					sample: []float64{val, -val * 0.25},
					evict:  i == evictAt && d%2 == 0,
				}
			}
			schedules[dev] = steps
		}
	}

	run := func(m *Manager, dev string) ([]Verdict, error) {
		var out []Verdict
		for _, s := range schedules[dev] {
			if s.evict {
				if !m.Evict(dev) {
					return nil, fmt.Errorf("%s: evict found no session", dev)
				}
			}
			v, err := m.Ingest(context.Background(), dev, s.sample)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", dev, err)
			}
			out = append(out, v)
		}
		return out, nil
	}

	concurrent, err := NewManager(cfg, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[string][]Verdict)
	var resMu sync.Mutex
	var ingestWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot passes race the ingest storm; the only tolerable failure is
	// the documented mid-pass shrink race (an Evict between the count pass
	// and the write pass), which surfaces as ErrSnapshot.
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := concurrent.Snapshot(discardWriter{}); err != nil && !errors.Is(err, ErrSnapshot) {
				t.Errorf("racing snapshot: %v", err)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		ingestWG.Add(1)
		go func(g int) {
			defer ingestWG.Done()
			for d := 0; d < devsPerG; d++ {
				dev := fmt.Sprintf("fleet%d/dev%d", g, d)
				vs, err := run(concurrent, dev)
				if err != nil {
					t.Error(err)
					return
				}
				resMu.Lock()
				results[dev] = vs
				resMu.Unlock()
			}
		}(g)
	}
	ingestWG.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Zero lost updates: every counter adds up exactly.
	st := concurrent.Stats()
	totalSamples := int64(goroutines * devsPerG * samples)
	if st.Ingested != totalSamples {
		t.Fatalf("ingested %d, want %d", st.Ingested, totalSamples)
	}
	wantCreated := int64(goroutines*devsPerG) + int64(goroutines*devsPerG/2)
	if st.Created != wantCreated {
		t.Fatalf("created %d, want %d", st.Created, wantCreated)
	}
	if st.EvictedExplicit != int64(goroutines*devsPerG/2) {
		t.Fatalf("evicted %d, want %d", st.EvictedExplicit, goroutines*devsPerG/2)
	}
	if st.Resident != goroutines*devsPerG {
		t.Fatalf("resident %d, want %d", st.Resident, goroutines*devsPerG)
	}
	if st.Windows != st.Accepted+st.Escalated {
		t.Fatalf("windows %d != accepted %d + escalated %d", st.Windows, st.Accepted, st.Escalated)
	}

	// Single-goroutine replay: identical verdicts, bit for bit.
	replay, err := NewManager(cfg, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	for dev := range schedules {
		want := results[dev]
		got, err := run(replay, dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d verdicts vs %d", dev, len(got), len(want))
		}
		for i := range got {
			if !verdictsEqual(got[i], want[i]) {
				t.Fatalf("%s: verdict %d diverged between concurrent run and replay:\n conc %+v\n repl %+v",
					dev, i, want[i], got[i])
			}
		}
	}
	if rs := replay.Stats(); rs.Windows != st.Windows || rs.Accepted != st.Accepted ||
		rs.Escalated != st.Escalated || rs.NonFinite != st.NonFinite {
		t.Fatalf("replay stats %+v != concurrent stats %+v", rs, st)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
