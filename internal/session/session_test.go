package session

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/stream"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// testPredict is a deterministic pure predictor: mean of the window as the
// prediction, squared mean absolute value as the variance — so the input
// scale directly controls the surprisal the gate sees.
func testPredict(_ context.Context, rows []tensor.Vector) ([]core.GaussianVec, error) {
	out := make([]core.GaussianVec, len(rows))
	for i, x := range rows {
		var mean, absMean float64
		for _, v := range x {
			mean += v
			absMean += math.Abs(v)
		}
		mean /= float64(len(x))
		absMean /= float64(len(x))
		out[i] = core.GaussianVec{Mean: []float64{mean}, Var: []float64{absMean * absMean}}
	}
	return out, nil
}

// echoPredict returns the window itself as the mean with unit variance, for
// comparing the manager's windowing/standardization against the stream
// primitives bit-for-bit.
func echoPredict(_ context.Context, rows []tensor.Vector) ([]core.GaussianVec, error) {
	out := make([]core.GaussianVec, len(rows))
	for i, x := range rows {
		mean := append([]float64(nil), x...)
		vr := make([]float64, len(x))
		for j := range vr {
			vr[j] = 1
		}
		out[i] = core.GaussianVec{Mean: mean, Var: vr}
	}
	return out, nil
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// fakeClock is an injectable, mutable clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestIngestMatchesStreamPrimitives: the arena's windowing and
// standardization are bit-identical to stream.Windower +
// stream.OnlineStandardizer — windows complete at the same pushes, and the
// standardized window handed to the model matches the Pipeline order
// (Observe then Apply) exactly.
func TestIngestMatchesStreamPrimitives(t *testing.T) {
	const channels, length, stride = 3, 8, 4
	m, err := NewManager(Config{
		Channels: channels, Length: length, Stride: stride,
		Standardize: true, WarmupWindows: 1,
	}, echoPredict)
	if err != nil {
		t.Fatal(err)
	}
	win, err := stream.NewWindower(channels, length, stride)
	if err != nil {
		t.Fatal(err)
	}
	std, err := stream.NewOnlineStandardizer(channels * length)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		sample := []float64{math.Sin(float64(i)), math.Cos(float64(2 * i)), float64(i%7) - 3}
		v, err := m.Ingest(ctx, "fleet/dev0", sample)
		if err != nil {
			t.Fatal(err)
		}
		w, ready, err := win.Push(sample)
		if err != nil {
			t.Fatal(err)
		}
		if v.Window != ready {
			t.Fatalf("sample %d: manager window=%v, stream ready=%v", i, v.Window, ready)
		}
		if !ready {
			continue
		}
		if err := std.Observe(w); err != nil {
			t.Fatal(err)
		}
		x, err := std.Apply(w)
		if err != nil {
			t.Fatal(err)
		}
		// echoPredict returns the standardized window as the mean.
		if !bitsEqual(v.Pred.Mean, x) {
			t.Fatalf("sample %d: standardized window diverged\n manager %v\n stream  %v", i, v.Pred.Mean, x)
		}
	}
}

// TestWarmupAccepts: windows during warmup never escalate (z is pinned to
// 0) even with an aggressive threshold.
func TestWarmupAccepts(t *testing.T) {
	m, err := NewManager(Config{
		Channels: 1, Length: 2, Stride: 1,
		WarmupWindows: 5, DriftThreshold: 0.5,
	}, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	windows := 0
	for i := 0; i < 12; i++ {
		v, err := m.Ingest(ctx, "d", []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Window {
			continue
		}
		windows++
		if windows <= 5 {
			if v.Z != 0 {
				t.Fatalf("warmup window %d: z = %v, want 0", windows, v.Z)
			}
			if v.Decision != stream.Accept {
				t.Fatalf("warmup window %d: decision %v", windows, v.Decision)
			}
		}
	}
	if windows < 6 {
		t.Fatalf("only %d windows completed", windows)
	}
}

// TestDriftEscalatesAndReadmits drives the whole surprisal-then-calibrate
// loop: a stable stream warms up and accepts; a variance jump must first
// survive escalate-side hysteresis, then latch; returning to baseline
// readmits after the configured number of clean windows.
func TestDriftEscalatesAndReadmits(t *testing.T) {
	// Threshold 0.6 ~ z 2.4 under DefaultCalibrator: high enough that the
	// stable stream (z ~ 0, score ~ 0.12) never trips it, low enough that
	// the second drifted window still clears it after the device's own
	// surprisal moments have absorbed the first spike.
	m, err := NewManager(Config{
		Channels: 1, Length: 1, Stride: 1, // every sample is a window
		WarmupWindows: 4, DriftThreshold: 0.6,
		EscalateAfter: 2, ReadmitAfter: 2,
	}, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ingest := func(val float64) Verdict {
		t.Helper()
		v, err := m.Ingest(ctx, "d", []float64{val})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Window {
			t.Fatal("expected a window per sample")
		}
		return v
	}
	// Warmup + a few stable windows: surprisal s == 1 throughout.
	for i := 0; i < 8; i++ {
		if v := ingest(1); v.Decision != stream.Accept {
			t.Fatalf("stable window %d escalated (z=%v score=%v)", i, v.Z, v.Score)
		}
	}
	// First drifted window: over budget but under the escalate latch.
	v := ingest(100)
	if v.Decision != stream.Accept {
		t.Fatalf("first drifted window: decision %v before escalateAfter reached", v.Decision)
	}
	if v.Score < 0.6 {
		t.Fatalf("first drifted window: score %v below threshold — drift not detected", v.Score)
	}
	// Second consecutive: latches.
	if v := ingest(100); v.Decision != stream.Escalate {
		t.Fatalf("second drifted window: decision %v, want Escalate", v.Decision)
	}
	// Back to baseline: the first clean window is still latched.
	if v := ingest(1); v.Decision != stream.Escalate {
		t.Fatalf("first clean window after latch: decision %v, want Escalate", v.Decision)
	}
	// Second clean window readmits.
	if v := ingest(1); v.Decision != stream.Accept {
		t.Fatalf("second clean window: decision %v, want Accept", v.Decision)
	}
	st := m.Stats()
	if st.Escalated == 0 || st.Accepted == 0 {
		t.Fatalf("stats did not record both outcomes: %+v", st)
	}
}

// TestDegenerateEscalatesImmediately: a non-finite prediction escalates on
// the spot, bypassing escalate-side hysteresis, and is counted.
func TestDegenerateEscalatesImmediately(t *testing.T) {
	bad := func(_ context.Context, rows []tensor.Vector) ([]core.GaussianVec, error) {
		out := make([]core.GaussianVec, len(rows))
		for i := range rows {
			out[i] = core.GaussianVec{Mean: []float64{0}, Var: []float64{math.NaN()}}
		}
		return out, nil
	}
	m, err := NewManager(Config{
		Channels: 1, Length: 1, Stride: 1,
		EscalateAfter: 5, WarmupWindows: 1,
	}, bad)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Ingest(context.Background(), "d", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Decision != stream.Escalate || !v.Degenerate {
		t.Fatalf("degenerate prediction: %+v", v)
	}
	if st := m.Stats(); st.NonFinite != 1 {
		t.Fatalf("NonFinite = %d, want 1", st.NonFinite)
	}
}

// TestEvictAndRecreate: explicit eviction frees the session; the next
// ingest starts a fresh one with clean state.
func TestEvictAndRecreate(t *testing.T) {
	m, err := NewManager(Config{Channels: 1, Length: 4, Stride: 4}, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := m.Ingest(ctx, "d", []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Evict("d") {
		t.Fatal("evict of resident session returned false")
	}
	if m.Evict("d") {
		t.Fatal("evict of absent session returned true")
	}
	if m.Resident() != 0 {
		t.Fatalf("resident = %d after evict", m.Resident())
	}
	// Recreated session must need a full window again (count reset).
	v, err := m.Ingest(ctx, "d", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Window {
		t.Fatal("recreated session completed a window on its first sample")
	}
	st := m.Stats()
	if st.Created != 2 || st.EvictedExplicit != 1 {
		t.Fatalf("stats %+v, want Created=2 EvictedExplicit=1", st)
	}
}

// TestIdleEviction: the timing wheel evicts sessions idle past IdleTimeout
// (within two ticks of slack) and spares recently touched ones.
func TestIdleEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m, err := NewManager(Config{
		Channels: 1, Length: 4, Stride: 4,
		IdleTimeout: time.Second,
		Clock:       clk.Now,
		Shards:      4,
	}, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Ingest(ctx, "old", []float64{1}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(500 * time.Millisecond)
	if _, err := m.Ingest(ctx, "fresh", []float64{1}); err != nil {
		t.Fatal(err)
	}
	// 1.2s after "old"'s last touch: past IdleTimeout + wheel slack for
	// "old", while "fresh" is only 0.7s idle.
	clk.Advance(700 * time.Millisecond)
	evicted := m.AdvanceTo(clk.Now())
	if evicted != 1 {
		t.Fatalf("evicted %d sessions, want 1", evicted)
	}
	if m.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", m.Resident())
	}
	// Touching must keep a session alive indefinitely. Re-touch now (0.7s
	// idle) so no gap in the loop below ever exceeds the timeout.
	if _, err := m.Ingest(ctx, "fresh", []float64{1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		clk.Advance(400 * time.Millisecond)
		if _, err := m.Ingest(ctx, "fresh", []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.AdvanceTo(clk.Now()); n != 0 {
		t.Fatalf("touched session evicted (n=%d)", n)
	}
	// And going fully idle evicts it too, via the opportunistic sweep in a
	// later ingest on the same shard or an explicit advance.
	clk.Advance(5 * time.Second)
	if n := m.AdvanceTo(clk.Now()); n != 1 {
		t.Fatalf("idle session not evicted (n=%d)", n)
	}
	if st := m.Stats(); st.EvictedIdle != 2 {
		t.Fatalf("EvictedIdle = %d, want 2", st.EvictedIdle)
	}
}

// TestBatchingCoalescer: with Batching configured, concurrent ingests flow
// through the tenant-fair coalescer and verdicts still come back per
// device.
func TestBatchingCoalescer(t *testing.T) {
	m, err := NewManager(Config{
		Channels: 1, Length: 2, Stride: 2,
		Batching: &serve.Config{MaxBatch: 16, QueueDepth: 256},
	}, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev := "fleet" + string(rune('0'+g)) + "/dev"
			for i := 0; i < 40; i++ {
				v, err := m.Ingest(ctx, dev, []float64{1})
				if err != nil {
					t.Error(err)
					return
				}
				if v.Window && len(v.Pred.Mean) != 1 {
					t.Errorf("bad prediction shape %d", len(v.Pred.Mean))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Stats()
	if st.Windows != 8*20 {
		t.Fatalf("windows = %d, want %d", st.Windows, 8*20)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(ctx, "x", []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: err = %v, want ErrClosed", err)
	}
}

// TestConfigValidation: constructor rejects invalid configurations.
func TestConfigValidation(t *testing.T) {
	ok := Config{Channels: 1, Length: 2, Stride: 1}
	if _, err := NewManager(ok, nil); !errors.Is(err, ErrConfig) {
		t.Fatal("nil predict accepted")
	}
	bad := []Config{
		{Channels: 0, Length: 2, Stride: 1},
		{Channels: 1, Length: 0, Stride: 1},
		{Channels: 1, Length: 2, Stride: 0},
		{Channels: 1, Length: 2, Stride: 1, Shards: 3},
		{Channels: 1, Length: 2, Stride: 1, Shards: 1 << 20},
		{Channels: 1, Length: 2, Stride: 1, DriftThreshold: 1.5},
		{Channels: 1, Length: 2, Stride: 1, DriftThreshold: -0.1},
		{Channels: 1, Length: 2, Stride: 1, WarmupWindows: -1},
		{Channels: 1, Length: 2, Stride: 1, EscalateAfter: -2},
		{Channels: 1, Length: 2, Stride: 1, IdleTimeout: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg, testPredict); !errors.Is(err, ErrConfig) {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	m, err := NewManager(ok, testPredict)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := m.Ingest(context.Background(), "", []float64{1}); !errors.Is(err, ErrConfig) {
		t.Fatal("empty device ID accepted")
	}
	if _, err := m.Ingest(context.Background(), "d", []float64{1, 2}); !errors.Is(err, ErrConfig) {
		t.Fatal("wrong channel count accepted")
	}
}

// TestCalibratorFit: PAV produces a monotone fit, pools violators, and
// Score interpolates and clamps.
func TestCalibratorFit(t *testing.T) {
	// Non-monotone targets: PAV must pool them into a nondecreasing fit.
	c, err := FitIsotonic(
		[]float64{0, 1, 2, 3, 4},
		[]float64{0.1, 0.5, 0.3, 0.8, 0.7},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, ys := c.Breakpoints()
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("fit not monotone: %v", ys)
		}
	}
	// The pooled pairs average: (0.5,0.3)->0.4, (0.8,0.7)->0.75.
	if math.Abs(ys[1]-0.4) > 1e-12 || math.Abs(ys[3]-0.75) > 1e-12 {
		t.Fatalf("pooled levels wrong: %v", ys)
	}
	// Clamping and interpolation.
	if got := c.Score(-10); got != ys[0] {
		t.Fatalf("below-range score %v, want %v", got, ys[0])
	}
	if got := c.Score(10); got != ys[len(ys)-1] {
		t.Fatalf("above-range score %v, want %v", got, ys[len(ys)-1])
	}
	mid := c.Score(0.5)
	if mid <= ys[0] || mid >= ys[1] {
		t.Fatalf("interpolated score %v outside (%v, %v)", mid, ys[0], ys[1])
	}
	if got := c.Score(math.NaN()); got != 1 {
		t.Fatalf("NaN z score %v, want 1", got)
	}
	// Validation.
	if _, err := FitIsotonic([]float64{0}, []float64{0.5}); !errors.Is(err, ErrConfig) {
		t.Fatal("single point accepted")
	}
	if _, err := FitIsotonic([]float64{0, 1}, []float64{0.5, 1.5}); !errors.Is(err, ErrConfig) {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := FitIsotonic([]float64{0, math.NaN()}, []float64{0.1, 0.2}); !errors.Is(err, ErrConfig) {
		t.Fatal("NaN z accepted")
	}
	// DefaultCalibrator is monotone over its whole range and hits the 0.9
	// threshold near z = 4.2.
	d := DefaultCalibrator()
	prev := -1.0
	for z := -8.0; z <= 10; z += 0.1 {
		s := d.Score(z)
		if s < prev {
			t.Fatalf("default calibrator not monotone at z=%v", z)
		}
		prev = s
	}
	if d.Score(4.0) >= 0.9 || d.Score(4.5) < 0.9 {
		t.Fatalf("default calibrator threshold drifted: S(4)=%v S(4.5)=%v", d.Score(4.0), d.Score(4.5))
	}
}
