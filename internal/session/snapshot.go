package session

// Whole-fleet snapshot/restore. One snapshot is a versioned little-endian
// stream — magic, format version, the window/gating shape, then every
// resident session's raw state (device ID, windower ring and count,
// standardizer moments, surprisal moments, hysteresis streaks), with a
// trailing CRC-32 (IEEE) over everything before it. A restored session
// continues its stream bit-for-bit: the next window, its standardization,
// its z-score, and its gate verdict are identical to the uninterrupted run.
//
// Snapshots are taken shard by shard under each shard's lock, so every
// session record is internally consistent and the fleet is consistent up
// to ingests that raced the pass — the same guarantee a live pg_dump makes.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// ErrSnapshot matches (via errors.Is) every malformed-snapshot rejection.
var ErrSnapshot = errors.New("session: invalid snapshot")

const (
	fleetMagic           = "APSF"
	fleetSnapshotVersion = 1
)

// SnapshotInfo summarizes one snapshot or restore pass.
type SnapshotInfo struct {
	// Sessions is the number of session records written or restored.
	Sessions int
	// Bytes is the total snapshot size, including magic and checksum.
	Bytes int64
}

// countWriter tracks bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// Snapshot writes the whole fleet to w and returns what it wrote. Ingest
// may continue concurrently; each session records the state it had when its
// shard was passed.
func (m *Manager) Snapshot(w io.Writer) (SnapshotInfo, error) {
	start := time.Now()
	cw := &countWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	sessions := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		sessions += len(sh.ids)
		sh.mu.Unlock()
	}
	// The count is a header field, so a session created after the count
	// pass but before its shard's write pass must not be written; one
	// evicted in between writes as absent. Track the remaining quota.
	hdr := []byte(fleetMagic)
	hdr = appendU16(hdr, fleetSnapshotVersion)
	hdr = appendU32(hdr, uint32(m.cfg.Channels))
	hdr = appendU32(hdr, uint32(m.cfg.Length))
	hdr = appendU32(hdr, uint32(m.cfg.Stride))
	if m.cfg.Standardize {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = appendU32(hdr, uint32(m.cfg.WarmupWindows))
	hdr = appendU32(hdr, uint32(m.cfg.EscalateAfter))
	hdr = appendU32(hdr, uint32(m.cfg.ReadmitAfter))
	hdr = appendF64(hdr, m.cfg.DriftThreshold)
	hdr = appendU64(hdr, uint64(sessions))
	if _, err := out.Write(hdr); err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: snapshot: %w", err)
	}

	written := 0
	scratch := make([]byte, 0, 64+(3*m.winDim+8)*8)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for dev, slot := range sh.ids {
			if written == sessions {
				break // a session was created mid-pass; it rides the next snapshot
			}
			scratch = m.appendSession(scratch[:0], sh, dev, slot)
			if _, err := out.Write(scratch); err != nil {
				sh.mu.Unlock()
				return SnapshotInfo{}, fmt.Errorf("session: snapshot: %w", err)
			}
			written++
		}
		sh.mu.Unlock()
	}
	if written < sessions {
		// A session was evicted between the count pass and its shard's
		// write pass, so the header promises more records than exist.
		// Eviction racing a snapshot is rare; the caller simply retries.
		return SnapshotInfo{}, fmt.Errorf("session: snapshot: fleet shrank mid-pass (have %d of %d): %w",
			written, sessions, ErrSnapshot)
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: snapshot: %w", err)
	}
	info := SnapshotInfo{Sessions: sessions, Bytes: cw.n}
	m.cfg.Metrics.snapshot(time.Since(start), info.Bytes)
	return info, nil
}

// appendSession encodes one session record. Caller holds sh.mu.
func (m *Manager) appendSession(b []byte, sh *shard, dev string, slot int32) []byte {
	base := int(slot) * m.winDim
	b = appendU16(b, uint16(len(dev)))
	b = append(b, dev...)
	b = appendU64(b, sh.count[slot])
	for _, v := range sh.ring[base : base+m.winDim] {
		b = appendF64(b, v)
	}
	b = appendU64(b, uint64(sh.stdN[slot]))
	for _, v := range sh.stdMean[base : base+m.winDim] {
		b = appendF64(b, v)
	}
	for _, v := range sh.stdM2[base : base+m.winDim] {
		b = appendF64(b, v)
	}
	b = appendU64(b, uint64(sh.surN[slot]))
	b = appendF64(b, sh.surMean[slot])
	b = appendF64(b, sh.surM2[slot])
	b = appendU32(b, sh.overN[slot])
	b = appendU32(b, sh.underN[slot])
	if sh.latched[slot] {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU64(b, uint64(sh.touch[slot]))
	return b
}

// crcReader accumulates a CRC-32 over everything read through it.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
	n   int64
}

func (c *crcReader) full(buf []byte) error {
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return fmt.Errorf("truncated at byte %d: %v: %w", c.n, err, ErrSnapshot)
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, buf)
	c.n += int64(len(buf))
	return nil
}

func (c *crcReader) u16() (uint16, error) {
	var b [2]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (c *crcReader) u32() (uint32, error) {
	var b [4]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *crcReader) u64() (uint64, error) {
	var b [8]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *crcReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *crcReader) f64s(dst []float64) error {
	for i := range dst {
		v, err := c.f64()
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// Restore reads a Snapshot stream into the fleet, recreating every session
// with its exact saved state. The manager's window shape and Standardize
// flag must match the snapshot's; gating policy (threshold, warmup,
// hysteresis depths) is taken from the live config — the snapshot records
// the values it was taken under for inspection, but a restart may retune
// them. Restoring a device that is already resident is an error. Restored
// sessions get a fresh full idle timeout.
func (m *Manager) Restore(r io.Reader) (SnapshotInfo, error) {
	start := time.Now()
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}

	magic := make([]byte, 4)
	if err := cr.full(magic); err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
	}
	if string(magic) != fleetMagic {
		return SnapshotInfo{}, fmt.Errorf("session: restore: magic %q, want %q: %w", magic, fleetMagic, ErrSnapshot)
	}
	version, err := cr.u16()
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
	}
	if version != fleetSnapshotVersion {
		return SnapshotInfo{}, fmt.Errorf("session: restore: version %d, want %d: %w", version, fleetSnapshotVersion, ErrSnapshot)
	}
	channels, err1 := cr.u32()
	length, err2 := cr.u32()
	stride, err3 := cr.u32()
	var stdFlag [1]byte
	err4 := cr.full(stdFlag[:])
	_, err5 := cr.u32() // warmup at snapshot time (informational)
	_, err6 := cr.u32() // escalateAfter at snapshot time
	_, err7 := cr.u32() // readmitAfter at snapshot time
	_, err8 := cr.f64() // drift threshold at snapshot time
	count, err9 := cr.u64()
	for _, err := range []error{err1, err2, err3, err4, err5, err6, err7, err8, err9} {
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
	}
	if int(channels) != m.cfg.Channels || int(length) != m.cfg.Length || int(stride) != m.cfg.Stride {
		return SnapshotInfo{}, fmt.Errorf("session: restore: snapshot shape %dx%d/%d != manager %dx%d/%d: %w",
			channels, length, stride, m.cfg.Channels, m.cfg.Length, m.cfg.Stride, ErrSnapshot)
	}
	if (stdFlag[0] != 0) != m.cfg.Standardize {
		return SnapshotInfo{}, fmt.Errorf("session: restore: standardize flag mismatch: %w", ErrSnapshot)
	}
	if stdFlag[0] > 1 {
		return SnapshotInfo{}, fmt.Errorf("session: restore: standardize flag %d: %w", stdFlag[0], ErrSnapshot)
	}

	var nowTick int64
	if m.idleTicks > 0 {
		nowTick = m.tickOf(m.cfg.Clock())
	}
	ring := make([]float64, m.winDim)
	stdMean := make([]float64, m.winDim)
	stdM2 := make([]float64, m.winDim)
	for i := uint64(0); i < count; i++ {
		devLen, err := cr.u16()
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		if devLen == 0 || devLen > maxDeviceID {
			return SnapshotInfo{}, fmt.Errorf("session: restore: device ID length %d: %w", devLen, ErrSnapshot)
		}
		devBuf := make([]byte, devLen)
		if err := cr.full(devBuf); err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		dev := string(devBuf)
		cnt, err := cr.u64()
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		if err := cr.f64s(ring); err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		stdN, err := cr.u64()
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		if err := cr.f64s(stdMean); err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		if err := cr.f64s(stdM2); err != nil {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
		}
		surN, err1 := cr.u64()
		surMean, err2 := cr.f64()
		surM2, err3 := cr.f64()
		overN, err4 := cr.u32()
		underN, err5 := cr.u32()
		var latched [1]byte
		err6 := cr.full(latched[:])
		touch, err7 := cr.u64()
		for _, err := range []error{err1, err2, err3, err4, err5, err6, err7} {
			if err != nil {
				return SnapshotInfo{}, fmt.Errorf("session: restore: %w", err)
			}
		}
		if cnt > math.MaxInt64 || stdN > math.MaxInt64 || surN > math.MaxInt64 {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %s: counter out of range: %w", dev, ErrSnapshot)
		}
		if latched[0] > 1 {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %s: latched flag %d: %w", dev, latched[0], ErrSnapshot)
		}
		for j := 0; j < m.winDim; j++ {
			if math.IsNaN(stdMean[j]) || math.IsInf(stdMean[j], 0) {
				return SnapshotInfo{}, fmt.Errorf("session: restore: %s: non-finite stdMean[%d]: %w", dev, j, ErrSnapshot)
			}
			if math.IsNaN(stdM2[j]) || math.IsInf(stdM2[j], 0) || stdM2[j] < 0 {
				return SnapshotInfo{}, fmt.Errorf("session: restore: %s: invalid stdM2[%d] = %v: %w", dev, j, stdM2[j], ErrSnapshot)
			}
		}
		if math.IsNaN(surMean) || math.IsInf(surMean, 0) || math.IsNaN(surM2) || math.IsInf(surM2, 0) || surM2 < 0 {
			return SnapshotInfo{}, fmt.Errorf("session: restore: %s: invalid surprisal moments: %w", dev, ErrSnapshot)
		}

		sh := m.shardFor(dev)
		sh.mu.Lock()
		if _, exists := sh.ids[dev]; exists {
			sh.mu.Unlock()
			return SnapshotInfo{}, fmt.Errorf("session: restore: %s already resident: %w", dev, ErrSnapshot)
		}
		slot := sh.allocLocked(dev, m.winDim)
		base := int(slot) * m.winDim
		copy(sh.ring[base:base+m.winDim], ring)
		sh.count[slot] = cnt
		sh.stdN[slot] = int64(stdN)
		copy(sh.stdMean[base:base+m.winDim], stdMean)
		copy(sh.stdM2[base:base+m.winDim], stdM2)
		sh.surN[slot] = int64(surN)
		sh.surMean[slot] = surMean
		sh.surM2[slot] = surM2
		sh.overN[slot] = overN
		sh.underN[slot] = underN
		sh.latched[slot] = latched[0] == 1
		sh.touch[slot] = int64(touch)
		if m.idleTicks > 0 {
			m.wheelTouchLocked(sh, slot, nowTick)
		}
		sh.mu.Unlock()
	}

	sum := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return SnapshotInfo{}, fmt.Errorf("session: restore: truncated checksum: %v: %w", err, ErrSnapshot)
	}
	cr.n += 4
	if want := binary.LittleEndian.Uint32(tail[:]); want != sum {
		return SnapshotInfo{}, fmt.Errorf("session: restore: crc mismatch (got %08x, want %08x): %w", sum, want, ErrSnapshot)
	}
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return SnapshotInfo{}, fmt.Errorf("session: restore: trailing bytes after checksum: %w", ErrSnapshot)
	}

	info := SnapshotInfo{Sessions: int(count), Bytes: cr.n}
	m.cfg.Metrics.restore(time.Since(start))
	m.cfg.Metrics.resident(m.Resident())
	return info, nil
}
