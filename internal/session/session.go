package session

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/hashkey"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/stream"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Sentinel errors beyond ErrConfig.
var (
	// ErrClosed is returned by Ingest after Close has begun.
	ErrClosed = fmt.Errorf("session: manager closed")
	// ErrEvicted is returned when a session was evicted between the moment
	// its window was cut and the moment its prediction came back — the
	// caller decides whether to re-ingest (which recreates the session).
	ErrEvicted = fmt.Errorf("session: evicted mid-flight")
)

// maxDeviceID bounds device identifier length (bytes).
const maxDeviceID = 255

// PredictBatchFunc runs the model's batched uncertainty path over a set of
// standardized windows. The manager calls it with 1..MaxBatch rows; it must
// return exactly one GaussianVec per row. Wrapping a registry keeps the
// fleet hot-swap safe: the closure resolves the live model version at call
// time.
type PredictBatchFunc func(ctx context.Context, rows []tensor.Vector) ([]core.GaussianVec, error)

// Config tunes a Manager. The zero value is invalid: Channels, Length, and
// Stride are required; every other field has the default noted on it.
type Config struct {
	// Channels, Length, Stride shape the per-session sliding window exactly
	// as stream.NewWindower: Length-sample windows over Channels-channel
	// samples, emitted every Stride samples.
	Channels int
	Length   int
	Stride   int
	// Standardize enables per-session online standardization of completed
	// windows (Observe-then-Apply over the flattened window vector, the
	// stream.Pipeline order) before prediction.
	Standardize bool
	// WarmupWindows is how many windows a session must complete before its
	// surprisal z-score participates in gating (its own moments are too raw
	// before that; warmup windows always Accept unless degenerate).
	// Defaults to 8.
	WarmupWindows int
	// DriftThreshold is the calibrated score at or above which a window
	// counts as over-budget for the hysteresis gate. In (0, 1]; defaults
	// to 0.9 (about 4.2 sigma under DefaultCalibrator).
	DriftThreshold float64
	// EscalateAfter / ReadmitAfter are the per-session gate hysteresis,
	// mirroring stream.NewGateWithHysteresis: the verdict flips to Escalate
	// only after EscalateAfter consecutive over-budget windows and returns
	// to Accept only after ReadmitAfter consecutive within-budget windows.
	// Both default to 1 (stateless gating).
	EscalateAfter int
	ReadmitAfter  int
	// Shards is the number of lock shards (power of two, max 65536). Every
	// session lives in exactly one shard, keyed by hashkey.Hash64 of its
	// device ID. Defaults to 256.
	Shards int
	// IdleTimeout evicts sessions not ingested for at least this long (see
	// AdvanceTo/Run; eviction granularity is IdleTimeout/32). 0 disables
	// idle eviction.
	IdleTimeout time.Duration
	// Calibrator maps surprisal z-scores to actionable scores. Defaults to
	// DefaultCalibrator().
	Calibrator *Calibrator
	// Batching, when non-nil, routes predictions through a tenant-fair
	// keyed coalescer (serve.NewKeyed) so concurrent ingests from many
	// devices flush as batches and no single fleet can starve the others.
	// Nil predicts directly, one window per call.
	Batching *serve.Config
	// TenantOf maps a device ID to its fairness tenant for Batching.
	// Defaults to the prefix before the first '/' (fleet/device naming),
	// or the whole ID when there is none.
	TenantOf func(deviceID string) string
	// Metrics, when non-nil, receives fleet observations (see NewMetrics).
	Metrics *Metrics
	// Clock overrides time.Now for idle-eviction bookkeeping (tests).
	Clock func() time.Time
}

func (c *Config) fillDefaults() error {
	if c.Channels < 1 || c.Length < 1 || c.Stride < 1 {
		return fmt.Errorf("channels=%d length=%d stride=%d: %w", c.Channels, c.Length, c.Stride, ErrConfig)
	}
	if c.WarmupWindows == 0 {
		c.WarmupWindows = 8
	}
	if c.WarmupWindows < 0 {
		return fmt.Errorf("WarmupWindows %d: %w", c.WarmupWindows, ErrConfig)
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.9
	}
	if c.DriftThreshold <= 0 || c.DriftThreshold > 1 || math.IsNaN(c.DriftThreshold) {
		return fmt.Errorf("DriftThreshold %v: %w", c.DriftThreshold, ErrConfig)
	}
	if c.EscalateAfter == 0 {
		c.EscalateAfter = 1
	}
	if c.ReadmitAfter == 0 {
		c.ReadmitAfter = 1
	}
	if c.EscalateAfter < 1 || c.ReadmitAfter < 1 {
		return fmt.Errorf("EscalateAfter %d, ReadmitAfter %d: %w", c.EscalateAfter, c.ReadmitAfter, ErrConfig)
	}
	if c.Shards == 0 {
		c.Shards = 256
	}
	if c.Shards < 1 || c.Shards > 65536 || c.Shards&(c.Shards-1) != 0 {
		return fmt.Errorf("Shards %d (want a power of two <= 65536): %w", c.Shards, ErrConfig)
	}
	if c.IdleTimeout < 0 {
		return fmt.Errorf("IdleTimeout %v: %w", c.IdleTimeout, ErrConfig)
	}
	if c.Calibrator == nil {
		c.Calibrator = DefaultCalibrator()
	}
	if c.TenantOf == nil {
		c.TenantOf = func(deviceID string) string {
			if i := strings.IndexByte(deviceID, '/'); i >= 0 {
				return deviceID[:i]
			}
			return deviceID
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// Verdict is the outcome of one Ingest call. Window is false while the
// sample only advanced the ring; when true, the remaining fields carry the
// prediction and the gate's decision for the completed window.
type Verdict struct {
	// Window reports whether this sample completed a window (and therefore
	// whether the rest of the verdict is meaningful).
	Window bool
	// Pred is the model's predictive distribution for the window.
	Pred core.GaussianVec
	// MeanStd is the mean per-dimension predictive standard deviation — the
	// raw surprisal s the gate scored.
	MeanStd float64
	// Z is s standardized against this device's own surprisal history
	// (0 during warmup).
	Z float64
	// Score is the calibrated actionable score in [0, 1].
	Score float64
	// Decision is Accept or Escalate after hysteresis.
	Decision stream.Decision
	// Degenerate marks a non-finite prediction, which escalates immediately
	// regardless of hysteresis (the stream.Gate contract).
	Degenerate bool
}

// Stats is a consistent snapshot of fleet-wide counters.
type Stats struct {
	Resident        int   // sessions currently held
	Created         int64 // sessions ever created
	EvictedIdle     int64 // sessions evicted by the idle wheel
	EvictedExplicit int64 // sessions evicted by Evict
	Ingested        int64 // samples ingested
	Windows         int64 // windows completed (and predicted)
	Accepted        int64 // windows gated Accept
	Escalated       int64 // windows gated Escalate
	NonFinite       int64 // escalations caused by degenerate predictions
}

// ingestRow is one window headed to the batching coalescer, tagged with the
// device for tenant-fair scheduling.
type ingestRow struct {
	device string
	row    tensor.Vector
}

// shard is one lock stripe of the session arena. All per-session state
// lives in parallel struct-of-arrays slot arrays: a session is an index,
// not an object graph, so a million resident sessions are a handful of
// large slabs instead of millions of small heap allocations. Freed slots
// recycle through a freelist; gen disambiguates reuse.
type shard struct {
	mu   sync.Mutex
	ids  map[string]int32 // device ID -> slot
	free []int32          // recycled slots

	// Per-slot state. Scalars are one entry per slot; vector state is
	// winDim entries per slot at slot*winDim.
	dev     []string  // device ID ("" when free)
	gen     []uint32  // bumped on free; detects reuse across unlock windows
	count   []uint64  // samples pushed (windower count)
	ring    []float64 // window ring, winDim per slot
	stdN    []int64   // standardizer observation count
	stdMean []float64 // standardizer running mean, winDim per slot
	stdM2   []float64 // standardizer running M2, winDim per slot
	surN    []int64   // surprisal observation count
	surMean []float64 // surprisal running mean
	surM2   []float64 // surprisal running M2
	overN   []uint32  // consecutive over-budget windows
	underN  []uint32  // consecutive within-budget windows
	latched []bool    // hysteresis state: true = escalating
	touch   []int64   // last ingest, unix nanos

	// Idle-eviction timing wheel: wheelPos is the bucket a slot currently
	// hangs in (-1 when idle eviction is off or the slot is free), prev and
	// next are intrusive doubly-linked list links, buckets holds each
	// bucket's list head, and tick is the last wheel tick this shard has
	// processed.
	wheelPos []int32
	prev     []int32
	next     []int32
	buckets  []int32
	tick     int64
}

// Manager is the resident session fleet. All methods are safe for
// concurrent use across devices; ingests for ONE device must be serialized
// by the caller (samples have an order — interleaving a single device's
// stream across goroutines has no meaningful window semantics, exactly as
// stream.Windower).
type Manager struct {
	cfg     Config
	winDim  int
	predict PredictBatchFunc
	coal    *serve.Coalescer[ingestRow, core.GaussianVec]

	shards []*shard
	mask   uint64

	// Wheel geometry (IdleTimeout > 0 only).
	tickDur   time.Duration
	idleTicks int64
	epoch     time.Time

	closed atomic.Bool

	created         atomic.Int64
	evictedIdle     atomic.Int64
	evictedExplicit atomic.Int64
	ingested        atomic.Int64
	windows         atomic.Int64
	accepted        atomic.Int64
	escalated       atomic.Int64
	nonFinite       atomic.Int64
}

// NewManager builds a session fleet whose completed windows are predicted
// by predict (typically a closure over a registry's PredictBatch, so model
// hot-swaps apply to the fleet transparently).
func NewManager(cfg Config, predict PredictBatchFunc) (*Manager, error) {
	if predict == nil {
		return nil, fmt.Errorf("nil predict function: %w", ErrConfig)
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		winDim:  cfg.Length * cfg.Channels,
		predict: predict,
		shards:  make([]*shard, cfg.Shards),
		mask:    uint64(cfg.Shards - 1),
		epoch:   cfg.Clock(),
	}
	nBuckets := 0
	if cfg.IdleTimeout > 0 {
		// ~32 buckets of eviction granularity; a session is evicted between
		// IdleTimeout and IdleTimeout + 2 ticks after its last ingest.
		m.tickDur = cfg.IdleTimeout / 32
		if m.tickDur < time.Millisecond {
			m.tickDur = time.Millisecond
		}
		m.idleTicks = int64(cfg.IdleTimeout/m.tickDur) + 1
		nBuckets = int(m.idleTicks) + 1
	}
	for i := range m.shards {
		sh := &shard{ids: make(map[string]int32)}
		if nBuckets > 0 {
			sh.buckets = make([]int32, nBuckets)
			for b := range sh.buckets {
				sh.buckets[b] = -1
			}
		}
		m.shards[i] = sh
	}
	if cfg.Batching != nil {
		coal, err := serve.NewKeyed(*cfg.Batching,
			func(r ingestRow) string { return cfg.TenantOf(r.device) },
			func(rows []ingestRow) ([]core.GaussianVec, error) {
				xs := make([]tensor.Vector, len(rows))
				for i, r := range rows {
					xs[i] = r.row
				}
				return predict(context.Background(), xs)
			})
		if err != nil {
			return nil, err
		}
		m.coal = coal
	}
	return m, nil
}

// shardFor picks the lock stripe for a device.
func (m *Manager) shardFor(deviceID string) *shard {
	return m.shards[hashkey.Hash64(deviceID)&m.mask]
}

// tickOf converts a wall time to a wheel tick.
func (m *Manager) tickOf(now time.Time) int64 {
	return int64(now.Sub(m.epoch) / m.tickDur)
}

// growLocked appends one fresh slot to every slot array and returns its
// index. Caller holds sh.mu.
func (sh *shard) growLocked(winDim int) int32 {
	slot := int32(len(sh.dev))
	sh.dev = append(sh.dev, "")
	sh.gen = append(sh.gen, 0)
	sh.count = append(sh.count, 0)
	sh.ring = append(sh.ring, make([]float64, winDim)...)
	sh.stdN = append(sh.stdN, 0)
	sh.stdMean = append(sh.stdMean, make([]float64, winDim)...)
	sh.stdM2 = append(sh.stdM2, make([]float64, winDim)...)
	sh.surN = append(sh.surN, 0)
	sh.surMean = append(sh.surMean, 0)
	sh.surM2 = append(sh.surM2, 0)
	sh.overN = append(sh.overN, 0)
	sh.underN = append(sh.underN, 0)
	sh.latched = append(sh.latched, false)
	sh.touch = append(sh.touch, 0)
	sh.wheelPos = append(sh.wheelPos, -1)
	sh.prev = append(sh.prev, -1)
	sh.next = append(sh.next, -1)
	return slot
}

// allocLocked claims a slot for a device: freelist first, growth otherwise.
// All per-session state is reset. Caller holds sh.mu.
func (sh *shard) allocLocked(deviceID string, winDim int) int32 {
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
		base := int(slot) * winDim
		for i := base; i < base+winDim; i++ {
			sh.ring[i] = 0
			sh.stdMean[i] = 0
			sh.stdM2[i] = 0
		}
		sh.count[slot] = 0
		sh.stdN[slot] = 0
		sh.surN[slot] = 0
		sh.surMean[slot] = 0
		sh.surM2[slot] = 0
		sh.overN[slot] = 0
		sh.underN[slot] = 0
		sh.latched[slot] = false
	} else {
		slot = sh.growLocked(winDim)
	}
	sh.dev[slot] = deviceID
	sh.ids[deviceID] = slot
	return slot
}

// freeLocked evicts a slot: unlinks it from the wheel, clears its identity,
// bumps its generation, and returns it to the freelist. Caller holds sh.mu.
func (sh *shard) freeLocked(slot int32) {
	sh.wheelUnlinkLocked(slot)
	delete(sh.ids, sh.dev[slot])
	sh.dev[slot] = ""
	sh.gen[slot]++
	sh.free = append(sh.free, slot)
}

// wheelUnlinkLocked removes a slot from its wheel bucket (no-op when not
// linked). Caller holds sh.mu.
func (sh *shard) wheelUnlinkLocked(slot int32) {
	pos := sh.wheelPos[slot]
	if pos < 0 {
		return
	}
	if sh.prev[slot] >= 0 {
		sh.next[sh.prev[slot]] = sh.next[slot]
	} else {
		sh.buckets[pos] = sh.next[slot]
	}
	if sh.next[slot] >= 0 {
		sh.prev[sh.next[slot]] = sh.prev[slot]
	}
	sh.wheelPos[slot] = -1
	sh.prev[slot] = -1
	sh.next[slot] = -1
}

// wheelTouchLocked (re)inserts a slot at the bucket the eviction cursor
// will reach one full idle timeout from now. Caller holds sh.mu.
func (m *Manager) wheelTouchLocked(sh *shard, slot int32, nowTick int64) {
	sh.wheelUnlinkLocked(slot)
	pos := int32((nowTick + m.idleTicks) % int64(len(sh.buckets)))
	sh.wheelPos[slot] = pos
	sh.prev[slot] = -1
	sh.next[slot] = sh.buckets[pos]
	if sh.next[slot] >= 0 {
		sh.prev[sh.next[slot]] = slot
	}
	sh.buckets[pos] = slot
}

// advanceLocked moves the shard's eviction cursor to nowTick, evicting
// every session in each bucket it passes (those sessions were last touched
// at least IdleTimeout ago — touching reinserts ahead of the cursor).
// Returns the number evicted. Caller holds sh.mu.
func (m *Manager) advanceLocked(sh *shard, nowTick int64) int {
	if len(sh.buckets) == 0 || nowTick <= sh.tick {
		return 0
	}
	steps := nowTick - sh.tick
	if steps > int64(len(sh.buckets)) {
		steps = int64(len(sh.buckets)) // one full revolution sweeps everything due
	}
	evicted := 0
	for s := int64(1); s <= steps; s++ {
		b := (sh.tick + s) % int64(len(sh.buckets))
		for sh.buckets[b] >= 0 {
			sh.freeLocked(sh.buckets[b])
			evicted++
		}
	}
	sh.tick = nowTick
	return evicted
}

// Ingest feeds one sample into a device's session, creating the session on
// first contact. While the window is filling it returns a zero Verdict;
// when the sample completes a window it standardizes (if configured),
// predicts, and gates, returning the full verdict. Samples for one device
// must be ingested from one goroutine at a time.
func (m *Manager) Ingest(ctx context.Context, deviceID string, sample []float64) (Verdict, error) {
	if m.closed.Load() {
		return Verdict{}, ErrClosed
	}
	if deviceID == "" || len(deviceID) > maxDeviceID {
		return Verdict{}, fmt.Errorf("device ID length %d (want 1..%d): %w", len(deviceID), maxDeviceID, ErrConfig)
	}
	if len(sample) != m.cfg.Channels {
		return Verdict{}, fmt.Errorf("sample has %d channels, want %d: %w", len(sample), m.cfg.Channels, ErrConfig)
	}
	sh := m.shardFor(deviceID)
	var nowTick int64
	if m.idleTicks > 0 {
		nowTick = m.tickOf(m.cfg.Clock())
	}

	sh.mu.Lock()
	if m.idleTicks > 0 {
		// Opportunistic sweep: ingest traffic keeps this shard's cursor
		// current even without a background Run loop.
		if n := m.advanceLocked(sh, nowTick); n > 0 {
			m.evictedIdle.Add(int64(n))
			m.cfg.Metrics.evicted("idle", n)
		}
	}
	slot, ok := sh.ids[deviceID]
	if !ok {
		slot = sh.allocLocked(deviceID, m.winDim)
		m.created.Add(1)
		m.cfg.Metrics.created()
	}
	if m.idleTicks > 0 {
		m.wheelTouchLocked(sh, slot, nowTick)
		sh.touch[slot] = m.cfg.Clock().UnixNano()
	}

	// Windower push, identical semantics to stream.Windower.Push on a ring
	// stored at slot*winDim.
	base := int(slot) * m.winDim
	head := int(sh.count[slot] % uint64(m.cfg.Length))
	copy(sh.ring[base+head*m.cfg.Channels:base+(head+1)*m.cfg.Channels], sample)
	sh.count[slot]++
	count := sh.count[slot]
	m.ingested.Add(1)
	m.cfg.Metrics.ingested()
	if count < uint64(m.cfg.Length) || (count-uint64(m.cfg.Length))%uint64(m.cfg.Stride) != 0 {
		sh.mu.Unlock()
		return Verdict{}, nil
	}

	// Window complete: materialize it oldest-first (time-major).
	win := make([]float64, m.winDim)
	headAfter := int(count % uint64(m.cfg.Length))
	for i := 0; i < m.cfg.Length; i++ {
		src := (headAfter + i) % m.cfg.Length
		copy(win[i*m.cfg.Channels:(i+1)*m.cfg.Channels], sh.ring[base+src*m.cfg.Channels:base+(src+1)*m.cfg.Channels])
	}
	x := win
	if m.cfg.Standardize {
		// Observe-then-Apply, the stream.Pipeline order, over the same
		// Welford recurrence as stats.VecWelford.
		sh.stdN[slot]++
		inv := 1.0 / float64(sh.stdN[slot])
		for i := 0; i < m.winDim; i++ {
			delta := win[i] - sh.stdMean[base+i]
			sh.stdMean[base+i] += delta * inv
			sh.stdM2[base+i] += delta * (win[i] - sh.stdMean[base+i])
		}
		// Reciprocal-multiply like stats.VecWelford.Variance so the
		// standardized window is bit-identical to the stream primitives.
		vinv := 1.0 / float64(sh.stdN[slot])
		x = make([]float64, m.winDim)
		for i := 0; i < m.winDim; i++ {
			variance := 0.0
			if sh.stdN[slot] >= 2 {
				variance = sh.stdM2[base+i] * vinv
			}
			sd := math.Sqrt(variance)
			if sd < 1e-9 {
				sd = 1
			}
			x[i] = (win[i] - sh.stdMean[base+i]) / sd
		}
	}
	gen := sh.gen[slot]
	sh.mu.Unlock()

	pred, err := m.doPredict(ctx, deviceID, tensor.Vector(x))
	if err != nil {
		return Verdict{}, err
	}
	m.windows.Add(1)
	m.cfg.Metrics.window()

	// Surprisal: mean per-dimension predictive std.
	var s float64
	degenerate := pred.Dim() == 0
	for i := range pred.Var {
		sd := math.Sqrt(pred.Var[i])
		if math.IsNaN(sd) || math.IsInf(sd, 0) {
			degenerate = true
			break
		}
		s += sd
	}
	if !degenerate {
		s /= float64(pred.Dim())
	}

	sh.mu.Lock()
	if cur, ok := sh.ids[deviceID]; !ok || cur != slot || sh.gen[slot] != gen {
		sh.mu.Unlock()
		return Verdict{}, ErrEvicted
	}
	// Surprisal-then-calibrate: z-score s against the device's own history
	// (before folding s in), then map through the fleet calibrator.
	z := 0.0
	warm := sh.surN[slot] >= int64(m.cfg.WarmupWindows)
	if warm && !degenerate {
		variance := 0.0
		if sh.surN[slot] >= 2 {
			variance = sh.surM2[slot] / float64(sh.surN[slot])
		}
		sd := math.Sqrt(variance)
		if sd < 1e-9 {
			sd = 1
		}
		z = (s - sh.surMean[slot]) / sd
	}
	if !degenerate {
		sh.surN[slot]++
		delta := s - sh.surMean[slot]
		sh.surMean[slot] += delta / float64(sh.surN[slot])
		sh.surM2[slot] += delta * (s - sh.surMean[slot])
	}
	score := m.cfg.Calibrator.Score(z)
	if degenerate {
		score = 1
	}
	over := degenerate || (warm && score >= m.cfg.DriftThreshold)
	if over {
		sh.underN[slot] = 0
		sh.overN[slot]++
		if sh.overN[slot] >= uint32(m.cfg.EscalateAfter) {
			sh.latched[slot] = true
		}
	} else {
		sh.overN[slot] = 0
		sh.underN[slot]++
		if sh.underN[slot] >= uint32(m.cfg.ReadmitAfter) {
			sh.latched[slot] = false
		}
	}
	decision := stream.Accept
	switch {
	case degenerate:
		// Unassessable uncertainty escalates immediately, bypassing the
		// escalate-side hysteresis (the stream.Gate contract).
		decision = stream.Escalate
		m.nonFinite.Add(1)
	case sh.latched[slot]:
		decision = stream.Escalate
	}
	sh.mu.Unlock()

	if decision == stream.Escalate {
		m.escalated.Add(1)
	} else {
		m.accepted.Add(1)
	}
	m.cfg.Metrics.verdict(decision)
	return Verdict{
		Window:     true,
		Pred:       pred,
		MeanStd:    s,
		Z:          z,
		Score:      score,
		Decision:   decision,
		Degenerate: degenerate,
	}, nil
}

// doPredict runs one window through the coalescer when batching is on, or
// straight through the predict function otherwise.
func (m *Manager) doPredict(ctx context.Context, deviceID string, x tensor.Vector) (core.GaussianVec, error) {
	if m.coal != nil {
		return m.coal.Do(ctx, ingestRow{device: deviceID, row: x})
	}
	preds, err := m.predict(ctx, []tensor.Vector{x})
	if err != nil {
		return core.GaussianVec{}, err
	}
	if len(preds) != 1 {
		return core.GaussianVec{}, fmt.Errorf("session: predict returned %d results for 1 row", len(preds))
	}
	return preds[0], nil
}

// Evict removes a device's session immediately, reporting whether one
// existed.
func (m *Manager) Evict(deviceID string) bool {
	sh := m.shardFor(deviceID)
	sh.mu.Lock()
	slot, ok := sh.ids[deviceID]
	if ok {
		sh.freeLocked(slot)
	}
	sh.mu.Unlock()
	if ok {
		m.evictedExplicit.Add(1)
		m.cfg.Metrics.evicted("explicit", 1)
	}
	return ok
}

// Resident returns the number of sessions currently held.
func (m *Manager) Resident() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.ids)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns fleet-wide counters. Resident is exact at the time of the
// call; the monotonic counters are individually exact.
func (m *Manager) Stats() Stats {
	return Stats{
		Resident:        m.Resident(),
		Created:         m.created.Load(),
		EvictedIdle:     m.evictedIdle.Load(),
		EvictedExplicit: m.evictedExplicit.Load(),
		Ingested:        m.ingested.Load(),
		Windows:         m.windows.Load(),
		Accepted:        m.accepted.Load(),
		Escalated:       m.escalated.Load(),
		NonFinite:       m.nonFinite.Load(),
	}
}

// AdvanceTo sweeps every shard's idle-eviction wheel up to now, returning
// the number of sessions evicted. It is a no-op without an IdleTimeout.
// Ingest also advances its own shard opportunistically, so AdvanceTo (or
// Run) is only needed to evict shards receiving no traffic at all.
func (m *Manager) AdvanceTo(now time.Time) int {
	if m.idleTicks == 0 {
		return 0
	}
	nowTick := m.tickOf(now)
	total := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n := m.advanceLocked(sh, nowTick)
		sh.mu.Unlock()
		if n > 0 {
			total += n
		}
	}
	if total > 0 {
		m.evictedIdle.Add(int64(total))
		m.cfg.Metrics.evicted("idle", total)
	}
	m.cfg.Metrics.resident(m.Resident())
	return total
}

// Run drives idle eviction in the background until ctx ends, sweeping every
// interval (defaulting to the wheel tick).
func (m *Manager) Run(ctx context.Context, interval time.Duration) {
	if m.idleTicks == 0 {
		<-ctx.Done()
		return
	}
	if interval <= 0 {
		interval = m.tickDur
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.AdvanceTo(m.cfg.Clock())
		}
	}
}

// Close stops intake (Ingest returns ErrClosed) and drains the batching
// coalescer if one is configured, bounded by ctx. Sessions stay resident
// for a final Snapshot.
func (m *Manager) Close(ctx context.Context) error {
	m.closed.Store(true)
	if m.coal != nil {
		return m.coal.Close(ctx)
	}
	return nil
}
