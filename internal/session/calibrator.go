// Package session is the resident device-session fleet: every device in an
// IoT deployment holds a long-lived streaming session — its own sliding
// window ring, online standardization moments, and drift-gating state —
// inside a compact struct-of-arrays arena designed to keep millions of
// sessions resident on one node. Ingested samples window exactly as
// stream.Windower/stream.Pipeline would; completed windows run the model's
// batched uncertainty path; and the predictive uncertainty is turned into a
// per-device accept/escalate verdict by surprisal-then-calibrate gating: the
// mean predictive standard deviation is z-scored against the device's own
// running surprisal moments, mapped through a fleet-level monotone
// (isotonic) calibrator to an actionable score in [0,1], and thresholded
// with escalate-after-N / readmit-after-M hysteresis.
package session

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrConfig is returned (wrapped) for invalid configurations and arguments.
var ErrConfig = errors.New("session: invalid configuration")

// Calibrator maps per-device surprisal z-scores to a monotone actionable
// score in [0, 1] by linear interpolation over isotonic-regression
// breakpoints. Calibration answers the question the raw z-score cannot: "at
// this much surprisal, how often was escalating the right call?" — fit it
// with FitIsotonic on labeled (z, outcome) pairs, or use DefaultCalibrator
// for the uncalibrated logistic prior.
//
// A Calibrator is immutable after construction and therefore safe to share
// across every session and goroutine without locking.
type Calibrator struct {
	xs []float64 // strictly increasing z breakpoints
	ys []float64 // nondecreasing scores in [0, 1], one per breakpoint
}

// FitIsotonic fits a monotone nondecreasing step-linear map from z-scores to
// target scores by pool-adjacent-violators (PAV) isotonic regression: ties
// in z are weight-averaged, then adjacent level sets that violate
// monotonicity are pooled to their weighted mean until none remain. Targets
// must lie in [0, 1] (they are escalation outcomes or rates); at least two
// distinct z values are required, and every input must be finite.
func FitIsotonic(zs, targets []float64) (*Calibrator, error) {
	if len(zs) != len(targets) {
		return nil, fmt.Errorf("%d z values, %d targets: %w", len(zs), len(targets), ErrConfig)
	}
	for i := range zs {
		if math.IsNaN(zs[i]) || math.IsInf(zs[i], 0) {
			return nil, fmt.Errorf("non-finite z[%d]: %w", i, ErrConfig)
		}
		if math.IsNaN(targets[i]) || targets[i] < 0 || targets[i] > 1 {
			return nil, fmt.Errorf("target[%d] = %v outside [0,1]: %w", i, targets[i], ErrConfig)
		}
	}
	// Sort by z and weight-average duplicate z values.
	idx := make([]int, len(zs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return zs[idx[a]] < zs[idx[b]] })
	var xs, ys, ws []float64
	for _, i := range idx {
		if n := len(xs); n > 0 && xs[n-1] == zs[i] {
			ys[n-1] += (targets[i] - ys[n-1]) / (ws[n-1] + 1)
			ws[n-1]++
			continue
		}
		xs = append(xs, zs[i])
		ys = append(ys, targets[i])
		ws = append(ws, 1)
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("%d distinct z values (need >= 2): %w", len(xs), ErrConfig)
	}
	// PAV: maintain a stack of level sets; pool while the tail violates.
	type block struct {
		y, w float64
		n    int // number of breakpoints pooled into this block
	}
	var stack []block
	for i := range xs {
		stack = append(stack, block{y: ys[i], w: ws[i], n: 1})
		for len(stack) > 1 && stack[len(stack)-2].y > stack[len(stack)-1].y {
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = block{
				y: (a.y*a.w + b.y*b.w) / (a.w + b.w),
				w: a.w + b.w,
				n: a.n + b.n,
			}
		}
	}
	fit := make([]float64, 0, len(xs))
	for _, blk := range stack {
		for i := 0; i < blk.n; i++ {
			fit = append(fit, blk.y)
		}
	}
	return &Calibrator{xs: xs, ys: fit}, nil
}

// DefaultCalibrator is the uncalibrated prior: an isotonic fit of the
// logistic curve 1/(1+e^(2−z)) over a z grid, so the default drift
// threshold of 0.9 corresponds to roughly a 4.2-sigma surprisal — the
// "four sigma" rule with soft shoulders. Deployments with labeled drift
// outcomes should replace it via Config.Calibrator with a FitIsotonic of
// their own data.
func DefaultCalibrator() *Calibrator {
	zs := make([]float64, 0, 57)
	ys := make([]float64, 0, 57)
	for z := -6.0; z <= 8.0; z += 0.25 {
		zs = append(zs, z)
		ys = append(ys, 1/(1+math.Exp(2-z)))
	}
	c, err := FitIsotonic(zs, ys)
	if err != nil {
		panic(fmt.Sprintf("session: default calibrator: %v", err)) // unreachable: static input
	}
	return c
}

// Score maps one z-score to the calibrated [0, 1] actionable score: linear
// interpolation between breakpoints, clamped flat beyond the fitted range.
// NaN maps to 1 — unassessable surprisal is maximal surprisal.
func (c *Calibrator) Score(z float64) float64 {
	if math.IsNaN(z) {
		return 1
	}
	n := len(c.xs)
	switch {
	case z <= c.xs[0]:
		return c.ys[0]
	case z >= c.xs[n-1]:
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, z)
	// c.xs[i-1] < z <= c.xs[i] here.
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(z-x0)/(x1-x0)
}

// Breakpoints returns copies of the fitted (z, score) breakpoints, mostly
// for inspection and snapshot tooling.
func (c *Calibrator) Breakpoints() (zs, scores []float64) {
	zs = append([]float64(nil), c.xs...)
	scores = append([]float64(nil), c.ys...)
	return zs, scores
}
