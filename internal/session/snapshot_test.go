package session

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func fleetConfig() Config {
	return Config{
		Channels: 3, Length: 8, Stride: 4,
		Standardize: true, WarmupWindows: 2,
		DriftThreshold: 0.6, EscalateAfter: 2, ReadmitAfter: 2,
		Shards: 16,
	}
}

// driveFleet ingests a deterministic per-device stream: quiet devices stay
// near baseline, loud devices spike mid-stream so some gates latch.
func driveFleet(t *testing.T, m *Manager, devices, samples, seed int) []Verdict {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	var verdicts []Verdict
	for i := 0; i < samples; i++ {
		for d := 0; d < devices; d++ {
			dev := fmt.Sprintf("fleet%d/dev%03d", d%3, d)
			val := rng.NormFloat64()
			if d%4 == 0 && i > samples/2 {
				val *= 50 // drift the every-4th device in the second half
			}
			sample := []float64{val, val * 0.5, math.Sin(val)}
			v, err := m.Ingest(context.Background(), dev, sample)
			if err != nil {
				t.Fatal(err)
			}
			verdicts = append(verdicts, v)
		}
	}
	return verdicts
}

func verdictsEqual(a, b Verdict) bool {
	return a.Window == b.Window &&
		a.Decision == b.Decision &&
		a.Degenerate == b.Degenerate &&
		math.Float64bits(a.MeanStd) == math.Float64bits(b.MeanStd) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z) &&
		math.Float64bits(a.Score) == math.Float64bits(b.Score) &&
		bitsEqual(a.Pred.Mean, b.Pred.Mean) &&
		bitsEqual(a.Pred.Var, b.Pred.Var)
}

// TestFleetSnapshotRestartContinuity is the acceptance test: snapshot a
// fleet mid-stream, restore it into a fresh manager ("the restarted
// node"), replay an identical continuation into both, and require every
// verdict — prediction, surprisal, z, score, and gate decision — to match
// bit for bit.
func TestFleetSnapshotRestartContinuity(t *testing.T) {
	m1, err := NewManager(fleetConfig(), testPredict)
	if err != nil {
		t.Fatal(err)
	}
	driveFleet(t, m1, 24, 40, 7)

	var buf bytes.Buffer
	info, err := m1.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sessions != 24 {
		t.Fatalf("snapshot covered %d sessions, want 24", info.Sessions)
	}
	if info.Bytes != int64(buf.Len()) {
		t.Fatalf("info.Bytes %d != written %d", info.Bytes, buf.Len())
	}

	m2, err := NewManager(fleetConfig(), testPredict)
	if err != nil {
		t.Fatal(err)
	}
	rinfo, err := m2.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Sessions != 24 || rinfo.Bytes != info.Bytes {
		t.Fatalf("restore info %+v != snapshot info %+v", rinfo, info)
	}
	if m2.Resident() != 24 {
		t.Fatalf("restored resident = %d, want 24", m2.Resident())
	}

	// Identical continuation streams (same seed → same samples, including
	// the drifted second half that exercises latched gates).
	v1 := driveFleet(t, m1, 24, 40, 99)
	v2 := driveFleet(t, m2, 24, 40, 99)
	if len(v1) != len(v2) {
		t.Fatalf("verdict count %d != %d", len(v1), len(v2))
	}
	for i := range v1 {
		if !verdictsEqual(v1[i], v2[i]) {
			t.Fatalf("verdict %d diverged after restore:\n orig %+v\n rest %+v", i, v1[i], v2[i])
		}
	}
}

// TestFleetSnapshotRejections: corruption (bit flips), truncation,
// trailing garbage, duplicate devices, and shape mismatches are all
// refused.
func TestFleetSnapshotRejections(t *testing.T) {
	m, err := NewManager(fleetConfig(), testPredict)
	if err != nil {
		t.Fatal(err)
	}
	driveFleet(t, m, 6, 20, 3)
	var buf bytes.Buffer
	if _, err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	fresh := func() *Manager {
		f, err := NewManager(fleetConfig(), testPredict)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// The pristine blob restores.
	if _, err := fresh().Restore(bytes.NewReader(blob)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	// Single-bit flips: sampled across the blob (the CRC catches them all;
	// field validation may reject earlier, which is also fine).
	for bit := 0; bit < 8*len(blob); bit += 997 {
		mut := bytes.Clone(blob)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := fresh().Restore(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}
	// Truncations.
	for _, n := range []int{0, 1, 3, 4, 5, 20, 41, len(blob) / 2, len(blob) - 5, len(blob) - 1} {
		if _, err := fresh().Restore(bytes.NewReader(blob[:n])); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("truncation to %d: err = %v, want ErrSnapshot", n, err)
		}
	}
	// Trailing garbage.
	if _, err := fresh().Restore(bytes.NewReader(append(bytes.Clone(blob), 0))); !errors.Is(err, ErrSnapshot) {
		t.Fatal("trailing byte accepted")
	}
	// Restoring into a fleet that already holds one of the devices.
	dirty := fresh()
	if _, err := dirty.Restore(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if _, err := dirty.Restore(bytes.NewReader(blob)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("double restore: err = %v, want ErrSnapshot (duplicate devices)", err)
	}
	// Window-shape and standardize-flag mismatches.
	other := fleetConfig()
	other.Length = 16
	mShape, err := NewManager(other, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mShape.Restore(bytes.NewReader(blob)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("shape mismatch: err = %v, want ErrSnapshot", err)
	}
	noStd := fleetConfig()
	noStd.Standardize = false
	mStd, err := NewManager(noStd, testPredict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mStd.Restore(bytes.NewReader(blob)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("standardize mismatch: err = %v, want ErrSnapshot", err)
	}
}

// TestFleetSnapshotEmpty: an empty fleet round-trips.
func TestFleetSnapshotEmpty(t *testing.T) {
	m, err := NewManager(fleetConfig(), testPredict)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	info, err := m.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Sessions != 0 {
		t.Fatalf("sessions = %d", info.Sessions)
	}
	m2, err := NewManager(fleetConfig(), testPredict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.Resident() != 0 {
		t.Fatalf("resident = %d", m2.Resident())
	}
}
