package session

import (
	"time"

	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/stream"
)

// Metrics is the fleet's observability surface, registered into an
// internal/obs registry alongside the serving and propagation families.
// All methods are nil-safe: an unset Config.Metrics costs one nil check
// per event.
//
// Families:
//
//	apds_session_resident                sessions currently held
//	apds_session_created_total           sessions ever created
//	apds_session_evicted_total{reason}   evictions (idle|explicit)
//	apds_session_ingest_total            samples ingested
//	apds_session_windows_total           windows completed and predicted
//	apds_session_verdicts_total{decision} gate verdicts (accept|escalate)
//	apds_session_snapshot_seconds        fleet snapshot/restore durations
//	apds_session_snapshot_bytes          size of the last fleet snapshot
type Metrics struct {
	residentG       *obs.Gauge
	createdC        *obs.Counter
	evictedC        *obs.CounterVec
	ingestC         *obs.Counter
	windowsC        *obs.Counter
	verdictsC       *obs.CounterVec
	snapshotSeconds *obs.Histogram
	snapshotBytes   *obs.Gauge
}

// NewMetrics registers the session metric families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		residentG: reg.Gauge("apds_session_resident",
			"Device sessions currently resident in the fleet."),
		createdC: reg.Counter("apds_session_created_total",
			"Device sessions created."),
		evictedC: reg.CounterVec("apds_session_evicted_total",
			"Device sessions evicted, by reason.", "reason"),
		ingestC: reg.Counter("apds_session_ingest_total",
			"Samples ingested across all sessions."),
		windowsC: reg.Counter("apds_session_windows_total",
			"Windows completed and predicted across all sessions."),
		verdictsC: reg.CounterVec("apds_session_verdicts_total",
			"Gate verdicts for completed windows, by decision.", "decision"),
		snapshotSeconds: reg.Histogram("apds_session_snapshot_seconds",
			"Wall time of fleet snapshot and restore passes.",
			obs.ExpBuckets(1e-3, 2, 16)),
		snapshotBytes: reg.Gauge("apds_session_snapshot_bytes",
			"Size of the most recent fleet snapshot in bytes."),
	}
}

func (m *Metrics) resident(n int) {
	if m != nil {
		m.residentG.Set(float64(n))
	}
}

func (m *Metrics) created() {
	if m != nil {
		m.createdC.Inc()
	}
}

func (m *Metrics) evicted(reason string, n int) {
	if m != nil {
		m.evictedC.With(reason).Add(float64(n))
	}
}

func (m *Metrics) ingested() {
	if m != nil {
		m.ingestC.Inc()
	}
}

func (m *Metrics) window() {
	if m != nil {
		m.windowsC.Inc()
	}
}

func (m *Metrics) verdict(d stream.Decision) {
	if m != nil {
		m.verdictsC.With(d.String()).Inc()
	}
}

func (m *Metrics) snapshot(d time.Duration, bytes int64) {
	if m != nil {
		m.snapshotSeconds.Observe(d.Seconds())
		m.snapshotBytes.Set(float64(bytes))
	}
}

func (m *Metrics) restore(d time.Duration) {
	if m != nil {
		m.snapshotSeconds.Observe(d.Seconds())
	}
}
