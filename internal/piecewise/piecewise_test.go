package piecewise

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		pieces []Piece
	}{
		{"empty", nil},
		{"no left tail", []Piece{{A: 0, B: inf}}},
		{"no right tail", []Piece{{A: -inf, B: 0}}},
		{"gap", []Piece{{A: -inf, B: 0}, {A: 1, B: inf}}},
		{"empty interval", []Piece{{A: -inf, B: 0}, {A: 0, B: 0}, {A: 0, B: inf}}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.pieces); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

func TestReLUExact(t *testing.T) {
	f := ReLU()
	if f.NumPieces() != 2 {
		t.Fatalf("ReLU pieces = %d, want 2", f.NumPieces())
	}
	for _, x := range []float64{-100, -1, -1e-9, 0, 1e-9, 0.5, 100} {
		want := math.Max(0, x)
		if got := f.Eval(x); got != want {
			t.Errorf("ReLU(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestIdentity(t *testing.T) {
	f := Identity()
	if f.NumPieces() != 1 {
		t.Fatalf("Identity pieces = %d, want 1", f.NumPieces())
	}
	for _, x := range []float64{-5, 0, 3.7} {
		if got := f.Eval(x); got != x {
			t.Errorf("Identity(%v) = %v", x, got)
		}
	}
}

func TestTanhApproximation(t *testing.T) {
	f, err := Tanh(7)
	if err != nil {
		t.Fatalf("Tanh(7): %v", err)
	}
	if f.NumPieces() != 7 {
		t.Fatalf("pieces = %d, want 7", f.NumPieces())
	}
	// Saturation tails sit at the boundary-knot value, near ±1.
	if got := f.Eval(-50); math.Abs(got-math.Tanh(-3)) > 1e-12 {
		t.Errorf("tanh-pwl(-50) = %v, want tanh(-3)", got)
	}
	if got := f.Eval(50); math.Abs(got-math.Tanh(3)) > 1e-12 {
		t.Errorf("tanh-pwl(50) = %v, want tanh(3)", got)
	}
	// Interpolation error should be small everywhere.
	if sup := f.SupError(math.Tanh, -6, 6, 4001); sup > 0.06 {
		t.Errorf("7-piece tanh sup error = %v, want < 0.06", sup)
	}
	// Odd symmetry (knots are symmetric, tanh is odd).
	for _, x := range []float64{0.3, 1.1, 2.4, 4} {
		if d := math.Abs(f.Eval(x) + f.Eval(-x)); d > 1e-12 {
			t.Errorf("tanh-pwl not odd at %v: %v vs %v", x, f.Eval(x), f.Eval(-x))
		}
	}
}

func TestTanhMorePiecesMoreAccurate(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, p := range []int{3, 5, 7, 9, 15} {
		f, err := Tanh(p)
		if err != nil {
			t.Fatalf("Tanh(%d): %v", p, err)
		}
		sup := f.SupError(math.Tanh, -4, 4, 2001)
		if sup >= prev {
			t.Errorf("sup error did not decrease: %d pieces -> %v (prev %v)", p, sup, prev)
		}
		prev = sup
	}
}

func TestSigmoidApproximation(t *testing.T) {
	f, err := Sigmoid(7)
	if err != nil {
		t.Fatalf("Sigmoid(7): %v", err)
	}
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	if got := f.Eval(-100); math.Abs(got-sig(-6)) > 1e-12 {
		t.Errorf("sigmoid-pwl(-100) = %v, want sigmoid(-6)", got)
	}
	if got := f.Eval(100); math.Abs(got-sig(6)) > 1e-12 {
		t.Errorf("sigmoid-pwl(100) = %v, want sigmoid(6)", got)
	}
	if sup := f.SupError(sig, -10, 10, 4001); sup > 0.07 {
		t.Errorf("7-piece sigmoid sup error = %v, want < 0.07", sup)
	}
}

func TestBadPieceCounts(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 6} {
		if _, err := Tanh(p); !errors.Is(err, ErrInvalid) {
			t.Errorf("Tanh(%d) err = %v, want ErrInvalid", p, err)
		}
		if _, err := Sigmoid(p); !errors.Is(err, ErrInvalid) {
			t.Errorf("Sigmoid(%d) err = %v, want ErrInvalid", p, err)
		}
	}
}

func TestInterpolateValidation(t *testing.T) {
	id := func(x float64) float64 { return x }
	if _, err := Interpolate("x", id, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("no knots err = %v", err)
	}
	if _, err := Interpolate("x", id, []float64{1, 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("non-increasing knots err = %v", err)
	}
	// Single knot: two constant tails meeting at the knot value.
	f, err := Interpolate("const", id, []float64{2})
	if err != nil {
		t.Fatalf("single knot: %v", err)
	}
	if f.Eval(-5) != 2 || f.Eval(5) != 2 {
		t.Error("single-knot constant function wrong")
	}
}

func TestPiecesReturnsCopy(t *testing.T) {
	f := ReLU()
	p := f.Pieces()
	p[0].C = 999
	if f.Pieces()[0].C == 999 {
		t.Error("Pieces exposed internal storage")
	}
}

func TestEvalContinuityAtKnots(t *testing.T) {
	f, err := Tanh(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Pieces()[1:] {
		x := p.A
		left := f.Eval(x - 1e-9)
		right := f.Eval(x)
		if math.Abs(left-right) > 1e-6 {
			t.Errorf("discontinuity at knot %v: %v vs %v", x, left, right)
		}
	}
}

// Property: an interpolating PWL built from any monotone set of knots
// reproduces the target exactly at every interior knot.
func TestPropertyInterpolationExactAtKnots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		knots := make([]float64, n)
		x := -5 + rng.Float64()
		for i := range knots {
			x += 0.1 + rng.Float64()*2
			knots[i] = x
		}
		target := math.Sin
		pw, err := Interpolate("sin", target, knots)
		if err != nil {
			return false
		}
		for _, k := range knots {
			if math.Abs(pw.Eval(k)-target(k)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Eval is monotone for a monotone target interpolation (tanh).
func TestPropertyTanhPWLMonotone(t *testing.T) {
	f7, err := Tanh(7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return f7.Eval(lo) <= f7.Eval(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
