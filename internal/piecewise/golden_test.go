package piecewise

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateGolden regenerates testdata/pwl_golden.json from the current
// implementation:
//
//	go test ./internal/piecewise -run TestGoldenPWL -update
//
// The golden file locks the exact 7-piece tanh/sigmoid segments — knot
// positions and (K, C) slope/intercept per piece — so that any change to
// curvatureKnots, Interpolate, or the default span shows up as an explicit
// diff instead of a silent shift in every downstream moment computation
// (trained-model behavior depends bit-for-bit on these coefficients).
var updateGolden = flag.Bool("update", false, "rewrite the PWL golden file")

const goldenPath = "testdata/pwl_golden.json"

// goldenPiece stores the four floats of one segment as strconv 'g' -1
// strings: full round-trip precision, and ±Inf survives JSON (which has no
// encoding for non-finite numbers).
type goldenPiece struct {
	A string `json:"a"`
	B string `json:"b"`
	K string `json:"k"`
	C string `json:"c"`
}

type goldenFile struct {
	Comment string                   `json:"comment"`
	Funcs   map[string][]goldenPiece `json:"funcs"`
}

func formatPieces(f *Func) []goldenPiece {
	fmtF := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	out := make([]goldenPiece, f.NumPieces())
	for i, p := range f.Pieces() {
		out[i] = goldenPiece{A: fmtF(p.A), B: fmtF(p.B), K: fmtF(p.K), C: fmtF(p.C)}
	}
	return out
}

func parseGolden(t *testing.T, g goldenPiece) Piece {
	t.Helper()
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("golden file holds unparseable float %q: %v", s, err)
		}
		return v
	}
	return Piece{A: parse(g.A), B: parse(g.B), K: parse(g.K), C: parse(g.C)}
}

// TestGoldenPWL pins the exact segments of the paper-default 7-piece tanh
// and sigmoid approximations against testdata/pwl_golden.json.
func TestGoldenPWL(t *testing.T) {
	tanh, err := Tanh(7)
	if err != nil {
		t.Fatal(err)
	}
	sigmoid, err := Sigmoid(7)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]*Func{"tanh7": tanh, "sigmoid7": sigmoid}

	if *updateGolden {
		g := goldenFile{
			Comment: "Exact 7-piece PWL segments [A,B): y=Kx+C. Regenerate with: go test ./internal/piecewise -run TestGoldenPWL -update",
			Funcs:   map[string][]goldenPiece{},
		}
		for name, f := range got {
			g.Funcs[name] = formatPieces(f)
		}
		js, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Funcs) != len(got) {
		t.Fatalf("golden file has %d funcs, want %d", len(want.Funcs), len(got))
	}
	for name, f := range got {
		pieces := want.Funcs[name]
		if len(pieces) != f.NumPieces() {
			t.Fatalf("%s: golden has %d pieces, implementation has %d", name, len(pieces), f.NumPieces())
		}
		for i, gp := range pieces {
			wp := parseGolden(t, gp)
			cp := f.Piece(i)
			for _, c := range []struct {
				field     string
				got, want float64
			}{
				{"A", cp.A, wp.A},
				{"B", cp.B, wp.B},
				{"K", cp.K, wp.K},
				{"C", cp.C, wp.C},
			} {
				// Bit equality, not approximate: these coefficients feed the
				// closed-form moments, and strconv 'g' -1 round-trips exactly.
				if math.Float64bits(c.got) != math.Float64bits(c.want) {
					t.Errorf("%s piece %d field %s: got %v (bits %#x), golden %v (bits %#x)\n"+
						"intentional change? regenerate with -update and review the diff",
						name, i, c.field, c.got, math.Float64bits(c.got), c.want, math.Float64bits(c.want))
				}
			}
		}
	}
}
