// Package piecewise implements piece-wise linear (PWL) approximations of
// activation functions, the device ApDeepSense uses (paper §III-D) to push
// Gaussian distributions through non-linearities in closed form.
//
// A PWL function partitions the real line into P intervals (a_p, b_p) with
// b_p = a_{p+1}, a_1 = −∞, b_P = +∞, and is linear y = k_p·x + c_p on each.
// ReLU is exactly PWL with two pieces; Tanh and Sigmoid are approximated by
// interpolating the function at a set of interior knots, with constant
// saturation tails.
package piecewise

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalid is returned (wrapped) when a PWL specification is malformed.
var ErrInvalid = errors.New("piecewise: invalid specification")

// Piece is one linear segment y = K·x + C over the half-open interval
// [A, B). A may be −∞ and B may be +∞ on the boundary pieces.
type Piece struct {
	A, B float64 // interval bounds
	K, C float64 // slope and intercept
}

// Func is a piece-wise linear function: an ordered, contiguous set of pieces
// covering (−∞, +∞).
type Func struct {
	pieces []Piece
	name   string
}

// New validates and builds a PWL function from contiguous pieces. The pieces
// must be sorted, start at −∞, end at +∞, and abut exactly.
func New(name string, pieces []Piece) (*Func, error) {
	if len(pieces) == 0 {
		return nil, fmt.Errorf("no pieces: %w", ErrInvalid)
	}
	if !math.IsInf(pieces[0].A, -1) {
		return nil, fmt.Errorf("first piece starts at %v, want -Inf: %w", pieces[0].A, ErrInvalid)
	}
	if !math.IsInf(pieces[len(pieces)-1].B, 1) {
		return nil, fmt.Errorf("last piece ends at %v, want +Inf: %w", pieces[len(pieces)-1].B, ErrInvalid)
	}
	for i := 0; i < len(pieces); i++ {
		if i > 0 && pieces[i].A != pieces[i-1].B {
			return nil, fmt.Errorf("piece %d starts at %v but previous ends at %v: %w",
				i, pieces[i].A, pieces[i-1].B, ErrInvalid)
		}
		if !(pieces[i].A < pieces[i].B) {
			return nil, fmt.Errorf("piece %d has empty interval [%v, %v): %w",
				i, pieces[i].A, pieces[i].B, ErrInvalid)
		}
	}
	cp := make([]Piece, len(pieces))
	copy(cp, pieces)
	return &Func{pieces: cp, name: name}, nil
}

// Name returns the human-readable name of the function.
func (f *Func) Name() string { return f.name }

// NumPieces returns P, the number of linear segments. The paper's cost model
// for the activation step is proportional to P.
func (f *Func) NumPieces() int { return len(f.pieces) }

// Pieces returns a copy of the segments.
func (f *Func) Pieces() []Piece {
	out := make([]Piece, len(f.pieces))
	copy(out, f.pieces)
	return out
}

// Piece returns segment i by value without allocating (hot path for the
// per-element moment propagation). i must be in [0, NumPieces()).
func (f *Func) Piece(i int) Piece { return f.pieces[i] }

// Knots returns the P+1 piece boundaries in ascending order, including the
// ±Inf endpoints. Quadrature references integrate piece by piece, so they
// need the breakpoints (the integrand has a kink at each interior knot).
func (f *Func) Knots() []float64 {
	out := make([]float64, len(f.pieces)+1)
	for i, p := range f.pieces {
		out[i] = p.A
	}
	out[len(f.pieces)] = f.pieces[len(f.pieces)-1].B
	return out
}

// MaxAbsSlope returns max_p |k_p|, the Lipschitz constant of the PWL
// function. Error-budget propagation (internal/oracle) uses it to bound how a
// mean perturbation amplifies through the activation step.
func (f *Func) MaxAbsSlope() float64 {
	var m float64
	for _, p := range f.pieces {
		if a := math.Abs(p.K); a > m {
			m = a
		}
	}
	return m
}

// Eval evaluates the PWL function at x using binary search over the
// breakpoints.
func (f *Func) Eval(x float64) float64 {
	i := sort.Search(len(f.pieces), func(i int) bool { return x < f.pieces[i].B })
	if i == len(f.pieces) {
		i--
	}
	p := f.pieces[i]
	return p.K*x + p.C
}

// SupError estimates the supremum of |f − target| over [lo, hi] by dense
// sampling (samples points). It quantifies approximation quality, e.g. for
// choosing the knot layout of the 7-piece Tanh approximation.
func (f *Func) SupError(target func(float64) float64, lo, hi float64, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	var worst float64
	step := (hi - lo) / float64(samples-1)
	for i := 0; i < samples; i++ {
		x := lo + float64(i)*step
		if d := math.Abs(f.Eval(x) - target(x)); d > worst {
			worst = d
		}
	}
	return worst
}

// ReLU returns the exact two-piece representation of max(0, x). Because ReLU
// is already piece-wise linear, the Gaussian moment propagation through it is
// exact (paper §IV-C: "no activation function approximation is needed").
func ReLU() *Func {
	f, err := New("relu", []Piece{
		{A: math.Inf(-1), B: 0, K: 0, C: 0},
		{A: 0, B: math.Inf(1), K: 1, C: 0},
	})
	if err != nil {
		// Static construction; unreachable by design.
		panic(err)
	}
	return f
}

// Identity returns the single-piece identity function, used for output layers
// with no activation.
func Identity() *Func {
	f, err := New("identity", []Piece{{A: math.Inf(-1), B: math.Inf(1), K: 1, C: 0}})
	if err != nil {
		panic(err)
	}
	return f
}

// Interpolate builds a PWL approximation of target by connecting the points
// (knots[i], target(knots[i])) with line segments, and extending constant
// saturation tails at target(knots[0]) and target(knots[last]) so the result
// is continuous everywhere. Knots must be strictly increasing and non-empty.
//
// This matches the construction referenced by the paper ([29]: Amin et al.,
// piecewise linear approximation for neural-network activations): a P-piece
// function uses P−2 interior interpolation segments plus two saturation
// tails. For saturating activations (tanh, sigmoid) the outermost knots are
// placed deep enough into the saturation region that the constant tails sit
// within a fraction of a percent of the true asymptote.
func Interpolate(name string, target func(float64) float64, knots []float64) (*Func, error) {
	if len(knots) == 0 {
		return nil, fmt.Errorf("interpolate %q: no knots: %w", name, ErrInvalid)
	}
	for i := 1; i < len(knots); i++ {
		if !(knots[i] > knots[i-1]) {
			return nil, fmt.Errorf("interpolate %q: knots not strictly increasing at %d: %w", name, i, ErrInvalid)
		}
	}
	pieces := make([]Piece, 0, len(knots)+1)
	// Left saturation tail, constant at the boundary knot value (continuity).
	pieces = append(pieces, Piece{A: math.Inf(-1), B: knots[0], K: 0, C: target(knots[0])})
	for i := 0; i+1 < len(knots); i++ {
		x0, x1 := knots[i], knots[i+1]
		y0, y1 := target(x0), target(x1)
		k := (y1 - y0) / (x1 - x0)
		c := y0 - k*x0
		pieces = append(pieces, Piece{A: x0, B: x1, K: k, C: c})
	}
	// Right saturation tail.
	pieces = append(pieces, Piece{A: knots[len(knots)-1], B: math.Inf(1), K: 0, C: target(knots[len(knots)-1])})
	return New(name, pieces)
}

// Tanh returns a PWL approximation of tanh with the given number of pieces.
// pieces must be odd and >= 3 so the function stays odd-symmetric: two
// saturation tails plus pieces−2 interpolation segments over a symmetric knot
// range. The paper uses 7 pieces in all experiments.
func Tanh(pieces int) (*Func, error) {
	knots, err := curvatureKnots(pieces, 3, math.Tanh)
	if err != nil {
		return nil, fmt.Errorf("tanh: %w", err)
	}
	return Interpolate(fmt.Sprintf("tanh-pwl%d", pieces), math.Tanh, knots)
}

// Sigmoid returns a PWL approximation of the logistic function
// 1/(1+e^{−x}) with the given (odd, >= 3) number of pieces.
func Sigmoid(pieces int) (*Func, error) {
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	knots, err := curvatureKnots(pieces, 6, sig)
	if err != nil {
		return nil, fmt.Errorf("sigmoid: %w", err)
	}
	return Interpolate(fmt.Sprintf("sigmoid-pwl%d", pieces), sig, knots)
}

// curvatureKnots places pieces−1 knots symmetrically over [−span, span] with
// density proportional to sqrt(|f″|), the asymptotically optimal layout for
// piece-wise linear interpolation error. Knots are computed on the positive
// half-axis and mirrored, so the knot set is exactly symmetric and odd/even
// symmetry of the target survives interpolation. The target must have a
// symmetric curvature profile about 0, which holds for tanh and the logistic
// function.
func curvatureKnots(pieces int, span float64, f func(float64) float64) ([]float64, error) {
	if pieces < 3 || pieces%2 == 0 {
		return nil, fmt.Errorf("need an odd piece count >= 3, got %d: %w", pieces, ErrInvalid)
	}
	n := pieces - 1 // even knot count, no knot at 0
	half := n / 2

	// Cumulative sqrt-curvature mass on [0, span] by trapezoid rule.
	const grid = 2048
	const h = 1e-4
	const densityFloor = 1e-3 // keeps the density positive in flat regions
	xs := make([]float64, grid+1)
	cum := make([]float64, grid+1)
	dens := func(x float64) float64 {
		d2 := (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
		return math.Sqrt(math.Abs(d2)) + densityFloor
	}
	prev := dens(0)
	for i := 0; i <= grid; i++ {
		xs[i] = span * float64(i) / grid
		if i > 0 {
			cur := dens(xs[i])
			cum[i] = cum[i-1] + (prev+cur)/2*(xs[i]-xs[i-1])
			prev = cur
		}
	}
	total := cum[grid]

	// Positive knots at half-axis quantiles (2i+1)/(n−1), i = 0..half−1,
	// which is the restriction of full-axis quantiles j/(n−1) to j >= n/2.
	pos := make([]float64, half)
	for i := 0; i < half; i++ {
		t := total * float64(2*i+1) / float64(n-1)
		if t >= total {
			pos[i] = span
			continue
		}
		k := sort.SearchFloat64s(cum, t)
		if k <= 0 {
			pos[i] = 0
			continue
		}
		frac := 0.0
		if cum[k] > cum[k-1] {
			frac = (t - cum[k-1]) / (cum[k] - cum[k-1])
		}
		pos[i] = xs[k-1] + frac*(xs[k]-xs[k-1])
	}
	pos[half-1] = span // pin the boundary exactly

	knots := make([]float64, n)
	for i, x := range pos {
		knots[half+i] = x
		knots[half-1-i] = -x
	}
	return knots, nil
}
