package piecewise

import (
	"fmt"
	"math"
)

// LeakyReLU returns the 2-piece leaky rectifier: slope alpha on (−∞, 0),
// slope 1 on (0, ∞), both through the origin. alpha must be in [0, 1];
// alpha = 0 is ReLU. Unlike the tanh/sigmoid constructions this PWL is the
// activation itself, not an approximation — its sup-norm model error is 0 —
// so the exact-moment backend and this PWL disagree only in conditioning.
func LeakyReLU(alpha float64) *Func {
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("piecewise: leaky slope %v outside [0, 1]", alpha))
	}
	f, err := New("leaky_relu", []Piece{
		{A: math.Inf(-1), B: 0, K: alpha, C: 0},
		{A: 0, B: math.Inf(1), K: 1, C: 0},
	})
	if err != nil {
		// Static construction; unreachable by design.
		panic(err)
	}
	return f
}

// Rectifier reports whether f is a member of the rectifier family — exactly
// two pieces meeting at 0, zero intercepts, unit positive slope, negative
// slope in [0, 1] — and returns the negative-side slope. This is the shape
// test behind the exact-moment backend's auto dispatch: stats.RectifiedMoments
// and stats.LeakyRectifiedMoments are closed forms for precisely this family.
func (f *Func) Rectifier() (alpha float64, ok bool) {
	if len(f.pieces) != 2 {
		return 0, false
	}
	neg, pos := f.pieces[0], f.pieces[1]
	if neg.B != 0 || pos.A != 0 || neg.C != 0 || pos.C != 0 || pos.K != 1 {
		return 0, false
	}
	if neg.K < 0 || neg.K > 1 {
		return 0, false
	}
	return neg.K, true
}
