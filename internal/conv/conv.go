// Package conv implements the paper's stated future-work extension (§VI):
// ApDeepSense-style closed-form uncertainty propagation for one-dimensional
// convolutional networks with *convolutional dropout* (Gal & Ghahramani's
// Bernoulli approximate variational inference for CNNs, the paper's [36]).
//
// Convolutional dropout samples one Bernoulli mask element per input
// CHANNEL, shared across time. The moment propagation therefore first
// aggregates each channel's kernel-window contribution into a Gaussian
// partial sum, applies the dropout moment formulas (paper eqs. 9–10) at the
// channel level, and sums channels — keeping the layer-wise diagonal
// Gaussian family of the dense case. Activations reuse the same PWL
// machinery (internal/core, eqs. 12–26).
//
// The package is self-contained for time-series IoT models: Conv1D layers
// with stride, channel dropout, training via hand-derived backprop, global
// average pooling into a dense head, and Monte-Carlo-validated moment
// propagation.
package conv

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// ErrConfig is returned (wrapped) for invalid layer configurations.
var ErrConfig = errors.New("conv: invalid configuration")

// Seq is a time-series tensor: Data[t*Channels+c] is channel c at step t.
type Seq struct {
	Steps    int
	Channels int
	Data     []float64
}

// NewSeq allocates a zero sequence.
func NewSeq(steps, channels int) *Seq {
	return &Seq{Steps: steps, Channels: channels, Data: make([]float64, steps*channels)}
}

// At returns channel c at step t.
func (s *Seq) At(t, c int) float64 { return s.Data[t*s.Channels+c] }

// Set stores x at step t, channel c.
func (s *Seq) Set(t, c int, x float64) { s.Data[t*s.Channels+c] = x }

// Clone returns a deep copy.
func (s *Seq) Clone() *Seq {
	out := NewSeq(s.Steps, s.Channels)
	copy(out.Data, s.Data)
	return out
}

// GaussianSeq is a sequence of independent Gaussians (diagonal covariance),
// the convolutional analogue of core.GaussianVec.
type GaussianSeq struct {
	Mean *Seq
	Var  *Seq
}

// NewGaussianSeq allocates a zero-mean, zero-variance Gaussian sequence.
func NewGaussianSeq(steps, channels int) GaussianSeq {
	return GaussianSeq{Mean: NewSeq(steps, channels), Var: NewSeq(steps, channels)}
}

// DeterministicSeq wraps a plain sequence as a point mass.
func DeterministicSeq(s *Seq) GaussianSeq {
	return GaussianSeq{Mean: s.Clone(), Var: NewSeq(s.Steps, s.Channels)}
}

// Conv1D is a one-dimensional convolution layer with channel dropout:
//
//	y[t, o] = Σ_c z[c] · (Σ_k x[t·stride + k, c] · W[k, c, o]) + b[o]
//
// followed by an element-wise activation. z[c] ~ Bernoulli(KeepProb) is
// sampled once per input channel per forward pass (convolutional dropout).
type Conv1D struct {
	// Kernel, InCh, OutCh, Stride define the geometry. No padding: the
	// output has (steps − Kernel)/Stride + 1 steps.
	Kernel, InCh, OutCh, Stride int
	// W holds weights indexed [k][c][o] flattened as (k*InCh+c)*OutCh+o.
	W []float64
	// B is the per-output-channel bias.
	B []float64
	// Act is the activation function.
	Act nn.Activation
	// KeepProb is the channel keep probability (1 = no dropout).
	KeepProb float64
	// Moments selects the activation-moment backend for this layer
	// (auto resolves to the exact closed form for rectifiers).
	Moments nn.MomentMode
}

// NewConv1D builds a Glorot-initialized layer.
func NewConv1D(kernel, inCh, outCh, stride int, act nn.Activation, keepProb float64, rng *rand.Rand) (*Conv1D, error) {
	if kernel < 1 || inCh < 1 || outCh < 1 || stride < 1 {
		return nil, fmt.Errorf("geometry k=%d in=%d out=%d s=%d: %w", kernel, inCh, outCh, stride, ErrConfig)
	}
	if keepProb <= 0 || keepProb > 1 {
		return nil, fmt.Errorf("keep prob %v: %w", keepProb, ErrConfig)
	}
	if !act.Valid() {
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
	l := &Conv1D{
		Kernel: kernel, InCh: inCh, OutCh: outCh, Stride: stride,
		W: make([]float64, kernel*inCh*outCh), B: make([]float64, outCh),
		Act: act, KeepProb: keepProb,
	}
	limit := math.Sqrt(6.0 / float64(kernel*inCh+outCh))
	for i := range l.W {
		l.W[i] = (2*rng.Float64() - 1) * limit
	}
	return l, nil
}

// OutSteps returns the output length for an input of the given steps, or an
// error if the input is too short.
func (l *Conv1D) OutSteps(steps int) (int, error) {
	if steps < l.Kernel {
		return 0, fmt.Errorf("input %d steps < kernel %d: %w", steps, l.Kernel, ErrConfig)
	}
	return (steps-l.Kernel)/l.Stride + 1, nil
}

// w returns the weight at kernel tap k, input channel c, output channel o.
func (l *Conv1D) w(k, c, o int) float64 { return l.W[(k*l.InCh+c)*l.OutCh+o] }

// Forward runs the deterministic (weight-scaled) pass.
func (l *Conv1D) Forward(x *Seq) (*Seq, error) {
	if x.Channels != l.InCh {
		return nil, fmt.Errorf("input has %d channels, want %d: %w", x.Channels, l.InCh, ErrConfig)
	}
	outSteps, err := l.OutSteps(x.Steps)
	if err != nil {
		return nil, err
	}
	out := NewSeq(outSteps, l.OutCh)
	for t := 0; t < outSteps; t++ {
		base := t * l.Stride
		for o := 0; o < l.OutCh; o++ {
			sum := l.B[o]
			for k := 0; k < l.Kernel; k++ {
				for c := 0; c < l.InCh; c++ {
					sum += l.KeepProb * x.At(base+k, c) * l.w(k, c, o)
				}
			}
			out.Set(t, o, l.Act.Apply(sum))
		}
	}
	return out, nil
}

// ForwardSample runs one stochastic pass with a fresh channel dropout mask.
func (l *Conv1D) ForwardSample(x *Seq, rng *rand.Rand) (*Seq, error) {
	if x.Channels != l.InCh {
		return nil, fmt.Errorf("input has %d channels, want %d: %w", x.Channels, l.InCh, ErrConfig)
	}
	outSteps, err := l.OutSteps(x.Steps)
	if err != nil {
		return nil, err
	}
	mask := make([]float64, l.InCh)
	for c := range mask {
		if l.KeepProb >= 1 || rng.Float64() < l.KeepProb {
			mask[c] = 1
		}
	}
	out := NewSeq(outSteps, l.OutCh)
	for t := 0; t < outSteps; t++ {
		base := t * l.Stride
		for o := 0; o < l.OutCh; o++ {
			sum := l.B[o]
			for c := 0; c < l.InCh; c++ {
				if mask[c] == 0 {
					continue
				}
				for k := 0; k < l.Kernel; k++ {
					sum += x.At(base+k, c) * l.w(k, c, o)
				}
			}
			out.Set(t, o, l.Act.Apply(sum))
		}
	}
	return out, nil
}
