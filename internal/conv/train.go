package conv

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// Sample is one supervised time-series example.
type Sample struct {
	X *Seq
	Y tensor.Vector
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	Seed         int64
	Loss         train.Loss
	// Logf, when non-nil, receives one line per epoch.
	Logf func(format string, args ...any)
}

func (c TrainConfig) validate(n int) error {
	if c.Epochs < 1 || c.BatchSize < 1 || c.BatchSize > n || c.LearningRate <= 0 {
		return fmt.Errorf("epochs=%d batch=%d lr=%v over %d samples: %w",
			c.Epochs, c.BatchSize, c.LearningRate, n, ErrConfig)
	}
	if c.Loss == nil {
		return fmt.Errorf("nil loss: %w", ErrConfig)
	}
	return nil
}

// convGrads accumulates one layer's gradients.
type convGrads struct {
	w []float64
	b []float64
}

// trace records one stochastic forward pass for backprop.
type trace struct {
	inputs []*Seq      // per conv layer: the layer's input sequence
	pres   []*Seq      // per conv layer: pre-activations
	masks  [][]float64 // per conv layer: channel masks (0/1)
	pooled tensor.Vector
	// dense head intermediates
	headMasked [][]float64
	headMask   [][]bool
	headPre    [][]float64
	headOut    tensor.Vector
}

// Train fits the hybrid network in place with plain minibatch SGD, sampling
// dropout masks per example (both conv channel masks and dense unit masks).
// It exists to produce dropout-trained convolutional models for the
// future-work moment propagation; heavy-duty optimization stays in
// internal/train.
func Train(n *Net, data []Sample, cfg TrainConfig) error {
	if err := cfg.validate(len(data)); err != nil {
		return err
	}
	for i, s := range data {
		if s.X == nil || s.X.Channels != n.convs[0].InCh {
			return fmt.Errorf("sample %d: bad input: %w", i, ErrConfig)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(data))

	headLayers := n.head.Layers()
	cg := make([]convGrads, len(n.convs))
	for i, c := range n.convs {
		cg[i] = convGrads{w: make([]float64, len(c.W)), b: make([]float64, len(c.B))}
	}
	hgW := make([]*tensor.Matrix, len(headLayers))
	hgB := make([]tensor.Vector, len(headLayers))
	for i, l := range headLayers {
		hgW[i] = tensor.NewMatrix(l.W.Rows, l.W.Cols)
		hgB[i] = tensor.NewVector(len(l.B))
	}
	lossGrad := tensor.NewVector(n.head.OutputDim())

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			for i := range cg {
				zero(cg[i].w)
				zero(cg[i].b)
			}
			for i := range hgW {
				hgW[i].Fill(0)
				hgB[i].Fill(0)
			}
			for _, idx := range perm[start:end] {
				lv, err := n.forwardBackward(data[idx], cfg.Loss, lossGrad, cg, hgW, hgB, rng)
				if err != nil {
					return fmt.Errorf("conv: sample %d: %w", idx, err)
				}
				epochLoss += lv
			}
			scale := cfg.LearningRate / float64(end-start)
			for i, c := range n.convs {
				for j := range c.W {
					c.W[j] -= scale * cg[i].w[j]
				}
				for j := range c.B {
					c.B[j] -= scale * cg[i].b[j]
				}
			}
			for i, l := range headLayers {
				for j := range l.W.Data {
					l.W.Data[j] -= scale * hgW[i].Data[j]
				}
				for j := range l.B {
					l.B[j] -= scale * hgB[i][j]
				}
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("conv epoch %d: train %.5f", epoch, epochLoss/float64(len(perm)))
		}
	}
	return nil
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// forwardBackward accumulates one example's gradients.
func (n *Net) forwardBackward(s Sample, loss train.Loss, lossGrad tensor.Vector,
	cg []convGrads, hgW []*tensor.Matrix, hgB []tensor.Vector, rng *rand.Rand) (float64, error) {

	tr := trace{}

	// ----- Forward: conv stack with sampled channel masks.
	cur := s.X
	for _, c := range n.convs {
		outSteps, err := c.OutSteps(cur.Steps)
		if err != nil {
			return 0, err
		}
		mask := make([]float64, c.InCh)
		for ch := range mask {
			if c.KeepProb >= 1 || rng.Float64() < c.KeepProb {
				mask[ch] = 1
			}
		}
		pre := NewSeq(outSteps, c.OutCh)
		out := NewSeq(outSteps, c.OutCh)
		for t := 0; t < outSteps; t++ {
			base := t * c.Stride
			for o := 0; o < c.OutCh; o++ {
				sum := c.B[o]
				for ch := 0; ch < c.InCh; ch++ {
					if mask[ch] == 0 {
						continue
					}
					for k := 0; k < c.Kernel; k++ {
						sum += cur.At(base+k, ch) * c.w(k, ch, o)
					}
				}
				pre.Set(t, o, sum)
				out.Set(t, o, c.Act.Apply(sum))
			}
		}
		tr.inputs = append(tr.inputs, cur)
		tr.pres = append(tr.pres, pre)
		tr.masks = append(tr.masks, mask)
		cur = out
	}
	tr.pooled = GlobalAvgPool(cur)

	// ----- Forward: dense head with sampled unit masks.
	headLayers := n.head.Layers()
	inVec := []float64(tr.pooled)
	for _, l := range headLayers {
		masked := make([]float64, len(inVec))
		keepMask := make([]bool, len(inVec))
		copy(masked, inVec)
		for i := range keepMask {
			keepMask[i] = true
		}
		if l.KeepProb < 1 {
			for i := range masked {
				if rng.Float64() >= l.KeepProb {
					masked[i] = 0
					keepMask[i] = false
				}
			}
		}
		pre := make([]float64, l.OutDim())
		l.W.MulVecInto(masked, pre)
		out := make([]float64, l.OutDim())
		for j := range pre {
			pre[j] += l.B[j]
			out[j] = l.Act.Apply(pre[j])
		}
		tr.headMasked = append(tr.headMasked, masked)
		tr.headMask = append(tr.headMask, keepMask)
		tr.headPre = append(tr.headPre, pre)
		inVec = out
	}
	tr.headOut = inVec

	lv, err := loss.Eval(tr.headOut, s.Y, lossGrad)
	if err != nil {
		return 0, err
	}

	// ----- Backward: dense head.
	grad := []float64(lossGrad)
	for li := len(headLayers) - 1; li >= 0; li-- {
		l := headLayers[li]
		delta := make([]float64, l.OutDim())
		for j := range delta {
			delta[j] = grad[j] * l.Act.Derivative(tr.headPre[li][j])
		}
		gw := hgW[li]
		for i, xi := range tr.headMasked[li] {
			if xi == 0 {
				continue
			}
			row := gw.Data[i*gw.Cols : (i+1)*gw.Cols]
			for j, dj := range delta {
				row[j] += xi * dj
			}
		}
		for j, dj := range delta {
			hgB[li][j] += dj
		}
		next := make([]float64, l.InDim())
		for i := range next {
			if !tr.headMask[li][i] {
				continue
			}
			row := l.W.Data[i*l.W.Cols : (i+1)*l.W.Cols]
			var sum float64
			for j, dj := range delta {
				sum += row[j] * dj
			}
			next[i] = sum
		}
		grad = next
	}

	// ----- Backward: global average pooling.
	lastOutSteps := tr.pres[len(tr.pres)-1].Steps
	lastOutCh := tr.pres[len(tr.pres)-1].Channels
	seqGrad := NewSeq(lastOutSteps, lastOutCh)
	inv := 1.0 / float64(lastOutSteps)
	for t := 0; t < lastOutSteps; t++ {
		for c := 0; c < lastOutCh; c++ {
			seqGrad.Set(t, c, grad[c]*inv)
		}
	}

	// ----- Backward: conv stack.
	for li := len(n.convs) - 1; li >= 0; li-- {
		c := n.convs[li]
		pre := tr.pres[li]
		in := tr.inputs[li]
		mask := tr.masks[li]

		// delta = dL/dPre.
		delta := NewSeq(pre.Steps, pre.Channels)
		for t := 0; t < pre.Steps; t++ {
			for o := 0; o < c.OutCh; o++ {
				delta.Set(t, o, seqGrad.At(t, o)*c.Act.Derivative(pre.At(t, o)))
			}
		}
		// Parameter gradients.
		for t := 0; t < pre.Steps; t++ {
			base := t * c.Stride
			for o := 0; o < c.OutCh; o++ {
				d := delta.At(t, o)
				if d == 0 {
					continue
				}
				cg[li].b[o] += d
				for ch := 0; ch < c.InCh; ch++ {
					if mask[ch] == 0 {
						continue
					}
					for k := 0; k < c.Kernel; k++ {
						cg[li].w[(k*c.InCh+ch)*c.OutCh+o] += in.At(base+k, ch) * d
					}
				}
			}
		}
		// Input gradients for the next layer down.
		if li > 0 {
			ig := NewSeq(in.Steps, in.Channels)
			for t := 0; t < pre.Steps; t++ {
				base := t * c.Stride
				for o := 0; o < c.OutCh; o++ {
					d := delta.At(t, o)
					if d == 0 {
						continue
					}
					for ch := 0; ch < c.InCh; ch++ {
						if mask[ch] == 0 {
							continue
						}
						for k := 0; k < c.Kernel; k++ {
							ig.Data[(base+k)*in.Channels+ch] += c.w(k, ch, o) * d
						}
					}
				}
			}
			seqGrad = ig
		}
	}
	return lv, nil
}
