package conv

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func TestNewConv1DValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		k, in, out, s int
		keep          float64
		act           nn.Activation
	}{
		{0, 1, 1, 1, 1, nn.ActReLU},
		{1, 0, 1, 1, 1, nn.ActReLU},
		{1, 1, 0, 1, 1, nn.ActReLU},
		{1, 1, 1, 0, 1, nn.ActReLU},
		{1, 1, 1, 1, 0, nn.ActReLU},
		{1, 1, 1, 1, 1.5, nn.ActReLU},
		{1, 1, 1, 1, 1, nn.Activation(99)},
	}
	for i, c := range cases {
		if _, err := NewConv1D(c.k, c.in, c.out, c.s, c.act, c.keep, rng); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestConvForwardHandComputed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, err := NewConv1D(2, 1, 1, 1, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// y[t] = x[t]*w0 + x[t+1]*w1 + b.
	l.W[0], l.W[1] = 2, -1
	l.B[0] = 0.5
	x := NewSeq(4, 1)
	for i, v := range []float64{1, 2, 3, 4} {
		x.Set(i, 0, v)
	}
	out, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2*1 - 2 + 0.5, 2*2 - 3 + 0.5, 2*3 - 4 + 0.5}
	if out.Steps != 3 {
		t.Fatalf("out steps = %d, want 3", out.Steps)
	}
	for i, w := range want {
		if math.Abs(out.At(i, 0)-w) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out.At(i, 0), w)
		}
	}
}

func TestConvStride(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, err := NewConv1D(2, 1, 1, 2, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := l.OutSteps(6)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 { // (6-2)/2+1
		t.Errorf("OutSteps(6) = %d, want 3", steps)
	}
	if _, err := l.OutSteps(1); !errors.Is(err, ErrConfig) {
		t.Errorf("short input err = %v", err)
	}
}

func TestConvChannelMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, _ := NewConv1D(2, 3, 1, 1, nn.ActIdentity, 1, rng)
	x := NewSeq(5, 2)
	if _, err := l.Forward(x); !errors.Is(err, ErrConfig) {
		t.Errorf("Forward err = %v", err)
	}
	if _, err := l.ForwardSample(x, rng); !errors.Is(err, ErrConfig) {
		t.Errorf("ForwardSample err = %v", err)
	}
	if _, err := l.PropagateMoments(DeterministicSeq(x), piecewise.Identity()); !errors.Is(err, ErrConfig) {
		t.Errorf("PropagateMoments err = %v", err)
	}
}

func TestConvSampleMeanMatchesForward(t *testing.T) {
	// For an identity-activation layer, E[stochastic pass] equals the
	// weight-scaled deterministic pass.
	rng := rand.New(rand.NewSource(5))
	l, err := NewConv1D(3, 4, 2, 1, nn.ActIdentity, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewSeq(8, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	det, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 100000
	sum := NewSeq(det.Steps, det.Channels)
	for s := 0; s < samples; s++ {
		y, err := l.ForwardSample(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range y.Data {
			sum.Data[i] += v
		}
	}
	for i := range sum.Data {
		mean := sum.Data[i] / samples
		if math.Abs(mean-det.Data[i]) > 0.05 {
			t.Errorf("elem %d: sample mean %v vs deterministic %v", i, mean, det.Data[i])
		}
	}
}

// TestConvMomentsVsMonteCarlo is the load-bearing test of the future-work
// extension: the closed-form conv moments must match Monte Carlo over the
// channel dropout masks and Gaussian inputs.
func TestConvMomentsVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, act := range []nn.Activation{nn.ActIdentity, nn.ActReLU, nn.ActTanh} {
		// 8 input channels: with channel-level dropout the pre-activation is
		// a Gaussian MIXTURE over mask patterns; enough channels make the
		// Gaussian family's moment matching accurate (the same central-limit
		// argument the paper leans on for dense layers).
		l, err := NewConv1D(3, 8, 2, 2, act, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		f, err := activationFunc(act)
		if err != nil {
			t.Fatal(err)
		}

		g := NewGaussianSeq(7, 8)
		for i := range g.Mean.Data {
			g.Mean.Data[i] = rng.NormFloat64()
			g.Var.Data[i] = rng.Float64() * 0.5
		}
		got, err := l.PropagateMoments(g, f)
		if err != nil {
			t.Fatal(err)
		}

		const samples = 150000
		outSteps, _ := l.OutSteps(7)
		sum := NewSeq(outSteps, 2)
		sum2 := NewSeq(outSteps, 2)
		x := NewSeq(7, 8)
		for s := 0; s < samples; s++ {
			for i := range x.Data {
				x.Data[i] = g.Mean.Data[i] + math.Sqrt(g.Var.Data[i])*rng.NormFloat64()
			}
			y, err := l.ForwardSample(x, rng)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range y.Data {
				sum.Data[i] += v
				sum2.Data[i] += v * v
			}
		}
		for i := range sum.Data {
			mcMean := sum.Data[i] / samples
			mcVar := sum2.Data[i]/samples - mcMean*mcMean
			meanTol := 0.02 + 0.02*math.Abs(mcMean)
			// Identity is exact (moments are linear). ReLU moments are exact
			// for Gaussian pre-activations, but channel dropout makes the
			// pre-activation a Gaussian mixture, so a residual approximation
			// error — the method's own, per §III-A — remains.
			varTol := 0.05*mcVar + 5e-4
			if act == nn.ActReLU {
				varTol = 0.2*mcVar + 5e-4
			}
			if act == nn.ActTanh {
				// The Monte Carlo applies the TRUE tanh while the closed
				// form pushes moments through its 7-piece PWL surrogate, so
				// the PWL approximation error (not a moment-math error)
				// bounds agreement here.
				meanTol = 0.05 + 0.04*math.Abs(mcMean)
				varTol = 0.3*mcVar + 2e-3
			}
			if math.Abs(got.Mean.Data[i]-mcMean) > meanTol {
				t.Errorf("%v elem %d: mean %v vs MC %v", act, i, got.Mean.Data[i], mcMean)
			}
			if math.Abs(got.Var.Data[i]-mcVar) > varTol {
				t.Errorf("%v elem %d: var %v vs MC %v", act, i, got.Var.Data[i], mcVar)
			}
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	s := NewSeq(2, 2)
	s.Set(0, 0, 1)
	s.Set(1, 0, 3)
	s.Set(0, 1, -2)
	s.Set(1, 1, 2)
	p := GlobalAvgPool(s)
	if p[0] != 2 || p[1] != 0 {
		t.Errorf("GAP = %v, want [2 0]", p)
	}
	g := NewGaussianSeq(2, 1)
	g.Mean.Set(0, 0, 4)
	g.Mean.Set(1, 0, 6)
	g.Var.Set(0, 0, 2)
	g.Var.Set(1, 0, 2)
	gm := GlobalAvgPoolMoments(g)
	if gm.Mean[0] != 5 {
		t.Errorf("pooled mean = %v, want 5", gm.Mean[0])
	}
	if gm.Var[0] != 1 { // (2+2)/4
		t.Errorf("pooled var = %v, want 1", gm.Var[0])
	}
}

func buildTestNet(t *testing.T, keep float64, seed int64) *Net {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c1, err := NewConv1D(3, 2, 6, 1, nn.ActReLU, 1, rng) // no dropout on raw input
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewConv1D(3, 6, 8, 2, nn.ActReLU, keep, rng)
	if err != nil {
		t.Fatal(err)
	}
	head, err := nn.New(nn.Config{
		InputDim: 8, Hidden: []int{12}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: keep, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet([]*Conv1D{c1, c2}, head)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c1, _ := NewConv1D(3, 2, 6, 1, nn.ActReLU, 1, rng)
	c2, _ := NewConv1D(3, 4, 8, 1, nn.ActReLU, 1, rng) // 4 != 6
	head, _ := nn.New(nn.Config{
		InputDim: 8, Hidden: nil, OutputDim: 2,
		Activation: nn.ActIdentity, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if _, err := NewNet(nil, head); !errors.Is(err, ErrConfig) {
		t.Errorf("empty convs err = %v", err)
	}
	if _, err := NewNet([]*Conv1D{c1, c2}, head); !errors.Is(err, ErrConfig) {
		t.Errorf("channel mismatch err = %v", err)
	}
	if _, err := NewNet([]*Conv1D{c1}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil head err = %v", err)
	}
	badHead, _ := nn.New(nn.Config{
		InputDim: 5, Hidden: nil, OutputDim: 2,
		Activation: nn.ActIdentity, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if _, err := NewNet([]*Conv1D{c1}, badHead); !errors.Is(err, ErrConfig) {
		t.Errorf("head dim mismatch err = %v", err)
	}
}

// TestNetMomentsVsMonteCarlo validates end-to-end hybrid propagation.
func TestNetMomentsVsMonteCarlo(t *testing.T) {
	net := buildTestNet(t, 0.8, 3)
	rng := rand.New(rand.NewSource(11))
	x := NewSeq(12, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	got, err := net.PropagateMoments(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("moments invalid: %v", err)
	}

	const samples = 120000
	sum := make([]float64, 2)
	sum2 := make([]float64, 2)
	for s := 0; s < samples; s++ {
		y, err := net.ForwardSample(x, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range y {
			sum[j] += v
			sum2[j] += v * v
		}
	}
	for j := 0; j < 2; j++ {
		mcMean := sum[j] / samples
		mcVar := sum2[j]/samples - mcMean*mcMean
		if math.Abs(got.Mean[j]-mcMean) > 0.25*math.Sqrt(mcVar)+0.02 {
			t.Errorf("out %d: mean %v vs MC %v", j, got.Mean[j], mcMean)
		}
		// Temporal correlations (shared channel masks) are dropped by the
		// diagonal family, so the variance agreement is loose by design.
		ratio := got.Var[j] / mcVar
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("out %d: var %v vs MC %v (ratio %v)", j, got.Var[j], mcVar, ratio)
		}
	}
}

// TestConvGradientCheck verifies the hand-derived conv backprop against
// finite differences on a dropout-free network.
func TestConvGradientCheck(t *testing.T) {
	net := buildTestNet(t, 1, 9)
	rng := rand.New(rand.NewSource(2))
	x := NewSeq(12, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	s := Sample{X: x, Y: tensor.Vector{0.3, -0.8}}
	loss := train.MSE{}

	cg := make([]convGrads, len(net.convs))
	for i, c := range net.convs {
		cg[i] = convGrads{w: make([]float64, len(c.W)), b: make([]float64, len(c.B))}
	}
	headLayers := net.head.Layers()
	hgW := make([]*tensor.Matrix, len(headLayers))
	hgB := make([]tensor.Vector, len(headLayers))
	for i, l := range headLayers {
		hgW[i] = tensor.NewMatrix(l.W.Rows, l.W.Cols)
		hgB[i] = tensor.NewVector(len(l.B))
	}
	lossGrad := tensor.NewVector(2)
	if _, err := net.forwardBackward(s, loss, lossGrad, cg, hgW, hgB, rng); err != nil {
		t.Fatal(err)
	}

	lossAt := func() float64 {
		out, err := net.Forward(s.X)
		if err != nil {
			t.Fatal(err)
		}
		g := tensor.NewVector(2)
		lv, err := loss.Eval(out, s.Y, g)
		if err != nil {
			t.Fatal(err)
		}
		return lv
	}
	const h = 1e-6
	for li, c := range net.convs {
		for idx := range c.W {
			orig := c.W[idx]
			c.W[idx] = orig + h
			up := lossAt()
			c.W[idx] = orig - h
			down := lossAt()
			c.W[idx] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-cg[li].w[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("conv %d W[%d]: analytic %v vs numeric %v", li, idx, cg[li].w[idx], num)
			}
		}
		for idx := range c.B {
			orig := c.B[idx]
			c.B[idx] = orig + h
			up := lossAt()
			c.B[idx] = orig - h
			down := lossAt()
			c.B[idx] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-cg[li].b[idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("conv %d B[%d]: analytic %v vs numeric %v", li, idx, cg[li].b[idx], num)
			}
		}
	}
	// Spot-check the head gradient too (full check lives in internal/train).
	l0 := headLayers[0]
	orig := l0.W.Data[0]
	l0.W.Data[0] = orig + h
	up := lossAt()
	l0.W.Data[0] = orig - h
	down := lossAt()
	l0.W.Data[0] = orig
	num := (up - down) / (2 * h)
	if math.Abs(num-hgW[0].Data[0]) > 1e-4*(1+math.Abs(num)) {
		t.Fatalf("head W[0]: analytic %v vs numeric %v", hgW[0].Data[0], num)
	}
}

// TestConvTrainingConverges fits a two-class sequence classification task:
// class 0 = low-frequency sine, class 1 = high-frequency sine.
func TestConvTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mkSample := func(cls int) Sample {
		x := NewSeq(24, 2)
		freq := 0.2
		if cls == 1 {
			freq = 0.9
		}
		phase := rng.Float64() * 2 * math.Pi
		for step := 0; step < 24; step++ {
			x.Set(step, 0, math.Sin(freq*float64(step)+phase)+0.1*rng.NormFloat64())
			x.Set(step, 1, math.Cos(freq*float64(step)+phase)+0.1*rng.NormFloat64())
		}
		y := tensor.Vector{0, 0}
		y[cls] = 1
		return Sample{X: x, Y: y}
	}
	var data []Sample
	for i := 0; i < 300; i++ {
		data = append(data, mkSample(i%2))
	}

	rngNet := rand.New(rand.NewSource(8))
	c1, err := NewConv1D(5, 2, 8, 2, nn.ActReLU, 1, rngNet)
	if err != nil {
		t.Fatal(err)
	}
	head, err := nn.New(nn.Config{
		InputDim: 8, Hidden: []int{16}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet([]*Conv1D{c1}, head)
	if err != nil {
		t.Fatal(err)
	}
	if err := Train(net, data, TrainConfig{
		Epochs: 30, BatchSize: 16, LearningRate: 0.05, Seed: 2,
		Loss: train.SoftmaxCrossEntropy{},
	}); err != nil {
		t.Fatalf("Train: %v", err)
	}

	correct := 0
	for _, s := range data {
		out, err := net.Forward(s.X)
		if err != nil {
			t.Fatal(err)
		}
		_, pi := out.Max()
		_, ti := s.Y.Max()
		if pi == ti {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.9 {
		t.Errorf("conv classification accuracy = %v, want >= 0.9", acc)
	}

	// And the trained model yields a valid end-to-end moment propagation.
	g, err := net.PropagateMoments(data[0].X)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("moments on trained conv net: %v", err)
	}
}

func TestTrainValidation(t *testing.T) {
	net := buildTestNet(t, 1, 1)
	data := []Sample{{X: NewSeq(12, 2), Y: tensor.Vector{0, 0}}}
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 5, LearningRate: 0.1, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 1, LearningRate: 0, Loss: train.MSE{}},
		{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: nil},
	}
	for i, cfg := range bad {
		if err := Train(net, data, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	badData := []Sample{{X: NewSeq(12, 5), Y: tensor.Vector{0, 0}}}
	if err := Train(net, badData, TrainConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, Loss: train.MSE{}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad channels err = %v", err)
	}
}
