package conv

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Net is a hybrid time-series model: a stack of Conv1D layers, global
// average pooling over time, and a fully-connected head — the standard
// shape of IoT CNN classifiers/regressors. Uncertainty propagates end to
// end: channel-dropout conv moments → pooled Gaussian vector → the dense
// ApDeepSense propagator.
type Net struct {
	convs []*Conv1D
	head  *nn.Network

	// acts caches each conv layer's PWL activation for moment propagation.
	acts []*piecewise.Func
	prop *core.Propagator
}

// NewNet validates layer compatibility and prepares moment propagation.
// The head's input dimension must equal the last conv layer's OutCh.
func NewNet(convs []*Conv1D, head *nn.Network) (*Net, error) {
	if len(convs) == 0 {
		return nil, fmt.Errorf("no conv layers: %w", ErrConfig)
	}
	for i := 1; i < len(convs); i++ {
		if convs[i].InCh != convs[i-1].OutCh {
			return nil, fmt.Errorf("conv %d in=%d != conv %d out=%d: %w",
				i, convs[i].InCh, i-1, convs[i-1].OutCh, ErrConfig)
		}
	}
	if head == nil {
		return nil, fmt.Errorf("nil head: %w", ErrConfig)
	}
	last := convs[len(convs)-1]
	if head.InputDim() != last.OutCh {
		return nil, fmt.Errorf("head input %d != pooled channels %d: %w",
			head.InputDim(), last.OutCh, ErrConfig)
	}
	n := &Net{convs: convs, head: head, acts: make([]*piecewise.Func, len(convs))}
	for i, c := range convs {
		f, err := activationFunc(c.Act)
		if err != nil {
			return nil, fmt.Errorf("conv layer %d: %w", i, err)
		}
		n.acts[i] = f
	}
	prop, err := core.NewPropagator(head, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("head propagator: %w", err)
	}
	n.prop = prop
	return n, nil
}

// Head returns the dense head network.
func (n *Net) Head() *nn.Network { return n.head }

// Convs returns the conv layers (shared, treat as read-only).
func (n *Net) Convs() []*Conv1D {
	out := make([]*Conv1D, len(n.convs))
	copy(out, n.convs)
	return out
}

// Forward runs the deterministic (weight-scaled) pass end to end.
func (n *Net) Forward(x *Seq) (tensor.Vector, error) {
	cur := x
	for i, c := range n.convs {
		var err error
		cur, err = c.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.head.Forward(GlobalAvgPool(cur))
}

// ForwardSample runs one stochastic pass with fresh channel and unit masks.
func (n *Net) ForwardSample(x *Seq, rng *rand.Rand) (tensor.Vector, error) {
	cur := x
	for i, c := range n.convs {
		var err error
		cur, err = c.ForwardSample(cur, rng)
		if err != nil {
			return nil, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.head.ForwardSample(GlobalAvgPool(cur), rng)
}

// PropagateMoments runs the full ApDeepSense pass over the hybrid network:
// closed-form conv moments per layer, pooled, then the dense propagator.
func (n *Net) PropagateMoments(x *Seq) (core.GaussianVec, error) {
	g := DeterministicSeq(x)
	for i, c := range n.convs {
		var err error
		g, err = c.PropagateMoments(g, n.acts[i])
		if err != nil {
			return core.GaussianVec{}, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.prop.PropagateFrom(GlobalAvgPoolMoments(g))
}
