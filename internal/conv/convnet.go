package conv

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Net is a hybrid time-series model: a stack of Conv1D layers, global
// average pooling over time, and a fully-connected head — the standard
// shape of IoT CNN classifiers/regressors. Uncertainty propagates end to
// end: channel-dropout conv moments → pooled Gaussian vector → the dense
// ApDeepSense propagator.
type Net struct {
	convs []*Conv1D
	head  *nn.Network

	// acts/kernels cache each conv layer's PWL activation and its
	// activation-moment kernel, resolved once through core.KernelFor so
	// the conv stack obeys the same backend dispatch (exact rectifier
	// closed form by default, PWL otherwise) as the dense propagator.
	acts    []*piecewise.Func
	kernels []*core.ActKernel
	prop    *core.Propagator
}

// NewNet validates layer compatibility and prepares moment propagation
// under default options. The head's input dimension must equal the last
// conv layer's OutCh.
func NewNet(convs []*Conv1D, head *nn.Network) (*Net, error) {
	return NewNetOpts(convs, head, core.Options{})
}

// NewNetOpts is NewNet with explicit propagation options. The options'
// ActivationMoments is the default backend for conv layers whose own
// Moments field is MomentsAuto, exactly mirroring how nn.Layer.Moments
// interacts with the dense propagator; the head propagator is built from
// the same options.
func NewNetOpts(convs []*Conv1D, head *nn.Network, opts core.Options) (*Net, error) {
	if len(convs) == 0 {
		return nil, fmt.Errorf("no conv layers: %w", ErrConfig)
	}
	for i := 1; i < len(convs); i++ {
		if convs[i].InCh != convs[i-1].OutCh {
			return nil, fmt.Errorf("conv %d in=%d != conv %d out=%d: %w",
				i, convs[i].InCh, i-1, convs[i-1].OutCh, ErrConfig)
		}
	}
	if head == nil {
		return nil, fmt.Errorf("nil head: %w", ErrConfig)
	}
	last := convs[len(convs)-1]
	if head.InputDim() != last.OutCh {
		return nil, fmt.Errorf("head input %d != pooled channels %d: %w",
			head.InputDim(), last.OutCh, ErrConfig)
	}
	n := &Net{
		convs:   convs,
		head:    head,
		acts:    make([]*piecewise.Func, len(convs)),
		kernels: make([]*core.ActKernel, len(convs)),
	}
	for i, c := range convs {
		mode := c.Moments
		if mode == nn.MomentsAuto {
			mode = opts.ActivationMoments
		}
		f, k, err := core.KernelFor(c.Act, mode, opts)
		if err != nil {
			return nil, fmt.Errorf("conv layer %d: %w", i, err)
		}
		n.acts[i] = f
		n.kernels[i] = k
	}
	prop, err := core.NewPropagator(head, opts)
	if err != nil {
		return nil, fmt.Errorf("head propagator: %w", err)
	}
	n.prop = prop
	return n, nil
}

// Head returns the dense head network.
func (n *Net) Head() *nn.Network { return n.head }

// HeadPropagator returns the dense head's moment propagator.
func (n *Net) HeadPropagator() *core.Propagator { return n.prop }

// Convs returns the conv layers (shared, treat as read-only).
func (n *Net) Convs() []*Conv1D {
	out := make([]*Conv1D, len(n.convs))
	copy(out, n.convs)
	return out
}

// MomentsExact reports whether conv layer i serves the exact analytical
// activation-moment backend.
func (n *Net) MomentsExact(i int) bool { return n.kernels[i].Exact() }

// Forward runs the deterministic (weight-scaled) pass end to end.
func (n *Net) Forward(x *Seq) (tensor.Vector, error) {
	cur := x
	for i, c := range n.convs {
		var err error
		cur, err = c.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.head.Forward(GlobalAvgPool(cur))
}

// ForwardSample runs one stochastic pass with fresh channel and unit masks.
func (n *Net) ForwardSample(x *Seq, rng *rand.Rand) (tensor.Vector, error) {
	cur := x
	for i, c := range n.convs {
		var err error
		cur, err = c.ForwardSample(cur, rng)
		if err != nil {
			return nil, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.head.ForwardSample(GlobalAvgPool(cur), rng)
}

// PropagateMoments runs the full ApDeepSense pass over the hybrid network:
// closed-form conv moments per layer, pooled, then the dense propagator.
func (n *Net) PropagateMoments(x *Seq) (core.GaussianVec, error) {
	g := DeterministicSeq(x)
	for i, c := range n.convs {
		var err error
		g, err = c.PropagateMomentsKernel(g, n.kernels[i])
		if err != nil {
			return core.GaussianVec{}, fmt.Errorf("conv %d: %w", i, err)
		}
	}
	return n.prop.PropagateFrom(GlobalAvgPoolMoments(g))
}

// PropagateBatch runs PropagateMoments over a batch of sequences. The conv
// stack has no cross-sample arithmetic (each sample's moment recursion is
// independent), so the batched result is bit-identical to sequential
// PropagateMoments calls by construction — the property the differential
// harness pins.
func (n *Net) PropagateBatch(xs []*Seq) ([]core.GaussianVec, error) {
	out := make([]core.GaussianVec, len(xs))
	for i, x := range xs {
		g, err := n.PropagateMoments(x)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out[i] = g
	}
	return out, nil
}

// Cost returns the modeled per-inference cost of PropagateMoments for an
// input of the given steps (conv output lengths, hence cost, depend on the
// input length). The activation charge per element follows the dense
// propagator's model: OpsPerExactMoments for exact rectifier layers,
// per-piece PWL charges otherwise — so exact-vs-PWL cost parity holds for
// the conv stack by the same construction.
func (n *Net) Cost(steps int) (edison.Cost, error) {
	var c edison.Cost
	s := steps
	for i, l := range n.convs {
		outSteps, err := l.OutSteps(s)
		if err != nil {
			return edison.Cost{}, fmt.Errorf("conv %d: %w", i, err)
		}
		elems := int64(outSteps) * int64(l.OutCh)
		window := int64(l.InCh) * int64(l.Kernel)
		// Mean and variance window sums (2 FLOPs per tap each).
		c.DenseFLOPs += 2 * 2 * window * elems
		// Dropout moment algebra per channel partial sum plus bias add.
		c.ElementOps += 5*int64(l.InCh)*elems + elems
		if n.kernels[i].Exact() {
			c.ElementOps += elems * core.OpsPerExactMoments
		} else {
			for _, piece := range n.acts[i].Pieces() {
				if piece.K == 0 {
					c.ElementOps += elems * core.OpsPerConstPiece
				} else {
					c.ElementOps += elems * core.OpsPerLinearPiece
				}
			}
		}
		s = outSteps
	}
	// Global average pooling: one mean and one variance pass.
	c.ElementOps += 2 * int64(s) * int64(n.convs[len(n.convs)-1].OutCh)
	return c.Add(n.prop.Cost()), nil
}
