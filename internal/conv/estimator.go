package conv

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Estimator adapts a conv Net to the core.Estimator contract so hybrid
// time-series models plug into the registry, the serving tier, and the
// benchmark harness alongside dense ApDeepSense. The flat input vector is
// interpreted as a fixed-length sequence in the same step-major layout as
// Seq.Data (x[t*channels+c]); the step count is fixed at construction
// because the estimator contract has no shape channel.
type Estimator struct {
	net    *Net
	steps  int
	obsVar float64
	cost   edison.Cost
}

var _ core.Estimator = (*Estimator)(nil)

// NewEstimator wraps net as an estimator over steps-long sequences. obsVar
// (>= 0) is the observation-noise variance added to regression predictive
// variances, mirroring core.NewApDeepSense.
func NewEstimator(net *Net, steps int, obsVar float64) (*Estimator, error) {
	if net == nil {
		return nil, fmt.Errorf("nil net: %w", ErrConfig)
	}
	if obsVar < 0 {
		return nil, fmt.Errorf("negative obsVar %v: %w", obsVar, ErrConfig)
	}
	cost, err := net.Cost(steps)
	if err != nil {
		return nil, err
	}
	return &Estimator{net: net, steps: steps, obsVar: obsVar, cost: cost}, nil
}

// Steps returns the fixed sequence length the estimator expects.
func (e *Estimator) Steps() int { return e.steps }

// Net returns the underlying hybrid network.
func (e *Estimator) Net() *Net { return e.net }

// Name implements core.Estimator.
func (e *Estimator) Name() string { return "ApDeepSense-Conv1D" }

func (e *Estimator) seq(x tensor.Vector) (*Seq, error) {
	inCh := e.net.convs[0].InCh
	if len(x) != e.steps*inCh {
		return nil, fmt.Errorf("input length %d != steps %d × channels %d: %w",
			len(x), e.steps, inCh, ErrConfig)
	}
	s := NewSeq(e.steps, inCh)
	copy(s.Data, x)
	return s, nil
}

// Predict implements core.Estimator: one closed-form moment pass through
// the conv stack, pooling, and the dense head.
func (e *Estimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	s, err := e.seq(x)
	if err != nil {
		return core.GaussianVec{}, err
	}
	g, err := e.net.PropagateMoments(s)
	if err != nil {
		return core.GaussianVec{}, err
	}
	for i := range g.Var {
		g.Var[i] += e.obsVar
	}
	return g, nil
}

// PredictProbs implements core.Estimator: Gaussian logits through the
// mean-field softmax link. The observation-noise floor is not applied to
// logits, matching core.ApDeepSense.
func (e *Estimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	s, err := e.seq(x)
	if err != nil {
		return nil, err
	}
	g, err := e.net.PropagateMoments(s)
	if err != nil {
		return nil, err
	}
	return core.MeanFieldSoftmax(g), nil
}

// Cost implements core.Estimator.
func (e *Estimator) Cost() edison.Cost { return e.cost }
