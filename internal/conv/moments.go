package conv

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
)

// PropagateMoments pushes a Gaussian sequence through the convolution with
// channel dropout in closed form — the convolutional analogue of the paper's
// eqs. 9–10, derived channel-wise because the Bernoulli mask is shared
// across time within a channel:
//
//	a[t,c,o]  = Σ_k x[t·s+k, c] W[k,c,o]          (Gaussian partial sum)
//	μ_a       = Σ_k μ_x W,   σ_a² = Σ_k σ_x² W²
//	y[t,o]    = b[o] + Σ_c z[c]·a[t,c,o]
//	E[y]      = b + Σ_c p·μ_a
//	Var[y]    = Σ_c ((μ_a² + σ_a²)p − μ_a²p²)
//
// The activation is then applied element-wise through the PWL moment
// machinery (eqs. 12–26) with the function given by act. This PWL-typed
// entry point is kept for callers that carry their own piecewise functions;
// Net resolves kernels once (including the exact rectifier backend) and
// uses PropagateMomentsKernel.
func (l *Conv1D) PropagateMoments(g GaussianSeq, act *piecewise.Func) (GaussianSeq, error) {
	return l.PropagateMomentsKernel(g, core.NewActKernel(act))
}

// PropagateMomentsKernel is PropagateMoments against a prebuilt
// activation-moment kernel — the first-class path Net serves on. For PWL
// kernels it is bit-identical to PropagateMoments (the kernel reproduces
// core.ActivationMoments exactly); exact kernels dispatch rectifier layers
// to the closed-form moments.
//
// Two numeric edge cases are handled explicitly rather than through the
// generic dropout algebra:
//   - KeepProb == 1: the generic variance (μ_a²+σ_a²)·p − μ_a²·p² rounds
//     σ_a² away entirely once μ_a² ≳ σ_a²/ε, silently zeroing the variance
//     of confident channels. With no mask there is no mask variance, so the
//     sum reduces to mean += μ_a, variance += σ_a² exactly.
//   - Var/Mean shape disagreement (including a nil Var) is rejected up
//     front; the generic loop would have indexed out of bounds or silently
//     read zeros.
func (l *Conv1D) PropagateMomentsKernel(g GaussianSeq, ak *core.ActKernel) (GaussianSeq, error) {
	if g.Mean == nil || g.Var == nil {
		return GaussianSeq{}, fmt.Errorf("moments: nil mean or variance sequence: %w", ErrConfig)
	}
	if g.Mean.Channels != l.InCh {
		return GaussianSeq{}, fmt.Errorf("moments: input has %d channels, want %d: %w", g.Mean.Channels, l.InCh, ErrConfig)
	}
	if g.Var.Steps != g.Mean.Steps || g.Var.Channels != g.Mean.Channels {
		return GaussianSeq{}, fmt.Errorf("moments: variance shape %dx%d != mean shape %dx%d: %w",
			g.Var.Steps, g.Var.Channels, g.Mean.Steps, g.Mean.Channels, ErrConfig)
	}
	outSteps, err := l.OutSteps(g.Mean.Steps)
	if err != nil {
		return GaussianSeq{}, err
	}
	p := l.KeepProb
	bounds := make([]stats.Boundary, ak.NumBounds())
	pms := make([]stats.PartialMoments, ak.NumBounds())
	out := NewGaussianSeq(outSteps, l.OutCh)
	for t := 0; t < outSteps; t++ {
		base := t * l.Stride
		for o := 0; o < l.OutCh; o++ {
			mean := l.B[o]
			variance := 0.0
			for c := 0; c < l.InCh; c++ {
				var muA, varA float64
				for k := 0; k < l.Kernel; k++ {
					w := l.w(k, c, o)
					muA += g.Mean.At(base+k, c) * w
					varA += g.Var.At(base+k, c) * w * w
				}
				if p == 1 {
					mean += muA
					variance += varA
				} else {
					mean += p * muA
					variance += (muA*muA+varA)*p - muA*muA*p*p
				}
			}
			if variance < 0 {
				variance = 0
			}
			m, v := ak.Moments(mean, variance, bounds, pms)
			out.Mean.Set(t, o, m)
			out.Var.Set(t, o, v)
		}
	}
	return out, nil
}

// GlobalAvgPoolMoments reduces a Gaussian sequence over time into a
// per-channel Gaussian vector: the mean of means, and the variance of the
// average under the (diagonal) independence approximation, Var/steps².
// Note the same caveat as everywhere in ApDeepSense: temporal correlations
// induced by the shared channel masks are dropped. A zero-step sequence
// pools to the zero point mass per channel (0/0 would otherwise poison the
// head with NaNs); it cannot arise through Net, whose conv stack already
// rejects sequences shorter than the kernel.
func GlobalAvgPoolMoments(g GaussianSeq) core.GaussianVec {
	out := core.NewGaussianVec(g.Mean.Channels)
	if g.Mean.Steps == 0 {
		return out
	}
	n := float64(g.Mean.Steps)
	for c := 0; c < g.Mean.Channels; c++ {
		var m, v float64
		for t := 0; t < g.Mean.Steps; t++ {
			m += g.Mean.At(t, c)
			v += g.Var.At(t, c)
		}
		out.Mean[c] = m / n
		out.Var[c] = v / (n * n)
	}
	return out
}

// GlobalAvgPool reduces a plain sequence over time.
func GlobalAvgPool(s *Seq) []float64 {
	out := make([]float64, s.Channels)
	n := float64(s.Steps)
	for c := 0; c < s.Channels; c++ {
		var m float64
		for t := 0; t < s.Steps; t++ {
			m += s.At(t, c)
		}
		out[c] = m / n
	}
	return out
}

// activationFunc resolves a layer's activation to its PWL representation,
// with the paper's default piece counts.
func activationFunc(act nn.Activation) (*piecewise.Func, error) {
	switch act {
	case nn.ActIdentity:
		return piecewise.Identity(), nil
	case nn.ActReLU:
		return piecewise.ReLU(), nil
	case nn.ActLeakyReLU:
		return piecewise.LeakyReLU(nn.LeakyAlpha), nil
	case nn.ActTanh:
		return piecewise.Tanh(7)
	case nn.ActSigmoid:
		return piecewise.Sigmoid(7)
	default:
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
}
