package conv

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
)

// PropagateMoments pushes a Gaussian sequence through the convolution with
// channel dropout in closed form — the convolutional analogue of the paper's
// eqs. 9–10, derived channel-wise because the Bernoulli mask is shared
// across time within a channel:
//
//	a[t,c,o]  = Σ_k x[t·s+k, c] W[k,c,o]          (Gaussian partial sum)
//	μ_a       = Σ_k μ_x W,   σ_a² = Σ_k σ_x² W²
//	y[t,o]    = b[o] + Σ_c z[c]·a[t,c,o]
//	E[y]      = b + Σ_c p·μ_a
//	Var[y]    = Σ_c ((μ_a² + σ_a²)p − μ_a²p²)
//
// The activation is then applied element-wise through the PWL moment
// machinery (eqs. 12–26) with the function given by act.
func (l *Conv1D) PropagateMoments(g GaussianSeq, act *piecewise.Func) (GaussianSeq, error) {
	if g.Mean.Channels != l.InCh {
		return GaussianSeq{}, fmt.Errorf("moments: input has %d channels, want %d: %w", g.Mean.Channels, l.InCh, ErrConfig)
	}
	outSteps, err := l.OutSteps(g.Mean.Steps)
	if err != nil {
		return GaussianSeq{}, err
	}
	p := l.KeepProb
	out := NewGaussianSeq(outSteps, l.OutCh)
	for t := 0; t < outSteps; t++ {
		base := t * l.Stride
		for o := 0; o < l.OutCh; o++ {
			mean := l.B[o]
			variance := 0.0
			for c := 0; c < l.InCh; c++ {
				var muA, varA float64
				for k := 0; k < l.Kernel; k++ {
					w := l.w(k, c, o)
					muA += g.Mean.At(base+k, c) * w
					varA += g.Var.At(base+k, c) * w * w
				}
				mean += p * muA
				variance += (muA*muA+varA)*p - muA*muA*p*p
			}
			if variance < 0 {
				variance = 0
			}
			m, v := core.ActivationMoments(mean, variance, act)
			out.Mean.Set(t, o, m)
			out.Var.Set(t, o, v)
		}
	}
	return out, nil
}

// GlobalAvgPoolMoments reduces a Gaussian sequence over time into a
// per-channel Gaussian vector: the mean of means, and the variance of the
// average under the (diagonal) independence approximation, Var/steps².
// Note the same caveat as everywhere in ApDeepSense: temporal correlations
// induced by the shared channel masks are dropped.
func GlobalAvgPoolMoments(g GaussianSeq) core.GaussianVec {
	out := core.NewGaussianVec(g.Mean.Channels)
	n := float64(g.Mean.Steps)
	for c := 0; c < g.Mean.Channels; c++ {
		var m, v float64
		for t := 0; t < g.Mean.Steps; t++ {
			m += g.Mean.At(t, c)
			v += g.Var.At(t, c)
		}
		out.Mean[c] = m / n
		out.Var[c] = v / (n * n)
	}
	return out
}

// GlobalAvgPool reduces a plain sequence over time.
func GlobalAvgPool(s *Seq) []float64 {
	out := make([]float64, s.Channels)
	n := float64(s.Steps)
	for c := 0; c < s.Channels; c++ {
		var m float64
		for t := 0; t < s.Steps; t++ {
			m += s.At(t, c)
		}
		out[c] = m / n
	}
	return out
}

// activationFunc resolves a layer's activation to its PWL representation,
// with the paper's default piece counts.
func activationFunc(act nn.Activation) (*piecewise.Func, error) {
	switch act {
	case nn.ActIdentity:
		return piecewise.Identity(), nil
	case nn.ActReLU:
		return piecewise.ReLU(), nil
	case nn.ActTanh:
		return piecewise.Tanh(7)
	case nn.ActSigmoid:
		return piecewise.Sigmoid(7)
	default:
		return nil, fmt.Errorf("activation %v: %w", act, ErrConfig)
	}
}
