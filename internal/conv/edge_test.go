package conv

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
)

// TestGlobalAvgPoolMomentsZeroSteps pins the zero-step pooling fix: an
// empty sequence pools to the per-channel zero point mass instead of 0/0
// NaNs poisoning the head.
func TestGlobalAvgPoolMomentsZeroSteps(t *testing.T) {
	g := NewGaussianSeq(0, 3)
	out := GlobalAvgPoolMoments(g)
	if len(out.Mean) != 3 || len(out.Var) != 3 {
		t.Fatalf("pooled dims = %d/%d, want 3/3", len(out.Mean), len(out.Var))
	}
	for c := 0; c < 3; c++ {
		if out.Mean[c] != 0 || out.Var[c] != 0 {
			t.Errorf("channel %d: (%v, %v), want zero point mass", c, out.Mean[c], out.Var[c])
		}
		if math.IsNaN(out.Mean[c]) || math.IsNaN(out.Var[c]) {
			t.Errorf("channel %d: NaN leaked from empty pool", c)
		}
	}
}

// TestConvMomentsStrideGreaterThanKernel pins window indexing when stride
// exceeds the kernel width (windows skip input steps entirely): the moment
// mean path must agree with the deterministic Forward pass on a point-mass
// input, and the windows must read from base t·stride, not t·kernel.
func TestConvMomentsStrideGreaterThanKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l, err := NewConv1D(2, 3, 2, 5, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := NewSeq(13, 3) // (13-2)/5+1 = 3 output steps at bases 0, 5, 10
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if want.Steps != 3 {
		t.Fatalf("out steps = %d, want 3", want.Steps)
	}
	g, err := l.PropagateMoments(DeterministicSeq(x), piecewise.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if g.Mean.Steps != 3 {
		t.Fatalf("moment steps = %d, want 3", g.Mean.Steps)
	}
	for t2 := 0; t2 < 3; t2++ {
		for o := 0; o < 2; o++ {
			if math.Abs(g.Mean.At(t2, o)-want.At(t2, o)) > 1e-12 {
				t.Errorf("mean[%d,%d] = %v, want %v", t2, o, g.Mean.At(t2, o), want.At(t2, o))
			}
			if g.Var.At(t2, o) != 0 {
				t.Errorf("var[%d,%d] = %v, want 0 for point mass without dropout", t2, o, g.Var.At(t2, o))
			}
		}
	}
}

// TestConvMomentsKeepOneVariance pins the KeepProb == 1 fast path: the
// generic dropout algebra (μ²+σ²)·p − μ²·p² rounds a small input variance
// away against a huge mean; with no mask the variance must pass through
// exactly.
func TestConvMomentsKeepOneVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := NewConv1D(1, 1, 1, 1, nn.ActIdentity, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	l.W[0] = 1
	l.B[0] = 0
	g := NewGaussianSeq(1, 1)
	g.Mean.Set(0, 0, 1e9)
	g.Var.Set(0, 0, 1.0)
	out, err := l.PropagateMoments(g, piecewise.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Var.At(0, 0); got != 1.0 {
		// The generic algebra gives (1e18+1)·1 − 1e18, which rounds to 0.
		t.Errorf("keep=1 variance = %v, want exactly 1 (fast path)", got)
	}
	if got := out.Mean.At(0, 0); got != 1e9 {
		t.Errorf("keep=1 mean = %v, want exactly 1e9", got)
	}
}

// TestConvMomentsShapeValidation pins the up-front Var/Mean shape checks.
func TestConvMomentsShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, err := NewConv1D(2, 2, 1, 1, nn.ActIdentity, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Variance sequence shorter than the mean sequence.
	g := GaussianSeq{Mean: NewSeq(5, 2), Var: NewSeq(3, 2)}
	if _, err := l.PropagateMoments(g, piecewise.Identity()); !errors.Is(err, ErrConfig) {
		t.Errorf("short var err = %v, want ErrConfig", err)
	}
	// Nil variance.
	g = GaussianSeq{Mean: NewSeq(5, 2)}
	if _, err := l.PropagateMoments(g, piecewise.Identity()); !errors.Is(err, ErrConfig) {
		t.Errorf("nil var err = %v, want ErrConfig", err)
	}
}

// TestConvKernelDispatch pins backend resolution through the conv stack:
// rectifier layers serve the exact closed form by default, an explicit PWL
// request overrides it, and exact on tanh is a construction error.
func TestConvKernelDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(act nn.Activation, mode nn.MomentMode) *Conv1D {
		l, err := NewConv1D(2, 2, 3, 1, act, 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		l.Moments = mode
		return l
	}
	head, err := nn.New(nn.Config{
		InputDim: 3, Hidden: []int{4}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet([]*Conv1D{mk(nn.ActReLU, nn.MomentsAuto), mk2(t, rng, 3, nn.ActLeakyReLU, nn.MomentsAuto), mk2(t, rng, 3, nn.ActTanh, nn.MomentsAuto)}, head)
	if err != nil {
		t.Fatal(err)
	}
	if !net.MomentsExact(0) || !net.MomentsExact(1) {
		t.Error("rectifier conv layers should default to exact moments")
	}
	if net.MomentsExact(2) {
		t.Error("tanh conv layer must serve PWL moments")
	}

	// Explicit PWL override on a rectifier layer.
	net, err = NewNet([]*Conv1D{mk(nn.ActReLU, nn.MomentsPWL), mk2(t, rng, 3, nn.ActReLU, nn.MomentsAuto), mk2(t, rng, 3, nn.ActIdentity, nn.MomentsAuto)}, head)
	if err != nil {
		t.Fatal(err)
	}
	if net.MomentsExact(0) {
		t.Error("explicit PWL request ignored on conv layer 0")
	}
	if !net.MomentsExact(1) {
		t.Error("auto rectifier layer 1 should be exact")
	}
	if net.MomentsExact(2) {
		t.Error("identity layer must use the (already exact) PWL kernel")
	}

	// Exact on tanh is a construction error.
	if _, err := NewNet([]*Conv1D{mk(nn.ActTanh, nn.MomentsExact), mk2(t, rng, 3, nn.ActReLU, nn.MomentsAuto), mk2(t, rng, 3, nn.ActIdentity, nn.MomentsAuto)}, head); err == nil {
		t.Error("exact moments on tanh conv layer should fail construction")
	}
}

// mk2 builds a conv layer with a given input channel count (for stacking).
func mk2(t *testing.T, rng *rand.Rand, inCh int, act nn.Activation, mode nn.MomentMode) *Conv1D {
	t.Helper()
	l, err := NewConv1D(2, inCh, 3, 1, act, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	l.Moments = mode
	return l
}

// TestConvPWLWrapperBitIdentical pins that the PWL-typed PropagateMoments
// wrapper and the kernel path agree bit-for-bit, so existing callers see no
// numeric change from the promotion.
func TestConvPWLWrapperBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l, err := NewConv1D(3, 4, 2, 2, nn.ActReLU, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGaussianSeq(11, 4)
	for i := range g.Mean.Data {
		g.Mean.Data[i] = rng.NormFloat64() * 2
		g.Var.Data[i] = rng.Float64()
	}
	f := piecewise.ReLU()
	a, err := l.PropagateMoments(g, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.PropagateMomentsKernel(g, core.NewActKernel(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mean.Data {
		if math.Float64bits(a.Mean.Data[i]) != math.Float64bits(b.Mean.Data[i]) ||
			math.Float64bits(a.Var.Data[i]) != math.Float64bits(b.Var.Data[i]) {
			t.Fatalf("elem %d: wrapper (%v,%v) != kernel (%v,%v)", i,
				a.Mean.Data[i], a.Var.Data[i], b.Mean.Data[i], b.Var.Data[i])
		}
	}
}

// TestConvNetBatchBitIdentical pins Net.PropagateBatch against sequential
// PropagateMoments calls.
func TestConvNetBatchBitIdentical(t *testing.T) {
	net := buildTestNet(t, 0.8, 13)
	rng := rand.New(rand.NewSource(17))
	xs := make([]*Seq, 4)
	for i := range xs {
		x := NewSeq(12, net.Convs()[0].InCh)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	batch, err := net.PropagateBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		g, err := net.PropagateMoments(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range g.Mean {
			if math.Float64bits(g.Mean[j]) != math.Float64bits(batch[i].Mean[j]) ||
				math.Float64bits(g.Var[j]) != math.Float64bits(batch[i].Var[j]) {
				t.Fatalf("sample %d out %d: batch differs from sequential", i, j)
			}
		}
	}
}
