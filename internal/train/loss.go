// Package train implements from-scratch gradient training for the
// fully-connected dropout networks in internal/nn: hand-derived
// backpropagation, SGD and Adam optimizers, and the loss functions the paper
// and its baselines need (mean-squared error and softmax cross-entropy for
// the dropout networks, heteroscedastic Gaussian NLL for RDeepSense).
package train

import (
	"errors"
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid training configurations.
var ErrConfig = errors.New("train: invalid configuration")

// Sample is one supervised example. For classification, Y is a one-hot
// vector; for regression, the target vector.
type Sample struct {
	X tensor.Vector
	Y tensor.Vector
}

// Loss maps a prediction and target to a scalar loss and its gradient with
// respect to the prediction.
type Loss interface {
	// Name identifies the loss in logs.
	Name() string
	// Eval returns the loss value and dLoss/dPred. grad must have the
	// prediction's length.
	Eval(pred, target tensor.Vector, grad tensor.Vector) (float64, error)
}

// MSE is the mean squared error over output dimensions, the regression
// training loss used for the paper's dropout networks (§II-B: dropout nets
// trained with mean square error are variational deep Gaussian processes).
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss.
func (MSE) Eval(pred, target, grad tensor.Vector) (float64, error) {
	if len(pred) != len(target) || len(grad) != len(pred) {
		return 0, fmt.Errorf("mse: dims pred=%d target=%d grad=%d: %w", len(pred), len(target), len(grad), ErrConfig)
	}
	inv := 1.0 / float64(len(pred))
	var loss float64
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d * inv
		grad[i] = 2 * d * inv
	}
	return loss, nil
}

// SoftmaxCrossEntropy fuses a softmax over the network's identity-activation
// logits with the cross-entropy against a one-hot target. The fused gradient
// is softmax(pred) − target.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Eval implements Loss.
func (SoftmaxCrossEntropy) Eval(pred, target, grad tensor.Vector) (float64, error) {
	if len(pred) != len(target) || len(grad) != len(pred) {
		return 0, fmt.Errorf("xent: dims pred=%d target=%d grad=%d: %w", len(pred), len(target), len(grad), ErrConfig)
	}
	p := core.Softmax(pred)
	var loss float64
	for i := range p {
		if target[i] > 0 {
			loss -= target[i] * math.Log(math.Max(p[i], 1e-300))
		}
		grad[i] = p[i] - target[i]
	}
	return loss, nil
}

// HeteroscedasticNLL is the RDeepSense regression head loss: the network
// outputs 2·D values — D means followed by D log-variances — and the loss is
// the Gaussian negative log-likelihood, optionally blended with MSE on the
// mean (weight Alpha toward NLL, 1−Alpha toward MSE), which is the
// bias-variance tuning knob of the RDeepSense paper.
type HeteroscedasticNLL struct {
	// Alpha in [0, 1] weights NLL vs MSE. 1 = pure NLL.
	Alpha float64
	// LogVarMin and LogVarMax clamp the predicted log-variance for
	// stability. Zero values default to [-8, 8].
	LogVarMin, LogVarMax float64
}

// Name implements Loss.
func (h HeteroscedasticNLL) Name() string { return "hetero-nll" }

// Eval implements Loss.
func (h HeteroscedasticNLL) Eval(pred, target, grad tensor.Vector) (float64, error) {
	d := len(target)
	if len(pred) != 2*d || len(grad) != len(pred) {
		return 0, fmt.Errorf("hetero-nll: pred=%d, want 2*target=%d: %w", len(pred), 2*d, ErrConfig)
	}
	lo, hi := h.LogVarMin, h.LogVarMax
	if lo == 0 && hi == 0 {
		lo, hi = -8, 8
	}
	alpha := h.Alpha
	inv := 1.0 / float64(d)
	var loss float64
	for i := 0; i < d; i++ {
		mu := pred[i]
		lv := pred[d+i]
		clamped := math.Min(math.Max(lv, lo), hi)
		diff := mu - target[i]
		prec := math.Exp(-clamped)

		nll := 0.5 * (clamped + diff*diff*prec)
		mse := diff * diff
		loss += (alpha*nll + (1-alpha)*mse) * inv

		gradMu := alpha*diff*prec + (1-alpha)*2*diff
		gradLv := 0.0
		if lv > lo && lv < hi { // clamp is flat outside
			gradLv = alpha * 0.5 * (1 - diff*diff*prec)
		}
		grad[i] = gradMu * inv
		grad[d+i] = gradLv * inv
	}
	return loss, nil
}
