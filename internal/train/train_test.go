package train

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestMSELoss(t *testing.T) {
	grad := tensor.NewVector(2)
	lv, err := MSE{}.Eval(tensor.Vector{1, 2}, tensor.Vector{0, 0}, grad)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lv-2.5) > 1e-12 { // (1+4)/2
		t.Errorf("MSE = %v, want 2.5", lv)
	}
	if !grad.Equal(tensor.Vector{1, 2}, 1e-12) { // 2*(p-t)/2
		t.Errorf("grad = %v, want [1 2]", grad)
	}
	if _, err := (MSE{}).Eval(tensor.Vector{1}, tensor.Vector{1, 2}, grad); !errors.Is(err, ErrConfig) {
		t.Errorf("dim err = %v", err)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	grad := tensor.NewVector(3)
	pred := tensor.Vector{2, 1, 0}
	target := tensor.Vector{1, 0, 0}
	lv, err := SoftmaxCrossEntropy{}.Eval(pred, target, grad)
	if err != nil {
		t.Fatal(err)
	}
	if lv <= 0 {
		t.Errorf("xent = %v, want > 0", lv)
	}
	// Gradient sums to zero (softmax minus one-hot).
	if math.Abs(grad.Sum()) > 1e-12 {
		t.Errorf("grad sums to %v", grad.Sum())
	}
	// Perfect prediction has near-zero loss.
	lv2, _ := SoftmaxCrossEntropy{}.Eval(tensor.Vector{100, 0, 0}, target, grad)
	if lv2 > 1e-9 {
		t.Errorf("confident correct xent = %v", lv2)
	}
}

func TestHeteroscedasticNLL(t *testing.T) {
	h := HeteroscedasticNLL{Alpha: 1}
	grad := tensor.NewVector(4)
	// mu = target, logvar = 0: loss = 0.5*(0 + 0) = 0 per dim.
	lv, err := h.Eval(tensor.Vector{1, 2, 0, 0}, tensor.Vector{1, 2}, grad)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lv) > 1e-12 {
		t.Errorf("exact-fit NLL = %v, want 0", lv)
	}
	// Under-confident: residual 1, logvar 0 -> gradient pushes logvar down?
	// d/dlv [0.5(lv + r² e^{-lv})] = 0.5(1 - r² e^{-lv}); r=1 -> 0. Optimum.
	_, err = h.Eval(tensor.Vector{0, 0, 0, 0}, tensor.Vector{1, 1}, grad)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(grad[2]) > 1e-12 || math.Abs(grad[3]) > 1e-12 {
		t.Errorf("logvar grad at optimum = %v, want 0", grad[2:])
	}
	if _, err := h.Eval(tensor.Vector{1, 2, 3}, tensor.Vector{1}, grad); !errors.Is(err, ErrConfig) {
		t.Errorf("dim err = %v", err)
	}
}

// TestGradientCheck verifies the analytic backprop gradients against central
// finite differences on a dropout-free network, for all three losses.
func TestGradientCheck(t *testing.T) {
	cases := []struct {
		name   string
		act    nn.Activation
		outDim int
		loss   Loss
		target tensor.Vector
	}{
		{"mse-tanh", nn.ActTanh, 2, MSE{}, tensor.Vector{0.3, -0.7}},
		{"mse-relu", nn.ActReLU, 2, MSE{}, tensor.Vector{0.3, -0.7}},
		{"xent-relu", nn.ActReLU, 3, SoftmaxCrossEntropy{}, tensor.Vector{0, 1, 0}},
		{"hetero-sigmoid", nn.ActSigmoid, 4, HeteroscedasticNLL{Alpha: 0.8}, tensor.Vector{0.5, -0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net, err := nn.New(nn.Config{
				InputDim: 3, Hidden: []int{5}, OutputDim: c.outDim,
				Activation: c.act, OutputActivation: nn.ActIdentity,
				KeepProb: 1, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := Sample{X: tensor.Vector{0.5, -1, 0.8}, Y: c.target}
			ws := newWorkspace(net)
			ws.zeroGrads()
			rng := rand.New(rand.NewSource(1))
			if _, err := forwardBackward(net, s, c.loss, ws, rng); err != nil {
				t.Fatal(err)
			}

			lossAt := func() float64 {
				pred, err := net.Forward(s.X)
				if err != nil {
					t.Fatal(err)
				}
				g := tensor.NewVector(c.outDim)
				lv, err := c.loss.Eval(pred, s.Y, g)
				if err != nil {
					t.Fatal(err)
				}
				return lv
			}

			const h = 1e-6
			for li, l := range net.Layers() {
				for idx := range l.W.Data {
					orig := l.W.Data[idx]
					l.W.Data[idx] = orig + h
					up := lossAt()
					l.W.Data[idx] = orig - h
					down := lossAt()
					l.W.Data[idx] = orig
					num := (up - down) / (2 * h)
					got := ws.gradW[li].Data[idx]
					if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
						t.Fatalf("layer %d W[%d]: analytic %v vs numeric %v", li, idx, got, num)
					}
				}
				for idx := range l.B {
					orig := l.B[idx]
					l.B[idx] = orig + h
					up := lossAt()
					l.B[idx] = orig - h
					down := lossAt()
					l.B[idx] = orig
					num := (up - down) / (2 * h)
					got := ws.gradB[li][idx]
					if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
						t.Fatalf("layer %d B[%d]: analytic %v vs numeric %v", li, idx, got, num)
					}
				}
			}
		})
	}
}

func makeRegressionData(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x := rng.Float64()*4 - 2
		y := math.Sin(x)
		out[i] = Sample{X: tensor.Vector{x}, Y: tensor.Vector{y}}
	}
	return out
}

func TestFitRegressionConverges(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 1, Hidden: []int{32, 32}, OutputDim: 1,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 0.95, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainSet := makeRegressionData(600, 1)
	valSet := makeRegressionData(100, 2)
	hist, err := Fit(net, trainSet, valSet, Config{
		Epochs: 40, BatchSize: 32, Seed: 7,
		Loss: MSE{}, Optimizer: NewAdam(0.01),
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	final, err := EvalLoss(net, valSet, MSE{})
	if err != nil {
		t.Fatal(err)
	}
	if final > 0.02 {
		t.Errorf("sin regression val MSE = %v, want < 0.02 (history %v)", final, hist.ValLoss)
	}
	if hist.TrainLoss[len(hist.TrainLoss)-1] >= hist.TrainLoss[0] {
		t.Error("training loss did not decrease")
	}
}

func TestFitClassificationConverges(t *testing.T) {
	// Two Gaussian blobs, linearly separable.
	rng := rand.New(rand.NewSource(5))
	var data []Sample
	for i := 0; i < 400; i++ {
		cls := i % 2
		cx := float64(cls*4 - 2)
		x := tensor.Vector{cx + rng.NormFloat64()*0.7, rng.NormFloat64()}
		y := tensor.Vector{0, 0}
		y[cls] = 1
		data = append(data, Sample{X: x, Y: y})
	}
	net, err := nn.New(nn.Config{
		InputDim: 2, Hidden: []int{16}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(net, data, nil, Config{
		Epochs: 30, BatchSize: 16, Seed: 2,
		Loss: SoftmaxCrossEntropy{}, Optimizer: NewAdam(0.01),
	}); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, s := range data {
		pred, err := net.Forward(s.X)
		if err != nil {
			t.Fatal(err)
		}
		_, pi := pred.Max()
		_, ti := s.Y.Max()
		if pi == ti {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(data)); acc < 0.95 {
		t.Errorf("blob accuracy = %v, want >= 0.95", acc)
	}
}

func TestFitHeteroscedasticLearnsVariance(t *testing.T) {
	// y = noise with x-dependent scale; the model must learn logvar ≈ log(x²).
	rng := rand.New(rand.NewSource(11))
	var data []Sample
	for i := 0; i < 1500; i++ {
		x := 0.5 + rng.Float64()*2 // std in [0.5, 2.5]
		y := x * rng.NormFloat64()
		data = append(data, Sample{X: tensor.Vector{x}, Y: tensor.Vector{y}})
	}
	net, err := nn.New(nn.Config{
		InputDim: 1, Hidden: []int{24, 24}, OutputDim: 2, // mean + logvar
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(net, data, nil, Config{
		Epochs: 60, BatchSize: 32, Seed: 5,
		Loss: HeteroscedasticNLL{Alpha: 1}, Optimizer: NewAdam(0.01),
	}); err != nil {
		t.Fatal(err)
	}
	// Predicted std should grow with x and be in the right ballpark.
	predStd := func(x float64) float64 {
		out, err := net.Forward(tensor.Vector{x})
		if err != nil {
			t.Fatal(err)
		}
		return math.Exp(out[1] / 2)
	}
	sLo, sHi := predStd(0.7), predStd(2.2)
	if sHi <= sLo {
		t.Errorf("predicted std not increasing: std(0.7)=%v std(2.2)=%v", sLo, sHi)
	}
	if sLo < 0.3 || sLo > 1.4 {
		t.Errorf("std(0.7) = %v, want ≈ 0.7", sLo)
	}
	if sHi < 1.2 || sHi > 3.5 {
		t.Errorf("std(2.2) = %v, want ≈ 2.2", sHi)
	}
}

func TestFitEarlyStoppingRestoresBest(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 1, Hidden: []int{8}, OutputDim: 1,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainSet := makeRegressionData(50, 1)
	valSet := makeRegressionData(30, 2)
	hist, err := Fit(net, trainSet, valSet, Config{
		Epochs: 100, BatchSize: 10, Seed: 3,
		Loss: MSE{}, Optimizer: NewAdam(0.05), // big LR to force oscillation
		EarlyStopPatience: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.ValLoss) >= 100 {
		t.Log("early stopping never triggered (acceptable but unexpected)")
	}
	// The network's current val loss must equal the best recorded val loss.
	best := math.Inf(1)
	for _, v := range hist.ValLoss {
		if v < best {
			best = v
		}
	}
	cur, err := EvalLoss(net, valSet, MSE{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cur-best) > 1e-9 {
		t.Errorf("restored val loss %v != best %v", cur, best)
	}
	if hist.BestEpoch >= len(hist.ValLoss) {
		t.Errorf("BestEpoch %d out of range %d", hist.BestEpoch, len(hist.ValLoss))
	}
}

func TestFitValidation(t *testing.T) {
	net, _ := nn.New(nn.Config{
		InputDim: 1, Hidden: nil, OutputDim: 1,
		Activation: nn.ActIdentity, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	data := makeRegressionData(10, 1)
	bad := []Config{
		{Epochs: 0, BatchSize: 2, Loss: MSE{}, Optimizer: NewAdam(0.01)},
		{Epochs: 1, BatchSize: 0, Loss: MSE{}, Optimizer: NewAdam(0.01)},
		{Epochs: 1, BatchSize: 100, Loss: MSE{}, Optimizer: NewAdam(0.01)},
		{Epochs: 1, BatchSize: 2, Loss: nil, Optimizer: NewAdam(0.01)},
		{Epochs: 1, BatchSize: 2, Loss: MSE{}, Optimizer: nil},
		{Epochs: 1, BatchSize: 2, Loss: MSE{}, Optimizer: NewAdam(0.01), WeightDecay: -1},
		{Epochs: 1, BatchSize: 2, Loss: MSE{}, Optimizer: NewAdam(0.01), EarlyStopPatience: 2},
	}
	for i, cfg := range bad {
		if _, err := Fit(net, data, nil, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
	// Mismatched sample dims.
	badData := []Sample{{X: tensor.Vector{1, 2}, Y: tensor.Vector{1}}}
	if _, err := Fit(net, badData, nil, Config{Epochs: 1, BatchSize: 1, Loss: MSE{}, Optimizer: NewAdam(0.01)}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad sample err = %v, want ErrConfig", err)
	}
}

func TestEvalLossEmpty(t *testing.T) {
	net, _ := nn.New(nn.Config{
		InputDim: 1, Hidden: nil, OutputDim: 1,
		Activation: nn.ActIdentity, OutputActivation: nn.ActIdentity,
		KeepProb: 1, Seed: 1,
	})
	if _, err := EvalLoss(net, nil, MSE{}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty err = %v, want ErrConfig", err)
	}
}

func TestOptimizersReduceQuadratic(t *testing.T) {
	// Minimize f(w) = Σ w², gradient 2w, from w = 1.
	for _, opt := range []Optimizer{NewSGD(0.1, 0), NewSGD(0.05, 0.9), NewAdam(0.1)} {
		w := []float64{1, -1, 2}
		g := make([]float64, 3)
		for step := 0; step < 200; step++ {
			opt.BeginStep()
			for i := range w {
				g[i] = 2 * w[i]
			}
			opt.Update(0, w, g)
		}
		for i, wi := range w {
			if math.Abs(wi) > 0.01 {
				t.Errorf("%s: w[%d] = %v after 200 steps", opt.Name(), i, wi)
			}
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	mk := func(decay float64) float64 {
		net, err := nn.New(nn.Config{
			InputDim: 1, Hidden: []int{16}, OutputDim: 1,
			Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
			KeepProb: 1, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := makeRegressionData(200, 4)
		if _, err := Fit(net, data, nil, Config{
			Epochs: 20, BatchSize: 20, Seed: 1,
			Loss: MSE{}, Optimizer: NewSGD(0.05, 0), WeightDecay: decay,
		}); err != nil {
			t.Fatal(err)
		}
		var norm float64
		for _, l := range net.Layers() {
			for _, w := range l.W.Data {
				norm += w * w
			}
		}
		return norm
	}
	if heavy, light := mk(0.05), mk(0); heavy >= light {
		t.Errorf("weight decay did not shrink weights: %v vs %v", heavy, light)
	}
}

func TestClipNormBounded(t *testing.T) {
	// With an absurd learning rate and no clipping, weights blow up; with
	// clipping they stay finite.
	mk := func(clip float64) bool {
		net, err := nn.New(nn.Config{
			InputDim: 1, Hidden: []int{8}, OutputDim: 1,
			Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
			KeepProb: 1, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := makeRegressionData(100, 3)
		_, err = Fit(net, data, nil, Config{
			Epochs: 10, BatchSize: 10, Seed: 1,
			Loss: MSE{}, Optimizer: NewSGD(5, 0), ClipNorm: clip,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range net.Layers() {
			if l.W.HasNaN() {
				return false
			}
		}
		return true
	}
	if !mk(0.5) {
		t.Error("clipped training produced NaN")
	}
}
