package train

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Config controls Fit.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size (gradients averaged per batch).
	BatchSize int
	// Seed drives shuffling and dropout masks.
	Seed int64
	// Loss is the training objective.
	Loss Loss
	// Optimizer applies the parameter updates.
	Optimizer Optimizer
	// WeightDecay is the L2 regularization coefficient applied to weights
	// (not biases). With dropout training this corresponds to the Gaussian
	// prior length-scale of the variational interpretation (Gal &
	// Ghahramani).
	WeightDecay float64
	// ClipNorm clips the global gradient norm per batch; 0 disables.
	ClipNorm float64
	// EarlyStopPatience stops after this many epochs without validation
	// improvement and restores the best weights; 0 disables. Requires a
	// non-empty validation set.
	EarlyStopPatience int
	// Logf, when non-nil, receives one line per epoch.
	Logf func(format string, args ...any)
}

// History records per-epoch losses.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	// BestEpoch is the epoch (0-based) whose weights the network holds
	// after early stopping, or the last epoch otherwise.
	BestEpoch int
}

func (c *Config) validate(nTrain int) error {
	if c.Epochs < 1 {
		return fmt.Errorf("epochs %d: %w", c.Epochs, ErrConfig)
	}
	if c.BatchSize < 1 || c.BatchSize > nTrain {
		return fmt.Errorf("batch size %d with %d samples: %w", c.BatchSize, nTrain, ErrConfig)
	}
	if c.Loss == nil {
		return fmt.Errorf("nil loss: %w", ErrConfig)
	}
	if c.Optimizer == nil {
		return fmt.Errorf("nil optimizer: %w", ErrConfig)
	}
	if c.WeightDecay < 0 || c.ClipNorm < 0 {
		return fmt.Errorf("negative regularization: %w", ErrConfig)
	}
	return nil
}

// workspace holds per-network scratch buffers reused across samples.
type workspace struct {
	masked [][]float64 // per layer: input after dropout mask
	mask   [][]bool    // per layer: dropout mask (true = kept)
	pre    [][]float64 // per layer: pre-activation y
	act    [][]float64 // per layer: post-activation output
	delta  [][]float64 // per layer: dLoss/dPre
	gradW  []*tensor.Matrix
	gradB  []tensor.Vector
	lossG  tensor.Vector
}

func newWorkspace(net *nn.Network) *workspace {
	layers := net.Layers()
	ws := &workspace{
		masked: make([][]float64, len(layers)),
		mask:   make([][]bool, len(layers)),
		pre:    make([][]float64, len(layers)),
		act:    make([][]float64, len(layers)),
		delta:  make([][]float64, len(layers)),
		gradW:  make([]*tensor.Matrix, len(layers)),
		gradB:  make([]tensor.Vector, len(layers)),
		lossG:  tensor.NewVector(net.OutputDim()),
	}
	for i, l := range layers {
		ws.masked[i] = make([]float64, l.InDim())
		ws.mask[i] = make([]bool, l.InDim())
		ws.pre[i] = make([]float64, l.OutDim())
		ws.act[i] = make([]float64, l.OutDim())
		ws.delta[i] = make([]float64, l.OutDim())
		ws.gradW[i] = tensor.NewMatrix(l.W.Rows, l.W.Cols)
		ws.gradB[i] = tensor.NewVector(len(l.B))
	}
	return ws
}

func (ws *workspace) zeroGrads() {
	for i := range ws.gradW {
		ws.gradW[i].Fill(0)
		ws.gradB[i].Fill(0)
	}
}

// forwardBackward accumulates one sample's gradients into the workspace and
// returns the sample loss.
func forwardBackward(net *nn.Network, s Sample, loss Loss, ws *workspace, rng *rand.Rand) (float64, error) {
	layers := net.Layers()

	// Forward with sampled dropout masks, recording intermediates.
	input := []float64(s.X)
	for li, l := range layers {
		masked := ws.masked[li]
		mask := ws.mask[li]
		copy(masked, input)
		for i := range mask {
			mask[i] = true
		}
		if l.KeepProb < 1 {
			for i := range masked {
				if rng.Float64() >= l.KeepProb {
					masked[i] = 0
					mask[i] = false
				}
			}
		}
		pre := ws.pre[li]
		l.W.MulVecInto(masked, pre)
		out := ws.act[li]
		for j := range pre {
			pre[j] += l.B[j]
			out[j] = l.Act.Apply(pre[j])
		}
		input = out
	}

	lv, err := loss.Eval(tensor.Vector(input), s.Y, ws.lossG)
	if err != nil {
		return 0, err
	}

	// Backward.
	grad := []float64(ws.lossG)
	for li := len(layers) - 1; li >= 0; li-- {
		l := layers[li]
		delta := ws.delta[li]
		pre := ws.pre[li]
		for j := range delta {
			delta[j] = grad[j] * l.Act.Derivative(pre[j])
		}
		// Weight and bias gradients.
		masked := ws.masked[li]
		gw := ws.gradW[li]
		for i, xi := range masked {
			if xi == 0 {
				continue
			}
			row := gw.Data[i*gw.Cols : (i+1)*gw.Cols]
			for j, dj := range delta {
				row[j] += xi * dj
			}
		}
		gb := ws.gradB[li]
		for j, dj := range delta {
			gb[j] += dj
		}
		// Input gradient for the next (lower) layer: (W delta) masked.
		if li > 0 {
			next := ws.act[li-1] // reuse as scratch: act[li-1] no longer needed
			w := l.W
			mask := ws.mask[li]
			for i := range next {
				if !mask[i] {
					next[i] = 0
					continue
				}
				row := w.Data[i*w.Cols : (i+1)*w.Cols]
				var sAcc float64
				for j, dj := range delta {
					sAcc += row[j] * dj
				}
				next[i] = sAcc
			}
			grad = next
		}
	}
	return lv, nil
}

// Fit trains net in place on trainSet, optionally early-stopping on valSet,
// and returns the loss history. The network's dropout keep probabilities are
// respected during training (masks sampled per example), exactly the setting
// ApDeepSense requires of its pre-trained models.
func Fit(net *nn.Network, trainSet, valSet []Sample, cfg Config) (*History, error) {
	if err := cfg.validate(len(trainSet)); err != nil {
		return nil, err
	}
	if cfg.EarlyStopPatience > 0 && len(valSet) == 0 {
		return nil, fmt.Errorf("early stopping needs a validation set: %w", ErrConfig)
	}
	for i, s := range trainSet {
		if len(s.X) != net.InputDim() || len(s.Y) == 0 {
			return nil, fmt.Errorf("sample %d: dims X=%d Y=%d: %w", i, len(s.X), len(s.Y), ErrConfig)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ws := newWorkspace(net)
	layers := net.Layers()
	hist := &History{}

	perm := make([]int, len(trainSet))
	for i := range perm {
		perm[i] = i
	}

	bestVal := math.Inf(1)
	var bestNet *nn.Network
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			ws.zeroGrads()
			for _, idx := range perm[start:end] {
				lv, err := forwardBackward(net, trainSet[idx], cfg.Loss, ws, rng)
				if err != nil {
					return nil, fmt.Errorf("train: sample %d: %w", idx, err)
				}
				epochLoss += lv
			}
			scale := 1.0 / float64(end-start)
			applyUpdate(layers, ws, cfg, scale)
		}
		epochLoss /= float64(len(perm))
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		if len(valSet) > 0 {
			vl, err := EvalLoss(net, valSet, cfg.Loss)
			if err != nil {
				return nil, err
			}
			hist.ValLoss = append(hist.ValLoss, vl)
			if cfg.Logf != nil {
				cfg.Logf("epoch %d: train %.5f val %.5f", epoch, epochLoss, vl)
			}
			if vl < bestVal {
				bestVal = vl
				hist.BestEpoch = epoch
				sinceBest = 0
				if cfg.EarlyStopPatience > 0 {
					bestNet = net.Clone()
				}
			} else if cfg.EarlyStopPatience > 0 {
				sinceBest++
				if sinceBest >= cfg.EarlyStopPatience {
					break
				}
			}
		} else {
			hist.BestEpoch = epoch
			if cfg.Logf != nil {
				cfg.Logf("epoch %d: train %.5f", epoch, epochLoss)
			}
		}
	}

	if bestNet != nil {
		// Restore best-validation weights in place.
		cur := net.Layers()
		for i, l := range bestNet.Layers() {
			copy(cur[i].W.Data, l.W.Data)
			copy(cur[i].B, l.B)
		}
	}
	return hist, nil
}

// applyUpdate folds regularization into the batch gradients and steps the
// optimizer. scale is 1/batchSize.
func applyUpdate(layers []*nn.Layer, ws *workspace, cfg Config, scale float64) {
	// Scale gradients to the batch mean and add weight decay.
	for li, l := range layers {
		gw := ws.gradW[li]
		for i := range gw.Data {
			gw.Data[i] = gw.Data[i]*scale + cfg.WeightDecay*l.W.Data[i]
		}
		gb := ws.gradB[li]
		for i := range gb {
			gb[i] *= scale
		}
	}
	if cfg.ClipNorm > 0 {
		var norm2 float64
		for li := range layers {
			for _, g := range ws.gradW[li].Data {
				norm2 += g * g
			}
			for _, g := range ws.gradB[li] {
				norm2 += g * g
			}
		}
		if norm := math.Sqrt(norm2); norm > cfg.ClipNorm {
			f := cfg.ClipNorm / norm
			for li := range layers {
				for i := range ws.gradW[li].Data {
					ws.gradW[li].Data[i] *= f
				}
				for i := range ws.gradB[li] {
					ws.gradB[li][i] *= f
				}
			}
		}
	}
	cfg.Optimizer.BeginStep()
	for li, l := range layers {
		cfg.Optimizer.Update(2*li, l.W.Data, ws.gradW[li].Data)
		cfg.Optimizer.Update(2*li+1, l.B, ws.gradB[li])
	}
}

// EvalLoss computes the mean loss of the deterministic (weight-scaled)
// network over a dataset.
func EvalLoss(net *nn.Network, set []Sample, loss Loss) (float64, error) {
	if len(set) == 0 {
		return 0, fmt.Errorf("empty evaluation set: %w", ErrConfig)
	}
	grad := tensor.NewVector(net.OutputDim())
	var total float64
	for i, s := range set {
		pred, err := net.Forward(s.X)
		if err != nil {
			return 0, fmt.Errorf("eval sample %d: %w", i, err)
		}
		lv, err := loss.Eval(pred, s.Y, grad)
		if err != nil {
			return 0, fmt.Errorf("eval sample %d: %w", i, err)
		}
		total += lv
	}
	return total / float64(len(set)), nil
}
