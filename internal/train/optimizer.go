package train

import (
	"fmt"
	"math"
)

// Optimizer updates parameter slices from gradient slices. Parameters are
// addressed by a stable slot index so stateful optimizers (momentum, Adam)
// can keep per-parameter state.
type Optimizer interface {
	// Name identifies the optimizer in logs.
	Name() string
	// BeginStep marks the start of one optimization step (one minibatch).
	BeginStep()
	// Update applies the gradient to the parameter slice in place. param and
	// grad must have equal length, constant per slot across calls.
	Update(slot int, param, grad []float64)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	lr       float64
	momentum float64
	vel      map[int][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum
// coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum, vel: make(map[int][]float64)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("sgd(lr=%g,m=%g)", s.lr, s.momentum) }

// BeginStep implements Optimizer.
func (s *SGD) BeginStep() {}

// Update implements Optimizer.
func (s *SGD) Update(slot int, param, grad []float64) {
	if s.momentum == 0 {
		for i := range param {
			param[i] -= s.lr * grad[i]
		}
		return
	}
	v, ok := s.vel[slot]
	if !ok {
		v = make([]float64, len(param))
		s.vel[slot] = v
	}
	for i := range param {
		v[i] = s.momentum*v[i] - s.lr*grad[i]
		param[i] += v[i]
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  map[int][]float64
}

// NewAdam returns an Adam optimizer with standard hyper-parameters
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make(map[int][]float64), v: make(map[int][]float64),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("adam(lr=%g)", a.lr) }

// BeginStep implements Optimizer.
func (a *Adam) BeginStep() { a.t++ }

// Update implements Optimizer.
func (a *Adam) Update(slot int, param, grad []float64) {
	m, ok := a.m[slot]
	if !ok {
		m = make([]float64, len(param))
		a.m[slot] = m
	}
	v, ok := a.v[slot]
	if !ok {
		v = make([]float64, len(param))
		a.v[slot] = v
	}
	t := a.t
	if t < 1 {
		t = 1
	}
	c1 := 1 - math.Pow(a.beta1, float64(t))
	c2 := 1 - math.Pow(a.beta2, float64(t))
	for i := range param {
		g := grad[i]
		m[i] = a.beta1*m[i] + (1-a.beta1)*g
		v[i] = a.beta2*v[i] + (1-a.beta2)*g*g
		mHat := m[i] / c1
		vHat := v[i] / c2
		param[i] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
	}
}
