// Package report renders experiment results as aligned ASCII tables, CSV
// files, and simple text figures (bar charts and scatter plots), which is how
// this reproduction regenerates the paper's Tables I–IV and Figures 1–9 in a
// terminal-first workflow.
package report

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrEmpty is returned (wrapped) when rendering an empty artifact.
var ErrEmpty = errors.New("report: empty artifact")

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with aligned columns.
func (t *Table) Render() (string, error) {
	if len(t.Headers) == 0 {
		return "", fmt.Errorf("table %q has no headers: %w", t.Title, ErrEmpty)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return "", fmt.Errorf("table %q: row has %d cells, want %d: %w", t.Title, len(row), len(t.Headers), ErrEmpty)
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String(), nil
}

// CSV renders the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() (string, error) {
	if len(t.Headers) == 0 {
		return "", fmt.Errorf("table %q has no headers: %w", t.Title, ErrEmpty)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return "", fmt.Errorf("table %q: ragged row: %w", t.Title, ErrEmpty)
		}
		writeRow(row)
	}
	return b.String(), nil
}

// BarChart is a labeled horizontal bar chart (the shape of the paper's
// Figures 2–5).
type BarChart struct {
	Title string
	Unit  string
	Bars  []Bar
}

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// Render draws the chart with bars scaled to width characters.
func (c *BarChart) Render(width int) (string, error) {
	if len(c.Bars) == 0 {
		return "", fmt.Errorf("bar chart %q: %w", c.Title, ErrEmpty)
	}
	if width < 10 {
		width = 50
	}
	var maxV float64
	labelW := 0
	for _, bar := range c.Bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, bar := range c.Bars {
		n := 0
		if maxV > 0 {
			n = int(math.Round(float64(width) * bar.Value / maxV))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %.2f %s\n", labelW, bar.Label, width, strings.Repeat("#", n), bar.Value, c.Unit)
	}
	return b.String(), nil
}

// Series is one named sequence of (X, Y) points in a scatter plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Scatter is a text scatter plot (the shape of the paper's Figures 6–9
// energy-vs-NLL tradeoff plots).
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render draws the scatter plot on a w×h character canvas with axis ranges
// fitted to the data.
func (s *Scatter) Render(w, h int) (string, error) {
	if len(s.Series) == 0 {
		return "", fmt.Errorf("scatter %q: %w", s.Title, ErrEmpty)
	}
	if w < 20 {
		w = 60
	}
	if h < 8 {
		h = 16
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	anyPoint := false
	for _, sr := range s.Series {
		if len(sr.X) != len(sr.Y) {
			return "", fmt.Errorf("scatter %q: series %q ragged: %w", s.Title, sr.Name, ErrEmpty)
		}
		for i := range sr.X {
			anyPoint = true
			xMin = math.Min(xMin, sr.X[i])
			xMax = math.Max(xMax, sr.X[i])
			yMin = math.Min(yMin, sr.Y[i])
			yMax = math.Max(yMax, sr.Y[i])
		}
	}
	if !anyPoint {
		return "", fmt.Errorf("scatter %q has no points: %w", s.Title, ErrEmpty)
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, sr := range s.Series {
		marker := sr.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range sr.X {
			cx := int(math.Round(float64(w-1) * (sr.X[i] - xMin) / (xMax - xMin)))
			cy := int(math.Round(float64(h-1) * (sr.Y[i] - yMin) / (yMax - yMin)))
			row := h - 1 - cy
			grid[row][cx] = marker
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	fmt.Fprintf(&b, "%s (vertical, %.3g..%.3g) vs %s (horizontal, %.3g..%.3g)\n",
		s.YLabel, yMin, yMax, s.XLabel, xMin, xMax)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", w))
	for _, sr := range s.Series {
		marker := sr.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "  %c = %s\n", marker, sr.Name)
	}
	return b.String(), nil
}
