package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"a", "long-header"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Notes = append(tbl.Notes, "a note")
	out, err := tbl.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T\n", "long-header", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: each line has the header width.
	lines := strings.Split(out, "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator misaligned: %q vs %q", lines[1], lines[2])
	}
}

func TestTableRenderErrors(t *testing.T) {
	empty := &Table{}
	if _, err := empty.Render(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	ragged := &Table{Headers: []string{"a", "b"}}
	ragged.AddRow("only-one")
	if _, err := ragged.Render(); !errors.Is(err, ErrEmpty) {
		t.Errorf("ragged err = %v", err)
	}
	if _, err := ragged.CSV(); !errors.Is(err, ErrEmpty) {
		t.Errorf("ragged csv err = %v", err)
	}
	if _, err := empty.CSV(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty csv err = %v", err)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"name", "value"}}
	tbl.AddRow(`has,comma`, `has"quote`)
	out, err := tbl.CSV()
	if err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"has,comma\",\"has\"\"quote\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "times", Unit: "ms"}
	c.Add("a", 10)
	c.Add("bb", 20)
	out, err := c.Render(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "times") || !strings.Contains(out, "ms") {
		t.Errorf("chart output:\n%s", out)
	}
	// The larger bar has more #.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// Tiny width falls back.
	if _, err := c.Render(1); err != nil {
		t.Errorf("narrow render: %v", err)
	}
	empty := &BarChart{}
	if _, err := empty.Render(10); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{}
	c.Add("zero", 0)
	out, err := c.Render(10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Error("zero bar should draw no #")
	}
}

func TestScatter(t *testing.T) {
	s := &Scatter{
		Title:  "tradeoff",
		XLabel: "NLL",
		YLabel: "mJ",
		Series: []Series{
			{Name: "mcdrop", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}, Marker: 'o'},
			{Name: "apds", X: []float64{0.5}, Y: []float64{5}},
		},
	}
	out, err := s.Render(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "o = mcdrop") || !strings.Contains(out, "* = apds") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestScatterErrors(t *testing.T) {
	empty := &Scatter{}
	if _, err := empty.Render(40, 10); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	ragged := &Scatter{Series: []Series{{Name: "r", X: []float64{1}, Y: nil}}}
	if _, err := ragged.Render(40, 10); !errors.Is(err, ErrEmpty) {
		t.Errorf("ragged err = %v", err)
	}
	noPoints := &Scatter{Series: []Series{{Name: "n"}}}
	if _, err := noPoints.Render(40, 10); !errors.Is(err, ErrEmpty) {
		t.Errorf("no-points err = %v", err)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	s := &Scatter{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{5}}}}
	if _, err := s.Render(30, 8); err != nil {
		t.Errorf("single point: %v", err)
	}
}
