package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// batchInputs builds a deterministic spread of test vectors.
func batchInputs(n, dim int, seed int64) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vector, n)
	for i := range out {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 2
		}
		out[i] = v
	}
	return out
}

// TestPropagateBatchParity is the batch-vs-sequential contract: PropagateBatch
// over a seeded ReLU network and a seeded tanh network must match per-sample
// Propagate within 1e-12 on every output moment, across batch sizes that
// exercise the 4-row blocking remainder and the row-chunk fan-out.
func TestPropagateBatchParity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh, nn.ActSigmoid} {
		net := buildTestNet(t, act, 0.85, 5)
		prop, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []int{1, 3, 4, 17, 64} {
			inputs := batchInputs(b, net.InputDim(), int64(b))
			gb, err := prop.PropagateBatch(inputs)
			if err != nil {
				t.Fatalf("act=%v b=%d: %v", act, b, err)
			}
			if gb.Batch() != b || gb.Dim() != net.OutputDim() {
				t.Fatalf("act=%v b=%d: batch shape %dx%d", act, b, gb.Batch(), gb.Dim())
			}
			for i, x := range inputs {
				want, err := prop.Propagate(x)
				if err != nil {
					t.Fatal(err)
				}
				got := gb.Row(i)
				if !got.Mean.Equal(want.Mean, 1e-12) || !got.Var.Equal(want.Var, 1e-12) {
					t.Errorf("act=%v b=%d input %d: batch %v/%v vs sequential %v/%v",
						act, b, i, got.Mean, got.Var, want.Mean, want.Var)
				}
			}
		}
	}
}

// TestPropagateBatchWithWorkers pins the WithWorkers contract: the batch path
// is bit-identical regardless of the worker bound (rows are independent), and
// the configured bound is reported by Workers().
func TestPropagateBatchWithWorkers(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.85, 11)
	inputs := batchInputs(33, net.InputDim(), 13)

	base, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Workers() != 0 {
		t.Errorf("default Workers = %d, want 0 (GOMAXPROCS)", base.Workers())
	}
	want, err := base.PropagateBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 8} {
		prop, err := NewPropagator(net, Options{}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if prop.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", prop.Workers(), workers)
		}
		got, err := prop.PropagateBatch(inputs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < got.Batch(); i++ {
			g, w := got.Row(i), want.Row(i)
			if !g.Mean.Equal(w.Mean, 0) || !g.Var.Equal(w.Var, 0) {
				t.Errorf("workers=%d row %d: not bit-identical to default", workers, i)
			}
		}
	}

	// The estimator constructor forwards trailing options.
	est, err := NewApDeepSense(net, Options{}, 0, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.Propagator().Workers() != 1 {
		t.Errorf("NewApDeepSense did not forward WithWorkers: %d", est.Propagator().Workers())
	}
}

// TestPropagateBatchFromParity checks the Gaussian-input entry point against
// per-sample PropagateFrom, and that the input batch is left untouched.
func TestPropagateBatchFromParity(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.9, 3)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const b = 11
	in := NewGaussianBatch(b, net.InputDim())
	rng := rand.New(rand.NewSource(9))
	for i := range in.Mean.Data {
		in.Mean.Data[i] = rng.NormFloat64()
		in.Var.Data[i] = rng.Float64()
	}
	pristine := in.Clone()

	gb, err := prop.PropagateBatchFrom(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Mean.Equal(pristine.Mean, 0) || !in.Var.Equal(pristine.Var, 0) {
		t.Error("PropagateBatchFrom mutated its input batch")
	}
	for i := 0; i < b; i++ {
		want, err := prop.PropagateFrom(in.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		got := gb.Row(i)
		if !got.Mean.Equal(want.Mean, 1e-12) || !got.Var.Equal(want.Var, 1e-12) {
			t.Errorf("input %d: batch result differs from PropagateFrom", i)
		}
	}
}

func TestPropagateBatchErrors(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 1, 1)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong dimension on one input: ErrInput with the offending index.
	inputs := batchInputs(3, net.InputDim(), 1)
	inputs[1] = tensor.Vector{1}
	if _, err := prop.PropagateBatch(inputs); !errors.Is(err, ErrInput) {
		t.Errorf("bad-dim err = %v, want ErrInput", err)
	}
	// Wrong batch dimension for the Gaussian entry point.
	if _, err := prop.PropagateBatchFrom(NewGaussianBatch(2, net.InputDim()+1)); !errors.Is(err, ErrInput) {
		t.Errorf("bad-batch err = %v, want ErrInput", err)
	}
	// Empty batch is a valid no-op.
	gb, err := prop.PropagateBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if gb.Batch() != 0 {
		t.Errorf("empty batch returned %d rows", gb.Batch())
	}
}

// TestActivationKernelExact pins the batched activation kernel to the scalar
// reference bit for bit: sharing truncated-moment boundary terms between
// adjacent pieces must not change a single output, including the point-mass
// fast path and near-zero variances.
func TestActivationKernelExact(t *testing.T) {
	// Tanh, ReLU, and sigmoid hidden kernels plus the identity output kernel.
	nets := []*nn.Network{
		buildTestNet(t, nn.ActTanh, 0.8, 2),
		buildTestNet(t, nn.ActReLU, 0.8, 2),
		buildTestNet(t, nn.ActSigmoid, 0.8, 2),
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range nets {
		// Force the PWL backend: this test pins the PWL kernel to the scalar
		// PWL reference; the exact rectifier backend (the ReLU default) is
		// pinned to its own closed form in exact_test.go.
		prop, err := NewPropagator(n, Options{ActivationMoments: nn.MomentsPWL})
		if err != nil {
			t.Fatal(err)
		}
		bounds := make([]stats.Boundary, prop.maxBounds)
		pms := make([]stats.PartialMoments, prop.maxBounds)
		for li := range n.Layers() {
			ak := prop.kernels[li]
			f := prop.acts[li]
			check := func(mu, variance float64) {
				t.Helper()
				wantM, wantV := ActivationMoments(mu, variance, f)
				gotM, gotV := ak.Moments(mu, variance, bounds, pms)
				if gotM != wantM || gotV != wantV {
					t.Fatalf("layer %d mu=%v var=%v: kernel (%v, %v) != reference (%v, %v)",
						li, mu, variance, gotM, gotV, wantM, wantV)
				}
			}
			for _, cs := range [][2]float64{{0, 0}, {2.5, 0}, {-1, 1e-30}, {0.3, 1e-12}, {40, 9}, {-40, 9}} {
				check(cs[0], cs[1])
			}
			for trial := 0; trial < 300; trial++ {
				check(rng.NormFloat64()*4, rng.Float64()*6)
			}
		}
	}
}

// TestPredictBatchConcurrent hammers the pooled scratch buffers from many
// goroutines (run under -race via make check): every concurrent batch must
// reproduce the sequential results exactly.
func TestPredictBatchConcurrent(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	net := buildTestNet(t, nn.ActTanh, 0.85, 8)
	est, err := NewApDeepSense(net, Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(33, net.InputDim(), 4)
	want := make([]GaussianVec, len(inputs))
	for i, x := range inputs {
		if want[i], err = est.Predict(x); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gr := 0; gr < goroutines; gr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				got, err := est.PredictBatch(inputs)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if !got[i].Mean.Equal(want[i].Mean, 0) || !got[i].Var.Equal(want[i].Var, 0) {
						t.Errorf("concurrent batch input %d: mismatch", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPredictProbsBatchFastPath checks the batched classification path
// against per-sample PredictProbs.
func TestPredictProbsBatchFastPath(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 2)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs(7, net.InputDim(), 6)
	got, err := est.PredictProbsBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range inputs {
		want, err := est.PredictProbs(x)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want, 1e-12) {
			t.Errorf("input %d: batched probs %v != %v", i, got[i], want)
		}
	}
}

// TestGaussianBatchViews pins the Row/Rows view semantics.
func TestGaussianBatchViews(t *testing.T) {
	gb := NewGaussianBatch(2, 3)
	gb.Mean.Set(1, 2, 7)
	if gb.Row(1).Mean[2] != 7 {
		t.Error("Row does not share storage")
	}
	rows := gb.Rows()
	rows[0].Var[0] = 5
	if gb.Var.At(0, 0) != 5 {
		t.Error("Rows does not share storage")
	}
	var zero GaussianBatch
	if zero.Batch() != 0 || zero.Dim() != 0 {
		t.Error("zero GaussianBatch should report empty shape")
	}
}
