package core

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// DenseMoments propagates a Gaussian input through one fully-connected layer
// with dropout, implementing the paper's equations (9) and (10):
//
//	E[y]   = (μ ⊙ p) W + b
//	Var[y] = ((μ² + σ²) ⊙ p − μ² ⊙ p²) W²
//
// where p is the Bernoulli keep probability of the layer's input mask and W²
// is the element-wise square of the weights (passed pre-computed as wsq so a
// propagator can amortize it across calls). The activation is NOT applied —
// that is ActivationMoments' job.
func DenseMoments(g GaussianVec, l *nn.Layer, wsq *tensor.Matrix) (GaussianVec, error) {
	in, out := l.InDim(), l.OutDim()
	if g.Dim() != in {
		return GaussianVec{}, fmt.Errorf("dense: input dim %d, want %d: %w", g.Dim(), in, ErrInput)
	}
	if wsq.Rows != in || wsq.Cols != out {
		return GaussianVec{}, fmt.Errorf("dense: wsq is %dx%d, want %dx%d: %w", wsq.Rows, wsq.Cols, in, out, ErrInput)
	}

	p := l.KeepProb
	muIn := make(tensor.Vector, in)
	varIn := make(tensor.Vector, in)
	for i := 0; i < in; i++ {
		mu, s2 := g.Mean[i], g.Var[i]
		muIn[i] = mu * p
		// E[(x z)²] − E[x z]² = (μ²+σ²)p − μ²p².
		varIn[i] = (mu*mu+s2)*p - mu*mu*p*p
	}

	res := NewGaussianVec(out)
	l.W.MulVecInto(muIn, res.Mean)
	for j := 0; j < out; j++ {
		res.Mean[j] += l.B[j]
	}
	wsq.MulVecInto(varIn, res.Var)
	// Clamp tiny negative values from floating-point cancellation.
	for j := 0; j < out; j++ {
		if res.Var[j] < 0 {
			res.Var[j] = 0
		}
	}
	return res, nil
}
