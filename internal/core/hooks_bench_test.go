package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// benchPropagator builds the 5-256-256-1 benchmark network of
// results/BENCH_batch.json and a batch of standard-normal inputs.
func benchPropagator(b *testing.B, batch int) (*Propagator, []tensor.Vector) {
	b.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{256, 256}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPropagator(net, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inputs := make([]tensor.Vector, batch)
	for i := range inputs {
		v := make(tensor.Vector, net.InputDim())
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		inputs[i] = v
	}
	return p, inputs
}

// BenchmarkPropagateBatchNilHooks is the instrumented-but-unhooked hot
// path: the number that must stay within 2% of the pre-instrumentation
// baseline (the nil-hook checks are one atomic pointer load per chunk).
// Pre-instrumentation baseline on the reference host (Xeon 2.10GHz,
// -benchtime 2s, batch 64): 2.45–2.47 ms/op, 9 allocs/op.
func BenchmarkPropagateBatchNilHooks(b *testing.B) {
	p, inputs := benchPropagator(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PropagateBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagateBatchHooked is the same workload with all three hooks
// attached and counting, the upper bound of instrumentation cost (per-layer
// time.Now pairs plus atomic accumulations).
func BenchmarkPropagateBatchHooked(b *testing.B) {
	p, inputs := benchPropagator(b, 64)
	var batches, layerCalls, scratchGets atomic.Int64
	var layerNanos atomic.Int64
	p.SetHooks(&Hooks{
		BatchStart: func(rows int) { batches.Add(1) },
		LayerTime: func(layer, rows int, d time.Duration) {
			layerCalls.Add(1)
			layerNanos.Add(d.Nanoseconds())
		},
		ScratchGet: func(hit bool) { scratchGets.Add(1) },
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PropagateBatch(inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if batches.Load() == 0 || layerCalls.Load() == 0 || scratchGets.Load() == 0 {
		b.Fatal("hooks did not fire")
	}
}

// BenchmarkPropagateNilHooks pins the sequential path's nil-hook cost (one
// atomic load plus a per-layer bool test).
func BenchmarkPropagateNilHooks(b *testing.B) {
	p, inputs := benchPropagator(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Propagate(inputs[0]); err != nil {
			b.Fatal(err)
		}
	}
}
