package core

import (
	"errors"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestPredictBatchMatchesSequential(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.85, 5)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Vector, 40)
	for i := range inputs {
		inputs[i] = tensor.Vector{float64(i), 1, -1, 0.5, 0.1}
	}
	want := make([]GaussianVec, len(inputs))
	for i, x := range inputs {
		g, err := est.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = g
	}
	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := PredictBatch(est, inputs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if !got[i].Mean.Equal(want[i].Mean, 0) || !got[i].Var.Equal(want[i].Var, 0) {
				t.Errorf("workers=%d input %d: mismatch", workers, i)
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 1, 1)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PredictBatch(est, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d results for empty batch", len(got))
	}
}

func TestPredictBatchPropagatesError(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 1, 1)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vector{
		{1, 2, 3, 4, 5},
		{1}, // wrong dimension
		{1, 2, 3, 4, 5},
	}
	if _, err := PredictBatch(est, inputs, 2); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}

func TestPredictProbsBatch(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 2)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vector{
		{1, 0, 0, 0, 0},
		{0, 1, 0, 0, 0},
	}
	probs, err := PredictProbsBatch(est, inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("input %d: probs sum %v", i, sum)
		}
	}
	if _, err := PredictProbsBatch(est, []tensor.Vector{{1}}, 1); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}
