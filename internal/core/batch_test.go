package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestPredictBatchMatchesSequential(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.85, 5)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]tensor.Vector, 40)
	for i := range inputs {
		inputs[i] = tensor.Vector{float64(i), 1, -1, 0.5, 0.1}
	}
	want := make([]GaussianVec, len(inputs))
	for i, x := range inputs {
		g, err := est.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = g
	}
	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := PredictBatch(est, inputs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if !got[i].Mean.Equal(want[i].Mean, 0) || !got[i].Var.Equal(want[i].Var, 0) {
				t.Errorf("workers=%d input %d: mismatch", workers, i)
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 1, 1)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PredictBatch(est, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d results for empty batch", len(got))
	}
}

func TestPredictBatchPropagatesError(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 1, 1)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vector{
		{1, 2, 3, 4, 5},
		{1}, // wrong dimension
		{1, 2, 3, 4, 5},
	}
	if _, err := PredictBatch(est, inputs, 2); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}

// TestForEachInputStopsAfterError is the regression test for the worker-pool
// error path: before the fix, the producer kept feeding every remaining index
// after a failure and workers kept executing fn, so a failing batch still ran
// all n inputs. With the stop flag, only the handful of already-queued
// indices may still execute.
func TestForEachInputStopsAfterError(t *testing.T) {
	const n = 10000
	sentinel := errors.New("boom")
	for _, workers := range []int{2, 4, 16} {
		var calls atomic.Int64
		err := forEachInput(n, workers, func(i int) error {
			calls.Add(1)
			if i == 5 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if c := calls.Load(); c > n/10 {
			t.Errorf("workers=%d: executed %d of %d inputs after input 5 failed; early stop broken", workers, c, n)
		}
	}
}

// TestForEachInputSequentialStops covers the workers=1 fast path.
func TestForEachInputSequentialStops(t *testing.T) {
	sentinel := errors.New("boom")
	var calls int
	err := forEachInput(100, 1, func(i int) error {
		calls++
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || calls != 4 {
		t.Errorf("err = %v, calls = %d; want sentinel after 4 calls", err, calls)
	}
}

// TestPredictBatchFanOutPath pins the worker-pool path (estimators without a
// batch fast path) via a wrapper that hides ApDeepSense's BatchPredictor.
func TestPredictBatchFanOutPath(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.85, 5)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := plainEstimator{est}
	inputs := make([]tensor.Vector, 10)
	for i := range inputs {
		inputs[i] = tensor.Vector{float64(i), 1, -1, 0.5, 0.1}
	}
	got, err := PredictBatch(wrapped, inputs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range inputs {
		want, err := est.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Mean.Equal(want.Mean, 0) {
			t.Errorf("input %d: fan-out mismatch", i)
		}
	}
}

// plainEstimator hides the batch fast-path interfaces of the wrapped
// estimator so tests can force the worker-pool path.
type plainEstimator struct{ est Estimator }

func (p plainEstimator) Name() string                                 { return p.est.Name() }
func (p plainEstimator) Predict(x tensor.Vector) (GaussianVec, error) { return p.est.Predict(x) }
func (p plainEstimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	return p.est.PredictProbs(x)
}
func (p plainEstimator) Cost() edison.Cost { return p.est.Cost() }

func TestPredictProbsBatch(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 2)
	est, err := NewApDeepSense(net, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vector{
		{1, 0, 0, 0, 0},
		{0, 1, 0, 0, 0},
	}
	probs, err := PredictProbsBatch(est, inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		var sum float64
		for _, v := range p {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("input %d: probs sum %v", i, sum)
		}
	}
	if _, err := PredictProbsBatch(est, []tensor.Vector{{1}}, 1); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}
