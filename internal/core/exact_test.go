package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestExactKernelDispatch pins the exact kernels' dispatch contract: above
// the shared SigmaFloor point-mass shortcut the kernel's output is
// bit-identical to the stats closed forms; below it, to f.Eval — for both
// ReLU and leaky-ReLU, on every layer the propagator resolves to exact.
func TestExactKernelDispatch(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActLeakyReLU} {
		net := buildTestNet(t, act, 0.8, 11)
		prop, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		alpha, _ := act.Rectifier()
		var sawExact bool
		bounds := make([]stats.Boundary, prop.maxBounds)
		pms := make([]stats.PartialMoments, prop.maxBounds)
		rng := rand.New(rand.NewSource(4))
		for li, l := range net.Layers() {
			_, rect := l.Act.Rectifier()
			if prop.MomentsExact(li) != rect {
				t.Fatalf("layer %d (%v): MomentsExact = %v, want %v", li, l.Act, prop.MomentsExact(li), rect)
			}
			if !rect {
				continue
			}
			sawExact = true
			ak := prop.kernels[li]
			check := func(mu, variance float64) {
				t.Helper()
				gotM, gotV := ak.Moments(mu, variance, bounds, pms)
				sigma := math.Sqrt(variance)
				var wantM, wantV float64
				if sigma <= SigmaFloor*(1+math.Abs(mu)) {
					wantM, wantV = prop.acts[li].Eval(mu), 0
				} else if alpha == 0 {
					wantM, wantV = stats.RectifiedMoments(mu, sigma)
				} else {
					wantM, wantV = stats.LeakyRectifiedMoments(mu, sigma, alpha)
				}
				if math.Float64bits(gotM) != math.Float64bits(wantM) || math.Float64bits(gotV) != math.Float64bits(wantV) {
					t.Fatalf("layer %d mu=%v var=%v: kernel (%v,%v), want (%v,%v)", li, mu, variance, gotM, gotV, wantM, wantV)
				}
			}
			for _, cs := range [][2]float64{{0, 0}, {2.5, 0}, {-1, 1e-30}, {0.3, 1e-12}, {40, 9}, {-40, 9}, {1e6, 1}, {-1e6, 1}} {
				check(cs[0], cs[1])
			}
			for trial := 0; trial < 200; trial++ {
				check(rng.NormFloat64()*4, rng.Float64()*6)
			}
		}
		if !sawExact {
			t.Fatal("no exact layer resolved")
		}
	}
}

// TestExactBackendBitIdenticalAcrossEntryPoints: with the exact backend on
// (the rectifier default), the per-sample, batched-interpreted, and
// batched-reference paths must produce Float64bits-identical outputs — the
// dispatch lives inside the shared kernel, not in any one path.
func TestExactBackendBitIdenticalAcrossEntryPoints(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActLeakyReLU} {
		net := buildTestNet(t, act, 0.85, 6)
		prop, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		inputs := batchInputs(9, net.InputDim(), 8)
		gb, err := prop.PropagateBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := prop.PropagateBatchReference(gb2From(inputs, net.InputDim(), t))
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range inputs {
			g, err := prop.Propagate(x)
			if err != nil {
				t.Fatal(err)
			}
			for j := range g.Mean {
				if math.Float64bits(g.Mean[j]) != math.Float64bits(gb.Row(i).Mean[j]) ||
					math.Float64bits(g.Var[j]) != math.Float64bits(gb.Row(i).Var[j]) {
					t.Fatalf("%v sample %d out %d: per-sample (%v,%v) != batch (%v,%v)",
						act, i, j, g.Mean[j], g.Var[j], gb.Row(i).Mean[j], gb.Row(i).Var[j])
				}
				if math.Float64bits(ref.Row(i).Mean[j]) != math.Float64bits(gb.Row(i).Mean[j]) {
					t.Fatalf("%v sample %d out %d: reference differs from batch", act, i, j)
				}
			}
		}
	}
}

func gb2From(xs []tensor.Vector, dim int, t *testing.T) GaussianBatch {
	t.Helper()
	gb, err := DeterministicBatch(xs, dim)
	if err != nil {
		t.Fatal(err)
	}
	return gb
}

// TestExactModeErrors: requesting exact moments for an activation without a
// closed form must fail at construction, both propagator-wide and per-layer.
func TestExactModeErrors(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.9, 3)
	if _, err := NewPropagator(net, Options{ActivationMoments: nn.MomentsExact}); err == nil {
		t.Fatal("propagator-wide exact on tanh: want error")
	}
	net.Layers()[0].Moments = nn.MomentsExact
	if _, err := NewPropagator(net, Options{}); err == nil {
		t.Fatal("per-layer exact on tanh: want error")
	}
	// Per-layer PWL must override a propagator-wide exact default silently.
	relu := buildTestNet(t, nn.ActReLU, 0.9, 3)
	relu.Layers()[0].Moments = nn.MomentsPWL
	prop, err := NewPropagator(relu, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prop.MomentsExact(0) {
		t.Error("layer 0 forced PWL but resolved exact")
	}
	if !prop.MomentsExact(1) {
		t.Error("layer 1 auto ReLU should resolve exact")
	}
}

// TestReLUMomentsCrossCheck: the pre-existing ReLUMoments helper (the naive
// E[y²]−E[y]² form with clamp) and the new stable closed form agree in the
// benign regime — two independently derived implementations of the same
// integral.
func TestReLUMomentsCrossCheck(t *testing.T) {
	for _, mu := range []float64{-3, -1, -0.2, 0, 0.2, 1, 3} {
		for _, sigma := range []float64{0.1, 1, 5} {
			m1, v1 := ReLUMoments(mu, sigma*sigma)
			m2, v2 := stats.RectifiedMoments(mu, sigma)
			if d := math.Abs(m1 - m2); d > 1e-12*(1+math.Abs(m1)) {
				t.Errorf("mean mismatch at mu=%v sigma=%v: %v vs %v", mu, sigma, m1, m2)
			}
			if d := math.Abs(v1 - v2); d > 1e-11*(1+v1) {
				t.Errorf("var mismatch at mu=%v sigma=%v: %v vs %v", mu, sigma, v1, v2)
			}
		}
	}
}
