package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// probitLambda is π/8, the scaling constant of the probit approximation to
// the logistic function used by the mean-field softmax link.
const probitLambda = math.Pi / 8

// Softmax writes the softmax of z into a new vector, using the max-shift
// trick for numerical stability.
func Softmax(z tensor.Vector) tensor.Vector {
	out := make(tensor.Vector, len(z))
	maxZ, _ := z.Max()
	var sum float64
	for i, v := range z {
		e := math.Exp(v - maxZ)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// MeanFieldSoftmax approximates the expected class probabilities
// E[softmax(z)] for Gaussian logits z ~ N(mean, diag(var)) without sampling,
// using the moderation ("probit") approximation: each logit is scaled by
// 1/sqrt(1 + (π/8)·var) before a single softmax. High-variance logits are
// moderated toward uniform, which is how ApDeepSense's output uncertainty
// reaches classification likelihoods (HHAR task) deterministically.
func MeanFieldSoftmax(g GaussianVec) tensor.Vector {
	z := make(tensor.Vector, g.Dim())
	for i := range z {
		z[i] = g.Mean[i] / math.Sqrt(1+probitLambda*g.Var[i])
	}
	return Softmax(z)
}

// SampledSoftmax estimates E[softmax(z)] by averaging the softmax of n
// Gaussian logit samples. It is the sampling alternative to MeanFieldSoftmax
// used by the ablation benchmarks; n must be positive (a non-positive n is
// an explicit error, not a silent all-NaN vector) and rng non-nil.
func SampledSoftmax(g GaussianVec, n int, rng *rand.Rand) (tensor.Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampled softmax: sample count %d, want > 0: %w", n, ErrInput)
	}
	out := make(tensor.Vector, g.Dim())
	z := make(tensor.Vector, g.Dim())
	for s := 0; s < n; s++ {
		for i := range z {
			z[i] = g.Mean[i] + math.Sqrt(g.Var[i])*rng.NormFloat64()
		}
		p := Softmax(z)
		for i := range out {
			out[i] += p[i]
		}
	}
	for i := range out {
		out[i] /= float64(n)
	}
	return out, nil
}
