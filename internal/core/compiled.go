package core

// CompiledBatch is a batched propagation program specialized for one exact
// network at load time (see internal/compile): weight and squared-weight
// panels pre-laid-out for the blocked matmul, activation knots baked in, and
// scratch sized once for a registered maximum batch. A Propagator dispatches
// PropagateBatch / PropagateBatchFrom calls whose batch fits MaxBatch to the
// installed program; larger batches (and the per-sample Propagate path) stay
// on the interpreted kernels.
//
// Contract: RunBatch outputs must be Float64bits-identical to the
// interpreted path on the same inputs — the compiled path is a specialization
// of the same arithmetic, never an approximation of it. internal/proptest
// gates this over random networks, hostile inputs, and a fuzz corpus, and
// internal/registry refuses to install a program that fails its warmup
// self-check.
type CompiledBatch interface {
	// MaxBatch reports the largest batch the program was specialized for.
	MaxBatch() int
	// RunBatch propagates in into out. The caller guarantees
	// 1 <= in.Batch() <= MaxBatch(), in.Dim() equal to the network input
	// dimension, and out pre-shaped to in.Batch() × output dimension. in is
	// not modified. h is the dispatching propagator's hooks snapshot (may be
	// nil): the program fires LayerTime and ScratchGet exactly as the
	// interpreted path does, so serving observability is path-independent.
	// Hooks observe timing and buffer reuse only and never touch numeric
	// state, so outputs are bit-identical with or without them.
	RunBatch(in, out GaussianBatch, h *Hooks)
}

// compiledHolder wraps the interface value so it can live behind an
// atomic.Pointer (interfaces are two words and not atomically swappable
// directly).
type compiledHolder struct{ cb CompiledBatch }

// SetCompiled installs (or, with nil, removes) a compiled batch program. It
// may be called at any time, including while other goroutines propagate: the
// pointer is snapshotted once per batch call, so a swap applies atomically to
// subsequent batches. Callers are expected to verify the program against the
// interpreted path (Program.Warm in internal/compile) before installing it.
func (p *Propagator) SetCompiled(cb CompiledBatch) {
	if cb == nil {
		p.compiledProg.Store(nil)
		return
	}
	p.compiledProg.Store(&compiledHolder{cb})
}

// Compiled returns the installed compiled batch program, or nil.
func (p *Propagator) Compiled() CompiledBatch {
	if h := p.compiledProg.Load(); h != nil {
		return h.cb
	}
	return nil
}

// Kernel returns layer i's activation-moment kernel. The compiled propagator
// (internal/compile) binds these into its per-layer closures so the compiled
// activation sweep is the same code — and therefore the same bits — as the
// interpreted one.
func (p *Propagator) Kernel(i int) *ActKernel { return p.kernels[i] }

// MaxLayerDim reports the widest layer dimension (including the input),
// which sizes the ping-pong scratch panels on both propagation paths.
func (p *Propagator) MaxLayerDim() int { return p.maxDim }

// MaxBounds reports the largest knot count across the per-layer activation
// kernels — the length the boundary-term scratch must accommodate.
func (p *Propagator) MaxBounds() int { return p.maxBounds }
