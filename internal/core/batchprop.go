package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// GaussianBatch is a batch of B independent diagonal Gaussians over the same
// D-dimensional space, stored as a pair of B×D row-major matrices: row i of
// Mean/Var is sample i's GaussianVec. The matrix layout is what lets the
// batched propagation replace B matrix–vector products per layer with one
// blocked matrix–matrix product (X_mu W and X_var W²).
type GaussianBatch struct {
	Mean *tensor.Matrix
	Var  *tensor.Matrix
}

// NewGaussianBatch allocates a zero batch of b samples with dimension d.
func NewGaussianBatch(b, d int) GaussianBatch {
	return GaussianBatch{Mean: tensor.NewMatrix(b, d), Var: tensor.NewMatrix(b, d)}
}

// Batch returns the number of samples B.
func (g GaussianBatch) Batch() int {
	if g.Mean == nil {
		return 0
	}
	return g.Mean.Rows
}

// Dim returns the per-sample dimension D.
func (g GaussianBatch) Dim() int {
	if g.Mean == nil {
		return 0
	}
	return g.Mean.Cols
}

// Row returns sample i as a GaussianVec sharing the batch's backing storage.
func (g GaussianBatch) Row(i int) GaussianVec {
	return GaussianVec{Mean: g.Mean.Row(i), Var: g.Var.Row(i)}
}

// Rows returns all samples as GaussianVec views sharing the batch's backing
// storage.
func (g GaussianBatch) Rows() []GaussianVec {
	out := make([]GaussianVec, g.Batch())
	for i := range out {
		out[i] = g.Row(i)
	}
	return out
}

// Clone returns a deep copy.
func (g GaussianBatch) Clone() GaussianBatch {
	return GaussianBatch{Mean: g.Mean.Clone(), Var: g.Var.Clone()}
}

// DeterministicBatch stacks plain input vectors into a point-mass batch
// (variance zero), validating every row against dim. Index information is
// preserved in the error so callers can report which request in a batch was
// malformed.
func DeterministicBatch(xs []tensor.Vector, dim int) (GaussianBatch, error) {
	gb := NewGaussianBatch(len(xs), dim)
	for i, x := range xs {
		if len(x) != dim {
			return GaussianBatch{}, fmt.Errorf("batch input %d: dim %d, want %d: %w", i, len(x), dim, ErrInput)
		}
		copy(gb.Mean.Row(i), x)
	}
	return gb, nil
}

// PropagateBatch runs the full ApDeepSense pass over a batch of plain input
// vectors: the matrix-level counterpart of Propagate. All B inputs move
// through each layer together — two blocked matrix–matrix multiplies per
// layer instead of 2B matrix–vector passes — and the activation moments are
// applied across the batch matrix with per-layer kernels that share
// truncated-moment boundary terms between adjacent PWL pieces. Each output
// row is value-identical to Propagate on the corresponding input.
func (p *Propagator) PropagateBatch(xs []tensor.Vector) (GaussianBatch, error) {
	gb, err := DeterministicBatch(xs, p.net.InputDim())
	if err != nil {
		return GaussianBatch{}, fmt.Errorf("propagate-batch: %w", err)
	}
	return p.propagateBatch(gb)
}

// PropagateBatchFrom is PropagateBatch starting from already-Gaussian inputs
// (e.g. a convolutional front-end's output distributions). The input batch
// is not modified.
func (p *Propagator) PropagateBatchFrom(gb GaussianBatch) (GaussianBatch, error) {
	if gb.Dim() != p.net.InputDim() {
		return GaussianBatch{}, fmt.Errorf("propagate-batch-from: input dim %d, want %d: %w", gb.Dim(), p.net.InputDim(), ErrInput)
	}
	return p.propagateBatch(gb)
}

// MinRowsPerWorker is the smallest row chunk worth a goroutine: below this
// the per-layer work is too small for fan-out overhead to pay off. Exported
// so internal/compile can precompute chunk plans with the same fan-out rule.
const MinRowsPerWorker = 8

// propagateBatch routes the validated batch: to the installed quantized
// program (SetQuantized) first, else to the installed compiled program
// (SetCompiled) when the batch fits its registered maximum, otherwise to the
// interpreted row-chunk path. Compiled and interpreted produce
// Float64bits-identical results; the quantized path is an approximation
// held to the oracle's quantization error budget instead.
func (p *Propagator) propagateBatch(gb GaussianBatch) (GaussianBatch, error) {
	b := gb.Batch()
	out := NewGaussianBatch(b, p.net.OutputDim())
	if b == 0 {
		return out, nil
	}
	h := p.hooks.Load()
	if h != nil && h.BatchStart != nil {
		h.BatchStart(b)
	}
	if q := p.Quantized(); q != nil && b <= q.MaxBatch() {
		q.RunBatch(gb, out, h)
		return out, nil
	}
	if c := p.Compiled(); c != nil && b <= c.MaxBatch() {
		c.RunBatch(gb, out, h)
		return out, nil
	}
	p.propagateInterpreted(gb, out, h)
	return out, nil
}

// PropagateBatchReference runs the interpreted batched path unconditionally,
// bypassing any installed compiled program. It is the reference side of the
// bit-identity gate: internal/compile warms new programs against it, and
// internal/proptest compares the compiled path to it over the full corpus.
func (p *Propagator) PropagateBatchReference(gb GaussianBatch) (GaussianBatch, error) {
	if gb.Dim() != p.net.InputDim() {
		return GaussianBatch{}, fmt.Errorf("propagate-batch-reference: input dim %d, want %d: %w", gb.Dim(), p.net.InputDim(), ErrInput)
	}
	b := gb.Batch()
	out := NewGaussianBatch(b, p.net.OutputDim())
	if b == 0 {
		return out, nil
	}
	h := p.hooks.Load()
	if h != nil && h.BatchStart != nil {
		h.BatchStart(b)
	}
	p.propagateInterpreted(gb, out, h)
	return out, nil
}

// propagateInterpreted fans the batch out over row chunks. Rows are
// independent through the whole network, so the split happens once at the
// top: each worker pushes its chunk through every layer with its own pooled
// scratch buffers, maximizing weight-matrix reuse while it owns the cache.
func (p *Propagator) propagateInterpreted(gb, out GaussianBatch, h *Hooks) {
	b := gb.Batch()
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (b + MinRowsPerWorker - 1) / MinRowsPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		p.propagateRows(gb, out, 0, b, h)
		return
	}
	chunk := (b + workers - 1) / workers
	// Multiple-of-4 chunks keep every worker but the last on the 4-row
	// register-blocked matmul fast path.
	if chunk%4 != 0 {
		chunk += 4 - chunk%4
	}
	var wg sync.WaitGroup
	for lo := 0; lo < b; lo += chunk {
		hi := lo + chunk
		if hi > b {
			hi = b
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.propagateRows(gb, out, lo, hi, h)
		}(lo, hi)
	}
	wg.Wait()
}

// batchScratch is one worker's reusable buffers: ping-pong mean/variance
// panels sized rows×maxDim plus the per-element boundary-term scratch of the
// activation kernel. Pooled on the Propagator so steady-state batches
// allocate nothing but their result.
type batchScratch struct {
	curMu, curVar []float64
	nxtMu, nxtVar []float64
	bounds        []stats.Boundary
	pms           []stats.PartialMoments
	// warm distinguishes a pooled buffer set (true) from a fresh sync.Pool
	// allocation, feeding the Hooks.ScratchGet hit/miss signal.
	warm bool
}

func (s *batchScratch) ensure(n, nBounds int) {
	if len(s.curMu) < n {
		s.curMu = make([]float64, n)
		s.curVar = make([]float64, n)
		s.nxtMu = make([]float64, n)
		s.nxtVar = make([]float64, n)
	}
	if len(s.bounds) < nBounds {
		s.bounds = make([]stats.Boundary, nBounds)
		s.pms = make([]stats.PartialMoments, nBounds)
	}
}

// propagateRows pushes rows [lo, hi) of in through every layer, writing the
// final Gaussians into the same rows of out. The layer step mirrors
// DenseMoments + ActivationMomentsVec exactly: dropout-aware input moments
// (eqs. 9–10) in place, one blocked matmul per moment, bias add, variance
// clamp, then the PWL activation moments (eqs. 12–26) element-wise.
//
// h is the hooks snapshot taken by propagateBatch; hooks observe timing and
// pool reuse only and never touch the numeric state, so results are
// bit-identical with or without them (TestPropagateBatchHookedBitIdentical).
func (p *Propagator) propagateRows(in, out GaussianBatch, lo, hi int, h *Hooks) {
	rows := hi - lo
	sc := p.scratch.Get().(*batchScratch)
	if h != nil && h.ScratchGet != nil {
		h.ScratchGet(sc.warm)
	}
	sc.warm = true
	sc.ensure(rows*p.maxDim, p.maxBounds)

	dim := in.Dim()
	copy(sc.curMu[:rows*dim], in.Mean.Data[lo*dim:hi*dim])
	copy(sc.curVar[:rows*dim], in.Var.Data[lo*dim:hi*dim])

	layers := p.net.Layers()

	// Input moments of the first layer under its dropout mask (eq. 9–10
	// prep): E[x z] = μp, Var[x z] = (μ²+σ²)p − μ²p². For every later layer
	// this prep is fused into the previous layer's activation sweep below.
	{
		keep := layers[0].KeepProb
		mu := sc.curMu[:rows*dim]
		va := sc.curVar[:rows*dim]
		for t, m := range mu {
			s2 := va[t]
			mu[t] = m * keep
			va[t] = (m*m+s2)*keep - m*m*keep*keep
		}
	}

	timed := h != nil && h.LayerTime != nil
	var t0 time.Time
	for li, l := range layers {
		if timed {
			t0 = time.Now()
		}
		nIn, nOut := l.InDim(), l.OutDim()

		curMu := &tensor.Matrix{Rows: rows, Cols: nIn, Data: sc.curMu[:rows*nIn]}
		curVar := &tensor.Matrix{Rows: rows, Cols: nIn, Data: sc.curVar[:rows*nIn]}
		nxtMu := &tensor.Matrix{Rows: rows, Cols: nOut, Data: sc.nxtMu[:rows*nOut]}
		nxtVar := &tensor.Matrix{Rows: rows, Cols: nOut, Data: sc.nxtVar[:rows*nOut]}

		// Mean panel X_mu W and variance panel X_var W². Shapes are
		// guaranteed by construction.
		if err := curMu.MulInto(l.W, nxtMu); err != nil {
			panic(fmt.Sprintf("core: batch mean matmul layer %d: %v", li, err))
		}
		if err := curVar.MulInto(p.wsq[li], nxtVar); err != nil {
			panic(fmt.Sprintf("core: batch variance matmul layer %d: %v", li, err))
		}

		// One fused sweep over the panel: bias add, the variance clamp for
		// floating-point cancellation (exactly as DenseMoments), the PWL
		// activation moments (eqs. 12–26), and — for all but the last layer
		// — the next layer's dropout prep. Fusing keeps each element's
		// operation sequence identical to the separate passes while touching
		// the panel once instead of four times.
		ak := p.kernels[li]
		nextKeep := math.NaN()
		if li+1 < len(layers) {
			nextKeep = layers[li+1].KeepProb
		}
		for r := 0; r < rows; r++ {
			o := nxtMu.Data[r*nOut : (r+1)*nOut]
			v := nxtVar.Data[r*nOut : (r+1)*nOut][:nOut]
			if li+1 < len(layers) {
				for j, bj := range l.B {
					s2 := v[j]
					if s2 < 0 {
						s2 = 0
					}
					m, mv := ak.Moments(o[j]+bj, s2, sc.bounds, sc.pms)
					o[j] = m * nextKeep
					v[j] = (m*m+mv)*nextKeep - m*m*nextKeep*nextKeep
				}
			} else {
				for j, bj := range l.B {
					s2 := v[j]
					if s2 < 0 {
						s2 = 0
					}
					o[j], v[j] = ak.Moments(o[j]+bj, s2, sc.bounds, sc.pms)
				}
			}
		}

		sc.curMu, sc.nxtMu = sc.nxtMu, sc.curMu
		sc.curVar, sc.nxtVar = sc.nxtVar, sc.curVar
		if timed {
			h.LayerTime(li, rows, time.Since(t0))
		}
	}

	outDim := out.Dim()
	copy(out.Mean.Data[lo*outDim:hi*outDim], sc.curMu[:rows*outDim])
	copy(out.Var.Data[lo*outDim:hi*outDim], sc.curVar[:rows*outDim])
	p.scratch.Put(sc)
}

// ActKernel is the batched activation-moment kernel: the same eqs. 12–26 as
// ActivationMoments, restructured for a panel of elements. The per-piece
// slopes, intercepts, and knots live in flat arrays hoisted out of the
// per-element call, and the truncated-moment boundary terms (one erf and one
// Gaussian density per knot) are computed once per knot instead of twice —
// adjacent pieces share their boundary. Outputs are bit-identical to
// ActivationMoments (stats.MomentsBetween reproduces stats.TruncatedMoments
// exactly; see TestActivationKernelExact).
type ActKernel struct {
	f         *piecewise.Func  // point-mass fast path (f.Eval)
	knots     []float64        // n+1 piece boundaries, ascending
	k, c      []float64        // per-piece slope and intercept
	infB      []stats.Boundary // boundary terms, precomputed at ±Inf knots
	finiteIdx []int            // indices of the finite knots
	// exact routes non-degenerate Gaussians to the closed-form rectifier
	// moments (stats.RectifiedMoments / LeakyRectifiedMoments) with slope
	// alpha instead of the PWL assembly. The point-mass shortcut is shared,
	// so exact and PWL kernels agree bit-exactly below SigmaFloor.
	exact bool
	alpha float64
}

func NewActKernel(f *piecewise.Func) *ActKernel {
	n := f.NumPieces()
	ak := &ActKernel{
		f:     f,
		knots: make([]float64, n+1),
		k:     make([]float64, n),
		c:     make([]float64, n),
		infB:  make([]stats.Boundary, n+1),
	}
	for i := 0; i < n; i++ {
		piece := f.Piece(i)
		ak.knots[i] = piece.A
		ak.k[i] = piece.K
		ak.c[i] = piece.C
	}
	ak.knots[n] = f.Piece(n - 1).B
	// Outermost knots are ±Inf for every supported activation, where the
	// boundary terms are the constants Erf(±Inf) = ±1, φ(±Inf) = 0,
	// z·φ(±Inf) = 0 — exactly what BoundaryAt returns for any finite
	// (mu, sigma). Precomputing them removes two transcendental evaluations
	// per element per layer: for ReLU that is two of the three knots.
	for t := 0; t <= n; t++ {
		if math.IsInf(ak.knots[t], 0) {
			ak.infB[t] = stats.Boundary{Erf: math.Copysign(1, ak.knots[t])}
		} else {
			ak.finiteIdx = append(ak.finiteIdx, t)
		}
	}
	return ak
}

// NewExactActKernel builds a kernel that serves f's moments from the exact
// analytical rectifier forms instead of the PWL assembly. f must be in the
// rectifier family (piecewise.ReLU / piecewise.LeakyReLU); the PWL state is
// still prepared so Eval (point masses) and introspection keep working.
func NewExactActKernel(f *piecewise.Func) (*ActKernel, error) {
	alpha, ok := f.Rectifier()
	if !ok {
		return nil, fmt.Errorf("core: %s is not a rectifier, no exact moment form: %w", f.Name(), ErrInput)
	}
	ak := NewActKernel(f)
	ak.exact = true
	ak.alpha = alpha
	return ak, nil
}

// Exact reports whether the kernel dispatches to the exact analytical
// rectifier moments rather than the PWL closed form.
func (ak *ActKernel) Exact() bool { return ak.exact }

// Func returns the kernel's PWL function (shared, treat as read-only).
func (ak *ActKernel) Func() *piecewise.Func { return ak.f }

// NumBounds returns the boundary-scratch length Moments requires — callers
// outside the propagator (the sequence paths) size their own scratch with it.
func (ak *ActKernel) NumBounds() int { return len(ak.knots) }

// Moments pushes one scalar Gaussian through the kernel, using bounds and
// pms (each at least len(knots) long) as per-worker scratch — caller-owned
// so the per-element call zeroes no stack arrays.
func (ak *ActKernel) Moments(mu, variance float64, bounds []stats.Boundary, pms []stats.PartialMoments) (outMean, outVar float64) {
	sigma := math.Sqrt(variance)
	if sigma <= SigmaFloor*(1+math.Abs(mu)) {
		// Point mass: the PWL function maps it to another point mass.
		return ak.f.Eval(mu), 0
	}
	if ak.exact {
		if ak.alpha == 0 {
			return stats.RectifiedMoments(mu, sigma)
		}
		return stats.LeakyRectifiedMoments(mu, sigma, ak.alpha)
	}

	n := len(ak.k)
	// The precomputed ±Inf boundaries assume (knot - mu)/sigma stays ±Inf,
	// which holds for any finite mu and non-NaN sigma. The common path
	// copies the constants wholesale and evaluates only the finite knots.
	if !math.IsInf(mu, 0) && !math.IsNaN(mu) && !math.IsNaN(sigma) {
		copy(bounds[:n+1], ak.infB)
		for _, t := range ak.finiteIdx {
			bounds[t] = stats.BoundaryAt(ak.knots[t], mu, sigma)
		}
	} else {
		for t := 0; t <= n; t++ {
			bounds[t] = stats.BoundaryAt(ak.knots[t], mu, sigma)
		}
	}

	for i := 0; i < n; i++ {
		pms[i] = stats.MomentsBetween(bounds[i], bounds[i+1], sigma)
	}

	for i := 0; i < n; i++ {
		outMean += (ak.k[i]*mu+ak.c[i])*pms[i].D + ak.k[i]*pms[i].M
	}
	for i := 0; i < n; i++ {
		d := ak.k[i]*mu + ak.c[i] - outMean
		outVar += ak.k[i]*ak.k[i]*pms[i].V + 2*ak.k[i]*d*pms[i].M + d*d*pms[i].D
	}
	if outVar < 0 {
		outVar = 0
	}
	return outMean, outVar
}
