// Package core implements the ApDeepSense algorithm (paper §III): layer-wise
// closed-form Gaussian approximation of the output distribution of a
// dropout-trained fully-connected network. It replaces MCDrop's k stochastic
// forward passes with a single deterministic pass that propagates a diagonal
// multivariate Gaussian through every matrix multiplication (eqs. 9–10) and
// every piece-wise-linearized activation (eqs. 12–26).
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrInput is returned (wrapped) for invalid inputs to the propagator.
var ErrInput = errors.New("core: invalid input")

// GaussianVec is a diagonal multivariate Gaussian: element i is distributed
// N(Mean[i], Var[i]) independently. It is the paper's layer-wise
// approximation family (§III-A).
type GaussianVec struct {
	Mean tensor.Vector
	Var  tensor.Vector
}

// NewGaussianVec allocates a zero-mean, zero-variance Gaussian of length n.
func NewGaussianVec(n int) GaussianVec {
	return GaussianVec{Mean: tensor.NewVector(n), Var: tensor.NewVector(n)}
}

// Deterministic wraps a plain input vector as a point-mass Gaussian
// (variance zero), the entry state of the propagation.
func Deterministic(x tensor.Vector) GaussianVec {
	return GaussianVec{Mean: x.Clone(), Var: tensor.NewVector(len(x))}
}

// Dim returns the vector length.
func (g GaussianVec) Dim() int { return len(g.Mean) }

// Std returns the standard deviation of element i.
func (g GaussianVec) Std(i int) float64 { return math.Sqrt(g.Var[i]) }

// Validate checks internal consistency: matching lengths, finite values, and
// non-negative variances.
func (g GaussianVec) Validate() error {
	if len(g.Mean) != len(g.Var) {
		return fmt.Errorf("mean len %d != var len %d: %w", len(g.Mean), len(g.Var), ErrInput)
	}
	for i := range g.Mean {
		if math.IsNaN(g.Mean[i]) || math.IsInf(g.Mean[i], 0) {
			return fmt.Errorf("mean[%d] = %v: %w", i, g.Mean[i], ErrInput)
		}
		if math.IsNaN(g.Var[i]) || g.Var[i] < 0 {
			return fmt.Errorf("var[%d] = %v: %w", i, g.Var[i], ErrInput)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (g GaussianVec) Clone() GaussianVec {
	return GaussianVec{Mean: g.Mean.Clone(), Var: g.Var.Clone()}
}
