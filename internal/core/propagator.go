package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Element-op counts charged per output element when computing the moments of
// one PWL piece (evaluating eqs. 23–25 with vectorized tensor operations: two
// erf, two exp, and the surrounding arithmetic chains, each a separate
// element-wise pass on a graph executor). Constant pieces (k = 0) need only
// the interval mass D. See internal/edison for how element-ops convert to
// time and energy; EXPERIMENTS.md records the calibration.
const (
	// OpsPerLinearPiece is the per-element op count of a k ≠ 0 piece.
	OpsPerLinearPiece = 88
	// OpsPerConstPiece is the per-element op count of a k = 0 piece.
	OpsPerConstPiece = 24
	// OpsPerExactMoments is the per-element op count of the exact rectifier
	// moment backend (stats.RectifiedMoments): two erfc, one exp, and the
	// surrounding arithmetic — the same transcendental mix as one constant
	// plus one linear PWL piece, which is exactly what the 2-piece rectifier
	// PWL costs. Exact-vs-PWL cost parity for ReLU layers is by construction
	// in the model and measured by `apds-bench -seq`.
	OpsPerExactMoments = OpsPerConstPiece + OpsPerLinearPiece
)

// Options configures a Propagator.
type Options struct {
	// TanhPieces is the PWL piece count approximating tanh layers.
	// The paper uses 7 in all experiments. Defaults to 7.
	TanhPieces int
	// SigmoidPieces is the PWL piece count approximating sigmoid layers.
	// Defaults to 7.
	SigmoidPieces int
	// ActivationMoments is the propagator-wide default activation-moment
	// backend for layers whose own nn.Layer.Moments is MomentsAuto.
	// MomentsAuto (the zero value) resolves to exact for the rectifier
	// family (ReLU, leaky-ReLU — where the closed form strictly dominates
	// the 2-piece PWL's conditioning at equal modeled cost) and PWL for
	// everything else. MomentsExact on a tanh/sigmoid layer is a
	// construction error.
	ActivationMoments nn.MomentMode
}

func (o *Options) fillDefaults() {
	if o.TanhPieces == 0 {
		o.TanhPieces = 7
	}
	if o.SigmoidPieces == 0 {
		o.SigmoidPieces = 7
	}
}

// Option configures optional Propagator behavior beyond the numeric Options
// struct (which is part of the serialized experiment configs and stays
// purely about PWL fidelity).
type Option func(*Propagator)

// WithWorkers bounds the number of goroutines a batched propagation fans its
// row chunks across. n <= 0 (the default) selects runtime.GOMAXPROCS(0);
// n == 1 forces the single-threaded batch path (deterministic scheduling,
// useful for benchmarking the kernels themselves). The effective worker
// count is still capped so every worker has at least a few rows.
func WithWorkers(n int) Option {
	return func(p *Propagator) { p.workers = n }
}

// Propagator runs ApDeepSense inference over a fixed network: a single
// deterministic pass that outputs the full Gaussian approximation of the
// network's output distribution under dropout. It precomputes the
// element-wise squared weight matrices (for eq. 10) and the PWL activation
// approximations, so construction is paid once per model.
//
// A Propagator is safe for concurrent use: Propagate and PropagateBatch only
// read the precomputed state (the batch scratch pool is internally
// synchronized), and the optional observability hooks (SetHooks) are stored
// behind an atomic pointer.
type Propagator struct {
	net  *nn.Network
	acts []*piecewise.Func
	wsq  []*tensor.Matrix
	cost edison.Cost

	// Batched-path state (see batchprop.go): per-layer activation kernels
	// with shared-boundary truncated moments, the widest layer dimension
	// (sizing the ping-pong scratch), the largest knot count, and a pool of
	// reusable scratch buffers so the hot path is allocation-free after
	// warmup.
	kernels   []*ActKernel
	maxDim    int
	maxBounds int
	scratch   sync.Pool
	// workers bounds the batched-path fan-out (WithWorkers); <= 0 means
	// runtime.GOMAXPROCS(0), resolved per call.
	workers int

	// hooks holds the optional observability callbacks (see Hooks). Loaded
	// once per propagation call; nil costs one atomic pointer load.
	hooks atomic.Pointer[Hooks]

	// compiledProg holds the optional shape-specialized batch program
	// (SetCompiled / internal/compile). Snapshotted once per batch call;
	// uninstalled it costs one atomic pointer load.
	compiledProg atomic.Pointer[compiledHolder]

	// quantizedProg holds the optional fixed-point program (SetQuantized /
	// internal/qprop). When installed it outranks both the compiled and the
	// interpreted paths on every propagation entry point; see quantized.go.
	quantizedProg atomic.Pointer[quantizedHolder]
}

// NewPropagator prepares ApDeepSense inference for net. Optional behavior
// (e.g. WithWorkers) is passed as trailing options.
func NewPropagator(net *nn.Network, opts Options, extra ...Option) (*Propagator, error) {
	opts.fillDefaults()
	layers := net.Layers()
	p := &Propagator{
		net:     net,
		acts:    make([]*piecewise.Func, len(layers)),
		wsq:     make([]*tensor.Matrix, len(layers)),
		kernels: make([]*ActKernel, len(layers)),
		maxDim:  net.InputDim(),
	}
	for i, l := range layers {
		mode := l.Moments
		if mode == nn.MomentsAuto {
			mode = opts.ActivationMoments
		}
		f, k, err := KernelFor(l.Act, mode, opts)
		if err != nil {
			return nil, fmt.Errorf("core: prepare layer %d: %w", i, err)
		}
		p.acts[i] = f
		p.wsq[i] = l.W.Square()
		p.kernels[i] = k
		if l.OutDim() > p.maxDim {
			p.maxDim = l.OutDim()
		}
		if f.NumPieces()+1 > p.maxBounds {
			p.maxBounds = f.NumPieces() + 1
		}
	}
	p.cost = p.computeCost()
	p.scratch.New = func() any { return &batchScratch{} }
	for _, o := range extra {
		o(p)
	}
	return p, nil
}

// Workers reports the configured batched-path worker bound (0 = GOMAXPROCS).
func (p *Propagator) Workers() int {
	if p.workers <= 0 {
		return 0
	}
	return p.workers
}

// Network returns the underlying network.
func (p *Propagator) Network() *nn.Network { return p.net }

// ActivationPieces returns the PWL piece count used for layer i's
// activation.
func (p *Propagator) ActivationPieces(i int) int { return p.acts[i].NumPieces() }

// MomentsExact reports whether layer i's activation moments are served by
// the exact analytical rectifier backend (vs the PWL closed form).
func (p *Propagator) MomentsExact(i int) bool { return p.kernels[i].Exact() }

// Propagate runs the full ApDeepSense pass: the input point mass is pushed
// through every layer's dropout-aware affine map (eqs. 9–10) and PWL
// activation (eqs. 12–26), yielding the Gaussian approximation of the output
// distribution. Narrow outputs mean low uncertainty; wide outputs mean high
// uncertainty (paper §III-D summary).
func (p *Propagator) Propagate(x tensor.Vector) (GaussianVec, error) {
	if len(x) != p.net.InputDim() {
		return GaussianVec{}, fmt.Errorf("propagate: input dim %d, want %d: %w", len(x), p.net.InputDim(), ErrInput)
	}
	return p.PropagateFrom(Deterministic(x))
}

// PropagateFrom runs the moment propagation starting from an already
// Gaussian input — the entry point for hybrid models (e.g. convolutional
// front-ends, internal/conv) whose earlier stages produced a distribution.
func (p *Propagator) PropagateFrom(g GaussianVec) (GaussianVec, error) {
	if g.Dim() != p.net.InputDim() {
		return GaussianVec{}, fmt.Errorf("propagate-from: input dim %d, want %d: %w", g.Dim(), p.net.InputDim(), ErrInput)
	}
	// An installed quantized program answers the per-sample path too, so a
	// served sample sees the same arithmetic whether it arrived alone or in
	// a coalesced batch (Run is bit-identical to a RunBatch row).
	if q := p.Quantized(); q != nil {
		return q.Run(g), nil
	}
	h := p.hooks.Load()
	timed := h != nil && h.LayerTime != nil
	var t0 time.Time
	g = g.Clone()
	sc := p.scratch.Get().(*batchScratch)
	sc.warm = true
	sc.ensure(0, p.maxBounds)
	defer p.scratch.Put(sc)
	for i, l := range p.net.Layers() {
		if timed {
			t0 = time.Now()
		}
		var err error
		g, err = DenseMoments(g, l, p.wsq[i])
		if err != nil {
			return GaussianVec{}, fmt.Errorf("propagate layer %d: %w", i, err)
		}
		p.activateVec(g, i, sc)
		if timed {
			h.LayerTime(i, 1, time.Since(t0))
		}
	}
	return g, nil
}

// activateVec applies layer li's activation-moment kernel element-wise —
// the per-sample counterpart of the batched panel sweep. For PWL kernels it
// is bit-identical to ActivationMomentsVec (the kernel reproduces
// ActivationMoments exactly); for exact kernels it dispatches to the
// closed-form rectifier moments on every entry point alike, which is what
// keeps interpreted, batched, and compiled dispatch bit-identical.
func (p *Propagator) activateVec(g GaussianVec, li int, sc *batchScratch) {
	ak := p.kernels[li]
	for j := range g.Mean {
		g.Mean[j], g.Var[j] = ak.Moments(g.Mean[j], g.Var[j], sc.bounds, sc.pms)
	}
}

// PropagateTrace runs the moment propagation and additionally returns the
// Gaussian state after every layer (post-activation), index 0 being the
// first layer's output. It powers layer-wise diagnostics such as Figure 1's
// hidden-unit distribution checks and variance-flow debugging.
func (p *Propagator) PropagateTrace(x tensor.Vector) (GaussianVec, []GaussianVec, error) {
	if len(x) != p.net.InputDim() {
		return GaussianVec{}, nil, fmt.Errorf("propagate-trace: input dim %d, want %d: %w", len(x), p.net.InputDim(), ErrInput)
	}
	g := Deterministic(x)
	layers := p.net.Layers()
	trace := make([]GaussianVec, 0, len(layers))
	sc := p.scratch.Get().(*batchScratch)
	sc.warm = true
	sc.ensure(0, p.maxBounds)
	defer p.scratch.Put(sc)
	for i, l := range layers {
		var err error
		g, err = DenseMoments(g, l, p.wsq[i])
		if err != nil {
			return GaussianVec{}, nil, fmt.Errorf("propagate-trace layer %d: %w", i, err)
		}
		p.activateVec(g, i, sc)
		trace = append(trace, g.Clone())
	}
	return g, trace, nil
}

// Cost returns the modeled per-inference execution cost of the ApDeepSense
// pass (see internal/edison). It is a static property of the network shape
// and the PWL piece counts.
func (p *Propagator) Cost() edison.Cost { return p.cost }

func (p *Propagator) computeCost() edison.Cost {
	var c edison.Cost
	for i, l := range p.net.Layers() {
		in, out := int64(l.InDim()), int64(l.OutDim())
		// Mean matmul (eq. 9) and variance matmul against W² (eq. 10).
		c.DenseFLOPs += 2 * 2 * in * out
		// Element-wise prep: μ⊙p (1 pass) and (μ²+σ²)p − μ²p² (4 passes)
		// over the inputs, bias add (1 pass) over the outputs.
		c.ElementOps += 5*in + out
		// Activation moment propagation: the exact rectifier closed form per
		// element, or the PWL assembly per piece per element.
		if p.kernels[i].Exact() {
			c.ElementOps += out * OpsPerExactMoments
		} else {
			for _, piece := range p.acts[i].Pieces() {
				if piece.K == 0 {
					c.ElementOps += out * OpsPerConstPiece
				} else {
					c.ElementOps += out * OpsPerLinearPiece
				}
			}
		}
	}
	return c
}

// ForwardPassCost returns the modeled cost of ONE plain stochastic forward
// pass of net (the MCDrop primitive), for comparing estimator costs on the
// same scale.
func ForwardPassCost(net *nn.Network) edison.Cost {
	var c edison.Cost
	for _, l := range net.Layers() {
		in, out := int64(l.InDim()), int64(l.OutDim())
		c.DenseFLOPs += 2 * in * out
		c.ElementOps += out // bias add
		switch l.Act {
		case nn.ActTanh, nn.ActSigmoid:
			// Transcendental activations cost several element-op passes
			// worth of polynomial evaluation on an in-order core.
			c.ElementOps += 8 * out
		case nn.ActReLU:
			c.ElementOps += out
		}
		if l.KeepProb < 1 {
			c.RandomDraws += in
			c.ElementOps += in // mask multiply
		}
	}
	return c
}
