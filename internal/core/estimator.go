package core

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// Estimator is the common contract of the paper's uncertainty estimation
// algorithms (ApDeepSense, MCDrop-k, RDeepSense): given an input, produce a
// predictive output distribution (regression) or class probabilities
// (classification), and report the modeled per-inference cost.
type Estimator interface {
	// Name labels the estimator in reports, e.g. "ApDeepSense" or
	// "MCDrop-10".
	Name() string
	// Predict returns the Gaussian predictive distribution over the
	// network's outputs.
	Predict(x tensor.Vector) (GaussianVec, error)
	// PredictProbs returns predictive class probabilities for
	// classification networks.
	PredictProbs(x tensor.Vector) (tensor.Vector, error)
	// Cost returns the modeled execution cost of one Predict call.
	Cost() edison.Cost
}

// ApDeepSense is the paper's estimator: a Propagator plus the output
// conventions shared with the baselines (observation-noise floor for
// regression, mean-field softmax link for classification). It implements
// Estimator.
type ApDeepSense struct {
	prop *Propagator
	// obsVar is added to every predictive variance, the τ⁻¹ observation
	// noise of the Gaussian-process view.
	obsVar float64
}

var _ Estimator = (*ApDeepSense)(nil)

// NewApDeepSense builds the estimator for a dropout-trained network. obsVar
// (>= 0) is the observation-noise variance added to predictive variances.
// Trailing options (e.g. WithWorkers) configure the underlying Propagator.
func NewApDeepSense(net *nn.Network, opts Options, obsVar float64, extra ...Option) (*ApDeepSense, error) {
	if obsVar < 0 {
		return nil, fmt.Errorf("core: negative obsVar %v: %w", obsVar, ErrInput)
	}
	prop, err := NewPropagator(net, opts, extra...)
	if err != nil {
		return nil, err
	}
	return &ApDeepSense{prop: prop, obsVar: obsVar}, nil
}

// Name implements Estimator.
func (a *ApDeepSense) Name() string { return "ApDeepSense" }

// Predict implements Estimator: one deterministic moment-propagation pass.
func (a *ApDeepSense) Predict(x tensor.Vector) (GaussianVec, error) {
	g, err := a.prop.Propagate(x)
	if err != nil {
		return GaussianVec{}, err
	}
	for i := range g.Var {
		g.Var[i] += a.obsVar
	}
	return g, nil
}

// PredictProbs implements Estimator: Gaussian logits through the mean-field
// softmax link. The observation-noise floor is not applied to logits.
func (a *ApDeepSense) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	g, err := a.prop.Propagate(x)
	if err != nil {
		return nil, err
	}
	return MeanFieldSoftmax(g), nil
}

// PredictBatch implements BatchPredictor: one matrix-level moment
// propagation pass over the whole batch (Propagator.PropagateBatch) instead
// of per-sample fan-out. Each returned GaussianVec is value-identical to
// Predict on the corresponding input.
func (a *ApDeepSense) PredictBatch(inputs []tensor.Vector) ([]GaussianVec, error) {
	gb, err := a.prop.PropagateBatch(inputs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := make([]GaussianVec, gb.Batch())
	for i := range out {
		g := gb.Row(i)
		for j := range g.Var {
			g.Var[j] += a.obsVar
		}
		out[i] = g
	}
	return out, nil
}

// PredictProbsBatch implements BatchProbsPredictor: batched moment
// propagation followed by the mean-field softmax link per row.
func (a *ApDeepSense) PredictProbsBatch(inputs []tensor.Vector) ([]tensor.Vector, error) {
	gb, err := a.prop.PropagateBatch(inputs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := make([]tensor.Vector, gb.Batch())
	for i := range out {
		out[i] = MeanFieldSoftmax(gb.Row(i))
	}
	return out, nil
}

// Cost implements Estimator.
func (a *ApDeepSense) Cost() edison.Cost { return a.prop.Cost() }

// Propagator exposes the underlying moment propagator (for ablations).
func (a *ApDeepSense) Propagator() *Propagator { return a.prop }
