package core

// QuantizedProgram is a fixed-point propagation program specialized for one
// exact network at load time (see internal/qprop): int8 weight codes and
// derived squared-weight codes packed into pair-interleaved int16 panels,
// per-row dynamic activation quantization, and int32/int64 fixed-point
// accumulation, dequantizing into the same ActKernel activation-moment step
// as the float paths.
//
// Contract: unlike CompiledBatch, a quantized program is an approximation,
// not a bit-identical specialization — its accuracy contract is the a-priori
// quantization error budget of internal/oracle (ForwardQuantCond), gated
// over random networks by internal/proptest. What IS exact is row
// self-consistency: Run on a single Gaussian and RunBatch on a batch
// containing it produce Float64bits-identical rows (both call one shared
// per-row routine, and each row's dynamic quantization scales depend only on
// that row), so serving results are independent of batching decisions.
//
// When a quantized program is installed it takes dispatch priority over the
// compiled and interpreted paths on BOTH the batched and the per-sample
// entry points — a registry version serving quantized traffic answers
// Predict and coalesced PredictBatch calls from the same arithmetic.
type QuantizedProgram interface {
	// MaxBatch reports the largest batch the program accepts; quantized
	// programs are batch-size-agnostic (scratch is per row chunk) and
	// typically report a very large value.
	MaxBatch() int
	// RunBatch propagates in into out. The caller guarantees
	// 1 <= in.Batch() <= MaxBatch(), in.Dim() equal to the network input
	// dimension, and out pre-shaped to in.Batch() × output dimension. in is
	// not modified. h is the dispatching propagator's hooks snapshot (may be
	// nil); the program fires ScratchGet per row chunk and LayerTime is not
	// reported (the fixed-point path is organized row-major, not
	// layer-major). Rows whose input moments are non-finite are NaN-filled.
	RunBatch(in, out GaussianBatch, h *Hooks)
	// Run propagates a single Gaussian, bit-identical to the corresponding
	// row of RunBatch. The caller guarantees the input dimension.
	Run(g GaussianVec) GaussianVec
}

// quantizedHolder wraps the interface value so it can live behind an
// atomic.Pointer (interfaces are two words and not atomically swappable
// directly).
type quantizedHolder struct{ qp QuantizedProgram }

// SetQuantized installs (or, with nil, removes) a quantized propagation
// program. It may be called at any time, including while other goroutines
// propagate: the pointer is snapshotted once per call, so a swap applies
// atomically to subsequent propagations. Callers are expected to hold the
// program to the oracle's quantization error budget (internal/proptest does,
// over the random-network space) and to smoke-check it before installing.
func (p *Propagator) SetQuantized(qp QuantizedProgram) {
	if qp == nil {
		p.quantizedProg.Store(nil)
		return
	}
	p.quantizedProg.Store(&quantizedHolder{qp})
}

// Quantized returns the installed quantized program, or nil.
func (p *Propagator) Quantized() QuantizedProgram {
	if h := p.quantizedProg.Load(); h != nil {
		return h.qp
	}
	return nil
}
