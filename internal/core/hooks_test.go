package core

import (
	"math"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func hookTestInputs(n, dim int, seed int64) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vector, n)
	for i := range out {
		v := make(tensor.Vector, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// TestHooksFire checks every callback fires with sane arguments on both the
// sequential and batched paths.
func TestHooksFire(t *testing.T) {
	// The scratch-hit assertion below needs the first batch's pooled buffers
	// to survive until the second batch, but sync.Pool is cleared at GC; hold
	// GC off so the warm-hit expectation is deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	net := buildTestNet(t, nn.ActReLU, 0.9, 5)
	p, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var batchRows []int
	layerRows := map[int]int{} // layer → total rows reported
	var scratchHits, scratchMisses int
	p.SetHooks(&Hooks{
		BatchStart: func(rows int) {
			mu.Lock()
			batchRows = append(batchRows, rows)
			mu.Unlock()
		},
		LayerTime: func(layer, rows int, d time.Duration) {
			if d < 0 {
				t.Errorf("negative layer duration %v", d)
			}
			mu.Lock()
			layerRows[layer] += rows
			mu.Unlock()
		},
		ScratchGet: func(hit bool) {
			mu.Lock()
			if hit {
				scratchHits++
			} else {
				scratchMisses++
			}
			mu.Unlock()
		},
	})

	inputs := hookTestInputs(32, net.InputDim(), 3)
	if _, err := p.PropagateBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PropagateBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Propagate(inputs[0]); err != nil {
		t.Fatal(err)
	}

	if len(batchRows) != 2 || batchRows[0] != 32 || batchRows[1] != 32 {
		t.Errorf("BatchStart rows = %v, want [32 32]", batchRows)
	}
	// Two batches of 32 rows plus one sequential row cross every layer.
	for li := 0; li < net.NumLayers(); li++ {
		if layerRows[li] != 2*32+1 {
			t.Errorf("layer %d saw %d rows, want %d", li, layerRows[li], 2*32+1)
		}
	}
	if scratchHits+scratchMisses == 0 {
		t.Error("ScratchGet never fired")
	}
	// Repeat batches must eventually report a warm (pooled) scratch hit. One
	// repeat is not enough to assert on: under -race the runtime deliberately
	// drops a fraction of sync.Pool.Put calls, so keep batching until a hit
	// lands (the no-hit probability decays geometrically per attempt).
	for i := 0; i < 50; i++ {
		mu.Lock()
		hits := scratchHits
		mu.Unlock()
		if hits > 0 {
			break
		}
		if _, err := p.PropagateBatch(inputs); err != nil {
			t.Fatal(err)
		}
	}
	if scratchHits == 0 {
		t.Errorf("no scratch hits across 50+ repeat batches (misses=%d)", scratchMisses)
	}

	// Detach: no further callbacks.
	p.SetHooks(nil)
	before := len(batchRows)
	if _, err := p.PropagateBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if len(batchRows) != before {
		t.Error("hooks fired after SetHooks(nil)")
	}
}

// TestPropagateBatchHookedBitIdentical is the observability ground rule:
// attaching hooks must not change a single output bit, on either path, and
// PredictBatch must stay bit-identical to sequential Predict while hooked.
func TestPropagateBatchHookedBitIdentical(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
		net := buildTestNet(t, act, 0.8, 11)
		bare, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked.SetHooks(&Hooks{
			BatchStart: func(int) {},
			LayerTime:  func(int, int, time.Duration) {},
			ScratchGet: func(bool) {},
		})

		inputs := hookTestInputs(37, net.InputDim(), 9)
		want, err := bare.PropagateBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hooked.PropagateBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inputs {
			w, g := want.Row(i), got.Row(i)
			for j := range w.Mean {
				if math.Float64bits(w.Mean[j]) != math.Float64bits(g.Mean[j]) ||
					math.Float64bits(w.Var[j]) != math.Float64bits(g.Var[j]) {
					t.Fatalf("%v row %d out %d: hooked batch differs: (%v,%v) vs (%v,%v)",
						act, i, j, g.Mean[j], g.Var[j], w.Mean[j], w.Var[j])
				}
			}
		}

		// Batched vs sequential under hooks, element for element.
		for i, x := range inputs {
			seq, err := hooked.Propagate(x)
			if err != nil {
				t.Fatal(err)
			}
			g := got.Row(i)
			for j := range seq.Mean {
				if math.Float64bits(seq.Mean[j]) != math.Float64bits(g.Mean[j]) ||
					math.Float64bits(seq.Var[j]) != math.Float64bits(g.Var[j]) {
					t.Fatalf("%v row %d out %d: batch (%v,%v) != sequential (%v,%v) under hooks",
						act, i, j, g.Mean[j], g.Var[j], seq.Mean[j], seq.Var[j])
				}
			}
		}
	}
}

// TestSetHooksConcurrent swaps hooks while other goroutines propagate;
// tools/check.sh runs this under -race to validate the atomic handoff.
func TestSetHooksConcurrent(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 17)
	p, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := hookTestInputs(16, net.InputDim(), 21)

	var calls atomic.Int64
	h := &Hooks{LayerTime: func(int, int, time.Duration) { calls.Add(1) }}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := p.PropagateBatch(inputs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			p.SetHooks(h)
		} else {
			p.SetHooks(nil)
		}
	}
	close(stop)
	wg.Wait()
	if calls.Load() == 0 {
		t.Log("hook swap race produced no hooked batches (timing-dependent, not a failure)")
	}
}
