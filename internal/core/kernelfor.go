package core

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
)

// KernelFor resolves one activation to its PWL representation and its
// activation-moment kernel under the given mode — the single source of truth
// for moment-backend dispatch, shared by the dense propagator and the
// sequence paths (internal/conv, internal/rnn). MomentsAuto resolves to the
// exact analytical backend for the rectifier family and the PWL closed form
// for everything else; MomentsExact on an activation without a closed form
// (tanh, sigmoid) is an error. opts supplies the PWL piece counts (zero
// values take the paper's defaults); its own ActivationMoments field is NOT
// consulted — pass the already-resolved mode.
func KernelFor(act nn.Activation, mode nn.MomentMode, opts Options) (*piecewise.Func, *ActKernel, error) {
	opts.fillDefaults()
	var (
		f   *piecewise.Func
		err error
	)
	switch act {
	case nn.ActIdentity:
		f = piecewise.Identity()
	case nn.ActReLU:
		f = piecewise.ReLU()
	case nn.ActLeakyReLU:
		f = piecewise.LeakyReLU(nn.LeakyAlpha)
	case nn.ActTanh:
		f, err = piecewise.Tanh(opts.TanhPieces)
	case nn.ActSigmoid:
		f, err = piecewise.Sigmoid(opts.SigmoidPieces)
	default:
		err = fmt.Errorf("unsupported activation %v: %w", act, ErrInput)
	}
	if err != nil {
		return nil, nil, err
	}
	_, rect := act.Rectifier()
	switch {
	case mode == nn.MomentsExact && !rect && act != nn.ActIdentity:
		return nil, nil, fmt.Errorf("no exact moment form for %v: %w", act, ErrInput)
	case rect && mode != nn.MomentsPWL:
		// Exact is the rectifier default (MomentsAuto) and the explicit
		// request; the PWL identity kernel is already exact for identity
		// layers, so only rectifiers dispatch to the closed form.
		k, kerr := NewExactActKernel(f)
		if kerr != nil {
			return nil, nil, kerr
		}
		return f, k, nil
	default:
		return f, NewActKernel(f), nil
	}
}
