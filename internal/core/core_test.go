package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestGaussianVecBasics(t *testing.T) {
	g := Deterministic(tensor.Vector{1, 2})
	if g.Dim() != 2 {
		t.Fatalf("Dim = %d", g.Dim())
	}
	if g.Var[0] != 0 || g.Var[1] != 0 {
		t.Error("Deterministic should have zero variance")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	g.Var[1] = 4
	if s := g.Std(1); s != 2 {
		t.Errorf("Std = %v, want 2", s)
	}
	cl := g.Clone()
	cl.Mean[0] = 99
	if g.Mean[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestGaussianVecValidate(t *testing.T) {
	bad := []GaussianVec{
		{Mean: tensor.Vector{1}, Var: tensor.Vector{1, 2}},
		{Mean: tensor.Vector{math.NaN()}, Var: tensor.Vector{1}},
		{Mean: tensor.Vector{math.Inf(1)}, Var: tensor.Vector{1}},
		{Mean: tensor.Vector{0}, Var: tensor.Vector{-1}},
		{Mean: tensor.Vector{0}, Var: tensor.Vector{math.NaN()}},
	}
	for i, g := range bad {
		if err := g.Validate(); !errors.Is(err, ErrInput) {
			t.Errorf("case %d: err = %v, want ErrInput", i, err)
		}
	}
}

// TestDenseMomentsVsMonteCarlo is the load-bearing correctness test for
// eq. 9/10: the closed-form mean and variance of y = (x ⊙ z) W + b must match
// Monte Carlo estimates over both the dropout masks and the Gaussian input.
func TestDenseMomentsVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in, out := 6, 4
	w := tensor.NewMatrix(in, out)
	w.RandomNormal(rng, 0, 1)
	b := make(tensor.Vector, out)
	for j := range b {
		b[j] = rng.NormFloat64()
	}
	layer := &nn.Layer{W: w, B: b, Act: nn.ActIdentity, KeepProb: 0.7}

	g := NewGaussianVec(in)
	for i := 0; i < in; i++ {
		g.Mean[i] = rng.NormFloat64() * 2
		g.Var[i] = rng.Float64() * 1.5
	}

	got, err := DenseMoments(g, layer, w.Square())
	if err != nil {
		t.Fatalf("DenseMoments: %v", err)
	}

	const samples = 400000
	sumY := make(tensor.Vector, out)
	sumY2 := make(tensor.Vector, out)
	x := make(tensor.Vector, in)
	y := make(tensor.Vector, out)
	for s := 0; s < samples; s++ {
		for i := 0; i < in; i++ {
			x[i] = g.Mean[i] + math.Sqrt(g.Var[i])*rng.NormFloat64()
			if rng.Float64() >= layer.KeepProb {
				x[i] = 0
			}
		}
		w.MulVecInto(x, y)
		for j := 0; j < out; j++ {
			v := y[j] + b[j]
			sumY[j] += v
			sumY2[j] += v * v
		}
	}
	for j := 0; j < out; j++ {
		mcMean := sumY[j] / samples
		mcVar := sumY2[j]/samples - mcMean*mcMean
		if math.Abs(got.Mean[j]-mcMean) > 0.03 {
			t.Errorf("out %d: mean %v vs MC %v", j, got.Mean[j], mcMean)
		}
		if math.Abs(got.Var[j]-mcVar)/mcVar > 0.03 {
			t.Errorf("out %d: var %v vs MC %v", j, got.Var[j], mcVar)
		}
	}
}

func TestDenseMomentsNoDropoutDeterministic(t *testing.T) {
	// With keep = 1 and a point-mass input, the output is the plain affine
	// map with zero variance.
	w, _ := tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	layer := &nn.Layer{W: w, B: tensor.Vector{10, 20}, Act: nn.ActIdentity, KeepProb: 1}
	g := Deterministic(tensor.Vector{1, 1})
	out, err := DenseMoments(g, layer, w.Square())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Mean.Equal(tensor.Vector{14, 26}, 1e-12) {
		t.Errorf("mean = %v, want [14 26]", out.Mean)
	}
	if !out.Var.Equal(tensor.Vector{0, 0}, 1e-15) {
		t.Errorf("var = %v, want zeros", out.Var)
	}
}

func TestDenseMomentsShapeErrors(t *testing.T) {
	w := tensor.NewMatrix(2, 2)
	layer := &nn.Layer{W: w, B: tensor.NewVector(2), Act: nn.ActIdentity, KeepProb: 1}
	if _, err := DenseMoments(NewGaussianVec(3), layer, w.Square()); !errors.Is(err, ErrInput) {
		t.Errorf("dim err = %v, want ErrInput", err)
	}
	if _, err := DenseMoments(NewGaussianVec(2), layer, tensor.NewMatrix(3, 3)); !errors.Is(err, ErrInput) {
		t.Errorf("wsq err = %v, want ErrInput", err)
	}
}

// TestActivationMomentsReLUExact: the generic PWL moment propagation through
// the 2-piece ReLU must match the closed-form rectified-Gaussian moments.
func TestActivationMomentsReLUExact(t *testing.T) {
	relu := piecewise.ReLU()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		mu := rng.NormFloat64() * 3
		v := rng.Float64() * 4
		gm, gv := ActivationMoments(mu, v, relu)
		em, ev := ReLUMoments(mu, v)
		if math.Abs(gm-em) > 1e-9 {
			t.Fatalf("mu=%v v=%v: mean %v vs exact %v", mu, v, gm, em)
		}
		if math.Abs(gv-ev) > 1e-9 {
			t.Fatalf("mu=%v v=%v: var %v vs exact %v", mu, v, gv, ev)
		}
	}
}

// TestActivationMomentsVsMonteCarlo validates the PWL moment propagation
// against sampling for tanh and sigmoid approximations.
func TestActivationMomentsVsMonteCarlo(t *testing.T) {
	tanh7, err := piecewise.Tanh(7)
	if err != nil {
		t.Fatal(err)
	}
	sig7, err := piecewise.Sigmoid(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, f := range []*piecewise.Func{tanh7, sig7, piecewise.ReLU(), piecewise.Identity()} {
		for trial := 0; trial < 20; trial++ {
			mu := rng.NormFloat64() * 2
			v := 0.05 + rng.Float64()*3
			gm, gv := ActivationMoments(mu, v, f)

			const samples = 300000
			var sum, sum2 float64
			sd := math.Sqrt(v)
			for s := 0; s < samples; s++ {
				y := f.Eval(mu + sd*rng.NormFloat64())
				sum += y
				sum2 += y * y
			}
			mcMean := sum / samples
			mcVar := sum2/samples - mcMean*mcMean
			if math.Abs(gm-mcMean) > 0.01+0.01*math.Abs(mcMean) {
				t.Errorf("%s mu=%.3f v=%.3f: mean %v vs MC %v", f.Name(), mu, v, gm, mcMean)
			}
			tol := 0.02*mcVar + 1e-4
			if math.Abs(gv-mcVar) > tol {
				t.Errorf("%s mu=%.3f v=%.3f: var %v vs MC %v", f.Name(), mu, v, gv, mcVar)
			}
		}
	}
}

func TestActivationMomentsPointMass(t *testing.T) {
	tanh7, _ := piecewise.Tanh(7)
	m, v := ActivationMoments(0.8, 0, tanh7)
	if v != 0 {
		t.Errorf("point-mass variance = %v, want 0", v)
	}
	if math.Abs(m-tanh7.Eval(0.8)) > 1e-12 {
		t.Errorf("point-mass mean = %v, want f(0.8) = %v", m, tanh7.Eval(0.8))
	}
}

func TestActivationMomentsIdentityPassThrough(t *testing.T) {
	id := piecewise.Identity()
	m, v := ActivationMoments(1.5, 2.5, id)
	if math.Abs(m-1.5) > 1e-9 || math.Abs(v-2.5) > 1e-9 {
		t.Errorf("identity moments = (%v, %v), want (1.5, 2.5)", m, v)
	}
}

// Property: variance out of a PWL activation is bounded by k_max² times the
// input variance (a 1-Lipschitz-per-piece contraction argument), and is
// never negative.
func TestPropertyActivationVarianceBounds(t *testing.T) {
	tanh7, _ := piecewise.Tanh(7)
	var kmax float64
	for _, p := range tanh7.Pieces() {
		if k := math.Abs(p.K); k > kmax {
			kmax = k
		}
	}
	f := func(mu, rawVar float64) bool {
		if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(rawVar) || math.IsInf(rawVar, 0) {
			return true
		}
		v := math.Abs(rawVar)
		if v > 1e6 {
			v = math.Mod(v, 1e6)
		}
		if math.Abs(mu) > 1e6 {
			mu = math.Mod(mu, 1e6)
		}
		_, gv := ActivationMoments(mu, v, tanh7)
		return gv >= 0 && gv <= kmax*kmax*v*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReLUMomentsEdgeCases(t *testing.T) {
	// Negative point mass rectifies to zero.
	m, v := ReLUMoments(-3, 0)
	if m != 0 || v != 0 {
		t.Errorf("ReLU(-3 pm) = (%v, %v), want (0, 0)", m, v)
	}
	// Positive point mass passes through.
	m, v = ReLUMoments(3, 0)
	if m != 3 || v != 0 {
		t.Errorf("ReLU(3 pm) = (%v, %v), want (3, 0)", m, v)
	}
	// Deep negative mean: mean ≈ 0 and tiny variance.
	m, v = ReLUMoments(-40, 1)
	if m > 1e-6 || v > 1e-6 || m < 0 || v < 0 {
		t.Errorf("ReLU(-40, 1) = (%v, %v), want ≈ (0, 0)", m, v)
	}
}

func buildTestNet(t *testing.T, act nn.Activation, keep float64, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{16, 16}, OutputDim: 3,
		Activation: act, OutputActivation: nn.ActIdentity,
		KeepProb: keep, Seed: seed,
	})
	if err != nil {
		t.Fatalf("nn.New: %v", err)
	}
	return net
}

// TestPropagatorVsMCDropLargeSample is the end-to-end validation of the
// whole algorithm: ApDeepSense's closed-form output Gaussian must agree with
// a very large MCDrop sample (the unbiased estimator) on a real multi-layer
// dropout network, for both ReLU and Tanh.
func TestPropagatorVsMCDropLargeSample(t *testing.T) {
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
		net := buildTestNet(t, act, 0.8, 7)
		prop, err := NewPropagator(net, Options{})
		if err != nil {
			t.Fatalf("NewPropagator: %v", err)
		}
		rng := rand.New(rand.NewSource(13))
		x := tensor.Vector{0.5, -1.2, 2.0, 0.0, 0.7}
		got, err := prop.Propagate(x)
		if err != nil {
			t.Fatalf("Propagate: %v", err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("output invalid: %v", err)
		}

		const samples = 200000
		sum := make(tensor.Vector, 3)
		sum2 := make(tensor.Vector, 3)
		for s := 0; s < samples; s++ {
			y, err := net.ForwardSample(x, rng)
			if err != nil {
				t.Fatal(err)
			}
			for j := range y {
				sum[j] += y[j]
				sum2[j] += y[j] * y[j]
			}
		}
		for j := 0; j < 3; j++ {
			mcMean := sum[j] / samples
			mcVar := sum2[j]/samples - mcMean*mcMean
			// The layer-wise approximation ignores cross-unit covariance, so
			// agreement is approximate: 10% of the MC std on the mean and
			// 35% relative on the variance is the expected regime (the paper
			// reports the same bias-variance tradeoff in §IV-D).
			if math.Abs(got.Mean[j]-mcMean) > 0.1*math.Sqrt(mcVar)+0.02 {
				t.Errorf("%v out %d: mean %v vs MC %v (mcStd %v)", act, j, got.Mean[j], mcMean, math.Sqrt(mcVar))
			}
			if relErr := math.Abs(got.Var[j]-mcVar) / mcVar; relErr > 0.35 {
				t.Errorf("%v out %d: var %v vs MC %v (rel %v)", act, j, got.Var[j], mcVar, relErr)
			}
		}
	}
}

func TestPropagatorNoDropoutIsExactForward(t *testing.T) {
	// With keep = 1 everywhere and ReLU (exactly PWL), ApDeepSense reduces
	// to the plain forward pass with zero variance.
	net := buildTestNet(t, nn.ActReLU, 1, 11)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, -0.5, 0.3, 2, -1}
	g, err := prop.Propagate(x)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Mean.Equal(fwd, 1e-9) {
		t.Errorf("mean %v vs forward %v", g.Mean, fwd)
	}
	for j, v := range g.Var {
		if v > 1e-12 {
			t.Errorf("var[%d] = %v, want 0", j, v)
		}
	}
}

func TestPropagatorInputValidation(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 1)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prop.Propagate(tensor.Vector{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}

func TestPropagatorOptions(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.9, 1)
	p3, err := NewPropagator(net, Options{TanhPieces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p3.ActivationPieces(0) != 3 {
		t.Errorf("pieces = %d, want 3", p3.ActivationPieces(0))
	}
	// Default is the paper's 7.
	p7, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p7.ActivationPieces(0) != 7 {
		t.Errorf("default pieces = %d, want 7", p7.ActivationPieces(0))
	}
	// Invalid piece counts surface the piecewise error.
	if _, err := NewPropagator(net, Options{TanhPieces: 4}); err == nil {
		t.Error("expected error for even piece count")
	}
}

func TestPropagatorCostScalesWithPieces(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.9, 1)
	p3, _ := NewPropagator(net, Options{TanhPieces: 3})
	p7, _ := NewPropagator(net, Options{TanhPieces: 7})
	if p7.Cost().ElementOps <= p3.Cost().ElementOps {
		t.Error("7-piece propagation should cost more element ops than 3-piece")
	}
	if p7.Cost().DenseFLOPs != p3.Cost().DenseFLOPs {
		t.Error("dense FLOPs should not depend on piece count")
	}
	// ApDeepSense dense cost is exactly 2x a forward pass (mean + variance).
	fwd := ForwardPassCost(net)
	if p7.Cost().DenseFLOPs != 2*fwd.DenseFLOPs {
		t.Errorf("dense cost %d, want 2x forward %d", p7.Cost().DenseFLOPs, fwd.DenseFLOPs)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax(tensor.Vector{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax = %v", p)
		}
	}
	// Stability under large logits.
	p = Softmax(tensor.Vector{1000, 1000, -1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-9 || p[2] > 1e-12 {
		t.Errorf("large-logit softmax = %v", p)
	}
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Errorf("softmax sums to %v", p.Sum())
	}
}

func TestMeanFieldSoftmaxModeratesConfidence(t *testing.T) {
	mean := tensor.Vector{2, 0, -1}
	sharp := MeanFieldSoftmax(GaussianVec{Mean: mean, Var: tensor.Vector{0, 0, 0}})
	fuzzy := MeanFieldSoftmax(GaussianVec{Mean: mean, Var: tensor.Vector{50, 50, 50}})
	if math.Abs(sharp.Sum()-1) > 1e-12 || math.Abs(fuzzy.Sum()-1) > 1e-12 {
		t.Fatal("probabilities must sum to 1")
	}
	// Zero variance reproduces the plain softmax.
	plain := Softmax(mean)
	if !sharp.Equal(plain, 1e-12) {
		t.Errorf("zero-variance mean-field %v != softmax %v", sharp, plain)
	}
	// High variance moderates toward uniform: top-class probability drops.
	if fuzzy[0] >= sharp[0] {
		t.Errorf("high variance should lower top prob: %v vs %v", fuzzy[0], sharp[0])
	}
}

func TestMeanFieldSoftmaxVsSampled(t *testing.T) {
	g := GaussianVec{Mean: tensor.Vector{1.0, -0.5, 0.2}, Var: tensor.Vector{0.5, 1.5, 0.1}}
	rng := rand.New(rand.NewSource(77))
	sampled, err := SampledSoftmax(g, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	mf := MeanFieldSoftmax(g)
	// The moderation approximation treats each logit independently, so a few
	// percent of per-class bias is expected; it must stay in that regime.
	for i := range mf {
		if math.Abs(mf[i]-sampled[i]) > 0.05 {
			t.Errorf("class %d: mean-field %v vs sampled %v", i, mf[i], sampled[i])
		}
	}
}

// TestSampledSoftmaxRejectsNonPositiveN pins the explicit error contract: a
// non-positive sample count used to silently divide by zero and return an
// all-NaN vector.
func TestSampledSoftmaxRejectsNonPositiveN(t *testing.T) {
	g := GaussianVec{Mean: tensor.Vector{1, 0}, Var: tensor.Vector{0.1, 0.2}}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, -5} {
		p, err := SampledSoftmax(g, n, rng)
		if !errors.Is(err, ErrInput) {
			t.Errorf("n=%d: err = %v, want ErrInput", n, err)
		}
		if p != nil {
			t.Errorf("n=%d: got vector %v, want nil", n, p)
		}
	}
	// The happy path still returns a proper distribution.
	p, err := SampledSoftmax(g, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasNaN() || math.Abs(p.Sum()-1) > 1e-12 {
		t.Errorf("n=50: probs %v", p)
	}
}

func TestPropagatorConcurrentUse(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.8, 3)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 2, 3, 4, 5}
	want, err := prop.Propagate(x)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				g, err := prop.Propagate(x)
				if err != nil {
					done <- err
					return
				}
				if !g.Mean.Equal(want.Mean, 0) || !g.Var.Equal(want.Var, 0) {
					done <- errors.New("concurrent result differs")
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
