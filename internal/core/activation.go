package core

import (
	"math"

	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
)

// SigmaFloor is the relative standard deviation below which an input is
// treated as a point mass, avoiding 0/0 in the truncated-moment integrals.
// Exported so the numerical oracle (internal/oracle) can replicate the exact
// same cutoff: the point-mass shortcut is part of the propagation's contract,
// and a reference implementation with a different floor would disagree with
// the fast paths near the threshold by more than rounding error.
const SigmaFloor = 1e-12

// ActivationMoments pushes a scalar Gaussian N(mu, variance) through the
// piece-wise linear function f and returns the mean and variance of the
// output, implementing the paper's equations (12)–(26).
//
// The computation works in input space: for piece p with y = k·x + c over
// (a_p, b_p), using the truncated partial moments D_p, M_p, V_p of
// N(mu, variance) over the piece (stats.TruncatedMoments, eqs. 23–25),
//
//	E_p[y]            = (k·mu + c)·D_p + k·M_p                      (eq. 18 / 21)
//	E_p[(y − μ_y)²]   = k²·V_p + 2·k·d·M_p + d²·D_p,  d = k·mu+c−μ_y (eq. 20 / 22)
//
// which is algebraically identical to the paper's output-space formulation
// but avoids special-casing the sign of k, and degrades gracefully to the
// k = 0 constant-piece equations. Two passes (mean, then centered variance)
// keep the variance numerically stable.
func ActivationMoments(mu, variance float64, f *piecewise.Func) (outMean, outVar float64) {
	sigma := math.Sqrt(variance)
	if sigma <= SigmaFloor*(1+math.Abs(mu)) {
		// Point mass: the PWL function maps it to another point mass.
		return f.Eval(mu), 0
	}

	// Stack-allocate the per-piece moments for the common piece counts.
	n := f.NumPieces()
	var pmArr [16]stats.PartialMoments
	pms := pmArr[:]
	if n > len(pmArr) {
		pms = make([]stats.PartialMoments, n)
	}
	for i := 0; i < n; i++ {
		p := f.Piece(i)
		pms[i] = stats.TruncatedMoments(p.A, p.B, mu, sigma)
	}

	for i := 0; i < n; i++ {
		p := f.Piece(i)
		outMean += (p.K*mu+p.C)*pms[i].D + p.K*pms[i].M
	}
	for i := 0; i < n; i++ {
		p := f.Piece(i)
		d := p.K*mu + p.C - outMean
		outVar += p.K*p.K*pms[i].V + 2*p.K*d*pms[i].M + d*d*pms[i].D
	}
	if outVar < 0 {
		outVar = 0
	}
	return outMean, outVar
}

// ActivationMomentsVec applies ActivationMoments element-wise, writing the
// results back into g in place.
func ActivationMomentsVec(g GaussianVec, f *piecewise.Func) {
	for i := range g.Mean {
		g.Mean[i], g.Var[i] = ActivationMoments(g.Mean[i], g.Var[i], f)
	}
}

// ReLUMoments computes the exact rectified-Gaussian moments for
// y = max(0, x), x ~ N(mu, variance). It is the closed-form special case of
// ActivationMoments with the two-piece ReLU and exists both as a fast path
// and as an independent cross-check used by the test suite:
//
//	E[y]   = mu·Φ(α) + sigma·φ(α),            α = mu/sigma
//	E[y²]  = (mu² + sigma²)·Φ(α) + mu·sigma·φ(α)
//	Var[y] = E[y²] − E[y]²
func ReLUMoments(mu, variance float64) (outMean, outVar float64) {
	sigma := math.Sqrt(variance)
	if sigma <= SigmaFloor*(1+math.Abs(mu)) {
		if mu > 0 {
			return mu, 0
		}
		return 0, 0
	}
	alpha := mu / sigma
	phi := stats.NormPDF(alpha, 0, 1)
	capPhi := stats.NormCDF(alpha, 0, 1)
	outMean = mu*capPhi + sigma*phi
	second := (mu*mu+sigma*sigma)*capPhi + mu*sigma*phi
	outVar = second - outMean*outMean
	if outVar < 0 {
		outVar = 0
	}
	return outMean, outVar
}
