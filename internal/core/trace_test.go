package core

import (
	"errors"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestPropagateTraceConsistent(t *testing.T) {
	net := buildTestNet(t, nn.ActTanh, 0.8, 21)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, -1, 0.2, 0.9, -0.3}
	final, trace, err := prop.PropagateTrace(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != net.NumLayers() {
		t.Fatalf("trace length %d, want %d", len(trace), net.NumLayers())
	}
	// The last trace entry equals the final result.
	last := trace[len(trace)-1]
	if !last.Mean.Equal(final.Mean, 0) || !last.Var.Equal(final.Var, 0) {
		t.Error("last trace entry != final result")
	}
	// And the final result matches plain Propagate.
	plain, err := prop.Propagate(x)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Mean.Equal(final.Mean, 0) || !plain.Var.Equal(final.Var, 0) {
		t.Error("PropagateTrace result != Propagate result")
	}
	// Each trace entry has that layer's output width and valid moments.
	for i, l := range net.Layers() {
		if trace[i].Dim() != l.OutDim() {
			t.Errorf("trace %d dim %d, want %d", i, trace[i].Dim(), l.OutDim())
		}
		if err := trace[i].Validate(); err != nil {
			t.Errorf("trace %d invalid: %v", i, err)
		}
	}
	// Trace entries are snapshots: mutating one must not affect re-runs.
	trace[0].Mean[0] = 1e9
	again, err := prop.Propagate(x)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Mean.Equal(final.Mean, 0) {
		t.Error("mutating trace changed future propagations")
	}
}

func TestPropagateTraceValidation(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 3)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prop.PropagateTrace(tensor.Vector{1}); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
}

func TestPropagateFromValidation(t *testing.T) {
	net := buildTestNet(t, nn.ActReLU, 0.9, 3)
	prop, err := NewPropagator(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prop.PropagateFrom(NewGaussianVec(2)); !errors.Is(err, ErrInput) {
		t.Errorf("err = %v, want ErrInput", err)
	}
	// PropagateFrom with a point mass equals Propagate.
	x := tensor.Vector{1, 2, 3, 4, 5}
	a, err := prop.Propagate(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := prop.PropagateFrom(Deterministic(x))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mean.Equal(b.Mean, 0) || !a.Var.Equal(b.Var, 0) {
		t.Error("PropagateFrom(point mass) != Propagate")
	}
	// A Gaussian input with variance must produce more output variance than
	// the point mass.
	g := Deterministic(x)
	for i := range g.Var {
		g.Var[i] = 0.5
	}
	c, err := prop.PropagateFrom(g)
	if err != nil {
		t.Fatal(err)
	}
	var sumB, sumC float64
	for i := range c.Var {
		sumB += b.Var[i]
		sumC += c.Var[i]
	}
	if sumC <= sumB {
		t.Errorf("input variance did not increase output variance: %v vs %v", sumC, sumB)
	}
	// PropagateFrom must not mutate its input.
	if g.Var[0] != 0.5 {
		t.Error("PropagateFrom mutated its input")
	}
}
