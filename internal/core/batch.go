package core

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// PredictBatch runs est.Predict over a batch of inputs, fanning the work out
// across up to workers goroutines (<= 0 selects GOMAXPROCS). Results are
// returned in input order; the first error cancels the batch.
//
// Estimator implementations in this repository are safe for concurrent
// Predict calls (the ApDeepSense propagator is read-only after construction;
// MCDrop serializes its RNG internally), so gateway-style deployments can
// use this to saturate multicore hosts.
func PredictBatch(est Estimator, inputs []tensor.Vector, workers int) ([]GaussianVec, error) {
	out := make([]GaussianVec, len(inputs))
	err := forEachInput(len(inputs), workers, func(i int) error {
		g, err := est.Predict(inputs[i])
		if err != nil {
			return fmt.Errorf("core: batch input %d: %w", i, err)
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictProbsBatch is PredictBatch for classification probabilities.
func PredictProbsBatch(est Estimator, inputs []tensor.Vector, workers int) ([]tensor.Vector, error) {
	out := make([]tensor.Vector, len(inputs))
	err := forEachInput(len(inputs), workers, func(i int) error {
		p, err := est.PredictProbs(inputs[i])
		if err != nil {
			return fmt.Errorf("core: batch input %d: %w", i, err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachInput distributes indices [0, n) over a worker pool and collects
// the first error.
func forEachInput(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					// Drain remaining work quickly; producers stop via the
					// shared error check below.
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
