package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// BatchPredictor is implemented by estimators with a native batched
// prediction fast path — ApDeepSense propagates the whole batch as a pair of
// B×D moment matrices (see Propagator.PropagateBatch). PredictBatch
// dispatches to it when available.
type BatchPredictor interface {
	PredictBatch(inputs []tensor.Vector) ([]GaussianVec, error)
}

// BatchProbsPredictor is BatchPredictor for classification probabilities.
type BatchProbsPredictor interface {
	PredictProbsBatch(inputs []tensor.Vector) ([]tensor.Vector, error)
}

var (
	_ BatchPredictor      = (*ApDeepSense)(nil)
	_ BatchProbsPredictor = (*ApDeepSense)(nil)
)

// PredictBatch runs est.Predict over a batch of inputs. Estimators that
// implement BatchPredictor (ApDeepSense) take their matrix-level fast path —
// one batched pass, internally row-parallel — and workers is ignored.
// Everything else (MCDrop, RDeepSense) fans out across up to workers
// goroutines (<= 0 selects GOMAXPROCS). Results are returned in input order;
// the first error cancels the batch.
//
// Estimator implementations in this repository are safe for concurrent
// Predict calls (the ApDeepSense propagator is read-only after construction;
// MCDrop serializes its RNG internally), so gateway-style deployments can
// use this to saturate multicore hosts.
func PredictBatch(est Estimator, inputs []tensor.Vector, workers int) ([]GaussianVec, error) {
	if bp, ok := est.(BatchPredictor); ok {
		return bp.PredictBatch(inputs)
	}
	out := make([]GaussianVec, len(inputs))
	err := forEachInput(len(inputs), workers, func(i int) error {
		g, err := est.Predict(inputs[i])
		if err != nil {
			return fmt.Errorf("core: batch input %d: %w", i, err)
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictProbsBatch is PredictBatch for classification probabilities.
func PredictProbsBatch(est Estimator, inputs []tensor.Vector, workers int) ([]tensor.Vector, error) {
	if bp, ok := est.(BatchProbsPredictor); ok {
		return bp.PredictProbsBatch(inputs)
	}
	out := make([]tensor.Vector, len(inputs))
	err := forEachInput(len(inputs), workers, func(i int) error {
		p, err := est.PredictProbs(inputs[i])
		if err != nil {
			return fmt.Errorf("core: batch input %d: %w", i, err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachInput distributes indices [0, n) over a worker pool and collects
// the first error. After an error, the producer stops feeding new indices
// and workers drain the already-queued remainder without executing it, so a
// failing batch does not run all n inputs.
func forEachInput(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stop     atomic.Bool
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if stop.Load() {
					continue // drain without executing
				}
				if err := fn(i); err != nil {
					stop.Store(true)
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stop.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
