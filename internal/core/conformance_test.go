// MC-oracle conformance suite: the closed-form moment propagation must
// agree with the sampling estimator it replaces (MCDrop, Gal & Ghahramani —
// the paper's reference algorithm) on random multi-layer dropout networks,
// not just on hand-derived fixtures. This is the statistical backstop for
// every later optimization of the propagation path: a change that keeps the
// fixtures but breaks the distributional claim fails here.
//
// The package is core_test (external) so it can drive internal/mcdrop
// against internal/core without an import cycle.
package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// mcOracleK is the MCDrop sample count. At k = 20000 the sampling error of
// the MC mean is mcStd/√k ≈ 0.7% of mcStd and the relative error of the MC
// variance is √(2/(k−1)) ≈ 1%, small enough that the tolerance below is
// dominated by the documented approximation bias, not by sampling noise.
const mcOracleK = 20000

// zBound is the z-score allowance on the sampling-error terms. 4σ has a
// per-comparison false-positive rate of ~6e-5; with a seeded RNG the test
// is deterministic anyway — the bound documents the statistical claim.
const zBound = 4.0

// The closed-form propagation is not exact: it drops cross-unit covariance
// and moment-matches a Gaussian after every activation (paper §IV-D
// discusses the resulting bias). These terms bound that model error,
// consistent with the regime TestPropagatorVsMCDropLargeSample pins:
// meanBiasFrac·mcStd + meanBiasAbs on the mean, and a variance bound that
// scales with depth — each hidden layer both drops that layer's cross-unit
// covariance and re-Gaussianizes, so the bias compounds (measured worst
// cases on this sweep: 0.11 at 1 hidden layer, 0.34 at 2, 0.69 at 3).
const (
	meanBiasFrac       = 0.15
	meanBiasAbs        = 0.02
	varBiasRelPerLayer = 0.30
)

// Hidden widths for 2-, 3-, and 4-layer networks. The covariance-dropping
// approximation is a wide-layer argument (many weakly correlated units per
// dot product), so the sweep stays in that regime; very narrow layers can
// legitimately exceed varBiasRel.
var conformanceHiddens = [][]int{{32}, {32, 24}, {32, 24, 16}}

func conformanceInput(dim int, rng *rand.Rand) tensor.Vector {
	x := make(tensor.Vector, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestMCOracleConformance sweeps random networks over activation × keep ×
// depth (2–4 layers) and checks ApDeepSense's Predict mean/variance against
// MCDrop at k = 20000 within sampling-error + approximation-bias bounds.
// With keep = 1 the dropout distribution is a point mass, so the comparison
// collapses to an exact one (zero variance, deterministic mean) and only
// the PWL activation approximation separates the two estimators.
//
// The whole sweep must stay fast (< 30 s wall, CI budget); it currently
// runs in a few seconds.
func TestMCOracleConformance(t *testing.T) {
	start := time.Now()
	var seed int64 = 100

	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
		for _, keep := range []float64{0.8, 0.9, 1.0} {
			for _, hidden := range conformanceHiddens {
				seed++
				name := fmt.Sprintf("%v/keep=%.1f/layers=%d", act, keep, len(hidden)+1)
				t.Run(name, func(t *testing.T) {
					net, err := nn.New(nn.Config{
						InputDim: 4, Hidden: hidden, OutputDim: 2,
						Activation: act, OutputActivation: nn.ActIdentity,
						KeepProb: keep, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					ap, err := core.NewApDeepSense(net, core.Options{}, 0)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(seed * 31))
					x := conformanceInput(net.InputDim(), rng)

					got, err := ap.Predict(x)
					if err != nil {
						t.Fatal(err)
					}
					if err := got.Validate(); err != nil {
						t.Fatalf("predictive distribution invalid: %v", err)
					}

					if keep == 1 {
						checkPointMass(t, net, x, got, act)
						return
					}

					mc, err := mcdrop.New(net, mcOracleK, 0, seed*17)
					if err != nil {
						t.Fatal(err)
					}
					oracle, err := mc.Predict(x)
					if err != nil {
						t.Fatal(err)
					}
					for j := range got.Mean {
						mcStd := math.Sqrt(oracle.Var[j])
						// Sampling error of the MC mean plus the modeled
						// approximation bias.
						meanTol := zBound*mcStd/math.Sqrt(mcOracleK) +
							meanBiasFrac*mcStd + meanBiasAbs
						if d := math.Abs(got.Mean[j] - oracle.Mean[j]); d > meanTol {
							t.Errorf("out %d: mean %.6g vs MC %.6g (|Δ|=%.3g > tol %.3g)",
								j, got.Mean[j], oracle.Mean[j], d, meanTol)
						}
						// Relative sampling error of the MC variance plus
						// the depth-scaled model bias.
						varTol := varBiasRelPerLayer*float64(len(hidden)) +
							zBound*math.Sqrt(2/float64(mcOracleK-1))
						if rel := math.Abs(got.Var[j]-oracle.Var[j]) / oracle.Var[j]; rel > varTol {
							t.Errorf("out %d: var %.6g vs MC %.6g (rel %.3g > tol %.3g)",
								j, got.Var[j], oracle.Var[j], rel, varTol)
						}
					}
				})
			}
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("conformance sweep took %v, budget is 30s", elapsed)
	}
}

// checkPointMass is the keep = 1 leg: no dropout means the predictive
// distribution is a point mass at the deterministic forward pass. ReLU is
// exactly piece-wise linear so the mean must match to float precision;
// tanh goes through the 7-piece PWL approximation, whose sup error
// compounds through depth but stays well under 0.1 on these widths.
func checkPointMass(t *testing.T, net *nn.Network, x tensor.Vector, got core.GaussianVec, act nn.Activation) {
	t.Helper()
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	meanTol := 1e-9
	if act == nn.ActTanh {
		meanTol = 0.1
	}
	for j := range got.Mean {
		if d := math.Abs(got.Mean[j] - want[j]); d > meanTol {
			t.Errorf("out %d: mean %.6g vs deterministic forward %.6g (|Δ|=%.3g)", j, got.Mean[j], want[j], d)
		}
		if got.Var[j] > 1e-15 {
			t.Errorf("out %d: var %.3g, want 0 without dropout", j, got.Var[j])
		}
	}
}

// TestMCOracleBatchBitIdentity is the second conformance leg: over the same
// random-network sweep, PredictBatch must stay bit-identical to sequential
// Predict with observability hooks attached — hooks observe, they never
// perturb.
func TestMCOracleBatchBitIdentity(t *testing.T) {
	var seed int64 = 500
	for _, act := range []nn.Activation{nn.ActReLU, nn.ActTanh} {
		for _, keep := range []float64{0.8, 0.9, 1.0} {
			seed++
			net, err := nn.New(nn.Config{
				InputDim: 4, Hidden: []int{12, 10}, OutputDim: 2,
				Activation: act, OutputActivation: nn.ActIdentity,
				KeepProb: keep, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			ap, err := core.NewApDeepSense(net, core.Options{}, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			ap.Propagator().SetHooks(&core.Hooks{
				BatchStart: func(int) {},
				LayerTime:  func(int, int, time.Duration) {},
				ScratchGet: func(bool) {},
			})

			rng := rand.New(rand.NewSource(seed))
			inputs := make([]tensor.Vector, 33)
			for i := range inputs {
				inputs[i] = conformanceInput(net.InputDim(), rng)
			}
			batch, err := ap.PredictBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range inputs {
				seq, err := ap.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				for j := range seq.Mean {
					if math.Float64bits(seq.Mean[j]) != math.Float64bits(batch[i].Mean[j]) ||
						math.Float64bits(seq.Var[j]) != math.Float64bits(batch[i].Var[j]) {
						t.Fatalf("%v keep=%.1f input %d out %d: batch (%v,%v) != sequential (%v,%v)",
							act, keep, i, j, batch[i].Mean[j], batch[i].Var[j], seq.Mean[j], seq.Var[j])
					}
				}
			}
		}
	}
}
