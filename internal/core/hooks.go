package core

import "time"

// Hooks receives low-level observability callbacks from a Propagator:
// per-layer wall time, batch sizes, and scratch-pool reuse. Hook fields are
// optional — leave any nil to skip it. Implementations must be safe for
// concurrent calls (the batched path invokes them from every row-chunk
// worker) and should be cheap: they run inside the propagation hot path.
//
// A Propagator with no hooks attached pays one atomic pointer load per
// propagation call and nothing per element; see
// BenchmarkPropagateBatchNilHooks / BenchmarkPropagateBatchHooked for the
// measured overhead pair.
type Hooks struct {
	// BatchStart is called once per PropagateBatch/PropagateBatchFrom with
	// the number of rows in the batch, before any work happens.
	BatchStart func(rows int)
	// LayerTime is called after each layer finishes with the layer index,
	// the rows pushed through it, and the wall time spent. On the batched
	// path each row-chunk worker reports its own chunk, so one batch yields
	// up to GOMAXPROCS calls per layer; rows identifies the chunk size.
	LayerTime func(layer, rows int, d time.Duration)
	// ScratchGet is called once per scratch-buffer acquisition on the
	// batched path. hit is true when the pool returned a warm buffer set,
	// false when a fresh allocation was needed.
	ScratchGet func(hit bool)
}

// Note on the compiled fast path (SetCompiled): a batch that dispatches to a
// compiled program fires the same hooks the interpreted path would —
// BatchStart once at dispatch, LayerTime per fused layer step per chunk, and
// ScratchGet per free-list acquisition (hit = recycled buffer set, miss =
// overflow allocation) — so per-layer dashboards don't go dark when a model
// loads with a compiled propagator. Outputs remain bit-identical either way.

// SetHooks attaches (or, with nil, detaches) observability hooks. It may be
// called at any time, including while other goroutines propagate: the
// propagator snapshots the pointer once per call, so a swap applies to
// subsequent calls atomically.
func (p *Propagator) SetHooks(h *Hooks) { p.hooks.Store(h) }

// Hooks returns the currently attached hooks, or nil.
func (p *Propagator) Hooks() *Hooks { return p.hooks.Load() }
