// Package quantize implements post-training int8 weight quantization for
// the dropout networks — the standard footprint reduction for IoT-class
// deployment targets (the Edison's 1 GB RAM and 4 GB flash motivate it; the
// paper's DeepIoT reference [35] addresses the same pressure via structure
// compression). Weights quantize per-output-channel with symmetric scaling;
// biases stay in float64 (they are negligible in size and
// precision-critical). Inference runs either on the dequantized float
// network (Dequantize, every estimator composes unchanged) or directly on
// the integer codes via the fixed-point moment propagator in internal/qprop,
// whose accuracy internal/oracle bounds a priori per model.
package quantize

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrInput is returned (wrapped) for invalid inputs.
var ErrInput = errors.New("quantize: invalid input")

// ErrModel is returned (wrapped) whenever Load rejects serialized model
// data: undecodable streams, wrong magic or version, inconsistent shapes,
// or non-finite scales and biases — the same contract as nn.ErrModel, so
// callers distinguish "this file is not a usable quantized model" from I/O
// errors with one errors.Is check.
var ErrModel = errors.New("quantize: invalid model data")

// QMax is the symmetric int8 quantization ceiling: weight codes live in
// [-QMax, QMax]. The derived squared-weight codes (SquareCodes) reuse the
// same ceiling on [0, QMax].
const QMax = 127

// modelMagic and modelVersion guard the on-disk format so stale or foreign
// files fail loudly instead of producing silently wrong codes (the
// nn.ErrModel hardening, applied to the quantized format).
const (
	modelMagic   = "apds-qmodel"
	modelVersion = 1
)

// Layer is one quantized layer.
type Layer struct {
	InDim, OutDim int
	// W holds the int8 weight codes, row-major like tensor.Matrix.
	W []int8
	// Scales holds one dequantization scale per OUTPUT column
	// (per-channel symmetric quantization), so wide-ranged columns do not
	// destroy narrow ones. Scales are always finite and positive: a column
	// whose float peak is zero stores scale 1 over all-zero codes, and a
	// subnormal peak falls back to the peak itself rather than letting
	// peak/QMax underflow to zero.
	Scales []float64
	// B is the float64 bias.
	B []float64
	// Act and KeepProb mirror the source layer.
	Act      nn.Activation
	KeepProb float64
}

// Model is a quantized network.
type Model struct {
	Layers []Layer
}

// columnScale picks the symmetric per-column scale for a peak magnitude.
// peak == 0 (all-zero column) gets scale 1 over all-zero codes; a subnormal
// peak whose peak/QMax quotient underflows to zero gets the peak itself
// (codes land in {-1, 0, 1} and dequantization stays exact at the peak).
// Either way the scale is finite and strictly positive for finite peaks.
func columnScale(peak float64) float64 {
	if peak == 0 {
		return 1
	}
	s := peak / QMax
	if s == 0 {
		return peak
	}
	// For peaks near MaxFloat64 the rounded quotient can sit a hair above
	// peak/QMax, making the worst dequantized weight QMax·s overflow; walk
	// the scale down an ulp until the product is finite again.
	for math.IsInf(QMax*s, 0) {
		s = math.Nextafter(s, 0)
	}
	return s
}

// Quantize converts a trained network into the int8 representation. Every
// weight must be finite; a network with NaN or ±Inf weights is rejected
// (wrapped ErrInput) rather than silently saturating codes.
func Quantize(net *nn.Network) (*Model, error) {
	if net == nil {
		return nil, fmt.Errorf("nil network: %w", ErrInput)
	}
	m := &Model{}
	for li, l := range net.Layers() {
		for _, w := range l.W.Data {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("layer %d has non-finite weights: %w", li, ErrInput)
			}
		}
		q := Layer{
			InDim: l.InDim(), OutDim: l.OutDim(),
			W:      make([]int8, l.InDim()*l.OutDim()),
			Scales: make([]float64, l.OutDim()),
			B:      append([]float64(nil), l.B...),
			Act:    l.Act, KeepProb: l.KeepProb,
		}
		// Per-output-column max magnitude.
		for j := 0; j < q.OutDim; j++ {
			var peak float64
			for i := 0; i < q.InDim; i++ {
				if a := math.Abs(l.W.At(i, j)); a > peak {
					peak = a
				}
			}
			q.Scales[j] = columnScale(peak)
		}
		for i := 0; i < q.InDim; i++ {
			for j := 0; j < q.OutDim; j++ {
				// Clamp after rounding: for a subnormal-scale fallback (or
				// float noise at the peak) the quotient can round past QMax.
				code := math.Round(l.W.At(i, j) / q.Scales[j])
				if code > QMax {
					code = QMax
				}
				if code < -QMax {
					code = -QMax
				}
				q.W[i*q.OutDim+j] = int8(code)
			}
		}
		m.Layers = append(m.Layers, q)
	}
	return m, nil
}

// SquareCodes derives the squared-weight panel the variance moment needs
// (internal/core propagates Var through W²) from the int8 mean codes alone
// — no extra bytes in the serialized model. For column j with mean codes c
// and mean scale s, let m2 = max_i c_i²; then
//
//	code2_i  = round(c_i² · QMax / m2) ∈ [0, QMax]
//	scale2_j = s² · m2 / QMax
//
// so scale2·code2 ≈ (s·c)², the square of the dequantized weight. The
// re-quantization to 7 bits is what keeps the fixed-point variance
// accumulation inside the int32 overflow budget of tensor.QPairBlock; the
// reconstruction error it adds is measured exactly by the oracle's
// quantization error budget (internal/oracle), not assumed.
func (q *Layer) SquareCodes() (codes []int8, scales []float64) {
	codes = make([]int8, len(q.W))
	scales = make([]float64, q.OutDim)
	for j := 0; j < q.OutDim; j++ {
		var m2 int
		for i := 0; i < q.InDim; i++ {
			c := int(q.W[i*q.OutDim+j])
			if cc := c * c; cc > m2 {
				m2 = cc
			}
		}
		if m2 == 0 {
			// All-zero column: zero codes reconstruct exactly with any
			// scale; keep the mean scale's square for a finite value.
			scales[j] = q.Scales[j] * q.Scales[j]
			continue
		}
		scales[j] = q.Scales[j] * q.Scales[j] * float64(m2) / QMax
		for i := 0; i < q.InDim; i++ {
			c := int(q.W[i*q.OutDim+j])
			code := math.Round(float64(c*c) * QMax / float64(m2))
			if code > QMax {
				code = QMax
			}
			codes[i*q.OutDim+j] = int8(code)
		}
	}
	return codes, scales
}

// Validate checks the structural and numeric invariants of a model:
// consistent shapes, chained layer dimensions, finite positive scales,
// finite biases, valid activations, and keep probabilities in (0, 1]. Both
// Load and the fixed-point propagator call it before trusting the codes.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("empty model: %w", ErrInput)
	}
	prevOut := -1
	for li, q := range m.Layers {
		if q.InDim < 1 || q.OutDim < 1 {
			return fmt.Errorf("layer %d dims %dx%d: %w", li, q.InDim, q.OutDim, ErrInput)
		}
		if prevOut >= 0 && q.InDim != prevOut {
			return fmt.Errorf("layer %d input dim %d != previous output dim %d: %w", li, q.InDim, prevOut, ErrInput)
		}
		prevOut = q.OutDim
		if len(q.W) != q.InDim*q.OutDim || len(q.Scales) != q.OutDim || len(q.B) != q.OutDim {
			return fmt.Errorf("layer %d inconsistent shapes: %w", li, ErrInput)
		}
		for j, s := range q.Scales {
			if !(s > 0) || math.IsInf(s, 0) {
				return fmt.Errorf("layer %d scale[%d] = %v, want finite > 0: %w", li, j, s, ErrInput)
			}
		}
		for j, b := range q.B {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return fmt.Errorf("layer %d bias[%d] non-finite: %w", li, j, ErrInput)
			}
		}
		if !q.Act.Valid() {
			return fmt.Errorf("layer %d invalid activation %d: %w", li, int(q.Act), ErrInput)
		}
		if !(q.KeepProb > 0 && q.KeepProb <= 1) {
			return fmt.Errorf("layer %d keep probability %v: %w", li, q.KeepProb, ErrInput)
		}
	}
	return nil
}

// Dequantize reconstructs a float network from the quantized codes. The
// result plugs into every estimator (ApDeepSense, MCDrop) unchanged.
func (m *Model) Dequantize() (*nn.Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	layers := make([]*nn.Layer, 0, len(m.Layers))
	for _, q := range m.Layers {
		w := tensor.NewMatrix(q.InDim, q.OutDim)
		for i := 0; i < q.InDim; i++ {
			for j := 0; j < q.OutDim; j++ {
				w.Set(i, j, float64(q.W[i*q.OutDim+j])*q.Scales[j])
			}
		}
		layers = append(layers, &nn.Layer{
			W: w, B: append(tensor.Vector(nil), q.B...),
			Act: q.Act, KeepProb: q.KeepProb,
		})
	}
	return nn.FromLayers(layers)
}

// SizeBytes returns the serialized weight footprint of the quantized model
// (1 byte per weight + 8 bytes per scale/bias), for comparing against the
// float64 original.
func (m *Model) SizeBytes() int64 {
	var total int64
	for _, q := range m.Layers {
		total += int64(len(q.W)) + 8*int64(len(q.Scales)+len(q.B))
	}
	return total
}

// Float64SizeBytes returns the float64 weight footprint of a network.
func Float64SizeBytes(net *nn.Network) int64 {
	return 8 * net.Params()
}

// MaxWeightError returns the worst-case absolute weight reconstruction
// error of quantizing net: max over layers of scale/2 bounds the rounding
// error by construction, and the measured value must respect it.
func MaxWeightError(net *nn.Network, m *Model) (float64, error) {
	deq, err := m.Dequantize()
	if err != nil {
		return 0, err
	}
	orig := net.Layers()
	back := deq.Layers()
	if len(orig) != len(back) {
		return 0, fmt.Errorf("layer count mismatch: %w", ErrInput)
	}
	var worst float64
	for li := range orig {
		for i, w := range orig[li].W.Data {
			if d := math.Abs(w - back[li].W.Data[i]); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// wireLayer is the serialized form of one quantized layer.
type wireLayer struct {
	InDim, OutDim int
	Codes         []int8
	Scales        []float64
	Bias          []float64
	Act           int
	KeepProb      float64
}

// wireModel is the serialized form of a quantized model.
type wireModel struct {
	Magic   string
	Version int
	Layers  []wireLayer
}

// Save writes the quantized model in the versioned gob format.
func (m *Model) Save(w io.Writer) error {
	wm := wireModel{Magic: modelMagic, Version: modelVersion}
	for _, q := range m.Layers {
		wm.Layers = append(wm.Layers, wireLayer{
			InDim:    q.InDim,
			OutDim:   q.OutDim,
			Codes:    append([]int8(nil), q.W...),
			Scales:   append([]float64(nil), q.Scales...),
			Bias:     append([]float64(nil), q.B...),
			Act:      int(q.Act),
			KeepProb: q.KeepProb,
		})
	}
	if err := gob.NewEncoder(w).Encode(wm); err != nil {
		return fmt.Errorf("quantize: encode: %w", err)
	}
	return nil
}

// Load reads a quantized model written with Save. Every rejection —
// undecodable gob, wrong magic or version, or a model failing Validate —
// wraps ErrModel.
func Load(r io.Reader) (*Model, error) {
	var wm wireModel
	if err := gob.NewDecoder(r).Decode(&wm); err != nil {
		return nil, fmt.Errorf("quantize: decode: %v: %w", err, ErrModel)
	}
	if wm.Magic != modelMagic {
		return nil, fmt.Errorf("quantize: bad magic %q: %w", wm.Magic, ErrModel)
	}
	if wm.Version != modelVersion {
		return nil, fmt.Errorf("quantize: unsupported model version %d: %w", wm.Version, ErrModel)
	}
	m := &Model{}
	for _, wl := range wm.Layers {
		m.Layers = append(m.Layers, Layer{
			InDim:    wl.InDim,
			OutDim:   wl.OutDim,
			W:        wl.Codes,
			Scales:   wl.Scales,
			B:        wl.Bias,
			Act:      nn.Activation(wl.Act),
			KeepProb: wl.KeepProb,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrModel)
	}
	return m, nil
}
