// Package quantize implements post-training int8 weight quantization for
// the dropout networks — the standard footprint reduction for IoT-class
// deployment targets (the Edison's 1 GB RAM and 4 GB flash motivate it; the
// paper's DeepIoT reference [35] addresses the same pressure via structure
// compression). Weights quantize per-layer with symmetric scaling; biases
// stay in float64 (they are negligible in size and precision-critical).
// Inference — including ApDeepSense moment propagation — runs on the
// dequantized network, so the whole estimator stack composes unchanged.
package quantize

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrInput is returned (wrapped) for invalid inputs.
var ErrInput = errors.New("quantize: invalid input")

// qMax is the symmetric int8 quantization ceiling.
const qMax = 127

// Layer is one quantized layer.
type Layer struct {
	InDim, OutDim int
	// W holds the int8 weight codes, row-major like tensor.Matrix.
	W []int8
	// Scales holds one dequantization scale per OUTPUT column
	// (per-channel symmetric quantization), so wide-ranged columns do not
	// destroy narrow ones.
	Scales []float64
	// B is the float64 bias.
	B []float64
	// Act and KeepProb mirror the source layer.
	Act      nn.Activation
	KeepProb float64
}

// Model is a quantized network.
type Model struct {
	Layers []Layer
}

// Quantize converts a trained network into the int8 representation.
func Quantize(net *nn.Network) (*Model, error) {
	if net == nil {
		return nil, fmt.Errorf("nil network: %w", ErrInput)
	}
	m := &Model{}
	for li, l := range net.Layers() {
		q := Layer{
			InDim: l.InDim(), OutDim: l.OutDim(),
			W:      make([]int8, l.InDim()*l.OutDim()),
			Scales: make([]float64, l.OutDim()),
			B:      append([]float64(nil), l.B...),
			Act:    l.Act, KeepProb: l.KeepProb,
		}
		// Per-output-column max magnitude.
		for j := 0; j < q.OutDim; j++ {
			var peak float64
			for i := 0; i < q.InDim; i++ {
				if a := math.Abs(l.W.At(i, j)); a > peak {
					peak = a
				}
			}
			if peak == 0 {
				q.Scales[j] = 1
				continue
			}
			q.Scales[j] = peak / qMax
		}
		for i := 0; i < q.InDim; i++ {
			for j := 0; j < q.OutDim; j++ {
				code := math.Round(l.W.At(i, j) / q.Scales[j])
				if code > qMax {
					code = qMax
				}
				if code < -qMax {
					code = -qMax
				}
				q.W[i*q.OutDim+j] = int8(code)
			}
		}
		m.Layers = append(m.Layers, q)
		_ = li
	}
	return m, nil
}

// Dequantize reconstructs a float network from the quantized codes. The
// result plugs into every estimator (ApDeepSense, MCDrop) unchanged.
func (m *Model) Dequantize() (*nn.Network, error) {
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("empty model: %w", ErrInput)
	}
	layers := make([]*nn.Layer, 0, len(m.Layers))
	for li, q := range m.Layers {
		if len(q.W) != q.InDim*q.OutDim || len(q.Scales) != q.OutDim || len(q.B) != q.OutDim {
			return nil, fmt.Errorf("layer %d inconsistent: %w", li, ErrInput)
		}
		w := tensor.NewMatrix(q.InDim, q.OutDim)
		for i := 0; i < q.InDim; i++ {
			for j := 0; j < q.OutDim; j++ {
				w.Set(i, j, float64(q.W[i*q.OutDim+j])*q.Scales[j])
			}
		}
		layers = append(layers, &nn.Layer{
			W: w, B: append(tensor.Vector(nil), q.B...),
			Act: q.Act, KeepProb: q.KeepProb,
		})
	}
	return nn.FromLayers(layers)
}

// SizeBytes returns the serialized weight footprint of the quantized model
// (1 byte per weight + 8 bytes per scale/bias), for comparing against the
// float64 original.
func (m *Model) SizeBytes() int64 {
	var total int64
	for _, q := range m.Layers {
		total += int64(len(q.W)) + 8*int64(len(q.Scales)+len(q.B))
	}
	return total
}

// Float64SizeBytes returns the float64 weight footprint of a network.
func Float64SizeBytes(net *nn.Network) int64 {
	return 8 * net.Params()
}

// MaxWeightError returns the worst-case absolute weight reconstruction
// error of quantizing net: max over layers of scale/2 bounds the rounding
// error by construction, and the measured value must respect it.
func MaxWeightError(net *nn.Network, m *Model) (float64, error) {
	deq, err := m.Dequantize()
	if err != nil {
		return 0, err
	}
	orig := net.Layers()
	back := deq.Layers()
	if len(orig) != len(back) {
		return 0, fmt.Errorf("layer count mismatch: %w", ErrInput)
	}
	var worst float64
	for li := range orig {
		for i, w := range orig[li].W.Data {
			if d := math.Abs(w - back[li].W.Data[i]); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// Save writes the quantized model in gob format.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("quantize: encode: %w", err)
	}
	return nil
}

// Load reads a quantized model written with Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("quantize: decode: %w", err)
	}
	return &m, nil
}
