package quantize

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

func trainedNet(t *testing.T) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var data []train.Sample
	for i := 0; i < 400; i++ {
		x := rng.Float64()*4 - 2
		data = append(data, train.Sample{
			X: tensor.Vector{x},
			Y: tensor.Vector{math.Sin(2 * x)},
		})
	}
	net, err := nn.New(nn.Config{
		InputDim: 1, Hidden: []int{24, 24}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Fit(net, data, nil, train.Config{
		Epochs: 25, BatchSize: 32, Seed: 3,
		Loss: train.MSE{}, Optimizer: train.NewAdam(0.01),
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestQuantizeDequantizeClose(t *testing.T) {
	net := trainedNet(t)
	m, err := Quantize(net)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	deq, err := m.Dequantize()
	if err != nil {
		t.Fatalf("Dequantize: %v", err)
	}
	// Outputs of the dequantized network track the original closely.
	var worst float64
	for _, x := range []float64{-1.8, -0.9, 0, 0.7, 1.6} {
		a, err := net.Forward(tensor.Vector{x})
		if err != nil {
			t.Fatal(err)
		}
		b, err := deq.Forward(tensor.Vector{x})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(a[0] - b[0]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Errorf("int8 output drift %v, want < 0.05", worst)
	}
}

func TestWeightErrorBounded(t *testing.T) {
	net := trainedNet(t)
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := MaxWeightError(net, m)
	if err != nil {
		t.Fatal(err)
	}
	// Rounding error is bounded by half the largest per-column scale.
	var maxScale float64
	for _, q := range m.Layers {
		for _, s := range q.Scales {
			if s > maxScale {
				maxScale = s
			}
		}
	}
	if worst > maxScale/2+1e-12 {
		t.Errorf("weight error %v exceeds scale/2 bound %v", worst, maxScale/2)
	}
}

func TestSizeReduction(t *testing.T) {
	net := trainedNet(t)
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	orig := Float64SizeBytes(net)
	quant := m.SizeBytes()
	if ratio := float64(quant) / float64(orig); ratio > 0.35 {
		t.Errorf("quantized size ratio %v, want < 0.35 (int8 + scales)", ratio)
	}
}

func TestApDeepSenseOnQuantizedModel(t *testing.T) {
	net := trainedNet(t)
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	deq, err := m.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	origEst, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	qEst, err := core.NewApDeepSense(deq, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.4}
	a, err := origEst.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := qEst.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Mean[0]-b.Mean[0]) > 0.05 {
		t.Errorf("quantized mean %v vs original %v", b.Mean[0], a.Mean[0])
	}
	if a.Var[0] > 1e-9 {
		if r := b.Var[0] / a.Var[0]; r < 0.7 || r > 1.4 {
			t.Errorf("quantized variance ratio %v", r)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := trainedNet(t)
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, err := m.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.3}
	ya, _ := a.Forward(x)
	yb, _ := b.Forward(x)
	if !ya.Equal(yb, 0) {
		t.Error("round-tripped quantized model differs")
	}
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("expected decode error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Quantize(nil); !errors.Is(err, ErrInput) {
		t.Errorf("nil net err = %v", err)
	}
	empty := &Model{}
	if _, err := empty.Dequantize(); !errors.Is(err, ErrInput) {
		t.Errorf("empty model err = %v", err)
	}
	bad := &Model{Layers: []Layer{{InDim: 2, OutDim: 2, W: []int8{1}, Scales: []float64{1, 1}, B: []float64{0, 0}, Act: nn.ActReLU, KeepProb: 1}}}
	if _, err := bad.Dequantize(); !errors.Is(err, ErrInput) {
		t.Errorf("inconsistent layer err = %v", err)
	}
}

func TestZeroColumn(t *testing.T) {
	// A layer with an all-zero output column quantizes without NaN.
	w := tensor.NewMatrix(2, 2)
	w.Set(0, 0, 1)
	w.Set(1, 0, -1) // column 1 all zero
	net, err := nn.FromLayers([]*nn.Layer{{
		W: w, B: tensor.NewVector(2), Act: nn.ActIdentity, KeepProb: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	deq, err := m.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	y, err := deq.Forward(tensor.Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[1] != 0 {
		t.Errorf("zero column produced %v", y[1])
	}
	if math.Abs(y[0]) > 1e-12 { // 1 - 1
		t.Errorf("y[0] = %v", y[0])
	}
}
