package quantize

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_v1.gob from the in-code fixture model")

// singleLayerNet builds a 1-layer identity network whose weight matrix is
// filled by fill(i, j).
func singleLayerNet(t *testing.T, nIn, nOut int, fill func(i, j int) float64) *nn.Network {
	t.Helper()
	w := tensor.NewMatrix(nIn, nOut)
	for i := 0; i < nIn; i++ {
		for j := 0; j < nOut; j++ {
			w.Set(i, j, fill(i, j))
		}
	}
	net, err := nn.FromLayers([]*nn.Layer{{
		W: w, B: tensor.NewVector(nOut), Act: nn.ActIdentity, KeepProb: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestQuantizeEdgeWeights is the satellite table: constant, zero,
// single-element, subnormal, and ±extreme-value weight matrices must all
// produce finite positive scales, in-range codes, and a reconstruction
// within the scale/2 bound — never Inf/NaN.
func TestQuantizeEdgeWeights(t *testing.T) {
	cases := []struct {
		name      string
		nIn, nOut int
		fill      func(i, j int) float64
	}{
		{"constant", 4, 3, func(i, j int) float64 { return 0.25 }},
		{"constant-negative", 4, 3, func(i, j int) float64 { return -1.75 }},
		{"all-zero", 4, 3, func(i, j int) float64 { return 0 }},
		{"single-element", 1, 1, func(i, j int) float64 { return -3.7 }},
		{"single-zero", 1, 1, func(i, j int) float64 { return 0 }},
		{"extreme-positive", 2, 2, func(i, j int) float64 { return math.MaxFloat64 }},
		{"extreme-mixed", 2, 2, func(i, j int) float64 {
			if (i+j)%2 == 0 {
				return math.MaxFloat64
			}
			return -math.MaxFloat64
		}},
		{"subnormal", 3, 2, func(i, j int) float64 { return math.SmallestNonzeroFloat64 }},
		{"subnormal-mixed", 3, 2, func(i, j int) float64 {
			return float64(i-1) * math.SmallestNonzeroFloat64
		}},
		{"tiny-normal", 2, 2, func(i, j int) float64 { return 1e-310 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := singleLayerNet(t, tc.nIn, tc.nOut, tc.fill)
			m, err := Quantize(net)
			if err != nil {
				t.Fatalf("Quantize: %v", err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			q := m.Layers[0]
			var maxScale float64
			for j, s := range q.Scales {
				if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
					t.Fatalf("scale[%d] = %v, want finite > 0", j, s)
				}
				if s > maxScale {
					maxScale = s
				}
			}
			for i := 0; i < q.InDim; i++ {
				for j := 0; j < q.OutDim; j++ {
					c := q.W[i*q.OutDim+j]
					if c < -QMax || c > QMax {
						t.Fatalf("code[%d,%d] = %d out of range", i, j, c)
					}
					back := float64(c) * q.Scales[j]
					if math.IsNaN(back) || math.IsInf(back, 0) {
						t.Fatalf("dequantized weight [%d,%d] = %v", i, j, back)
					}
					if d := math.Abs(tc.fill(i, j) - back); d > maxScale/2*(1+1e-9) {
						t.Fatalf("reconstruction error %v exceeds scale/2 = %v", d, maxScale/2)
					}
				}
			}
		})
	}
}

// TestQuantizeRejectsNonFinite pins the non-finite policy: Quantize refuses
// NaN/Inf weights with a typed error instead of saturating codes.
func TestQuantizeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		net := singleLayerNet(t, 2, 2, func(i, j int) float64 { return 1 })
		net.Layers()[0].W.Set(1, 1, bad)
		if _, err := Quantize(net); !errors.Is(err, ErrInput) {
			t.Errorf("weight %v: err = %v, want ErrInput", bad, err)
		}
	}
}

// TestSquareCodes checks the derived squared-weight panel against its spec:
// codes in [0, QMax], scale2·code2 within scale2/2 of the exact squared
// dequantized weight, and all-zero columns reconstructing exactly.
func TestSquareCodes(t *testing.T) {
	net := singleLayerNet(t, 5, 3, func(i, j int) float64 {
		if j == 2 {
			return 0 // all-zero column
		}
		return float64(i*3-j*7) / 11
	})
	m, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	q := m.Layers[0]
	codes2, scales2 := q.SquareCodes()
	if len(codes2) != len(q.W) || len(scales2) != q.OutDim {
		t.Fatalf("SquareCodes shapes %d/%d", len(codes2), len(scales2))
	}
	for i := 0; i < q.InDim; i++ {
		for j := 0; j < q.OutDim; j++ {
			c2 := codes2[i*q.OutDim+j]
			if c2 < 0 || c2 > QMax {
				t.Fatalf("square code [%d,%d] = %d out of [0,%d]", i, j, c2, QMax)
			}
			wq := float64(q.W[i*q.OutDim+j]) * q.Scales[j]
			got := float64(c2) * scales2[j]
			if d := math.Abs(got - wq*wq); d > scales2[j]/2*(1+1e-9) {
				t.Fatalf("square reconstruction [%d,%d]: |%v - %v| > scale2/2 = %v", i, j, got, wq*wq, scales2[j]/2)
			}
		}
	}
	for i := 0; i < q.InDim; i++ {
		if codes2[i*q.OutDim+2] != 0 {
			t.Fatalf("zero column square code [%d,2] = %d", i, codes2[i*q.OutDim+2])
		}
	}
}

// fixtureModel is the hand-built deterministic model behind the golden
// wire-format fixture. Do not change it: the fixture pins the v1 format.
func fixtureModel() *Model {
	return &Model{Layers: []Layer{
		{
			InDim: 3, OutDim: 2,
			W:      []int8{127, -64, 0, 1, -127, 33},
			Scales: []float64{0.0125, 3.5},
			B:      []float64{-0.75, 2},
			Act:    nn.ActReLU, KeepProb: 0.9,
		},
		{
			InDim: 2, OutDim: 1,
			W:      []int8{-5, 9},
			Scales: []float64{1e-3},
			B:      []float64{0.125},
			Act:    nn.ActIdentity, KeepProb: 1,
		},
	}}
}

// TestGoldenWireFormat pins the serialized byte stream: Save of the fixture
// model must reproduce testdata/golden_v1.gob byte-for-byte, and Load of the
// committed fixture must reproduce the model. A deliberate format change
// must bump modelVersion and regenerate with -update-golden.
func TestGoldenWireFormat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.gob")
	m := fixtureModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("Save output differs from golden fixture: %d vs %d bytes — wire format changed without a version bump", buf.Len(), len(golden))
	}
	back, err := Load(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("Load golden: %v", err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatal("model loaded from golden fixture differs from the in-code fixture")
	}
}

// TestLoadTruncatedAndCorrupt drives the nn.ErrModel-style hardening:
// truncated prefixes and corrupted bytes must fail with a wrapped ErrModel,
// never panic or silently succeed with different codes.
func TestLoadTruncatedAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureModel().Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); !errors.Is(err, ErrModel) {
			t.Errorf("truncated at %d: err = %v, want ErrModel", n, err)
		}
	}
	for _, pos := range []int{2, len(full) / 3, 2 * len(full) / 3} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0xff
		m, err := Load(bytes.NewReader(corrupt))
		if err == nil {
			// A flipped byte that still decodes must at least not change
			// the model silently.
			if !reflect.DeepEqual(m, fixtureModel()) {
				t.Errorf("corrupt byte %d: silently loaded a different model", pos)
			}
			continue
		}
		if !errors.Is(err, ErrModel) {
			t.Errorf("corrupt byte %d: err = %v, want ErrModel", pos, err)
		}
	}
}

// TestLoadRejectsLegacyStream pins that a pre-versioning raw Model gob (the
// seed format, no magic header) is refused rather than misread.
func TestLoadRejectsLegacyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fixtureModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrModel) {
		t.Errorf("legacy stream err = %v, want ErrModel", err)
	}
}

// TestLoadRejectsBadVersionAndValidate covers the remaining Load rejections:
// future versions and structurally invalid models.
func TestLoadRejectsBadVersionAndValidate(t *testing.T) {
	enc := func(wm wireModel) *bytes.Reader {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(buf.Bytes())
	}
	if _, err := Load(enc(wireModel{Magic: modelMagic, Version: 99})); !errors.Is(err, ErrModel) {
		t.Errorf("future version err = %v, want ErrModel", err)
	}
	if _, err := Load(enc(wireModel{Magic: "apds-model", Version: modelVersion})); !errors.Is(err, ErrModel) {
		t.Errorf("wrong magic err = %v, want ErrModel", err)
	}
	bad := wireModel{Magic: modelMagic, Version: modelVersion, Layers: []wireLayer{{
		InDim: 2, OutDim: 1, Codes: []int8{1, 2}, Scales: []float64{math.Inf(1)}, Bias: []float64{0}, Act: int(nn.ActReLU), KeepProb: 1,
	}}}
	if _, err := Load(enc(bad)); !errors.Is(err, ErrModel) {
		t.Errorf("non-finite scale err = %v, want ErrModel", err)
	}
}
