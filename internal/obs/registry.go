// Package obs is the repo's dependency-free observability toolkit: a
// metrics registry (counters, gauges, histograms with exponential latency
// buckets) that renders the Prometheus text exposition format, plus
// lightweight per-request trace spans. It exists so the serving path
// (examples/server), the propagation hot paths (internal/core hooks), and
// the benchmark harness (cmd/apds-bench -obs) can all report into one
// scrape surface without pulling in a client library.
//
// All metric types are safe for concurrent use; the update paths are
// single atomic operations so instrumented hot loops pay no lock.
package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrRegistry is returned (wrapped) for invalid metric registrations.
var ErrRegistry = errors.New("obs: invalid registration")

type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is one named metric family: a type, a help string, a fixed label
// schema, and the set of label-value series created so far.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any // seriesKey(labelValues) → *Counter/*Gauge/*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the family for name, creating it on first use. A name
// re-registered with a different type, label schema, or bucket layout is a
// programming error and panics: two call sites disagreeing about one metric
// would silently corrupt the exposition otherwise.
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Errorf("metric name %q: %w", name, ErrRegistry))
	}
	for _, l := range labels {
		if !validName(l) || l == "le" {
			panic(fmt.Errorf("metric %s: label name %q: %w", name, l, ErrRegistry))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Errorf("metric %s re-registered as %v%v, was %v%v: %w",
				name, typ, labels, f.typ, f.labels, ErrRegistry))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesKey joins label values with an unprintable separator so distinct
// value tuples cannot collide.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// with returns the series for values, creating it with mk on first use.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Errorf("metric %s: %d label values for schema %v: %w",
			f.name, len(values), f.labels, ErrRegistry))
	}
	key := seriesKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	return m
}

// Counter is a monotonically increasing value. The float64 is stored as
// atomic bits; Add is a CAS loop, Inc the common fast path.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be >= 0 (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Errorf("counter add %v: %w", v, ErrRegistry))
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending) and tracks their sum. Observe is lock-free: one bucket
// increment plus two CAS-backed accumulations.
//
// Non-finite observations (NaN, ±Inf) are quarantined: a single NaN folded
// into the running sum would turn the whole `_sum` series into NaN forever,
// and a NaN never matches any `v <= ub` bucket test, silently skewing the
// implicit +Inf bucket. They are counted in a separate NonFinite counter,
// rendered as `<name>_nonfinite` in the exposition once non-zero.
type Histogram struct {
	upper     []float64
	counts    []atomic.Uint64
	sum       atomic.Uint64 // float64 bits
	count     atomic.Uint64
	nonFinite atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// Observe records one value. Non-finite values increment NonFinite and leave
// the buckets, count, and sum untouched.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite.Add(1)
		return
	}
	// Linear scan: latency bucket layouts are small (~15 buckets) and the
	// common observations land early, beating binary search in practice.
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of finite observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of finite observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// NonFinite returns the number of dropped non-finite observations.
func (h *Histogram) NonFinite() uint64 { return h.nonFinite.Load() }

// ExpBuckets returns count bucket upper bounds starting at start and
// multiplying by factor: the exponential layout used for latencies, where
// relative (not absolute) resolution is what matters.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Errorf("exp buckets start=%v factor=%v count=%d: %w", start, factor, count, ErrRegistry))
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default request/propagation latency layout:
// 50 µs .. ~1.6 s in ×2 steps (16 buckets), in seconds.
func LatencyBuckets() []float64 { return ExpBuckets(50e-6, 2, 16) }

// Counter registers (or fetches) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.with(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or fetches) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.with(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or fetches) a label-less histogram with the given
// ascending bucket upper bounds (a terminal +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	f := r.register(name, help, typeHistogram, nil, buckets)
	return f.with(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Errorf("histogram %s: no buckets: %w", name, ErrRegistry))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Errorf("histogram %s: buckets not ascending at %d: %w", name, i, ErrRegistry))
		}
	}
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a counter family with label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Errorf("counter vec %s: no labels (use Counter): %w", name, ErrRegistry))
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label name,
// in schema order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a gauge family with label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Errorf("gauge vec %s: no labels (use Gauge): %w", name, ErrRegistry))
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with a fixed label schema.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a histogram family with label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Errorf("histogram vec %s: no labels (use Histogram): %w", name, ErrRegistry))
	}
	checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// WriteText renders every registered family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// values, histogram buckets cumulative with a trailing +Inf.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns WriteText as a string.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	// strings.Builder writes cannot fail.
	_ = r.WriteText(&b)
	return b.String()
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(series) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, m := range series {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(keys[i], "\x1f")
		}
		switch f.typ {
		case typeCounter:
			writeSeries(b, f.name, "", f.labels, values, "", m.(*Counter).Value())
		case typeGauge:
			writeSeries(b, f.name, "", f.labels, values, "", m.(*Gauge).Value())
		case typeHistogram:
			h := m.(*Histogram)
			var cum uint64
			for bi, ub := range h.upper {
				cum += h.counts[bi].Load()
				writeSeries(b, f.name, "_bucket", f.labels, values, formatFloat(ub), float64(cum))
			}
			writeSeries(b, f.name, "_bucket", f.labels, values, "+Inf", float64(h.Count()))
			writeSeries(b, f.name, "_sum", f.labels, values, "", h.Sum())
			writeSeries(b, f.name, "_count", f.labels, values, "", float64(h.Count()))
			if nf := h.NonFinite(); nf > 0 {
				// Emitted only when present so existing scrapes are unchanged;
				// a non-zero value flags a producer emitting NaN/±Inf.
				writeSeries(b, f.name, "_nonfinite", f.labels, values, "", float64(nf))
			}
		}
	}
}

// writeSeries renders one exposition line. le (when non-empty) is appended
// as the final label, matching histogram bucket convention.
func writeSeries(b *strings.Builder, name, suffix string, labels, values []string, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline are the three recognized escapes.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, `\`, `\\`), "\n", `\n`)
}
