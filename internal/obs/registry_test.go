package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("requests_total", "total requests"); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("inflight", "in-flight requests")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "9lives", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
	// "le" is reserved for histogram buckets.
	defer func() {
		if recover() == nil {
			t.Error(`label "le" did not panic`)
		}
	}()
	NewRegistry().HistogramVec("h", "", []float64{1}, "le")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-3.545) > 1e-12 {
		t.Errorf("sum = %v, want 3.545", h.Sum())
	}
	text := r.Snapshot()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 3.545`,
		`latency_seconds_count 5`,
		"# TYPE latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramNonFinite(t *testing.T) {
	// Regression: one NaN observation used to fold into the running sum and
	// turn `<name>_sum` into NaN forever, while never matching a bucket —
	// the registry's shadow-drift histograms ingest live |Δmean|/|Δσ| deltas,
	// so a single NaN-emitting shadow candidate poisoned the whole series.
	r := NewRegistry()
	h := r.Histogram("drift", "shadow drift", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(2)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2 (finite observations only)", h.Count())
	}
	if h.Sum() != 2.5 {
		t.Errorf("sum = %v, want 2.5 (NaN must not poison the sum)", h.Sum())
	}
	if h.NonFinite() != 2 {
		t.Errorf("nonfinite = %d, want 2", h.NonFinite())
	}
	text := r.Snapshot()
	for _, want := range []string{
		`drift_bucket{le="+Inf"} 2`,
		`drift_sum 2.5`,
		`drift_count 2`,
		`drift_nonfinite 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// A clean histogram's exposition is unchanged: no nonfinite line.
	clean := NewRegistry()
	clean.Histogram("ok", "", []float64{1}).Observe(0.5)
	if got := clean.Snapshot(); strings.Contains(got, "nonfinite") {
		t.Errorf("clean exposition gained a nonfinite series:\n%s", got)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route and code", "route", "code")
	v.With("/predict", "200").Add(3)
	v.With("/predict", "400").Inc()
	v.With("/metrics", "200").Inc()
	if v.With("/predict", "200").Value() != 3 {
		t.Error("series lookup did not return the same counter")
	}
	text := r.Snapshot()
	for _, want := range []string{
		`http_requests_total{route="/predict",code="200"} 3`,
		`http_requests_total{route="/predict",code="400"} 1`,
		`http_requests_total{route="/metrics",code="200"} 1`,
		"# HELP http_requests_total by route and code",
		"# TYPE http_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecWrongArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("m_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("weird_total", "", "path").With(`a\b"c` + "\nd").Inc()
	text := r.Snapshot()
	want := `weird_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("exposition missing %q:\n%s", want, text)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	lb := LatencyBuckets()
	if len(lb) != 16 || lb[0] != 50e-6 {
		t.Errorf("latency buckets = %v", lb)
	}
}

// TestExpositionDeterministic pins that rendering sorts families and series
// so scrapes diff cleanly.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		v := r.CounterVec("zz_total", "", "k")
		for _, k := range order {
			v.With(k).Inc()
		}
		r.Gauge("aa", "").Set(1)
		return r.Snapshot()
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if a != b {
		t.Errorf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "# TYPE aa gauge") {
		t.Errorf("families not name-sorted:\n%s", a)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; the
// race detector (tools/check.sh runs this package with -race) validates the
// lock-free update paths.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	h := r.Histogram("lat", "", []float64{0.5, 1, 2})
	v := r.CounterVec("routes_total", "", "route")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%3) + 0.25)
				v.With([]string{"/a", "/b", "/c"}[i%3]).Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
