package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is a lightweight per-request span collector: a request ID plus the
// named timed sections the request passed through. It is built for access
// logging and slow-request triage, not distributed tracing — spans live in
// memory for the request's lifetime and render as one log-friendly line.
//
// A Trace is safe for concurrent span recording (a batched handler may time
// sections from helper goroutines), though spans are usually sequential.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one finished timed section of a trace.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// NewTrace starts a trace identified by id (typically the request ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Start returns the trace start time.
func (t *Trace) Start() time.Time { return t.start }

// StartSpan opens a named section; call End on the result to record it.
func (t *Trace) StartSpan(name string) *ActiveSpan {
	return &ActiveSpan{t: t, name: name, start: time.Now()}
}

// Time runs fn inside a span — the common single-statement form.
func (t *Trace) Time(name string, fn func()) {
	s := t.StartSpan(name)
	defer s.End()
	fn()
}

// Spans returns the finished spans in recording order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Elapsed returns the time since the trace started.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// String renders the trace as one log line:
//
//	trace=<id> total=1.8ms decode=0.1ms predict=1.5ms encode=0.2ms
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%s total=%s", t.id, t.Elapsed().Round(time.Microsecond))
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		fmt.Fprintf(&b, " %s=%s", s.Name, s.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// ActiveSpan is an open span; End records it on the owning trace.
type ActiveSpan struct {
	t     *Trace
	name  string
	start time.Time
	done  bool
}

// End closes the span and returns its duration. Multiple End calls record
// the span once (the first duration wins).
func (s *ActiveSpan) End() time.Duration {
	d := time.Since(s.start)
	if s.done {
		return d
	}
	s.done = true
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, Span{Name: s.name, Start: s.start, Duration: d})
	s.t.mu.Unlock()
	return d
}
