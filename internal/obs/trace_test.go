package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("req-1")
	s := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	d := s.End()
	if d < time.Millisecond {
		t.Errorf("span duration %v, want >= 1ms", d)
	}
	tr.Time("predict", func() {})

	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "decode" || spans[1].Name != "predict" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Duration < time.Millisecond {
		t.Errorf("recorded duration %v, want >= 1ms", spans[0].Duration)
	}

	line := tr.String()
	for _, want := range []string{"trace=req-1", "total=", "decode=", "predict="} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line missing %q: %s", want, line)
		}
	}
}

func TestTraceDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTrace("x")
	s := tr.StartSpan("a")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("spans recorded %d times, want 1", got)
	}
}

// TestTraceConcurrent records spans from several goroutines; validated
// under -race by tools/check.sh.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("c")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Time("work", func() {})
				_ = tr.String()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Errorf("spans = %d, want 400", got)
	}
}
