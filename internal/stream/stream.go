// Package stream provides the plumbing between raw IoT sensor streams and
// the uncertainty estimators: fixed-size sliding windows over multichannel
// samples, online input standardization, and an uncertainty gate that turns
// predictive variance into accept/escalate decisions — the deployment
// pattern the paper motivates (reliable inference on continuously sampled
// sensors).
package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid configurations.
var ErrConfig = errors.New("stream: invalid configuration")

// Windower slices a continuous multichannel sample stream into overlapping
// fixed-length windows. Push one sample (one value per channel) at a time;
// each call returns a flattened window (time-major: sample t's channels are
// adjacent) every stride samples once the first window has filled.
//
// A Windower is NOT safe for concurrent use: a window is defined by the
// order samples arrive, so interleaving Push calls from several goroutines
// has no meaningful semantics. Feed each sensor stream from one goroutine
// (one Windower per stream).
type Windower struct {
	channels int
	length   int
	stride   int

	buf   []float64 // ring of length*channels values
	head  int       // next write position (in samples)
	count int       // total samples pushed
}

// NewWindower builds a windower emitting length-sample windows every stride
// samples.
func NewWindower(channels, length, stride int) (*Windower, error) {
	if channels < 1 || length < 1 || stride < 1 {
		return nil, fmt.Errorf("channels=%d length=%d stride=%d: %w", channels, length, stride, ErrConfig)
	}
	return &Windower{
		channels: channels, length: length, stride: stride,
		buf: make([]float64, length*channels),
	}, nil
}

// Push adds one sample. It returns a freshly allocated flattened window and
// true when a window completes, or nil and false otherwise.
func (w *Windower) Push(sample []float64) ([]float64, bool, error) {
	if len(sample) != w.channels {
		return nil, false, fmt.Errorf("sample has %d channels, want %d: %w", len(sample), w.channels, ErrConfig)
	}
	copy(w.buf[w.head*w.channels:(w.head+1)*w.channels], sample)
	w.head = (w.head + 1) % w.length
	w.count++
	if w.count < w.length || (w.count-w.length)%w.stride != 0 {
		return nil, false, nil
	}
	out := make([]float64, w.length*w.channels)
	// Oldest sample sits at head (just overwritten position is next write).
	for i := 0; i < w.length; i++ {
		src := (w.head + i) % w.length
		copy(out[i*w.channels:(i+1)*w.channels], w.buf[src*w.channels:(src+1)*w.channels])
	}
	return out, true, nil
}

// Count returns the number of samples pushed.
func (w *Windower) Count() int { return w.count }

// OnlineStandardizer tracks running per-dimension mean and variance
// (Welford) and standardizes vectors against them — for deployments where
// the training-time statistics are unavailable or drifting.
//
// An OnlineStandardizer is safe for concurrent use: Observe, Apply, and
// Count may be called from multiple goroutines (e.g. several serving
// goroutines sharing one drift tracker). Apply standardizes against a
// consistent snapshot of the statistics at the time of the call.
type OnlineStandardizer struct {
	mu  sync.Mutex
	acc *stats.VecWelford
}

// NewOnlineStandardizer tracks dim-dimensional vectors.
func NewOnlineStandardizer(dim int) (*OnlineStandardizer, error) {
	if dim < 1 {
		return nil, fmt.Errorf("dim %d: %w", dim, ErrConfig)
	}
	return &OnlineStandardizer{acc: stats.NewVecWelford(dim)}, nil
}

// Observe folds a raw vector into the running statistics.
func (s *OnlineStandardizer) Observe(x []float64) error {
	if len(x) != s.acc.Dim() {
		return fmt.Errorf("dim %d, want %d: %w", len(x), s.acc.Dim(), ErrConfig)
	}
	s.mu.Lock()
	s.acc.Add(x)
	s.mu.Unlock()
	return nil
}

// Apply returns the standardized copy of x using the statistics so far.
// Dimensions with (near-)zero variance are centered but not scaled.
func (s *OnlineStandardizer) Apply(x []float64) ([]float64, error) {
	if len(x) != s.acc.Dim() {
		return nil, fmt.Errorf("dim %d, want %d: %w", len(x), s.acc.Dim(), ErrConfig)
	}
	s.mu.Lock()
	mean := s.acc.Mean()
	variance := s.acc.Variance()
	s.mu.Unlock()
	out := make([]float64, len(x))
	for i := range x {
		sd := math.Sqrt(variance[i])
		if sd < 1e-9 {
			sd = 1
		}
		out[i] = (x[i] - mean[i]) / sd
	}
	return out, nil
}

// Count returns the number of observed vectors.
func (s *OnlineStandardizer) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc.Count()
}

// Decision is the uncertainty gate's verdict for one prediction.
type Decision int

// Gate decisions.
const (
	// Accept means the prediction's uncertainty is within budget.
	Accept Decision = iota + 1
	// Escalate means uncertainty exceeds the budget: defer to a fallback
	// (bigger model, cloud, human).
	Escalate
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Escalate:
		return "escalate"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Gate turns predictive distributions into accept/escalate decisions and
// keeps acceptance statistics. It is the smallest useful policy on top of
// ApDeepSense's variance output: bound the mean predictive standard
// deviation.
//
// A Gate is safe for concurrent use: Check and Stats may be called from
// multiple goroutines (the expected deployment shares one gate across
// serving goroutines), and Stats always observes a consistent
// (accepted, escalated, nonFinite) triple.
//
// The decision contract is explicit about degenerate inputs: a zero-dim
// prediction (whose mean std would be 0/0 = NaN) and any non-finite
// per-dimension variance escalate — uncertainty that cannot be assessed is
// treated as unbounded, never silently accepted — and additionally increment
// the nonFinite counter so the condition is visible in telemetry instead of
// masquerading as ordinary high uncertainty.
// A Gate may additionally carry escalate-after-N / readmit-after-M
// hysteresis (NewGateWithHysteresis), mirroring the cluster health loop's
// FailAfter/ReadmitAfter shape: the emitted decision only flips to Escalate
// after N consecutive over-budget checks and only returns to Accept after M
// consecutive within-budget checks, so a single noisy window cannot flap a
// stream between accept and escalate. The default gate (NewGate) uses N=M=1,
// which is exactly the stateless legacy behavior. A hysteresis gate carries
// per-stream streak state, so share one only across checks that belong to
// the same logical stream; the N=M=1 default remains freely shareable.
type Gate struct {
	maxMeanStd    float64
	escalateAfter int
	readmitAfter  int

	mu        sync.Mutex
	accepted  int64
	escalated int64
	nonFinite int64
	overN     int  // consecutive over-budget checks
	underN    int  // consecutive within-budget checks
	latched   bool // current hysteresis state: true = escalating
}

// NewGate accepts predictions whose mean per-dimension standard deviation is
// at most maxMeanStd. The returned gate has no hysteresis (N=M=1): every
// check's decision reflects that check alone.
func NewGate(maxMeanStd float64) (*Gate, error) {
	return NewGateWithHysteresis(maxMeanStd, 1, 1)
}

// NewGateWithHysteresis builds a gate that escalates only after
// escalateAfter consecutive over-budget checks and readmits only after
// readmitAfter consecutive within-budget checks. Both must be >= 1;
// (1, 1) is the stateless NewGate behavior exactly.
func NewGateWithHysteresis(maxMeanStd float64, escalateAfter, readmitAfter int) (*Gate, error) {
	if maxMeanStd <= 0 {
		return nil, fmt.Errorf("maxMeanStd %v: %w", maxMeanStd, ErrConfig)
	}
	if escalateAfter < 1 || readmitAfter < 1 {
		return nil, fmt.Errorf("escalateAfter %d, readmitAfter %d (both must be >= 1): %w",
			escalateAfter, readmitAfter, ErrConfig)
	}
	return &Gate{maxMeanStd: maxMeanStd, escalateAfter: escalateAfter, readmitAfter: readmitAfter}, nil
}

// Check classifies one predictive distribution. Zero-dim predictions and
// predictions with any non-finite variance escalate and are counted as
// nonFinite (see the type comment): before this contract, 0/0 = NaN mean
// std failed the <= comparison and escalated with no signal, and a NaN
// variance did the same — indistinguishable from a legitimately uncertain
// prediction in the gate's statistics.
// Check also drives the hysteresis state machine: an over-budget check
// extends the over-streak and latches Escalate once the streak reaches
// escalateAfter; a within-budget check extends the under-streak and unlatches
// once it reaches readmitAfter. Degenerate checks escalate IMMEDIATELY,
// bypassing the escalate-side hysteresis (they still reset the under-streak
// and extend the over-streak): hysteresis exists to absorb noise, and an
// unassessable prediction is not noise — the never-silently-accept contract
// above outranks flap damping.
func (g *Gate) Check(pred core.GaussianVec) Decision {
	var s float64
	degenerate := pred.Dim() == 0
	for i := range pred.Var {
		sd := math.Sqrt(pred.Var[i])
		if math.IsNaN(sd) || math.IsInf(sd, 0) {
			degenerate = true
			break
		}
		s += sd
	}
	over := degenerate || s/float64(pred.Dim()) > g.maxMeanStd

	g.mu.Lock()
	defer g.mu.Unlock()
	if over {
		g.underN = 0
		g.overN++
		if g.overN >= g.escalateAfter {
			g.latched = true
		}
	} else {
		g.overN = 0
		g.underN++
		if g.underN >= g.readmitAfter {
			g.latched = false
		}
	}
	if degenerate {
		g.escalated++
		g.nonFinite++
		return Escalate
	}
	if g.latched {
		g.escalated++
		return Escalate
	}
	g.accepted++
	return Accept
}

// Escalated reports whether the gate's hysteresis state is currently
// latched to Escalate (always mirrors the last decision for N=M=1 gates).
func (g *Gate) Escalated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.latched
}

// Stats returns the accept and escalate counts so far, plus how many of the
// escalations were degenerate (zero-dim or non-finite σ) rather than
// ordinary over-budget predictions.
func (g *Gate) Stats() (accepted, escalated, nonFinite int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.accepted, g.escalated, g.nonFinite
}

// Pipeline chains a windower, an optional online standardizer, an estimator,
// and a gate into a push-based streaming predictor.
//
// A Pipeline inherits the Windower's contract: NOT safe for concurrent use.
// Run one Pipeline per stream, pushed from a single goroutine; the shared
// pieces (standardizer, gate, estimator) are individually safe to reuse
// across pipelines.
type Pipeline struct {
	win  *Windower
	std  *OnlineStandardizer
	est  core.Estimator
	gate *Gate
}

// Result is one emitted pipeline prediction.
type Result struct {
	Pred     core.GaussianVec
	Decision Decision
}

// NewPipeline assembles a streaming predictor. std and gate may be nil to
// disable standardization or gating (nil gate accepts everything).
func NewPipeline(win *Windower, std *OnlineStandardizer, est core.Estimator, gate *Gate) (*Pipeline, error) {
	if win == nil || est == nil {
		return nil, fmt.Errorf("windower and estimator are required: %w", ErrConfig)
	}
	if std != nil && std.acc.Dim() != win.length*win.channels {
		return nil, fmt.Errorf("standardizer dim %d != window dim %d: %w",
			std.acc.Dim(), win.length*win.channels, ErrConfig)
	}
	return &Pipeline{win: win, std: std, est: est, gate: gate}, nil
}

// Push feeds one sensor sample; when a window completes it runs the
// estimator and returns the result.
func (p *Pipeline) Push(sample []float64) (*Result, error) {
	window, ready, err := p.win.Push(sample)
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, nil
	}
	x := window
	if p.std != nil {
		if err := p.std.Observe(window); err != nil {
			return nil, err
		}
		if x, err = p.std.Apply(window); err != nil {
			return nil, err
		}
	}
	pred, err := p.est.Predict(tensor.Vector(x))
	if err != nil {
		return nil, fmt.Errorf("stream: predict: %w", err)
	}
	res := &Result{Pred: pred, Decision: Accept}
	if p.gate != nil {
		res.Decision = p.gate.Check(pred)
	}
	return res, nil
}
