package stream

// Versioned compact binary snapshot/restore for the streaming state holders
// (Windower ring, OnlineStandardizer moments). This is the persistence
// contract the session fleet (internal/session) builds on: a restored holder
// continues its stream bit-for-bit where the snapshot left off, so gate
// verdicts replayed after a restore match the uninterrupted run exactly.
//
// The format is deliberately not gob: gob's stream preamble and reflection
// cost are wrong for millions of small records, and its wire format is not
// stable enough to version by hand. Each snapshot is a fixed little-endian
// layout — magic, format version, shape, state, and a trailing CRC-32 (IEEE)
// over everything before it — so corrupt or truncated input is rejected
// rather than decoded into plausible garbage.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/apdeepsense/apdeepsense/internal/stats"
)

// ErrSnapshot matches (via errors.Is) every malformed-snapshot rejection:
// wrong magic, unknown version, truncated or oversized payloads, CRC
// mismatches, and state that violates the holder's invariants.
var ErrSnapshot = errors.New("stream: invalid snapshot")

// Snapshot format tags. The version bumps when the layout changes; decoders
// reject versions they do not know instead of guessing.
const (
	windowerMagic     = "APWW"
	standardizerMagic = "APOS"
	snapshotVersion   = 1
)

// appendU16/U32/U64/F64 are the little-endian encoding primitives shared by
// every snapshot writer in this file.
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// reader is a bounds-checked little-endian cursor: every read reports
// truncation as an ErrSnapshot instead of panicking.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at %s (offset %d of %d): %w", what, r.off, len(r.b), ErrSnapshot)
	}
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) f64s(dst []float64, what string) {
	for i := range dst {
		dst[i] = r.f64(what)
	}
}

func (r *reader) magic(want string) {
	if r.err != nil || r.off+len(want) > len(r.b) {
		r.fail("magic")
		return
	}
	got := string(r.b[r.off : r.off+len(want)])
	r.off += len(want)
	if got != want {
		r.err = fmt.Errorf("magic %q, want %q: %w", got, want, ErrSnapshot)
	}
}

// checkCRC verifies the trailing CRC-32 and that nothing follows it. On
// success it returns the payload with the checksum stripped.
func checkCRC(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("short snapshot (%d bytes): %w", len(data), ErrSnapshot)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("crc mismatch (got %08x, want %08x): %w", got, want, ErrSnapshot)
	}
	return body, nil
}

func appendCRC(b []byte) []byte { return appendU32(b, crc32.ChecksumIEEE(b)) }

// AppendBinary appends the windower's versioned snapshot to b: magic,
// version, shape (channels, length, stride), push count, and the raw ring
// (the write head is derived from the count on restore — the ring head is
// count mod length by construction). Ring values are app data and pass
// through unvalidated (a sensor may legitimately emit NaN; Push accepts it,
// so the snapshot preserves it).
func (w *Windower) AppendBinary(b []byte) ([]byte, error) {
	start := len(b)
	b = append(b, windowerMagic...)
	b = appendU16(b, snapshotVersion)
	b = appendU32(b, uint32(w.channels))
	b = appendU32(b, uint32(w.length))
	b = appendU32(b, uint32(w.stride))
	b = appendU64(b, uint64(w.count))
	for _, v := range w.buf {
		b = appendF64(b, v)
	}
	return appendU32(b, crc32.ChecksumIEEE(b[start:])), nil
}

// MarshalBinary returns the windower's versioned snapshot.
func (w *Windower) MarshalBinary() ([]byte, error) { return w.AppendBinary(nil) }

// UnmarshalWindower rebuilds a windower from MarshalBinary output. It
// rejects wrong magic, unknown versions, truncated or over-long payloads,
// CRC mismatches, and shapes NewWindower would refuse.
func UnmarshalWindower(data []byte) (*Windower, error) {
	body, err := checkCRC(data)
	if err != nil {
		return nil, fmt.Errorf("stream: windower: %w", err)
	}
	r := &reader{b: body}
	r.magic(windowerMagic)
	if v := r.u16("version"); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("stream: windower: version %d, want %d: %w", v, snapshotVersion, ErrSnapshot)
	}
	channels := int(r.u32("channels"))
	length := int(r.u32("length"))
	stride := int(r.u32("stride"))
	count := r.u64("count")
	if r.err != nil {
		return nil, fmt.Errorf("stream: windower: %w", r.err)
	}
	w, err := NewWindower(channels, length, stride)
	if err != nil {
		return nil, fmt.Errorf("stream: windower snapshot: %w", err)
	}
	if count > math.MaxInt64/2 {
		return nil, fmt.Errorf("stream: windower: count %d out of range: %w", count, ErrSnapshot)
	}
	r.f64s(w.buf, "ring")
	if r.err != nil {
		return nil, fmt.Errorf("stream: windower: %w", r.err)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("stream: windower: %d trailing bytes: %w", len(body)-r.off, ErrSnapshot)
	}
	w.count = int(count)
	w.head = w.count % w.length
	return w, nil
}

// AppendBinary appends the standardizer's versioned snapshot to b: magic,
// version, dimension, and the raw Welford state (count, means, M2 sums).
// The mutex is held while the state is read, so a snapshot taken during
// concurrent Observe calls is internally consistent.
func (s *OnlineStandardizer) AppendBinary(b []byte) ([]byte, error) {
	s.mu.Lock()
	n, mean, m2 := s.acc.State()
	s.mu.Unlock()
	start := len(b)
	b = append(b, standardizerMagic...)
	b = appendU16(b, snapshotVersion)
	b = appendU32(b, uint32(len(mean)))
	b = appendU64(b, uint64(n))
	for _, v := range mean {
		b = appendF64(b, v)
	}
	for _, v := range m2 {
		b = appendF64(b, v)
	}
	return appendU32(b, crc32.ChecksumIEEE(b[start:])), nil
}

// MarshalBinary returns the standardizer's versioned snapshot.
func (s *OnlineStandardizer) MarshalBinary() ([]byte, error) { return s.AppendBinary(nil) }

// UnmarshalOnlineStandardizer rebuilds a standardizer from MarshalBinary
// output. Beyond the structural checks shared with UnmarshalWindower it
// enforces the Welford invariants a corrupt snapshot could silently break:
// the count is non-negative, means are finite, and every M2 sum is finite
// and non-negative (a negative M2 would make Apply take sqrt of a negative
// variance on every call).
func UnmarshalOnlineStandardizer(data []byte) (*OnlineStandardizer, error) {
	body, err := checkCRC(data)
	if err != nil {
		return nil, fmt.Errorf("stream: standardizer: %w", err)
	}
	r := &reader{b: body}
	r.magic(standardizerMagic)
	if v := r.u16("version"); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("stream: standardizer: version %d, want %d: %w", v, snapshotVersion, ErrSnapshot)
	}
	dim := int(r.u32("dim"))
	n := r.u64("count")
	if r.err != nil {
		return nil, fmt.Errorf("stream: standardizer: %w", r.err)
	}
	if dim < 1 || dim > len(body) {
		// The upper bound is a cheap sanity cap: a dim larger than the whole
		// payload cannot possibly have its vectors present.
		return nil, fmt.Errorf("stream: standardizer: dim %d out of range: %w", dim, ErrSnapshot)
	}
	if n > math.MaxInt64 {
		return nil, fmt.Errorf("stream: standardizer: count %d out of range: %w", n, ErrSnapshot)
	}
	mean := make([]float64, dim)
	m2 := make([]float64, dim)
	r.f64s(mean, "mean")
	r.f64s(m2, "m2")
	if r.err != nil {
		return nil, fmt.Errorf("stream: standardizer: %w", r.err)
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("stream: standardizer: %d trailing bytes: %w", len(body)-r.off, ErrSnapshot)
	}
	for i := range mean {
		if math.IsNaN(mean[i]) || math.IsInf(mean[i], 0) {
			return nil, fmt.Errorf("stream: standardizer: non-finite mean[%d]: %w", i, ErrSnapshot)
		}
		if math.IsNaN(m2[i]) || math.IsInf(m2[i], 0) || m2[i] < 0 {
			return nil, fmt.Errorf("stream: standardizer: invalid m2[%d] = %v: %w", i, m2[i], ErrSnapshot)
		}
	}
	acc, err := stats.VecWelfordFromState(int64(n), mean, m2)
	if err != nil {
		return nil, fmt.Errorf("stream: standardizer: %v: %w", err, ErrSnapshot)
	}
	return &OnlineStandardizer{acc: acc}, nil
}
