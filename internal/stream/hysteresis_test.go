package stream

import (
	"errors"
	"math"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
)

func calm() core.GaussianVec {
	return core.GaussianVec{Mean: []float64{0}, Var: []float64{0.01}} // std 0.1
}

func noisy() core.GaussianVec {
	return core.GaussianVec{Mean: []float64{0}, Var: []float64{4}} // std 2
}

// TestGateHysteresisEscalateEdge: the decision flips to Escalate exactly at
// the Nth consecutive over-budget check, and any intervening clean check
// resets the streak.
func TestGateHysteresisEscalateEdge(t *testing.T) {
	g, err := NewGateWithHysteresis(1.0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two over-budget checks: not yet escalated.
	for i := 0; i < 2; i++ {
		if d := g.Check(noisy()); d != Accept {
			t.Fatalf("over check %d: got %v before escalateAfter reached", i, d)
		}
	}
	// A clean check resets the over-streak.
	if d := g.Check(calm()); d != Accept {
		t.Fatalf("clean check: got %v", d)
	}
	for i := 0; i < 2; i++ {
		if d := g.Check(noisy()); d != Accept {
			t.Fatalf("restarted over check %d: got %v", i, d)
		}
	}
	// Third consecutive over-budget check latches.
	if d := g.Check(noisy()); d != Escalate {
		t.Fatalf("third consecutive over check: got %v, want Escalate", d)
	}
	if !g.Escalated() {
		t.Fatal("gate not latched after escalate edge")
	}
	// Stays latched on further over-budget checks.
	if d := g.Check(noisy()); d != Escalate {
		t.Fatal("latched gate accepted an over-budget check")
	}
}

// TestGateHysteresisReadmitEdge: once latched, the decision returns to
// Accept exactly at the Mth consecutive within-budget check, and an
// intervening over-budget check resets the under-streak.
func TestGateHysteresisReadmitEdge(t *testing.T) {
	g, err := NewGateWithHysteresis(1.0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Check(noisy())
	if d := g.Check(noisy()); d != Escalate {
		t.Fatal("gate did not latch after 2 over-budget checks")
	}
	// Two clean checks: still escalating.
	for i := 0; i < 2; i++ {
		if d := g.Check(calm()); d != Escalate {
			t.Fatalf("clean check %d: got %v before readmitAfter reached", i, d)
		}
	}
	// An over-budget check resets the under-streak.
	if d := g.Check(noisy()); d != Escalate {
		t.Fatal("over-budget check while latched must escalate")
	}
	for i := 0; i < 2; i++ {
		if d := g.Check(calm()); d != Escalate {
			t.Fatalf("restarted clean check %d: got %v", i, d)
		}
	}
	// Third consecutive clean check readmits.
	if d := g.Check(calm()); d != Accept {
		t.Fatalf("third consecutive clean check: got %v, want Accept", d)
	}
	if g.Escalated() {
		t.Fatal("gate still latched after readmit edge")
	}
}

// TestGateHysteresisDefaultIsLegacy: NewGate (N=M=1) decides every check
// independently — bit-for-bit the old stateless behavior.
func TestGateHysteresisDefaultIsLegacy(t *testing.T) {
	g, err := NewGate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	seq := []struct {
		pred core.GaussianVec
		want Decision
	}{
		{noisy(), Escalate}, {calm(), Accept}, {noisy(), Escalate},
		{noisy(), Escalate}, {calm(), Accept}, {calm(), Accept},
	}
	for i, s := range seq {
		if d := g.Check(s.pred); d != s.want {
			t.Fatalf("check %d: got %v, want %v", i, d, s.want)
		}
	}
	acc, esc, nf := g.Stats()
	if acc != 3 || esc != 3 || nf != 0 {
		t.Fatalf("stats = %d/%d/%d, want 3/3/0", acc, esc, nf)
	}
}

// TestGateHysteresisDegenerateBypassesLatch: a non-finite prediction
// escalates immediately even when the escalate-side hysteresis has not
// tripped — unassessable uncertainty is never damped — but does not latch
// the gate by itself.
func TestGateHysteresisDegenerateBypassesLatch(t *testing.T) {
	g, err := NewGateWithHysteresis(1.0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.GaussianVec{Mean: []float64{0}, Var: []float64{math.NaN()}}
	if d := g.Check(bad); d != Escalate {
		t.Fatal("degenerate prediction not escalated immediately")
	}
	if g.Escalated() {
		t.Fatal("single degenerate check latched a 3-check gate")
	}
	if _, _, nf := g.Stats(); nf != 1 {
		t.Fatalf("nonFinite = %d, want 1", nf)
	}
	// A clean check after it is accepted (readmitAfter=1, not latched).
	if d := g.Check(calm()); d != Accept {
		t.Fatal("clean check after degenerate not accepted")
	}
	// But degenerates do extend the over-streak toward the latch.
	g.Check(noisy())
	g.Check(bad)
	if d := g.Check(noisy()); d != Escalate {
		t.Fatal("third over (incl. degenerate) did not latch")
	}
	if !g.Escalated() {
		t.Fatal("gate not latched after mixed over-streak")
	}
}

// TestGateHysteresisValidation: constructor rejects out-of-range parameters.
func TestGateHysteresisValidation(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{0, 1}, {1, 0}, {-1, 1}, {1, -3}} {
		if _, err := NewGateWithHysteresis(1.0, tc.n, tc.m); !errors.Is(err, ErrConfig) {
			t.Fatalf("NewGateWithHysteresis(1, %d, %d): err = %v, want ErrConfig", tc.n, tc.m, err)
		}
	}
	if _, err := NewGateWithHysteresis(0, 1, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("zero maxMeanStd accepted")
	}
}
