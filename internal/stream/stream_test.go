package stream

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestNewWindowerValidation(t *testing.T) {
	for _, c := range [][3]int{{0, 2, 1}, {1, 0, 1}, {1, 2, 0}} {
		if _, err := NewWindower(c[0], c[1], c[2]); !errors.Is(err, ErrConfig) {
			t.Errorf("%v: err = %v, want ErrConfig", c, err)
		}
	}
}

func TestWindowerEmitsInOrder(t *testing.T) {
	w, err := NewWindower(1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var windows [][]float64
	for i := 1; i <= 6; i++ {
		win, ready, err := w.Push([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ready {
			windows = append(windows, win)
		}
	}
	want := [][]float64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {4, 5, 6}}
	if len(windows) != len(want) {
		t.Fatalf("emitted %d windows, want %d", len(windows), len(want))
	}
	for i, win := range windows {
		for j := range win {
			if win[j] != want[i][j] {
				t.Errorf("window %d = %v, want %v", i, win, want[i])
				break
			}
		}
	}
}

func TestWindowerStride(t *testing.T) {
	w, err := NewWindower(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]float64
	for i := 1; i <= 9; i++ {
		win, ready, err := w.Push([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ready {
			got = append(got, win)
		}
	}
	// Windows complete at samples 2, 5, 8.
	want := [][]float64{{1, 2}, {4, 5}, {7, 8}}
	if len(got) != len(want) {
		t.Fatalf("emitted %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Errorf("window %d = %v, want %v", i, got[i], want[i])
		}
	}
	if w.Count() != 9 {
		t.Errorf("Count = %d", w.Count())
	}
}

func TestWindowerMultiChannel(t *testing.T) {
	w, err := NewWindower(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Push([]float64{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad channels err = %v", err)
	}
	w.Push([]float64{1, 10})
	win, ready, err := w.Push([]float64{2, 20})
	if err != nil || !ready {
		t.Fatalf("ready=%v err=%v", ready, err)
	}
	want := []float64{1, 10, 2, 20} // time-major
	for i := range want {
		if win[i] != want[i] {
			t.Fatalf("window = %v, want %v", win, want)
		}
	}
}

func TestOnlineStandardizer(t *testing.T) {
	if _, err := NewOnlineStandardizer(0); !errors.Is(err, ErrConfig) {
		t.Errorf("dim 0 err = %v", err)
	}
	s, err := NewOnlineStandardizer(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		if err := s.Observe([]float64{5 + 2*rng.NormFloat64(), -3 + 0.5*rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Apply([]float64{5, -3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]) > 0.1 || math.Abs(out[1]) > 0.1 {
		t.Errorf("standardized mean input = %v, want ≈ [0 0]", out)
	}
	out, err = s.Apply([]float64{7, -3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.1 {
		t.Errorf("one-sigma input standardized to %v, want ≈ 1", out[0])
	}
	if _, err := s.Apply([]float64{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad dim err = %v", err)
	}
	if err := s.Observe([]float64{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("observe bad dim err = %v", err)
	}
	if s.Count() != 5000 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestOnlineStandardizerConstantDim(t *testing.T) {
	s, _ := NewOnlineStandardizer(1)
	for i := 0; i < 10; i++ {
		s.Observe([]float64{4})
	}
	out, err := s.Apply([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 {
		t.Errorf("constant dim standardized to %v, want 0 (centered, unscaled)", out[0])
	}
}

func TestGate(t *testing.T) {
	if _, err := NewGate(0); !errors.Is(err, ErrConfig) {
		t.Errorf("bad threshold err = %v", err)
	}
	g, err := NewGate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	tight := core.GaussianVec{Mean: tensor.Vector{1, 2}, Var: tensor.Vector{0.01, 0.04}}
	if d := g.Check(tight); d != Accept {
		t.Errorf("tight pred decision = %v, want accept", d)
	}
	wide := core.GaussianVec{Mean: tensor.Vector{1, 2}, Var: tensor.Vector{4, 4}}
	if d := g.Check(wide); d != Escalate {
		t.Errorf("wide pred decision = %v, want escalate", d)
	}
	a, e, nf := g.Stats()
	if a != 1 || e != 1 || nf != 0 {
		t.Errorf("Stats = (%d, %d, %d), want (1, 1, 0)", a, e, nf)
	}
	if Accept.String() != "accept" || Escalate.String() != "escalate" {
		t.Error("Decision strings wrong")
	}
}

func buildEstimator(t *testing.T, inputDim int) core.Estimator {
	t.Helper()
	net, err := nn.New(nn.Config{
		InputDim: inputDim, Hidden: []int{8}, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestGateNonFinite(t *testing.T) {
	// Regression: a zero-dim prediction made Check compute s/0 = 0/0 = NaN,
	// which fails the <= test and silently escalated; NaN variances did the
	// same. Both must escalate AND be counted as nonFinite so telemetry can
	// tell a broken producer from a legitimately uncertain one.
	g, err := NewGate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pred core.GaussianVec
	}{
		{"zero-dim", core.GaussianVec{}},
		{"nan-var", core.GaussianVec{Mean: tensor.Vector{1}, Var: tensor.Vector{math.NaN()}}},
		{"inf-var", core.GaussianVec{Mean: tensor.Vector{1}, Var: tensor.Vector{math.Inf(1)}}},
		{"negative-var", core.GaussianVec{Mean: tensor.Vector{1}, Var: tensor.Vector{-1}}}, // sqrt(-1) = NaN
		{"nan-after-ok-dims", core.GaussianVec{Mean: tensor.Vector{1, 2}, Var: tensor.Vector{0.01, math.NaN()}}},
	}
	for i, c := range cases {
		if d := g.Check(c.pred); d != Escalate {
			t.Errorf("%s: decision = %v, want escalate", c.name, d)
		}
		a, e, nf := g.Stats()
		if a != 0 || e != int64(i+1) || nf != int64(i+1) {
			t.Errorf("%s: Stats = (%d, %d, %d), want (0, %d, %d)", c.name, a, e, nf, i+1, i+1)
		}
	}
	// Ordinary decisions do not touch the nonFinite counter.
	ok := core.GaussianVec{Mean: tensor.Vector{1}, Var: tensor.Vector{0.01}}
	if d := g.Check(ok); d != Accept {
		t.Errorf("finite tight pred: decision = %v, want accept", d)
	}
	wide := core.GaussianVec{Mean: tensor.Vector{1}, Var: tensor.Vector{100}}
	if d := g.Check(wide); d != Escalate {
		t.Errorf("finite wide pred: decision = %v, want escalate", d)
	}
	a, e, nf := g.Stats()
	if a != 1 || e != int64(len(cases))+1 || nf != int64(len(cases)) {
		t.Errorf("final Stats = (%d, %d, %d), want (1, %d, %d)", a, e, nf, len(cases)+1, len(cases))
	}
}

// TestWindowerRingProperty pins the ring-buffer reconstruction against a
// naive reference that keeps every sample in an append-only slice and cuts
// windows directly: for every (channels, length, stride) — including stride
// greater than the window length, strides that do not divide count−length,
// and windows straddling the ring's wrap boundary — the emitted windows must
// match the reference sample-for-sample, and emissions must happen exactly
// when (count−length) mod stride == 0.
func TestWindowerRingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type cfg struct{ channels, length, stride int }
	cfgs := []cfg{
		{1, 1, 1},
		{1, 4, 1},   // every wrap boundary exercised after the 4th push
		{1, 4, 3},   // stride does not divide (count − length)
		{2, 5, 7},   // stride > length: windows skip samples entirely
		{3, 8, 8},   // stride == length: tumbling windows
		{1, 6, 4},   // wrap-boundary windows at many offsets
		{4, 3, 2},   // multichannel with overlapping windows
		{2, 16, 31}, // stride ≫ length over a long run
	}
	// Randomized configurations widen the sweep beyond the handpicked edges.
	for i := 0; i < 24; i++ {
		cfgs = append(cfgs, cfg{1 + rng.Intn(4), 1 + rng.Intn(12), 1 + rng.Intn(20)})
	}
	for _, c := range cfgs {
		w, err := NewWindower(c.channels, c.length, c.stride)
		if err != nil {
			t.Fatalf("NewWindower(%+v): %v", c, err)
		}
		// The reference: all samples ever pushed, flattened time-major.
		var all []float64
		pushes := c.length*3 + c.stride*3 + rng.Intn(40)
		emitted := 0
		for n := 1; n <= pushes; n++ {
			sample := make([]float64, c.channels)
			for j := range sample {
				sample[j] = rng.NormFloat64()
			}
			all = append(all, sample...)
			got, ready, err := w.Push(sample)
			if err != nil {
				t.Fatalf("%+v push %d: %v", c, n, err)
			}
			wantReady := n >= c.length && (n-c.length)%c.stride == 0
			if ready != wantReady {
				t.Fatalf("%+v push %d: ready = %v, want %v", c, n, ready, wantReady)
			}
			if !ready {
				if got != nil {
					t.Fatalf("%+v push %d: non-nil window without ready", c, n)
				}
				continue
			}
			emitted++
			// The window is the most recent `length` samples, flattened.
			want := all[(n-c.length)*c.channels : n*c.channels]
			if len(got) != len(want) {
				t.Fatalf("%+v push %d: window len %d, want %d", c, n, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%+v push %d: window[%d] = %v, want %v (ring reconstruction diverged from reference)",
						c, n, j, got[j], want[j])
				}
			}
		}
		if wantEmitted := (pushes-c.length)/c.stride + 1; pushes >= c.length && emitted != wantEmitted {
			t.Errorf("%+v: emitted %d windows over %d pushes, want %d", c, emitted, pushes, wantEmitted)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	win, err := NewWindower(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	std, err := NewOnlineStandardizer(8)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := NewGate(1000) // accept everything
	if err != nil {
		t.Fatal(err)
	}
	est := buildEstimator(t, 8)
	p, err := NewPipeline(win, std, est, gate)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	results := 0
	for i := 0; i < 30; i++ {
		res, err := p.Push([]float64{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			results++
			if res.Pred.Dim() != 1 {
				t.Fatalf("pred dim = %d", res.Pred.Dim())
			}
			if res.Decision != Accept {
				t.Errorf("decision = %v", res.Decision)
			}
		}
	}
	// Windows complete at samples 4, 6, 8, ..., 30 → 14 results.
	if results != 14 {
		t.Errorf("results = %d, want 14", results)
	}
}

func TestPipelineValidation(t *testing.T) {
	win, _ := NewWindower(1, 4, 1)
	est := buildEstimator(t, 4)
	if _, err := NewPipeline(nil, nil, est, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil windower err = %v", err)
	}
	if _, err := NewPipeline(win, nil, nil, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil estimator err = %v", err)
	}
	badStd, _ := NewOnlineStandardizer(3)
	if _, err := NewPipeline(win, badStd, est, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("dim mismatch err = %v", err)
	}
	// nil gate accepts.
	p, err := NewPipeline(win, nil, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Push([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Push([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Decision != Accept {
		t.Error("nil gate should accept")
	}
}

func TestPipelineEstimatorDimMismatch(t *testing.T) {
	win, _ := NewWindower(1, 4, 1)
	est := buildEstimator(t, 7) // wrong: window dim is 4
	p, err := NewPipeline(win, nil, est, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Push([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Push([]float64{1}); err == nil {
		t.Error("expected estimator dim error")
	}
}

// TestGateConcurrent exercises the documented concurrency contract: many
// goroutines share one gate, and the counters must neither race (caught by
// -race in tools/check.sh) nor lose increments.
func TestGateConcurrent(t *testing.T) {
	g, err := NewGate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	low := core.GaussianVec{Mean: tensor.Vector{0}, Var: tensor.Vector{0.01}} // std 0.1: accept
	high := core.GaussianVec{Mean: tensor.Vector{0}, Var: tensor.Vector{4}}   // std 2: escalate
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				pred := low
				if (w+i)%2 == 0 {
					pred = high
				}
				g.Check(pred)
				if i%64 == 0 {
					// Interleave reads: Stats must always be consistent.
					a, e, _ := g.Stats()
					if a < 0 || e < 0 || a+e > workers*perWorker {
						t.Errorf("impossible stats (%d, %d)", a, e)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	a, e, _ := g.Stats()
	if a+e != workers*perWorker {
		t.Errorf("counts lost: accepted %d + escalated %d = %d, want %d",
			a, e, a+e, workers*perWorker)
	}
	if a != e {
		t.Errorf("accepted %d != escalated %d (workload is an even split)", a, e)
	}
}

// TestOnlineStandardizerConcurrent shares one standardizer across goroutines
// that interleave Observe, Apply, and Count — the drift-tracker deployment
// the type documents as safe.
func TestOnlineStandardizerConcurrent(t *testing.T) {
	s, err := NewOnlineStandardizer(3)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			x := make([]float64, 3)
			for i := 0; i < perWorker; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				if err := s.Observe(x); err != nil {
					t.Error(err)
					return
				}
				out, err := s.Apply(x)
				if err != nil {
					t.Error(err)
					return
				}
				for _, v := range out {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("standardized value %v not finite", v)
						return
					}
				}
				_ = s.Count()
			}
		}(w)
	}
	wg.Wait()
	if got := s.Count(); got != workers*perWorker {
		t.Errorf("Count() = %d, want %d", got, workers*perWorker)
	}
}
