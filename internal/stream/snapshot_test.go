package stream

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestWindowerSnapshotRoundTrip is the property test: for random shapes and
// random push prefixes (including hostile values — NaN, ±Inf, denormals),
// a restored windower emits exactly the same windows as the original for
// every subsequent push.
func TestWindowerSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hostile := []float64{0, 1, -1, math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, -2.5e308 / 1e8}
	for iter := 0; iter < 200; iter++ {
		channels := 1 + rng.Intn(4)
		length := 1 + rng.Intn(8)
		stride := 1 + rng.Intn(6)
		w, err := NewWindower(channels, length, stride)
		if err != nil {
			t.Fatal(err)
		}
		sample := func() []float64 {
			s := make([]float64, channels)
			for i := range s {
				if rng.Intn(8) == 0 {
					s[i] = hostile[rng.Intn(len(hostile))]
				} else {
					s[i] = rng.NormFloat64()
				}
			}
			return s
		}
		prefix := rng.Intn(3 * length)
		for i := 0; i < prefix; i++ {
			if _, _, err := w.Push(sample()); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := UnmarshalWindower(blob)
		if err != nil {
			t.Fatalf("iter %d (ch=%d len=%d stride=%d prefix=%d): %v",
				iter, channels, length, stride, prefix, err)
		}
		if restored.Count() != w.Count() {
			t.Fatalf("restored count %d != %d", restored.Count(), w.Count())
		}
		// The restored windower must continue the stream identically.
		for i := 0; i < 3*length; i++ {
			s := sample()
			w1, ok1, err1 := w.Push(s)
			w2, ok2, err2 := restored.Push(s)
			if (err1 == nil) != (err2 == nil) || ok1 != ok2 {
				t.Fatalf("push %d diverged: ok %v/%v err %v/%v", i, ok1, ok2, err1, err2)
			}
			if ok1 && !bitsEqual(w1, w2) {
				t.Fatalf("push %d: windows diverged\n orig %v\n rest %v", i, w1, w2)
			}
		}
	}
}

// bitsEqual compares float slices bit-for-bit (NaN == NaN under this test).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestStandardizerSnapshotRoundTrip: a restored standardizer continues the
// moment stream bit-for-bit — Apply output and internal statistics match the
// uninterrupted accumulator exactly for every subsequent observation.
func TestStandardizerSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		dim := 1 + rng.Intn(12)
		s, err := NewOnlineStandardizer(dim)
		if err != nil {
			t.Fatal(err)
		}
		vec := func() []float64 {
			v := make([]float64, dim)
			for i := range v {
				v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			return v
		}
		for i := rng.Intn(40); i > 0; i-- {
			if err := s.Observe(vec()); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := UnmarshalOnlineStandardizer(blob)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if restored.Count() != s.Count() {
			t.Fatalf("restored count %d != %d", restored.Count(), s.Count())
		}
		for i := 0; i < 20; i++ {
			v := vec()
			if err := s.Observe(v); err != nil {
				t.Fatal(err)
			}
			if err := restored.Observe(v); err != nil {
				t.Fatal(err)
			}
			a1, err1 := s.Apply(v)
			a2, err2 := restored.Apply(v)
			if err1 != nil || err2 != nil {
				t.Fatalf("apply: %v / %v", err1, err2)
			}
			if !bitsEqual(a1, a2) {
				t.Fatalf("observation %d: Apply diverged\n orig %v\n rest %v", i, a1, a2)
			}
		}
	}
}

// TestSnapshotCorruptRejection: every single-bit flip of a valid snapshot
// must be rejected (the CRC guarantees this for all sub-2^32 corruption of
// one bit), as must truncations, trailing garbage, wrong magic, and unknown
// versions. Decoders must never panic on arbitrary input.
func TestSnapshotCorruptRejection(t *testing.T) {
	w, err := NewWindower(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := w.Push([]float64{float64(i), -float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewOnlineStandardizer(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	wBlob, _ := w.MarshalBinary()
	sBlob, _ := s.MarshalBinary()

	check := func(name string, decode func([]byte) error, blob []byte) {
		t.Helper()
		if err := decode(blob); err != nil {
			t.Fatalf("%s: valid blob rejected: %v", name, err)
		}
		// Single-bit flips anywhere in the payload.
		for bit := 0; bit < 8*len(blob); bit += 7 {
			mut := bytes.Clone(blob)
			mut[bit/8] ^= 1 << (bit % 8)
			if err := decode(mut); err == nil {
				t.Fatalf("%s: bit flip at %d accepted", name, bit)
			} else if !errors.Is(err, ErrSnapshot) && !errors.Is(err, ErrConfig) {
				t.Fatalf("%s: bit flip at %d: error %v not ErrSnapshot/ErrConfig", name, bit, err)
			}
		}
		// Truncations at every length.
		for n := 0; n < len(blob); n++ {
			if err := decode(blob[:n]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", name, n)
			}
		}
		// Trailing garbage.
		if err := decode(append(bytes.Clone(blob), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
		// Empty and garbage inputs.
		if err := decode(nil); err == nil {
			t.Fatalf("%s: nil accepted", name)
		}
		if err := decode([]byte("not a snapshot at all, definitely")); err == nil {
			t.Fatalf("%s: garbage accepted", name)
		}
	}

	check("windower", func(b []byte) error {
		_, err := UnmarshalWindower(b)
		return err
	}, wBlob)
	check("standardizer", func(b []byte) error {
		_, err := UnmarshalOnlineStandardizer(b)
		return err
	}, sBlob)

	// Cross-decode: each magic must be rejected by the other decoder.
	if _, err := UnmarshalWindower(sBlob); err == nil {
		t.Fatal("windower decoder accepted standardizer blob")
	}
	if _, err := UnmarshalOnlineStandardizer(wBlob); err == nil {
		t.Fatal("standardizer decoder accepted windower blob")
	}
}

// TestStandardizerSnapshotInvariants: structurally valid blobs that violate
// the Welford invariants (negative M2, non-finite mean) are rejected even
// though their CRC is correct.
func TestStandardizerSnapshotInvariants(t *testing.T) {
	mk := func(mean, m2 float64) []byte {
		b := []byte(standardizerMagic)
		b = appendU16(b, snapshotVersion)
		b = appendU32(b, 1) // dim
		b = appendU64(b, 3) // count
		b = appendF64(b, mean)
		b = appendF64(b, m2)
		return appendCRC(b)
	}
	if _, err := UnmarshalOnlineStandardizer(mk(0, 1)); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	for name, blob := range map[string][]byte{
		"negative m2": mk(0, -1),
		"nan m2":      mk(0, math.NaN()),
		"inf mean":    mk(math.Inf(1), 1),
		"nan mean":    mk(math.NaN(), 1),
	} {
		if _, err := UnmarshalOnlineStandardizer(blob); !errors.Is(err, ErrSnapshot) {
			t.Fatalf("%s: err = %v, want ErrSnapshot", name, err)
		}
	}
}

// TestWindowerSnapshotHeadInvariant: the head is derived from the count on
// restore, so a snapshot taken at any phase restores the ring orientation
// exactly (covered structurally here, behaviorally by the round-trip test).
func TestWindowerSnapshotHeadInvariant(t *testing.T) {
	w, err := NewWindower(1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, _, err := w.Push([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	blob, _ := w.MarshalBinary()
	r, err := UnmarshalWindower(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.head != w.head || r.count != w.count {
		t.Fatalf("restored head/count %d/%d != %d/%d", r.head, r.count, w.head, w.count)
	}
}
