// Package serve is the dynamic micro-batching layer between concurrent
// request handlers and the batched moment-propagation fast path: a request
// coalescer in the Triton/TF-Serving dynamic-batching mold. Concurrent
// single-row predict requests enqueue into one bounded queue; a dispatcher
// flushes them as a single batch when a size threshold (MaxBatch) or a
// latency budget (MaxWait) is hit — or, by default, as soon as a flush
// worker is idle, so an unloaded server adds no batching latency and batches
// emerge naturally under load (arrivals accumulate while a flush runs).
//
// The coalescer guarantees:
//
//   - results are demultiplexed back to callers in request order within a
//     flush, bit-identical to running each request alone (the flush function
//     receives the rows exactly as submitted; core.PropagateBatch rows are
//     bit-identical to per-row Propagate);
//   - per-request context cancellation: a caller whose ctx ends returns
//     immediately, and its queued row is dropped before the flush;
//   - bounded memory: at most QueueDepth requests wait at once, and
//     Do/DoBatch fail fast with ErrQueueFull beyond that (backpressure, not
//     buffering) — HTTP servers map this to 429;
//   - graceful drain: Close stops intake, flushes everything queued, and
//     waits for in-flight flushes, bounded by the caller's context.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrQueueFull is the class of every queue-full rejection: errors.Is
	// matches it on the *QueueFullError values Do/DoBatch actually return —
	// explicit backpressure for the caller to surface (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned by Do/DoBatch after Close has begun.
	ErrClosed = errors.New("serve: coalescer closed")
	// ErrConfig is returned (wrapped) by New for invalid configurations.
	ErrConfig = errors.New("serve: invalid configuration")
)

// QueueFullError is the typed queue-full rejection: it matches ErrQueueFull
// under errors.Is and carries a retry budget — how long the caller should
// back off before the queue has plausibly drained. The hint is the current
// queue depth times the coalescer's observed per-row service time (an EWMA
// over recent flushes, divided across flush workers), so a lightly loaded
// pool hints milliseconds while a deeply backed-up one hints its true drain
// horizon. HTTP servers surface it as a Retry-After header on 429.
type QueueFullError struct {
	// Depth is the queue depth observed at rejection (== QueueDepth).
	Depth int
	// RetryAfter estimates the time for the present queue to drain.
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: queue full (depth %d, retry after %v)", e.Depth, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQueueFull) hold for every QueueFullError, so
// the typed rejection slots into existing sentinel checks unchanged.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// RetryAfter extracts the retry budget from a queue-full rejection anywhere
// in err's chain. ok is false for every other error (including nil).
func RetryAfter(err error) (hint time.Duration, ok bool) {
	var qf *QueueFullError
	if errors.As(err, &qf) {
		return qf.RetryAfter, true
	}
	return 0, false
}

// Flush reasons recorded by Metrics.Flushes.
const (
	// ReasonSize: the queue reached MaxBatch.
	ReasonSize = "size"
	// ReasonTimeout: the oldest queued request waited out MaxWait.
	ReasonTimeout = "timeout"
	// ReasonIdle: a flush worker was idle and eager flushing is on.
	ReasonIdle = "idle"
	// ReasonDrain: Close is flushing the remaining queue.
	ReasonDrain = "drain"
)

// Config tunes a Coalescer. The zero value selects the defaults noted on
// each field.
type Config struct {
	// MaxBatch is the flush size threshold: a batch never exceeds it, and
	// reaching it triggers an immediate flush. Defaults to 64 (the knee of
	// the PropagateBatch speedup curve on the reference net).
	MaxBatch int
	// MaxWait is the latency budget: a partial batch is flushed once its
	// oldest request has waited this long, even if no flush worker is idle.
	// Defaults to 2ms.
	MaxWait time.Duration
	// QueueDepth bounds the number of requests waiting to be batched.
	// Enqueueing beyond it fails with ErrQueueFull. Defaults to 4×MaxBatch.
	QueueDepth int
	// FlushWorkers is the number of goroutines executing flushes; while all
	// are busy, arrivals accumulate into the next batch. Defaults to 1: the
	// batched propagation path is internally parallel, so one in-flight
	// flush already saturates the cores while the next batch forms.
	FlushWorkers int
	// StrictWait disables the eager-idle policy: with it set, a partial
	// batch always waits out MaxWait (or MaxBatch arrivals), even when a
	// flush worker sits idle. The default (false) flushes immediately when a
	// worker is idle, which keeps single-request latency at the direct-call
	// floor and still forms full batches under load.
	StrictWait bool
	// Metrics, when non-nil, receives queue/batch/flush observations (see
	// NewMetrics). A nil Metrics costs nothing on the hot path.
	Metrics *Metrics
	// TenantWeights sets per-tenant weighted-round-robin drain shares for a
	// keyed coalescer (NewKeyed): a tenant with weight k contributes up to k
	// rows per scheduling turn. Unlisted tenants get weight 1. Only valid
	// with NewKeyed; every listed weight must be >= 1.
	TenantWeights map[string]int
	// TenantQueueDepth, when > 0, additionally bounds how many requests a
	// single tenant may have queued at once in a keyed coalescer, so one
	// chatty fleet cannot consume the whole global QueueDepth. Only valid
	// with NewKeyed.
	TenantQueueDepth int
}

func (c *Config) fillDefaults() error {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.FlushWorkers == 0 {
		c.FlushWorkers = 1
	}
	switch {
	case c.MaxBatch < 1:
		return fmt.Errorf("MaxBatch %d: %w", c.MaxBatch, ErrConfig)
	case c.MaxWait < 0:
		return fmt.Errorf("MaxWait %v: %w", c.MaxWait, ErrConfig)
	case c.QueueDepth < c.MaxBatch:
		return fmt.Errorf("QueueDepth %d < MaxBatch %d: %w", c.QueueDepth, c.MaxBatch, ErrConfig)
	case c.FlushWorkers < 1:
		return fmt.Errorf("FlushWorkers %d: %w", c.FlushWorkers, ErrConfig)
	case c.TenantQueueDepth < 0:
		return fmt.Errorf("TenantQueueDepth %d: %w", c.TenantQueueDepth, ErrConfig)
	}
	for name, w := range c.TenantWeights {
		if w < 1 {
			return fmt.Errorf("TenantWeights[%q] = %d: %w", name, w, ErrConfig)
		}
	}
	return nil
}

// result is one demultiplexed outcome.
type result[Res any] struct {
	val Res
	err error
}

// call is one queued request: the caller's context, the request row, and a
// 1-buffered channel the flush outcome is delivered on (buffered so delivery
// never blocks on a caller that already gave up).
type call[Req, Res any] struct {
	ctx context.Context
	req Req
	res chan result[Res]
	enq time.Time
}

// tenantFIFO is one tenant's waiting calls inside a keyed coalescer, plus
// its weighted-round-robin share.
type tenantFIFO[Req, Res any] struct {
	calls  []*call[Req, Res]
	weight int
}

// Coalescer enqueues concurrent requests and flushes them in batches through
// a single flush function. Create with New (single shared FIFO) or NewKeyed
// (per-tenant FIFOs with weighted-round-robin drain); all methods are safe
// for concurrent use.
type Coalescer[Req, Res any] struct {
	cfg   Config
	flush func([]Req) ([]Res, error)
	// tenantOf, when non-nil, keys each request to a tenant FIFO (NewKeyed).
	tenantOf func(Req) string

	mu     sync.Mutex
	queue  []*call[Req, Res]
	closed bool
	// Keyed-mode state (tenantOf != nil): per-tenant FIFOs, the round-robin
	// ring of tenants with queued work, the drain cursor into it, and the
	// total queued count. The unkeyed path never touches these.
	tenants map[string]*tenantFIFO[Req, Res]
	ring    []string
	cursor  int
	total   int
	// inflight counts batches handed to workers and not yet finished; a
	// flush worker is genuinely idle iff inflight < FlushWorkers.
	inflight int

	kick    chan struct{}          // dispatcher wakeup (1-buffered, coalescing)
	batches chan []*call[Req, Res] // dispatcher → flush workers
	drained chan struct{}          // closed when dispatcher + workers have exited

	// rowNanos is an EWMA of per-row flush wall time (float64 bits), updated
	// after every flush; it prices the RetryAfter hint on QueueFullError.
	// Zero until the first flush completes.
	rowNanos atomic.Uint64
}

// New builds a Coalescer whose batches are executed by flush. The flush
// function receives between 1 and MaxBatch requests in submission order and
// must return one result per request (a short or over-long result slice is
// reported to every caller in the batch as an error). It may be called
// concurrently when FlushWorkers > 1.
func New[Req, Res any](cfg Config, flush func([]Req) ([]Res, error)) (*Coalescer[Req, Res], error) {
	if cfg.TenantWeights != nil || cfg.TenantQueueDepth != 0 {
		return nil, fmt.Errorf("tenant fairness config requires NewKeyed: %w", ErrConfig)
	}
	return newCoalescer(cfg, nil, flush)
}

// NewKeyed builds a tenant-fair Coalescer: tenantOf maps each request to a
// tenant, each tenant gets its own FIFO, and batches are cut by weighted
// round-robin across tenants with queued work (Config.TenantWeights sets the
// shares; unlisted tenants get 1). A tenant sending requests faster than its
// share is drained can therefore delay only its own traffic — other tenants'
// head-of-line latency is bounded by the ring, not by the aggressor's queue
// length. Within one tenant, requests still flush in submission order, and
// every per-request guarantee of New (bit-identical results, cancellation,
// backpressure, drain) is unchanged.
func NewKeyed[Req, Res any](cfg Config, tenantOf func(Req) string, flush func([]Req) ([]Res, error)) (*Coalescer[Req, Res], error) {
	if tenantOf == nil {
		return nil, fmt.Errorf("nil tenantOf function: %w", ErrConfig)
	}
	return newCoalescer(cfg, tenantOf, flush)
}

func newCoalescer[Req, Res any](cfg Config, tenantOf func(Req) string, flush func([]Req) ([]Res, error)) (*Coalescer[Req, Res], error) {
	if flush == nil {
		return nil, fmt.Errorf("nil flush function: %w", ErrConfig)
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Coalescer[Req, Res]{
		cfg:      cfg,
		flush:    flush,
		tenantOf: tenantOf,
		kick:     make(chan struct{}, 1),
		batches:  make(chan []*call[Req, Res]),
		drained:  make(chan struct{}),
	}
	if tenantOf != nil {
		c.tenants = make(map[string]*tenantFIFO[Req, Res])
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.FlushWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.worker()
		}()
	}
	go func() {
		c.dispatch()
		wg.Wait()
		close(c.drained)
	}()
	return c, nil
}

// Do enqueues one request and blocks until its batch has been flushed, the
// context ends, or the request is rejected. It returns ErrQueueFull when the
// queue is at QueueDepth and ErrClosed after Close has begun; a context
// error means the caller stopped waiting (the queued row is dropped before
// it reaches the flush function).
func (c *Coalescer[Req, Res]) Do(ctx context.Context, req Req) (Res, error) {
	var zero Res
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	it := &call[Req, Res]{ctx: ctx, req: req, res: make(chan result[Res], 1), enq: time.Now()}
	if err := c.enqueue(it); err != nil {
		return zero, err
	}
	select {
	case r := <-it.res:
		return r.val, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// DoBatch enqueues a multi-row request through the same flush pipeline and
// blocks until every row has a result. Admission is all-or-nothing: if the
// rows don't fit in the queue, nothing is enqueued and ErrQueueFull is
// returned, so a large batch cannot partially starve single requests. Rows
// may be split across flushes (each at most MaxBatch) and are returned in
// submission order.
func (c *Coalescer[Req, Res]) DoBatch(ctx context.Context, reqs []Req) ([]Res, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	items := make([]*call[Req, Res], len(reqs))
	now := time.Now()
	for i, r := range reqs {
		items[i] = &call[Req, Res]{ctx: ctx, req: r, res: make(chan result[Res], 1), enq: now}
	}
	if err := c.enqueueAll(items); err != nil {
		return nil, err
	}
	out := make([]Res, len(items))
	for i, it := range items {
		select {
		case r := <-it.res:
			if r.err != nil {
				return nil, r.err
			}
			out[i] = r.val
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

func (c *Coalescer[Req, Res]) enqueue(it *call[Req, Res]) error {
	return c.enqueueAll([]*call[Req, Res]{it})
}

func (c *Coalescer[Req, Res]) enqueueAll(items []*call[Req, Res]) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	depth := c.lenLocked()
	if depth+len(items) > c.cfg.QueueDepth || !c.admitKeyedLocked(items) {
		c.mu.Unlock()
		c.cfg.Metrics.reject()
		return &QueueFullError{Depth: depth, RetryAfter: c.retryAfter(depth)}
	}
	if c.tenantOf == nil {
		c.queue = append(c.queue, items...)
	} else {
		for _, it := range items {
			c.pushKeyedLocked(it)
		}
	}
	depth = c.lenLocked()
	c.mu.Unlock()
	c.cfg.Metrics.depth(depth)
	c.wake()
	return nil
}

// lenLocked returns the total queued count. Caller holds c.mu.
func (c *Coalescer[Req, Res]) lenLocked() int {
	if c.tenantOf == nil {
		return len(c.queue)
	}
	return c.total
}

// admitKeyedLocked checks the per-tenant depth bound for an all-or-nothing
// admission of items (always true unkeyed or with no per-tenant bound).
// Caller holds c.mu.
func (c *Coalescer[Req, Res]) admitKeyedLocked(items []*call[Req, Res]) bool {
	if c.tenantOf == nil || c.cfg.TenantQueueDepth <= 0 {
		return true
	}
	var added map[string]int
	for _, it := range items {
		name := c.tenantOf(it.req)
		queued := 0
		if q := c.tenants[name]; q != nil {
			queued = len(q.calls)
		}
		if queued+added[name]+1 > c.cfg.TenantQueueDepth {
			return false
		}
		if added == nil {
			added = make(map[string]int)
		}
		added[name]++
	}
	return true
}

// pushKeyedLocked appends one call to its tenant FIFO, activating the tenant
// in the round-robin ring if it was idle. Caller holds c.mu.
func (c *Coalescer[Req, Res]) pushKeyedLocked(it *call[Req, Res]) {
	name := c.tenantOf(it.req)
	q := c.tenants[name]
	if q == nil {
		w := c.cfg.TenantWeights[name]
		if w < 1 {
			w = 1
		}
		q = &tenantFIFO[Req, Res]{weight: w}
		c.tenants[name] = q
	}
	if len(q.calls) == 0 {
		c.ring = append(c.ring, name)
	}
	q.calls = append(q.calls, it)
	c.total++
}

// oldestLocked returns the enqueue time of the oldest queued call; dispatch
// uses it to arm the MaxWait timer. Caller holds c.mu and has checked the
// queue is non-empty.
func (c *Coalescer[Req, Res]) oldestLocked() time.Time {
	if c.tenantOf == nil {
		return c.queue[0].enq
	}
	var oldest time.Time
	for _, name := range c.ring {
		if head := c.tenants[name].calls[0].enq; oldest.IsZero() || head.Before(oldest) {
			oldest = head
		}
	}
	return oldest
}

// retryAfter prices a queue-full rejection: the time for depth queued rows
// to drain at the observed per-row flush rate, split across flush workers.
// Before any flush has completed (no rate observation yet) the hint falls
// back to MaxWait — the latency budget the first flush is bounded by.
func (c *Coalescer[Req, Res]) retryAfter(depth int) time.Duration {
	perRow := math.Float64frombits(c.rowNanos.Load())
	if perRow <= 0 {
		return c.cfg.MaxWait
	}
	d := time.Duration(perRow * float64(depth) / float64(c.cfg.FlushWorkers))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// observeFlush folds one flush's per-row wall time into the EWMA behind
// retryAfter. α = 0.2: a few flushes re-center the estimate after a load or
// batch-shape shift, while single outlier flushes barely move it.
func (c *Coalescer[Req, Res]) observeFlush(dur time.Duration, rows int) {
	if rows <= 0 || dur <= 0 {
		return
	}
	sample := float64(dur.Nanoseconds()) / float64(rows)
	for {
		old := c.rowNanos.Load()
		prev := math.Float64frombits(old)
		next := sample
		if prev > 0 {
			next = 0.8*prev + 0.2*sample
		}
		if c.rowNanos.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// wake nudges the dispatcher; the 1-buffered channel coalesces bursts.
func (c *Coalescer[Req, Res]) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close stops intake (subsequent Do/DoBatch return ErrClosed), flushes every
// queued request, and waits — bounded by ctx — for in-flight flushes to
// finish. Requests already enqueued complete normally; this is what lets an
// HTTP server drain on SIGTERM instead of dropping work. Close is
// idempotent; every call waits for the same drain.
func (c *Coalescer[Req, Res]) Close(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.wake()
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Depth reports the number of requests currently waiting to be batched
// (summed across tenants for a keyed coalescer).
func (c *Coalescer[Req, Res]) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}

// dispatch is the single scheduling goroutine: it watches the queue and cuts
// batches when MaxBatch fills, MaxWait expires, a worker is idle (unless
// StrictWait), or the coalescer is draining. A batch is only ever popped
// when a flush worker is free, so every waiting request stays in the queue
// until the moment its flush starts — which is what makes the QueueDepth
// backpressure bound exact. Exactly one dispatcher exists per Coalescer, so
// batch formation is race-free by construction.
func (c *Coalescer[Req, Res]) dispatch() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		c.mu.Lock()
		n := c.lenLocked()
		closed := c.closed
		idle := c.inflight < c.cfg.FlushWorkers
		if n == 0 {
			c.mu.Unlock()
			if closed {
				// Workers still mid-flush exit once they finish: closing
				// the channel ends their receive loop.
				close(c.batches)
				return
			}
			<-c.kick
			continue
		}
		if !idle {
			// Nothing can flush until a worker frees up; its finish kicks us.
			c.mu.Unlock()
			<-c.kick
			continue
		}
		reason := ""
		switch {
		case closed:
			reason = ReasonDrain
		case n >= c.cfg.MaxBatch:
			reason = ReasonSize
		case !c.cfg.StrictWait:
			// An immediate idle flush would cut a batch of whatever happens
			// to be queued right now — under a concurrent burst that is often
			// just the first arrival, with its peers runnable but not yet
			// scheduled (acute on few-core machines, where the flush then
			// monopolizes the processor and every row flushes alone). Linger
			// instead: yield the processor while the queue keeps growing, so
			// concurrent enqueuers join this batch. Each extra round requires
			// at least one new row, bounding the loop by MaxBatch; a stable
			// queue exits after one yield, so an isolated request still
			// flushes with no timer wait.
			for {
				prev := c.lenLocked()
				c.mu.Unlock()
				runtime.Gosched()
				c.mu.Lock()
				if c.lenLocked() <= prev || c.lenLocked() >= c.cfg.MaxBatch || c.closed {
					break
				}
			}
			// The linger may have filled the batch or raced with Close;
			// re-derive what this flush is.
			switch {
			case c.closed:
				reason = ReasonDrain
			case c.lenLocked() >= c.cfg.MaxBatch:
				reason = ReasonSize
			default:
				reason = ReasonIdle
			}
		default:
			wait := time.Until(c.oldestLocked().Add(c.cfg.MaxWait))
			if wait <= 0 {
				reason = ReasonTimeout
			} else {
				c.mu.Unlock()
				timer.Reset(wait)
				select {
				case <-c.kick:
					if !timer.Stop() {
						<-timer.C
					}
				case <-timer.C:
				}
				continue
			}
		}
		batch := c.take()
		c.inflight++
		c.mu.Unlock()
		c.cfg.Metrics.flushed(reason)
		// Never blocks meaningfully: inflight < FlushWorkers guarantees a
		// worker is at (or headed to) its receive.
		c.batches <- batch
	}
}

// take pops up to MaxBatch calls — FIFO unkeyed, weighted round-robin across
// tenant FIFOs keyed. Caller holds c.mu.
func (c *Coalescer[Req, Res]) take() []*call[Req, Res] {
	if c.tenantOf != nil {
		return c.takeKeyed()
	}
	n := len(c.queue)
	if n > c.cfg.MaxBatch {
		n = c.cfg.MaxBatch
	}
	batch := make([]*call[Req, Res], n)
	copy(batch, c.queue[:n])
	rest := copy(c.queue, c.queue[n:])
	for i := rest; i < len(c.queue); i++ {
		c.queue[i] = nil // release call pointers for GC
	}
	c.queue = c.queue[:rest]
	c.cfg.Metrics.depth(rest)
	return batch
}

// takeKeyed cuts one batch by weighted round-robin: starting at the drain
// cursor, each tenant in the ring contributes up to its weight in rows, the
// ring is circled until the batch fills or the queue empties, and drained-dry
// tenants drop out of the ring. The cursor persists across batches, so drain
// opportunity rotates even when every batch is cut at MaxBatch. Caller holds
// c.mu.
func (c *Coalescer[Req, Res]) takeKeyed() []*call[Req, Res] {
	n := c.total
	if n > c.cfg.MaxBatch {
		n = c.cfg.MaxBatch
	}
	batch := make([]*call[Req, Res], 0, n)
	for len(batch) < n {
		if c.cursor >= len(c.ring) {
			c.cursor = 0
		}
		name := c.ring[c.cursor]
		q := c.tenants[name]
		take := q.weight
		if take > n-len(batch) {
			take = n - len(batch)
		}
		if take > len(q.calls) {
			take = len(q.calls)
		}
		batch = append(batch, q.calls[:take]...)
		rest := copy(q.calls, q.calls[take:])
		for i := rest; i < len(q.calls); i++ {
			q.calls[i] = nil // release call pointers for GC
		}
		q.calls = q.calls[:rest]
		if rest == 0 {
			// Tenant drained: drop it from the ring and the map (tenant
			// cardinality is caller-controlled, so idle tenants must not
			// accumulate). The cursor now points at the next tenant already.
			c.ring = append(c.ring[:c.cursor], c.ring[c.cursor+1:]...)
			delete(c.tenants, name)
		} else {
			c.cursor++
		}
	}
	c.total -= len(batch)
	c.cfg.Metrics.depth(c.total)
	return batch
}

// worker executes batches until the dispatcher closes the channel.
func (c *Coalescer[Req, Res]) worker() {
	for batch := range c.batches {
		c.runBatch(batch)
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		c.wake()
	}
}

// runBatch drops cancelled calls, executes the flush over the survivors, and
// demultiplexes results (or the flush error) back to every caller.
func (c *Coalescer[Req, Res]) runBatch(batch []*call[Req, Res]) {
	live := batch[:0]
	for _, it := range batch {
		if err := it.ctx.Err(); err != nil {
			it.res <- result[Res]{err: err}
			c.cfg.Metrics.cancel()
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}
	now := time.Now()
	reqs := make([]Req, len(live))
	for i, it := range live {
		reqs[i] = it.req
		c.cfg.Metrics.waited(now.Sub(it.enq))
	}
	c.cfg.Metrics.rows(len(live))
	flushStart := time.Now()
	ress, err := c.safeFlush(reqs)
	c.observeFlush(time.Since(flushStart), len(live))
	if err == nil && len(ress) != len(reqs) {
		err = fmt.Errorf("serve: flush returned %d results for %d requests", len(ress), len(reqs))
	}
	for i, it := range live {
		if err != nil {
			it.res <- result[Res]{err: err}
		} else {
			it.res <- result[Res]{val: ress[i]}
		}
	}
}

// safeFlush converts a panicking flush function into a per-batch error: a
// misbehaving model must fail the batch's callers, never hang them behind a
// dead worker.
func (c *Coalescer[Req, Res]) safeFlush(reqs []Req) (ress []Res, err error) {
	defer func() {
		if r := recover(); r != nil {
			ress, err = nil, fmt.Errorf("serve: flush panicked: %v", r)
		}
	}()
	return c.flush(reqs)
}
