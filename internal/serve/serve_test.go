package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// echoFlush doubles each request, recording batch sizes.
func echoFlush(sizes *[]int, mu *sync.Mutex) func([]int) ([]int, error) {
	return func(reqs []int) ([]int, error) {
		if mu != nil {
			mu.Lock()
			*sizes = append(*sizes, len(reqs))
			mu.Unlock()
		}
		out := make([]int, len(reqs))
		for i, r := range reqs {
			out[i] = 2 * r
		}
		return out, nil
	}
}

func mustNew[Req, Res any](t *testing.T, cfg Config, flush func([]Req) ([]Res, error)) *Coalescer[Req, Res] {
	t.Helper()
	c, err := New(cfg, flush)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Close(ctx)
	})
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New[int, int](Config{}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil flush err = %v, want ErrConfig", err)
	}
	bad := []Config{
		{MaxBatch: -1},
		{MaxWait: -time.Millisecond},
		{MaxBatch: 8, QueueDepth: 4},
		{FlushWorkers: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, echoFlush(nil, nil)); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d err = %v, want ErrConfig", i, err)
		}
	}
}

func TestDoConcurrent(t *testing.T) {
	// QueueDepth must cover all callers at once: every caller can enqueue
	// before the dispatcher runs, and backpressure is not under test here.
	c := mustNew(t, Config{MaxBatch: 8, QueueDepth: 256}, echoFlush(nil, nil))
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Do(context.Background(), i)
			if err != nil {
				errs <- err
				return
			}
			if got != 2*i {
				errs <- fmt.Errorf("Do(%d) = %d, want %d", i, got, 2*i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDoBatchOrderAndSplit(t *testing.T) {
	// MaxBatch 4 forces a 10-row DoBatch to split across flushes; results
	// must still come back in submission order.
	var sizes []int
	var mu sync.Mutex
	c := mustNew(t, Config{MaxBatch: 4, QueueDepth: 64}, echoFlush(&sizes, &mu))
	reqs := make([]int, 10)
	for i := range reqs {
		reqs[i] = i
	}
	out, err := c.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		if got != 2*i {
			t.Errorf("out[%d] = %d, want %d", i, got, 2*i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sizes {
		if s > 4 {
			t.Errorf("flush of %d rows exceeds MaxBatch 4", s)
		}
	}
	if out, err := c.DoBatch(context.Background(), nil); err != nil || out != nil {
		t.Errorf("empty DoBatch = (%v, %v), want (nil, nil)", out, err)
	}
}

// blockedCoalescer bundles a coalescer whose flushes signal on started and
// then block until release is closed, so tests can hold the worker busy
// while they fill the queue.
type blockedCoalescer struct {
	c       *Coalescer[int, int]
	started chan struct{} // one receive per flush call that began
	release chan struct{}
	flushed atomic.Int64 // rows that made it through a flush
}

func newBlockedCoalescer(t *testing.T, cfg Config) *blockedCoalescer {
	t.Helper()
	b := &blockedCoalescer{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	b.c = mustNew(t, cfg, func(reqs []int) ([]int, error) {
		b.started <- struct{}{}
		<-b.release
		b.flushed.Add(int64(len(reqs)))
		out := make([]int, len(reqs))
		for i, r := range reqs {
			out[i] = 2 * r
		}
		return out, nil
	})
	return b
}

// occupyWorker issues one request and waits until its flush has started, so
// the (single) flush worker is provably stuck in the flush function.
func (b *blockedCoalescer) occupyWorker(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.c.Do(context.Background(), 0); err != nil {
			t.Errorf("occupying Do(0): %v", err)
		}
	}()
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never started")
	}
}

// fillQueue occupies the flush worker and then fills the queue to depth.
func (b *blockedCoalescer) fillQueue(t *testing.T, depth int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	b.occupyWorker(t, &wg)
	for i := 1; i <= depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.c.Do(context.Background(), i); err != nil {
				t.Errorf("queued Do(%d): %v", i, err)
			}
		}(i)
	}
	waitFor(t, func() bool { return b.c.Depth() == depth })
	return &wg
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b := newBlockedCoalescer(t, Config{MaxBatch: 4, QueueDepth: 4, Metrics: m})
	wg := b.fillQueue(t, 4)

	if _, err := b.c.Do(context.Background(), 99); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on full queue err = %v, want ErrQueueFull", err)
	}
	// All-or-nothing batch admission: 2 rows don't fit either.
	if _, err := b.c.DoBatch(context.Background(), []int{1, 2}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("DoBatch on full queue err = %v, want ErrQueueFull", err)
	}
	close(b.release)
	wg.Wait()
	if got := m.rejected.Value(); got != 2 {
		t.Errorf("rejected counter = %v, want 2", got)
	}
	// After the drain, the queue accepts again.
	if got, err := b.c.Do(context.Background(), 21); err != nil || got != 42 {
		t.Errorf("Do after drain = (%d, %v), want (42, nil)", got, err)
	}
}

func TestContextCancellationMidQueue(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	b := newBlockedCoalescer(t, Config{MaxBatch: 8, QueueDepth: 8, Metrics: m})

	var wg sync.WaitGroup
	b.occupyWorker(t, &wg)

	// Queue one request and cancel it while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.c.Do(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return b.c.Depth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do err = %v, want context.Canceled", err)
	}

	// An expired context is rejected before enqueueing at all.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := b.c.Do(expired, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Do err = %v, want context.DeadlineExceeded", err)
	}

	close(b.release)
	wg.Wait()
	// Only the occupying request may reach the flush function: the
	// cancelled row must be dropped at flush assembly.
	waitFor(t, func() bool { return m.cancelled.Value() == 1 })
	if got := b.flushed.Load(); got != 1 {
		t.Errorf("flushed rows = %d, want 1 (cancelled row must be dropped)", got)
	}
}

func TestStrictWaitTimerFlush(t *testing.T) {
	var sizes []int
	var mu sync.Mutex
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := mustNew(t, Config{MaxBatch: 64, MaxWait: 5 * time.Millisecond, StrictWait: true, Metrics: m},
		echoFlush(&sizes, &mu))

	// A lone request must wait out MaxWait, then flush with reason=timeout.
	start := time.Now()
	if got, err := c.Do(context.Background(), 3); err != nil || got != 6 {
		t.Fatalf("Do = (%d, %v)", got, err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Errorf("strict-wait flush after %v, want >= MaxWait (5ms)", waited)
	}
	if got := m.flushes.With(ReasonTimeout).Value(); got != 1 {
		t.Errorf("timeout flushes = %v, want 1", got)
	}

	// MaxBatch simultaneous requests must flush on size, well before MaxWait.
	c2 := mustNew(t, Config{MaxBatch: 4, MaxWait: time.Hour, StrictWait: true, Metrics: m},
		echoFlush(&sizes, &mu))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c2.Do(context.Background(), i); err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := m.flushes.With(ReasonSize).Value(); got < 1 {
		t.Errorf("size flushes = %v, want >= 1", got)
	}
}

func TestEagerIdleFlushIsImmediate(t *testing.T) {
	// With the default eager-idle policy a lone request must NOT pay MaxWait.
	c := mustNew(t, Config{MaxBatch: 64, MaxWait: time.Hour}, echoFlush(nil, nil))
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eager-idle flush did not happen (request stuck behind MaxWait)")
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	b := newBlockedCoalescer(t, Config{MaxBatch: 4, QueueDepth: 16})
	wg := b.fillQueue(t, 8)

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- b.c.Close(ctx)
	}()
	// Intake stops immediately even while the drain is still blocked. The
	// probe carries a short deadline: until Close lands it would otherwise
	// enqueue and wait behind the stuck flush; once cancelled it is dropped
	// at flush assembly and never reaches the flush function.
	waitFor(t, func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
		defer cancel()
		_, err := b.c.Do(ctx, 100)
		return errors.Is(err, ErrClosed)
	})
	close(b.release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait() // every queued request completed, none dropped
	if got := b.flushed.Load(); got != 9 {
		t.Errorf("flushed rows = %d, want 9 (drain must complete queued work)", got)
	}
	// Idempotent.
	if err := b.c.Close(context.Background()); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestCloseHonorsContext(t *testing.T) {
	b := newBlockedCoalescer(t, Config{MaxBatch: 4, QueueDepth: 4})
	var wg sync.WaitGroup
	b.occupyWorker(t, &wg)
	defer func() {
		close(b.release) // let the stuck flush finish so Cleanup can drain
		wg.Wait()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := b.c.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with stuck flush err = %v, want DeadlineExceeded", err)
	}
}

func TestFlushErrorReachesEveryCaller(t *testing.T) {
	boom := errors.New("boom")
	c := mustNew(t, Config{MaxBatch: 4}, func(reqs []int) ([]int, error) {
		return nil, boom
	})
	if _, err := c.Do(context.Background(), 1); !errors.Is(err, boom) {
		t.Errorf("Do err = %v, want boom", err)
	}
}

func TestFlushPanicBecomesError(t *testing.T) {
	c := mustNew(t, Config{MaxBatch: 4}, func(reqs []int) ([]int, error) {
		panic("kernel exploded")
	})
	_, err := c.Do(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("Do err = %v, want panic converted to error", err)
	}
	// The worker must survive the panic and serve the next request.
	if _, err := c.Do(context.Background(), 2); err == nil || !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("second Do err = %v, want panic converted to error", err)
	}
}

func TestFlushResultCountMismatch(t *testing.T) {
	c := mustNew(t, Config{MaxBatch: 4}, func(reqs []int) ([]int, error) {
		return make([]int, len(reqs)+1), nil
	})
	if _, err := c.Do(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "results") {
		t.Fatalf("Do err = %v, want result-count error", err)
	}
}

// TestPredictBitIdentity is the coalescing correctness contract: every row
// coming back through the coalescer — whatever batch it happened to share a
// flush with — must be bit-identical to a direct per-request Propagate-based
// Predict on the same input.
func TestPredictBitIdentity(t *testing.T) {
	net, err := nn.New(nn.Config{
		InputDim: 5, Hidden: []int{32, 32}, OutputDim: 3,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewApDeepSense(net, core.Options{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewPredict(est, Config{MaxBatch: 16, QueueDepth: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(context.Background())

	rng := rand.New(rand.NewSource(4))
	const n = 128
	inputs := make([]tensor.Vector, n)
	want := make([]core.GaussianVec, n)
	for i := range inputs {
		x := make(tensor.Vector, net.InputDim())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		inputs[i] = x
		if want[i], err = est.Predict(x); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Do(context.Background(), inputs[i])
			if err != nil {
				t.Errorf("input %d: %v", i, err)
				return
			}
			if !got.Mean.Equal(want[i].Mean, 0) || !got.Var.Equal(want[i].Var, 0) {
				t.Errorf("input %d: coalesced result differs from direct Predict (mean %v vs %v)",
					i, got.Mean, want[i].Mean)
			}
		}(i)
	}
	wg.Wait()
}

// TestStressRandomCancellation is the race-mode soak (run with -race via
// tools/check.sh): hundreds of concurrent callers against a tiny queue, a
// slow flush, and random mid-queue cancellations. Every call must resolve to
// exactly one of {result, ErrQueueFull, context error}; nothing may hang,
// and surviving results must be correct.
func TestStressRandomCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := mustNew(t, Config{
		MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueDepth: 32,
		FlushWorkers: 2, Metrics: m,
	}, func(reqs []int) ([]int, error) {
		time.Sleep(50 * time.Microsecond) // hold workers busy so queues build
		out := make([]int, len(reqs))
		for i, r := range reqs {
			out[i] = 2 * r
		}
		return out, nil
	})

	const callers = 300
	var ok, full, cancelled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for rep := 0; rep < 20; rep++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(3) == 0 {
					// A deadline somewhere between "instant" and "comfortable".
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				got, err := c.Do(ctx, i)
				cancel()
				switch {
				case err == nil:
					if got != 2*i {
						t.Errorf("Do(%d) = %d", i, got)
					}
					ok.Add(1)
				case errors.Is(err, ErrQueueFull):
					full.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	t.Logf("stress: ok=%d full=%d cancelled=%d (metrics: rejected=%v dropped=%v)",
		ok.Load(), full.Load(), cancelled.Load(), m.rejected.Value(), m.cancelled.Value())
	if ok.Load() == 0 {
		t.Error("stress run completed no successful requests")
	}
	// The coalescer must drain cleanly after the storm.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := c.Close(ctx); err != nil {
		t.Fatalf("Close after stress: %v", err)
	}
}

// TestQueueFullRetryAfter pins the typed rejection: a full queue returns a
// *QueueFullError that matches ErrQueueFull, reports the observed depth, and
// carries a retry budget — MaxWait before any flush has calibrated the rate,
// the EWMA-priced drain estimate afterwards (checked deterministically via
// observeFlush below, not wall clocks).
func TestQueueFullRetryAfter(t *testing.T) {
	b := newBlockedCoalescer(t, Config{MaxBatch: 4, QueueDepth: 4, MaxWait: 5 * time.Millisecond})
	wg := b.fillQueue(t, 4)

	_, err := b.c.Do(context.Background(), 99)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("Do on full queue err = %T %v, want *QueueFullError", err, err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Error("QueueFullError does not match ErrQueueFull under errors.Is")
	}
	if qf.Depth != 4 {
		t.Errorf("QueueFullError.Depth = %d, want 4", qf.Depth)
	}
	// No flush has completed: the hint is the MaxWait fallback.
	if qf.RetryAfter != 5*time.Millisecond {
		t.Errorf("uncalibrated RetryAfter = %v, want MaxWait (5ms)", qf.RetryAfter)
	}
	if hint, ok := RetryAfter(err); !ok || hint != qf.RetryAfter {
		t.Errorf("RetryAfter(err) = (%v, %v), want (%v, true)", hint, ok, qf.RetryAfter)
	}
	if _, ok := RetryAfter(nil); ok {
		t.Error("RetryAfter(nil) reported a hint")
	}
	if _, ok := RetryAfter(ErrClosed); ok {
		t.Error("RetryAfter(ErrClosed) reported a hint")
	}
	close(b.release)
	wg.Wait()
}

// TestRetryAfterRateMath drives the EWMA directly so the drain-estimate
// arithmetic is pinned without depending on scheduler timing.
func TestRetryAfterRateMath(t *testing.T) {
	c := mustNew(t, Config{MaxBatch: 4, QueueDepth: 16, FlushWorkers: 2, MaxWait: 7 * time.Millisecond},
		func(reqs []int) ([]int, error) { return reqs, nil })
	defer c.Close(context.Background())

	if got := c.retryAfter(8); got != 7*time.Millisecond {
		t.Errorf("retryAfter before calibration = %v, want MaxWait (7ms)", got)
	}
	c.observeFlush(10*time.Millisecond, 10) // first sample: 1ms/row
	// 8 rows at 1ms/row across 2 workers = 4ms.
	if got := c.retryAfter(8); got != 4*time.Millisecond {
		t.Errorf("retryAfter(8) after 1ms/row = %v, want 4ms", got)
	}
	c.observeFlush(30*time.Millisecond, 10) // 3ms/row sample → EWMA 1.4ms/row
	if got := c.retryAfter(10); got != 7*time.Millisecond {
		t.Errorf("retryAfter(10) after EWMA update = %v, want 7ms", got)
	}
	// The floor keeps the hint meaningful for tiny queues and fast models.
	if got := c.retryAfter(1); got != time.Millisecond {
		t.Errorf("retryAfter(1) = %v, want the 1ms floor", got)
	}
	// Degenerate observations must not poison the estimate.
	c.observeFlush(0, 4)
	c.observeFlush(time.Millisecond, 0)
	if got := c.retryAfter(10); got != 7*time.Millisecond {
		t.Errorf("retryAfter(10) after degenerate samples = %v, want 7ms", got)
	}
}
