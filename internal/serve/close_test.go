package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCloseIdempotent: Close may be called any number of times, from any
// goroutine; every call waits for the same drain and returns nil.
func TestCloseIdempotent(t *testing.T) {
	c := mustNew(t, Config{MaxBatch: 4, QueueDepth: 16}, echoFlush(nil, nil))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.Close(ctx); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if _, err := c.Do(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

// TestCloseConcurrent races many simultaneous Close calls (run with -race).
func TestCloseConcurrent(t *testing.T) {
	c := mustNew(t, Config{MaxBatch: 4, QueueDepth: 16}, echoFlush(nil, nil))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(context.Background()); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseDuringFlush: Close calls racing an in-flight flush must all block
// until the flush completes, and the flushed request must still get its
// result — drain means drain, even when Close lands mid-batch.
func TestCloseDuringFlush(t *testing.T) {
	flushEntered := make(chan struct{})
	releaseFlush := make(chan struct{})
	c := mustNew(t, Config{MaxBatch: 1, QueueDepth: 16}, func(reqs []int) ([]int, error) {
		select {
		case flushEntered <- struct{}{}:
		default:
		}
		<-releaseFlush
		out := make([]int, len(reqs))
		for i, r := range reqs {
			out[i] = 2 * r
		}
		return out, nil
	})

	res := make(chan int, 1)
	doErr := make(chan error, 1)
	go func() {
		v, err := c.Do(context.Background(), 21)
		doErr <- err
		res <- v
	}()
	select {
	case <-flushEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never started")
	}

	const closers = 8
	closed := make(chan error, closers)
	for i := 0; i < closers; i++ {
		go func() { closed <- c.Close(context.Background()) }()
	}
	// No Close may return while the flush is still blocked.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while flush in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// A Close bounded by an already-short context must give up without
	// affecting the others.
	shortCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := c.Close(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded Close = %v, want DeadlineExceeded", err)
	}

	close(releaseFlush)
	for i := 0; i < closers; i++ {
		select {
		case err := <-closed:
			if err != nil {
				t.Fatalf("Close after flush released: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close never returned after flush released")
		}
	}
	if err := <-doErr; err != nil {
		t.Fatalf("in-flight Do failed across Close: %v", err)
	}
	if v := <-res; v != 42 {
		t.Fatalf("in-flight Do result = %d, want 42", v)
	}
}
