package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func tenantPrefix(req string) string {
	for i := 0; i < len(req); i++ {
		if req[i] == '/' {
			return req[:i]
		}
	}
	return req
}

// gatedKeyed is a keyed coalescer test harness: a "gate" request parks the
// single flush worker on a channel so subsequent requests pile up in the
// tenant FIFOs, then release() lets the dispatcher cut one observable
// weighted-round-robin batch from a known queue state.
type gatedKeyed struct {
	c       *Coalescer[string, string]
	mu      sync.Mutex
	batches [][]string
	started chan struct{}
	release chan struct{}
}

func newGatedKeyed(t *testing.T, cfg Config) *gatedKeyed {
	t.Helper()
	g := &gatedKeyed{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	c, err := NewKeyed(cfg, tenantPrefix, func(reqs []string) ([]string, error) {
		if len(reqs) == 1 && reqs[0] == "gate" {
			g.started <- struct{}{}
			<-g.release
			return reqs, nil
		}
		g.mu.Lock()
		g.batches = append(g.batches, append([]string(nil), reqs...))
		g.mu.Unlock()
		return reqs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	g.c = c
	return g
}

// block parks the flush worker on the gate request and returns once the
// worker is inside the gate flush.
func (g *gatedKeyed) block(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := g.c.Do(context.Background(), "gate"); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("gate flush never started")
	}
}

func (g *gatedKeyed) do(t *testing.T, wg *sync.WaitGroup, req string) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, err := g.c.Do(context.Background(), req)
		if err != nil {
			t.Error(err)
		} else if got != req {
			t.Errorf("echo mismatch: got %q want %q", got, req)
		}
	}()
}

func (g *gatedKeyed) firstBatch(t *testing.T) []string {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.batches) == 0 {
		t.Fatal("no batches flushed")
	}
	return g.batches[0]
}

// TestKeyedFairDrain: with one heavy and one light tenant queued, the first
// weighted-round-robin batch interleaves both instead of draining the heavy
// tenant's FIFO first — the light tenant's entire queue rides in batch one.
func TestKeyedFairDrain(t *testing.T) {
	g := newGatedKeyed(t, Config{MaxBatch: 8, QueueDepth: 64})
	defer g.c.Close(context.Background())
	var wg sync.WaitGroup
	g.block(t, &wg)

	n := 0
	for i := 0; i < 12; i++ {
		g.do(t, &wg, "heavy/"+string(rune('a'+i)))
		n++
	}
	g.do(t, &wg, "light/x")
	g.do(t, &wg, "light/y")
	n += 2
	waitDepth(t, g.c, n)
	close(g.release)
	wg.Wait()

	first := g.firstBatch(t)
	if len(first) != 8 {
		t.Fatalf("first batch len %d, want MaxBatch=8", len(first))
	}
	light := 0
	for _, r := range first {
		if tenantPrefix(r) == "light" {
			light++
		}
	}
	// Equal weights alternate turns, so both queued light rows make batch one.
	if light != 2 {
		t.Fatalf("first batch %v has %d light rows, want 2", first, light)
	}
}

// TestKeyedWeights: a weight-3 tenant contributes three rows per turn
// against a weight-1 tenant's one, so an 8-row batch splits 6/2.
func TestKeyedWeights(t *testing.T) {
	g := newGatedKeyed(t, Config{
		MaxBatch:      8,
		QueueDepth:    64,
		TenantWeights: map[string]int{"big": 3},
	})
	defer g.c.Close(context.Background())
	var wg sync.WaitGroup
	g.block(t, &wg)

	for i := 0; i < 6; i++ {
		g.do(t, &wg, "big/"+string(rune('a'+i)))
		g.do(t, &wg, "small/"+string(rune('a'+i)))
	}
	waitDepth(t, g.c, 12)
	close(g.release)
	wg.Wait()

	first := g.firstBatch(t)
	if len(first) != 8 {
		t.Fatalf("first batch len %d, want 8", len(first))
	}
	big := 0
	for _, r := range first {
		if tenantPrefix(r) == "big" {
			big++
		}
	}
	// Two full turns: big 3+3, small 1+1, whichever tenant the ring starts on.
	if big != 6 {
		t.Fatalf("first batch %v has %d big rows, want 6", first, big)
	}
}

// TestKeyedTenantQueueDepth: the per-tenant bound rejects one tenant's
// overflow while the global queue still has room, and other tenants are
// unaffected. StrictWait plus a long MaxWait keeps the queue parked so the
// depths are deterministic.
func TestKeyedTenantQueueDepth(t *testing.T) {
	c, err := NewKeyed(Config{
		MaxBatch:         4,
		MaxWait:          time.Hour,
		QueueDepth:       64,
		StrictWait:       true,
		TenantQueueDepth: 2,
	}, tenantPrefix, func(reqs []string) ([]string, error) { return reqs, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Do(ctx, "noisy/"+string(rune('a'+i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	waitDepth(t, c, 2)
	if _, err := c.Do(ctx, "noisy/c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-tenant-bound enqueue: err = %v, want ErrQueueFull", err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Do(ctx, "quiet/a"); err != nil {
			t.Error(err)
		}
	}()
	waitDepth(t, c, 3)
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestKeyedBitIdenticalResults: results demultiplex to the right caller
// under keyed scheduling exactly as unkeyed — every caller gets its own
// echo back across many concurrent tenants and flush workers.
func TestKeyedBitIdenticalResults(t *testing.T) {
	c, err := NewKeyed(Config{MaxBatch: 16, QueueDepth: 256, FlushWorkers: 2},
		tenantPrefix, func(reqs []string) ([]string, error) { return reqs, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(context.Background())
	ctx := context.Background()
	var wg sync.WaitGroup
	for gor := 0; gor < 8; gor++ {
		wg.Add(1)
		go func(gor int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := "t" + string(rune('0'+gor)) + "/" + string(rune('a'+i%26))
				got, err := c.Do(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if got != req {
					t.Errorf("demux mismatch: got %q want %q", got, req)
					return
				}
			}
		}(gor)
	}
	wg.Wait()
}

// TestKeyedConfigValidation: tenant knobs on the unkeyed constructor, nil
// tenantOf, and bad weights are rejected.
func TestKeyedConfigValidation(t *testing.T) {
	echo := func(reqs []string) ([]string, error) { return reqs, nil }
	if _, err := New(Config{TenantWeights: map[string]int{"a": 1}}, echo); !errors.Is(err, ErrConfig) {
		t.Fatalf("TenantWeights on New: err = %v, want ErrConfig", err)
	}
	if _, err := New(Config{TenantQueueDepth: 4}, echo); !errors.Is(err, ErrConfig) {
		t.Fatalf("TenantQueueDepth on New: err = %v, want ErrConfig", err)
	}
	if _, err := NewKeyed[string, string](Config{}, nil, echo); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil tenantOf: err = %v, want ErrConfig", err)
	}
	if _, err := NewKeyed(Config{TenantWeights: map[string]int{"a": 0}}, tenantPrefix, echo); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero weight: err = %v, want ErrConfig", err)
	}
	if _, err := NewKeyed(Config{TenantQueueDepth: -1}, tenantPrefix, echo); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative TenantQueueDepth: err = %v, want ErrConfig", err)
	}
	c, err := NewKeyed(Config{TenantQueueDepth: 4, TenantWeights: map[string]int{"a": 2}}, tenantPrefix, echo)
	if err != nil {
		t.Fatalf("valid keyed config rejected: %v", err)
	}
	c.Close(context.Background())
}

// waitDepth blocks until the coalescer reports the expected queue depth.
func waitDepth(t *testing.T, c *Coalescer[string, string], want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Depth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", c.Depth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
