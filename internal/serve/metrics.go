package serve

import (
	"time"

	"github.com/apdeepsense/apdeepsense/internal/obs"
)

// Metrics is the coalescer's observability surface, registered into an
// internal/obs registry so the serving path scrapes alongside the HTTP and
// propagator metrics. All methods are nil-safe: an unset Config.Metrics
// costs one nil check per event.
//
// Families (see README "Observability"):
//
//	apds_serve_batch_rows              rows per flushed batch
//	apds_serve_queue_wait_seconds      enqueue→flush wait per request
//	apds_serve_queue_depth             requests currently queued
//	apds_serve_flushes_total{reason}   flushes by trigger (size|timeout|idle|drain)
//	apds_serve_rejected_total          requests refused with ErrQueueFull
//	apds_serve_cancelled_total         queued requests dropped by context end
type Metrics struct {
	batchRows  *obs.Histogram
	queueWait  *obs.Histogram
	queueDepth *obs.Gauge
	flushes    *obs.CounterVec
	rejected   *obs.Counter
	cancelled  *obs.Counter
}

// NewMetrics registers the coalescer metric families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		batchRows: reg.Histogram("apds_serve_batch_rows",
			"Rows per coalesced flush batch.", obs.ExpBuckets(1, 2, 12)),
		queueWait: reg.Histogram("apds_serve_queue_wait_seconds",
			"Time a request waited in the coalescer queue before its flush started.",
			obs.ExpBuckets(1e-6, 2, 16)),
		queueDepth: reg.Gauge("apds_serve_queue_depth",
			"Requests currently waiting in the coalescer queue."),
		flushes: reg.CounterVec("apds_serve_flushes_total",
			"Coalescer flushes by trigger reason.", "reason"),
		rejected: reg.Counter("apds_serve_rejected_total",
			"Requests rejected with a full queue (backpressure)."),
		cancelled: reg.Counter("apds_serve_cancelled_total",
			"Queued requests dropped because their context ended before the flush."),
	}
}

func (m *Metrics) rows(n int) {
	if m != nil {
		m.batchRows.Observe(float64(n))
	}
}

func (m *Metrics) waited(d time.Duration) {
	if m != nil {
		m.queueWait.Observe(d.Seconds())
	}
}

func (m *Metrics) depth(n int) {
	if m != nil {
		m.queueDepth.Set(float64(n))
	}
}

func (m *Metrics) flushed(reason string) {
	if m != nil {
		m.flushes.With(reason).Inc()
	}
}

func (m *Metrics) reject() {
	if m != nil {
		m.rejected.Inc()
	}
}

func (m *Metrics) cancel() {
	if m != nil {
		m.cancelled.Inc()
	}
}
