package serve

import (
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// PredictCoalescer coalesces single-row Predict requests onto an estimator's
// batched fast path: each flush is one core.PredictBatch call, so ApDeepSense
// estimators cross every layer as a single blocked matrix–matrix pass for
// the whole batch. Results are bit-identical to calling est.Predict per
// request (the batched propagation reproduces the per-row path exactly).
type PredictCoalescer = Coalescer[tensor.Vector, core.GaussianVec]

// ProbsCoalescer is PredictCoalescer for classification probabilities.
type ProbsCoalescer = Coalescer[tensor.Vector, tensor.Vector]

// NewPredict builds a coalescer whose flushes run est's batched Predict path
// (core.PredictBatch: the matrix-level fast path for BatchPredictor
// estimators, a worker-pool fan-out otherwise).
func NewPredict(est core.Estimator, cfg Config) (*PredictCoalescer, error) {
	return New(cfg, func(rows []tensor.Vector) ([]core.GaussianVec, error) {
		return core.PredictBatch(est, rows, 0)
	})
}

// NewPredictKeyed is NewPredict with tenant-fair weighted-round-robin drain:
// tenantOf maps each request row to a tenant (e.g. the fleet prefix of a
// device ID), and batches are cut round-robin across tenants so one chatty
// fleet cannot starve the rest (see NewKeyed).
func NewPredictKeyed(est core.Estimator, cfg Config, tenantOf func(tensor.Vector) string) (*PredictCoalescer, error) {
	return NewKeyed(cfg, tenantOf, func(rows []tensor.Vector) ([]core.GaussianVec, error) {
		return core.PredictBatch(est, rows, 0)
	})
}

// NewPredictProbs builds a coalescer whose flushes run est's batched
// classification path (core.PredictProbsBatch).
func NewPredictProbs(est core.Estimator, cfg Config) (*ProbsCoalescer, error) {
	return New(cfg, func(rows []tensor.Vector) ([]tensor.Vector, error) {
		return core.PredictProbsBatch(est, rows, 0)
	})
}
