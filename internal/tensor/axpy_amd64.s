//go:build amd64

#include "textflag.h"

// func axpy4AVX(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)
//
// d_r[j] += x_r * w[j] for four destination rows at once, 4 doubles per
// step. Uses VMULPD + VADDPD (two separately rounded IEEE operations per
// element) instead of FMA so every lane matches the scalar Go loop bit for
// bit. The broadcast of each x value amortises one w load across four rows.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	VBROADCASTSD x0+0(FP), Y0  // x0 in all lanes
	VBROADCASTSD x1+8(FP), Y1
	VBROADCASTSD x2+16(FP), Y2
	VBROADCASTSD x3+24(FP), Y3
	MOVQ w+32(FP), SI
	MOVQ n+40(FP), CX
	MOVQ d0+48(FP), R8
	MOVQ d1+56(FP), R9
	MOVQ d2+64(FP), R10
	MOVQ d3+72(FP), R11
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // BX = n & ^3: last index of the 4-wide loop

loop4:
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (SI)(DX*8), Y4  // w[j:j+4]
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)  // d0[j:j+4] += x0*w
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9)(DX*8), Y6, Y6
	VMOVUPD Y6, (R9)(DX*8)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10)(DX*8), Y7, Y7
	VMOVUPD Y7, (R10)(DX*8)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11)(DX*8), Y8, Y8
	VMOVUPD Y8, (R11)(DX*8)
	ADDQ    $4, DX
	JMP     loop4

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (SI)(DX*8), X4   // scalar remainder, still VEX-encoded
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMULSD X4, X1, X6
	VADDSD (R9)(DX*8), X6, X6
	VMOVSD X6, (R9)(DX*8)
	VMULSD X4, X2, X7
	VADDSD (R10)(DX*8), X7, X7
	VMOVSD X7, (R10)(DX*8)
	VMULSD X4, X3, X8
	VADDSD (R11)(DX*8), X8, X8
	VMOVSD X8, (R11)(DX*8)
	INCQ   DX
	JMP    tail

done:
	VZEROUPPER
	RET

// func axpy4AVX512(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)
//
// The 8-wide ZMM variant of axpy4AVX: identical per-lane multiply-then-add
// sequence, twice the elements per store. Remainders fall through to a
// 4-wide YMM step and then the scalar tail.
TEXT ·axpy4AVX512(SB), NOSPLIT, $0-80
	VBROADCASTSD x0+0(FP), Z0
	VBROADCASTSD x1+8(FP), Z1
	VBROADCASTSD x2+16(FP), Z2
	VBROADCASTSD x3+24(FP), Z3
	MOVQ w+32(FP), SI
	MOVQ n+40(FP), CX
	MOVQ d0+48(FP), R8
	MOVQ d1+56(FP), R9
	MOVQ d2+64(FP), R10
	MOVQ d3+72(FP), R11
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-8, BX            // BX = n & ^7: last index of the 8-wide loop

loop8:
	CMPQ DX, BX
	JGE  tail4z
	VMOVUPD (SI)(DX*8), Z4  // w[j:j+8]
	VMULPD  Z4, Z0, Z5
	VADDPD  (R8)(DX*8), Z5, Z5
	VMOVUPD Z5, (R8)(DX*8)  // d0[j:j+8] += x0*w
	VMULPD  Z4, Z1, Z6
	VADDPD  (R9)(DX*8), Z6, Z6
	VMOVUPD Z6, (R9)(DX*8)
	VMULPD  Z4, Z2, Z7
	VADDPD  (R10)(DX*8), Z7, Z7
	VMOVUPD Z7, (R10)(DX*8)
	VMULPD  Z4, Z3, Z8
	VADDPD  (R11)(DX*8), Z8, Z8
	VMOVUPD Z8, (R11)(DX*8)
	ADDQ    $8, DX
	JMP     loop8

tail4z:
	MOVQ CX, BX
	ANDQ $-4, BX            // one optional 4-wide step covers n&4
	CMPQ DX, BX
	JGE  tail1z
	VMOVUPD (SI)(DX*8), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9)(DX*8), Y6, Y6
	VMOVUPD Y6, (R9)(DX*8)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10)(DX*8), Y7, Y7
	VMOVUPD Y7, (R10)(DX*8)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11)(DX*8), Y8, Y8
	VMOVUPD Y8, (R11)(DX*8)
	ADDQ    $4, DX

tail1z:
	CMPQ DX, CX
	JGE  done512
	VMOVSD (SI)(DX*8), X4
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMULSD X4, X1, X6
	VADDSD (R9)(DX*8), X6, X6
	VMOVSD X6, (R9)(DX*8)
	VMULSD X4, X2, X7
	VADDSD (R10)(DX*8), X7, X7
	VMOVSD X7, (R10)(DX*8)
	VMULSD X4, X3, X8
	VADDSD (R11)(DX*8), X8, X8
	VMOVSD X8, (R11)(DX*8)
	INCQ   DX
	JMP    tail1z

done512:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
