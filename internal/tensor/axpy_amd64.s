//go:build amd64

#include "textflag.h"

// func axpy4AVX(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)
//
// d_r[j] += x_r * w[j] for four destination rows at once, 4 doubles per
// step. Uses VMULPD + VADDPD (two separately rounded IEEE operations per
// element) instead of FMA so every lane matches the scalar Go loop bit for
// bit. The broadcast of each x value amortises one w load across four rows.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-80
	VBROADCASTSD x0+0(FP), Y0  // x0 in all lanes
	VBROADCASTSD x1+8(FP), Y1
	VBROADCASTSD x2+16(FP), Y2
	VBROADCASTSD x3+24(FP), Y3
	MOVQ w+32(FP), SI
	MOVQ n+40(FP), CX
	MOVQ d0+48(FP), R8
	MOVQ d1+56(FP), R9
	MOVQ d2+64(FP), R10
	MOVQ d3+72(FP), R11
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // BX = n & ^3: last index of the 4-wide loop

loop4:
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (SI)(DX*8), Y4  // w[j:j+4]
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)  // d0[j:j+4] += x0*w
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9)(DX*8), Y6, Y6
	VMOVUPD Y6, (R9)(DX*8)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10)(DX*8), Y7, Y7
	VMOVUPD Y7, (R10)(DX*8)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11)(DX*8), Y8, Y8
	VMOVUPD Y8, (R11)(DX*8)
	ADDQ    $4, DX
	JMP     loop4

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (SI)(DX*8), X4   // scalar remainder, still VEX-encoded
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMULSD X4, X1, X6
	VADDSD (R9)(DX*8), X6, X6
	VMOVSD X6, (R9)(DX*8)
	VMULSD X4, X2, X7
	VADDSD (R10)(DX*8), X7, X7
	VMOVSD X7, (R10)(DX*8)
	VMULSD X4, X3, X8
	VADDSD (R11)(DX*8), X8, X8
	VMOVSD X8, (R11)(DX*8)
	INCQ   DX
	JMP    tail

done:
	VZEROUPPER
	RET

// func axpy4AVX512(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)
//
// The 8-wide ZMM variant of axpy4AVX: identical per-lane multiply-then-add
// sequence, twice the elements per store. Remainders fall through to a
// 4-wide YMM step and then the scalar tail.
TEXT ·axpy4AVX512(SB), NOSPLIT, $0-80
	VBROADCASTSD x0+0(FP), Z0
	VBROADCASTSD x1+8(FP), Z1
	VBROADCASTSD x2+16(FP), Z2
	VBROADCASTSD x3+24(FP), Z3
	MOVQ w+32(FP), SI
	MOVQ n+40(FP), CX
	MOVQ d0+48(FP), R8
	MOVQ d1+56(FP), R9
	MOVQ d2+64(FP), R10
	MOVQ d3+72(FP), R11
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-8, BX            // BX = n & ^7: last index of the 8-wide loop

loop8:
	CMPQ DX, BX
	JGE  tail4z
	VMOVUPD (SI)(DX*8), Z4  // w[j:j+8]
	VMULPD  Z4, Z0, Z5
	VADDPD  (R8)(DX*8), Z5, Z5
	VMOVUPD Z5, (R8)(DX*8)  // d0[j:j+8] += x0*w
	VMULPD  Z4, Z1, Z6
	VADDPD  (R9)(DX*8), Z6, Z6
	VMOVUPD Z6, (R9)(DX*8)
	VMULPD  Z4, Z2, Z7
	VADDPD  (R10)(DX*8), Z7, Z7
	VMOVUPD Z7, (R10)(DX*8)
	VMULPD  Z4, Z3, Z8
	VADDPD  (R11)(DX*8), Z8, Z8
	VMOVUPD Z8, (R11)(DX*8)
	ADDQ    $8, DX
	JMP     loop8

tail4z:
	MOVQ CX, BX
	ANDQ $-4, BX            // one optional 4-wide step covers n&4
	CMPQ DX, BX
	JGE  tail1z
	VMOVUPD (SI)(DX*8), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9)(DX*8), Y6, Y6
	VMOVUPD Y6, (R9)(DX*8)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10)(DX*8), Y7, Y7
	VMOVUPD Y7, (R10)(DX*8)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11)(DX*8), Y8, Y8
	VMOVUPD Y8, (R11)(DX*8)
	ADDQ    $4, DX

tail1z:
	CMPQ DX, CX
	JGE  done512
	VMOVSD (SI)(DX*8), X4
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMULSD X4, X1, X6
	VADDSD (R9)(DX*8), X6, X6
	VMOVSD X6, (R9)(DX*8)
	VMULSD X4, X2, X7
	VADDSD (R10)(DX*8), X7, X7
	VMOVSD X7, (R10)(DX*8)
	VMULSD X4, X3, X8
	VADDSD (R11)(DX*8), X8, X8
	VMOVSD X8, (R11)(DX*8)
	INCQ   DX
	JMP    tail1z

done512:
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyDualAVX(xm, xv float64, wm, wv *float64, n int, dm, dv *float64)
//
// Single-row dual-moment axpy: dm[j] += xm * wm[j] and dv[j] += xv * wv[j],
// 4 doubles per step. The compiled propagator's tail rows (and every
// batch-1 request) use it to run the mean and variance accumulations of one
// sample in one vector pass; mulBlocked's scalar tail has no vector kernel
// because it cannot assume the dual-row layout. Like axpy4AVX it uses
// separate VMULPD + VADDPD (no FMA) so every lane is the exact rounded
// multiply-then-add of the scalar Go loop.
TEXT ·axpyDualAVX(SB), NOSPLIT, $0-56
	VBROADCASTSD xm+0(FP), Y0
	VBROADCASTSD xv+8(FP), Y1
	MOVQ wm+16(FP), SI
	MOVQ wv+24(FP), DI
	MOVQ n+32(FP), CX
	MOVQ dm+40(FP), R8
	MOVQ dv+48(FP), R9
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // BX = n & ^3: last index of the 4-wide loop

dloop4:
	CMPQ DX, BX
	JGE  dtail
	VMOVUPD (SI)(DX*8), Y4  // wm[j:j+4]
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)  // dm[j:j+4] += xm*wm
	VMOVUPD (DI)(DX*8), Y6  // wv[j:j+4]
	VMULPD  Y6, Y1, Y7
	VADDPD  (R9)(DX*8), Y7, Y7
	VMOVUPD Y7, (R9)(DX*8)  // dv[j:j+4] += xv*wv
	ADDQ    $4, DX
	JMP     dloop4

dtail:
	CMPQ DX, CX
	JGE  ddone
	VMOVSD (SI)(DX*8), X4   // scalar remainder, still VEX-encoded
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMOVSD (DI)(DX*8), X6
	VMULSD X6, X1, X7
	VADDSD (R9)(DX*8), X7, X7
	VMOVSD X7, (R9)(DX*8)
	INCQ   DX
	JMP    dtail

ddone:
	VZEROUPPER
	RET

// func axpyDualAVX512(xm, xv float64, wm, wv *float64, n int, dm, dv *float64)
//
// The 8-wide ZMM variant of axpyDualAVX: identical per-lane multiply-then-
// add sequence, twice the elements per store. Remainders fall through to a
// 4-wide YMM step and then the scalar tail.
TEXT ·axpyDualAVX512(SB), NOSPLIT, $0-56
	VBROADCASTSD xm+0(FP), Z0
	VBROADCASTSD xv+8(FP), Z1
	MOVQ wm+16(FP), SI
	MOVQ wv+24(FP), DI
	MOVQ n+32(FP), CX
	MOVQ dm+40(FP), R8
	MOVQ dv+48(FP), R9
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-8, BX            // BX = n & ^7: last index of the 8-wide loop

dloop8:
	CMPQ DX, BX
	JGE  dtail4z
	VMOVUPD (SI)(DX*8), Z4  // wm[j:j+8]
	VMULPD  Z4, Z0, Z5
	VADDPD  (R8)(DX*8), Z5, Z5
	VMOVUPD Z5, (R8)(DX*8)  // dm[j:j+8] += xm*wm
	VMOVUPD (DI)(DX*8), Z6  // wv[j:j+8]
	VMULPD  Z6, Z1, Z7
	VADDPD  (R9)(DX*8), Z7, Z7
	VMOVUPD Z7, (R9)(DX*8)  // dv[j:j+8] += xv*wv
	ADDQ    $8, DX
	JMP     dloop8

dtail4z:
	MOVQ CX, BX
	ANDQ $-4, BX            // one optional 4-wide step covers n&4
	CMPQ DX, BX
	JGE  dtail1z
	VMOVUPD (SI)(DX*8), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(DX*8), Y5, Y5
	VMOVUPD Y5, (R8)(DX*8)
	VMOVUPD (DI)(DX*8), Y6
	VMULPD  Y6, Y1, Y7
	VADDPD  (R9)(DX*8), Y7, Y7
	VMOVUPD Y7, (R9)(DX*8)
	ADDQ    $4, DX

dtail1z:
	CMPQ DX, CX
	JGE  ddone512
	VMOVSD (SI)(DX*8), X4
	VMULSD X4, X0, X5
	VADDSD (R8)(DX*8), X5, X5
	VMOVSD X5, (R8)(DX*8)
	VMOVSD (DI)(DX*8), X6
	VMULSD X6, X1, X7
	VADDSD (R9)(DX*8), X7, X7
	VMOVSD X7, (R9)(DX*8)
	INCQ   DX
	JMP    dtail1z

ddone512:
	VZEROUPPER
	RET

// func axpy4DualAVX(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv *float64, n int, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 *float64)
//
// The 4-row dual-moment kernel: dm_r[j] += x_r * wm[j] and
// dv_r[j] += y_r * wv[j] for r in 0..3 in one pass. The compiled
// propagator's register-blocked sweep uses it to touch each packed panel
// stripe once for both moments (mulBlocked must make two passes, W then W²)
// and to pay one call per k-step instead of two. Separate VMULPD + VADDPD
// per lane as everywhere else: bit-identical to the scalar loops.
TEXT ·axpy4DualAVX(SB), NOSPLIT, $0-152
	VBROADCASTSD x0+0(FP), Y0
	VBROADCASTSD x1+8(FP), Y1
	VBROADCASTSD x2+16(FP), Y2
	VBROADCASTSD x3+24(FP), Y3
	VBROADCASTSD y0+32(FP), Y4
	VBROADCASTSD y1+40(FP), Y5
	VBROADCASTSD y2+48(FP), Y6
	VBROADCASTSD y3+56(FP), Y7
	MOVQ wm+64(FP), SI
	MOVQ wv+72(FP), DI
	MOVQ n+80(FP), CX
	MOVQ dm0+88(FP), R8
	MOVQ dm1+96(FP), R9
	MOVQ dm2+104(FP), R10
	MOVQ dm3+112(FP), R11
	MOVQ dv0+120(FP), R12
	MOVQ dv1+128(FP), R13
	MOVQ dv2+136(FP), R15
	MOVQ dv3+144(FP), AX
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // BX = n & ^3: last index of the 4-wide loop

qloop4:
	CMPQ DX, BX
	JGE  qtail
	VMOVUPD (SI)(DX*8), Y8  // wm[j:j+4]
	VMULPD  Y8, Y0, Y10
	VADDPD  (R8)(DX*8), Y10, Y10
	VMOVUPD Y10, (R8)(DX*8)
	VMULPD  Y8, Y1, Y11
	VADDPD  (R9)(DX*8), Y11, Y11
	VMOVUPD Y11, (R9)(DX*8)
	VMULPD  Y8, Y2, Y12
	VADDPD  (R10)(DX*8), Y12, Y12
	VMOVUPD Y12, (R10)(DX*8)
	VMULPD  Y8, Y3, Y13
	VADDPD  (R11)(DX*8), Y13, Y13
	VMOVUPD Y13, (R11)(DX*8)
	VMOVUPD (DI)(DX*8), Y9  // wv[j:j+4]
	VMULPD  Y9, Y4, Y10
	VADDPD  (R12)(DX*8), Y10, Y10
	VMOVUPD Y10, (R12)(DX*8)
	VMULPD  Y9, Y5, Y11
	VADDPD  (R13)(DX*8), Y11, Y11
	VMOVUPD Y11, (R13)(DX*8)
	VMULPD  Y9, Y6, Y12
	VADDPD  (R15)(DX*8), Y12, Y12
	VMOVUPD Y12, (R15)(DX*8)
	VMULPD  Y9, Y7, Y13
	VADDPD  (AX)(DX*8), Y13, Y13
	VMOVUPD Y13, (AX)(DX*8)
	ADDQ    $4, DX
	JMP     qloop4

qtail:
	CMPQ DX, CX
	JGE  qdone
	VMOVSD (SI)(DX*8), X8
	VMULSD X8, X0, X10
	VADDSD (R8)(DX*8), X10, X10
	VMOVSD X10, (R8)(DX*8)
	VMULSD X8, X1, X11
	VADDSD (R9)(DX*8), X11, X11
	VMOVSD X11, (R9)(DX*8)
	VMULSD X8, X2, X12
	VADDSD (R10)(DX*8), X12, X12
	VMOVSD X12, (R10)(DX*8)
	VMULSD X8, X3, X13
	VADDSD (R11)(DX*8), X13, X13
	VMOVSD X13, (R11)(DX*8)
	VMOVSD (DI)(DX*8), X9
	VMULSD X9, X4, X10
	VADDSD (R12)(DX*8), X10, X10
	VMOVSD X10, (R12)(DX*8)
	VMULSD X9, X5, X11
	VADDSD (R13)(DX*8), X11, X11
	VMOVSD X11, (R13)(DX*8)
	VMULSD X9, X6, X12
	VADDSD (R15)(DX*8), X12, X12
	VMOVSD X12, (R15)(DX*8)
	VMULSD X9, X7, X13
	VADDSD (AX)(DX*8), X13, X13
	VMOVSD X13, (AX)(DX*8)
	INCQ   DX
	JMP    qtail

qdone:
	VZEROUPPER
	RET

// func axpy4DualAVX512(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv *float64, n int, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 *float64)
//
// The 8-wide ZMM variant of axpy4DualAVX. Remainders fall through to a
// 4-wide YMM step and then the scalar tail.
TEXT ·axpy4DualAVX512(SB), NOSPLIT, $0-152
	VBROADCASTSD x0+0(FP), Z0
	VBROADCASTSD x1+8(FP), Z1
	VBROADCASTSD x2+16(FP), Z2
	VBROADCASTSD x3+24(FP), Z3
	VBROADCASTSD y0+32(FP), Z4
	VBROADCASTSD y1+40(FP), Z5
	VBROADCASTSD y2+48(FP), Z6
	VBROADCASTSD y3+56(FP), Z7
	MOVQ wm+64(FP), SI
	MOVQ wv+72(FP), DI
	MOVQ n+80(FP), CX
	MOVQ dm0+88(FP), R8
	MOVQ dm1+96(FP), R9
	MOVQ dm2+104(FP), R10
	MOVQ dm3+112(FP), R11
	MOVQ dv0+120(FP), R12
	MOVQ dv1+128(FP), R13
	MOVQ dv2+136(FP), R15
	MOVQ dv3+144(FP), AX
	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-8, BX            // BX = n & ^7: last index of the 8-wide loop

qloop8:
	CMPQ DX, BX
	JGE  qtail4z
	VMOVUPD (SI)(DX*8), Z8  // wm[j:j+8]
	VMULPD  Z8, Z0, Z10
	VADDPD  (R8)(DX*8), Z10, Z10
	VMOVUPD Z10, (R8)(DX*8)
	VMULPD  Z8, Z1, Z11
	VADDPD  (R9)(DX*8), Z11, Z11
	VMOVUPD Z11, (R9)(DX*8)
	VMULPD  Z8, Z2, Z12
	VADDPD  (R10)(DX*8), Z12, Z12
	VMOVUPD Z12, (R10)(DX*8)
	VMULPD  Z8, Z3, Z13
	VADDPD  (R11)(DX*8), Z13, Z13
	VMOVUPD Z13, (R11)(DX*8)
	VMOVUPD (DI)(DX*8), Z9  // wv[j:j+8]
	VMULPD  Z9, Z4, Z10
	VADDPD  (R12)(DX*8), Z10, Z10
	VMOVUPD Z10, (R12)(DX*8)
	VMULPD  Z9, Z5, Z11
	VADDPD  (R13)(DX*8), Z11, Z11
	VMOVUPD Z11, (R13)(DX*8)
	VMULPD  Z9, Z6, Z12
	VADDPD  (R15)(DX*8), Z12, Z12
	VMOVUPD Z12, (R15)(DX*8)
	VMULPD  Z9, Z7, Z13
	VADDPD  (AX)(DX*8), Z13, Z13
	VMOVUPD Z13, (AX)(DX*8)
	ADDQ    $8, DX
	JMP     qloop8

qtail4z:
	MOVQ CX, BX
	ANDQ $-4, BX            // one optional 4-wide step covers n&4
	CMPQ DX, BX
	JGE  qtail1z
	VMOVUPD (SI)(DX*8), Y8
	VMULPD  Y8, Y0, Y10
	VADDPD  (R8)(DX*8), Y10, Y10
	VMOVUPD Y10, (R8)(DX*8)
	VMULPD  Y8, Y1, Y11
	VADDPD  (R9)(DX*8), Y11, Y11
	VMOVUPD Y11, (R9)(DX*8)
	VMULPD  Y8, Y2, Y12
	VADDPD  (R10)(DX*8), Y12, Y12
	VMOVUPD Y12, (R10)(DX*8)
	VMULPD  Y8, Y3, Y13
	VADDPD  (R11)(DX*8), Y13, Y13
	VMOVUPD Y13, (R11)(DX*8)
	VMOVUPD (DI)(DX*8), Y9
	VMULPD  Y9, Y4, Y10
	VADDPD  (R12)(DX*8), Y10, Y10
	VMOVUPD Y10, (R12)(DX*8)
	VMULPD  Y9, Y5, Y11
	VADDPD  (R13)(DX*8), Y11, Y11
	VMOVUPD Y11, (R13)(DX*8)
	VMULPD  Y9, Y6, Y12
	VADDPD  (R15)(DX*8), Y12, Y12
	VMOVUPD Y12, (R15)(DX*8)
	VMULPD  Y9, Y7, Y13
	VADDPD  (AX)(DX*8), Y13, Y13
	VMOVUPD Y13, (AX)(DX*8)
	ADDQ    $4, DX

qtail1z:
	CMPQ DX, CX
	JGE  qdone512
	VMOVSD (SI)(DX*8), X8
	VMULSD X8, X0, X10
	VADDSD (R8)(DX*8), X10, X10
	VMOVSD X10, (R8)(DX*8)
	VMULSD X8, X1, X11
	VADDSD (R9)(DX*8), X11, X11
	VMOVSD X11, (R9)(DX*8)
	VMULSD X8, X2, X12
	VADDSD (R10)(DX*8), X12, X12
	VMOVSD X12, (R10)(DX*8)
	VMULSD X8, X3, X13
	VADDSD (R11)(DX*8), X13, X13
	VMOVSD X13, (R11)(DX*8)
	VMOVSD (DI)(DX*8), X9
	VMULSD X9, X4, X10
	VADDSD (R12)(DX*8), X10, X10
	VMOVSD X10, (R12)(DX*8)
	VMULSD X9, X5, X11
	VADDSD (R13)(DX*8), X11, X11
	VMOVSD X11, (R13)(DX*8)
	VMULSD X9, X6, X12
	VADDSD (R15)(DX*8), X12, X12
	VMOVSD X12, (R15)(DX*8)
	VMULSD X9, X7, X13
	VADDSD (AX)(DX*8), X13, X13
	VMOVSD X13, (AX)(DX*8)
	INCQ   DX
	JMP    qtail1z

qdone512:
	VZEROUPPER
	RET
