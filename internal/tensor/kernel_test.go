package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// dualCase builds a weight row, its squared pair, and fresh accumulator rows
// pre-seeded with nonzero values so the tests catch kernels that overwrite
// instead of accumulate.
func dualCase(rng *rand.Rand, n int) (wm, wv []float64, acc func() []float64) {
	wm = make([]float64, n)
	wv = make([]float64, n)
	for i := range wm {
		wm[i] = rng.NormFloat64()
		if i%7 == 0 {
			wm[i] = 0
		}
		if i%11 == 3 {
			wm[i] = -wm[i]
		}
		wv[i] = wm[i] * wm[i]
	}
	seed := make([]float64, n)
	for i := range seed {
		seed[i] = rng.NormFloat64()
	}
	acc = func() []float64 { return append([]float64(nil), seed...) }
	return
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d: vector %x != scalar %x",
				name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestAxpyDualVectorScalarBitExact pins the single-row dual-moment vector
// kernel to the scalar loop bit for bit across lane-remainder lengths,
// negative zeros, and subnormal products. The compiled propagator's tail rows
// ride on this kernel, so any deviation here is a bit-identity break there.
func TestAxpyDualVectorScalarBitExact(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX vector kernel on this machine")
	}
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 100, 255, 256} {
		wm, wv, acc := dualCase(rng, n)
		for _, x := range [][2]float64{
			{1.5, 0.25},
			{-0.0, 3.0},
			{math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64},
			{rng.NormFloat64(), rng.Float64()},
		} {
			hasAVX, hasAVX512 = false, false
			sm, sv := acc(), acc()
			AxpyDual(x[0], x[1], wm, wv, sm, sv)

			kernels := []struct {
				name     string
				avx, zmm bool
			}{{"avx", true, false}}
			if saved512 {
				kernels = append(kernels, struct {
					name     string
					avx, zmm bool
				}{"avx512", true, true})
			}
			for _, kr := range kernels {
				hasAVX, hasAVX512 = kr.avx, kr.zmm
				gm, gv := acc(), acc()
				AxpyDual(x[0], x[1], wm, wv, gm, gv)
				bitsEqual(t, "AxpyDual/"+kr.name+"/mean", gm, sm)
				bitsEqual(t, "AxpyDual/"+kr.name+"/var", gv, sv)
			}
		}
		hasAVX, hasAVX512 = savedAVX, saved512
	}
}

// TestAxpy4DualVectorScalarBitExact pins the 4-row dual-moment vector kernel
// to two scalar Axpy4 passes bit for bit, across the same hostile lengths and
// scalars. Each of the eight destination rows must see exactly the separately
// rounded multiply-then-add sequence of the scalar loop.
func TestAxpy4DualVectorScalarBitExact(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX vector kernel on this machine")
	}
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 3, 4, 5, 8, 9, 16, 17, 63, 64, 65, 256} {
		wm, wv, acc := dualCase(rng, n)
		xs := [8]float64{
			rng.NormFloat64(), -0.0, math.SmallestNonzeroFloat64, rng.NormFloat64(),
			rng.Float64(), 1e-300, rng.Float64(), -rng.Float64(),
		}

		hasAVX, hasAVX512 = false, false
		want := make([][]float64, 8)
		for r := range want {
			want[r] = acc()
		}
		Axpy4Dual(xs[0], xs[1], xs[2], xs[3], xs[4], xs[5], xs[6], xs[7],
			wm, wv, want[0], want[1], want[2], want[3], want[4], want[5], want[6], want[7])

		kernels := []struct {
			name     string
			avx, zmm bool
		}{{"avx", true, false}}
		if saved512 {
			kernels = append(kernels, struct {
				name     string
				avx, zmm bool
			}{"avx512", true, true})
		}
		for _, kr := range kernels {
			hasAVX, hasAVX512 = kr.avx, kr.zmm
			got := make([][]float64, 8)
			for r := range got {
				got[r] = acc()
			}
			Axpy4Dual(xs[0], xs[1], xs[2], xs[3], xs[4], xs[5], xs[6], xs[7],
				wm, wv, got[0], got[1], got[2], got[3], got[4], got[5], got[6], got[7])
			for r := range got {
				bitsEqual(t, "Axpy4Dual/"+kr.name, got[r], want[r])
			}
		}
		hasAVX, hasAVX512 = savedAVX, saved512
	}
}

// TestAxpyDualNonFinite checks the dual kernels propagate NaN and Inf
// products exactly as the scalar loop does — the compiled propagator's
// hostile-input guarantee leans on this.
func TestAxpyDualNonFinite(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX vector kernel on this machine")
	}
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()
	n := 13
	wm := make([]float64, n)
	wv := make([]float64, n)
	for i := range wm {
		wm[i] = float64(i - 6)
		wv[i] = wm[i] * wm[i]
	}
	wm[2] = math.Inf(1)
	wm[5] = math.NaN()
	wv[9] = math.Inf(-1)
	zero := func() []float64 { return make([]float64, n) }

	hasAVX, hasAVX512 = false, false
	sm, sv := zero(), zero()
	AxpyDual(math.Inf(-1), math.NaN(), wm, wv, sm, sv)

	hasAVX, hasAVX512 = true, false
	gm, gv := zero(), zero()
	AxpyDual(math.Inf(-1), math.NaN(), wm, wv, gm, gv)
	bitsEqual(t, "AxpyDual/nonfinite/mean", gm, sm)
	bitsEqual(t, "AxpyDual/nonfinite/var", gv, sv)

	if saved512 {
		hasAVX, hasAVX512 = true, true
		gm, gv = zero(), zero()
		AxpyDual(math.Inf(-1), math.NaN(), wm, wv, gm, gv)
		bitsEqual(t, "AxpyDual/nonfinite/avx512/mean", gm, sm)
		bitsEqual(t, "AxpyDual/nonfinite/avx512/var", gv, sv)
	}
}
