package tensor

import (
	"math/rand"
	"testing"
)

// qmaddNaive is an independent re-derivation of the pair-interleaved madd
// semantics, written j-major (the kernels are kp-major) so a layout bug in
// either cannot cancel out.
func qmaddNaive(a, panel []int16, pairs, nOut int, acc []int32) {
	for j := 0; j < nOut; j++ {
		var s int32
		for kp := 0; kp < pairs; kp++ {
			row := panel[kp*2*nOut:]
			s += int32(a[2*kp])*int32(row[2*j]) + int32(a[2*kp+1])*int32(row[2*j+1])
		}
		acc[j] += s
	}
}

func randCodes(rng *rand.Rand, n int, max int32) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(rng.Int31n(2*max+1) - max)
	}
	return out
}

// runAll runs naive, forced-scalar, and dispatching (SIMD where available)
// kernels on identical inputs and returns the three accumulator sets. The
// accumulators start from a shared non-zero prefix to catch a kernel that
// overwrites instead of accumulates.
func runAll(t *testing.T, a, panel []int16, pairs, nOut int) (naive, scalar, simd []int32) {
	t.Helper()
	base := make([]int32, nOut)
	for j := range base {
		base[j] = int32(j) - 3
	}
	naive = append([]int32(nil), base...)
	scalar = append([]int32(nil), base...)
	simd = append([]int32(nil), base...)

	qmaddNaive(a, panel, pairs, nOut, naive)

	saved := hasAVX2
	hasAVX2 = false
	QMaddPairs(a, panel, pairs, nOut, scalar)
	hasAVX2 = saved
	QMaddPairs(a, panel, pairs, nOut, simd)
	return naive, scalar, simd
}

func checkEqual(t *testing.T, label string, naive, scalar, simd []int32) {
	t.Helper()
	for j := range naive {
		if scalar[j] != naive[j] {
			t.Fatalf("%s: scalar[%d] = %d, naive = %d", label, j, scalar[j], naive[j])
		}
		if simd[j] != naive[j] {
			t.Fatalf("%s: simd[%d] = %d, naive = %d", label, j, simd[j], naive[j])
		}
	}
}

// TestQMaddPairsRaggedShapes sweeps the shape matrix the float kernels use:
// every output width around the 8-lane vector boundary and pair counts
// around the QPairBlock block boundary.
func TestQMaddPairsRaggedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nOut := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100} {
		for _, pairs := range []int{1, 2, 3, 7, 8, 63, 127, 128} {
			a := randCodes(rng, 2*pairs, 32767)
			panel := randCodes(rng, pairs*2*nOut, 127)
			naive, scalar, simd := runAll(t, a, panel, pairs, nOut)
			checkEqual(t, "ragged", naive, scalar, simd)
		}
	}
}

// TestQMaddPairsSaturationAdjacent drives every operand to its extreme
// magnitude at the full block size: the block sum reaches its documented
// maximum 128·2·32767·127 = 1 065 288 704, which must accumulate exactly
// (no int32 lane overflow) on all three paths.
func TestQMaddPairsSaturationAdjacent(t *testing.T) {
	const pairs, nOut = QPairBlock, 24
	signs := []int16{1, -1}
	for _, sa := range signs {
		for _, sw := range signs {
			a := make([]int16, 2*pairs)
			for i := range a {
				a[i] = sa * 32767
			}
			panel := make([]int16, pairs*2*nOut)
			for i := range panel {
				panel[i] = sw * 127
			}
			naive, scalar, simd := runAll(t, a, panel, pairs, nOut)
			checkEqual(t, "saturation", naive, scalar, simd)
			want := int32(sa) * int32(sw) * 2 * 32767 * 127 * QPairBlock
			// runAll seeds acc[j] with j-3; subtract it back out.
			for j := range simd {
				if got := simd[j] - (int32(j) - 3); got != want {
					t.Fatalf("block sum at acc[%d] = %d, want %d", j, got, want)
				}
			}
		}
	}
}

// TestQMaddPairsZeroAndEmpty pins the degenerate shapes: zero pairs and zero
// outputs must be no-ops, and all-zero activations must leave the
// accumulator untouched on every path.
func TestQMaddPairsZeroAndEmpty(t *testing.T) {
	QMaddPairs(nil, nil, 0, 8, make([]int32, 8))
	QMaddPairs(make([]int16, 4), make([]int16, 16), 2, 0, nil)

	rng := rand.New(rand.NewSource(11))
	panel := randCodes(rng, 9*2*13, 127)
	a := make([]int16, 18)
	naive, scalar, simd := runAll(t, a, panel, 9, 13)
	checkEqual(t, "zero-activations", naive, scalar, simd)
	for j := range simd {
		if simd[j] != int32(j)-3 {
			t.Fatalf("acc[%d] changed to %d on all-zero activations", j, simd[j])
		}
	}
}

// FuzzQMadd fuzzes shape and content together: naive, scalar, and SIMD
// kernels must agree bit-for-bit on any in-range operands.
func FuzzQMadd(f *testing.F) {
	f.Add(uint64(1), uint(8), uint(16))
	f.Add(uint64(20260808), uint(127), uint(7))
	f.Add(uint64(42), uint(128), uint(9))
	f.Add(uint64(3), uint(1), uint(1))
	f.Fuzz(func(t *testing.T, seed uint64, rawPairs, rawOut uint) {
		pairs := int(rawPairs%QPairBlock) + 1
		nOut := int(rawOut%33) + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		a := randCodes(rng, 2*pairs, 32767)
		panel := randCodes(rng, pairs*2*nOut, 127)
		naive, scalar, simd := runAll(t, a, panel, pairs, nOut)
		checkEqual(t, "fuzz", naive, scalar, simd)
	})
}
