package tensor

import (
	"math"
	"math/rand"
)

// RandomUniform fills m with values drawn uniformly from [lo, hi).
func (m *Matrix) RandomUniform(rng *rand.Rand, lo, hi float64) {
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
}

// RandomNormal fills m with values drawn from N(mean, std²).
func (m *Matrix) RandomNormal(rng *rand.Rand, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
}

// GlorotUniform fills m with the Glorot/Xavier uniform initialization
// appropriate for Tanh/Sigmoid networks: U(-l, l) with
// l = sqrt(6 / (fanIn + fanOut)). The matrix orientation is fanIn×fanOut,
// matching the paper's x W layer convention.
func (m *Matrix) GlorotUniform(rng *rand.Rand) {
	l := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	m.RandomUniform(rng, -l, l)
}

// HeNormal fills m with the He initialization appropriate for ReLU networks:
// N(0, 2/fanIn).
func (m *Matrix) HeNormal(rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(m.Rows))
	m.RandomNormal(rng, 0, std)
}
