package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorAddSubMul(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !sum.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v, want [5 7 9]", sum)
	}

	diff, err := w.Sub(v)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v, want [3 3 3]", diff)
	}

	prod, err := v.Mul(w)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !prod.Equal(Vector{4, 10, 18}, 0) {
		t.Errorf("Mul = %v, want [4 10 18]", prod)
	}
}

func TestVectorShapeErrors(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{1, 2, 3}
	if _, err := v.Add(w); !errors.Is(err, ErrShape) {
		t.Errorf("Add mismatched: err = %v, want ErrShape", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrShape) {
		t.Errorf("Sub mismatched: err = %v, want ErrShape", err)
	}
	if _, err := v.Mul(w); !errors.Is(err, ErrShape) {
		t.Errorf("Mul mismatched: err = %v, want ErrShape", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrShape) {
		t.Errorf("Dot mismatched: err = %v, want ErrShape", err)
	}
	if err := v.AddInPlace(w); !errors.Is(err, ErrShape) {
		t.Errorf("AddInPlace mismatched: err = %v, want ErrShape", err)
	}
}

func TestVectorDotSumMean(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	w := Vector{1, 1, 1, 1}
	d, err := v.Dot(w)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if d != 10 {
		t.Errorf("Dot = %v, want 10", d)
	}
	if v.Sum() != 10 {
		t.Errorf("Sum = %v, want 10", v.Sum())
	}
	if v.Mean() != 2.5 {
		t.Errorf("Mean = %v, want 2.5", v.Mean())
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", empty.Mean())
	}
}

func TestVectorMaxMin(t *testing.T) {
	v := Vector{3, -1, 7, 7, 0}
	if x, i := v.Max(); x != 7 || i != 2 {
		t.Errorf("Max = (%v, %d), want (7, 2)", x, i)
	}
	if x, i := v.Min(); x != -1 || i != 1 {
		t.Errorf("Min = (%v, %d), want (-1, 1)", x, i)
	}
	var empty Vector
	if x, i := empty.Max(); !math.IsInf(x, -1) || i != -1 {
		t.Errorf("empty Max = (%v, %d), want (-Inf, -1)", x, i)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.AbsSum(); got != 7 {
		t.Errorf("AbsSum = %v, want 7", got)
	}
}

func TestVectorApplyCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 100
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	sq := v.Apply(func(x float64) float64 { return x * x })
	if !sq.Equal(Vector{1, 4, 9}, 0) {
		t.Errorf("Apply = %v, want [1 4 9]", sq)
	}
	v.ApplyInPlace(func(x float64) float64 { return -x })
	if !v.Equal(Vector{-1, -2, -3}, 0) {
		t.Errorf("ApplyInPlace = %v, want [-1 -2 -3]", v)
	}
}

func TestVectorHasNaN(t *testing.T) {
	if (Vector{1, 2, 3}).HasNaN() {
		t.Error("finite vector reported NaN")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("NaN vector not reported")
	}
	if !(Vector{1, math.Inf(1)}).HasNaN() {
		t.Error("Inf vector not reported")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Errorf("At/Set round-trip failed: %+v", m)
	}
	row := m.Row(1)
	if !row.Equal(Vector{0, 0, 5}, 0) {
		t.Errorf("Row(1) = %v, want [0 0 5]", row)
	}
	col := m.Col(2)
	if !col.Equal(Vector{0, 5}, 0) {
		t.Errorf("Col(2) = %v, want [0 5]", col)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged FromRows err = %v, want ErrShape", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty FromRows err = %v, want ErrShape", err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	want, _ := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !tr.Equal(want, 0) {
		t.Errorf("Transpose = %+v, want %+v", tr, want)
	}
	back := tr.Transpose()
	if !back.Equal(m, 0) {
		t.Error("double transpose is not identity")
	}
}

func TestMatrixSquare(t *testing.T) {
	m, _ := FromRows([][]float64{{-2, 3}})
	sq := m.Square()
	if sq.At(0, 0) != 4 || sq.At(0, 1) != 9 {
		t.Errorf("Square = %+v, want [[4 9]]", sq)
	}
}

func TestMulVec(t *testing.T) {
	// y = x W with W 3x2.
	w, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := Vector{1, 0, -1}
	y, err := w.MulVec(x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if !y.Equal(Vector{-4, -4}, 1e-12) {
		t.Errorf("MulVec = %v, want [-4 -4]", y)
	}
	if _, err := w.MulVec(Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec shape err = %v, want ErrShape", err)
	}
}

func TestMulVecT(t *testing.T) {
	w, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	g := Vector{1, 1}
	out, err := w.MulVecT(g)
	if err != nil {
		t.Fatalf("MulVecT: %v", err)
	}
	if !out.Equal(Vector{3, 7, 11}, 1e-12) {
		t.Errorf("MulVecT = %v, want [3 7 11]", out)
	}
	if _, err := w.MulVecT(Vector{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVecT shape err = %v, want ErrShape", err)
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Errorf("Mul = %+v, want %+v", c, want)
	}
	if _, err := a.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("Mul shape err = %v, want ErrShape", err)
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {64, 64, 64}, {111, 37, 53},
	} {
		a := NewMatrix(size.m, size.k)
		b := NewMatrix(size.k, size.n)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		serial, err := a.Mul(b)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		par, err := a.MulParallel(b)
		if err != nil {
			t.Fatalf("MulParallel: %v", err)
		}
		if !serial.Equal(par, 1e-9) {
			t.Errorf("size %+v: parallel and serial matmul disagree", size)
		}
	}
	if _, err := NewMatrix(2, 3).MulParallel(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("MulParallel shape err = %v, want ErrShape", err)
	}
}

func TestOuterAddInPlace(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := m.OuterAddInPlace(Vector{1, 2}, Vector{1, 0, -1}); err != nil {
		t.Fatalf("OuterAddInPlace: %v", err)
	}
	want, _ := FromRows([][]float64{{1, 0, -1}, {2, 0, -2}})
	if !m.Equal(want, 0) {
		t.Errorf("Outer = %+v, want %+v", m, want)
	}
	if err := m.OuterAddInPlace(Vector{1}, Vector{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Errorf("Outer shape err = %v, want ErrShape", err)
	}
}

func TestMatrixAddScaleClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	n, _ := FromRows([][]float64{{10, 20}})
	if err := m.AddInPlace(n); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	if m.At(0, 1) != 22 {
		t.Errorf("AddInPlace: got %v, want 22", m.At(0, 1))
	}
	m.ScaleInPlace(0.5)
	if m.At(0, 0) != 5.5 {
		t.Errorf("ScaleInPlace: got %v, want 5.5", m.At(0, 0))
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
	if err := m.AddInPlace(NewMatrix(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("AddInPlace shape err = %v, want ErrShape", err)
	}
}

func TestMatrixHasNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	if m.HasNaN() {
		t.Error("zero matrix reported NaN")
	}
	m.Set(1, 1, math.NaN())
	if !m.HasNaN() {
		t.Error("NaN matrix not reported")
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMatrix(200, 100)

	m.GlorotUniform(rng)
	limit := math.Sqrt(6.0 / 300.0)
	for _, x := range m.Data {
		if x < -limit || x > limit {
			t.Fatalf("Glorot value %v outside ±%v", x, limit)
		}
	}

	m.HeNormal(rng)
	var mean, varsum float64
	for _, x := range m.Data {
		mean += x
	}
	mean /= float64(len(m.Data))
	for _, x := range m.Data {
		varsum += (x - mean) * (x - mean)
	}
	varsum /= float64(len(m.Data))
	wantVar := 2.0 / 200.0
	if math.Abs(varsum-wantVar)/wantVar > 0.15 {
		t.Errorf("He variance = %v, want ≈ %v", varsum, wantVar)
	}

	m.RandomUniform(rng, 2, 3)
	for _, x := range m.Data {
		if x < 2 || x >= 3 {
			t.Fatalf("uniform value %v outside [2,3)", x)
		}
	}
}

// Property: matmul distributes over vector multiplication, i.e. for any
// matrices the two MulVec paths (x·(AB) and (x·A)·B) agree.
func TestPropertyMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(8), 2+rng.Intn(8), 2+rng.Intn(8)
		a := NewMatrix(m, k)
		b := NewMatrix(k, n)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		x := make(Vector, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		y1, err := ab.MulVec(x)
		if err != nil {
			return false
		}
		xa, err := a.MulVec(x)
		if err != nil {
			return false
		}
		y2, err := b.MulVec(xa)
		if err != nil {
			return false
		}
		return y1.Equal(y2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: transpose swaps MulVec and MulVecT.
func TestPropertyTransposeDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		m := NewMatrix(r, c)
		m.RandomNormal(rng, 0, 1)
		x := make(Vector, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1, err := m.MulVec(x)
		if err != nil {
			return false
		}
		y2, err := m.Transpose().MulVecT(x)
		if err != nil {
			return false
		}
		return y1.Equal(y2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
