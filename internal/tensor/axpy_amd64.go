//go:build amd64

package tensor

// hasAVX gates the vector axpy kernel behind runtime CPU detection: the
// AVX instruction set must be present and the OS must have enabled YMM
// state (OSXSAVE + XCR0). When false, mulBlocked falls back to the pure-Go
// inner loop. It is a var (not const) so tests can force the scalar path.
var hasAVX = detectAVX()

// hasAVX512 additionally requires AVX-512F and OS support for the opmask
// and ZMM register state; the 8-wide kernel then replaces the 4-wide one.
var hasAVX512 = detectAVX512()

func detectAVX() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	// Bits 1 and 2: XMM and YMM register state saved/restored by the OS.
	return xcr0&0x6 == 0x6
}

func detectAVX512() bool {
	if !hasAVX {
		return false
	}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	const avx512fBit = 1 << 16
	if ebx&avx512fBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	// Bits 5–7: opmask, upper-ZMM, and high-16-ZMM state enabled by the OS.
	return xcr0&0xe0 == 0xe0
}

// cpuid and xgetbv are implemented in axpy_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// axpy4AVX is the vector inner kernel of mulBlocked, implemented in
// axpy_amd64.s: d_r[j] += x_r * w[j] for r in 0..3 and j in 0..n-1. The
// scalars are passed by value so nothing escapes to the heap per call.
//
// It deliberately uses separate VMULPD and VADDPD instructions rather than
// fused multiply-add: each SIMD lane then performs exactly the rounded
// multiply followed by the rounded add that the scalar fallback performs,
// so results are bit-identical across paths. FMA's single rounding would
// break the batch-vs-sequential exactness contract in internal/core.
func axpy4AVX(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)

// axpy4AVX512 is the same kernel widened to 8 doubles per step on ZMM
// registers. Per-lane operations are identical IEEE multiplies and adds, so
// results remain bit-identical to both the 4-wide and scalar paths.
func axpy4AVX512(x0, x1, x2, x3 float64, w *float64, n int, d0, d1, d2, d3 *float64)

// axpy4 wraps the assembly kernels with slice bookkeeping and width
// dispatch. All four destination rows must be at least len(w) long.
func axpy4(x0, x1, x2, x3 float64, w, d0, d1, d2, d3 []float64) {
	if len(w) == 0 {
		return
	}
	if hasAVX512 {
		axpy4AVX512(x0, x1, x2, x3, &w[0], len(w), &d0[0], &d1[0], &d2[0], &d3[0])
		return
	}
	axpy4AVX(x0, x1, x2, x3, &w[0], len(w), &d0[0], &d1[0], &d2[0], &d3[0])
}

// axpyDualAVX is the single-row dual-moment kernel in axpy_amd64.s:
// dm[j] += xm * wm[j] and dv[j] += xv * wv[j] for j in 0..n-1 in one vector
// pass. Like axpy4AVX it uses separate VMULPD and VADDPD so every lane is
// the exact rounded multiply-then-add of the scalar loop — the compiled
// propagator relies on that for its bit-identity contract on tail rows.
func axpyDualAVX(xm, xv float64, wm, wv *float64, n int, dm, dv *float64)

// axpyDualAVX512 is the same kernel widened to 8 doubles per step.
func axpyDualAVX512(xm, xv float64, wm, wv *float64, n int, dm, dv *float64)

// axpyDual wraps the dual-moment assembly kernels with slice bookkeeping and
// width dispatch. wm and wv must have equal length; dm and dv must be at
// least that long.
func axpyDual(xm, xv float64, wm, wv, dm, dv []float64) {
	if len(wm) == 0 {
		return
	}
	if hasAVX512 {
		axpyDualAVX512(xm, xv, &wm[0], &wv[0], len(wm), &dm[0], &dv[0])
		return
	}
	axpyDualAVX(xm, xv, &wm[0], &wv[0], len(wm), &dm[0], &dv[0])
}

// axpy4DualAVX is the 4-row dual-moment kernel in axpy_amd64.s:
// dm_r[j] += x_r * wm[j] and dv_r[j] += y_r * wv[j] for r in 0..3 in one
// pass, loading each panel stripe once for both moments. Same separately
// rounded multiply-then-add per lane as every other kernel here.
func axpy4DualAVX(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv *float64, n int, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 *float64)

// axpy4DualAVX512 is the same kernel widened to 8 doubles per step.
func axpy4DualAVX512(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv *float64, n int, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 *float64)

// axpy4Dual wraps the 4-row dual-moment assembly kernels with slice
// bookkeeping and width dispatch.
func axpy4Dual(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv []float64, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 []float64) {
	if len(wm) == 0 {
		return
	}
	if hasAVX512 {
		axpy4DualAVX512(x0, x1, x2, x3, y0, y1, y2, y3, &wm[0], &wv[0], len(wm),
			&dm0[0], &dm1[0], &dm2[0], &dm3[0], &dv0[0], &dv1[0], &dv2[0], &dv3[0])
		return
	}
	axpy4DualAVX(x0, x1, x2, x3, y0, y1, y2, y3, &wm[0], &wv[0], len(wm),
		&dm0[0], &dm1[0], &dm2[0], &dm3[0], &dv0[0], &dv1[0], &dv2[0], &dv3[0])
}
