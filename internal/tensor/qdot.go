package tensor

// Quantized integer dot kernels for the int8/int16 propagation fast path
// (internal/qprop). The weight panel is laid out k-pair-interleaved: for
// each pair kp of the shared dimension, the stripe
//
//	panel[kp*2*nOut+2j]   = w[2kp][j]
//	panel[kp*2*nOut+2j+1] = w[2kp+1][j]
//
// holds two adjacent k-rows for every output j, so one 32-bit lane of a
// VPMADDWD step consumes exactly one (activation pair) × (weight pair)
// multiply-accumulate. Odd shared dimensions are padded with a zero row.
//
// Overflow budget: activation codes are int16 in [-32767, 32767] and weight
// codes int8-ranged in [-127, 127], so one pair-sum is bounded by
// 2·32767·127 = 8 322 818 and 2³¹−1 / 8 322 818 ≈ 258 pair-sums fit an
// int32 lane. QPairBlock = 128 keeps a full block at ≤ 1 065 320 704 with
// a 2× margin; callers widen each block's int32 accumulators into int64
// totals. The int16 minimum −32768 never appears in either operand, so the
// VPMADDWD corner case (−32768·−32768 twice overflowing its lane) is
// unreachable by construction.
const QPairBlock = 128

// QMaddPairs accumulates one block of the pair-interleaved integer dual dot:
//
//	acc[j] += Σ_{kp<pairs} a[2kp]·panel[kp·2·nOut+2j] + a[2kp+1]·panel[kp·2·nOut+2j+1]
//
// for j in 0..nOut. a must hold 2·pairs codes, panel pairs·2·nOut, acc nOut.
// The caller guarantees pairs ≤ QPairBlock (so int32 lanes cannot overflow)
// and that every code is within the ranges documented on QPairBlock.
// Integer arithmetic is exact, so the scalar and vector paths agree
// bit-for-bit regardless of accumulation order; internal/tensor's
// differential tests pin naive = scalar = SIMD equality anyway.
func QMaddPairs(a, panel []int16, pairs, nOut int, acc []int32) {
	if pairs <= 0 || nOut <= 0 {
		return
	}
	_ = a[2*pairs-1]
	_ = panel[pairs*2*nOut-1]
	_ = acc[nOut-1]
	if hasAVX2 {
		j8 := nOut &^ 7
		for j := 0; j < j8; j += 8 {
			qmadd8AVX2(&a[0], &panel[2*j], pairs, 2*nOut, &acc[j])
		}
		if j8 < nOut {
			qmaddScalarRange(a, panel, pairs, nOut, j8, nOut, acc)
		}
		return
	}
	qmaddScalarRange(a, panel, pairs, nOut, 0, nOut, acc)
}

// qmaddScalarRange is the pure-Go reference kernel over outputs [jLo, jHi).
// It skips all-zero activation pairs (sparse rows after aggressive
// quantization); the vector path does not, which is invisible because
// integer accumulation is exact.
func qmaddScalarRange(a, panel []int16, pairs, nOut, jLo, jHi int, acc []int32) {
	for kp := 0; kp < pairs; kp++ {
		a0, a1 := int32(a[2*kp]), int32(a[2*kp+1])
		if a0 == 0 && a1 == 0 {
			continue
		}
		row := panel[kp*2*nOut:]
		for j := jLo; j < jHi; j++ {
			acc[j] += a0*int32(row[2*j]) + a1*int32(row[2*j+1])
		}
	}
}
