package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestMulIntoMatchesMulVecRowwise is the bit-level contract of the batched
// kernel: every row of m × n from MulInto equals that row pushed through the
// per-vector MulVecInto — with zero tolerance — across shapes that exercise
// the 4-row register blocking remainder and the k-block remainder.
func TestMulIntoMatchesMulVecRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 5, 3}, {4, 64, 48}, {7, 65, 31}, {64, 256, 256}, {3, 130, 2}, {9, 1, 4},
	}
	for _, s := range shapes {
		rows, k, cols := s[0], s[1], s[2]
		a := NewMatrix(rows, k)
		b := NewMatrix(k, cols)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		// Sprinkle zeros to exercise the zero-skip paths.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}
		dst := NewMatrix(rows, cols)
		dst.Fill(99) // MulInto must overwrite, not accumulate
		if err := a.MulInto(b, dst); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		want := make(Vector, cols)
		for i := 0; i < rows; i++ {
			b.MulVecInto(a.Row(i), want)
			if !dst.Row(i).Equal(want, 0) {
				t.Fatalf("%v: row %d differs from MulVecInto", s, i)
			}
		}
	}
}

// TestMulParallelIntoMatchesSerial checks the row-parallel variant against
// the serial kernel under a forced multi-worker configuration, including
// chunk sizes that are not multiples of 4.
func TestMulParallelIntoMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(13))
	for _, rows := range []int{2, 5, 64, 66, 131} {
		a := NewMatrix(rows, 96)
		b := NewMatrix(96, 80)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		want := NewMatrix(rows, 80)
		if err := a.MulInto(b, want); err != nil {
			t.Fatal(err)
		}
		got := NewMatrix(rows, 80)
		if err := a.MulParallelInto(b, got); err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got, 0) {
			t.Errorf("rows=%d: parallel result differs from serial", rows)
		}
	}
}

func TestMulIntoShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 5) // inner mismatch
	if err := a.MulInto(b, NewMatrix(2, 5)); err == nil {
		t.Error("inner mismatch accepted")
	}
	c := NewMatrix(3, 5)
	if err := a.MulInto(c, NewMatrix(2, 4)); err == nil {
		t.Error("bad dst shape accepted")
	}
	if err := a.MulParallelInto(b, NewMatrix(2, 5)); err == nil {
		t.Error("parallel inner mismatch accepted")
	}
	if err := a.MulParallelInto(c, NewMatrix(3, 5)); err == nil {
		t.Error("parallel bad dst shape accepted")
	}
}

// TestMulIntoMatchesMul cross-checks against the allocating Mul (ikj serial
// kernel) within floating-point reassociation tolerance.
func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := NewMatrix(33, 70)
	b := NewMatrix(70, 41)
	a.RandomNormal(rng, 0, 1)
	b.RandomNormal(rng, 0, 1)
	want, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(33, 41)
	if err := a.MulInto(b, got); err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got, 1e-12) {
		t.Error("MulInto differs from Mul")
	}
}

// TestMulBlockedVectorScalarBitExact pins the vector axpy kernels to the
// pure-Go inner loop bit for bit (including negative zeros and subnormal
// products): each vector path must be the same sequence of separately
// rounded multiplies and adds, just several lanes at a time. Skipped where
// no vector kernel runs.
func TestMulBlockedVectorScalarBitExact(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX vector kernel on this machine")
	}
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()
	rng := rand.New(rand.NewSource(11))
	for _, s := range [][3]int{{4, 64, 64}, {8, 130, 33}, {6, 7, 5}, {5, 64, 2}, {64, 256, 256}, {4, 16, 13}} {
		rows, k, cols := s[0], s[1], s[2]
		a := NewMatrix(rows, k)
		b := NewMatrix(k, cols)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		for i := 0; i < len(a.Data); i += 5 {
			a.Data[i] = 0
		}
		for i := 0; i < len(b.Data); i += 9 {
			b.Data[i] = -b.Data[i]
		}
		hasAVX, hasAVX512 = false, false
		sca := NewMatrix(rows, cols)
		if err := a.MulInto(b, sca); err != nil {
			t.Fatal(err)
		}
		kernels := []struct {
			name     string
			avx, zmm bool
		}{{"avx", true, false}}
		if saved512 {
			kernels = append(kernels, struct {
				name     string
				avx, zmm bool
			}{"avx512", true, true})
		}
		for _, kr := range kernels {
			hasAVX, hasAVX512 = kr.avx, kr.zmm
			vec := NewMatrix(rows, cols)
			if err := a.MulInto(b, vec); err != nil {
				t.Fatal(err)
			}
			for i := range vec.Data {
				if math.Float64bits(vec.Data[i]) != math.Float64bits(sca.Data[i]) {
					t.Fatalf("%v %s: element %d: vector %x != scalar %x",
						s, kr.name, i, math.Float64bits(vec.Data[i]), math.Float64bits(sca.Data[i]))
				}
			}
		}
		hasAVX, hasAVX512 = savedAVX, saved512
	}
}
