//go:build !amd64

package tensor

// hasAVX2 is always false off amd64; QMaddPairs uses the pure-Go kernel.
// It is a var for symmetry with the amd64 build, where tests toggle it.
var hasAVX2 = false

// qmadd8AVX2 is never reached when hasAVX2 is false; the stub keeps the
// cross-platform build honest.
func qmadd8AVX2(a, panel *int16, pairs, stride int, acc *int32) {
	panic("tensor: integer madd kernel unavailable on this architecture")
}
