// Package tensor implements dense float64 vector and matrix primitives used
// throughout the ApDeepSense reproduction.
//
// The package is intentionally small and allocation-conscious: every hot-path
// routine has an in-place variant that writes into a caller-supplied
// destination, and matrix multiplication has both a serial and a
// goroutine-parallel implementation. Only the standard library is used.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Vector is a dense one-dimensional array of float64 values.
type Vector []float64

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Add returns v + w element-wise.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d vs %d: %w", len(v), len(w), ErrShape)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w element-wise.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d vs %d: %w", len(v), len(w), ErrShape)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Mul returns the element-wise (Hadamard) product v ⊙ w.
func (v Vector) Mul(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("mul %d vs %d: %w", len(v), len(w), ErrShape)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out, nil
}

// Scale returns c * v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AddInPlace sets v = v + w. It reports an error on length mismatch.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("add-in-place %d vs %d: %w", len(v), len(w), ErrShape)
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d vs %d: %w", len(v), len(w), ErrShape)
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. It returns (-Inf, -1) for an
// empty vector.
func (v Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum element and its index. It returns (+Inf, -1) for an
// empty vector.
func (v Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AbsSum returns the L1 norm of v.
func (v Vector) AbsSum() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Apply returns a new vector whose elements are f applied to each element of v.
func (v Vector) Apply(f func(float64) float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = f(x)
	}
	return out
}

// ApplyInPlace applies f to each element of v in place.
func (v Vector) ApplyInPlace(f func(float64) float64) {
	for i, x := range v {
		v[i] = f(x)
	}
}

// Equal reports whether v and w have the same length and all elements within
// tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element of v is NaN or infinite.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order; element (i, j) lives at
	// Data[i*Cols+j].
	Data []float64
}

// NewMatrix returns a zero-initialized rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The input data
// is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("from-rows: empty input: %w", ErrShape)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("from-rows: row %d has %d cols, want %d: %w", i, len(r), cols, ErrShape)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores x at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a vector sharing the matrix's backing storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element of m to c.
func (m *Matrix) Fill(c float64) {
	for i := range m.Data {
		m.Data[i] = c
	}
}

// Apply returns a new matrix whose elements are f applied element-wise.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = f(x)
	}
	return out
}

// Square returns the element-wise square m ⊙ m, written W² in the paper.
func (m *Matrix) Square() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.Data {
		out.Data[i] = x * x
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[base+j]
		}
	}
	return out
}

// AddInPlace sets m = m + n.
func (m *Matrix) AddInPlace(n *Matrix) error {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return fmt.Errorf("matrix add %dx%d vs %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return nil
}

// ScaleInPlace sets m = c * m.
func (m *Matrix) ScaleInPlace(c float64) {
	for i := range m.Data {
		m.Data[i] *= c
	}
}

// Equal reports whether m and n share shape and all elements agree within tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element of m is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, x := range m.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// MulVec computes xᵀ M for a row vector x of length m.Rows, returning a
// vector of length m.Cols. This is the layer-wise orientation used by the
// paper: y = x W.
func (m *Matrix) MulVec(x Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("mulvec: x has %d elems, matrix has %d rows: %w", len(x), m.Rows, ErrShape)
	}
	out := make(Vector, m.Cols)
	m.MulVecInto(x, out)
	return out, nil
}

// MulVecInto computes xᵀ M into dst. dst must have length m.Cols and x must
// have length m.Rows; the caller guarantees shapes (hot path, no error
// return). Accumulating row-by-row keeps memory access sequential in the
// row-major layout.
func (m *Matrix) MulVecInto(x Vector, dst Vector) {
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += xi * w
		}
	}
}

// MulVecT computes M x for a column vector x of length m.Cols, returning a
// vector of length m.Rows. This is the orientation used by backpropagation:
// dL/dx = W (dL/dy).
func (m *Matrix) MulVecT(x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mulvecT: x has %d elems, matrix has %d cols: %w", len(x), m.Cols, ErrShape)
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns the matrix product m × n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("matmul %dx%d × %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	out := NewMatrix(m.Rows, n.Cols)
	mulSerial(m, n, out)
	return out, nil
}

// mulSerial computes out = m × n with an ikj loop order (cache-friendly for
// row-major storage).
func mulSerial(m, n, out *Matrix) {
	for i := 0; i < m.Rows; i++ {
		outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, b := range nRow {
				outRow[j] += a * b
			}
		}
	}
}

// OuterAddInPlace accumulates the outer product x yᵀ into m:
// m[i][j] += x[i] * y[j]. Used by backprop for weight gradients.
func (m *Matrix) OuterAddInPlace(x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("outer %dx%d into %dx%d: %w", len(x), len(y), m.Rows, m.Cols, ErrShape)
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += xi * yj
		}
	}
	return nil
}
