package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMul is the obviously-correct reference: one scalar accumulator per
// output element, shared dimension traversed in ascending order. That is the
// exact rounding sequence MulInto documents for every kernel variant, so the
// blocked/SIMD results must reproduce it bit for bit — not approximately.
func naiveMul(m, n *Matrix) *Matrix {
	dst := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			var sum float64
			for k := 0; k < m.Cols; k++ {
				sum += m.Data[i*m.Cols+k] * n.Data[k*n.Cols+j]
			}
			dst.Data[i*dst.Cols+j] = sum
		}
	}
	return dst
}

// raggedShapes crosses the shapes that historically break blocked kernels:
// single elements, single rows/columns (the 4-row register block's remainder
// loop), odd widths, and shared dimensions straddling the mulKBlock=64 tile
// boundary.
var raggedShapes = []struct{ r, k, c int }{
	{1, 1, 1},
	{1, 1, 17},
	{1, 33, 1},
	{17, 1, 1},
	{3, 7, 5},
	{4, 64, 8},
	{5, 65, 9},
	{6, 63, 2},
	{7, 128, 11},
	{8, 129, 3},
	{31, 300, 13},
}

// fillStress populates a matrix with values that stress bit-level agreement:
// sign mixes, exact zeros (the kernels' zero-skip), huge magnitudes, and
// subnormal-range values whose products underflow (including to −0).
func fillStress(m *Matrix, rng *rand.Rand) {
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = (rng.Float64()*2 - 1) * 1e300
		case 2:
			m.Data[i] = (rng.Float64()*2 - 1) * 1e-200
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
}

// kernelVariants enumerates the reachable dispatch configurations on this
// machine: forced scalar always, the AVX axpy kernel when the CPU has it,
// and the AVX-512 kernel when that is available too.
func kernelVariants() []struct {
	name     string
	avx, zmm bool
} {
	vs := []struct {
		name     string
		avx, zmm bool
	}{{"scalar", false, false}}
	if hasAVX {
		vs = append(vs, struct {
			name     string
			avx, zmm bool
		}{"avx", true, false})
	}
	if hasAVX512 {
		vs = append(vs, struct {
			name     string
			avx, zmm bool
		}{"avx512", true, true})
	}
	return vs
}

// TestMulIntoDifferential checks every kernel variant against the naive
// triple-loop reference, bit for bit, over the ragged shape grid and
// stress-valued inputs.
func TestMulIntoDifferential(t *testing.T) {
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()

	rng := rand.New(rand.NewSource(42))
	for _, sh := range raggedShapes {
		m := NewMatrix(sh.r, sh.k)
		n := NewMatrix(sh.k, sh.c)
		fillStress(m, rng)
		fillStress(n, rng)
		want := naiveMul(m, n)

		for _, kr := range kernelVariants() {
			hasAVX, hasAVX512 = kr.avx, kr.zmm
			dst := NewMatrix(sh.r, sh.c)
			if err := m.MulInto(n, dst); err != nil {
				t.Fatalf("%s %dx%dx%d: %v", kr.name, sh.r, sh.k, sh.c, err)
			}
			for i := range dst.Data {
				if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Errorf("%s %dx%dx%d: elem %d = %v (%#x), naive %v (%#x)",
						kr.name, sh.r, sh.k, sh.c, i,
						dst.Data[i], math.Float64bits(dst.Data[i]),
						want.Data[i], math.Float64bits(want.Data[i]))
					break
				}
			}
		}
		hasAVX, hasAVX512 = savedAVX, saved512
	}
}

// TestMulVecIntoDifferential pins the per-sample gemv against the same naive
// reference: xᵀM for each ragged shape, bit-identical. Together with
// TestMulIntoDifferential this closes the triangle naive = gemv = gemm that
// the propagation paths' bit-identity contract stands on.
func TestMulVecIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range raggedShapes {
		w := NewMatrix(sh.k, sh.c)
		fillStress(w, rng)
		x := NewMatrix(1, sh.k)
		fillStress(x, rng)
		want := naiveMul(x, w)

		dst := NewVector(sh.c)
		w.MulVecInto(Vector(x.Data), dst)
		for j := range dst {
			if math.Float64bits(dst[j]) != math.Float64bits(want.Data[j]) {
				t.Errorf("%dx%d: elem %d = %v (%#x), naive %v (%#x)",
					sh.k, sh.c, j, dst[j], math.Float64bits(dst[j]),
					want.Data[j], math.Float64bits(want.Data[j]))
				break
			}
		}
	}
}

// TestMulIntoRowsMatchMulVecInto checks the documented row contract of the
// batched kernel directly: row i of MulInto equals row i of the matrix
// pushed through MulVecInto, bit for bit, under every dispatch variant.
func TestMulIntoRowsMatchMulVecInto(t *testing.T) {
	savedAVX, saved512 := hasAVX, hasAVX512
	defer func() { hasAVX, hasAVX512 = savedAVX, saved512 }()

	rng := rand.New(rand.NewSource(44))
	for _, sh := range raggedShapes {
		m := NewMatrix(sh.r, sh.k)
		n := NewMatrix(sh.k, sh.c)
		fillStress(m, rng)
		fillStress(n, rng)

		for _, kr := range kernelVariants() {
			hasAVX, hasAVX512 = kr.avx, kr.zmm
			dst := NewMatrix(sh.r, sh.c)
			if err := m.MulInto(n, dst); err != nil {
				t.Fatal(err)
			}
			row := NewVector(sh.c)
			for i := 0; i < sh.r; i++ {
				n.MulVecInto(Vector(m.Data[i*sh.k:(i+1)*sh.k]), row)
				for j := range row {
					if math.Float64bits(dst.Data[i*sh.c+j]) != math.Float64bits(row[j]) {
						t.Errorf("%s %dx%dx%d row %d col %d: gemm %v != gemv %v",
							kr.name, sh.r, sh.k, sh.c, i, j, dst.Data[i*sh.c+j], row[j])
					}
				}
			}
		}
		hasAVX, hasAVX512 = savedAVX, saved512
	}
}
