package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestMulParallelUsesWorkers forces a multi-worker configuration (logical
// GOMAXPROCS works on any host) so the goroutine fan-out path is exercised,
// including uneven row chunking.
func TestMulParallelUsesWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{3, 64, 65, 130} {
		a := NewMatrix(rows, 64)
		b := NewMatrix(64, 48)
		a.RandomNormal(rng, 0, 1)
		b.RandomNormal(rng, 0, 1)
		want, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.MulParallel(b)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got, 1e-9) {
			t.Errorf("rows=%d: parallel result differs from serial", rows)
		}
	}
}

func TestVectorFillScaleApply(t *testing.T) {
	v := NewVector(3)
	if len(v) != 3 || v[0] != 0 {
		t.Fatalf("NewVector = %v", v)
	}
	v.Fill(2)
	if v[2] != 2 {
		t.Errorf("Fill: %v", v)
	}
	s := v.Scale(1.5)
	if s[0] != 3 || v[0] != 2 {
		t.Errorf("Scale = %v (orig %v)", s, v)
	}
	// Vector Equal rejects length mismatch.
	if v.Equal(Vector{2, 2}, 0) {
		t.Error("Equal accepted length mismatch")
	}
}

func TestMatrixFillApplyEqual(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Errorf("Fill: %v", m.Data)
	}
	sq := m.Apply(func(x float64) float64 { return x * x })
	if sq.At(0, 0) != 9 || m.At(0, 0) != 3 {
		t.Error("Apply mutated or miscomputed")
	}
	if m.Equal(NewMatrix(3, 2), 0) {
		t.Error("Equal accepted shape mismatch")
	}
}

func TestVectorAddInPlace(t *testing.T) {
	v := Vector{1, 2}
	if err := v.AddInPlace(Vector{10, 20}); err != nil {
		t.Fatal(err)
	}
	if v[1] != 22 {
		t.Errorf("AddInPlace: %v", v)
	}
}
