//go:build amd64

#include "textflag.h"

// func qmadd8AVX2(a *int16, panel *int16, pairs int, stride int, acc *int32)
//
// Eight-output integer pair-madd. For kp in 0..pairs:
//
//	Y1 = broadcast of the dword (a[2kp] | a[2kp+1]<<16)    VPBROADCASTD
//	Y2 = per-lane a0·w0 + a1·w1 over 16 int16 of the row   VPMADDWD
//	Y0 += Y2                                               VPADDD
//
// then acc[0..8) += Y0. stride is in int16 elements; it is doubled to bytes
// here. The caller bounds pairs by QPairBlock so lanes cannot overflow.
TEXT ·qmadd8AVX2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ panel+8(FP), DI
	MOVQ pairs+16(FP), CX
	MOVQ stride+24(FP), BX
	SHLQ $1, BX             // stride in bytes
	MOVQ acc+32(FP), R8
	VPXOR Y0, Y0, Y0
	XORQ DX, DX

qloop:
	CMPQ DX, CX
	JGE  qdone
	VPBROADCASTD (SI), Y1
	VPMADDWD (DI), Y1, Y2
	VPADDD Y2, Y0, Y0
	ADDQ $4, SI
	ADDQ BX, DI
	INCQ DX
	JMP  qloop

qdone:
	VMOVDQU (R8), Y3
	VPADDD Y3, Y0, Y0
	VMOVDQU Y0, (R8)
	VZEROUPPER
	RET
