//go:build amd64

package tensor

// hasAVX2 gates the VPMADDWD integer dot kernel behind runtime CPU
// detection. AVX2 shares the YMM register state with AVX, so the OS-support
// half of the check is inherited from hasAVX; only the CPUID feature bit is
// new. A var (not const) so tests can force the scalar path.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	if !hasAVX {
		return false
	}
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, ebx, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx&avx2Bit != 0
}

// qmadd8AVX2 is the vector inner kernel of QMaddPairs, implemented in
// qdot_amd64.s: for one block of 8 adjacent outputs it accumulates
// acc[0..8) += Σ_{kp<pairs} a[2kp]·panel[kp·stride+2j] + a[2kp+1]·panel[kp·stride+2j+1],
// one VPBROADCASTD + VPMADDWD + VPADDD per pair row. stride is in int16
// elements (2·nOut for the standard panel layout). Integer lanes are exact,
// so no rounding-order caveats apply — the only contract is the caller's
// overflow budget documented on QPairBlock.
func qmadd8AVX2(a, panel *int16, pairs, stride int, acc *int32)
