//go:build !amd64

package tensor

// hasAVX is always false off amd64; mulBlocked uses the pure-Go inner loop.
// It is a var for symmetry with the amd64 build, where tests toggle it.
var hasAVX = false

// hasAVX512 mirrors the amd64 build for the same reason.
var hasAVX512 = false

// axpy4 is never reached when hasAVX is false; the stub keeps the
// cross-platform build honest.
func axpy4(x0, x1, x2, x3 float64, w, d0, d1, d2, d3 []float64) {
	panic("tensor: vector axpy kernel unavailable on this architecture")
}

// axpyDual is never reached when hasAVX is false; see axpy4.
func axpyDual(xm, xv float64, wm, wv, dm, dv []float64) {
	panic("tensor: vector axpy kernel unavailable on this architecture")
}

// axpy4Dual is never reached when hasAVX is false; see axpy4.
func axpy4Dual(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv []float64, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 []float64) {
	panic("tensor: vector axpy kernel unavailable on this architecture")
}
