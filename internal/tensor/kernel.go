package tensor

// KBlock is the k-dimension tile height of the blocked matmul kernel
// (mulBlocked): how many rows of the right-hand matrix stay cache-hot while
// a panel of left-hand rows streams against them. Exported so the
// shape-specialized compiled propagator (internal/compile) can pack weight
// panels with the same blocking and reproduce MulInto's accumulation order
// — and therefore its floating-point results — exactly.
const KBlock = mulKBlock

// Axpy4 performs d_r[j] += x_r * w[j] for r in 0..3 over j in [0, len(w)),
// dispatching exactly as mulBlocked's inner loop does: the AVX/AVX-512
// vector kernel when available, the scalar loop otherwise. Every lane
// performs a separately rounded multiply followed by a separately rounded
// add in ascending j, so accumulating through Axpy4 is bit-identical to the
// blocked matmul's inner loop on every architecture. All four destination
// slices must be at least len(w) long.
//
// Callers replicating mulBlocked must also replicate its zero-skip: the
// blocked kernel does not invoke the inner loop at all when x0 through x3
// are all zero, which is observable in the bits (+0 + −0 differs from an
// untouched accumulator only in edge cases, but "identical" means
// identical).
func Axpy4(x0, x1, x2, x3 float64, w, d0, d1, d2, d3 []float64) {
	if hasAVX {
		axpy4(x0, x1, x2, x3, w, d0, d1, d2, d3)
		return
	}
	b0, b1, b2, b3 := d0[:len(w)], d1[:len(w)], d2[:len(w)], d3[:len(w)]
	for j, wj := range w {
		b0[j] += x0 * wj
		b1[j] += x1 * wj
		b2[j] += x2 * wj
		b3[j] += x3 * wj
	}
}

// AxpyDual performs dm[j] += xm * wm[j] and dv[j] += xv * wv[j] over
// j in [0, len(wm)) in one pass — the single-row counterpart of Axpy4 for
// the compiled propagator's dual-moment panels, where wm is a weight row and
// wv its squared pair. mulBlocked's scalar tail has no vector kernel (a
// lone row gives it nothing to amortize a broadcast across), but the fused
// dual layout restores a second stream to overlap, which is what makes
// batch-1 compiled propagation faster than the interpreted path.
//
// Every lane is a separately rounded multiply followed by a separately
// rounded add, so each destination element sees the exact bits of the scalar
// loop. wm and wv must have equal length; dm and dv must be at least that
// long. Callers replicating mulBlocked's tail must still apply its x == 0
// skip per side before calling.
func AxpyDual(xm, xv float64, wm, wv, dm, dv []float64) {
	if hasAVX {
		axpyDual(xm, xv, wm, wv, dm, dv)
		return
	}
	a, b := dm[:len(wm)], dv[:len(wm)]
	for j, wj := range wm {
		a[j] += xm * wj
	}
	for j, wj := range wv {
		b[j] += xv * wj
	}
}

// Axpy4Dual is the 4-row counterpart of AxpyDual: dm_r[j] += x_r * wm[j]
// and dv_r[j] += y_r * wv[j] for r in 0..3 in one pass. The compiled
// propagator's register-blocked sweep uses it to load each packed panel
// stripe once for both moments and pay one call per k-step instead of two
// Axpy4 calls. Per-lane operations are the identical separately rounded
// multiply-then-add, so the result bits match two Axpy4 calls exactly.
//
// Callers replicating mulBlocked must apply its all-four-zero skip per side
// BEFORE choosing this kernel: use it only when both the mean and variance
// x-vectors have a nonzero lane, and fall back to single-sided Axpy4 (or
// nothing) otherwise, so a skipped side's accumulators stay untouched.
func Axpy4Dual(x0, x1, x2, x3, y0, y1, y2, y3 float64, wm, wv, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3 []float64) {
	if hasAVX {
		axpy4Dual(x0, x1, x2, x3, y0, y1, y2, y3, wm, wv, dm0, dm1, dm2, dm3, dv0, dv1, dv2, dv3)
		return
	}
	Axpy4(x0, x1, x2, x3, wm, dm0, dm1, dm2, dm3)
	Axpy4(y0, y1, y2, y3, wv, dv0, dv1, dv2, dv3)
}
