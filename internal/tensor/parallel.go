package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MulParallel returns m × n, splitting the output rows across up to
// runtime.GOMAXPROCS goroutines. It falls back to the serial kernel for
// small matrices where goroutine overhead dominates.
func (m *Matrix) MulParallel(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("matmul-parallel %dx%d × %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	out := NewMatrix(m.Rows, n.Cols)
	const parallelThreshold = 1 << 16 // ~64k multiply-adds
	work := m.Rows * m.Cols * n.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m.Rows < 2 {
		mulSerial(m, n, out)
		return out, nil
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
				for k := 0; k < m.Cols; k++ {
					a := m.Data[i*m.Cols+k]
					if a == 0 {
						continue
					}
					nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
					for j, b := range nRow {
						outRow[j] += a * b
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
