package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the multiply-add count below which goroutine overhead
// dominates and the serial kernel wins.
const parallelThreshold = 1 << 16 // ~64k multiply-adds

// MulParallel returns m × n, splitting the output rows across up to
// runtime.GOMAXPROCS goroutines. It falls back to the serial kernel for
// small matrices where goroutine overhead dominates.
func (m *Matrix) MulParallel(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("matmul-parallel %dx%d × %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	out := NewMatrix(m.Rows, n.Cols)
	if err := m.MulParallelInto(n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MulParallelInto is the row-parallel variant of MulInto: dst = m × n with
// the rows of m divided into contiguous chunks, each pushed through the
// blocked serial kernel on its own goroutine. Because every chunk runs the
// same ascending-k accumulation on disjoint output rows, the result is
// identical to MulInto regardless of worker count.
func (m *Matrix) MulParallelInto(n, dst *Matrix) error {
	if m.Cols != n.Rows {
		return fmt.Errorf("matmul-parallel %dx%d × %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	if dst.Rows != m.Rows || dst.Cols != n.Cols {
		return fmt.Errorf("matmul-parallel dst %dx%d, want %dx%d: %w", dst.Rows, dst.Cols, m.Rows, n.Cols, ErrShape)
	}
	work := m.Rows * m.Cols * n.Cols
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m.Rows < 2 {
		mulBlocked(m, n, dst)
		return nil
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	// Round chunks up to a multiple of 4 so every worker but the last runs
	// the 4-row register-blocked fast path end to end.
	if chunk%4 != 0 {
		chunk += 4 - chunk%4
	}
	for lo := 0; lo < m.Rows; lo += chunk {
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sub := &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
			sdst := &Matrix{Rows: hi - lo, Cols: dst.Cols, Data: dst.Data[lo*dst.Cols : hi*dst.Cols]}
			mulBlocked(sub, n, sdst)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}
