package tensor

import "fmt"

// mulKBlock is the tile height over the shared dimension: how many rows of
// the right-hand matrix stay cache-hot while a panel of left-hand rows is
// streamed against them. 64 rows × 512 cols × 8 B = 256 KB at paper width,
// inside a per-core L2.
const mulKBlock = 64

// MulInto computes dst = m × n into a caller-supplied matrix, the batched
// counterpart of MulVecInto: one blocked matrix–matrix kernel instead of
// m.Rows independent matrix–vector passes. dst must be pre-shaped to
// m.Rows × n.Cols; its contents are overwritten.
//
// The kernel accumulates over the shared dimension in strictly ascending
// order for every output element — the same order as MulVecInto — so each
// dst row is value-identical to m.Row(i) pushed through MulVecInto. That
// property is what lets the batched moment propagation in internal/core
// match the per-sample path exactly.
func (m *Matrix) MulInto(n, dst *Matrix) error {
	if m.Cols != n.Rows {
		return fmt.Errorf("mul-into %dx%d × %dx%d: %w", m.Rows, m.Cols, n.Rows, n.Cols, ErrShape)
	}
	if dst.Rows != m.Rows || dst.Cols != n.Cols {
		return fmt.Errorf("mul-into dst %dx%d, want %dx%d: %w", dst.Rows, dst.Cols, m.Rows, n.Cols, ErrShape)
	}
	mulBlocked(m, n, dst)
	return nil
}

// mulBlocked is the shared serial kernel behind MulInto and MulParallelInto:
// k-blocked so a tile of n's rows is reused across the whole left-hand panel
// (the cache win over per-sample gemv), and 4-row register-blocked so each
// loaded n element feeds four output rows. On amd64 with AVX the inner loop
// dispatches to the axpy4 vector kernel, which performs the identical
// sequence of separately rounded multiplies and adds 4 lanes at a time. Per
// output element the k-order is ascending, matching MulVecInto.
func mulBlocked(m, n, dst *Matrix) {
	k, cols := m.Cols, n.Cols
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for kb := 0; kb < k; kb += mulKBlock {
		kEnd := kb + mulKBlock
		if kEnd > k {
			kEnd = k
		}
		i := 0
		for ; i+4 <= m.Rows; i += 4 {
			a0 := m.Data[(i+0)*k : (i+1)*k]
			a1 := m.Data[(i+1)*k : (i+2)*k]
			a2 := m.Data[(i+2)*k : (i+3)*k]
			a3 := m.Data[(i+3)*k : (i+4)*k]
			o0 := dst.Data[(i+0)*cols : (i+1)*cols]
			o1 := dst.Data[(i+1)*cols : (i+2)*cols]
			o2 := dst.Data[(i+2)*cols : (i+3)*cols]
			o3 := dst.Data[(i+3)*cols : (i+4)*cols]
			for kk := kb; kk < kEnd; kk++ {
				x0, x1, x2, x3 := a0[kk], a1[kk], a2[kk], a3[kk]
				if x0 == 0 && x1 == 0 && x2 == 0 && x3 == 0 {
					continue
				}
				w := n.Data[kk*cols : (kk+1)*cols]
				if hasAVX {
					axpy4(x0, x1, x2, x3, w, o0, o1, o2, o3)
					continue
				}
				b0, b1, b2, b3 := o0[:len(w)], o1[:len(w)], o2[:len(w)], o3[:len(w)]
				for j, wj := range w {
					b0[j] += x0 * wj
					b1[j] += x1 * wj
					b2[j] += x2 * wj
					b3[j] += x3 * wj
				}
			}
		}
		for ; i < m.Rows; i++ {
			ai := m.Data[i*k : (i+1)*k]
			oi := dst.Data[i*cols : (i+1)*cols]
			for kk := kb; kk < kEnd; kk++ {
				x := ai[kk]
				if x == 0 {
					continue
				}
				w := n.Data[kk*cols : (kk+1)*cols]
				bi := oi[:len(w)]
				for j, wj := range w {
					bi[j] += x * wj
				}
			}
		}
	}
}
