package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// ErrManifest is returned (wrapped) for unreadable or invalid manifests.
var ErrManifest = errors.New("registry: invalid manifest")

// Manifest is the on-disk description of what a registry should serve:
// models, their version files, and the traffic policy per model. Model file
// paths are resolved relative to the manifest's directory.
//
//	{
//	  "models": [{
//	    "name": "demo",
//	    "obs_var": 0,
//	    "versions": [{"id": "v1", "path": "demo-v1.model"},
//	                 {"id": "v2", "path": "demo-v2.model"}],
//	    "current": "v1",
//	    "canary": {"id": "v2", "weight": 0.1},
//	    "shadow": "v2"
//	  }]
//	}
type Manifest struct {
	Models []ManifestModel `json:"models"`
	// Sessions, when present, configures the resident device-session fleet
	// (internal/session) served alongside the models:
	//
	//	"sessions": {
	//	  "model": "demo",
	//	  "channels": 3, "length": 8, "stride": 4,
	//	  "standardize": true,
	//	  "warmup_windows": 8, "drift_threshold": 0.9,
	//	  "escalate_after": 2, "readmit_after": 2,
	//	  "idle_timeout": "10m",
	//	  "snapshot_path": "fleet.apsf", "snapshot_interval": "30s"
	//	}
	Sessions *ManifestSessions `json:"sessions,omitempty"`
}

// ManifestSessions configures the resident session fleet: which model the
// fleet predicts through (hot-swap safe — the session manager resolves the
// live version per batch), the per-device window shape and gate policy, and
// where the whole-fleet snapshot persists. SnapshotPath is resolved relative
// to the manifest's directory, like model version paths. Durations use
// time.ParseDuration syntax ("30s", "10m").
type ManifestSessions struct {
	Model            string  `json:"model"`
	Channels         int     `json:"channels"`
	Length           int     `json:"length"`
	Stride           int     `json:"stride"`
	Standardize      bool    `json:"standardize,omitempty"`
	WarmupWindows    int     `json:"warmup_windows,omitempty"`
	DriftThreshold   float64 `json:"drift_threshold,omitempty"`
	EscalateAfter    int     `json:"escalate_after,omitempty"`
	ReadmitAfter     int     `json:"readmit_after,omitempty"`
	IdleTimeout      string  `json:"idle_timeout,omitempty"`
	SnapshotPath     string  `json:"snapshot_path,omitempty"`
	SnapshotInterval string  `json:"snapshot_interval,omitempty"`
}

// ParsedIdleTimeout returns the idle-eviction timeout (0 when unset).
func (ms *ManifestSessions) ParsedIdleTimeout() (time.Duration, error) {
	return parseOptionalDuration("idle_timeout", ms.IdleTimeout)
}

// ParsedSnapshotInterval returns the periodic-snapshot interval (0 = only
// snapshot on shutdown).
func (ms *ManifestSessions) ParsedSnapshotInterval() (time.Duration, error) {
	return parseOptionalDuration("snapshot_interval", ms.SnapshotInterval)
}

func parseOptionalDuration(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("sessions: %s %q: %v: %w", field, s, err, ErrManifest)
	}
	if d < 0 {
		return 0, fmt.Errorf("sessions: %s %q negative: %w", field, s, ErrManifest)
	}
	return d, nil
}

// ManifestModel is one model entry.
type ManifestModel struct {
	Name   string  `json:"name"`
	ObsVar float64 `json:"obs_var,omitempty"`
	// Quantized opts this model's versions into the int8 fixed-point serving
	// path (see Config.EnableQuantized; a version whose weights the scheme
	// rejects falls back to float serving). The flag applies at build time:
	// versions are immutable once built, so flipping it on a reload affects
	// only versions added after the change — bump a version's id to rebuild
	// it under the new setting (VersionStatus.Quantized always reports what
	// a standing version actually serves).
	Quantized bool `json:"quantized,omitempty"`
	// ActivationMoments selects the model's activation-moment backend
	// default: "auto" (or empty — exact for rectifiers, PWL otherwise),
	// "pwl", or "exact" (a build error for models with tanh/sigmoid layers;
	// see nn.MomentMode). Like Quantized it applies at build time — flipping
	// it on a reload affects versions added after the change.
	ActivationMoments string            `json:"activation_moments,omitempty"`
	Versions          []ManifestVersion `json:"versions"`
	Current           string            `json:"current"`
	Canary            *ManifestCanary   `json:"canary,omitempty"`
	Shadow            string            `json:"shadow,omitempty"`
}

// ManifestVersion names one serialized model file.
type ManifestVersion struct {
	ID   string `json:"id"`
	Path string `json:"path"`
}

// ManifestCanary is the weighted candidate split.
type ManifestCanary struct {
	ID     string  `json:"id"`
	Weight float64 `json:"weight"`
}

// Validate checks internal consistency: unique names and IDs, routes naming
// declared versions, weights in range.
func (man *Manifest) Validate() error {
	names := make(map[string]bool, len(man.Models))
	for _, m := range man.Models {
		if m.Name == "" {
			return fmt.Errorf("model with empty name: %w", ErrManifest)
		}
		if names[m.Name] {
			return fmt.Errorf("duplicate model %q: %w", m.Name, ErrManifest)
		}
		names[m.Name] = true
		if m.ObsVar < 0 {
			return fmt.Errorf("model %q: obs_var %v < 0: %w", m.Name, m.ObsVar, ErrManifest)
		}
		if _, err := nn.ParseMomentMode(m.ActivationMoments); err != nil {
			return fmt.Errorf("model %q: %v: %w", m.Name, err, ErrManifest)
		}
		if len(m.Versions) == 0 {
			return fmt.Errorf("model %q: no versions: %w", m.Name, ErrManifest)
		}
		ids := make(map[string]bool, len(m.Versions))
		for _, v := range m.Versions {
			if v.ID == "" || v.Path == "" {
				return fmt.Errorf("model %q: version with empty id or path: %w", m.Name, ErrManifest)
			}
			if ids[v.ID] {
				return fmt.Errorf("model %q: duplicate version %q: %w", m.Name, v.ID, ErrManifest)
			}
			ids[v.ID] = true
		}
		if !ids[m.Current] {
			return fmt.Errorf("model %q: current %q not among versions: %w", m.Name, m.Current, ErrManifest)
		}
		if m.Canary != nil {
			if !ids[m.Canary.ID] {
				return fmt.Errorf("model %q: canary %q not among versions: %w", m.Name, m.Canary.ID, ErrManifest)
			}
			if !(m.Canary.Weight > 0 && m.Canary.Weight <= 1) {
				return fmt.Errorf("model %q: canary weight %v outside (0, 1]: %w", m.Name, m.Canary.Weight, ErrManifest)
			}
		}
		if m.Shadow != "" && !ids[m.Shadow] {
			return fmt.Errorf("model %q: shadow %q not among versions: %w", m.Name, m.Shadow, ErrManifest)
		}
	}
	if s := man.Sessions; s != nil {
		if s.Model == "" {
			return fmt.Errorf("sessions: empty model: %w", ErrManifest)
		}
		if !names[s.Model] {
			return fmt.Errorf("sessions: model %q not among models: %w", s.Model, ErrManifest)
		}
		if s.Channels < 1 || s.Length < 1 || s.Stride < 1 {
			return fmt.Errorf("sessions: channels=%d length=%d stride=%d (all must be >= 1): %w",
				s.Channels, s.Length, s.Stride, ErrManifest)
		}
		if s.WarmupWindows < 0 {
			return fmt.Errorf("sessions: warmup_windows %d < 0: %w", s.WarmupWindows, ErrManifest)
		}
		if s.DriftThreshold < 0 || s.DriftThreshold > 1 {
			return fmt.Errorf("sessions: drift_threshold %v outside [0, 1]: %w", s.DriftThreshold, ErrManifest)
		}
		if s.EscalateAfter < 0 || s.ReadmitAfter < 0 {
			return fmt.Errorf("sessions: escalate_after %d, readmit_after %d (must be >= 0): %w",
				s.EscalateAfter, s.ReadmitAfter, ErrManifest)
		}
		if _, err := s.ParsedIdleTimeout(); err != nil {
			return err
		}
		if _, err := s.ParsedSnapshotInterval(); err != nil {
			return err
		}
		if s.SnapshotInterval != "" && s.SnapshotPath == "" {
			return fmt.Errorf("sessions: snapshot_interval without snapshot_path: %w", ErrManifest)
		}
	}
	return nil
}

// LoadManifest reads and validates the manifest at path.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: read manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("registry: parse manifest %s: %v: %w", path, err, ErrManifest)
	}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("registry: manifest %s: %w", path, err)
	}
	return &man, nil
}

// Apply reconciles the registry to the manifest: every version file is
// loaded through the hardened nn.Load path and fingerprinted (an unchanged
// fingerprint under an existing ID is a no-op, so repeated applies are
// cheap), routes swap atomically per model, versions and models absent from
// the manifest drain and close in the background. The registry is treated as
// fully manifest-owned: do not mix Apply with programmatic AddVersion calls
// under other model names.
//
// Apply is all-or-nothing per model in ordering only, not transactional
// across models: a load failure leaves earlier models updated and the
// failing model unchanged (its old versions keep serving).
func (r *Registry) Apply(man *Manifest, baseDir string) error {
	if err := man.Validate(); err != nil {
		return err
	}
	inManifest := make(map[string]bool, len(man.Models))
	for _, mm := range man.Models {
		inManifest[mm.Name] = true
		if err := r.applyModel(mm, baseDir); err != nil {
			return err
		}
	}
	// Drop models the manifest no longer declares.
	for _, st := range r.Models() {
		if !inManifest[st.Name] {
			if err := r.RemoveModel(st.Name); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		}
	}
	return nil
}

func (r *Registry) applyModel(mm ManifestModel, baseDir string) error {
	if err := r.SetObsVar(mm.Name, mm.ObsVar); err != nil {
		return err
	}
	if err := r.SetQuantized(mm.Name, mm.Quantized); err != nil {
		return err
	}
	moments, err := nn.ParseMomentMode(mm.ActivationMoments)
	if err != nil {
		// Unreachable after Validate; kept for direct applyModel callers.
		return fmt.Errorf("registry: model %q: %v: %w", mm.Name, err, ErrManifest)
	}
	if err := r.SetActivationMoments(mm.Name, moments); err != nil {
		return err
	}
	declared := make(map[string]bool, len(mm.Versions))
	for _, mv := range mm.Versions {
		declared[mv.ID] = true
		path := mv.Path
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		net, err := nn.LoadFile(path)
		if err != nil {
			return fmt.Errorf("registry: model %q version %q: %w", mm.Name, mv.ID, err)
		}
		if _, err := r.AddVersion(mm.Name, mv.ID, net); err != nil {
			return err
		}
	}
	canaryID, canaryWeight := "", 0.0
	if mm.Canary != nil {
		canaryID, canaryWeight = mm.Canary.ID, mm.Canary.Weight
	}
	if err := r.SetRoutes(mm.Name, mm.Current, canaryID, canaryWeight, mm.Shadow); err != nil {
		return err
	}
	// Remove versions the manifest dropped; the fresh route table cannot
	// name them, so removal never races a routed version.
	st, err := r.Model(mm.Name)
	if err != nil {
		return err
	}
	for _, vs := range st.Versions {
		if !declared[vs.ID] {
			if err := r.RemoveVersion(mm.Name, vs.ID); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		}
	}
	return nil
}

// fileStamp is the change-detection key for one watched file: size + mtime.
// A stamp change triggers a reload; content fingerprints then decide whether
// anything actually swaps, so touch-without-change is a no-op.
type fileStamp struct {
	size    int64
	modTime time.Time
}

func stampOf(fi fs.FileInfo) fileStamp { return fileStamp{size: fi.Size(), modTime: fi.ModTime()} }

// Loader ties a registry to a manifest file on disk: explicit reloads (the
// admin endpoint) and a poll-based watch loop (mtime/size of the manifest
// and every referenced model file).
type Loader struct {
	reg  *Registry
	path string
	dir  string

	// mu serializes reloads: the watch loop and admin endpoint must not
	// interleave two Apply passes.
	mu     sync.Mutex
	stamps map[string]fileStamp
}

// NewLoader builds a loader for the manifest at path. Call Reload(true) once
// to perform the initial load.
func NewLoader(reg *Registry, path string) *Loader {
	return &Loader{
		reg:    reg,
		path:   path,
		dir:    filepath.Dir(path),
		stamps: make(map[string]fileStamp),
	}
}

// Registry returns the loader's registry.
func (l *Loader) Registry() *Registry { return l.reg }

// Reload applies the manifest if anything changed on disk (or always, when
// force is set). It returns whether an Apply ran. Change detection stats the
// manifest and every model file it references; content fingerprints inside
// Apply make spurious triggers harmless.
func (l *Loader) Reload(force bool) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	stamps, err := l.stat()
	if err != nil {
		l.reg.cfg.Metrics.reloaded("error")
		return false, err
	}
	if !force && l.sameStamps(stamps) {
		l.reg.cfg.Metrics.reloaded("unchanged")
		return false, nil
	}
	man, err := LoadManifest(l.path)
	if err != nil {
		l.reg.cfg.Metrics.reloaded("error")
		return false, err
	}
	if err := l.reg.Apply(man, l.dir); err != nil {
		l.reg.cfg.Metrics.reloaded("error")
		return false, err
	}
	// Re-stat after the load so a file rewritten mid-apply is picked up by
	// the next poll instead of being masked by a pre-apply stamp.
	if stamps, err = l.stat(); err == nil {
		l.stamps = stamps
	}
	l.reg.cfg.Metrics.reloaded("ok")
	return true, nil
}

// stat collects stamps for the manifest and every model file it references.
func (l *Loader) stat() (map[string]fileStamp, error) {
	stamps := make(map[string]fileStamp)
	fi, err := os.Stat(l.path)
	if err != nil {
		return nil, fmt.Errorf("registry: stat manifest: %w", err)
	}
	stamps[l.path] = stampOf(fi)
	man, err := LoadManifest(l.path)
	if err != nil {
		return nil, err
	}
	for _, mm := range man.Models {
		for _, mv := range mm.Versions {
			path := mv.Path
			if !filepath.IsAbs(path) {
				path = filepath.Join(l.dir, path)
			}
			fi, err := os.Stat(path)
			if err != nil {
				return nil, fmt.Errorf("registry: stat model file: %w", err)
			}
			stamps[path] = stampOf(fi)
		}
	}
	return stamps, nil
}

func (l *Loader) sameStamps(now map[string]fileStamp) bool {
	if len(now) != len(l.stamps) {
		return false
	}
	for path, s := range now {
		if prev, ok := l.stamps[path]; !ok || prev != s {
			return false
		}
	}
	return true
}

// Watch polls for manifest/model-file changes every interval until ctx ends,
// applying reloads as they appear. Errors are reported through logf (a bad
// manifest must not kill serving — the previous configuration keeps
// running) and retried on the next tick.
func (l *Loader) Watch(ctx context.Context, interval time.Duration, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if changed, err := l.Reload(false); err != nil {
				logf("manifest reload: %v", err)
			} else if changed {
				logf("manifest reloaded")
			}
		}
	}
}
