package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestHotSwapHammer is the swap-correctness contract under load: N goroutines
// predict continuously while a swapper loops route swaps — including
// replace-under-the-same-ID reloads — and every single response must be
// (a) successful (zero requests dropped by swaps; only deliberate
// queue-full/backpressure failures are tolerated, and the queue is sized so
// none occur) and (b) bit-identical (math.Float64bits) to a direct Predict
// on the version identified by the response's fingerprint tag.
func TestHotSwapHammer(t *testing.T) {
	r := New(Config{
		Serve: serve.Config{MaxBatch: 32, QueueDepth: 4096},
	})
	defer closeRegistry(t, r)

	// estByFP maps fingerprint → estimator for post-hoc bit-identity checks.
	// The swapper registers every version here BEFORE it becomes routable.
	var estByFP sync.Map
	addVersion := func(id string, seed int64) *Version {
		v, err := r.AddVersion("m", id, testNet(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		estByFP.Store(v.Fingerprint, v)
		return v
	}
	addVersion("v1", 1)
	addVersion("v2", 2)
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		swaps   = 120
	)
	inputs := make([]tensor.Vector, 16)
	for i := range inputs {
		inputs[i] = tensor.Vector{float64(i) * 0.25, -1 + float64(i)*0.1, float64(i%3) - 1}
	}

	var (
		done      = make(chan struct{})
		requests  atomic.Int64
		queueFull atomic.Int64
		failures  = make(chan string, workers)
	)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				x := inputs[(w+i)%len(inputs)]
				key := fmt.Sprintf("w%d-%d", w, i)
				g, served, err := r.Predict(ctx, "m", key, x)
				if err != nil {
					if errors.Is(err, serve.ErrQueueFull) {
						queueFull.Add(1)
						continue
					}
					fail("worker %d req %d: %v", w, i, err)
					return
				}
				requests.Add(1)
				vAny, ok := estByFP.Load(served.Fingerprint)
				if !ok {
					fail("worker %d: response tagged with unknown fingerprint %s", w, served.Fingerprint)
					return
				}
				want, err := vAny.(*Version).Estimator().Predict(x)
				if err != nil {
					fail("worker %d: direct predict: %v", w, err)
					return
				}
				for d := range want.Mean {
					if math.Float64bits(g.Mean[d]) != math.Float64bits(want.Mean[d]) ||
						math.Float64bits(g.Var[d]) != math.Float64bits(want.Var[d]) {
						fail("worker %d req %d dim %d: served (%x, %x) != direct (%x, %x) on %s",
							w, i, d,
							math.Float64bits(g.Mean[d]), math.Float64bits(g.Var[d]),
							math.Float64bits(want.Mean[d]), math.Float64bits(want.Var[d]),
							served.Version)
						return
					}
				}
			}
		}(w)
	}

	// The swapper alternates three mutation styles: flip current between the
	// two standing versions, hot-replace a version under a constant ID (the
	// manifest-reload shape), and add/route/remove a transient version.
	for s := 0; s < swaps; s++ {
		switch s % 4 {
		case 0:
			if err := r.SetRoutes("m", "v2", "", 0, ""); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := r.SetRoutes("m", "v1", "v2", 0.3, ""); err != nil {
				t.Fatal(err)
			}
		case 2:
			addVersion("hot", int64(100+s)) // replaces prior "hot" content
			if err := r.SetRoutes("m", "hot", "", 0, ""); err != nil {
				t.Fatal(err)
			}
		default:
			if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()

	select {
	case msg := <-failures:
		t.Fatal(msg)
	default:
	}
	if n := requests.Load(); n < int64(workers*swaps) {
		t.Errorf("only %d successful requests across %d swaps — hammer barely ran", n, swaps)
	}
	if q := queueFull.Load(); q != 0 {
		t.Logf("note: %d deliberate queue-full rejections (allowed)", q)
	}
	t.Logf("hammer: %d requests bit-identical across %d swaps", requests.Load(), swaps)
}

// TestHammerDrainsEverything: after the hammer pattern, Close returns with
// no version still draining — the refcount lifecycle leaks nothing.
func TestHammerDrainsEverything(t *testing.T) {
	r := New(Config{Serve: serve.Config{QueueDepth: 1024}})
	if _, err := r.AddVersion("m", "v1", testNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, "v2"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _, err := r.Predict(context.Background(), "m", fmt.Sprint(w, i), tensor.Vector{1, 2, 3})
				if err != nil && !errors.Is(err, serve.ErrQueueFull) && !errors.Is(err, ErrClosed) {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}(w)
	}
	swapTo := []string{"v2", "v1"}
	for i := 0; i < 20; i++ {
		if err := r.SetRoutes("m", swapTo[i%2], "", 0, ""); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatalf("close after hammer: %v", err)
	}
}
