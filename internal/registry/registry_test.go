package registry

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// testNet builds a small distinct network per seed: different seeds give
// different weights, hence different fingerprints and different outputs.
func testNet(t testing.TB, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 3, Hidden: []int{16}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func closeRegistry(t testing.TB, r *Registry) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Errorf("registry close: %v", err)
	}
}

func TestPredictRoutesToCurrent(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	v1, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	x := tensor.Vector{0.3, -1.2, 0.5}
	g, served, err := r.Predict(context.Background(), "m", "req-1", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v1" || served.Route != RouteCurrent || served.Fingerprint != v1.Fingerprint {
		t.Errorf("served = %+v, want v1/current/%s", served, v1.Fingerprint)
	}
	want, err := v1.Estimator().Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if math.Float64bits(g.Mean[i]) != math.Float64bits(want.Mean[i]) ||
			math.Float64bits(g.Var[i]) != math.Float64bits(want.Var[i]) {
			t.Errorf("dim %d: served (%v, %v) != direct (%v, %v)",
				i, g.Mean[i], g.Var[i], want.Mean[i], want.Var[i])
		}
	}
}

func TestPredictErrors(t *testing.T) {
	r := New(Config{})
	ctx := context.Background()
	x := tensor.Vector{0, 0, 0}

	if _, _, err := r.Predict(ctx, "nope", "k", x); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown model: err = %v, want ErrNotFound", err)
	}
	if _, err := r.AddVersion("m", "v1", testNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Registered but not routed: not ready.
	if _, _, err := r.Predict(ctx, "m", "k", x); !errors.Is(err, ErrNotReady) {
		t.Errorf("unrouted model: err = %v, want ErrNotReady", err)
	}
	if err := r.SetRoutes("m", "missing", "", 0, ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetRoutes missing current: err = %v, want ErrNotFound", err)
	}
	if err := r.SetRoutes("m", "v1", "v1", 1.5, ""); !errors.Is(err, ErrRegistry) {
		t.Errorf("SetRoutes bad weight: err = %v, want ErrRegistry", err)
	}

	closeRegistry(t, r)
	if _, _, err := r.Predict(ctx, "m", "k", x); !errors.Is(err, ErrClosed) {
		t.Errorf("closed registry: err = %v, want ErrClosed", err)
	}
	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("AddVersion after close: err = %v, want ErrClosed", err)
	}
}

// TestCanaryDeterministicSplit: the canary split is a pure function of the
// request key — the same key always lands on the same side — and a weighted
// split actually sends traffic both ways.
func TestCanaryDeterministicSplit(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	if _, err := r.AddVersion("m", "v1", testNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "v2", 0.5, ""); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	x := tensor.Vector{0.1, 0.2, 0.3}
	routes := make(map[string]string)
	counts := make(map[string]int)
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			key := string(rune('a'+i%26)) + string(rune('0'+i/26))
			_, served, err := r.Predict(ctx, "m", key, x)
			if err != nil {
				t.Fatal(err)
			}
			if prev, ok := routes[key]; ok && prev != served.Route {
				t.Fatalf("key %q routed %s then %s: split not deterministic", key, prev, served.Route)
			}
			routes[key] = served.Route
			if round == 0 {
				counts[served.Route]++
			}
		}
	}
	if counts[RouteCurrent] == 0 || counts[RouteCanary] == 0 {
		t.Errorf("50%% split sent all 64 keys one way: %v", counts)
	}
}

// TestPredictBatchRoute: batch requests flow through the same routing and
// match direct batched prediction bit-for-bit.
func TestPredictBatchRoute(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	v1, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{{0.5, -1, 0.25}, {2, 0.25, -0.5}, {-3, 1, 0}}
	gs, served, err := r.PredictBatch(context.Background(), "m", "batch-1", xs)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v1" || len(gs) != len(xs) {
		t.Fatalf("served %+v with %d results, want v1 with %d", served, len(gs), len(xs))
	}
	for i, x := range xs {
		want, err := v1.Estimator().Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Mean {
			if math.Float64bits(gs[i].Mean[j]) != math.Float64bits(want.Mean[j]) {
				t.Errorf("row %d dim %d: %v != direct %v", i, j, gs[i].Mean[j], want.Mean[j])
			}
		}
	}
}

// TestShadowRecordsDrift: with a shadow configured, requests are duplicated
// to the candidate in the background and the mean/σ drift lands in the
// metrics without the primary response changing.
func TestShadowRecordsDrift(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	r := New(Config{Metrics: met})
	defer closeRegistry(t, r)
	v1, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.AddVersion("m", "v2", testNet(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, "v2"); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	x := tensor.Vector{0.7, -0.3, 1.1}
	const n = 10
	for i := 0; i < n; i++ {
		g, served, err := r.Predict(ctx, "m", "k", x)
		if err != nil {
			t.Fatal(err)
		}
		if served.Version != "v1" {
			t.Fatalf("shadow must not serve: got version %s", served.Version)
		}
		want, _ := v1.Estimator().Predict(x)
		if g.Mean[0] != want.Mean[0] {
			t.Fatalf("primary response changed under shadowing: %v != %v", g.Mean[0], want.Mean[0])
		}
	}

	// Shadow comparisons are asynchronous; wait for them to complete.
	deadline := time.Now().Add(10 * time.Second)
	for met.shadow.With("m").Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("shadow comparisons: %v of %d completed",
				met.shadow.With("m").Value(), n)
		}
		time.Sleep(time.Millisecond)
	}

	h := met.meanDrift.With("m")
	if got, want := h.Count(), uint64(n*2); got != want { // 2 output dims per request
		t.Errorf("mean drift observations = %d, want %d", got, want)
	}
	// The recorded drift is |v2 mean − v1 mean| for this input.
	g1, _ := v1.Estimator().Predict(x)
	g2, _ := v2.Estimator().Predict(x)
	wantSum := 0.0
	for i := range g1.Mean {
		wantSum += math.Abs(g2.Mean[i] - g1.Mean[i])
	}
	if got, want := h.Sum(), wantSum*n; math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Errorf("mean drift sum = %v, want %v", got, want)
	}
}

// TestSwapInFlightFinishesOnOldVersion: a request admitted before the swap
// is answered by the version that admitted it, and the old version's pool
// closes only after that response is delivered.
func TestSwapInFlightFinishesOnOldVersion(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	v1, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	// Admit a request to v1 by hand (acquire + Do in a goroutine), then swap
	// to v2 while it is in flight.
	if !v1.tryAcquire() {
		t.Fatal("v1 not acquirable")
	}
	x := tensor.Vector{1, 2, 3}
	done := make(chan error, 1)
	go func() {
		_, err := v1.coal.Do(context.Background(), x)
		v1.release()
		done <- err
	}()

	if err := r.SetRoutes("m", "v2", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Errorf("in-flight request failed across swap: %v", err)
	}
	// New requests route to v2.
	_, served, err := r.Predict(context.Background(), "m", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v2" {
		t.Errorf("post-swap request served by %s, want v2", served.Version)
	}
}

// TestReplaceUnderSameID: re-adding an ID with identical content is a no-op;
// different content registers a new object that serves only after the next
// SetRoutes, with the displaced object serving (not erroring) in between.
func TestReplaceUnderSameID(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	net1 := testNet(t, 1)
	v1, err := r.AddVersion("m", "live", net1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.AddVersion("m", "live", net1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if again != v1 {
		t.Error("re-adding identical content must return the existing version")
	}
	if err := r.SetRoutes("m", "live", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	// Replace content under the same ID: until routes swap, the displaced
	// object keeps serving.
	v1b, err := r.AddVersion("m", "live", testNet(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if v1b == v1 || v1b.Fingerprint == v1.Fingerprint {
		t.Fatal("replacement did not produce a new version object")
	}
	x := tensor.Vector{0.4, 0.4, 0.4}
	_, served, err := r.Predict(context.Background(), "m", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Fingerprint != v1.Fingerprint {
		t.Errorf("pre-swap request served by %s, want displaced %s", served.Fingerprint, v1.Fingerprint)
	}

	if err := r.SetRoutes("m", "live", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	_, served, err = r.Predict(context.Background(), "m", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Fingerprint != v1b.Fingerprint {
		t.Errorf("post-swap request served by %s, want replacement %s", served.Fingerprint, v1b.Fingerprint)
	}
	// The displaced object drains: its pool closes once idle.
	select {
	case <-v1.idle:
	case <-time.After(10 * time.Second):
		t.Error("displaced version never became idle")
	}
}

func TestRemoveVersionGuards(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	if _, err := r.AddVersion("m", "v1", testNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, "v2"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveVersion("m", "v1"); !errors.Is(err, ErrRegistry) {
		t.Errorf("removing routed current: err = %v, want ErrRegistry", err)
	}
	if err := r.RemoveVersion("m", "v2"); !errors.Is(err, ErrRegistry) {
		t.Errorf("removing routed shadow: err = %v, want ErrRegistry", err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveVersion("m", "v2"); err != nil {
		t.Errorf("removing unrouted version: %v", err)
	}
	if err := r.RemoveVersion("m", "v2"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: err = %v, want ErrNotFound", err)
	}
}

func TestReadyAndStatus(t *testing.T) {
	r := New(Config{})
	if r.Ready() {
		t.Error("empty registry reports ready")
	}
	if _, err := r.AddVersion("m", "v1", testNet(t, 1)); err != nil {
		t.Fatal(err)
	}
	if r.Ready() {
		t.Error("unrouted model reports ready")
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if !r.Ready() {
		t.Error("routed model reports not ready")
	}

	if _, err := r.AddVersion("m", "v2", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "v2", 0.25, "v2"); err != nil {
		t.Fatal(err)
	}
	sts := r.Models()
	if len(sts) != 1 {
		t.Fatalf("Models() returned %d entries, want 1", len(sts))
	}
	st := sts[0]
	if st.Name != "m" || st.Current != "v1" || st.Canary != "v2" ||
		st.CanaryWeight != 0.25 || st.Shadow != "v2" || len(st.Versions) != 2 {
		t.Errorf("status = %+v", st)
	}
	if st.CurrentFingerprint == "" || st.Versions[0].Fingerprint == "" {
		t.Error("status missing fingerprints")
	}
	if st.Summary == "" || st.Params == 0 {
		t.Errorf("status missing model description: %+v", st)
	}

	closeRegistry(t, r)
	if r.Ready() {
		t.Error("closed registry reports ready")
	}
}

// TestWarmupRejectsBrokenModel: a version whose propagation fails never
// becomes registered (the manifest-load guard).
func TestWarmupRejectsBrokenModel(t *testing.T) {
	// KeepProb of exactly 1 with zero-width... easiest deliberate failure:
	// build a valid net, then corrupt a weight to NaN after construction.
	// nn.Load would reject this; programmatic AddVersion relies on warmup.
	net := testNet(t, 1)
	net.Layers()[0].W.Data[0] = math.NaN()
	r := New(Config{})
	defer closeRegistry(t, r)
	if _, err := r.AddVersion("m", "bad", net); err == nil {
		t.Error("AddVersion accepted a NaN-weight model")
	}
	if _, err := r.Version("m", "bad"); !errors.Is(err, ErrNotFound) {
		t.Errorf("failed version lookup: err = %v, want ErrNotFound", err)
	}
}

func TestHashFractionRange(t *testing.T) {
	keys := []string{"", "a", "request-1", "request-2", "zzzzzzzz"}
	for _, k := range keys {
		f := hashFraction(k)
		if !(f >= 0 && f < 1) {
			t.Errorf("hashFraction(%q) = %v outside [0,1)", k, f)
		}
		if f != hashFraction(k) {
			t.Errorf("hashFraction(%q) not deterministic", k)
		}
	}
}
