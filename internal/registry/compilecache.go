package registry

import (
	"fmt"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// defaultCompileMaxBatch mirrors serve.Config.MaxBatch's default: the
// compiled program must cover every batch the version's coalescer can flush,
// so the two defaults are the same number.
const defaultCompileMaxBatch = 64

// compileKey identifies one compiled program. Fingerprint covers the weights,
// dimensions, activations, keep probabilities, and per-layer moment modes;
// maxBatch fixes the unrolled panel sweep and scratch sizing; the PWL piece
// counts cover the activation knots baked into the fused closures; moments is
// the model-level activation-moment default (SetActivationMoments / the
// manifest's "activation_moments"), which changes how MomentsAuto layers
// resolve and therefore the program's arithmetic without touching the
// fingerprint. Two versions agreeing on all of these produce bit-identical
// programs, so they can share one.
type compileKey struct {
	fingerprint   string
	maxBatch      int
	tanhPieces    int
	sigmoidPieces int
	moments       nn.MomentMode
}

// compileEntry is one refcounted cache slot. ready closes when the build
// finishes (prog or err set); refs counts the versions holding the program
// plus any acquires still waiting on ready.
type compileEntry struct {
	refs  int
	ready chan struct{}
	prog  *compile.Program
	err   error
}

// compileCache shares compiled programs across versions with identical
// networks — the common shape of a hot reload, where a manifest re-add or a
// canary of the same weights must not pay a second compile. Eviction is pure
// refcounting: the last release of a key drops the entry, and retired
// versions release on retire (in-flight requests are unaffected — the
// propagator itself keeps the program alive until it is collected).
type compileCache struct {
	mu      sync.Mutex
	entries map[compileKey]*compileEntry
}

func newCompileCache() *compileCache {
	return &compileCache{entries: make(map[compileKey]*compileEntry)}
}

// acquire returns the compiled program for key, building it via build on a
// miss. Concurrent acquires of the same key share one build: the first caller
// compiles, the rest wait on ready. The returned release func drops this
// holder's reference (call exactly once, when the version retires); hit
// reports whether the program came from cache. On error the reference is
// already dropped and release is nil.
func (c *compileCache) acquire(key compileKey, build func() (*compile.Program, error)) (prog *compile.Program, release func(), hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.release(key)
			return nil, nil, false, e.err
		}
		return e.prog, func() { c.release(key) }, true, nil
	}
	e = &compileEntry{refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.prog, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.release(key)
		return nil, nil, false, e.err
	}
	return e.prog, func() { c.release(key) }, false, nil
}

// release drops one reference on key, deleting the entry at zero.
func (c *compileCache) release(key compileKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(c.entries, key)
	}
}

// size reports the number of cached programs (for tests and status).
func (c *compileCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// compileFor compiles (or fetches from cache) the program for ap's network
// and installs it on ap's propagator. The call runs inside buildVersion —
// before the version is registered or routable, off the serving path, so a
// hot reload compiles while the old version keeps serving. The program is
// warmed against this version's own propagator even on a cache hit: warming
// is the bit-identity self-check, and routability is gated on it passing.
// Returns the cache-release func for the version to call on retire.
func (r *Registry) compileFor(id string, ap *core.ApDeepSense, fp string, moments nn.MomentMode) (func(), error) {
	maxBatch := r.cfg.Serve.MaxBatch
	if maxBatch == 0 {
		maxBatch = defaultCompileMaxBatch
	}
	key := compileKey{
		fingerprint:   fp,
		maxBatch:      maxBatch,
		tanhPieces:    r.cfg.Options.TanhPieces,
		sigmoidPieces: r.cfg.Options.SigmoidPieces,
		moments:       moments,
	}
	prop := ap.Propagator()
	prog, release, hit, err := r.compiles.acquire(key, func() (*compile.Program, error) {
		pg, err := compile.Compile(prop, maxBatch)
		if err != nil {
			return nil, err
		}
		if err := pg.Warm(prop); err != nil {
			return nil, err
		}
		return pg, nil
	})
	if err != nil {
		r.cfg.Metrics.compiled("error")
		return nil, fmt.Errorf("registry: version %s compile: %w", id, err)
	}
	if hit {
		// A shared program was warmed against the propagator it was built
		// for; re-warm against this one so every version's routability rests
		// on its own bit-identity check.
		if err := prog.Warm(prop); err != nil {
			release()
			r.cfg.Metrics.compiled("error")
			return nil, fmt.Errorf("registry: version %s compile (cached): %w", id, err)
		}
		r.cfg.Metrics.compiled("cache_hit")
	} else {
		r.cfg.Metrics.compiled("ok")
	}
	prop.SetCompiled(prog)
	return release, nil
}
