package registry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/serve"
)

// drainTimeout bounds how long a retired version's background drain waits for
// its coalescer to flush the stragglers. Requests admitted to a version are
// answered by that version, so the drain only ever waits on work that is
// already in flight; the bound exists to keep a wedged flush function from
// leaking the goroutine forever.
const drainTimeout = 30 * time.Second

// Version is one immutable loaded model version: the network, its estimator
// (propagator), its own serving pool (request coalescer), and the content
// fingerprint the serving API reports. Versions are reference-counted:
// requests hold a reference for the duration of their coalescer call, the
// registry holds one while the version is registered, and the coalescer is
// closed in the background only after the last reference drops — which is
// what makes hot-swap drop zero requests.
type Version struct {
	// ID is the manifest-assigned version identifier, e.g. "v1".
	ID string
	// Fingerprint is nn.Network.Fingerprint() of the loaded network: the
	// content hash change detection and response tagging use.
	Fingerprint string

	net  *nn.Network
	est  core.Estimator
	coal *serve.PredictCoalescer

	// refs counts holders: 1 for the registry while registered, +1 per
	// admitted request. retire drops the registry's reference; release of the
	// last reference closes idle exactly once.
	refs atomic.Int64
	// retired flips once when the registry drops the version; tryAcquire
	// refuses retired versions so routing races resolve by re-reading the
	// route snapshot instead of piling onto a draining pool.
	retired atomic.Bool
	// idle is closed when refs reaches zero; the background drain waits on it
	// before closing the coalescer.
	idle     chan struct{}
	idleOnce sync.Once

	// releaseCompiled, when non-nil, drops this version's reference on the
	// registry's compiled-program cache. Called exactly once, at retire: the
	// cache entry may be evicted then, but in-flight requests are unaffected —
	// the propagator itself keeps its installed program reachable for as long
	// as anything can run on it.
	releaseCompiled func()
	// releaseQuantized is the same for the quantized-program cache.
	releaseQuantized func()
}

func newVersion(id string, net *nn.Network, est core.Estimator, coal *serve.PredictCoalescer) *Version {
	v := &Version{
		ID:          id,
		Fingerprint: net.Fingerprint(),
		net:         net,
		est:         est,
		coal:        coal,
		idle:        make(chan struct{}),
	}
	v.refs.Store(1)
	return v
}

// Network returns the version's loaded network (read-only).
func (v *Version) Network() *nn.Network { return v.net }

// Estimator returns the version's estimator. It stays usable after the
// version drains (the coalescer closes, the propagator does not), which is
// what lets tests compare served responses against direct propagation.
func (v *Version) Estimator() core.Estimator { return v.est }

// QueueDepth reports how many requests wait in this version's pool.
func (v *Version) QueueDepth() int { return v.coal.Depth() }

// Quantized reports whether this version serves on the fixed-point path
// (a quantized program is installed on its propagator).
func (v *Version) Quantized() bool {
	ap, ok := v.est.(*core.ApDeepSense)
	return ok && ap.Propagator().Quantized() != nil
}

// tryAcquire takes a request reference. It fails when the version has been
// retired or its last reference already dropped; the caller must then re-read
// the route snapshot, which no longer lists this version.
func (v *Version) tryAcquire() bool {
	if v.retired.Load() {
		return false
	}
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference, closing idle on the last.
func (v *Version) release() {
	if v.refs.Add(-1) == 0 {
		v.idleOnce.Do(func() { close(v.idle) })
	}
}

// retire drops the registry's reference and schedules the coalescer close for
// when the last in-flight request releases. Safe to call more than once.
// onDrained, if non-nil, runs after the coalescer has fully drained.
func (v *Version) retire(onDrained func()) {
	if !v.retired.CompareAndSwap(false, true) {
		return
	}
	if v.releaseCompiled != nil {
		v.releaseCompiled()
	}
	if v.releaseQuantized != nil {
		v.releaseQuantized()
	}
	go func() {
		<-v.idle
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		// Close is idempotent and concurrent-safe; by the time idle closes,
		// no request can re-acquire this version, so nothing new enqueues.
		_ = v.coal.Close(ctx)
		if onDrained != nil {
			onDrained()
		}
	}()
	v.release()
}
