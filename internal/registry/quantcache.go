package registry

import (
	"fmt"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/qprop"
)

// quantKey identifies one quantized program. Fingerprint covers the weights,
// dimensions, activations, and keep probabilities; the PWL piece counts cover
// the activation knots the dequantized moments feed into. There is no
// maxBatch component — quantized programs are batch-size-agnostic (per-row
// scratch), so any batch the coalescer flushes is covered. There is also no
// moment-mode component: the fixed-point path always serves the PWL forms
// (its accuracy contract is the oracle's quantization budget, which dwarfs
// the exact-vs-PWL conditioning difference), so versions differing only in
// activation_moments share one quantized program.
type quantKey struct {
	fingerprint   string
	tanhPieces    int
	sigmoidPieces int
}

// quantEntry is one refcounted cache slot. ready closes when the build
// finishes (prog or err set); refs counts the versions holding the program
// plus any acquires still waiting on ready.
type quantEntry struct {
	refs  int
	ready chan struct{}
	prog  *qprop.Propagator
	err   error
}

// quantCache shares quantized programs across versions with identical
// networks, exactly like compileCache shares compiled ones: a manifest re-add
// or a canary of the same weights must not pay a second quantization pass.
// Eviction is pure refcounting — the last release of a key drops the entry.
type quantCache struct {
	mu      sync.Mutex
	entries map[quantKey]*quantEntry
}

func newQuantCache() *quantCache {
	return &quantCache{entries: make(map[quantKey]*quantEntry)}
}

// acquire returns the quantized program for key, building it via build on a
// miss. Concurrent acquires of the same key share one build. The returned
// release func drops this holder's reference (call exactly once, when the
// version retires); hit reports whether the program came from cache. On error
// the reference is already dropped and release is nil.
func (c *quantCache) acquire(key quantKey, build func() (*qprop.Propagator, error)) (prog *qprop.Propagator, release func(), hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			c.release(key)
			return nil, nil, false, e.err
		}
		return e.prog, func() { c.release(key) }, true, nil
	}
	e = &quantEntry{refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.prog, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.release(key)
		return nil, nil, false, e.err
	}
	return e.prog, func() { c.release(key) }, false, nil
}

// release drops one reference on key, deleting the entry at zero.
func (c *quantCache) release(key quantKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(c.entries, key)
	}
}

// size reports the number of cached programs (for tests and status).
func (c *quantCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// buildQuantized is the quantized-build step behind quantFor, a package
// variable so fault-injection tests can force quantization failures and
// exercise the float fallback without constructing a genuinely unquantizable
// network.
var buildQuantized = func(net *nn.Network, opts core.Options) (*qprop.Propagator, error) {
	qp, _, err := qprop.Build(net, opts)
	return qp, err
}

// quantFor builds (or fetches from cache) the quantized program for ap's
// network and installs it on ap's propagator. Like compileFor, it runs inside
// buildVersion — before the version is registered or routable — so a hot
// reload quantizes while the old version keeps serving. qprop.Build smoke-
// checks the program against an all-ones input at build time, and the
// version's own warmup inference then exercises the installed program end to
// end (dispatch routes Predict through it), so routability is still gated on
// the quantized path actually producing a valid response. Returns the
// cache-release func for the version to call on retire.
//
// A quantize failure is NOT a load failure: the caller falls back to the
// float (and, unless disabled, compiled) path. Oversized weights that
// overflow the fixed-point scheme degrade to slower serving, never to an
// unservable model.
func (r *Registry) quantFor(id string, ap *core.ApDeepSense, fp string) (func(), error) {
	key := quantKey{
		fingerprint:   fp,
		tanhPieces:    r.cfg.Options.TanhPieces,
		sigmoidPieces: r.cfg.Options.SigmoidPieces,
	}
	prop := ap.Propagator()
	prog, release, hit, err := r.quants.acquire(key, func() (*qprop.Propagator, error) {
		return buildQuantized(prop.Network(), r.cfg.Options)
	})
	if err != nil {
		return nil, fmt.Errorf("registry: version %s quantize: %w", id, err)
	}
	if hit {
		r.cfg.Metrics.quantizedBuild("cache_hit")
	} else {
		r.cfg.Metrics.quantizedBuild("ok")
	}
	prop.SetQuantized(prog)
	return release, nil
}
