// Package registry is the multi-model serving layer above internal/serve: a
// concurrency-safe, versioned model store and router in the mold of a model
// server's model repository (TF-Serving's servable manager, Triton's model
// repository). Each model name maps to a set of loaded Versions — every
// version owning its network, propagator, and its own request-coalescer pool
// — plus an atomically swappable route table selecting which version serves.
//
// The swap semantics are snapshot-based: routing state lives behind an
// atomic.Pointer, requests resolve their version by loading the snapshot and
// taking a reference, and a swap installs a new snapshot without touching
// requests admitted under the old one. In-flight requests finish on the
// version that admitted them; the old version drains and closes its pool in
// the background once its last reference drops. No request is ever dropped
// by a swap (proven by the hammer test), and every response is bit-identical
// to direct propagation on the version that served it.
//
// Traffic policy per model: a required current version, an optional canary
// (weighted split with deterministic per-request key hashing, so the same
// request key always lands on the same side), and an optional shadow (the
// request is duplicated to a candidate version from a bounded background
// pool, its result discarded, and the mean/σ drift against the primary
// response recorded as histograms — RDeepSense-style quality guardrails for
// a version before it takes traffic).
//
// Models load from a JSON manifest (see manifest.go) through the hardened
// nn.Load path, are fingerprinted (nn.Network.Fingerprint), and run a warmup
// inference before becoming routable.
package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/hashkey"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

var (
	// ErrNotFound is returned for requests naming an unknown model or version.
	ErrNotFound = errors.New("registry: not found")
	// ErrNotReady is returned while a model has no routable current version.
	ErrNotReady = errors.New("registry: no routable version")
	// ErrClosed is returned after Close has begun.
	ErrClosed = errors.New("registry: closed")
	// ErrRegistry is returned (wrapped) for invalid registrations and routes.
	ErrRegistry = errors.New("registry: invalid")
)

// Routes a request can be served on, reported in Served.Route.
const (
	// RouteCurrent is the model's primary version.
	RouteCurrent = "current"
	// RouteCanary is the weighted candidate split.
	RouteCanary = "canary"
)

// shadowJobTimeout bounds one background shadow comparison.
const shadowJobTimeout = 5 * time.Second

// Config tunes a Registry. The zero value is usable: default serve pools, no
// metrics, warmup on.
type Config struct {
	// Serve is the per-version coalescer pool template. Its Metrics field may
	// be shared across versions (serve.Metrics is concurrency-safe).
	Serve serve.Config
	// Options configures each version's propagator (PWL piece counts).
	Options core.Options
	// Metrics, when non-nil, receives registry observations (see NewMetrics).
	Metrics *Metrics
	// Hooks, when non-nil, is attached to every version's propagator (layer
	// timing, batch sizes, scratch reuse — see core.Hooks). Shared across
	// versions; core hooks are concurrency-safe by contract.
	Hooks *core.Hooks
	// SkipWarmup disables the warmup inference run before a version becomes
	// routable. Tests use it to register deliberately slow estimators.
	SkipWarmup bool
	// DisableCompile turns off load-time specialization: versions then serve
	// on the interpreted propagator only. By default every version built from
	// a network (not an injected estimator) gets a compiled program — built
	// or fetched from the fingerprint-keyed cache, warmed against the
	// version's own propagator, and installed before the version is
	// registered, so a version is routable only after its compiled propagator
	// has passed its bit-identity self-check.
	DisableCompile bool
	// EnableQuantized turns on the int8 fixed-point serving path for every
	// version built from a network: the weights are quantized at load time
	// (internal/qprop) and the quantized program — built or fetched from the
	// fingerprint-keyed cache — takes dispatch priority over the compiled and
	// interpreted paths. Quantization is opt-in (unlike compilation, which is
	// opt-out) because it is an approximation, not a bit-identical
	// specialization: its accuracy contract is the oracle's quantization
	// error budget, not Float64bits equality with the float path. A version
	// whose weights the fixed-point scheme rejects falls back to float
	// serving (counted as apds_registry_quantized_total{result="fallback"});
	// quantization never fails a load. Per-model opt-in is available through
	// SetQuantized or the manifest's "quantized" flag.
	EnableQuantized bool
	// ShadowBuffer bounds pending shadow comparisons; beyond it duplicates
	// are dropped (and counted) rather than ever blocking the primary path.
	// Defaults to 256.
	ShadowBuffer int
	// ShadowWorkers is the number of goroutines running shadow comparisons.
	// Defaults to 2.
	ShadowWorkers int
}

// Served identifies which version answered a request: the response tag the
// server exposes and the hammer test checks bit-identity against.
type Served struct {
	Model       string `json:"model"`
	Version     string `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Route       string `json:"route"`
}

// routeTable is one immutable routing snapshot. Swaps replace the whole
// table; readers load it once per request, so a request observes a single
// consistent policy.
type routeTable struct {
	current      *Version
	canary       *Version
	canaryWeight float64
	shadow       *Version
}

// pick selects the serving version for a request key: the canary when the
// key's hash falls inside the weighted split, the current version otherwise.
// Hashing (not sampling) makes the split deterministic per key, so retries
// and A/B attribution are stable.
func (rt *routeTable) pick(key string) (*Version, string) {
	if rt.canary != nil && rt.canaryWeight > 0 && hashFraction(key) < rt.canaryWeight {
		return rt.canary, RouteCanary
	}
	return rt.current, RouteCurrent
}

// hashFraction maps a request key to [0, 1): the avalanche-finished request
// key hash shared with the cluster tier's consistent-hash ring
// (internal/hashkey), so canary splits and shard placement agree on what a
// key hashes to. Bit-identical to the FNV-1a + fmix64 construction this
// package originally carried inline (pinned by hashkey's stdlib-FNV test).
func hashFraction(key string) float64 { return hashkey.Fraction(key) }

// model is one named entry: its registered versions and the atomic route
// snapshot. mu serializes mutations (add/remove/swap); the request path is
// lock-free on the model (snapshot load + version refcount).
type model struct {
	name   string
	obsVar float64
	// quantized opts versions of this model into the fixed-point serving
	// path (applies to versions added from when it is set, like obsVar).
	quantized bool
	// moments is the model-level activation-moment backend default applied
	// to versions added from when it is set (SetActivationMoments / the
	// manifest's "activation_moments"). MomentsAuto defers to the
	// registry-wide Config.Options.ActivationMoments.
	moments nn.MomentMode

	mu       sync.Mutex
	versions map[string]*Version
	order    []string // registration order, for stable listings
	// displaced holds version objects replaced under their ID by a reload
	// but possibly still named by the live route table. They keep serving
	// until the next SetRoutes installs a table without them — retiring a
	// displaced-but-routed version any earlier would open a window where the
	// table points only at unservable versions.
	displaced []*Version

	route atomic.Pointer[routeTable]
}

// Registry is the multi-model store and router. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu     sync.RWMutex
	models map[string]*model
	closed bool

	// compiles shares load-time compiled programs across versions with
	// identical networks (see compilecache.go).
	compiles *compileCache
	// quants shares load-time quantized programs the same way (see
	// quantcache.go).
	quants *quantCache

	shadowJobs chan shadowJob
	shadowWG   sync.WaitGroup
	// drains counts versions registered but not yet fully drained; Close
	// waits on it so a shut-down registry has no goroutines left behind.
	drains sync.WaitGroup
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	if cfg.ShadowBuffer == 0 {
		cfg.ShadowBuffer = 256
	}
	if cfg.ShadowWorkers == 0 {
		cfg.ShadowWorkers = 2
	}
	r := &Registry{
		cfg:        cfg,
		models:     make(map[string]*model),
		compiles:   newCompileCache(),
		quants:     newQuantCache(),
		shadowJobs: make(chan shadowJob, cfg.ShadowBuffer),
	}
	for i := 0; i < cfg.ShadowWorkers; i++ {
		r.shadowWG.Add(1)
		go r.shadowWorker()
	}
	return r
}

// lookup returns the model entry, distinguishing closed from unknown.
func (r *Registry) lookup(name string) (*model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("model %q: %w", name, ErrNotFound)
	}
	return m, nil
}

// ensureModel returns the entry for name, creating it on first use; obsVar
// applies to versions added from then on.
func (r *Registry) ensureModel(name string, obsVar float64) (*model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		m = &model{name: name, versions: make(map[string]*Version)}
		r.models[name] = m
	}
	m.mu.Lock()
	m.obsVar = obsVar
	m.mu.Unlock()
	return m, nil
}

// AddVersion loads net as version id of the named model (created on first
// use): it builds the propagator and a dedicated coalescer pool, runs a
// warmup inference (unless disabled), and registers the version — not yet
// routable until a SetRoutes names it. Re-adding an id whose fingerprint is
// unchanged is a no-op returning the existing version; a changed fingerprint
// replaces the old version object (the old one drains once unrouted).
func (r *Registry) AddVersion(modelName, id string, net *nn.Network) (*Version, error) {
	return r.addVersion(modelName, id, net, nil)
}

// AddVersionEstimator is AddVersion with a caller-supplied estimator instead
// of one built from the network: the injection point for custom estimators
// (and fault-injection test doubles). The fingerprint still comes from net,
// so content-based change detection works unchanged; warmup (unless
// disabled) runs against the supplied estimator.
func (r *Registry) AddVersionEstimator(modelName, id string, net *nn.Network, est core.Estimator) (*Version, error) {
	if est == nil {
		return nil, fmt.Errorf("nil estimator: %w", ErrRegistry)
	}
	return r.addVersion(modelName, id, net, est)
}

func (r *Registry) addVersion(modelName, id string, net *nn.Network, est core.Estimator) (*Version, error) {
	if modelName == "" || id == "" {
		return nil, fmt.Errorf("empty model or version name: %w", ErrRegistry)
	}
	m, err := r.ensureModelKeepObsVar(modelName)
	if err != nil {
		return nil, err
	}

	fp := net.Fingerprint()
	m.mu.Lock()
	if old, ok := m.versions[id]; ok && old.Fingerprint == fp {
		m.mu.Unlock()
		return old, nil
	}
	obsVar := m.obsVar
	quantized := m.quantized || r.cfg.EnableQuantized
	moments := m.moments
	if moments == nn.MomentsAuto {
		moments = r.cfg.Options.ActivationMoments
	}
	m.mu.Unlock()

	// Build and warm outside the model lock: loading big models must not
	// stall the serving path's mutations.
	v, err := r.buildVersion(id, net, obsVar, quantized, moments, est)
	if err != nil {
		return nil, err
	}

	// Registration holds the registry read-lock so it cannot interleave with
	// Close: either the version lands before Close snapshots the models (and
	// Close drains it), or Close already began and the version is discarded.
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		v.retire(nil)
		return nil, ErrClosed
	}
	m.mu.Lock()
	old := m.versions[id]
	m.versions[id] = v
	if old == nil {
		m.order = append(m.order, id)
	} else {
		// The displaced object may still be routed; it keeps serving until
		// the next SetRoutes swaps in a table that no longer names it.
		m.displaced = append(m.displaced, old)
	}
	n := len(m.versions)
	m.mu.Unlock()
	r.drains.Add(1)
	r.mu.RUnlock()
	r.cfg.Metrics.setVersions(modelName, n)
	return v, nil
}

// ensureModelKeepObsVar is ensureModel preserving an existing model's obsVar.
func (r *Registry) ensureModelKeepObsVar(name string) (*model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		m = &model{name: name, versions: make(map[string]*Version)}
		r.models[name] = m
	}
	return m, nil
}

// SetObsVar sets the observation-noise variance applied to versions of the
// named model added from now on (existing versions keep the estimator they
// were built with).
func (r *Registry) SetObsVar(modelName string, obsVar float64) error {
	_, err := r.ensureModel(modelName, obsVar)
	return err
}

// SetQuantized opts versions of the named model added from now on into (or
// out of) the fixed-point serving path, independent of the registry-wide
// Config.EnableQuantized default. Existing versions keep the path they were
// built with; re-adding a version under the same ID rebuilds it on the new
// setting only if its fingerprint changed.
func (r *Registry) SetQuantized(modelName string, enabled bool) error {
	m, err := r.ensureModelKeepObsVar(modelName)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.quantized = enabled
	m.mu.Unlock()
	return nil
}

// SetActivationMoments sets the activation-moment backend default (see
// nn.MomentMode) for versions of the named model added from now on:
// layers whose own Moments field is MomentsAuto resolve against it.
// Like obsVar and quantized, existing versions keep the backend they were
// built with. MomentsExact on a model containing tanh/sigmoid layers
// surfaces as an AddVersion build error.
func (r *Registry) SetActivationMoments(modelName string, mode nn.MomentMode) error {
	if !mode.Valid() {
		return fmt.Errorf("invalid moment mode %d: %w", int(mode), ErrRegistry)
	}
	m, err := r.ensureModelKeepObsVar(modelName)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.moments = mode
	m.mu.Unlock()
	return nil
}

// buildVersion assembles estimator + pool, specializes the propagator
// (quantized and/or compiled program), and runs the warmup inference.
// Everything here happens before registration — off the serving path — so a
// hot reload specializes and warms while the displaced version keeps serving.
func (r *Registry) buildVersion(id string, net *nn.Network, obsVar float64, quantized bool, moments nn.MomentMode, est core.Estimator) (*Version, error) {
	var releaseCompiled, releaseQuantized func()
	if est == nil {
		opts := r.cfg.Options
		opts.ActivationMoments = moments
		ap, err := core.NewApDeepSense(net, opts, obsVar)
		if err != nil {
			return nil, fmt.Errorf("registry: version %s: %w", id, err)
		}
		// Specialize before installing hooks: build-time self-checks are not
		// serving traffic, and must not inflate batch-size or layer-timing
		// metrics fed by the hooks.
		if quantized {
			releaseQuantized, err = r.quantFor(id, ap, net.Fingerprint())
			if err != nil {
				// Fall back to float serving: oversized weights that overflow
				// the fixed-point scheme degrade to the slower path, they
				// never fail the load.
				r.cfg.Metrics.quantizedBuild("fallback")
				releaseQuantized = nil
			}
		}
		// A quantized program takes dispatch priority on every entry point,
		// so compiling underneath it would be dead weight; compile only when
		// the version actually serves on the float path.
		if releaseQuantized == nil && !r.cfg.DisableCompile {
			releaseCompiled, err = r.compileFor(id, ap, net.Fingerprint(), moments)
			if err != nil {
				return nil, err
			}
		}
		if r.cfg.Hooks != nil {
			ap.Propagator().SetHooks(r.cfg.Hooks)
		}
		est = ap
	}
	if !r.cfg.SkipWarmup {
		// One propagation over an all-ones input proves the version can serve
		// (catching inconsistent weights the load path let through) and
		// primes the propagator's tables before traffic routes here. The
		// input is ones, not zeros: the blocked kernels skip zero scalars, so
		// a zero warmup would never touch (and never expose) a poisoned
		// weight. With a quantized program installed, dispatch routes this
		// through the fixed-point path, so routability is gated on the
		// program the version will actually serve on.
		ones := make(tensor.Vector, net.InputDim())
		for i := range ones {
			ones[i] = 1
		}
		g, err := est.Predict(ones)
		if err != nil {
			return nil, failBuild(fmt.Errorf("registry: version %s warmup: %w", id, err), releaseCompiled, releaseQuantized)
		}
		if err := g.Validate(); err != nil {
			return nil, failBuild(fmt.Errorf("registry: version %s warmup output: %w", id, err), releaseCompiled, releaseQuantized)
		}
	}
	coal, err := serve.NewPredict(est, r.cfg.Serve)
	if err != nil {
		return nil, failBuild(fmt.Errorf("registry: version %s pool: %w", id, err), releaseCompiled, releaseQuantized)
	}
	v := newVersion(id, net, est, coal)
	v.releaseCompiled = releaseCompiled
	v.releaseQuantized = releaseQuantized
	return v, nil
}

// failBuild releases the program-cache references a failed build would
// otherwise leak, then passes the error through.
func failBuild(err error, releases ...func()) error {
	for _, release := range releases {
		if release != nil {
			release()
		}
	}
	return err
}

// retireVersion retires v and updates the drain accounting.
func (r *Registry) retireVersion(modelName string, v *Version) {
	v.retire(func() { r.drains.Done() })
}

// SetRoutes atomically installs the model's traffic policy: current must
// name a registered version; canary (with weight in (0, 1]) and shadow are
// optional (""). The swap is one pointer store — requests admitted before it
// finish on their version, requests after it route by the new table.
func (r *Registry) SetRoutes(modelName, current, canary string, canaryWeight float64, shadow string) error {
	m, err := r.lookup(modelName)
	if err != nil {
		return err
	}
	m.mu.Lock()
	rt := &routeTable{}
	rt.current = m.versions[current]
	if rt.current == nil {
		m.mu.Unlock()
		return fmt.Errorf("model %q: current version %q: %w", modelName, current, ErrNotFound)
	}
	if canary != "" {
		if !(canaryWeight > 0 && canaryWeight <= 1) {
			m.mu.Unlock()
			return fmt.Errorf("model %q: canary weight %v outside (0, 1]: %w", modelName, canaryWeight, ErrRegistry)
		}
		rt.canary = m.versions[canary]
		if rt.canary == nil {
			m.mu.Unlock()
			return fmt.Errorf("model %q: canary version %q: %w", modelName, canary, ErrNotFound)
		}
		rt.canaryWeight = canaryWeight
	}
	if shadow != "" {
		rt.shadow = m.versions[shadow]
		if rt.shadow == nil {
			m.mu.Unlock()
			return fmt.Errorf("model %q: shadow version %q: %w", modelName, shadow, ErrNotFound)
		}
	}
	m.route.Store(rt)
	// Route IDs resolved against m.versions, so the new table can only name
	// live objects; every displaced object is now unreachable and drains.
	displaced := m.displaced
	m.displaced = nil
	m.mu.Unlock()
	for _, v := range displaced {
		r.retireVersion(modelName, v)
	}
	r.cfg.Metrics.swapped(modelName)
	return nil
}

// RemoveVersion unregisters version id of the model and retires it (drain in
// the background). It refuses to remove a version the route table still
// names.
func (r *Registry) RemoveVersion(modelName, id string) error {
	m, err := r.lookup(modelName)
	if err != nil {
		return err
	}
	m.mu.Lock()
	v, ok := m.versions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("model %q: version %q: %w", modelName, id, ErrNotFound)
	}
	if rt := m.route.Load(); rt != nil && (rt.current == v || rt.canary == v || rt.shadow == v) {
		m.mu.Unlock()
		return fmt.Errorf("model %q: version %q is routed: %w", modelName, id, ErrRegistry)
	}
	delete(m.versions, id)
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	n := len(m.versions)
	m.mu.Unlock()
	r.cfg.Metrics.setVersions(modelName, n)
	r.retireVersion(modelName, v)
	return nil
}

// RemoveModel unroutes and retires every version of the model and deletes
// the entry.
func (r *Registry) RemoveModel(modelName string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	m, ok := r.models[modelName]
	if ok {
		delete(r.models, modelName)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("model %q: %w", modelName, ErrNotFound)
	}
	m.mu.Lock()
	m.route.Store(nil)
	vs := make([]*Version, 0, len(m.versions)+len(m.displaced))
	for _, v := range m.versions {
		vs = append(vs, v)
	}
	vs = append(vs, m.displaced...)
	m.versions = make(map[string]*Version)
	m.order = nil
	m.displaced = nil
	m.mu.Unlock()
	r.cfg.Metrics.setVersions(modelName, 0)
	for _, v := range vs {
		r.retireVersion(modelName, v)
	}
	return nil
}

// maxRouteRetries bounds how many stale-snapshot races one request will
// chase. A retry only happens when a swap retired the picked version between
// the snapshot load and admission — consecutive losses require back-to-back
// swaps inside that microsecond window, so 8 is effectively unreachable.
const maxRouteRetries = 8

// Predict routes one request: picks current or canary by hashing key, admits
// it to that version's pool, and (if a shadow is configured) duplicates the
// request to the shadow version in the background. The returned Served tag
// identifies exactly which version produced the response; the result is
// bit-identical to that version's Estimator().Predict.
func (r *Registry) Predict(ctx context.Context, modelName, key string, x tensor.Vector) (core.GaussianVec, Served, error) {
	m, err := r.lookup(modelName)
	if err != nil {
		return core.GaussianVec{}, Served{}, err
	}
	for range [maxRouteRetries]struct{}{} {
		rt := m.route.Load()
		if rt == nil {
			return core.GaussianVec{}, Served{}, fmt.Errorf("model %q: %w", modelName, ErrNotReady)
		}
		v, route := rt.pick(key)
		if !v.tryAcquire() {
			continue // lost a swap race; reload the fresh snapshot
		}
		g, err := v.coal.Do(ctx, x)
		if err == nil && rt.shadow != nil && rt.shadow != v {
			r.submitShadow(m, rt.shadow, x, g)
		}
		served := Served{Model: modelName, Version: v.ID, Fingerprint: v.Fingerprint, Route: route}
		v.release()
		if errors.Is(err, serve.ErrClosed) {
			continue // the version drained between acquire and admission
		}
		if err == nil {
			r.cfg.Metrics.served(modelName, route)
		}
		return g, served, err
	}
	return core.GaussianVec{}, Served{}, fmt.Errorf("model %q: route retries exhausted: %w", modelName, ErrNotReady)
}

// PredictBatch routes a multi-row request the same way: all rows are served
// by one version (the one the key hashes to), admitted all-or-nothing into
// its pool.
func (r *Registry) PredictBatch(ctx context.Context, modelName, key string, xs []tensor.Vector) ([]core.GaussianVec, Served, error) {
	m, err := r.lookup(modelName)
	if err != nil {
		return nil, Served{}, err
	}
	for range [maxRouteRetries]struct{}{} {
		rt := m.route.Load()
		if rt == nil {
			return nil, Served{}, fmt.Errorf("model %q: %w", modelName, ErrNotReady)
		}
		v, route := rt.pick(key)
		if !v.tryAcquire() {
			continue
		}
		gs, err := v.coal.DoBatch(ctx, xs)
		if err == nil && rt.shadow != nil && rt.shadow != v {
			for i, x := range xs {
				r.submitShadow(m, rt.shadow, x, gs[i])
			}
		}
		served := Served{Model: modelName, Version: v.ID, Fingerprint: v.Fingerprint, Route: route}
		v.release()
		if errors.Is(err, serve.ErrClosed) {
			continue
		}
		if err == nil {
			r.cfg.Metrics.served(modelName, route)
		}
		return gs, served, err
	}
	return nil, Served{}, fmt.Errorf("model %q: route retries exhausted: %w", modelName, ErrNotReady)
}

// shadowJob is one queued background comparison: the duplicated input and
// the primary response to diff against. The job holds a reference on the
// shadow version until it completes.
type shadowJob struct {
	model   *model
	v       *Version
	x       tensor.Vector
	primary core.GaussianVec
}

// submitShadow queues a duplicate of the request against the shadow version.
// Never blocks: a full buffer drops the duplicate (counted), keeping the
// primary path's latency unaffected by shadow load.
func (r *Registry) submitShadow(m *model, shadow *Version, x tensor.Vector, primary core.GaussianVec) {
	if !shadow.tryAcquire() {
		return // shadow already draining; nothing to compare against
	}
	job := shadowJob{model: m, v: shadow, x: x.Clone(), primary: primary}
	select {
	case r.shadowJobs <- job:
	default:
		shadow.release()
		r.cfg.Metrics.shadowDrop(m.name)
	}
}

// shadowWorker runs queued comparisons until the registry closes the
// channel (after every possible submitter has finished).
func (r *Registry) shadowWorker() {
	defer r.shadowWG.Done()
	for job := range r.shadowJobs {
		ctx, cancel := context.WithTimeout(context.Background(), shadowJobTimeout)
		g, err := job.v.coal.Do(ctx, job.x)
		cancel()
		if err == nil {
			for i := range g.Mean {
				dMean := g.Mean[i] - job.primary.Mean[i]
				if dMean < 0 {
					dMean = -dMean
				}
				dStd := math.Sqrt(g.Var[i]) - math.Sqrt(job.primary.Var[i])
				if dStd < 0 {
					dStd = -dStd
				}
				r.cfg.Metrics.drift(job.model.name, dMean, dStd)
			}
			r.cfg.Metrics.shadowDone(job.model.name)
		}
		job.v.release()
	}
}

// Ready reports whether at least one model has a routable current version —
// the /readyz condition.
func (r *Registry) Ready() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return false
	}
	for _, m := range r.models {
		if rt := m.route.Load(); rt != nil && rt.current != nil && !rt.current.retired.Load() {
			return true
		}
	}
	return false
}

// VersionStatus describes one registered version in listings.
type VersionStatus struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	QueueDepth  int    `json:"queue_depth"`
	Draining    bool   `json:"draining"`
	// Quantized reports whether the version serves on the fixed-point path.
	Quantized bool `json:"quantized,omitempty"`
}

// ModelStatus describes one model's routing state in listings.
type ModelStatus struct {
	Name               string          `json:"name"`
	Summary            string          `json:"summary"`
	Params             int64           `json:"params"`
	InputDim           int             `json:"input_dim"`
	OutputDim          int             `json:"output_dim"`
	Current            string          `json:"current"`
	CurrentFingerprint string          `json:"current_fingerprint"`
	Canary             string          `json:"canary,omitempty"`
	CanaryWeight       float64         `json:"canary_weight,omitempty"`
	Shadow             string          `json:"shadow,omitempty"`
	Versions           []VersionStatus `json:"versions"`
}

// Models lists every registered model's routing state, sorted by name.
func (r *Registry) Models() []ModelStatus {
	r.mu.RLock()
	entries := make([]*model, 0, len(r.models))
	for _, m := range r.models {
		entries = append(entries, m)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]ModelStatus, 0, len(entries))
	for _, m := range entries {
		out = append(out, m.status())
	}
	return out
}

// Model returns one model's routing state.
func (r *Registry) Model(name string) (ModelStatus, error) {
	m, err := r.lookup(name)
	if err != nil {
		return ModelStatus{}, err
	}
	return m.status(), nil
}

func (m *model) status() ModelStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := ModelStatus{Name: m.name}
	rt := m.route.Load()
	if rt != nil && rt.current != nil {
		st.Current = rt.current.ID
		st.CurrentFingerprint = rt.current.Fingerprint
		st.Summary = rt.current.net.Summary()
		st.Params = rt.current.net.Params()
		st.InputDim = rt.current.net.InputDim()
		st.OutputDim = rt.current.net.OutputDim()
		if rt.canary != nil {
			st.Canary = rt.canary.ID
			st.CanaryWeight = rt.canaryWeight
		}
		if rt.shadow != nil {
			st.Shadow = rt.shadow.ID
		}
	}
	for _, id := range m.order {
		v := m.versions[id]
		st.Versions = append(st.Versions, VersionStatus{
			ID:          v.ID,
			Fingerprint: v.Fingerprint,
			QueueDepth:  v.coal.Depth(),
			Draining:    v.retired.Load(),
			Quantized:   v.Quantized(),
		})
	}
	return st
}

// Version returns the registered version object (for tests and benchmarks
// that compare served responses against direct propagation).
func (r *Registry) Version(modelName, id string) (*Version, error) {
	m, err := r.lookup(modelName)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.versions[id]
	if !ok {
		return nil, fmt.Errorf("model %q: version %q: %w", modelName, id, ErrNotFound)
	}
	return v, nil
}

// Close stops intake, unroutes everything, drains every version's pool, and
// stops the shadow workers — bounded by ctx. After Close every registry
// method fails with ErrClosed.
func (r *Registry) Close(ctx context.Context) error {
	r.mu.Lock()
	alreadyClosed := r.closed
	r.closed = true
	models := make([]*model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.models = make(map[string]*model)
	r.mu.Unlock()

	for _, m := range models {
		m.mu.Lock()
		m.route.Store(nil)
		vs := make([]*Version, 0, len(m.versions)+len(m.displaced))
		for _, v := range m.versions {
			vs = append(vs, v)
		}
		vs = append(vs, m.displaced...)
		m.versions = make(map[string]*Version)
		m.order = nil
		m.displaced = nil
		m.mu.Unlock()
		for _, v := range vs {
			r.retireVersion(m.name, v)
		}
	}

	// Every Predict holds a version reference while it might submit a shadow
	// job, so once all drains finish no submitter remains and the job channel
	// can close; the workers then finish the buffered comparisons and exit.
	done := make(chan struct{})
	go func() {
		r.drains.Wait()
		if !alreadyClosed {
			close(r.shadowJobs)
		}
		r.shadowWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("registry: drain interrupted: %w", ctx.Err())
	}
}
