package registry

import (
	"github.com/apdeepsense/apdeepsense/internal/obs"
)

// Metrics is the registry's observability surface. All methods are nil-safe,
// matching the serve.Metrics convention: an unconfigured registry pays one
// nil check per event.
//
// Families (see README "Serving"):
//
//	apds_registry_requests_total{model,route}     served requests by route (current|canary)
//	apds_registry_swaps_total{model}              route-table swaps applied
//	apds_registry_reloads_total{result}           manifest reload attempts (ok|error|unchanged)
//	apds_registry_compiles_total{result}          load-time compiles (ok|cache_hit|error)
//	apds_registry_quantized_total{result}         load-time quantized builds (ok|cache_hit|fallback)
//	apds_registry_versions{model}                 registered (routable or draining) versions
//	apds_registry_shadow_total{model}             shadow comparisons completed
//	apds_registry_shadow_dropped_total{model}     shadow duplicates dropped (pool saturated)
//	apds_registry_shadow_mean_drift{model}        |shadow mean − primary mean| per output dim
//	apds_registry_shadow_std_drift{model}         |shadow σ − primary σ| per output dim
type Metrics struct {
	requests      *obs.CounterVec
	swaps         *obs.CounterVec
	reloads       *obs.CounterVec
	compiles      *obs.CounterVec
	quantized     *obs.CounterVec
	versions      *obs.GaugeVec
	shadow        *obs.CounterVec
	shadowDropped *obs.CounterVec
	meanDrift     *obs.HistogramVec
	stdDrift      *obs.HistogramVec
}

// driftBuckets spans |drift| from 1e-9 (numerical noise between builds of the
// same weights) to ~0.5 (a genuinely different model) in ×4 steps.
func driftBuckets() []float64 { return obs.ExpBuckets(1e-9, 4, 15) }

// NewMetrics registers the registry metric families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		requests: reg.CounterVec("apds_registry_requests_total",
			"Requests served by the model registry, by model and route.", "model", "route"),
		swaps: reg.CounterVec("apds_registry_swaps_total",
			"Route-table swaps applied per model.", "model"),
		reloads: reg.CounterVec("apds_registry_reloads_total",
			"Manifest reload attempts by outcome.", "result"),
		compiles: reg.CounterVec("apds_registry_compiles_total",
			"Load-time propagator compiles by outcome (ok, cache_hit, error).", "result"),
		quantized: reg.CounterVec("apds_registry_quantized_total",
			"Load-time quantized-program builds by outcome (ok, cache_hit, fallback to float).", "result"),
		versions: reg.GaugeVec("apds_registry_versions",
			"Versions currently registered per model (routable or draining).", "model"),
		shadow: reg.CounterVec("apds_registry_shadow_total",
			"Shadow comparisons completed per model.", "model"),
		shadowDropped: reg.CounterVec("apds_registry_shadow_dropped_total",
			"Shadow duplicates dropped because the shadow pool was saturated.", "model"),
		meanDrift: reg.HistogramVec("apds_registry_shadow_mean_drift",
			"Absolute mean drift per output dimension: shadow candidate vs primary.",
			driftBuckets(), "model"),
		stdDrift: reg.HistogramVec("apds_registry_shadow_std_drift",
			"Absolute standard-deviation drift per output dimension: shadow candidate vs primary.",
			driftBuckets(), "model"),
	}
}

// ShadowCompleted returns the completed shadow-comparison count for model
// (for benchmarks and tests; scraping goes through the obs registry).
func (m *Metrics) ShadowCompleted(model string) float64 {
	if m == nil {
		return 0
	}
	return m.shadow.With(model).Value()
}

// ShadowDropped returns the dropped shadow-duplicate count for model.
func (m *Metrics) ShadowDropped(model string) float64 {
	if m == nil {
		return 0
	}
	return m.shadowDropped.With(model).Value()
}

func (m *Metrics) served(model, route string) {
	if m != nil {
		m.requests.With(model, route).Inc()
	}
}

func (m *Metrics) swapped(model string) {
	if m != nil {
		m.swaps.With(model).Inc()
	}
}

func (m *Metrics) reloaded(result string) {
	if m != nil {
		m.reloads.With(result).Inc()
	}
}

func (m *Metrics) compiled(result string) {
	if m != nil {
		m.compiles.With(result).Inc()
	}
}

// Compiles returns the compile count for one outcome label (for tests).
func (m *Metrics) Compiles(result string) float64 {
	if m == nil {
		return 0
	}
	return m.compiles.With(result).Value()
}

func (m *Metrics) quantizedBuild(result string) {
	if m != nil {
		m.quantized.With(result).Inc()
	}
}

// QuantizedBuilds returns the quantized-build count for one outcome label
// (for tests).
func (m *Metrics) QuantizedBuilds(result string) float64 {
	if m == nil {
		return 0
	}
	return m.quantized.With(result).Value()
}

func (m *Metrics) setVersions(model string, n int) {
	if m != nil {
		m.versions.With(model).Set(float64(n))
	}
}

func (m *Metrics) shadowDone(model string) {
	if m != nil {
		m.shadow.With(model).Inc()
	}
}

func (m *Metrics) shadowDrop(model string) {
	if m != nil {
		m.shadowDropped.With(model).Inc()
	}
}

func (m *Metrics) drift(model string, meanDrift, stdDrift float64) {
	if m != nil {
		m.meanDrift.With(model).Observe(meanDrift)
		m.stdDrift.With(model).Observe(stdDrift)
	}
}
