package registry

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func writeModel(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := testNet(t, seed).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeManifest(t *testing.T, path string, man Manifest) {
	t.Helper()
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestManifestValidate(t *testing.T) {
	ok := Manifest{Models: []ManifestModel{{
		Name:     "m",
		Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "b.model"}},
		Current:  "v1",
		Canary:   &ManifestCanary{ID: "v2", Weight: 0.2},
		Shadow:   "v2",
	}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"empty model name", func(m *Manifest) { m.Models[0].Name = "" }},
		{"duplicate model", func(m *Manifest) { m.Models = append(m.Models, m.Models[0]) }},
		{"negative obs_var", func(m *Manifest) { m.Models[0].ObsVar = -1 }},
		{"no versions", func(m *Manifest) { m.Models[0].Versions = nil }},
		{"empty version id", func(m *Manifest) { m.Models[0].Versions[0].ID = "" }},
		{"empty version path", func(m *Manifest) { m.Models[0].Versions[1].Path = "" }},
		{"duplicate version", func(m *Manifest) { m.Models[0].Versions[1].ID = "v1" }},
		{"current undeclared", func(m *Manifest) { m.Models[0].Current = "nope" }},
		{"canary undeclared", func(m *Manifest) { m.Models[0].Canary.ID = "nope" }},
		{"canary weight zero", func(m *Manifest) { m.Models[0].Canary.Weight = 0 }},
		{"canary weight >1", func(m *Manifest) { m.Models[0].Canary.Weight = 1.5 }},
		{"shadow undeclared", func(m *Manifest) { m.Models[0].Shadow = "nope" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			man := Manifest{Models: []ManifestModel{{
				Name:     "m",
				Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "b.model"}},
				Current:  "v1",
				Canary:   &ManifestCanary{ID: "v2", Weight: 0.2},
				Shadow:   "v2",
			}}}
			tc.mutate(&man)
			if err := man.Validate(); !errors.Is(err, ErrManifest) {
				t.Fatalf("want ErrManifest, got %v", err)
			}
		})
	}
}

func TestManifestSessionsValidate(t *testing.T) {
	base := func() Manifest {
		return Manifest{
			Models: []ManifestModel{{
				Name:     "m",
				Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}},
				Current:  "v1",
			}},
			Sessions: &ManifestSessions{
				Model: "m", Channels: 3, Length: 8, Stride: 4,
				Standardize: true, WarmupWindows: 4, DriftThreshold: 0.9,
				EscalateAfter: 2, ReadmitAfter: 2,
				IdleTimeout:  "10m",
				SnapshotPath: "fleet.apsf", SnapshotInterval: "30s",
			},
		}
	}
	man := base()
	if err := man.Validate(); err != nil {
		t.Fatalf("valid sessions block rejected: %v", err)
	}
	if d, err := man.Sessions.ParsedIdleTimeout(); err != nil || d != 10*time.Minute {
		t.Fatalf("ParsedIdleTimeout = %v, %v", d, err)
	}
	if d, err := man.Sessions.ParsedSnapshotInterval(); err != nil || d != 30*time.Second {
		t.Fatalf("ParsedSnapshotInterval = %v, %v", d, err)
	}

	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"empty model", func(m *Manifest) { m.Sessions.Model = "" }},
		{"undeclared model", func(m *Manifest) { m.Sessions.Model = "nope" }},
		{"zero channels", func(m *Manifest) { m.Sessions.Channels = 0 }},
		{"zero length", func(m *Manifest) { m.Sessions.Length = 0 }},
		{"negative stride", func(m *Manifest) { m.Sessions.Stride = -1 }},
		{"negative warmup", func(m *Manifest) { m.Sessions.WarmupWindows = -1 }},
		{"threshold >1", func(m *Manifest) { m.Sessions.DriftThreshold = 1.5 }},
		{"threshold negative", func(m *Manifest) { m.Sessions.DriftThreshold = -0.1 }},
		{"negative escalate", func(m *Manifest) { m.Sessions.EscalateAfter = -1 }},
		{"negative readmit", func(m *Manifest) { m.Sessions.ReadmitAfter = -2 }},
		{"unparseable idle timeout", func(m *Manifest) { m.Sessions.IdleTimeout = "soon" }},
		{"negative idle timeout", func(m *Manifest) { m.Sessions.IdleTimeout = "-1s" }},
		{"unparseable snapshot interval", func(m *Manifest) { m.Sessions.SnapshotInterval = "often" }},
		{"interval without path", func(m *Manifest) { m.Sessions.SnapshotPath = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			man := base()
			tc.mutate(&man)
			if err := man.Validate(); !errors.Is(err, ErrManifest) {
				t.Fatalf("want ErrManifest, got %v", err)
			}
		})
	}

	// Defaults-only block: zero thresholds/hysteresis mean "use the session
	// package defaults", and no snapshot config is fine.
	minimal := base()
	minimal.Sessions = &ManifestSessions{Model: "m", Channels: 1, Length: 2, Stride: 1}
	if err := minimal.Validate(); err != nil {
		t.Fatalf("minimal sessions block rejected: %v", err)
	}
	if d, err := minimal.Sessions.ParsedIdleTimeout(); err != nil || d != 0 {
		t.Fatalf("unset idle timeout = %v, %v", d, err)
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing manifest")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(bad); !errors.Is(err, ErrManifest) {
		t.Fatalf("want ErrManifest for bad JSON, got %v", err)
	}
}

func TestLoaderReloadLifecycle(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "a.model", 1)
	writeModel(t, dir, "b.model", 2)
	manPath := filepath.Join(dir, "registry.json")
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "b.model"}},
		Current:  "v1",
	}}})

	r := New(Config{})
	defer closeRegistry(t, r)
	l := NewLoader(r, manPath)
	if l.Registry() != r {
		t.Fatal("Registry() accessor broken")
	}

	changed, err := l.Reload(true)
	if err != nil || !changed {
		t.Fatalf("initial reload: changed=%v err=%v", changed, err)
	}
	x := tensor.Vector{1, 2, 3}
	_, served, err := r.Predict(context.Background(), "demo", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v1" {
		t.Fatalf("serving %q, want v1", served.Version)
	}

	// No disk change → no reload.
	if changed, err := l.Reload(false); err != nil || changed {
		t.Fatalf("unchanged poll: changed=%v err=%v", changed, err)
	}

	// Flip routing in the manifest: the poll must pick it up via the stamp.
	time.Sleep(5 * time.Millisecond) // ensure a distinct mtime even on coarse clocks
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "b.model"}},
		Current:  "v2",
		Shadow:   "v1",
	}}})
	if changed, err := l.Reload(false); err != nil || !changed {
		t.Fatalf("route-change poll: changed=%v err=%v", changed, err)
	}
	_, served, err = r.Predict(context.Background(), "demo", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v2" {
		t.Fatalf("serving %q after reload, want v2", served.Version)
	}

	// Rewrite a model file with new weights under the same path: the stamp
	// changes, Apply replaces the version in place, requests pick up the new
	// fingerprint.
	oldFP := served.Fingerprint
	time.Sleep(5 * time.Millisecond)
	writeModel(t, dir, "b.model", 99)
	if changed, err := l.Reload(false); err != nil || !changed {
		t.Fatalf("model-file poll: changed=%v err=%v", changed, err)
	}
	_, served, err = r.Predict(context.Background(), "demo", "k", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v2" || served.Fingerprint == oldFP {
		t.Fatalf("hot-replace not picked up: version=%q fp changed=%v", served.Version, served.Fingerprint != oldFP)
	}

	// A broken manifest on disk must fail the reload and keep serving.
	time.Sleep(5 * time.Millisecond)
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v2", Path: "b.model"}},
		Current:  "missing",
	}}})
	if _, err := l.Reload(false); !errors.Is(err, ErrManifest) {
		t.Fatalf("want ErrManifest from broken manifest, got %v", err)
	}
	if _, _, err := r.Predict(context.Background(), "demo", "k", x); err != nil {
		t.Fatalf("previous config must keep serving after failed reload: %v", err)
	}

	// Dropping the model from the manifest removes it from the registry.
	writeModel(t, dir, "c.model", 3)
	time.Sleep(5 * time.Millisecond)
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "other",
		Versions: []ManifestVersion{{ID: "v1", Path: "c.model"}},
		Current:  "v1",
	}}})
	if changed, err := l.Reload(false); err != nil || !changed {
		t.Fatalf("model-drop poll: changed=%v err=%v", changed, err)
	}
	if _, _, err := r.Predict(context.Background(), "demo", "k", x); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped model must be gone, got %v", err)
	}
	if _, _, err := r.Predict(context.Background(), "other", "k", x); err != nil {
		t.Fatalf("new model must serve: %v", err)
	}
}

func TestLoaderWatch(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "a.model", 1)
	writeModel(t, dir, "b.model", 2)
	manPath := filepath.Join(dir, "registry.json")
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}},
		Current:  "v1",
	}}})

	r := New(Config{})
	defer closeRegistry(t, r)
	l := NewLoader(r, manPath)
	if _, err := l.Reload(true); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		l.Watch(ctx, 2*time.Millisecond, t.Logf)
	}()

	time.Sleep(5 * time.Millisecond)
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "b.model"}},
		Current:  "v2",
	}}})

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, served, err := r.Predict(context.Background(), "demo", "k", tensor.Vector{1, 2, 3})
		if err == nil && served.Version == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch loop never applied the new manifest (err=%v, served=%+v)", err, served)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-watchDone:
	case <-time.After(time.Second):
		t.Fatal("Watch did not exit on context cancellation")
	}
}

func TestApplyRejectsUnreadableModelFile(t *testing.T) {
	dir := t.TempDir()
	man := &Manifest{Models: []ManifestModel{{
		Name:     "demo",
		Versions: []ManifestVersion{{ID: "v1", Path: "absent.model"}},
		Current:  "v1",
	}}}
	r := New(Config{})
	defer closeRegistry(t, r)
	if err := r.Apply(man, dir); err == nil {
		t.Fatal("want error applying manifest with missing model file")
	}
}
