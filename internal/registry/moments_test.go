package registry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/conv"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// momentsOf digs the resolved activation backend of layer 0 out of a version
// built from a network.
func momentsOf(t *testing.T, v *Version) bool {
	t.Helper()
	ap, ok := v.Estimator().(*core.ApDeepSense)
	if !ok {
		t.Fatalf("estimator is %T, want *core.ApDeepSense", v.Estimator())
	}
	return ap.Propagator().MomentsExact(0)
}

// TestManifestActivationMoments drives the manifest's "activation_moments"
// flag end to end: a rectifier model declared "pwl" must serve on the PWL
// backend, and flipping the manifest to "exact" rebuilds new version ids on
// the exact backend.
func TestManifestActivationMoments(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "a.model", 1)
	manPath := filepath.Join(dir, "registry.json")
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:              "demo",
		ActivationMoments: "pwl",
		Versions:          []ManifestVersion{{ID: "v1", Path: "a.model"}},
		Current:           "v1",
	}}})

	r := New(Config{})
	defer closeRegistry(t, r)
	l := NewLoader(r, manPath)
	if _, err := l.Reload(true); err != nil {
		t.Fatal(err)
	}
	v, err := r.Version("demo", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if momentsOf(t, v) {
		t.Error(`manifest "pwl": version serves on the exact backend`)
	}

	// Same file under a new version id with the manifest flipped to exact:
	// the rebuilt version must resolve ReLU layers to the exact closed form.
	writeManifest(t, manPath, Manifest{Models: []ManifestModel{{
		Name:              "demo",
		ActivationMoments: "exact",
		Versions:          []ManifestVersion{{ID: "v1", Path: "a.model"}, {ID: "v2", Path: "a.model"}},
		Current:           "v2",
	}}})
	if _, err := l.Reload(true); err != nil {
		t.Fatal(err)
	}
	v2, err := r.Version("demo", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if !momentsOf(t, v2) {
		t.Error(`manifest "exact": version serves on the PWL backend`)
	}

	// Both backends must serve: the mode is a numerical formulation choice,
	// not a routing change.
	x := tensor.Vector{0.5, -1, 2}
	if _, _, err := r.Predict(context.Background(), "demo", "k", x); err != nil {
		t.Fatalf("serving after mode flip: %v", err)
	}
}

// TestManifestMomentsValidation: unknown modes are a manifest validation
// error, not a silent fallback.
func TestManifestMomentsValidation(t *testing.T) {
	man := Manifest{Models: []ManifestModel{{
		Name:              "m",
		ActivationMoments: "quadrature",
		Versions:          []ManifestVersion{{ID: "v1", Path: "x.model"}},
		Current:           "v1",
	}}}
	if err := man.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v, want ErrManifest", err)
	}
}

// TestCompileCacheSeparatesMomentModes: the compile cache is keyed by the
// moment mode along with the weight fingerprint — two versions of the SAME
// weights under different backends must not share a program (their fused
// activation closures differ), while two versions under the same backend
// must.
func TestCompileCacheSeparatesMomentModes(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)

	net := testNet(t, 9)
	if err := r.SetActivationMoments("a", nn.MomentsPWL); err != nil {
		t.Fatal(err)
	}
	if err := r.SetActivationMoments("b", nn.MomentsExact); err != nil {
		t.Fatal(err)
	}
	if err := r.SetActivationMoments("c", nn.MomentsExact); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"a", "b", "c"} {
		if _, err := r.AddVersion(m, "v1", net); err != nil {
			t.Fatal(err)
		}
	}
	// pwl and exact builds of one fingerprint → two cache entries; the
	// second exact build must hit the first's entry.
	if got := r.compiles.size(); got != 2 {
		t.Errorf("compile cache holds %d programs, want 2 (pwl + shared exact)", got)
	}
}

// TestExactOnTanhModelFailsBuild: a model-level "exact" default on a net
// with non-rectifier hidden layers is a build error surfaced by AddVersion,
// mirroring the construction-time error contract everywhere else.
func TestExactOnTanhModelFailsBuild(t *testing.T) {
	r := New(Config{})
	defer closeRegistry(t, r)
	net, err := nn.New(nn.Config{
		InputDim: 3, Hidden: []int{4}, OutputDim: 2,
		Activation: nn.ActTanh, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetActivationMoments("m", nn.MomentsExact); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v1", net); err == nil {
		t.Fatal("exact-on-tanh version built without error")
	}
}

// TestServeConvEstimator registers the conv sequence estimator through
// AddVersionEstimator and serves it: the sequence paths are first-class
// registry citizens, and served responses stay bit-identical to direct
// estimator calls.
func TestServeConvEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	c1, err := conv.NewConv1D(3, 2, 6, 2, nn.ActReLU, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	head, err := nn.New(nn.Config{
		InputDim: 6, Hidden: []int{8}, OutputDim: 2,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: 0.9, Seed: 73,
	})
	if err != nil {
		t.Fatal(err)
	}
	cnet, err := conv.NewNet([]*conv.Conv1D{c1}, head)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 11
	est, err := conv.NewEstimator(cnet, steps, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	// The registry's all-ones warmup probes net.InputDim() inputs — the
	// dense head's shape, not the sequence estimator's flattened steps ×
	// channels contract — so sequence estimators register with warmup off.
	r := New(Config{SkipWarmup: true})
	defer closeRegistry(t, r)
	if _, err := r.AddVersionEstimator("conv", "v1", head, est); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("conv", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	x := make(tensor.Vector, steps*2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, served, err := r.Predict(context.Background(), "conv", "req", x)
	if err != nil {
		t.Fatal(err)
	}
	if served.Version != "v1" {
		t.Fatalf("served %q, want v1", served.Version)
	}
	want, err := est.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if math.Float64bits(got.Mean[i]) != math.Float64bits(want.Mean[i]) ||
			math.Float64bits(got.Var[i]) != math.Float64bits(want.Var[i]) {
			t.Errorf("dim %d: served (%v, %v) != direct (%v, %v)",
				i, got.Mean[i], got.Var[i], want.Mean[i], want.Var[i])
		}
	}
}
