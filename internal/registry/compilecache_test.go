package registry

import (
	"context"
	"math"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// compiledOf digs the installed compiled program out of a version built from
// a network (nil when compilation was disabled or never ran).
func compiledOf(t *testing.T, v *Version) core.CompiledBatch {
	t.Helper()
	ap, ok := v.Estimator().(*core.ApDeepSense)
	if !ok {
		t.Fatalf("estimator is %T, want *core.ApDeepSense", v.Estimator())
	}
	return ap.Propagator().Compiled()
}

// TestVersionsCompileByDefault: a version loaded from a network gets a
// warmed compiled program installed before it is registered, and served
// responses stay bit-identical to direct estimator calls (the served path
// now dispatches through the compiled propagator).
func TestVersionsCompileByDefault(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := New(Config{Metrics: m})
	defer closeRegistry(t, r)

	v, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if compiledOf(t, v) == nil {
		t.Fatal("version registered without a compiled program")
	}
	if got := m.Compiles("ok"); got != 1 {
		t.Errorf("compiles{ok} = %v, want 1", got)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	x := tensor.Vector{0.3, -1.2, 0.5}
	g, _, err := r.Predict(context.Background(), "m", "req", x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := v.Estimator().Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if math.Float64bits(g.Mean[i]) != math.Float64bits(want.Mean[i]) ||
			math.Float64bits(g.Var[i]) != math.Float64bits(want.Var[i]) {
			t.Errorf("dim %d: served (%v, %v) != direct (%v, %v)",
				i, g.Mean[i], g.Var[i], want.Mean[i], want.Var[i])
		}
	}
}

// TestDisableCompile: the knob leaves versions on the interpreted path.
func TestDisableCompile(t *testing.T) {
	r := New(Config{DisableCompile: true})
	defer closeRegistry(t, r)
	v, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if compiledOf(t, v) != nil {
		t.Error("DisableCompile set, but a compiled program was installed")
	}
	if r.compiles.size() != 0 {
		t.Errorf("cache size = %d, want 0", r.compiles.size())
	}
}

// TestCompileCacheSharesAndReleases: two versions of the same network share
// one cached program (the second load is a cache hit — the hot-reload /
// canary-of-same-weights shape); distinct networks get distinct entries; and
// retiring versions releases their references until the cache drains empty.
func TestCompileCacheSharesAndReleases(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := New(Config{Metrics: m})
	defer closeRegistry(t, r)

	net := testNet(t, 1)
	va, err := r.AddVersion("m", "va", net)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := r.AddVersion("m", "vb", net.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if va.Fingerprint != vb.Fingerprint {
		t.Fatal("clone changed the fingerprint")
	}
	if got := r.compiles.size(); got != 1 {
		t.Errorf("cache size after same-net loads = %d, want 1", got)
	}
	if got := m.Compiles("cache_hit"); got != 1 {
		t.Errorf("compiles{cache_hit} = %v, want 1", got)
	}

	if _, err := r.AddVersion("m", "vc", testNet(t, 2)); err != nil {
		t.Fatal(err)
	}
	if got := r.compiles.size(); got != 2 {
		t.Errorf("cache size after distinct-net load = %d, want 2", got)
	}

	// Retire one holder of the shared entry: the entry must survive for the
	// other. Retire the rest: the cache must drain to empty.
	if err := r.RemoveVersion("m", "va"); err != nil {
		t.Fatal(err)
	}
	if got := r.compiles.size(); got != 2 {
		t.Errorf("cache size after one shared holder retired = %d, want 2", got)
	}
	if err := r.RemoveVersion("m", "vb"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveVersion("m", "vc"); err != nil {
		t.Fatal(err)
	}
	if got := r.compiles.size(); got != 0 {
		t.Errorf("cache size after all retired = %d, want 0", got)
	}
}

// TestCompileCacheSingleflight: concurrent acquires of one key run the build
// exactly once and all waiters get the same program.
func TestCompileCacheSingleflight(t *testing.T) {
	c := newCompileCache()
	key := compileKey{fingerprint: "fp", maxBatch: 8}
	built := make(chan int, 16)
	start := make(chan struct{})
	type res struct {
		release func()
		hit     bool
	}
	results := make(chan res, 8)
	for i := 0; i < 8; i++ {
		go func() {
			<-start
			_, release, hit, err := c.acquire(key, func() (*compile.Program, error) {
				built <- 1
				return nil, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- res{release, hit}
		}()
	}
	close(start)
	var hits int
	var releases []func()
	for i := 0; i < 8; i++ {
		r := <-results
		if r.hit {
			hits++
		}
		releases = append(releases, r.release)
	}
	if len(built) != 1 {
		t.Errorf("build ran %d times, want 1", len(built))
	}
	if hits != 7 {
		t.Errorf("hits = %d, want 7", hits)
	}
	for _, rel := range releases {
		rel()
	}
	if c.size() != 0 {
		t.Errorf("cache size after all releases = %d, want 0", c.size())
	}
}
