package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/obs"
	"github.com/apdeepsense/apdeepsense/internal/qprop"
	"github.com/apdeepsense/apdeepsense/internal/serve"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestQuantizedOptIn pins the opt-in contract: by default versions serve on
// the float path, Config.EnableQuantized flips every version to the
// fixed-point path (and skips the now-redundant compile), and the per-model
// SetQuantized overrides the registry default.
func TestQuantizedOptIn(t *testing.T) {
	t.Run("default-off", func(t *testing.T) {
		r := New(Config{})
		defer closeRegistry(t, r)
		v, err := r.AddVersion("m", "v1", testNet(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		if v.Quantized() {
			t.Fatal("version quantized without opt-in")
		}
	})
	t.Run("registry-wide", func(t *testing.T) {
		met := NewMetrics(obs.NewRegistry())
		r := New(Config{EnableQuantized: true, Metrics: met})
		defer closeRegistry(t, r)
		v, err := r.AddVersion("m", "v1", testNet(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Quantized() {
			t.Fatal("EnableQuantized did not install a quantized program")
		}
		if got := met.QuantizedBuilds("ok"); got != 1 {
			t.Fatalf("quantized ok count = %v, want 1", got)
		}
		// The quantized program takes dispatch priority everywhere, so the
		// compile step must have been skipped entirely.
		if got := met.Compiles("ok"); got != 0 {
			t.Fatalf("compile count = %v, want 0 under quantized serving", got)
		}
		st, err := r.Model("m")
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Versions) != 1 || !st.Versions[0].Quantized {
			t.Fatalf("status does not report quantized: %+v", st.Versions)
		}
	})
	t.Run("per-model", func(t *testing.T) {
		r := New(Config{})
		defer closeRegistry(t, r)
		if err := r.SetQuantized("m", true); err != nil {
			t.Fatal(err)
		}
		v, err := r.AddVersion("m", "v1", testNet(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Quantized() {
			t.Fatal("SetQuantized did not install a quantized program")
		}
		w, err := r.AddVersion("other", "v1", testNet(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		if w.Quantized() {
			t.Fatal("per-model opt-in leaked to another model")
		}
	})
}

// TestQuantizedServesBitIdentical pins the serving contract: a quantized
// version's routed responses are Float64bits-identical to both its direct
// estimator Predict and to qprop.Build run standalone on the same network —
// dispatch really is on the fixed-point path, and coalescing does not change
// a single bit (per-row dynamic quantization).
func TestQuantizedServesBitIdentical(t *testing.T) {
	r := New(Config{EnableQuantized: true})
	defer closeRegistry(t, r)
	net := testNet(t, 3)
	v, err := r.AddVersion("m", "v1", net)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	qp, _, err := qprop.Build(net, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		x := tensor.Vector{float64(i) * 0.3, -1 + float64(i)*0.2, float64(i%5) - 2}
		g, served, err := r.Predict(ctx, "m", fmt.Sprintf("k%d", i), x)
		if err != nil {
			t.Fatal(err)
		}
		if served.Version != "v1" {
			t.Fatalf("served by %q", served.Version)
		}
		direct, err := v.Estimator().Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		standalone := qp.Run(core.Deterministic(x))
		for j := range g.Mean {
			if math.Float64bits(g.Mean[j]) != math.Float64bits(direct.Mean[j]) ||
				math.Float64bits(g.Var[j]) != math.Float64bits(direct.Var[j]) {
				t.Fatalf("req %d dim %d: served response differs from direct Predict", i, j)
			}
			if math.Float64bits(direct.Mean[j]) != math.Float64bits(standalone.Mean[j]) {
				t.Fatalf("req %d dim %d: served mean differs from standalone qprop (dispatch not on fixed-point path?)", i, j)
			}
		}
	}
}

// TestQuantizedCacheSharing pins the fingerprint-keyed cache: two versions of
// the same network share one quantized program (one build, one cache hit),
// and retiring both drops the entry.
func TestQuantizedCacheSharing(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	r := New(Config{EnableQuantized: true, Metrics: met})
	defer closeRegistry(t, r)
	net := testNet(t, 7)
	if _, err := r.AddVersion("m", "v1", net); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddVersion("m", "v2", net); err != nil {
		t.Fatal(err)
	}
	if ok, hit := met.QuantizedBuilds("ok"), met.QuantizedBuilds("cache_hit"); ok != 1 || hit != 1 {
		t.Fatalf("quantized builds ok=%v cache_hit=%v, want 1 and 1", ok, hit)
	}
	if n := r.quants.size(); n != 1 {
		t.Fatalf("cache size = %d, want 1 shared entry", n)
	}
	if err := r.RemoveVersion("m", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveVersion("m", "v2"); err != nil {
		t.Fatal(err)
	}
	if n := r.quants.size(); n != 0 {
		t.Fatalf("cache size after retire = %d, want 0", n)
	}
}

// TestQuantizedFallback pins the degrade-don't-fail contract: when the
// quantized build rejects the model, the version still loads, serves on the
// float path (with a compiled program, since compilation is no longer
// redundant), and the fallback is counted.
func TestQuantizedFallback(t *testing.T) {
	orig := buildQuantized
	buildQuantized = func(net *nn.Network, opts core.Options) (*qprop.Propagator, error) {
		return nil, errors.New("injected: weights overflow the fixed-point scheme")
	}
	defer func() { buildQuantized = orig }()

	met := NewMetrics(obs.NewRegistry())
	r := New(Config{EnableQuantized: true, Metrics: met})
	defer closeRegistry(t, r)
	v, err := r.AddVersion("m", "v1", testNet(t, 1))
	if err != nil {
		t.Fatalf("quantize failure must not fail the load: %v", err)
	}
	if v.Quantized() {
		t.Fatal("version claims quantized after a failed build")
	}
	if got := met.QuantizedBuilds("fallback"); got != 1 {
		t.Fatalf("fallback count = %v, want 1", got)
	}
	if got := met.Compiles("ok"); got != 1 {
		t.Fatalf("compile count = %v, want 1 (float fallback compiles)", got)
	}
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Predict(context.Background(), "m", "k", tensor.Vector{1, 2, 3}); err != nil {
		t.Fatalf("float fallback does not serve: %v", err)
	}
}

// TestQuantizedManifest pins the manifest plumbing: a model declaring
// "quantized": true loads onto the fixed-point path without any registry
// config, and one that does not stays on the float path.
func TestQuantizedManifest(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "q-v1.model", 1)
	writeModel(t, dir, "f-v1.model", 2)
	writeManifest(t, filepath.Join(dir, "manifest.json"), Manifest{Models: []ManifestModel{
		{
			Name: "quantized", Quantized: true,
			Versions: []ManifestVersion{{ID: "v1", Path: "q-v1.model"}},
			Current:  "v1",
		},
		{
			Name:     "float",
			Versions: []ManifestVersion{{ID: "v1", Path: "f-v1.model"}},
			Current:  "v1",
		},
	}})
	r := New(Config{})
	defer closeRegistry(t, r)
	l := NewLoader(r, filepath.Join(dir, "manifest.json"))
	if _, err := l.Reload(true); err != nil {
		t.Fatal(err)
	}
	qv, err := r.Version("quantized", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if !qv.Quantized() {
		t.Fatal("manifest quantized flag did not install a quantized program")
	}
	fv, err := r.Version("float", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if fv.Quantized() {
		t.Fatal("unflagged manifest model landed on the quantized path")
	}
}

// TestQuantizedHotSwapHammer is the hot-swap contract under quantized
// serving: workers predict continuously while versions swap (including
// replace-under-the-same-ID reloads); zero requests drop and every response
// is bit-identical to a direct Predict on the version that served it — the
// same guarantee the float hammer proves, now with the fixed-point dispatch
// and the quantized-program cache churning underneath.
func TestQuantizedHotSwapHammer(t *testing.T) {
	r := New(Config{
		EnableQuantized: true,
		Serve:           serve.Config{MaxBatch: 32, QueueDepth: 4096},
	})
	defer closeRegistry(t, r)

	var estByFP sync.Map
	addVersion := func(id string, seed int64) *Version {
		v, err := r.AddVersion("m", id, testNet(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Quantized() {
			t.Fatalf("version %s seed %d not quantized", id, seed)
		}
		estByFP.Store(v.Fingerprint, v)
		return v
	}
	addVersion("v1", 1)
	addVersion("v2", 2)
	if err := r.SetRoutes("m", "v1", "", 0, ""); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		swaps   = 60
	)
	inputs := make([]tensor.Vector, 16)
	for i := range inputs {
		inputs[i] = tensor.Vector{float64(i) * 0.25, -1 + float64(i)*0.1, float64(i%3) - 1}
	}

	var (
		done     = make(chan struct{})
		requests atomic.Int64
		failures = make(chan string, workers)
	)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				x := inputs[(w+i)%len(inputs)]
				g, served, err := r.Predict(ctx, "m", fmt.Sprintf("w%d-%d", w, i), x)
				if err != nil {
					fail("worker %d req %d: %v", w, i, err)
					return
				}
				requests.Add(1)
				vi, ok := estByFP.Load(served.Fingerprint)
				if !ok {
					fail("worker %d req %d: unknown fingerprint %s", w, i, served.Fingerprint)
					return
				}
				direct, err := vi.(*Version).Estimator().Predict(x)
				if err != nil {
					fail("worker %d req %d: direct predict: %v", w, i, err)
					return
				}
				for j := range g.Mean {
					if math.Float64bits(g.Mean[j]) != math.Float64bits(direct.Mean[j]) ||
						math.Float64bits(g.Var[j]) != math.Float64bits(direct.Var[j]) {
						fail("worker %d req %d dim %d: served response not bit-identical", w, i, j)
						return
					}
				}
			}
		}(w)
	}

	cur := "v1"
	for s := 0; s < swaps; s++ {
		next := "v2"
		if cur == "v2" {
			next = "v1"
		}
		if s%10 == 5 {
			// Reload under the same ID with different weights: the displaced
			// version keeps serving until the route swap lands.
			addVersion(next, int64(100+s))
		}
		if err := r.SetRoutes("m", next, "", 0, ""); err != nil {
			t.Fatal(err)
		}
		cur = next
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	select {
	case msg := <-failures:
		t.Fatal(msg)
	default:
	}
	if n := requests.Load(); n < int64(workers*swaps) {
		t.Errorf("only %d successful requests across %d swaps — hammer barely ran", n, swaps)
	}
}
