package nn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// Fingerprint returns the hex-encoded SHA-256 of the network's canonical
// serialized form: the wire magic and version followed by, per layer, the
// dimensions, activation, keep probability, weights, and biases, every
// float64 written as its IEEE-754 big-endian bit pattern. Two networks have
// equal fingerprints iff Save would produce semantically identical models,
// so the registry uses it for change detection and the serving API exposes
// it as an ETag-style version tag. The canonical form is written by hand
// (not gob) so the fingerprint is stable across Go releases and encoder
// implementation details.
func (n *Network) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	io.WriteString(h, modelMagic)
	writeU64(modelVersion)
	writeU64(uint64(len(n.layers)))
	for _, l := range n.layers {
		writeU64(uint64(l.InDim()))
		writeU64(uint64(l.OutDim()))
		writeU64(uint64(l.Act))
		writeU64(math.Float64bits(l.KeepProb))
		// The moment mode is serving-relevant state (it changes the served
		// numbers and which compiled program a version may share), so it is
		// fingerprinted alongside the weights.
		writeU64(uint64(l.Moments))
		for _, w := range l.W.Data {
			writeU64(math.Float64bits(w))
		}
		for _, b := range l.B {
			writeU64(math.Float64bits(b))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
