// Package nn implements fully-connected neural networks with dropout — the
// model family ApDeepSense targets (paper §II-A, eqs. 1–2). It provides
// deterministic inference with weight scaling, stochastic dropout-mask
// inference (the primitive under MCDrop), FLOP accounting for the device
// cost model, and model (de)serialization.
package nn

import (
	"fmt"
	"math"
)

// Activation identifies a layer's non-linearity.
type Activation int

// Supported activation functions.
const (
	// ActIdentity is the linear/no-op activation used on output layers.
	ActIdentity Activation = iota + 1
	// ActReLU is max(0, x).
	ActReLU
	// ActTanh is the hyperbolic tangent.
	ActTanh
	// ActSigmoid is the logistic function 1/(1+e^{−x}).
	ActSigmoid
	// ActLeakyReLU is x for x > 0, LeakyAlpha·x otherwise.
	ActLeakyReLU
)

// LeakyAlpha is the negative-side slope of ActLeakyReLU. Fixed rather than
// per-layer: the serialized format stays a pure enum and every consumer
// (propagation, training, the exact-moment backend) agrees on the slope.
const LeakyAlpha = 0.01

// String returns the canonical lower-case name of the activation.
func (a Activation) String() string {
	switch a {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActTanh:
		return "tanh"
	case ActSigmoid:
		return "sigmoid"
	case ActLeakyReLU:
		return "leaky_relu"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// Valid reports whether a names a supported activation.
func (a Activation) Valid() bool {
	return a >= ActIdentity && a <= ActLeakyReLU
}

// Rectifier reports whether a is in the rectifier family (ReLU/leaky-ReLU)
// and returns its negative-side slope — the activations with closed-form
// Gaussian moments (stats.RectifiedMoments) the exact backend can serve.
func (a Activation) Rectifier() (alpha float64, ok bool) {
	switch a {
	case ActReLU:
		return 0, true
	case ActLeakyReLU:
		return LeakyAlpha, true
	default:
		return 0, false
	}
}

// ParseActivation converts a canonical name into an Activation.
func ParseActivation(s string) (Activation, error) {
	switch s {
	case "identity", "linear", "":
		return ActIdentity, nil
	case "relu":
		return ActReLU, nil
	case "tanh":
		return ActTanh, nil
	case "sigmoid":
		return ActSigmoid, nil
	case "leaky_relu":
		return ActLeakyReLU, nil
	default:
		return 0, fmt.Errorf("nn: unknown activation %q", s)
	}
}

// Apply evaluates the activation at x.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case ActReLU:
		if x > 0 {
			return x
		}
		return 0
	case ActTanh:
		return math.Tanh(x)
	case ActSigmoid:
		return 1 / (1 + math.Exp(-x))
	case ActLeakyReLU:
		if x > 0 {
			return x
		}
		return LeakyAlpha * x
	default:
		return x
	}
}

// Derivative evaluates d a(x) / dx at pre-activation x.
func (a Activation) Derivative(x float64) float64 {
	switch a {
	case ActReLU:
		if x > 0 {
			return 1
		}
		return 0
	case ActTanh:
		t := math.Tanh(x)
		return 1 - t*t
	case ActSigmoid:
		s := 1 / (1 + math.Exp(-x))
		return s * (1 - s)
	case ActLeakyReLU:
		if x > 0 {
			return 1
		}
		return LeakyAlpha
	default:
		return 1
	}
}
