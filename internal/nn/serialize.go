package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrModel is returned (wrapped) whenever Load rejects serialized model data:
// undecodable streams, wrong magic or version, inconsistent shapes, or
// non-finite numeric fields. Every Load failure matches ErrModel, so callers
// can distinguish "this file is not a usable model" from I/O errors with a
// single errors.Is check; format-validation failures additionally match
// ErrConfig.
var ErrModel = errors.New("nn: invalid model data")

// modelMagic and modelVersion guard the on-disk format so stale files fail
// loudly instead of producing silently wrong weights.
const (
	modelMagic   = "apds-model"
	modelVersion = 1
)

// allFinite reports whether xs is free of NaN and ±Inf. A single non-finite
// weight would propagate through every inference path, so Load rejects such
// models outright rather than letting the poison surface downstream.
func allFinite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// wireLayer is the serialized form of one layer.
type wireLayer struct {
	InDim, OutDim int
	Weights       []float64
	Bias          []float64
	Act           int
	KeepProb      float64
	// Moments is the layer's activation-moment backend (MomentMode). gob
	// skips unknown/missing fields, so models written before the field
	// existed decode it as 0 (MomentsAuto) — no version bump needed.
	Moments int
}

// wireModel is the serialized form of a network.
type wireModel struct {
	Magic   string
	Version int
	Layers  []wireLayer
}

// Save writes the network to w in the versioned gob format.
func (n *Network) Save(w io.Writer) error {
	wm := wireModel{Magic: modelMagic, Version: modelVersion}
	for _, l := range n.layers {
		wl := wireLayer{
			InDim:    l.InDim(),
			OutDim:   l.OutDim(),
			Weights:  append([]float64(nil), l.W.Data...),
			Bias:     append([]float64(nil), l.B...),
			Act:      int(l.Act),
			KeepProb: l.KeepProb,
			Moments:  int(l.Moments),
		}
		wm.Layers = append(wm.Layers, wl)
	}
	if err := gob.NewEncoder(w).Encode(wm); err != nil {
		return fmt.Errorf("nn: encode model: %w", err)
	}
	return nil
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Network, error) {
	var wm wireModel
	if err := gob.NewDecoder(r).Decode(&wm); err != nil {
		return nil, fmt.Errorf("nn: decode model: %v: %w", err, ErrModel)
	}
	if wm.Magic != modelMagic {
		return nil, fmt.Errorf("nn: bad magic %q: %w: %w", wm.Magic, ErrModel, ErrConfig)
	}
	if wm.Version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d: %w: %w", wm.Version, ErrModel, ErrConfig)
	}
	layers := make([]*Layer, 0, len(wm.Layers))
	for i, wl := range wm.Layers {
		if wl.InDim < 1 || wl.OutDim < 1 || len(wl.Weights) != wl.InDim*wl.OutDim || len(wl.Bias) != wl.OutDim {
			return nil, fmt.Errorf("nn: layer %d has inconsistent shapes: %w: %w", i, ErrModel, ErrConfig)
		}
		act := Activation(wl.Act)
		if !act.Valid() {
			return nil, fmt.Errorf("nn: layer %d has invalid activation %d: %w: %w", i, wl.Act, ErrModel, ErrConfig)
		}
		moments := MomentMode(wl.Moments)
		if !moments.Valid() {
			return nil, fmt.Errorf("nn: layer %d has invalid moment mode %d: %w: %w", i, wl.Moments, ErrModel, ErrConfig)
		}
		if moments == MomentsExact {
			if _, ok := act.Rectifier(); !ok && act != ActIdentity {
				return nil, fmt.Errorf("nn: layer %d requests exact moments for %v (no closed form): %w: %w", i, act, ErrModel, ErrConfig)
			}
		}
		if !allFinite(wl.Weights) || !allFinite(wl.Bias) {
			return nil, fmt.Errorf("nn: layer %d has non-finite weights: %w: %w", i, ErrModel, ErrConfig)
		}
		w := tensor.NewMatrix(wl.InDim, wl.OutDim)
		copy(w.Data, wl.Weights)
		layers = append(layers, &Layer{
			W:        w,
			B:        append(tensor.Vector(nil), wl.Bias...),
			Act:      act,
			KeepProb: wl.KeepProb,
			Moments:  moments,
		})
	}
	net, err := FromLayers(layers)
	if err != nil {
		// FromLayers re-validates keep probabilities and inter-layer shapes;
		// from Load's perspective those are also model-data defects.
		return nil, fmt.Errorf("%w: %w", err, ErrModel)
	}
	return net, nil
}

// SaveFile writes the network to path, creating or truncating it.
func (n *Network) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nn: close %s: %w", path, cerr)
		}
	}()
	return n.Save(f)
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
