package nn

import "fmt"

// MomentMode selects the activation-moment backend a layer is propagated
// with: the general PWL closed form (paper §III, eqs. 7–26) or the exact
// analytical rectifier moments (Thompson & McCrory 2026). The mode is part
// of the model format (serialized per layer, covered by the fingerprint)
// because it changes the served numbers: two versions with identical
// weights but different modes must not share a compiled program.
type MomentMode int

const (
	// MomentsAuto defers to the propagator's default: exact for the
	// rectifier family (where the closed form dominates the PWL assembly at
	// equal modeled cost), PWL otherwise.
	MomentsAuto MomentMode = iota
	// MomentsPWL forces the piecewise-linear closed form.
	MomentsPWL
	// MomentsExact forces the exact analytical moments. Building a
	// propagator with MomentsExact on a layer outside the rectifier family
	// (tanh, sigmoid) is an error — there is no closed form to dispatch to.
	MomentsExact
)

// String returns the canonical manifest/report name of the mode.
func (m MomentMode) String() string {
	switch m {
	case MomentsAuto:
		return "auto"
	case MomentsPWL:
		return "pwl"
	case MomentsExact:
		return "exact"
	default:
		return fmt.Sprintf("moments(%d)", int(m))
	}
}

// Valid reports whether m is a defined mode.
func (m MomentMode) Valid() bool { return m >= MomentsAuto && m <= MomentsExact }

// ParseMomentMode converts a manifest string ("", "auto", "pwl", "exact")
// into a MomentMode.
func ParseMomentMode(s string) (MomentMode, error) {
	switch s {
	case "", "auto":
		return MomentsAuto, nil
	case "pwl":
		return MomentsPWL, nil
	case "exact":
		return MomentsExact, nil
	default:
		return 0, fmt.Errorf("nn: unknown activation_moments mode %q", s)
	}
}
