package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid network configurations.
var ErrConfig = errors.New("nn: invalid configuration")

// Layer is one fully-connected layer computing
//
//	y = (x ⊙ z) W + b,   x' = f(y)
//
// following the paper's convention (eq. 2): W is fanIn×fanOut, x is a row
// vector, and the dropout mask z ~ Bernoulli(KeepProb) multiplies the layer
// *input* (equivalently, zeroes rows of W).
type Layer struct {
	// W is the fanIn×fanOut weight matrix.
	W *tensor.Matrix
	// B is the fanOut-length bias vector.
	B tensor.Vector
	// Act is the non-linearity applied after the affine map.
	Act Activation
	// KeepProb is the Bernoulli keep probability p of the dropout mask on
	// this layer's input. 1 means no dropout.
	KeepProb float64
	// Moments selects the activation-moment backend for this layer
	// (MomentsAuto defers to the propagator default). Part of the model
	// format and the fingerprint; zero value preserves old behaviour.
	Moments MomentMode
}

// InDim returns the layer's input dimension.
func (l *Layer) InDim() int { return l.W.Rows }

// OutDim returns the layer's output dimension.
func (l *Layer) OutDim() int { return l.W.Cols }

// Network is a feed-forward fully-connected neural network.
type Network struct {
	layers []*Layer
}

// Config describes a network to construct.
type Config struct {
	// InputDim is the input feature dimension.
	InputDim int
	// Hidden lists the hidden-layer widths, e.g. {512, 512, 512, 512} for
	// the paper's 5-layer models.
	Hidden []int
	// OutputDim is the output dimension.
	OutputDim int
	// Activation is the hidden-layer non-linearity.
	Activation Activation
	// OutputActivation is the output-layer non-linearity (usually
	// ActIdentity; softmax is applied by the loss/estimator, not the
	// network).
	OutputActivation Activation
	// KeepProb is the dropout keep probability applied to the inputs of
	// every hidden-to-hidden and hidden-to-output layer. The raw input layer
	// is not dropped unless DropInput is set, matching common practice and
	// the paper's setup.
	KeepProb float64
	// DropInput also applies dropout to the raw input features.
	DropInput bool
	// Seed seeds the weight initialization.
	Seed int64
}

// New constructs a network with freshly initialized weights: He
// initialization for ReLU hidden layers, Glorot otherwise.
func New(cfg Config) (*Network, error) {
	if cfg.InputDim < 1 {
		return nil, fmt.Errorf("input dim %d: %w", cfg.InputDim, ErrConfig)
	}
	if cfg.OutputDim < 1 {
		return nil, fmt.Errorf("output dim %d: %w", cfg.OutputDim, ErrConfig)
	}
	// Phrased positively so NaN fails too: NaN <= 0 and NaN > 1 are both
	// false, which let a NaN keep probability slip through the naive form.
	if !(cfg.KeepProb > 0 && cfg.KeepProb <= 1) {
		return nil, fmt.Errorf("keep prob %v outside (0, 1]: %w", cfg.KeepProb, ErrConfig)
	}
	if !cfg.Activation.Valid() {
		return nil, fmt.Errorf("hidden activation %v: %w", cfg.Activation, ErrConfig)
	}
	if !cfg.OutputActivation.Valid() {
		return nil, fmt.Errorf("output activation %v: %w", cfg.OutputActivation, ErrConfig)
	}
	for i, h := range cfg.Hidden {
		if h < 1 {
			return nil, fmt.Errorf("hidden layer %d has width %d: %w", i, h, ErrConfig)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.OutputDim)

	net := &Network{layers: make([]*Layer, 0, len(dims)-1)}
	for i := 0; i+1 < len(dims); i++ {
		w := tensor.NewMatrix(dims[i], dims[i+1])
		act := cfg.Activation
		if i == len(dims)-2 {
			act = cfg.OutputActivation
		}
		if cfg.Activation == ActReLU {
			w.HeNormal(rng)
		} else {
			w.GlorotUniform(rng)
		}
		keep := cfg.KeepProb
		if i == 0 && !cfg.DropInput {
			keep = 1
		}
		net.layers = append(net.layers, &Layer{
			W:        w,
			B:        tensor.NewVector(dims[i+1]),
			Act:      act,
			KeepProb: keep,
		})
	}
	return net, nil
}

// FromLayers wraps pre-built layers into a network, validating that
// consecutive dimensions agree.
func FromLayers(layers []*Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("no layers: %w", ErrConfig)
	}
	for i, l := range layers {
		if l.W == nil || len(l.B) != l.W.Cols {
			return nil, fmt.Errorf("layer %d: bias/weight shape mismatch: %w", i, ErrConfig)
		}
		if !(l.KeepProb > 0 && l.KeepProb <= 1) { // positive phrasing rejects NaN
			return nil, fmt.Errorf("layer %d: keep prob %v: %w", i, l.KeepProb, ErrConfig)
		}
		if i > 0 && layers[i-1].W.Cols != l.W.Rows {
			return nil, fmt.Errorf("layer %d input %d != layer %d output %d: %w",
				i, l.W.Rows, i-1, layers[i-1].W.Cols, ErrConfig)
		}
	}
	return &Network{layers: layers}, nil
}

// Layers returns the network's layers. The slice is a copy but the layers
// themselves are shared; treat them as read-only unless you own the network.
func (n *Network) Layers() []*Layer {
	out := make([]*Layer, len(n.layers))
	copy(out, n.layers)
	return out
}

// NumLayers returns the layer count L.
func (n *Network) NumLayers() int { return len(n.layers) }

// InputDim returns the input feature dimension.
func (n *Network) InputDim() int { return n.layers[0].InDim() }

// OutputDim returns the output dimension.
func (n *Network) OutputDim() int { return n.layers[len(n.layers)-1].OutDim() }

// Forward runs the deterministic ("weight scaling") inference pass: each
// layer's input is multiplied by its keep probability instead of a sampled
// mask, which is the standard dropout test-time approximation of the expected
// network output.
func (n *Network) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("forward: input dim %d, want %d: %w", len(x), n.InputDim(), ErrConfig)
	}
	cur := x.Clone()
	for _, l := range n.layers {
		if l.KeepProb < 1 {
			for i := range cur {
				cur[i] *= l.KeepProb
			}
		}
		y := make(tensor.Vector, l.OutDim())
		l.W.MulVecInto(cur, y)
		for j := range y {
			y[j] = l.Act.Apply(y[j] + l.B[j])
		}
		cur = y
	}
	return cur, nil
}

// ForwardSample runs one stochastic pass with freshly sampled Bernoulli
// dropout masks, the primitive operation of MCDrop (paper §II-B). The rng
// must not be shared across goroutines.
func (n *Network) ForwardSample(x tensor.Vector, rng *rand.Rand) (tensor.Vector, error) {
	if len(x) != n.InputDim() {
		return nil, fmt.Errorf("forward-sample: input dim %d, want %d: %w", len(x), n.InputDim(), ErrConfig)
	}
	cur := x.Clone()
	for _, l := range n.layers {
		if l.KeepProb < 1 {
			for i := range cur {
				if rng.Float64() >= l.KeepProb {
					cur[i] = 0
				}
			}
		}
		y := make(tensor.Vector, l.OutDim())
		l.W.MulVecInto(cur, y)
		for j := range y {
			y[j] = l.Act.Apply(y[j] + l.B[j])
		}
		cur = y
	}
	return cur, nil
}

// Clone returns a deep copy of the network (weights, biases, metadata).
func (n *Network) Clone() *Network {
	layers := make([]*Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = &Layer{
			W:        l.W.Clone(),
			B:        l.B.Clone(),
			Act:      l.Act,
			KeepProb: l.KeepProb,
			Moments:  l.Moments,
		}
	}
	return &Network{layers: layers}
}

// Summary returns a one-line human-readable architecture description, e.g.
// "5->512(relu,keep=1)->512(relu,keep=0.9)->...->250(identity,keep=0.9)".
func (n *Network) Summary() string {
	s := fmt.Sprintf("%d", n.InputDim())
	for _, l := range n.layers {
		s += fmt.Sprintf("->%d(%s,keep=%g)", l.OutDim(), l.Act, l.KeepProb)
	}
	return s
}
