package nn

// Floating-point operation costs for the device cost model (internal/edison).
// A multiply-add counts as 2 FLOPs; transcendental functions are charged a
// fixed equivalent cost reflecting their polynomial-approximation expense on
// an in-order Atom-class core.
const (
	// FlopsTranscendental is the charged FLOP-equivalent cost of one
	// exp/tanh/erf evaluation.
	FlopsTranscendental = 20
	// FlopsRandom is the charged cost of drawing one Bernoulli mask element
	// (PRNG step + compare).
	FlopsRandom = 4
)

// activationFlops returns the per-element FLOP cost of applying a.
func activationFlops(a Activation) int64 {
	switch a {
	case ActTanh, ActSigmoid:
		return FlopsTranscendental
	case ActReLU:
		return 1
	default:
		return 0
	}
}

// ForwardFLOPs returns the FLOP count of one deterministic forward pass:
// matmuls, bias adds, keep-probability scaling, and activations.
func (n *Network) ForwardFLOPs() int64 {
	var total int64
	for _, l := range n.layers {
		in, out := int64(l.InDim()), int64(l.OutDim())
		total += 2 * in * out // multiply-add
		total += out          // bias
		if l.KeepProb < 1 {
			total += in // input scaling
		}
		total += out * activationFlops(l.Act)
	}
	return total
}

// SampleFLOPs returns the FLOP count of one stochastic dropout pass:
// the deterministic cost plus mask sampling.
func (n *Network) SampleFLOPs() int64 {
	var total int64
	for _, l := range n.layers {
		in, out := int64(l.InDim()), int64(l.OutDim())
		total += 2 * in * out
		total += out
		if l.KeepProb < 1 {
			total += in * FlopsRandom
		}
		total += out * activationFlops(l.Act)
	}
	return total
}

// Params returns the number of trainable parameters.
func (n *Network) Params() int64 {
	var total int64
	for _, l := range n.layers {
		total += int64(l.W.Rows*l.W.Cols) + int64(len(l.B))
	}
	return total
}
