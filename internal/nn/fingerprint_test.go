package nn

import (
	"bytes"
	"regexp"
	"testing"
)

func fingerprintNet(t *testing.T, seed int64) *Network {
	t.Helper()
	net, err := New(Config{
		InputDim: 3, Hidden: []int{8, 8}, OutputDim: 2,
		Activation: ActReLU, OutputActivation: ActIdentity,
		KeepProb: 0.9, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestFingerprintDeterministic: the fingerprint is a pure function of the
// network's contents — repeated calls and deep clones agree, and the value is
// a well-formed hex SHA-256.
func TestFingerprintDeterministic(t *testing.T) {
	net := fingerprintNet(t, 1)
	fp := net.Fingerprint()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(fp) {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}
	if again := net.Fingerprint(); again != fp {
		t.Errorf("fingerprint not stable: %s then %s", fp, again)
	}
	if cl := net.Clone().Fingerprint(); cl != fp {
		t.Errorf("clone fingerprint %s != original %s", cl, fp)
	}
}

// TestFingerprintSensitivity: every semantically meaningful field moves the
// fingerprint — one weight, one bias, a keep probability, an activation, and
// a different initialization each produce a distinct value.
func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintNet(t, 1).Fingerprint()
	seen := map[string]string{"base": base}
	check := func(name string, net *Network) {
		t.Helper()
		fp := net.Fingerprint()
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%s fingerprint collides with %s: %s", name, prev, fp)
			}
		}
		seen[name] = fp
	}

	net := fingerprintNet(t, 1)
	net.layers[0].W.Data[0] += 1e-9
	check("weight", net)

	net = fingerprintNet(t, 1)
	net.layers[1].B[0] = 0.5
	check("bias", net)

	net = fingerprintNet(t, 1)
	net.layers[1].KeepProb = 0.8
	check("keepprob", net)

	net = fingerprintNet(t, 1)
	net.layers[0].Act = ActTanh
	check("activation", net)

	check("seed", fingerprintNet(t, 2))
}

// TestFingerprintSurvivesRoundTrip: Save→Load preserves the fingerprint, the
// property that lets the registry detect on-disk model changes by content
// rather than by mtime.
func TestFingerprintSurvivesRoundTrip(t *testing.T) {
	net := fingerprintNet(t, 3)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Fingerprint(), net.Fingerprint(); got != want {
		t.Errorf("round-trip fingerprint %s != original %s", got, want)
	}
}
