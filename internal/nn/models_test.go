package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestModelRoundTripAll loads every checked-in model, verifies its weights
// are finite, and requires a Save/Load round trip to reproduce it bit-exactly
// — the guarantee that re-serializing a shipped model is always safe.
func TestModelRoundTripAll(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		// models/ is a gitignored local cache; a fresh clone has none.
		t.Skip("no cached models under ../../models; run cmd/apds-train")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			net, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := net.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.NumLayers() != net.NumLayers() {
				t.Fatalf("layer count %d != %d", back.NumLayers(), net.NumLayers())
			}
			for i, l := range net.Layers() {
				bl := back.Layers()[i]
				if !l.W.Equal(bl.W, 0) || !l.B.Equal(bl.B, 0) ||
					l.Act != bl.Act || l.KeepProb != bl.KeepProb {
					t.Fatalf("layer %d not bit-identical after round trip", i)
				}
			}
			x := tensor.NewVector(net.InputDim()) // zero input exercises biases
			a, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b, 0) {
				t.Fatal("forward pass differs after round trip")
			}
		})
	}
}

// TestLoadRejectsNonFinite checks that Load refuses models carrying NaN or
// ±Inf in any numeric field with a typed ErrModel. The NaN keep probability
// case is the regression for the naive `<= 0 || > 1` range check, which NaN
// passed.
func TestLoadRejectsNonFinite(t *testing.T) {
	encode := func(wm wireModel) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	layer := func(mut func(*wireLayer)) wireModel {
		wl := wireLayer{
			InDim: 2, OutDim: 2, Weights: []float64{1, 2, 3, 4}, Bias: []float64{0, 0},
			Act: int(ActReLU), KeepProb: 0.9,
		}
		mut(&wl)
		return wireModel{Magic: modelMagic, Version: modelVersion, Layers: []wireLayer{wl}}
	}
	cases := []struct {
		name string
		wm   wireModel
	}{
		{"nan weight", layer(func(wl *wireLayer) { wl.Weights[1] = math.NaN() })},
		{"inf weight", layer(func(wl *wireLayer) { wl.Weights[3] = math.Inf(1) })},
		{"nan bias", layer(func(wl *wireLayer) { wl.Bias[0] = math.NaN() })},
		{"neg inf bias", layer(func(wl *wireLayer) { wl.Bias[1] = math.Inf(-1) })},
		{"nan keep prob", layer(func(wl *wireLayer) { wl.KeepProb = math.NaN() })},
		{"inf keep prob", layer(func(wl *wireLayer) { wl.KeepProb = math.Inf(1) })},
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader(encode(c.wm))); !errors.Is(err, ErrModel) {
			t.Errorf("%s: err = %v, want ErrModel", c.name, err)
		}
	}
}

// TestLoadErrorsAreTyped pins the blanket contract FuzzLoadModel relies on:
// every Load rejection, whatever the cause, matches ErrModel.
func TestLoadErrorsAreTyped(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("garbage"),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireModel{Magic: "other", Version: 1}); err != nil {
		t.Fatal(err)
	}
	inputs = append(inputs, buf.Bytes())
	for i, data := range inputs {
		if _, err := Load(bytes.NewReader(data)); err == nil || !errors.Is(err, ErrModel) {
			t.Errorf("input %d: err = %v, want ErrModel", i, err)
		}
	}
}
