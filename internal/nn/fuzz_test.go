package nn

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// shippedModels returns the bytes of cached models under ../../models so the
// fuzzer starts from real, fully-valid gob streams and mutates from there —
// by far the fastest route to interesting decoder states. Large files are
// skipped: a megabyte-scale seed slows every mutation to a crawl, and the
// small quick-scale models exercise the same decoder paths.
func shippedModels(tb testing.TB) [][]byte {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.gob"))
	if err != nil {
		tb.Fatal(err)
	}
	const maxSeedBytes = 64 << 10
	var out [][]byte
	for _, p := range paths {
		if fi, err := os.Stat(p); err != nil || fi.Size() > maxSeedBytes {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

// FuzzLoadModel feeds arbitrary bytes to Load. The contract under fuzzing:
// Load never panics; every rejection is a typed error matching ErrModel; and
// anything Load accepts must survive a Save/Load round trip bit-exactly —
// accepting a stream it cannot faithfully re-serialize would mean the
// validation let malformed state through.
func FuzzLoadModel(f *testing.F) {
	for _, data := range shippedModels(f) {
		f.Add(data)
	}
	if net, err := New(Config{
		InputDim: 3, Hidden: []int{4}, OutputDim: 2,
		Activation: ActTanh, OutputActivation: ActIdentity,
		KeepProb: 0.8, Seed: 9,
	}); err == nil {
		var buf bytes.Buffer
		if err := net.Save(&buf); err == nil {
			valid := buf.Bytes()
			f.Add(valid)
			f.Add(valid[:len(valid)/2])              // truncated mid-stream
			flipped := append([]byte(nil), valid...) // one bit of damage
			flipped[len(flipped)/3] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrModel) {
				t.Fatalf("Load error is not typed ErrModel: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("accepted model failed to re-serialize: %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-serialized model failed to load: %v", err)
		}
		if back.NumLayers() != net.NumLayers() {
			t.Fatalf("round trip changed layer count: %d != %d", back.NumLayers(), net.NumLayers())
		}
		for i, l := range net.Layers() {
			bl := back.Layers()[i]
			if !l.W.Equal(bl.W, 0) || !l.B.Equal(bl.B, 0) ||
				l.Act != bl.Act || l.KeepProb != bl.KeepProb {
				t.Fatalf("round trip changed layer %d", i)
			}
		}
	})
}
