package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// TestPropertySaveLoadRoundTrip: any randomly shaped network survives
// serialization bit-exactly.
func TestPropertySaveLoadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hidden := make([]int, 1+rng.Intn(3))
		for i := range hidden {
			hidden[i] = 1 + rng.Intn(12)
		}
		acts := []Activation{ActIdentity, ActReLU, ActTanh, ActSigmoid}
		net, err := New(Config{
			InputDim: 1 + rng.Intn(8), Hidden: hidden, OutputDim: 1 + rng.Intn(5),
			Activation:       acts[rng.Intn(len(acts))],
			OutputActivation: acts[rng.Intn(len(acts))],
			KeepProb:         0.5 + rng.Float64()*0.5,
			Seed:             seed,
		})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil {
			return false
		}
		if back.NumLayers() != net.NumLayers() {
			return false
		}
		for i, l := range net.Layers() {
			bl := back.Layers()[i]
			if !l.W.Equal(bl.W, 0) || !l.B.Equal(bl.B, 0) ||
				l.Act != bl.Act || l.KeepProb != bl.KeepProb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoadTruncatedStream(t *testing.T) {
	net, err := New(Config{
		InputDim: 4, Hidden: []int{8}, OutputDim: 2,
		Activation: ActReLU, OutputActivation: ActIdentity,
		KeepProb: 0.9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes loaded successfully", cut, len(full))
		}
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	encode := func(wm wireModel) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := wireLayer{
		InDim: 1, OutDim: 1, Weights: []float64{1}, Bias: []float64{0},
		Act: int(ActIdentity), KeepProb: 1,
	}
	cases := []struct {
		name string
		wm   wireModel
	}{
		{"bad magic", wireModel{Magic: "nope", Version: modelVersion, Layers: []wireLayer{valid}}},
		{"future version", wireModel{Magic: modelMagic, Version: modelVersion + 1, Layers: []wireLayer{valid}}},
		{"short weights", wireModel{Magic: modelMagic, Version: modelVersion, Layers: []wireLayer{{
			InDim: 2, OutDim: 2, Weights: []float64{1}, Bias: []float64{0, 0}, Act: int(ActReLU), KeepProb: 1,
		}}}},
		{"bad activation", wireModel{Magic: modelMagic, Version: modelVersion, Layers: []wireLayer{{
			InDim: 1, OutDim: 1, Weights: []float64{1}, Bias: []float64{0}, Act: 99, KeepProb: 1,
		}}}},
		{"bad keep prob", wireModel{Magic: modelMagic, Version: modelVersion, Layers: []wireLayer{{
			InDim: 1, OutDim: 1, Weights: []float64{1}, Bias: []float64{0}, Act: int(ActReLU), KeepProb: 0,
		}}}},
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader(encode(c.wm))); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", c.name, err)
		}
	}
}

// TestLoadedModelPredictsIdentically: the semantic round-trip — every
// inference mode produces identical outputs after save/load.
func TestLoadedModelPredictsIdentically(t *testing.T) {
	net, err := New(Config{
		InputDim: 6, Hidden: []int{16, 16}, OutputDim: 3,
		Activation: ActSigmoid, OutputActivation: ActTanh,
		KeepProb: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, -0.5, 0.25, 2, 0, -1}
	a, _ := net.Forward(x)
	b, _ := back.Forward(x)
	if !a.Equal(b, 0) {
		t.Error("deterministic forward differs after round trip")
	}
	// Same RNG seed → same stochastic pass.
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	s1, _ := net.ForwardSample(x, r1)
	s2, _ := back.ForwardSample(x, r2)
	if !s1.Equal(s2, 0) {
		t.Error("stochastic forward differs after round trip")
	}
}
