package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func TestActivationApply(t *testing.T) {
	cases := []struct {
		a       Activation
		x, want float64
	}{
		{ActIdentity, 3.5, 3.5},
		{ActReLU, -2, 0},
		{ActReLU, 2, 2},
		{ActTanh, 0, 0},
		{ActTanh, 100, math.Tanh(100)},
		{ActSigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.a.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestActivationDerivativeNumeric(t *testing.T) {
	const h = 1e-6
	for _, a := range []Activation{ActIdentity, ActReLU, ActTanh, ActSigmoid} {
		for _, x := range []float64{-2.3, -0.7, 0.4, 1.9} {
			num := (a.Apply(x+h) - a.Apply(x-h)) / (2 * h)
			if got := a.Derivative(x); math.Abs(got-num) > 1e-5 {
				t.Errorf("%v.Derivative(%v) = %v, numeric %v", a, x, got, num)
			}
		}
	}
}

func TestActivationStringParseRoundTrip(t *testing.T) {
	for _, a := range []Activation{ActIdentity, ActReLU, ActTanh, ActSigmoid} {
		back, err := ParseActivation(a.String())
		if err != nil {
			t.Fatalf("ParseActivation(%q): %v", a.String(), err)
		}
		if back != a {
			t.Errorf("round trip %v -> %q -> %v", a, a.String(), back)
		}
	}
	if _, err := ParseActivation("swish"); err == nil {
		t.Error("expected error for unknown activation")
	}
	if !Activation(0).Valid() == false {
		t.Error("Activation(0) should be invalid")
	}
	if Activation(99).String() == "" {
		t.Error("unknown activation should still String()")
	}
}

func defaultCfg() Config {
	return Config{
		InputDim:         4,
		Hidden:           []int{8, 8},
		OutputDim:        3,
		Activation:       ActReLU,
		OutputActivation: ActIdentity,
		KeepProb:         0.9,
		Seed:             1,
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.InputDim = 0 },
		func(c *Config) { c.OutputDim = 0 },
		func(c *Config) { c.KeepProb = 0 },
		func(c *Config) { c.KeepProb = 1.5 },
		func(c *Config) { c.Activation = 0 },
		func(c *Config) { c.OutputActivation = 99 },
		func(c *Config) { c.Hidden = []int{8, 0} },
	}
	for i, mutate := range bad {
		cfg := defaultCfg()
		mutate(&cfg)
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestNewShapes(t *testing.T) {
	net, err := New(defaultCfg())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if net.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", net.NumLayers())
	}
	if net.InputDim() != 4 || net.OutputDim() != 3 {
		t.Errorf("dims = (%d, %d), want (4, 3)", net.InputDim(), net.OutputDim())
	}
	// First layer keeps input undropped by default.
	if net.Layers()[0].KeepProb != 1 {
		t.Errorf("layer 0 keep = %v, want 1", net.Layers()[0].KeepProb)
	}
	if net.Layers()[1].KeepProb != 0.9 {
		t.Errorf("layer 1 keep = %v, want 0.9", net.Layers()[1].KeepProb)
	}
	// Output layer uses the output activation.
	if net.Layers()[2].Act != ActIdentity {
		t.Errorf("output act = %v, want identity", net.Layers()[2].Act)
	}
	if net.Params() != int64(4*8+8+8*8+8+8*3+3) {
		t.Errorf("Params = %d", net.Params())
	}
}

func TestDropInput(t *testing.T) {
	cfg := defaultCfg()
	cfg.DropInput = true
	net, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if net.Layers()[0].KeepProb != 0.9 {
		t.Errorf("layer 0 keep = %v, want 0.9", net.Layers()[0].KeepProb)
	}
}

func TestForwardDeterministic(t *testing.T) {
	// Hand-built 2->2->1 network with known weights, no dropout.
	w1, _ := tensor.FromRows([][]float64{{1, -1}, {2, 0}})
	w2, _ := tensor.FromRows([][]float64{{1}, {1}})
	net, err := FromLayers([]*Layer{
		{W: w1, B: tensor.Vector{0.5, 0}, Act: ActReLU, KeepProb: 1},
		{W: w2, B: tensor.Vector{-1}, Act: ActIdentity, KeepProb: 1},
	})
	if err != nil {
		t.Fatalf("FromLayers: %v", err)
	}
	// x = [1, 1]: pre1 = [1+2+0.5, -1] = [3.5, -1] -> relu [3.5, 0]
	// out = 3.5 + 0 - 1 = 2.5.
	out, err := net.Forward(tensor.Vector{1, 1})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if math.Abs(out[0]-2.5) > 1e-12 {
		t.Errorf("Forward = %v, want 2.5", out[0])
	}
	// Same input twice gives the same result.
	out2, _ := net.Forward(tensor.Vector{1, 1})
	if out[0] != out2[0] {
		t.Error("deterministic forward is not deterministic")
	}
	if _, err := net.Forward(tensor.Vector{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("wrong input dim err = %v, want ErrConfig", err)
	}
}

func TestForwardWeightScaling(t *testing.T) {
	// With keep prob p on a layer input, the deterministic pass scales by p.
	w, _ := tensor.FromRows([][]float64{{2}})
	net, err := FromLayers([]*Layer{
		{W: w, B: tensor.Vector{0}, Act: ActIdentity, KeepProb: 0.5},
	})
	if err != nil {
		t.Fatalf("FromLayers: %v", err)
	}
	out, err := net.Forward(tensor.Vector{3})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if math.Abs(out[0]-3) > 1e-12 { // 3 * 0.5 * 2
		t.Errorf("weight-scaled forward = %v, want 3", out[0])
	}
}

func TestForwardSampleMatchesExpectation(t *testing.T) {
	// The mean of many stochastic passes approaches the weight-scaled
	// deterministic pass for a LINEAR network (exact in expectation).
	w, _ := tensor.FromRows([][]float64{{1, 2}, {3, 4}, {-1, 1}})
	net, err := FromLayers([]*Layer{
		{W: w, B: tensor.Vector{0.1, -0.2}, Act: ActIdentity, KeepProb: 0.7},
	})
	if err != nil {
		t.Fatalf("FromLayers: %v", err)
	}
	x := tensor.Vector{1, -2, 0.5}
	det, _ := net.Forward(x)

	rng := rand.New(rand.NewSource(99))
	mean := make(tensor.Vector, 2)
	const samples = 200000
	for i := 0; i < samples; i++ {
		s, err := net.ForwardSample(x, rng)
		if err != nil {
			t.Fatalf("ForwardSample: %v", err)
		}
		mean[0] += s[0]
		mean[1] += s[1]
	}
	mean[0] /= samples
	mean[1] /= samples
	for j := range det {
		if math.Abs(mean[j]-det[j]) > 0.02 {
			t.Errorf("dim %d: sample mean %v vs deterministic %v", j, mean[j], det[j])
		}
	}
	if _, err := net.ForwardSample(tensor.Vector{1}, rng); !errors.Is(err, ErrConfig) {
		t.Errorf("wrong input dim err = %v, want ErrConfig", err)
	}
}

func TestForwardSampleStochastic(t *testing.T) {
	cfg := defaultCfg()
	cfg.KeepProb = 0.5
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := tensor.Vector{1, 2, 3, 4}
	a, _ := net.ForwardSample(x, rng)
	var differs bool
	for i := 0; i < 20 && !differs; i++ {
		b, _ := net.ForwardSample(x, rng)
		if !a.Equal(b, 1e-15) {
			differs = true
		}
	}
	if !differs {
		t.Error("20 stochastic passes all identical; dropout masks not sampled")
	}
}

func TestFromLayersValidation(t *testing.T) {
	w1 := tensor.NewMatrix(2, 3)
	w2 := tensor.NewMatrix(4, 1) // mismatched: 3 != 4
	_, err := FromLayers([]*Layer{
		{W: w1, B: tensor.NewVector(3), Act: ActReLU, KeepProb: 1},
		{W: w2, B: tensor.NewVector(1), Act: ActIdentity, KeepProb: 1},
	})
	if !errors.Is(err, ErrConfig) {
		t.Errorf("dim mismatch err = %v, want ErrConfig", err)
	}
	if _, err := FromLayers(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty err = %v, want ErrConfig", err)
	}
	if _, err := FromLayers([]*Layer{{W: w1, B: tensor.NewVector(2), Act: ActReLU, KeepProb: 1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad bias err = %v, want ErrConfig", err)
	}
	if _, err := FromLayers([]*Layer{{W: w1, B: tensor.NewVector(3), Act: ActReLU, KeepProb: 0}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad keep err = %v, want ErrConfig", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	net, err := New(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	cl := net.Clone()
	cl.Layers()[0].W.Set(0, 0, 12345)
	if net.Layers()[0].W.At(0, 0) == 12345 {
		t.Error("Clone shares weight storage")
	}
	x := tensor.Vector{1, 2, 3, 4}
	a, _ := net.Forward(x)
	net2 := net.Clone()
	b, _ := net2.Forward(x)
	if !a.Equal(b, 0) {
		t.Error("Clone changes outputs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := defaultCfg()
	cfg.Activation = ActTanh
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := tensor.Vector{0.1, -0.4, 2, 0}
	a, _ := net.Forward(x)
	b, _ := back.Forward(x)
	if !a.Equal(b, 0) {
		t.Error("round-tripped network differs")
	}
	if back.Summary() != net.Summary() {
		t.Errorf("summary mismatch: %s vs %s", back.Summary(), net.Summary())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gob")
	net, err := New(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Params() != net.Params() {
		t.Error("param count mismatch after file round trip")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a model")); err == nil {
		t.Error("expected decode error")
	}
}

func TestFLOPCounts(t *testing.T) {
	net, err := New(Config{
		InputDim: 10, Hidden: []int{20}, OutputDim: 5,
		Activation: ActReLU, OutputActivation: ActIdentity,
		KeepProb: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1: 2*10*20 matmul + 20 bias + 20 relu = 440 (keep=1 on input).
	// Layer 2: 2*20*5 + 5 bias + 20 scaling = 225.
	want := int64(440 + 225)
	if got := net.ForwardFLOPs(); got != want {
		t.Errorf("ForwardFLOPs = %d, want %d", got, want)
	}
	// Sampling replaces the 20-element scaling with 20*FlopsRandom mask draws.
	wantSample := int64(440 + 200 + 5 + 20*FlopsRandom)
	if got := net.SampleFLOPs(); got != wantSample {
		t.Errorf("SampleFLOPs = %d, want %d", got, wantSample)
	}
	// Tanh nets must cost more than ReLU nets of the same shape.
	tanhNet, err := New(Config{
		InputDim: 10, Hidden: []int{20}, OutputDim: 5,
		Activation: ActTanh, OutputActivation: ActIdentity,
		KeepProb: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tanhNet.ForwardFLOPs() <= net.ForwardFLOPs() {
		t.Error("tanh forward should cost more FLOPs than relu")
	}
}

// Property: ForwardSample with keep prob 1 equals the deterministic Forward.
func TestPropertyNoDropoutSampleEqualsForward(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{
			InputDim: 3, Hidden: []int{6, 6}, OutputDim: 2,
			Activation: ActTanh, OutputActivation: ActIdentity,
			KeepProb: 1, Seed: seed,
		}
		net, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		x := tensor.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		a, err1 := net.Forward(x)
		b, err2 := net.ForwardSample(x, rng)
		return err1 == nil && err2 == nil && a.Equal(b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
