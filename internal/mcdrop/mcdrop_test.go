package mcdrop

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

func testNet(t *testing.T, keep float64) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.Config{
		InputDim: 4, Hidden: []int{12, 12}, OutputDim: 3,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: keep, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	net := testNet(t, 0.9)
	if _, err := New(net, 1, 0, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("k=1 err = %v, want ErrConfig", err)
	}
	if _, err := New(net, 10, -1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("neg obsVar err = %v, want ErrConfig", err)
	}
}

func TestName(t *testing.T) {
	net := testNet(t, 0.9)
	e, err := New(net, 30, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "MCDrop-30" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.K() != 30 {
		t.Errorf("K = %d", e.K())
	}
}

func TestPredictMomentsConvergeToApDeepSense(t *testing.T) {
	// With a very large k, MCDrop's moments should approach the closed-form
	// ApDeepSense moments for a ReLU network (where the PWL is exact).
	net := testNet(t, 0.8)
	apds, err := core.NewApDeepSense(net, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(net, 40000, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, -0.5, 0.25, 2}
	want, err := apds.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	// MCDrop at k = 40000 is near ground truth; ApDeepSense carries the bias
	// of its diagonal-covariance assumption, which is pronounced on a narrow
	// 12-unit network. Agreement must be same-order, not exact — the paper's
	// own §IV-D frames this as ApDeepSense's bias-variance tradeoff.
	for j := 0; j < 3; j++ {
		if math.Abs(got.Mean[j]-want.Mean[j]) > 0.15*math.Sqrt(want.Var[j])+0.02 {
			t.Errorf("out %d: MCDrop mean %v vs ApDeepSense %v", j, got.Mean[j], want.Mean[j])
		}
		if want.Var[j] > 1e-6 {
			ratio := got.Var[j] / want.Var[j]
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("out %d: MCDrop var %v vs ApDeepSense %v (ratio %v)", j, got.Var[j], want.Var[j], ratio)
			}
		}
	}
}

func TestPredictSmallKVarianceIsNoisy(t *testing.T) {
	// With k = 3 the variance estimate varies wildly across calls — the
	// instability that destroys MCDrop-3's NLL in the paper.
	net := testNet(t, 0.7)
	mc, err := New(net, 3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 1, 1, 1}
	var lo, hi float64 = math.Inf(1), 0
	for i := 0; i < 50; i++ {
		g, err := mc.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		v := g.Var[0]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 5*lo {
		t.Errorf("k=3 variance range [%v, %v] suspiciously stable", lo, hi)
	}
}

func TestObsVarAdded(t *testing.T) {
	net := testNet(t, 1) // no dropout: sample variance is exactly 0
	mc, err := New(net, 5, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := mc.Predict(tensor.Vector{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range g.Var {
		if math.Abs(v-2.5) > 1e-12 {
			t.Errorf("var[%d] = %v, want obsVar 2.5", j, v)
		}
	}
}

func TestPredictProbs(t *testing.T) {
	net := testNet(t, 0.8)
	mc, err := New(net, 20, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mc.PredictProbs(tensor.Vector{0.3, -1, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Errorf("probs sum to %v", p.Sum())
	}
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("prob %v outside [0,1]", v)
		}
	}
}

func TestPredictErrorsOnBadInput(t *testing.T) {
	net := testNet(t, 0.9)
	mc, err := New(net, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Predict(tensor.Vector{1}); err == nil {
		t.Error("expected error for wrong input dim")
	}
	if _, err := mc.PredictProbs(tensor.Vector{1}); err == nil {
		t.Error("expected error for wrong input dim")
	}
}

func TestCostScalesWithK(t *testing.T) {
	net := testNet(t, 0.9)
	mc3, _ := New(net, 3, 0, 1)
	mc30, _ := New(net, 30, 0, 1)
	c3, c30 := mc3.Cost(), mc30.Cost()
	if c30.DenseFLOPs != 10*c3.DenseFLOPs {
		t.Errorf("DenseFLOPs %d vs 10x %d", c30.DenseFLOPs, c3.DenseFLOPs)
	}
	if c30.RandomDraws != 10*c3.RandomDraws {
		t.Errorf("RandomDraws %d vs 10x %d", c30.RandomDraws, c3.RandomDraws)
	}
	if c3.RandomDraws == 0 {
		t.Error("dropout net should report random draws")
	}
}

// TestWorkersOption pins the fan-out selection rules: default is GOMAXPROCS
// capped at k, and explicit widths pass through.
func TestWorkersOption(t *testing.T) {
	net := testNet(t, 0.9)
	seq, err := New(net, 10, 0, 1, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Workers() != 1 {
		t.Errorf("WithWorkers(1) Workers = %d", seq.Workers())
	}
	wide, err := New(net, 4, 0, 1, WithWorkers(16))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Workers() != 4 {
		t.Errorf("workers should cap at k: Workers = %d, want 4", wide.Workers())
	}
	def, err := New(net, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d, want GOMAXPROCS %d", def.Workers(), runtime.GOMAXPROCS(0))
	}
}

// TestParallelPredictDeterministic: for a fixed (seed, workers) config the
// parallel sampler is fully deterministic — two estimators built alike agree
// bit-for-bit, and repeated calls advance the streams consistently.
func TestParallelPredictDeterministic(t *testing.T) {
	net := testNet(t, 0.8)
	x := tensor.Vector{0.5, -1, 2, 0.1}
	a, err := New(net, 64, 0.01, 7, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(net, 64, 0.01, 7, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		ga, err := a.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if !ga.Mean.Equal(gb.Mean, 0) || !ga.Var.Equal(gb.Var, 0) {
			t.Fatalf("call %d: same-config estimators disagree: %v/%v vs %v/%v",
				call, ga.Mean, ga.Var, gb.Mean, gb.Var)
		}
	}
}

// TestParallelMomentsMatchSequential is the satellite's moment-equivalence
// contract: the parallel sampler draws different mask sequences than the
// sequential one, so outputs are not bit-identical, but at large k both must
// estimate the same underlying predictive distribution.
func TestParallelMomentsMatchSequential(t *testing.T) {
	net := testNet(t, 0.8)
	x := tensor.Vector{1, -0.5, 0.25, 2}
	const k = 20000
	seq, err := New(net, k, 0, 3, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(net, k, 0, 3, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	gs, err := seq.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := par.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range gs.Mean {
		// Monte-Carlo standard error of the mean is sqrt(var/k); allow 5σ.
		se := 5 * math.Sqrt(gs.Var[j]/float64(k))
		if math.Abs(gp.Mean[j]-gs.Mean[j]) > se+1e-9 {
			t.Errorf("out %d: parallel mean %v vs sequential %v (tol %v)",
				j, gp.Mean[j], gs.Mean[j], se)
		}
		if gs.Var[j] > 1e-9 {
			ratio := gp.Var[j] / gs.Var[j]
			if ratio < 0.9 || ratio > 1.1 {
				t.Errorf("out %d: parallel var %v vs sequential %v (ratio %v)",
					j, gp.Var[j], gs.Var[j], ratio)
			}
		}
	}
}

// TestParallelObsVarAdded mirrors TestObsVarAdded on the parallel path: with
// no dropout the sample variance collapses to exactly obsVar regardless of
// how the passes are chunked.
func TestParallelObsVarAdded(t *testing.T) {
	net := testNet(t, 1)
	mc, err := New(net, 8, 1.5, 1, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := mc.Predict(tensor.Vector{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range g.Var {
		if math.Abs(v-1.5) > 1e-12 {
			t.Errorf("var[%d] = %v, want obsVar 1.5", j, v)
		}
	}
}

// TestParallelPredictErrorsOnBadInput: worker errors surface, not panic.
func TestParallelPredictErrorsOnBadInput(t *testing.T) {
	net := testNet(t, 0.9)
	mc, err := New(net, 8, 0, 1, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Predict(tensor.Vector{1}); err == nil {
		t.Error("expected error for wrong input dim")
	}
}

func TestConcurrentPredict(t *testing.T) {
	net := testNet(t, 0.8)
	mc, err := New(net, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 2, 3, 4}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 25; i++ {
				if _, err := mc.Predict(x); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
