// Package mcdrop implements the MCDrop-k baseline (Gal & Ghahramani, the
// paper's reference algorithm [21]): run the dropout network k times with
// freshly sampled Bernoulli masks and estimate the predictive mean and
// variance from the k output samples. It is unbiased but costs k full
// forward passes, which is exactly the expense ApDeepSense removes.
package mcdrop

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid estimator configurations.
var ErrConfig = errors.New("mcdrop: invalid configuration")

// Estimator is the MCDrop-k sampling estimator. It implements
// core.Estimator. The internal RNG is guarded by a mutex, so the estimator
// is safe for concurrent use (predictions remain stochastic either way).
type Estimator struct {
	net    *nn.Network
	k      int
	obsVar float64

	mu  sync.Mutex
	rng *rand.Rand
}

var _ core.Estimator = (*Estimator)(nil)

// New builds an MCDrop estimator drawing k stochastic passes per prediction.
// obsVar (>= 0) is the observation-noise variance added to the sample
// variance, and seed drives the dropout masks.
func New(net *nn.Network, k int, obsVar float64, seed int64) (*Estimator, error) {
	if k < 2 {
		return nil, fmt.Errorf("k = %d, need >= 2 for a variance estimate: %w", k, ErrConfig)
	}
	if obsVar < 0 {
		return nil, fmt.Errorf("negative obsVar %v: %w", obsVar, ErrConfig)
	}
	return &Estimator{
		net:    net,
		k:      k,
		obsVar: obsVar,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements core.Estimator, e.g. "MCDrop-10".
func (e *Estimator) Name() string { return fmt.Sprintf("MCDrop-%d", e.k) }

// K returns the sample count.
func (e *Estimator) K() int { return e.k }

// Predict implements core.Estimator: the sample mean and unbiased sample
// variance of k stochastic forward passes (paper §II-B). With small k the
// variance estimate is noisy and can collapse toward zero, which is what
// drives MCDrop's poor NLL at k = 3 in Tables I–IV.
func (e *Estimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	acc := stats.NewVecWelford(e.net.OutputDim())
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := 0; s < e.k; s++ {
		y, err := e.net.ForwardSample(x, e.rng)
		if err != nil {
			return core.GaussianVec{}, fmt.Errorf("mcdrop: pass %d: %w", s, err)
		}
		acc.Add(y)
	}
	g := core.GaussianVec{Mean: acc.Mean(), Var: acc.SampleVariance()}
	for i := range g.Var {
		g.Var[i] += e.obsVar
	}
	return g, nil
}

// PredictProbs implements core.Estimator: the mean softmax over k stochastic
// passes, the standard MCDrop classification estimate.
func (e *Estimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	out := tensor.NewVector(e.net.OutputDim())
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := 0; s < e.k; s++ {
		y, err := e.net.ForwardSample(x, e.rng)
		if err != nil {
			return nil, fmt.Errorf("mcdrop: pass %d: %w", s, err)
		}
		p := core.Softmax(y)
		for i := range out {
			out[i] += p[i]
		}
	}
	inv := 1.0 / float64(e.k)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Cost implements core.Estimator: k stochastic passes plus the per-sample
// moment accumulation (two element-op passes over the outputs per sample).
func (e *Estimator) Cost() edison.Cost {
	per := core.ForwardPassCost(e.net)
	per.ElementOps += 2 * int64(e.net.OutputDim())
	return per.Scale(int64(e.k))
}
