// Package mcdrop implements the MCDrop-k baseline (Gal & Ghahramani, the
// paper's reference algorithm [21]): run the dropout network k times with
// freshly sampled Bernoulli masks and estimate the predictive mean and
// variance from the k output samples. It is unbiased but costs k full
// forward passes, which is exactly the expense ApDeepSense removes.
//
// Predict fans its k passes across a worker pool by default, so baseline
// timings in figure/table reproductions reflect what the hardware can
// actually deliver rather than a single core; WithWorkers(1) restores the
// sequential single-stream sampler (the historical behavior) exactly.
package mcdrop

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// ErrConfig is returned (wrapped) for invalid estimator configurations.
var ErrConfig = errors.New("mcdrop: invalid configuration")

// Estimator is the MCDrop-k sampling estimator. It implements
// core.Estimator. Predictions are serialized on an internal mutex (the
// sampler streams are stateful across calls), so the estimator is safe for
// concurrent use; within one Predict the k passes run across the worker
// pool.
type Estimator struct {
	net     *nn.Network
	k       int
	obsVar  float64
	workers int

	mu sync.Mutex
	// rng drives the sequential (workers == 1) sampler and PredictProbs.
	rng *rand.Rand
	// streams are the per-worker deterministic RNG streams of the parallel
	// sampler, derived from the seed with splitmix64 so every worker's mask
	// sequence is independent and reproducible. stream w samples the passes
	// of chunk w; moments merge in chunk order, so a given (seed, workers)
	// pair always produces the same estimate.
	streams []*rand.Rand
}

var _ core.Estimator = (*Estimator)(nil)

// Option configures optional estimator behavior.
type Option func(*Estimator)

// WithWorkers sets how many goroutines Predict fans its k passes across.
// n <= 0 (the default) selects runtime.GOMAXPROCS(0). n == 1 selects the
// sequential single-stream sampler, reproducing the pre-parallel results
// exactly.
func WithWorkers(n int) Option {
	return func(e *Estimator) { e.workers = n }
}

// New builds an MCDrop estimator drawing k stochastic passes per prediction.
// obsVar (>= 0) is the observation-noise variance added to the sample
// variance, and seed drives the dropout masks.
func New(net *nn.Network, k int, obsVar float64, seed int64, opts ...Option) (*Estimator, error) {
	if k < 2 {
		return nil, fmt.Errorf("k = %d, need >= 2 for a variance estimate: %w", k, ErrConfig)
	}
	if obsVar < 0 {
		return nil, fmt.Errorf("negative obsVar %v: %w", obsVar, ErrConfig)
	}
	e := &Estimator{
		net:    net,
		k:      k,
		obsVar: obsVar,
		rng:    rand.New(rand.NewSource(seed)),
	}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.workers > k {
		e.workers = k
	}
	if e.workers > 1 {
		e.streams = make([]*rand.Rand, e.workers)
		for w := range e.streams {
			e.streams[w] = rand.New(rand.NewSource(splitmix64(seed, int64(w))))
		}
	}
	return e, nil
}

// splitmix64 derives a well-mixed per-worker seed from (seed, idx):
// sequential seeds fed straight into math/rand sources produce visibly
// correlated early outputs, so the streams are decorrelated first.
func splitmix64(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(idx)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Name implements core.Estimator, e.g. "MCDrop-10".
func (e *Estimator) Name() string { return fmt.Sprintf("MCDrop-%d", e.k) }

// K returns the sample count.
func (e *Estimator) K() int { return e.k }

// Workers returns the Predict fan-out width.
func (e *Estimator) Workers() int { return e.workers }

// Predict implements core.Estimator: the sample mean and unbiased sample
// variance of k stochastic forward passes (paper §II-B). With small k the
// variance estimate is noisy and can collapse toward zero, which is what
// drives MCDrop's poor NLL at k = 3 in Tables I–IV.
//
// With workers > 1 the k passes are split into contiguous chunks, one per
// worker stream; each worker accumulates its chunk's moments locally and the
// chunks merge in order (stats.VecWelford.Merge), so the estimate is
// deterministic for a fixed (seed, workers) and statistically identical to
// the sequential sampler.
func (e *Estimator) Predict(x tensor.Vector) (core.GaussianVec, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var acc *stats.VecWelford
	var err error
	if e.workers == 1 {
		acc, err = e.sampleSeq(x)
	} else {
		acc, err = e.samplePar(x)
	}
	if err != nil {
		return core.GaussianVec{}, err
	}
	g := core.GaussianVec{Mean: acc.Mean(), Var: acc.SampleVariance()}
	for i := range g.Var {
		g.Var[i] += e.obsVar
	}
	return g, nil
}

// sampleSeq is the historical single-stream sampler. Caller holds e.mu.
func (e *Estimator) sampleSeq(x tensor.Vector) (*stats.VecWelford, error) {
	acc := stats.NewVecWelford(e.net.OutputDim())
	for s := 0; s < e.k; s++ {
		y, err := e.net.ForwardSample(x, e.rng)
		if err != nil {
			return nil, fmt.Errorf("mcdrop: pass %d: %w", s, err)
		}
		acc.Add(y)
	}
	return acc, nil
}

// samplePar fans the k passes across the worker streams. Caller holds e.mu,
// which is what makes reusing the stateful streams safe. Chunks are
// contiguous and merged in worker order, so the only cross-worker coupling
// is the final deterministic merge.
func (e *Estimator) samplePar(x tensor.Vector) (*stats.VecWelford, error) {
	var (
		wg    sync.WaitGroup
		accs  = make([]*stats.VecWelford, e.workers)
		errs  = make([]error, e.workers)
		chunk = (e.k + e.workers - 1) / e.workers
	)
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.k {
			hi = e.k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := stats.NewVecWelford(e.net.OutputDim())
			rng := e.streams[w]
			for s := lo; s < hi; s++ {
				y, err := e.net.ForwardSample(x, rng)
				if err != nil {
					errs[w] = fmt.Errorf("mcdrop: pass %d: %w", s, err)
					return
				}
				acc.Add(y)
			}
			accs[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := stats.NewVecWelford(e.net.OutputDim())
	for w := range accs {
		if errs[w] != nil {
			return nil, errs[w]
		}
		acc.Merge(accs[w])
	}
	return acc, nil
}

// PredictProbs implements core.Estimator: the mean softmax over k stochastic
// passes, the standard MCDrop classification estimate.
func (e *Estimator) PredictProbs(x tensor.Vector) (tensor.Vector, error) {
	out := tensor.NewVector(e.net.OutputDim())
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := 0; s < e.k; s++ {
		y, err := e.net.ForwardSample(x, e.rng)
		if err != nil {
			return nil, fmt.Errorf("mcdrop: pass %d: %w", s, err)
		}
		p := core.Softmax(y)
		for i := range out {
			out[i] += p[i]
		}
	}
	inv := 1.0 / float64(e.k)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Cost implements core.Estimator: k stochastic passes plus the per-sample
// moment accumulation (two element-op passes over the outputs per sample).
func (e *Estimator) Cost() edison.Cost {
	per := core.ForwardPassCost(e.net)
	per.ElementOps += 2 * int64(e.net.OutputDim())
	return per.Scale(int64(e.k))
}
