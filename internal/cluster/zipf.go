package cluster

import (
	"fmt"
	"math/rand"
)

// Zipf generates request keys under a Zipf(s) popularity law: key ordinal 0
// is the hottest, and the probability of ordinal k falls off as
// 1/(v+k)^s. The cluster bench uses it for the hot-key scenario — real IoT
// fleets are never uniform; a handful of chatty devices dominate — and the
// router's spillover exists exactly for the shard those ordinals hash to.
//
// The generator is deterministic for a given (seed, s, v, n): two bench runs
// with the same parameters replay the same key sequence, which is what makes
// before/after comparisons of BENCH_cluster.json meaningful. It is not safe
// for concurrent use; give each load-generating goroutine its own Zipf with
// a distinct seed.
type Zipf struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    uint64
}

// NewZipf returns a deterministic Zipf key generator over n ordinals
// [0, n) with exponent s > 1 and offset v >= 1 (v=1 is the classic law),
// seeded by seed.
func NewZipf(seed int64, s, v float64, n uint64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("cluster: zipf needs n > 0")
	}
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("cluster: zipf needs s > 1 and v >= 1 (got s=%v v=%v)", s, v)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, v, n-1)
	if z == nil {
		return nil, fmt.Errorf("cluster: invalid zipf parameters s=%v v=%v n=%d", s, v, n)
	}
	return &Zipf{rng: rng, zipf: z, n: n}, nil
}

// Next returns the next ordinal in [0, n), hot ordinals most often.
func (z *Zipf) Next() uint64 { return z.zipf.Uint64() }

// NextKey returns the next ordinal formatted as a stable key string
// ("dev-<ordinal>"), the form the bench sends as X-Shard-Key.
func (z *Zipf) NextKey() string { return fmt.Sprintf("dev-%d", z.Next()) }
