package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Router defaults. FailAfter/ReadmitAfter of 2 means one lost probe does not
// eject a shard and one lucky probe does not re-admit a flapping one.
const (
	DefaultProbeInterval   = 250 * time.Millisecond
	DefaultProbeTimeout    = time.Second
	DefaultFailAfter       = 2
	DefaultReadmitAfter    = 2
	DefaultMaxSpill        = 2
	DefaultMaxRequestBytes = 1 << 20
	DefaultShedRetryAfter  = time.Second
)

// RouterConfig configures a front-door Router.
type RouterConfig struct {
	// Replicas are the base URLs of the replica servers (e.g.
	// "http://127.0.0.1:8081"). At least one is required.
	Replicas []string
	// VNodes per shard on the routing ring; <= 0 selects DefaultVNodes.
	VNodes int
	// ProbeInterval is the background health-probe period. Zero selects
	// DefaultProbeInterval; negative disables the background loop entirely
	// (tests then drive health through CheckNow).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe. Zero selects DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// FailAfter consecutive probe failures eject a shard from the ring;
	// ReadmitAfter consecutive successes re-admit it. Zero selects the
	// defaults (2 and 2).
	FailAfter    int
	ReadmitAfter int
	// MaxSpill is how many ring successors a request may spill to after its
	// owner refuses or fails (0 disables spillover; zero-value selects
	// DefaultMaxSpill via <0 sentinel — pass -1 for "no spill").
	MaxSpill int
	// MaxRequestBytes bounds the buffered request body. Zero selects
	// DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// ShedRetryAfter is the Retry-After hint used when shedding without any
	// upstream-provided hint. Zero selects DefaultShedRetryAfter.
	ShedRetryAfter time.Duration
	// Metrics receives router events; nil disables instrumentation.
	Metrics *Metrics
	// Client performs upstream requests; nil builds one with sane pooling.
	Client *http.Client
	// Logf receives router lifecycle logs; nil silences them.
	Logf func(format string, args ...any)
}

// shardState is one replica's health ledger, guarded by Router.mu.
type shardState struct {
	up      bool
	drained bool
	fails   int // consecutive probe failures
	oks     int // consecutive probe successes while down
}

// Router is the cluster front door: an http.Handler that owns the routing
// ring, probes replica health, proxies prediction traffic by shard key, and
// sheds load with honest Retry-After pricing when the fleet is saturated.
//
// Routing contract (mirrors examples/server so the router is drop-in):
//
//	POST /predict                       proxy by shard key
//	POST /v1/models/{name}/predict      proxy by shard key
//	GET  /v1/models                     proxy to any live shard
//	GET  /readyz                        aggregate readiness (200 iff ring non-empty)
//	POST /cluster/drain?shard=URL       remove shard from ring, wait for in-flight
//	POST /cluster/rejoin?shard=URL      undo a drain
//
// The shard key is the first of: X-Shard-Key header, X-Request-ID header,
// client host. Keys hash through internal/hashkey — the same avalanche hash
// the registry's canary splitter uses — so a device pinned to a canary split
// is also pinned to a shard.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	mux      *http.ServeMux
	ring     atomic.Pointer[Ring]
	mu       sync.Mutex
	states   map[string]*shardState
	inflight map[string]*atomic.Int64
	stop     chan struct{}
	loopDone chan struct{}
	closed   sync.Once
}

// NewRouter builds a router over cfg.Replicas, runs one synchronous probe
// round so the initial ring reflects reality, and (unless cfg.ProbeInterval
// is negative) starts the background health loop. Call Close to stop it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = DefaultFailAfter
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = DefaultReadmitAfter
	}
	if cfg.MaxSpill == 0 {
		cfg.MaxSpill = DefaultMaxSpill
	} else if cfg.MaxSpill < 0 {
		cfg.MaxSpill = 0
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = DefaultShedRetryAfter
	}
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		states:   make(map[string]*shardState, len(cfg.Replicas)),
		inflight: make(map[string]*atomic.Int64, len(cfg.Replicas)),
		stop:     make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	seen := map[string]bool{}
	for _, rep := range cfg.Replicas {
		if rep == "" || seen[rep] {
			return nil, fmt.Errorf("cluster: empty or duplicate replica %q", rep)
		}
		seen[rep] = true
		rt.states[rep] = &shardState{}
		rt.inflight[rep] = &atomic.Int64{}
	}
	rt.ring.Store(NewRing(nil, cfg.VNodes))
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /predict", rt.handlePredict)
	rt.mux.HandleFunc("POST /v1/models/{name}/predict", rt.handlePredict)
	rt.mux.HandleFunc("GET /v1/models", rt.handleModels)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /healthz", rt.handleReadyz)
	rt.mux.HandleFunc("POST /cluster/drain", rt.handleDrain)
	rt.mux.HandleFunc("POST /cluster/rejoin", rt.handleRejoin)
	rt.initialProbe()
	if cfg.ProbeInterval > 0 {
		rt.loopDone = make(chan struct{})
		go rt.probeLoop()
	}
	return rt, nil
}

// Close stops the background probe loop. It does not close cfg.Client.
func (rt *Router) Close() {
	rt.closed.Do(func() { close(rt.stop) })
	if rt.loopDone != nil {
		<-rt.loopDone
	}
}

// ServeHTTP dispatches to the router's route table.
func (rt *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	rt.mux.ServeHTTP(w, req)
}

// Ring returns the current routing ring snapshot.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// --- health -----------------------------------------------------------------

func (rt *Router) probeLoop() {
	defer close(rt.loopDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow()
		}
	}
}

// initialProbe seeds shard health at construction: the first probe round
// sets each shard's state directly, without the ReadmitAfter warmup — a
// fresh router facing a healthy fleet must route immediately, and the
// hysteresis exists to damp flapping, which cannot have happened yet.
func (rt *Router) initialProbe() {
	results := rt.probeAll()
	rt.mu.Lock()
	for rep, ok := range results {
		rt.cfg.Metrics.probed(rep, ok)
		rt.states[rep].up = ok
	}
	rt.rebuildLocked()
	rt.mu.Unlock()
}

// CheckNow probes every replica's /readyz once, synchronously, and applies
// the FailAfter/ReadmitAfter state machine. The background loop calls it on
// a ticker; tests call it directly to step health deterministically.
func (rt *Router) CheckNow() {
	results := rt.probeAll()
	rt.mu.Lock()
	changed := false
	for rep, ok := range results {
		s := rt.states[rep]
		rt.cfg.Metrics.probed(rep, ok)
		if ok {
			s.fails = 0
			if s.up {
				continue
			}
			s.oks++
			// ReadmitAfter consecutive successes is the warmup gate: a
			// replica mid-restart answers one probe, dies, answers another —
			// it only rejoins once it holds readiness across the window.
			if s.oks >= rt.cfg.ReadmitAfter {
				s.up = true
				s.oks = 0
				changed = true
				rt.logf("cluster: shard %s re-admitted", rep)
			}
		} else {
			s.oks = 0
			if !s.up {
				continue
			}
			s.fails++
			if s.fails >= rt.cfg.FailAfter {
				s.up = false
				s.fails = 0
				changed = true
				rt.logf("cluster: shard %s ejected (probe failures)", rep)
			}
		}
	}
	if changed {
		rt.rebuildLocked()
	}
	rt.mu.Unlock()
}

// probeAll probes every replica concurrently and returns the result map.
func (rt *Router) probeAll() map[string]bool {
	results := make(map[string]bool, len(rt.cfg.Replicas))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, rep := range rt.cfg.Replicas {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			ok := rt.probeOne(rep)
			mu.Lock()
			results[rep] = ok
			mu.Unlock()
		}(rep)
	}
	wg.Wait()
	return results
}

func (rt *Router) probeOne(rep string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// rebuildLocked recomputes the ring from shards that are up and not
// draining. Caller holds rt.mu.
func (rt *Router) rebuildLocked() {
	eligible := make([]string, 0, len(rt.states))
	for rep, s := range rt.states {
		rt.cfg.Metrics.setShardUp(rep, s.up && !s.drained)
		if s.up && !s.drained {
			eligible = append(eligible, rep)
		}
	}
	sort.Strings(eligible)
	rt.ring.Store(NewRing(eligible, rt.cfg.VNodes))
	rt.cfg.Metrics.setShardsUp(len(eligible))
	rt.cfg.Metrics.rebuilt()
	rt.logf("cluster: ring rebuilt with %d/%d shards", len(eligible), len(rt.states))
}

// Drain removes shard from the ring (new requests stop routing to it) and
// blocks until its in-flight requests finish or ctx expires. The shard keeps
// being probed; Rejoin undoes the drain.
func (rt *Router) Drain(ctx context.Context, shard string) error {
	rt.mu.Lock()
	s, ok := rt.states[shard]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: unknown shard %q", shard)
	}
	if !s.drained {
		s.drained = true
		rt.rebuildLocked()
	}
	rt.mu.Unlock()

	inflight := rt.inflight[shard]
	for inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain %s: %d requests still in flight: %w",
				shard, inflight.Load(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	rt.logf("cluster: shard %s drained", shard)
	return nil
}

// Rejoin clears a shard's drain mark. The shard re-enters the ring
// immediately if it is healthy, or after its ReadmitAfter warmup otherwise.
func (rt *Router) Rejoin(shard string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s, ok := rt.states[shard]
	if !ok {
		return fmt.Errorf("cluster: unknown shard %q", shard)
	}
	if s.drained {
		s.drained = false
		rt.rebuildLocked()
	}
	return nil
}

// --- proxying ---------------------------------------------------------------

// shardKey picks the routing key: explicit X-Shard-Key, else the request ID,
// else the client host — so unlabeled traffic from one device still pins to
// one shard.
func shardKey(req *http.Request) string {
	if k := req.Header.Get("X-Shard-Key"); k != "" {
		return k
	}
	if k := req.Header.Get("X-Request-ID"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

func (rt *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	defer func() { rt.cfg.Metrics.observeProxy(time.Since(start).Seconds()) }()

	ring := rt.ring.Load()
	if ring.Len() == 0 {
		rt.shed(w, "", 0, false)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, rt.cfg.MaxRequestBytes+1))
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > rt.cfg.MaxRequestBytes {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}

	key := shardKey(req)
	candidates := ring.Successors(key, 1+rt.cfg.MaxSpill)
	owner := candidates[0]
	var maxHint time.Duration
	sawSaturated := false
	for i, node := range candidates {
		resp, err := rt.forward(req, node, body)
		if err != nil {
			// Transport failure: prediction is idempotent, so retry on the
			// next ring node. This is the node-kill path — the probe loop
			// has not ejected the dead shard yet, but traffic already heals.
			rt.cfg.Metrics.retried(node)
			rt.logf("cluster: forward to %s failed: %v", node, err)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if h := parseRetryAfter(resp.Header.Get("Retry-After")); h > maxHint {
				maxHint = h
			}
			sawSaturated = true
			drainBody(resp)
			rt.cfg.Metrics.spilled(node)
			continue
		}
		rt.relay(w, resp)
		outcome := "ok"
		if resp.StatusCode >= 400 {
			outcome = "upstream_error"
		} else if i > 0 {
			outcome = "spilled"
		}
		rt.cfg.Metrics.request(owner, outcome)
		return
	}
	rt.cfg.Metrics.request(owner, "shed")
	rt.shed(w, owner, maxHint, sawSaturated)
}

// forward replays the buffered request against one replica, tracking the
// per-shard in-flight count that Drain waits on.
func (rt *Router) forward(req *http.Request, node string, body []byte) (*http.Response, error) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		node+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "X-Shard-Key", "X-Request-ID"} {
		if v := req.Header.Get(h); v != "" {
			out.Header.Set(h, v)
		}
	}
	counter := rt.inflight[node]
	if counter != nil {
		counter.Add(1)
		defer counter.Add(-1)
	}
	return rt.client.Do(out)
}

// relay copies an upstream response to the client.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "X-Model-Version", "Etag"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// shed refuses a request the fleet cannot absorb. Saturation (somebody said
// 429/503) sheds as 429 with the largest upstream Retry-After; a fully
// unreachable candidate set sheds as 503 with the configured default hint.
func (rt *Router) shed(w http.ResponseWriter, owner string, hint time.Duration, saturated bool) {
	rt.cfg.Metrics.shedOne()
	if hint <= 0 {
		hint = rt.cfg.ShedRetryAfter
	}
	w.Header().Set("Retry-After", strconv.FormatInt(ceilSeconds(hint), 10))
	status := http.StatusServiceUnavailable
	msg := "cluster: no shard available"
	if saturated {
		status = http.StatusTooManyRequests
		msg = "cluster: all shards saturated"
	}
	if owner != "" {
		msg += " (owner " + owner + ")"
	}
	http.Error(w, msg, status)
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

// parseRetryAfter reads a Retry-After header in delay-seconds form (the only
// form this system emits); unknown forms yield 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func ceilSeconds(d time.Duration) int64 {
	return int64(math.Ceil(d.Seconds()))
}

// --- aggregate and admin endpoints ------------------------------------------

func (rt *Router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	rt.mu.Lock()
	shards := make(map[string]bool, len(rt.states))
	up := 0
	for rep, s := range rt.states {
		ok := s.up && !s.drained
		shards[rep] = ok
		if ok {
			up++
		}
	}
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ready":     up > 0,
		"shards_up": up,
		"shards":    shards,
	})
}

// handleModels proxies the model catalog from any live shard: replicas serve
// the same manifest, so the first ring member answers for the fleet.
func (rt *Router) handleModels(w http.ResponseWriter, req *http.Request) {
	ring := rt.ring.Load()
	nodes := ring.Nodes()
	if len(nodes) == 0 {
		rt.shed(w, "", 0, false)
		return
	}
	for _, node := range nodes {
		resp, err := rt.forward(req, node, nil)
		if err != nil {
			continue
		}
		rt.relay(w, resp)
		return
	}
	rt.shed(w, "", 0, false)
}

func (rt *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	shard := req.URL.Query().Get("shard")
	if shard == "" {
		http.Error(w, "missing shard parameter", http.StatusBadRequest)
		return
	}
	if err := rt.Drain(req.Context(), shard); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "drained %s\n", shard)
}

func (rt *Router) handleRejoin(w http.ResponseWriter, req *http.Request) {
	shard := req.URL.Query().Get("shard")
	if shard == "" {
		http.Error(w, "missing shard parameter", http.StatusBadRequest)
		return
	}
	if err := rt.Rejoin(shard); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "rejoined %s\n", shard)
}
