package cluster

import (
	"testing"
	"time"
)

// TestBudgetAllowAt drives the bucket with an explicit clock: admission,
// refusal pricing, refill, and burst capping are all exact arithmetic.
func TestBudgetAllowAt(t *testing.T) {
	b, err := NewBudget(10, 2) // 10 rps, burst 2
	if err != nil {
		t.Fatalf("NewBudget: %v", err)
	}
	t0 := time.Unix(1000, 0)

	// Fresh bucket admits the burst...
	for i := 0; i < 2; i++ {
		if ok, _ := b.allowAt(t0); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	// ...then refuses, pricing the wait as one token at 10 rps = 100ms.
	ok, wait := b.allowAt(t0)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("refusal priced at %v, want 100ms (1 token at 10 rps)", wait)
	}

	// 50ms later: half a token accrued, still refused, price halves.
	ok, wait = b.allowAt(t0.Add(50 * time.Millisecond))
	if ok {
		t.Fatal("half-token request admitted")
	}
	if wait != 50*time.Millisecond {
		t.Fatalf("refusal priced at %v, want 50ms (half token outstanding)", wait)
	}

	// Another 50ms: the full token is there.
	if ok, _ := b.allowAt(t0.Add(100 * time.Millisecond)); !ok {
		t.Fatal("request refused after full refill interval")
	}

	// A long idle period caps at burst, not unlimited credit.
	ok, _ = b.allowAt(t0.Add(10 * time.Second))
	if !ok {
		t.Fatal("request refused after long idle")
	}
	if ok, _ = b.allowAt(t0.Add(10 * time.Second)); !ok {
		t.Fatal("second burst request refused after long idle")
	}
	if ok, _ = b.allowAt(t0.Add(10 * time.Second)); ok {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestBudgetValidation(t *testing.T) {
	if _, err := NewBudget(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBudget(-5, 1); err == nil {
		t.Error("negative rate accepted")
	}
	b, err := NewBudget(1, 0)
	if err != nil {
		t.Fatalf("NewBudget with burst 0: %v", err)
	}
	if ok, _ := b.Allow(); !ok {
		t.Error("burst floored at 1 should admit the first request")
	}
	if got := b.Rate(); got != 1 {
		t.Errorf("Rate = %v, want 1", got)
	}
}

func TestBudgetAllowWallClock(t *testing.T) {
	b, err := NewBudget(1000, 5)
	if err != nil {
		t.Fatalf("NewBudget: %v", err)
	}
	admitted := 0
	for i := 0; i < 5; i++ {
		if ok, _ := b.Allow(); ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d of 5 burst requests", admitted)
	}
}
