package cluster

import (
	"fmt"
	"sync"
	"time"
)

// Budget is a token-bucket admission controller: a replica that can sustain
// Rate requests/second admits at most Burst above that rate before refusing,
// and every refusal is priced — Allow reports how long the caller must wait
// for the next token, which the HTTP layer surfaces as a Retry-After header.
// This is the per-replica capacity bound the cluster bench runs against: on
// a small box the replicas share cores, so raw CPU cannot demonstrate
// scaling, but an admission budget is a real production control (protecting
// tail latency by refusing work early) and makes aggregate cluster
// throughput a function of healthy replica count.
type Budget struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for deterministic tests
}

// NewBudget returns a token bucket admitting rate requests/second with the
// given burst (burst < 1 is raised to 1 so a fresh bucket admits at least
// one request). rate must be positive.
func NewBudget(rate float64, burst float64) (*Budget, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("cluster: budget rate must be positive, got %v", rate)
	}
	if burst < 1 {
		burst = 1
	}
	return &Budget{rate: rate, burst: burst, tokens: burst, now: time.Now}, nil
}

// Allow consumes one token if available. When it refuses, the returned
// retryAfter is the time until a full token accumulates — the honest
// Retry-After price for this bucket.
func (b *Budget) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowAt(b.now())
}

// allowAt is the clock-explicit core of Allow, locked by the caller.
func (b *Budget) allowAt(now time.Time) (bool, time.Duration) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	wait := time.Duration(deficit / b.rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return false, wait
}

// Rate returns the configured sustained admission rate (requests/second).
func (b *Budget) Rate() float64 { return b.rate }
