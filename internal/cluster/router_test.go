package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/obs"
)

// fakeReplica is a scriptable stand-in for examples/server: readiness and
// predict behavior both toggle atomically so tests can step health and
// saturation deterministically.
type fakeReplica struct {
	id        string
	srv       *httptest.Server
	ready     atomic.Bool
	saturated atomic.Bool
	hintSecs  atomic.Int64 // Retry-After advertised when saturated
	served    atomic.Int64
}

func newFakeReplica(t *testing.T, id string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	f.ready.Store(true)
	f.hintSecs.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	predict := func(w http.ResponseWriter, r *http.Request) {
		if f.saturated.Load() {
			w.Header().Set("Retry-After", strconv.FormatInt(f.hintSecs.Load(), 10))
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		f.served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"replica":%q}`, f.id)
	}
	mux.HandleFunc("POST /predict", predict)
	mux.HandleFunc("POST /v1/models/{name}/predict", predict)
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"models":["from-%s"]}`, f.id)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) url() string { return f.srv.URL }

// newTestRouter builds a router over the replicas with the background probe
// loop disabled — health advances only through CheckNow, keeping every test
// deterministic.
func newTestRouter(t *testing.T, m *Metrics, reps ...*fakeReplica) *Router {
	t.Helper()
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.url()
	}
	rt, err := NewRouter(RouterConfig{
		Replicas:      urls,
		ProbeInterval: -1,
		FailAfter:     2,
		ReadmitAfter:  2,
		Metrics:       m,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// keyOwnedBy finds a shard key whose ring owner is the given node.
func keyOwnedBy(t *testing.T, r *Ring, node string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("probe-key-%d", i)
		if r.Lookup(k) == node {
			return k
		}
	}
	t.Fatalf("no key found owned by %s", node)
	return ""
}

func predictVia(t *testing.T, rt *Router, key string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(`{"input":[1,2,3,4,5]}`))
	req.Header.Set("X-Shard-Key", key)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	resp := rec.Result()
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestRouterRoutesByShardKey(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	rt := newTestRouter(t, nil, a, b, c)
	ring := rt.Ring()
	if ring.Len() != 3 {
		t.Fatalf("initial ring has %d shards, want 3", ring.Len())
	}
	byURL := map[string]*fakeReplica{a.url(): a, b.url(): b, c.url(): c}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("device-%d", i)
		resp, body := predictVia(t, rt, key)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key %s: status %d, body %s", key, resp.StatusCode, body)
		}
		owner := byURL[ring.Lookup(key)]
		if want := fmt.Sprintf(`{"replica":%q}`, owner.id); body != want {
			t.Fatalf("key %s: routed to %s, ring owner is %s", key, body, owner.id)
		}
	}
	// Model-scoped predict routes through the same ring.
	req := httptest.NewRequest(http.MethodPost, "/v1/models/default/predict",
		strings.NewReader(`{"input":[1]}`))
	req.Header.Set("X-Shard-Key", "device-0")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("model-scoped predict: status %d", rec.Code)
	}
}

func TestRouterHealthEjectAndReadmit(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	m := NewMetrics(obs.NewRegistry())
	rt := newTestRouter(t, m, a, b, c)
	key := keyOwnedBy(t, rt.Ring(), b.url())

	b.ready.Store(false)
	rt.CheckNow()
	if got := rt.Ring().Len(); got != 3 {
		t.Fatalf("after 1 failed probe (FailAfter=2): ring has %d shards, want 3", got)
	}
	rt.CheckNow()
	if got := rt.Ring().Len(); got != 2 {
		t.Fatalf("after 2 failed probes: ring has %d shards, want 2", got)
	}
	if got := m.ShardsUp(); got != 2 {
		t.Errorf("shards_up gauge = %v, want 2", got)
	}
	// b's keys now land on the survivor the ring dictates, and b itself
	// receives nothing even though its HTTP server still answers.
	servedBefore := b.served.Load()
	resp, body := predictVia(t, rt, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with owner ejected: status %d", resp.StatusCode)
	}
	if want := rt.Ring().Lookup(key); !strings.Contains(body, replicaID(t, want, a, b, c)) {
		t.Fatalf("key rehashed to %s, served by %s", want, body)
	}
	if b.served.Load() != servedBefore {
		t.Error("ejected shard still received traffic")
	}

	// Recovery: one good probe is not enough (ReadmitAfter=2), two are.
	b.ready.Store(true)
	rt.CheckNow()
	if got := rt.Ring().Len(); got != 2 {
		t.Fatalf("after 1 good probe (ReadmitAfter=2): ring has %d shards, want 2", got)
	}
	rt.CheckNow()
	if got := rt.Ring().Len(); got != 3 {
		t.Fatalf("after 2 good probes: ring has %d shards, want 3", got)
	}
}

func replicaID(t *testing.T, url string, reps ...*fakeReplica) string {
	t.Helper()
	for _, r := range reps {
		if r.url() == url {
			return r.id
		}
	}
	t.Fatalf("unknown replica url %s", url)
	return ""
}

func TestRouterSpillsHotKeyOnSaturation(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	m := NewMetrics(obs.NewRegistry())
	rt := newTestRouter(t, m, a, b, c)
	ring := rt.Ring()
	key := keyOwnedBy(t, ring, a.url())
	succ := ring.Successors(key, 2)

	a.saturated.Store(true)
	resp, body := predictVia(t, rt, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated owner with healthy successor: status %d, body %s", resp.StatusCode, body)
	}
	if want := fmt.Sprintf(`{"replica":%q}`, replicaID(t, succ[1], a, b, c)); body != want {
		t.Fatalf("spill went to %s, want ring successor %s", body, want)
	}
	if got := m.Spills(a.url()); got != 1 {
		t.Errorf("spills_total{%s} = %v, want 1", a.url(), got)
	}
}

func TestRouterShedsWithRetryAfterWhenAllSaturated(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	m := NewMetrics(obs.NewRegistry())
	rt := newTestRouter(t, m, a, b, c)
	for _, r := range []*fakeReplica{a, b, c} {
		r.saturated.Store(true)
	}
	a.hintSecs.Store(2)
	b.hintSecs.Store(7)
	c.hintSecs.Store(4)

	resp, _ := predictVia(t, rt, "hot-device")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all saturated: status %d, want 429", resp.StatusCode)
	}
	// The router surfaces the *largest* advertised hint among the candidates
	// it tried: retrying sooner than the slowest shard's price guarantees
	// another refusal.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	hints := map[string]int64{a.url(): 2, b.url(): 7, c.url(): 4}
	maxHint := int64(0)
	for _, n := range rt.Ring().Successors("hot-device", 3) {
		if hints[n] > maxHint {
			maxHint = hints[n]
		}
	}
	if int64(ra) != maxHint {
		t.Errorf("Retry-After = %d, want max candidate hint %d", ra, maxHint)
	}
	if got := m.Shed(); got != 1 {
		t.Errorf("shed_total = %v, want 1", got)
	}
}

func TestRouterShedsUnavailableWhenRingEmpty(t *testing.T) {
	a := newFakeReplica(t, "a")
	m := NewMetrics(obs.NewRegistry())
	rt := newTestRouter(t, m, a)
	a.ready.Store(false)
	rt.CheckNow()
	rt.CheckNow()
	resp, _ := predictVia(t, rt, "k")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("empty-ring shed missing Retry-After header")
	}
}

func TestRouterRetriesTransportErrorOnSuccessor(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	rt := newTestRouter(t, nil, a, b, c)
	ring := rt.Ring()
	key := keyOwnedBy(t, ring, c.url())
	succ := ring.Successors(key, 2)

	// Kill c's listener without telling the router: the probe loop is off,
	// so the ring still names c as owner — exactly the node-kill window.
	c.srv.Close()
	resp, body := predictVia(t, rt, key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner dead, probe window open: status %d, want 200 via retry", resp.StatusCode)
	}
	if want := fmt.Sprintf(`{"replica":%q}`, replicaID(t, succ[1], a, b, c)); body != want {
		t.Fatalf("retry went to %s, want ring successor %s", body, want)
	}
}

func TestRouterDrainAndRejoin(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt := newTestRouter(t, nil, a, b)
	key := keyOwnedBy(t, rt.Ring(), a.url())

	if err := rt.Drain(context.Background(), a.url()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := rt.Ring().Len(); got != 1 {
		t.Fatalf("ring after drain has %d shards, want 1", got)
	}
	servedBefore := a.served.Load()
	resp, body := predictVia(t, rt, key)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"b"`) {
		t.Fatalf("drained: status %d body %s, want b to serve", resp.StatusCode, body)
	}
	if a.served.Load() != servedBefore {
		t.Error("drained shard still received traffic")
	}
	// A drain survives probe rounds: the shard is healthy but held out.
	rt.CheckNow()
	if got := rt.Ring().Len(); got != 1 {
		t.Fatalf("probe round re-admitted a drained shard (ring %d)", got)
	}

	if err := rt.Rejoin(a.url()); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if got := rt.Ring().Len(); got != 2 {
		t.Fatalf("ring after rejoin has %d shards, want 2", got)
	}
	resp, body = predictVia(t, rt, key)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"a"`) {
		t.Fatalf("rejoined: status %d body %s, want a to serve again", resp.StatusCode, body)
	}
}

func TestRouterAdminEndpoints(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt := newTestRouter(t, nil, a, b)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster/drain?shard="+a.url(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drain endpoint: status %d, body %s", rec.Code, rec.Body)
	}
	if got := rt.Ring().Len(); got != 1 {
		t.Fatalf("ring after HTTP drain has %d shards, want 1", got)
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster/rejoin?shard="+a.url(), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("rejoin endpoint: status %d, body %s", rec.Code, rec.Body)
	}
	if got := rt.Ring().Len(); got != 2 {
		t.Fatalf("ring after HTTP rejoin has %d shards, want 2", got)
	}
	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster/drain?shard=http://nope", nil))
	if rec.Code != http.StatusConflict {
		t.Errorf("drain of unknown shard: status %d, want 409", rec.Code)
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz: status %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"shards_up":2`) {
		t.Errorf("readyz body %s missing shards_up", body)
	}

	rec = httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "from-") {
		t.Errorf("models proxy: status %d body %s", rec.Code, rec.Body)
	}
}

func TestRouterRejectsOversizedBody(t *testing.T) {
	a := newFakeReplica(t, "a")
	urls := []string{a.url()}
	rt, err := NewRouter(RouterConfig{Replicas: urls, ProbeInterval: -1, MaxRequestBytes: 64})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(strings.Repeat("x", 200)))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("NewRouter with no replicas should fail")
	}
	if _, err := NewRouter(RouterConfig{Replicas: []string{"http://a", "http://a"}}); err == nil {
		t.Error("NewRouter with duplicate replicas should fail")
	}
}

// TestRouterShardKeyFallback pins the key-extraction precedence.
func TestRouterShardKeyFallback(t *testing.T) {
	mk := func(shardKey, reqID, remote string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/predict", nil)
		if shardKey != "" {
			r.Header.Set("X-Shard-Key", shardKey)
		}
		if reqID != "" {
			r.Header.Set("X-Request-ID", reqID)
		}
		r.RemoteAddr = remote
		return r
	}
	if got := shardKey(mk("dev-7", "req-1", "10.0.0.1:1234")); got != "dev-7" {
		t.Errorf("explicit shard key: got %q", got)
	}
	if got := shardKey(mk("", "req-1", "10.0.0.1:1234")); got != "req-1" {
		t.Errorf("request-id fallback: got %q", got)
	}
	if got := shardKey(mk("", "", "10.0.0.1:1234")); got != "10.0.0.1" {
		t.Errorf("remote-host fallback: got %q", got)
	}
}

func TestRouterProbeLoopRuns(t *testing.T) {
	a := newFakeReplica(t, "a")
	m := NewMetrics(obs.NewRegistry())
	rt, err := NewRouter(RouterConfig{
		Replicas:      []string{a.url()},
		ProbeInterval: 5 * time.Millisecond,
		Metrics:       m,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()
	a.ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for rt.Ring().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background probe loop never ejected the failed shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.ready.Store(true)
	for rt.Ring().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("background probe loop never re-admitted the recovered shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
