package cluster

import (
	"sort"
	"testing"
)

func TestZipfDeterministicForSeed(t *testing.T) {
	a, err := NewZipf(42, 1.5, 1, 10000)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	b, _ := NewZipf(42, 1.5, 1, 10000)
	for i := 0; i < 10000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, x, y)
		}
	}
	c, _ := NewZipf(43, 1.5, 1, 10000)
	same := 0
	for i := 0; i < 10000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	// Different seeds must not replay the same stream. (Zipf mass
	// concentrates on a few ordinals, so many individual draws coincide by
	// chance; identical streams would match all 10000.)
	if same > 9900 {
		t.Fatalf("different seeds produced near-identical streams (%d/10000 equal)", same)
	}
}

// TestZipfDistributionSanity checks the popularity law: ordinal 0 dominates,
// frequency is non-increasing in rank (up to noise), and at s=1.5 the top
// ordinal carries a large constant share — the skew the hot-key bench
// scenario relies on to saturate one shard.
func TestZipfDistributionSanity(t *testing.T) {
	z, err := NewZipf(7, 1.5, 1, 1<<16)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	const draws = 200000
	counts := map[uint64]int{}
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	top := float64(counts[0]) / draws
	// Zeta(1.5)^-1 ≈ 0.38: ordinal 0 should hold roughly that share.
	if top < 0.25 || top > 0.55 {
		t.Errorf("ordinal 0 holds %.1f%% of draws, want ~38%%", 100*top)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("frequency not decreasing in rank: c0=%d c1=%d c3=%d",
			counts[0], counts[1], counts[3])
	}
	// The tail is long: many distinct ordinals appear.
	if len(counts) < 50 {
		t.Errorf("only %d distinct ordinals in %d draws; tail too short", len(counts), draws)
	}
	// All draws stay in range.
	ords := make([]uint64, 0, len(counts))
	for k := range counts {
		ords = append(ords, k)
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	if max := ords[len(ords)-1]; max >= 1<<16 {
		t.Errorf("ordinal %d out of range [0, 2^16)", max)
	}
}

func TestZipfKeyFormat(t *testing.T) {
	z, err := NewZipf(1, 2, 1, 4)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	for i := 0; i < 100; i++ {
		k := z.NextKey()
		if len(k) < 5 || k[:4] != "dev-" {
			t.Fatalf("key %q does not match dev-<ordinal>", k)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(1, 1.5, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(1, 1.0, 1, 10); err == nil {
		t.Error("s=1 accepted (law requires s > 1)")
	}
	if _, err := NewZipf(1, 1.5, 0.5, 10); err == nil {
		t.Error("v<1 accepted")
	}
}
