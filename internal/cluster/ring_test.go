package cluster

import (
	"fmt"
	"math"
	"testing"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 8081+i)
	}
	return nodes
}

func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d", i)
	}
	return keys
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 128)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 128)
	for _, k := range testKeys(1000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("Lookup(%q) differs between construction orders: %q vs %q",
				k, a.Lookup(k), b.Lookup(k))
		}
	}
	if got := a.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 (duplicates must collapse)", b.Len())
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 128)
	if got := empty.Lookup("k"); got != "" {
		t.Errorf(`empty ring Lookup = %q, want ""`, got)
	}
	if got := empty.Successors("k", 3); got != nil {
		t.Errorf("empty ring Successors = %v, want nil", got)
	}
	one := NewRing([]string{"solo"}, 128)
	for _, k := range testKeys(100) {
		if one.Lookup(k) != "solo" {
			t.Fatalf("single-node ring Lookup(%q) = %q", k, one.Lookup(k))
		}
	}
}

// TestRingBalance is the balance property: at >= 128 vnodes, the load of the
// most- and least-loaded node stays within a fixed band of the mean. The
// theoretical relative deviation is ~1/sqrt(vnodes) (≈ 8.8% at 128); the
// bound here is 4x that, far above observed values but failing loudly if
// vnode hashing ever clumps.
func TestRingBalance(t *testing.T) {
	keys := testKeys(100000)
	for _, n := range []int{2, 3, 4, 8} {
		for _, vnodes := range []int{128, 256} {
			r := NewRing(ringNodes(n), vnodes)
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Lookup(k)]++
			}
			mean := float64(len(keys)) / float64(n)
			bound := 4 / math.Sqrt(float64(vnodes))
			for node, c := range counts {
				dev := math.Abs(float64(c)-mean) / mean
				if dev > bound {
					t.Errorf("%d nodes × %d vnodes: %s holds %d keys, mean %.0f (%.1f%% off, bound %.1f%%)",
						n, vnodes, node, c, mean, 100*dev, 100*bound)
				}
			}
			if len(counts) != n {
				t.Errorf("%d nodes × %d vnodes: only %d nodes received keys", n, vnodes, len(counts))
			}
		}
	}
}

// TestRingMinimalMovementOnJoin is the consistent-hashing contract: adding a
// node moves only the keys it captures — every moved key must now map to the
// new node, and the moved fraction stays near K/(N+1).
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := testKeys(100000)
	for _, n := range []int{2, 4, 8} {
		before := NewRing(ringNodes(n), 128)
		joined := "http://127.0.0.1:9999"
		after := before.With(joined)
		moved := 0
		for _, k := range keys {
			a, b := before.Lookup(k), after.Lookup(k)
			if a == b {
				continue
			}
			moved++
			if b != joined {
				t.Fatalf("%d nodes: key %q moved %q → %q, not to the joining node", n, k, a, b)
			}
		}
		expected := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f > 1.5*expected || f < 0.5*expected {
			t.Errorf("%d nodes: join moved %d keys, expected ~%.0f (K/(N+1))", n, moved, expected)
		}
	}
}

// TestRingMinimalMovementOnLeave mirrors the join property: removing a node
// moves exactly the keys it owned, each to a surviving node.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := testKeys(100000)
	for _, n := range []int{3, 4, 8} {
		nodes := ringNodes(n)
		before := NewRing(nodes, 128)
		leaving := nodes[1]
		after := before.Without(leaving)
		moved := 0
		for _, k := range keys {
			a, b := before.Lookup(k), after.Lookup(k)
			if a == b {
				continue
			}
			moved++
			if a != leaving {
				t.Fatalf("%d nodes: key %q moved %q → %q but its owner did not leave", n, k, a, b)
			}
			if b == leaving {
				t.Fatalf("%d nodes: key %q still maps to the departed node", n, k)
			}
		}
		expected := float64(len(keys)) / float64(n)
		if f := float64(moved); f > 1.5*expected || f < 0.5*expected {
			t.Errorf("%d nodes: leave moved %d keys, expected ~%.0f (K/N)", n, moved, expected)
		}
	}
}

// TestRingSuccessors pins the spill order: distinct nodes, owner first, and
// the second entry is where the key lands if the owner leaves — the property
// the router's saturation spillover and the node-kill rehash both rely on.
func TestRingSuccessors(t *testing.T) {
	nodes := ringNodes(4)
	r := NewRing(nodes, 128)
	for _, k := range testKeys(2000) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v, want 3 distinct nodes", k, succ)
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("Successors(%q)[0] = %q, Lookup = %q", k, succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) = %v contains duplicates", k, succ)
			}
			seen[s] = true
		}
		if got := r.Without(succ[0]).Lookup(k); got != succ[1] {
			t.Fatalf("key %q: successor order says %q but removal rehashes to %q", k, succ[1], got)
		}
	}
	// Asking for more nodes than exist returns them all.
	if got := r.Successors("k", 99); len(got) != 4 {
		t.Errorf("Successors(k, 99) returned %d nodes, want 4", len(got))
	}
}

func TestRingWithWithoutNoop(t *testing.T) {
	r := NewRing(ringNodes(3), 128)
	if r.With(ringNodes(3)[0]) != r {
		t.Error("With(existing member) did not return the same ring")
	}
	if r.Without("http://nope") != r {
		t.Error("Without(non-member) did not return the same ring")
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(ringNodes(8), 128)
	keys := testKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i%len(keys)])
	}
}
