// Package cluster is the scale-out serving tier above the single-process
// stack: a consistent-hash ring that shards request keys across replica
// processes, a front-door HTTP router with per-shard health probing and
// drain/rejoin lifecycle, saturation spillover for hot keys, and
// admission-control primitives (token-bucket budgets with Retry-After
// pricing). One box runs N replica processes of examples/server (or any
// server speaking the same /predict + /readyz contract); the router makes
// them look like one endpoint whose aggregate throughput scales with N.
//
// Design boundaries:
//
//   - Placement is pure: the ring is an immutable value derived from the
//     eligible shard set, and every lookup is a binary search over
//     avalanche-finished hashes (internal/hashkey — the same hash the
//     registry's canary splitter uses, so placement and splits agree).
//     Membership changes swap the whole ring atomically.
//   - Health is observed, not declared: the router polls each replica's
//     /readyz; a shard leaves the ring after FailAfter consecutive probe
//     failures and re-enters after ReadmitAfter consecutive successes (the
//     warmup that keeps a flapping replica from thrashing the ring).
//   - Overload is explicit: a saturated shard answers 429/503 with a
//     Retry-After budget (serve.QueueFullError through examples/server, or a
//     cluster.Budget), the router spills the request to the next distinct
//     ring node, and when every candidate is saturated the router sheds with
//     the largest advertised Retry-After instead of queueing.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/apdeepsense/apdeepsense/internal/hashkey"
)

// DefaultVNodes is the virtual-node count per shard. 128 vnodes put the
// per-shard load imbalance near 1/sqrt(128) ≈ 9% of mean (see the balance
// property test), at a memory cost of one (hash, index) pair per vnode.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring: nodes (shard names, typically
// base URLs) each project VNodes points onto the 64-bit hash circle, and a
// key belongs to the first point clockwise of its hash. Immutability is the
// concurrency story — routers swap whole rings atomically on membership
// change — and is also what makes the movement property testable: the only
// keys whose owner differs between a ring and ring.With(n) are those n
// captured.
type Ring struct {
	vnodes int
	nodes  []string // sorted member names
	points []point  // sorted by hash around the circle
}

// point is one virtual node: the hash it sits at and the owning node's index
// into nodes.
type point struct {
	hash uint64
	node int32
}

// NewRing builds a ring over the given nodes (duplicates collapse; order is
// irrelevant — two routers given the same member set in any order build
// bit-identical rings). vnodes <= 0 selects DefaultVNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			// The vnode key mixes node identity and vnode ordinal through the
			// avalanche hash, so a node's points scatter over the whole circle
			// rather than clumping near each other.
			h := hashkey.Hash64(n + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so the ring is
		// deterministic regardless of construction order.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the sorted member names (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the node owning key: the first ring point clockwise of the
// key's hash. It returns "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.search(key)].node]
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner: the owner first, then the nodes that would absorb the key if
// the owner left — exactly the spill order the router tries when a shard
// saturates.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	taken := make(map[int32]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search returns the index of the first point at or clockwise of key's hash.
func (r *Ring) search(key string) int {
	h := hashkey.Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return i
}

// With returns a new ring with node added (or r unchanged if already a
// member). By the consistent-hashing contract, the only keys whose owner
// changes are those the new node captures — about K/(N+1) of them.
func (r *Ring) With(node string) *Ring {
	for _, n := range r.nodes {
		if n == node {
			return r
		}
	}
	return NewRing(append(r.Nodes(), node), r.vnodes)
}

// Without returns a new ring with node removed (or r unchanged if not a
// member). Only the keys the departing node owned move, each to its
// clockwise successor.
func (r *Ring) Without(node string) *Ring {
	kept := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	if len(kept) == len(r.nodes) {
		return r
	}
	return NewRing(kept, r.vnodes)
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d vnodes)", len(r.nodes), r.vnodes)
}
