package cluster

import (
	"github.com/apdeepsense/apdeepsense/internal/obs"
)

// Metrics is the router's observability surface. All methods are nil-safe,
// matching the serve.Metrics convention: an unconfigured router pays one nil
// check per event.
//
// Families:
//
//	apds_cluster_requests_total{shard,outcome}  proxied requests by first-choice shard and outcome
//	                                            (ok|upstream_error|saturated|shed|retried)
//	apds_cluster_spills_total{shard}            requests spilled off a saturated shard to a successor
//	apds_cluster_retries_total{shard}           transport-error retries away from a shard
//	apds_cluster_shed_total                     requests shed: every candidate saturated or down
//	apds_cluster_shards_up                      shards currently in the ring
//	apds_cluster_shard_up{shard}                per-shard health (1 in ring, 0 out)
//	apds_cluster_probes_total{shard,result}     health probes by result (ok|fail)
//	apds_cluster_ring_rebuilds_total            ring snapshot swaps (membership changes)
//	apds_cluster_proxy_seconds                  end-to-end proxy latency, including spills/retries
type Metrics struct {
	requests *obs.CounterVec
	spills   *obs.CounterVec
	retries  *obs.CounterVec
	shed     *obs.Counter
	shardsUp *obs.Gauge
	shardUp  *obs.GaugeVec
	probes   *obs.CounterVec
	rebuilds *obs.Counter
	proxy    *obs.Histogram
}

// NewMetrics registers the cluster metric families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		requests: reg.CounterVec("apds_cluster_requests_total",
			"Requests proxied by the cluster router, by first-choice shard and outcome.",
			"shard", "outcome"),
		spills: reg.CounterVec("apds_cluster_spills_total",
			"Requests spilled off a saturated shard to its ring successor.", "shard"),
		retries: reg.CounterVec("apds_cluster_retries_total",
			"Transport-error retries routed away from a shard.", "shard"),
		shed: reg.Counter("apds_cluster_shed_total",
			"Requests shed by the router because every candidate shard was saturated or down."),
		shardsUp: reg.Gauge("apds_cluster_shards_up",
			"Shards currently admitted to the routing ring."),
		shardUp: reg.GaugeVec("apds_cluster_shard_up",
			"Per-shard health: 1 when the shard is in the ring, 0 when ejected.", "shard"),
		probes: reg.CounterVec("apds_cluster_probes_total",
			"Health probes by shard and result (ok, fail).", "shard", "result"),
		rebuilds: reg.Counter("apds_cluster_ring_rebuilds_total",
			"Routing-ring snapshot swaps caused by shard membership changes."),
		proxy: reg.Histogram("apds_cluster_proxy_seconds",
			"End-to-end router proxy latency including spill and retry hops.",
			obs.LatencyBuckets()),
	}
}

func (m *Metrics) request(shard, outcome string) {
	if m != nil {
		m.requests.With(shard, outcome).Inc()
	}
}

func (m *Metrics) spilled(shard string) {
	if m != nil {
		m.spills.With(shard).Inc()
	}
}

func (m *Metrics) retried(shard string) {
	if m != nil {
		m.retries.With(shard).Inc()
	}
}

func (m *Metrics) shedOne() {
	if m != nil {
		m.shed.Inc()
	}
}

func (m *Metrics) setShardUp(shard string, up bool) {
	if m != nil {
		v := 0.0
		if up {
			v = 1
		}
		m.shardUp.With(shard).Set(v)
	}
}

func (m *Metrics) setShardsUp(n int) {
	if m != nil {
		m.shardsUp.Set(float64(n))
	}
}

func (m *Metrics) probed(shard string, ok bool) {
	if m != nil {
		result := "fail"
		if ok {
			result = "ok"
		}
		m.probes.With(shard, result).Inc()
	}
}

func (m *Metrics) rebuilt() {
	if m != nil {
		m.rebuilds.Inc()
	}
}

func (m *Metrics) observeProxy(seconds float64) {
	if m != nil {
		m.proxy.Observe(seconds)
	}
}

// Shed returns the shed-request count (for tests).
func (m *Metrics) Shed() float64 {
	if m == nil {
		return 0
	}
	return m.shed.Value()
}

// Spills returns the spill count for one shard (for tests).
func (m *Metrics) Spills(shard string) float64 {
	if m == nil {
		return 0
	}
	return m.spills.With(shard).Value()
}

// Retries returns the transport-error retry count for one shard (for tests
// and the cluster bench).
func (m *Metrics) Retries(shard string) float64 {
	if m == nil {
		return 0
	}
	return m.retries.With(shard).Value()
}

// ShardsUp returns the current in-ring shard count (for tests).
func (m *Metrics) ShardsUp() float64 {
	if m == nil {
		return 0
	}
	return m.shardsUp.Value()
}
