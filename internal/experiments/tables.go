package experiments

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
)

// parseAct converts a table row label ("relu"/"tanh") to an activation.
func parseAct(s string) (nn.Activation, error) {
	a, err := nn.ParseActivation(s)
	if err != nil {
		return 0, fmt.Errorf("experiments: %w", err)
	}
	return a, nil
}

// Table regenerates the paper's Table n (1 = BPEst, 2 = NYCommute,
// 3 = GasSen, 4 = HHAR): every estimator on both pre-trained networks, with
// MAE + NLL for regression tasks and ACC + NLL for classification.
func (r *Runner) Table(n int) (*report.Table, error) {
	task, err := taskForTable(n)
	if err != nil {
		return nil, err
	}
	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}

	tbl := &report.Table{}
	isClass := d.Task == datasets.TaskClassification
	if isClass {
		tbl.Title = fmt.Sprintf("TABLE %s: Accuracy (ACC) and Negative Log-Likelihood (NLL) for the %s task", roman(n), task)
		tbl.Headers = []string{"Model", "ACC", "NLL", "ECE", "Edison ms", "Edison mJ", "host µs"}
	} else {
		tbl.Title = fmt.Sprintf("TABLE %s: Mean Absolute Error (MAE) and Negative Log-Likelihood (NLL) for the %s task", roman(n), task)
		tbl.Headers = []string{"Model", fmt.Sprintf("MAE (%s)", d.Unit), "NLL", "NLL-raw", "Cov90", "τ-std", "Edison ms", "Edison mJ", "host µs"}
	}

	for _, act := range []string{"relu", "tanh"} {
		results, err := r.EvaluateCell(task, act)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			label := fmt.Sprintf("DNN-%s-%s", actLabel(act), res.Estimator)
			if isClass {
				tbl.AddRow(label,
					fmt.Sprintf("%.2f%%", res.ACC*100),
					fmt.Sprintf("%.3f", res.NLL),
					fmt.Sprintf("%.3f", res.ECE),
					fmt.Sprintf("%.1f", res.EdisonTimeMillis),
					fmt.Sprintf("%.1f", res.EdisonEnergyMillijoules),
					fmt.Sprintf("%.0f", res.HostMicrosPerInference),
				)
			} else {
				tbl.AddRow(label,
					fmt.Sprintf("%.2f", res.MAE),
					fmt.Sprintf("%.2f", res.NLL),
					fmt.Sprintf("%.1f", res.NLLRaw),
					fmt.Sprintf("%.3f", res.Coverage90),
					fmt.Sprintf("%.2f", res.TunedObsStd),
					fmt.Sprintf("%.1f", res.EdisonTimeMillis),
					fmt.Sprintf("%.1f", res.EdisonEnergyMillijoules),
					fmt.Sprintf("%.0f", res.HostMicrosPerInference),
				)
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("scale=%s hidden=%v; Edison columns use the analytic device model at this scale", r.scale.Name, r.scale.Hidden),
		"Cov90/ECE are calibration diagnostics added beyond the paper's metrics",
	)
	if !isClass {
		tbl.Notes = append(tbl.Notes,
			"NLL uses the per-estimator τ⁻¹ observation-noise floor (std τ-std) tuned on validation (Gal-style);",
			"NLL-raw uses pure dropout model uncertainty (no floor) — the paper's regime, where small-k MCDrop explodes",
		)
	}
	return tbl, nil
}

// taskForTable maps a paper table number to its task.
func taskForTable(n int) (string, error) {
	for task, num := range tableNumber {
		if num == n {
			return task, nil
		}
	}
	return "", fmt.Errorf("no table %d (valid: 1-4): %w", n, ErrConfig)
}

func roman(n int) string {
	switch n {
	case 1:
		return "I"
	case 2:
		return "II"
	case 3:
		return "III"
	case 4:
		return "IV"
	default:
		return fmt.Sprint(n)
	}
}

func actLabel(act string) string {
	switch act {
	case "relu":
		return "ReLU"
	case "tanh":
		return "Tanh"
	default:
		return act
	}
}
