// Package experiments assembles the full reproduction of the paper's
// evaluation (§IV): it trains (or loads) the pre-trained dropout networks
// and the RDeepSense baselines for the four IoT tasks, runs every
// uncertainty estimator on the test splits, and regenerates each of the
// paper's tables (I–IV) and figures (1–9) as report artifacts.
package experiments

import (
	"errors"
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

// ErrConfig is returned (wrapped) for invalid experiment configurations.
var ErrConfig = errors.New("experiments: invalid configuration")

// MCDropKs lists the sampling budgets the paper sweeps ("we choose
// k = [3, 5, 10, 30, 50]"; the table rows label them 3/5/10/30/50).
var MCDropKs = []int{3, 5, 10, 30, 50}

// Activations lists the two pre-trained network families of §IV-C.
var Activations = []nn.Activation{nn.ActReLU, nn.ActTanh}

// TaskNames lists the four tasks in paper order (Tables I–IV).
var TaskNames = []string{"BPEst", "NYCommute", "GasSen", "HHAR"}

// Scale bundles the knobs that trade fidelity for runtime. PaperScale
// matches §IV-C exactly (5-layer, 512-wide networks); DefaultScale keeps the
// same depth at width 128 so the full suite trains in minutes on one core;
// QuickScale exists for tests.
type Scale struct {
	// Name tags cached models on disk.
	Name string
	// Hidden lists hidden-layer widths.
	Hidden []int
	// Epochs and BatchSize drive training.
	Epochs    int
	BatchSize int
	// DataFraction scales each task's default split sizes.
	DataFraction float64
}

// Predefined scales.
var (
	// QuickScale is for unit tests: tiny nets, tiny data.
	QuickScale = Scale{Name: "quick", Hidden: []int{32, 32}, Epochs: 4, BatchSize: 32, DataFraction: 0.08}
	// DefaultScale is the recorded-results configuration (EXPERIMENTS.md).
	DefaultScale = Scale{Name: "default", Hidden: []int{128, 128, 128, 128}, Epochs: 20, BatchSize: 64, DataFraction: 1}
	// PaperScale matches the paper's 5-layer 512-wide networks.
	PaperScale = Scale{Name: "paper", Hidden: []int{512, 512, 512, 512}, Epochs: 30, BatchSize: 64, DataFraction: 1}
)

func (s Scale) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scale needs a name: %w", ErrConfig)
	}
	if len(s.Hidden) == 0 {
		return fmt.Errorf("scale %q has no hidden layers: %w", s.Name, ErrConfig)
	}
	if s.Epochs < 1 || s.BatchSize < 1 {
		return fmt.Errorf("scale %q: epochs=%d batch=%d: %w", s.Name, s.Epochs, s.BatchSize, ErrConfig)
	}
	if s.DataFraction <= 0 || s.DataFraction > 1 {
		return fmt.Errorf("scale %q: data fraction %v: %w", s.Name, s.DataFraction, ErrConfig)
	}
	return nil
}

// taskSpec couples a task name with its generator and default sizes.
type taskSpec struct {
	name     string
	task     datasets.Task
	generate func(datasets.Size) (*datasets.Dataset, error)
	size     datasets.Size
}

var taskSpecs = map[string]taskSpec{
	"BPEst": {
		name: "BPEst", task: datasets.TaskRegression,
		generate: datasets.BPEst,
		size:     datasets.Size{Train: 4000, Val: 500, Test: 1000, Seed: 101},
	},
	"NYCommute": {
		name: "NYCommute", task: datasets.TaskRegression,
		generate: datasets.NYCommute,
		size:     datasets.Size{Train: 6000, Val: 800, Test: 1500, Seed: 102},
	},
	"GasSen": {
		name: "GasSen", task: datasets.TaskRegression,
		generate: datasets.GasSen,
		size:     datasets.Size{Train: 6000, Val: 800, Test: 1500, Seed: 103},
	},
	"HHAR": {
		name: "HHAR", task: datasets.TaskClassification,
		generate: datasets.HHAR,
		size:     datasets.Size{Train: 5600, Val: 700, Test: 900, Seed: 104},
	},
}

// sizeFor scales a task's default split sizes by the scale's data fraction.
func (s Scale) sizeFor(spec taskSpec) datasets.Size {
	scale := func(n int) int {
		v := int(float64(n) * s.DataFraction)
		if v < 8 {
			v = 8
		}
		return v
	}
	return datasets.Size{
		Train: scale(spec.size.Train),
		Val:   scale(spec.size.Val),
		Test:  scale(spec.size.Test),
		Seed:  spec.size.Seed,
	}
}

// tableNumber maps task names to the paper's table numbering.
var tableNumber = map[string]int{"BPEst": 1, "NYCommute": 2, "GasSen": 3, "HHAR": 4}
