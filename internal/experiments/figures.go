package experiments

import (
	"fmt"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
	"github.com/apdeepsense/apdeepsense/internal/train"
)

// Figure is one regenerated paper figure: some combination of text, bar
// charts, a scatter plot, and the data table backing it.
type Figure struct {
	Number  int
	Title   string
	Text    string
	Charts  []*report.BarChart
	Scatter *report.Scatter
	Data    *report.Table
}

// taskDims records each task's model-facing dimensions so the system-cost
// figures (2–5) can build paper-scale architectures without generating data.
var taskDims = map[string]struct{ in, out int }{
	"BPEst":     {250, 250},
	"NYCommute": {5, 1},
	"GasSen":    {16, 2},
	"HHAR":      {78, 6},
}

// figureTask maps the paper's figure numbers 2–5 (time/energy) and 6–9
// (tradeoff) to tasks.
var figureTask = map[int]string{
	2: "BPEst", 3: "NYCommute", 4: "GasSen", 5: "HHAR",
	6: "BPEst", 7: "NYCommute", 8: "GasSen", 9: "HHAR",
}

// Figure regenerates the paper's Figure n:
//
//	1    hidden-unit output distributions of a deep dropout network
//	2–5  inference time and energy per task (Edison device model)
//	6–9  energy vs NLL tradeoff per task
func (r *Runner) Figure(n int) (*Figure, error) {
	switch {
	case n == 1:
		return r.figure1()
	case n >= 2 && n <= 5:
		return r.figureTimeEnergy(n)
	case n >= 6 && n <= 9:
		return r.figureTradeoff(n)
	default:
		return nil, fmt.Errorf("no figure %d (valid: 1-9): %w", n, ErrConfig)
	}
}

// figure1 reproduces the paper's toy experiment (§III-A): train a 20-layer
// fully-connected dropout network to learn the sum of 200 independent
// Gaussian variables, then histogram the stochastic outputs of hidden units
// in deep layers across thousands of random dropout masks. The histograms
// exhibit bell curves — the empirical justification for the Gaussian
// approximation family — and this reproduction additionally overlays the
// closed-form ApDeepSense moments for the same units.
func (r *Runner) figure1() (*Figure, error) {
	const (
		inputDim = 200
		width    = 64
		depth    = 20 // weight layers
	)
	passes := int(25000 * r.scale.DataFraction)
	if passes < 2000 {
		passes = 2000
	}
	trainN := int(2000 * r.scale.DataFraction)
	if trainN < 200 {
		trainN = 200
	}

	hidden := make([]int, depth-1)
	for i := range hidden {
		hidden[i] = width
	}
	net, err := nn.New(nn.Config{
		InputDim: inputDim, Hidden: hidden, OutputDim: 1,
		Activation: nn.ActReLU, OutputActivation: nn.ActIdentity,
		KeepProb: defaultKeepProb, Seed: 41,
	})
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}

	rng := rand.New(rand.NewSource(42))
	samples := make([]train.Sample, trainN)
	for i := range samples {
		x := make(tensor.Vector, inputDim)
		var sum float64
		for j := range x {
			x[j] = rng.NormFloat64()
			sum += x[j]
		}
		samples[i] = train.Sample{X: x, Y: tensor.Vector{sum / 14.14}} // ≈ sqrt(200), unit-variance target
	}
	r.logf("figure1: training %d-layer toy network", depth)
	if _, err := train.Fit(net, samples, nil, train.Config{
		Epochs: 4, BatchSize: 32, Seed: 7,
		Loss: train.MSE{}, Optimizer: train.NewAdam(defaultLR), ClipNorm: 5,
	}); err != nil {
		return nil, fmt.Errorf("figure1: train: %w", err)
	}

	// Probe one hidden unit in layers 12 and 18, as in the paper's figure.
	probe := tensor.NewVector(inputDim)
	for j := range probe {
		probe[j] = rng.NormFloat64()
	}

	fig := &Figure{
		Number: 1,
		Title:  "Fig. 1: The output distributions of hidden units in a neural network",
	}
	data := &report.Table{
		Title:   "Hidden-unit stochastic output moments: MCDrop sampling vs ApDeepSense closed form",
		Headers: []string{"layer", "unit", "MC mean", "MC std", "ApDS mean", "ApDS std", "gauss TV-dist"},
	}
	text := ""
	layers := net.Layers()
	for _, layerIdx := range []int{12, 18} {
		// Record the PRE-activation y^(l) of the probed layer (eq. 1): that
		// is the quantity the Gaussian family approximates. Post-ReLU
		// outputs are rectified mixtures, not Gaussians. The subnet clones
		// the prefix and strips the final non-linearity.
		prefix := layers[:layerIdx]
		cloned := make([]*nn.Layer, len(prefix))
		for i, l := range prefix {
			cloned[i] = &nn.Layer{W: l.W, B: l.B, Act: l.Act, KeepProb: l.KeepProb}
		}
		last := cloned[len(cloned)-1]
		cloned[len(cloned)-1] = &nn.Layer{W: last.W, B: last.B, Act: nn.ActIdentity, KeepProb: last.KeepProb}
		sub, err := nn.FromLayers(cloned)
		if err != nil {
			return nil, fmt.Errorf("figure1: subnet: %w", err)
		}
		const unit = 0
		var w stats.Welford
		values := make([]float64, passes)
		for p := 0; p < passes; p++ {
			y, err := sub.ForwardSample(probe, rng)
			if err != nil {
				return nil, fmt.Errorf("figure1: sample: %w", err)
			}
			values[p] = y[unit]
			w.Add(y[unit])
		}
		span := 4 * w.Std()
		if span == 0 {
			span = 1
		}
		hist, err := stats.NewHistogram(w.Mean()-span, w.Mean()+span, 40)
		if err != nil {
			return nil, fmt.Errorf("figure1: histogram: %w", err)
		}
		for _, v := range values {
			hist.Add(v)
		}

		prop, err := core.NewPropagator(sub, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("figure1: propagator: %w", err)
		}
		g, err := prop.Propagate(probe)
		if err != nil {
			return nil, fmt.Errorf("figure1: propagate: %w", err)
		}

		tv := hist.GaussianFitError(w.Mean(), w.Std())
		data.AddRow(
			fmt.Sprint(layerIdx), fmt.Sprint(unit),
			fmt.Sprintf("%.4f", w.Mean()), fmt.Sprintf("%.4f", w.Std()),
			fmt.Sprintf("%.4f", g.Mean[unit]), fmt.Sprintf("%.4f", g.Std(unit)),
			fmt.Sprintf("%.4f", tv),
		)
		text += fmt.Sprintf("\n(layer %d, unit %d) distribution over %d dropout masks:\n%s",
			layerIdx, unit, passes, hist.Render(48))
	}
	fig.Text = text
	fig.Data = data
	return fig, nil
}

// paperScaleEstimators builds the cost-model estimator grid for one task at
// the paper's exact architecture (5 layers, 512 hidden), independent of the
// runner's training scale: estimator cost depends only on network shape.
func paperScaleEstimators(task string, act nn.Activation) ([]core.Estimator, error) {
	dims, ok := taskDims[task]
	if !ok {
		return nil, fmt.Errorf("unknown task %q: %w", task, ErrConfig)
	}
	net, err := nn.New(nn.Config{
		InputDim: dims.in, Hidden: PaperScale.Hidden, OutputDim: dims.out,
		Activation: act, OutputActivation: nn.ActIdentity,
		KeepProb: defaultKeepProb, Seed: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("paper-scale net: %w", err)
	}
	out := make([]core.Estimator, 0, len(MCDropKs)+1)
	apds, err := core.NewApDeepSense(net, core.Options{}, zeroObsVar)
	if err != nil {
		return nil, err
	}
	out = append(out, apds)
	for _, k := range MCDropKs {
		mc, err := mcdrop.New(net, k, zeroObsVar, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, mc)
	}
	return out, nil
}

// figureTimeEnergy regenerates Figures 2–5: modeled Edison inference time
// and energy for every estimator on both network families, at the paper's
// 5-layer 512-wide architecture.
func (r *Runner) figureTimeEnergy(n int) (*Figure, error) {
	task := figureTask[n]
	timeChart := &report.BarChart{
		Title: fmt.Sprintf("(a) Inference time of the %s task (modeled Intel Edison)", task),
		Unit:  "ms",
	}
	energyChart := &report.BarChart{
		Title: fmt.Sprintf("(b) Energy consumption of the %s task (modeled Intel Edison)", task),
		Unit:  "mJ",
	}
	data := &report.Table{
		Title:   fmt.Sprintf("Modeled per-inference cost, %s task, paper-scale architecture (%v hidden)", task, PaperScale.Hidden),
		Headers: []string{"Model", "Edison ms", "Edison mJ", "dense MFLOPs", "element Mops", "rand Mdraws"},
	}
	var apdsTime, mc50Time [2]float64
	for ai, act := range Activations {
		ests, err := paperScaleEstimators(task, act)
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", n, err)
		}
		for _, est := range ests {
			label := fmt.Sprintf("DNN-%s-%s", actLabel(act.String()), est.Name())
			c := est.Cost()
			tMs := r.device.TimeMillis(c)
			eMj := r.device.EnergyMillijoules(c)
			timeChart.Add(label, tMs)
			energyChart.Add(label, eMj)
			data.AddRow(label,
				fmt.Sprintf("%.1f", tMs), fmt.Sprintf("%.1f", eMj),
				fmt.Sprintf("%.2f", float64(c.DenseFLOPs)/1e6),
				fmt.Sprintf("%.2f", float64(c.ElementOps)/1e6),
				fmt.Sprintf("%.2f", float64(c.RandomDraws)/1e6),
			)
			switch est.Name() {
			case "ApDeepSense":
				apdsTime[ai] = tMs
			case "MCDrop-50":
				mc50Time[ai] = tMs
			}
		}
	}
	for ai, act := range Activations {
		if mc50Time[ai] > 0 {
			saving := 100 * (1 - apdsTime[ai]/mc50Time[ai])
			data.Notes = append(data.Notes,
				fmt.Sprintf("%s: ApDeepSense saves %.1f%% of MCDrop-50 time/energy", actLabel(act.String()), saving))
		}
	}
	return &Figure{
		Number: n,
		Title:  fmt.Sprintf("Fig. %d: The inference time and energy consumption of the %s task", n, task),
		Charts: []*report.BarChart{timeChart, energyChart},
		Data:   data,
	}, nil
}

// figureTradeoff regenerates Figures 6–9: the energy-vs-NLL tradeoff.
// Energy comes from the paper-scale device model; NLL comes from evaluating
// the trained models at the runner's scale. ApDeepSense should land in the
// bottom-left (cheap and well-calibrated) of the MCDrop-k curve.
func (r *Runner) figureTradeoff(n int) (*Figure, error) {
	task := figureTask[n]
	fig := &Figure{
		Number:  n,
		Title:   fmt.Sprintf("Fig. %d: The tradeoff between energy consumption and NLL of the %s task", n, task),
		Scatter: &report.Scatter{Title: "", XLabel: "Negative Log-Likelihood", YLabel: "Energy (mJ)"},
	}
	data := &report.Table{
		Title:   fmt.Sprintf("Energy vs NLL, %s task", task),
		Headers: []string{"Model", "NLL", "Edison mJ"},
	}

	for _, act := range Activations {
		results, err := r.EvaluateCell(task, act.String())
		if err != nil {
			return nil, err
		}
		costEsts, err := paperScaleEstimators(task, act)
		if err != nil {
			return nil, err
		}
		energyByName := make(map[string]float64, len(costEsts))
		for _, est := range costEsts {
			energyByName[est.Name()] = r.device.EnergyMillijoules(est.Cost())
		}
		var apdsSeries, mcSeries report.Series
		apdsSeries = report.Series{Name: fmt.Sprintf("DNN-%s-ApDeepSense", actLabel(act.String())), Marker: 'A'}
		mcSeries = report.Series{Name: fmt.Sprintf("DNN-%s-MCDrop", actLabel(act.String())), Marker: 'o'}
		if act == nn.ActTanh {
			apdsSeries.Marker = 'a'
			mcSeries.Marker = '.'
		}
		for _, res := range results {
			energy, ok := energyByName[res.Estimator]
			if !ok {
				continue // RDeepSense is not part of the paper's tradeoff plots
			}
			// The paper's tradeoff plots use pure model-uncertainty NLL
			// (regression tasks expose it as NLLRaw; classification has a
			// single NLL).
			nll := res.NLLRaw
			if nll == 0 {
				nll = res.NLL
			}
			label := fmt.Sprintf("DNN-%s-%s", actLabel(act.String()), res.Estimator)
			data.AddRow(label, fmt.Sprintf("%.3f", nll), fmt.Sprintf("%.1f", energy))
			if res.Estimator == "ApDeepSense" {
				apdsSeries.X = append(apdsSeries.X, nll)
				apdsSeries.Y = append(apdsSeries.Y, energy)
			} else {
				mcSeries.X = append(mcSeries.X, nll)
				mcSeries.Y = append(mcSeries.Y, energy)
			}
		}
		fig.Scatter.Series = append(fig.Scatter.Series, mcSeries, apdsSeries)
	}
	fig.Data = data
	return fig, nil
}
