package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestAblationDeviceSensitivity(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationDeviceSensitivity("NYCommute", []float64{0.5, 2})
	if err != nil {
		t.Fatalf("AblationDeviceSensitivity: %v", err)
	}
	if len(tbl.Rows) != 4 { // 2x2 factor grid
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// The savings must stay large under every calibration: > 80% for ReLU.
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		if v < 80 || v > 99 {
			t.Errorf("ReLU saving %v%% at factors (%s, %s) outside robust band", v, row[0], row[1])
		}
	}
	if _, err := r.AblationDeviceSensitivity("NYCommute", []float64{0}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad factor err = %v", err)
	}
	if _, err := r.AblationDeviceSensitivity("nope", nil); err == nil {
		t.Error("expected error for unknown task")
	}
}
