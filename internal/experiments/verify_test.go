package experiments

import (
	"errors"
	"strings"
	"testing"
)

func TestVerifyShapesRegression(t *testing.T) {
	r := quickRunner(t)
	checks, err := r.VerifyShapes("NYCommute")
	if err != nil {
		t.Fatalf("VerifyShapes: %v", err)
	}
	// 7 checks per activation for regression.
	if len(checks) != 14 {
		t.Fatalf("checks = %d, want 14", len(checks))
	}
	// The cost claim is structural and must always pass, even at quick
	// scale.
	for _, c := range checks {
		if strings.Contains(c.Claim, "costs <=") && !c.Pass {
			t.Errorf("cost check failed: %s (%s)", c.Claim, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("check %q missing detail", c.Claim)
		}
	}
	tbl, err := ShapeReport(checks)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tbl.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PASS") {
		t.Error("report contains no PASS verdicts")
	}
}

func TestVerifyShapesClassification(t *testing.T) {
	r := quickRunner(t)
	checks, err := r.VerifyShapes("HHAR")
	if err != nil {
		t.Fatalf("VerifyShapes: %v", err)
	}
	// 3 checks per activation for classification.
	if len(checks) != 6 {
		t.Fatalf("checks = %d, want 6", len(checks))
	}
}

func TestVerifyShapesUnknownTask(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.VerifyShapes("nope"); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v, want ErrConfig", err)
	}
}

func TestShapeReportEmpty(t *testing.T) {
	if _, err := ShapeReport(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v, want ErrConfig", err)
	}
}
