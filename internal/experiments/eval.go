package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/metrics"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// EvalResult is one estimator's measured quality and cost on one task.
type EvalResult struct {
	Estimator  string
	Task       string
	Activation string
	// MAE is the mean absolute error in natural units (regression only).
	MAE float64
	// ACC is classification accuracy in [0, 1] (classification only).
	ACC float64
	// NLL is the negative log-likelihood: Gaussian per-dimension for
	// regression (natural units), categorical for classification. For
	// regression the predictive variance includes the τ⁻¹ observation-noise
	// floor tuned per estimator on the validation split (Gal-style).
	NLL float64
	// NLLRaw is the regression NLL with NO observation-noise floor — pure
	// model (dropout) uncertainty. This is the regime of the paper's
	// tables, where small-k MCDrop variance collapse blows the NLL up.
	NLLRaw float64
	// Coverage90 is the fraction of targets inside the central 90%
	// predictive interval (regression only).
	Coverage90 float64
	// ECE is the expected calibration error (classification only).
	ECE float64
	// TunedObsStd is the observation-noise standard deviation (standardized
	// units) selected on the validation split, following Gal & Ghahramani's
	// τ⁻¹ grid search (regression only).
	TunedObsStd float64
	// HostMicrosPerInference is the measured wall-clock cost per test
	// inference on the machine running the experiment.
	HostMicrosPerInference float64
	// EdisonTimeMillis and EdisonEnergyMillijoules are the modeled Intel
	// Edison costs of one inference (see internal/edison).
	EdisonTimeMillis        float64
	EdisonEnergyMillijoules float64
}

// Evaluate runs one estimator over a dataset's test split and computes the
// task-appropriate metrics.
func (r *Runner) Evaluate(est core.Estimator, d *datasets.Dataset, act string) (*EvalResult, error) {
	if len(d.Test) == 0 {
		return nil, fmt.Errorf("evaluate: empty test split: %w", ErrConfig)
	}
	res := &EvalResult{Estimator: est.Name(), Task: d.Name, Activation: act}

	cost := est.Cost()
	res.EdisonTimeMillis = r.device.TimeMillis(cost)
	res.EdisonEnergyMillijoules = r.device.EnergyMillijoules(cost)

	switch d.Task {
	case datasets.TaskRegression:
		return r.evalRegression(est, d, res)
	case datasets.TaskClassification:
		return r.evalClassification(est, d, res)
	default:
		return nil, fmt.Errorf("evaluate: unknown task type %v: %w", d.Task, ErrConfig)
	}
}

// obsStdGrid lists candidate observation-noise standard deviations
// (standardized target units) for the Gal-style τ⁻¹ validation grid search.
var obsStdGrid = []float64{0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0, 1.5}

// tuneObsVar selects the observation-noise variance that minimizes the
// estimator's validation NLL, mirroring how MCDrop's precision τ is
// grid-searched per model in Gal & Ghahramani's evaluation. Predictions are
// made once; the grid only re-floors the variances.
func tuneObsVar(est core.Estimator, d *datasets.Dataset) (float64, error) {
	if len(d.Val) == 0 {
		return 0, nil
	}
	preds := make([]core.GaussianVec, len(d.Val))
	targets := make([]tensor.Vector, len(d.Val))
	for i, s := range d.Val {
		g, err := est.Predict(s.X)
		if err != nil {
			return 0, fmt.Errorf("tune %s on %s val sample %d: %w", est.Name(), d.Name, i, err)
		}
		preds[i] = g
		targets[i] = s.Y
	}
	best, bestNLL := 0.0, math.Inf(1)
	for _, s := range obsStdGrid {
		nll, err := metrics.GaussianNLL(preds, targets, s*s)
		if err != nil {
			return 0, err
		}
		if nll < bestNLL {
			bestNLL, best = nll, s*s
		}
	}
	return best, nil
}

func (r *Runner) evalRegression(est core.Estimator, d *datasets.Dataset, res *EvalResult) (*EvalResult, error) {
	obsVar, err := tuneObsVar(est, d)
	if err != nil {
		return nil, err
	}
	res.TunedObsStd = math.Sqrt(obsVar)

	preds := make([]core.GaussianVec, len(d.Test))
	rawPreds := make([]core.GaussianVec, len(d.Test))
	means := make([]tensor.Vector, len(d.Test))
	targets := make([]tensor.Vector, len(d.Test))

	start := time.Now()
	for i, s := range d.Test {
		g, err := est.Predict(s.X)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s on %s sample %d: %w", est.Name(), d.Name, i, err)
		}
		rm, rv := d.DenormPrediction(g.Mean, g.Var)
		rawPreds[i] = core.GaussianVec{Mean: rm, Var: rv}
		for j := range g.Var {
			g.Var[j] += obsVar
		}
		m, v := d.DenormPrediction(g.Mean, g.Var)
		preds[i] = core.GaussianVec{Mean: m, Var: v}
		means[i] = m
		targets[i] = d.DenormTarget(s.Y)
	}
	res.HostMicrosPerInference = float64(time.Since(start).Microseconds()) / float64(len(d.Test))

	if res.MAE, err = metrics.MAE(means, targets); err != nil {
		return nil, err
	}
	if res.NLL, err = metrics.GaussianNLL(preds, targets, 0); err != nil {
		return nil, err
	}
	// The raw NLL needs a hair of variance floor purely to avoid division by
	// an exactly-zero sample variance (RDeepSense never hits it; MCDrop-k
	// with all-equal samples can).
	if res.NLLRaw, err = metrics.GaussianNLL(rawPreds, targets, 1e-12); err != nil {
		return nil, err
	}
	if res.Coverage90, err = metrics.Coverage(preds, targets, 0.9); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Runner) evalClassification(est core.Estimator, d *datasets.Dataset, res *EvalResult) (*EvalResult, error) {
	probs := make([]tensor.Vector, len(d.Test))
	targets := make([]tensor.Vector, len(d.Test))

	start := time.Now()
	for i, s := range d.Test {
		p, err := est.PredictProbs(s.X)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s on %s sample %d: %w", est.Name(), d.Name, i, err)
		}
		probs[i] = p
		targets[i] = s.Y
	}
	res.HostMicrosPerInference = float64(time.Since(start).Microseconds()) / float64(len(d.Test))

	var err error
	if res.ACC, err = metrics.Accuracy(probs, targets); err != nil {
		return nil, err
	}
	if res.NLL, err = metrics.CategoricalNLL(probs, targets); err != nil {
		return nil, err
	}
	if res.ECE, err = metrics.ECE(probs, targets, 10); err != nil {
		return nil, err
	}
	return res, nil
}

// EvaluateCell runs the full estimator grid for one (task, activation) cell
// and returns results in paper row order.
func (r *Runner) EvaluateCell(task string, act string) ([]*EvalResult, error) {
	a, err := parseAct(act)
	if err != nil {
		return nil, err
	}
	ms, err := r.Models(task, a)
	if err != nil {
		return nil, err
	}
	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}
	ests, err := r.Estimators(ms)
	if err != nil {
		return nil, err
	}
	out := make([]*EvalResult, 0, len(ests))
	for _, est := range ests {
		r.logf("evaluating %s %s %s", task, act, est.Name())
		res, err := r.Evaluate(est, d, act)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
