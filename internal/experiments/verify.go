package experiments

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/report"
)

// ShapeCheck is one qualitative claim from the paper's evaluation, tested
// against this reproduction's measured results.
type ShapeCheck struct {
	// Claim states the paper's qualitative finding.
	Claim string
	// Pass reports whether the measurement satisfies it.
	Pass bool
	// Detail carries the numbers behind the verdict.
	Detail string
}

// VerifyShapes evaluates the full estimator grid on one task and checks the
// paper's qualitative claims — the definition of a successful reproduction
// when absolute numbers cannot match (different data, different hardware).
// The checks are the "shape criteria" of DESIGN.md §4.
func (r *Runner) VerifyShapes(task string) ([]ShapeCheck, error) {
	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}
	var checks []ShapeCheck
	for _, act := range []string{"relu", "tanh"} {
		results, err := r.EvaluateCell(task, act)
		if err != nil {
			return nil, err
		}
		byName := make(map[string]*EvalResult, len(results))
		for _, res := range results {
			byName[res.Estimator] = res
		}
		apds := byName["ApDeepSense"]
		mc3 := byName["MCDrop-3"]
		mc50 := byName["MCDrop-50"]
		rds := byName["RDeepSense"]
		if apds == nil || mc3 == nil || mc50 == nil || rds == nil {
			return nil, fmt.Errorf("verify: missing estimators for %s/%s: %w", task, act, ErrConfig)
		}
		prefix := fmt.Sprintf("[%s/%s] ", task, act)

		// System claim: ApDeepSense costs a small fraction of MCDrop-50.
		// The paper's ratio is an architecture property, so it is checked at
		// the paper's 5-layer 512-wide shape regardless of the runner's
		// training scale (same convention as Figures 2–5).
		budget := 0.10
		if act == "tanh" {
			budget = 0.25
		}
		a, err := parseAct(act)
		if err != nil {
			return nil, err
		}
		costEsts, err := paperScaleEstimators(task, a)
		if err != nil {
			return nil, err
		}
		var apdsMs, mc50Ms float64
		for _, est := range costEsts {
			switch est.Name() {
			case "ApDeepSense":
				apdsMs = r.device.TimeMillis(est.Cost())
			case "MCDrop-50":
				mc50Ms = r.device.TimeMillis(est.Cost())
			}
		}
		ratio := apdsMs / mc50Ms
		checks = append(checks, ShapeCheck{
			Claim:  prefix + fmt.Sprintf("ApDeepSense costs <= %.0f%% of MCDrop-50 (paper-scale arch)", budget*100),
			Pass:   ratio <= budget,
			Detail: fmt.Sprintf("time ratio %.3f (%.1f vs %.1f ms)", ratio, apdsMs, mc50Ms),
		})

		if d.Task == datasets.TaskRegression {
			// Accuracy claim: ApDeepSense MAE within a hair of MCDrop-50 —
			// except GasSen/Tanh, where the paper's own Table III shows a
			// 24% ApDeepSense degradation (39.20 vs 31.57); reproducing the
			// paper there means reproducing that gap.
			maeBudget := 0.05
			maeClaim := "ApDeepSense MAE within 5% of MCDrop-50"
			if task == "GasSen" && act == "tanh" {
				maeBudget = 0.35
				maeClaim = "ApDeepSense MAE gap matches the paper's own Tanh degradation (<= 35%)"
			}
			maeGap := (apds.MAE - mc50.MAE) / mc50.MAE
			checks = append(checks, ShapeCheck{
				Claim:  prefix + maeClaim,
				Pass:   maeGap <= maeBudget,
				Detail: fmt.Sprintf("MAE %.2f vs %.2f (gap %.1f%%)", apds.MAE, mc50.MAE, 100*maeGap),
			})
			// Sampling-noise claim: MCDrop-3's raw NLL is catastrophic.
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "MCDrop-3 raw NLL >= 2x MCDrop-50 raw NLL",
				Pass:   mc3.NLLRaw >= 2*mc50.NLLRaw,
				Detail: fmt.Sprintf("raw NLL %.1f vs %.1f", mc3.NLLRaw, mc50.NLLRaw),
			})
			// ApDeepSense beats the small-k sampling regime.
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "ApDeepSense raw NLL < MCDrop-3 raw NLL",
				Pass:   apds.NLLRaw < mc3.NLLRaw,
				Detail: fmt.Sprintf("raw NLL %.1f vs %.1f", apds.NLLRaw, mc3.NLLRaw),
			})
			// Monotone improvement of MCDrop with k (raw NLL, 10% slack).
			mono := true
			var prev float64
			first := true
			for _, k := range MCDropKs {
				res := byName[fmt.Sprintf("MCDrop-%d", k)]
				if res == nil {
					continue
				}
				if !first && res.NLLRaw > prev*1.1 {
					mono = false
				}
				prev = res.NLLRaw
				first = false
			}
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "MCDrop raw NLL improves with k",
				Pass:   mono,
				Detail: fmt.Sprintf("k=3..50 raw NLLs: %.1f -> %.1f", mc3.NLLRaw, mc50.NLLRaw),
			})
			// Retraining upper bound: RDeepSense has the best raw NLL.
			best := true
			for _, res := range results {
				if res != rds && res.NLLRaw < rds.NLLRaw {
					best = false
				}
			}
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "RDeepSense raw NLL is the best (retraining upper bound)",
				Pass:   best,
				Detail: fmt.Sprintf("RDeepSense raw NLL %.1f", rds.NLLRaw),
			})
			// Calibrated comparison: τ-tuned NLL of ApDeepSense within 2% of
			// MCDrop-50's.
			nllGap := (apds.NLL - mc50.NLL) / mc50.NLL
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "tuned NLL within 2% of MCDrop-50",
				Pass:   nllGap <= 0.02,
				Detail: fmt.Sprintf("NLL %.3f vs %.3f", apds.NLL, mc50.NLL),
			})
		} else {
			// Classification claims.
			accGap := mc50.ACC - apds.ACC
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "ApDeepSense ACC within 5 points of MCDrop-50",
				Pass:   accGap <= 0.05,
				Detail: fmt.Sprintf("ACC %.1f%% vs %.1f%%", 100*apds.ACC, 100*mc50.ACC),
			})
			checks = append(checks, ShapeCheck{
				Claim:  prefix + "ApDeepSense NLL <= MCDrop-3 NLL",
				Pass:   apds.NLL <= mc3.NLL,
				Detail: fmt.Sprintf("NLL %.3f vs %.3f", apds.NLL, mc3.NLL),
			})
		}
	}
	return checks, nil
}

// ShapeReport renders shape checks as a table.
func ShapeReport(checks []ShapeCheck) (*report.Table, error) {
	if len(checks) == 0 {
		return nil, fmt.Errorf("no checks: %w", ErrConfig)
	}
	tbl := &report.Table{
		Title:   "Reproduction shape checks (paper's qualitative claims vs measured results)",
		Headers: []string{"verdict", "claim", "measured"},
	}
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "DEVIATION"
		}
		tbl.AddRow(verdict, c.Claim, c.Detail)
	}
	return tbl, nil
}
