package experiments

import (
	"fmt"

	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/report"
)

// AblationDeviceSensitivity sweeps the device model's two dominant
// constants — dense throughput and per-element-op overhead — by the given
// multiplicative factors and reports the ApDeepSense-vs-MCDrop-50 savings
// for each combination, at the paper-scale architecture of the given task.
// The point of the study: the headline savings claim should be ROBUST to
// the exact calibration of the cost model, because it is driven by the
// operation-count ratio, not the constants.
func (r *Runner) AblationDeviceSensitivity(task string, factors []float64) (*report.Table, error) {
	if len(factors) == 0 {
		factors = []float64{0.5, 1, 2}
	}
	for _, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("sensitivity: factor %v: %w", f, ErrConfig)
		}
	}
	base := edison.NewEdison()
	tbl := &report.Table{
		Title:   fmt.Sprintf("Ablation: device-model sensitivity of the savings claim (%s, paper-scale arch)", task),
		Headers: []string{"throughput x", "elem-op x", "ReLU saving", "Tanh saving"},
	}
	for _, ft := range factors {
		for _, fe := range factors {
			dev := &edison.Device{
				Name:             base.Name,
				DenseFLOPS:       base.DenseFLOPS * ft,
				ElementOpNanos:   base.ElementOpNanos * fe,
				RandomNanos:      base.RandomNanos,
				ActivePowerWatts: base.ActivePowerWatts,
			}
			if err := dev.Validate(); err != nil {
				return nil, err
			}
			savings := make([]string, 0, 2)
			for _, act := range Activations {
				ests, err := paperScaleEstimators(task, act)
				if err != nil {
					return nil, err
				}
				var apdsMs, mc50Ms float64
				for _, est := range ests {
					switch est.Name() {
					case "ApDeepSense":
						apdsMs = dev.TimeMillis(est.Cost())
					case "MCDrop-50":
						mc50Ms = dev.TimeMillis(est.Cost())
					}
				}
				savings = append(savings, fmt.Sprintf("%.1f%%", 100*(1-apdsMs/mc50Ms)))
			}
			tbl.AddRow(fmt.Sprintf("%.2g", ft), fmt.Sprintf("%.2g", fe), savings[0], savings[1])
		}
	}
	tbl.Notes = append(tbl.Notes,
		"savings = 1 − time(ApDeepSense)/time(MCDrop-50); paper reports 94.1% (ReLU) and 83.6% (Tanh)")
	return tbl, nil
}
