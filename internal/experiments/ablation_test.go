package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestAblationPieces(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationPieces("NYCommute", []int{3, 7})
	if err != nil {
		t.Fatalf("AblationPieces: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// Sup error decreases with more pieces; cost increases.
	sup3, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	sup7, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if sup7 >= sup3 {
		t.Errorf("sup error should drop: 3 pieces %v vs 7 pieces %v", sup3, sup7)
	}
	cost3, _ := strconv.ParseFloat(tbl.Rows[0][5], 64)
	cost7, _ := strconv.ParseFloat(tbl.Rows[1][5], 64)
	if cost7 <= cost3 {
		t.Errorf("cost should grow: 3 pieces %v vs 7 pieces %v", cost3, cost7)
	}
	// Classification task is rejected.
	if _, err := r.AblationPieces("HHAR", nil); !errors.Is(err, ErrConfig) {
		t.Errorf("HHAR err = %v, want ErrConfig", err)
	}
}

func TestAblationSoftmaxLink(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationSoftmaxLink([]int{50})
	if err != nil {
		t.Fatalf("AblationSoftmaxLink: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (mean-field + sampled-50)", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[0][0], "mean-field") {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
	// Mean-field and sampled accuracy should be close (within 5 points).
	accMF := parsePct(t, tbl.Rows[0][1])
	accS := parsePct(t, tbl.Rows[1][1])
	if diff := accMF - accS; diff > 5 || diff < -5 {
		t.Errorf("mean-field acc %v vs sampled acc %v: too far apart", accMF, accS)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestAblationVarianceBias(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.AblationVarianceBias("NYCommute", 5, 200)
	if err != nil {
		t.Fatalf("AblationVarianceBias: %v", err)
	}
	if len(tbl.Rows) != 2 { // relu + tanh
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		ratio, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse ratio %q: %v", row[1], err)
		}
		if ratio <= 0 || ratio > 5 {
			t.Errorf("%s: variance ratio %v implausible", row[0], ratio)
		}
	}
	if _, err := r.AblationVarianceBias("NYCommute", 0, 200); !errors.Is(err, ErrConfig) {
		t.Errorf("bad probes err = %v", err)
	}
}
