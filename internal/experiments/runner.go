package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/mcdrop"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/rdeepsense"
	"github.com/apdeepsense/apdeepsense/internal/train"

	"github.com/apdeepsense/apdeepsense/internal/core"
)

// Default hyper-parameters shared across tasks.
const (
	// defaultKeepProb is the dropout keep probability of the pre-trained
	// networks.
	defaultKeepProb = 0.9
	// zeroObsVar: estimators are constructed without a built-in
	// observation-noise floor; the evaluation harness tunes the τ⁻¹ floor
	// per estimator on the validation split (Gal-style grid search).
	zeroObsVar = 0.0
	// defaultLR is the Adam learning rate for all training runs.
	defaultLR = 1e-3
)

// Runner owns datasets, trained models, and the device model, and produces
// the paper's tables and figures. Create one with NewRunner; methods are
// safe for sequential use (the internal caches are guarded for concurrent
// reads but training is serialized).
type Runner struct {
	scale  Scale
	dir    string // model cache directory; empty disables caching
	device *edison.Device
	logf   func(format string, args ...any)

	mu     sync.Mutex
	data   map[string]*datasets.Dataset
	models map[string]*ModelSet
}

// ModelSet bundles the two models evaluated per (task, activation) cell:
// the pre-trained dropout network shared by ApDeepSense and MCDrop, and the
// retrained RDeepSense estimator.
type ModelSet struct {
	Task       string
	Activation nn.Activation
	// Dropout is the pre-trained dropout network.
	Dropout *nn.Network
	// RDS is the retrained RDeepSense baseline.
	RDS *rdeepsense.Estimator
}

// Option configures a Runner.
type Option func(*Runner)

// WithModelDir enables on-disk model caching in dir.
func WithModelDir(dir string) Option {
	return func(r *Runner) { r.dir = dir }
}

// WithDevice overrides the default Intel Edison device model.
func WithDevice(d *edison.Device) Option {
	return func(r *Runner) { r.device = d }
}

// WithLogf sets a progress logger.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(r *Runner) { r.logf = logf }
}

// NewRunner builds a Runner at the given scale.
func NewRunner(scale Scale, opts ...Option) (*Runner, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		scale:  scale,
		device: edison.NewEdison(),
		logf:   func(string, ...any) {},
		data:   make(map[string]*datasets.Dataset),
		models: make(map[string]*ModelSet),
	}
	for _, o := range opts {
		o(r)
	}
	if err := r.device.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.scale }

// Device returns the device cost model in use.
func (r *Runner) Device() *edison.Device { return r.device }

// Dataset generates (or returns the cached) dataset for a task.
func (r *Runner) Dataset(task string) (*datasets.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.data[task]; ok {
		return d, nil
	}
	spec, ok := taskSpecs[task]
	if !ok {
		return nil, fmt.Errorf("unknown task %q: %w", task, ErrConfig)
	}
	r.logf("generating %s dataset", task)
	d, err := spec.generate(r.scale.sizeFor(spec))
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", task, err)
	}
	r.data[task] = d
	return d, nil
}

// Models trains (or loads from cache) the model set for one (task,
// activation) cell.
func (r *Runner) Models(task string, act nn.Activation) (*ModelSet, error) {
	key := fmt.Sprintf("%s-%s", task, act)
	r.mu.Lock()
	if m, ok := r.models[key]; ok {
		r.mu.Unlock()
		return m, nil
	}
	r.mu.Unlock()

	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}

	ms := &ModelSet{Task: task, Activation: act}
	if err := r.loadOrTrainDropout(ms, d); err != nil {
		return nil, err
	}
	if err := r.loadOrTrainRDS(ms, d); err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.models[key] = ms
	r.mu.Unlock()
	return ms, nil
}

func (r *Runner) cachePath(task string, act nn.Activation, variant string) string {
	if r.dir == "" {
		return ""
	}
	return filepath.Join(r.dir, fmt.Sprintf("%s-%s-%s-%s.gob", task, act, variant, r.scale.Name))
}

func (r *Runner) loadOrTrainDropout(ms *ModelSet, d *datasets.Dataset) error {
	path := r.cachePath(ms.Task, ms.Activation, "dropout")
	if path != "" {
		if net, err := nn.LoadFile(path); err == nil {
			r.logf("loaded cached %s", path)
			ms.Dropout = net
			return nil
		}
	}
	net, err := nn.New(nn.Config{
		InputDim: d.InputDim, Hidden: r.scale.Hidden, OutputDim: d.OutputDim,
		Activation: ms.Activation, OutputActivation: nn.ActIdentity,
		KeepProb: defaultKeepProb, Seed: seedFor(ms.Task, ms.Activation, 1),
	})
	if err != nil {
		return fmt.Errorf("experiments: build dropout net: %w", err)
	}
	var loss train.Loss = train.MSE{}
	if d.Task == datasets.TaskClassification {
		loss = train.SoftmaxCrossEntropy{}
	}
	r.logf("training %s %s dropout net (%s)", ms.Task, ms.Activation, net.Summary())
	_, err = train.Fit(net, d.Train, d.Val, train.Config{
		Epochs: r.scale.Epochs, BatchSize: r.scale.BatchSize,
		Seed: seedFor(ms.Task, ms.Activation, 2),
		Loss: loss, Optimizer: train.NewAdam(defaultLR),
		WeightDecay: 1e-5, ClipNorm: 5,
		EarlyStopPatience: earlyStop(d),
		Logf:              r.logf,
	})
	if err != nil {
		return fmt.Errorf("experiments: train dropout net: %w", err)
	}
	ms.Dropout = net
	return r.maybeSave(net, path)
}

func (r *Runner) loadOrTrainRDS(ms *ModelSet, d *datasets.Dataset) error {
	path := r.cachePath(ms.Task, ms.Activation, "rds")
	task := rdeepsense.TaskRegression
	if d.Task == datasets.TaskClassification {
		task = rdeepsense.TaskClassification
	}
	if path != "" {
		if net, err := nn.LoadFile(path); err == nil {
			est, err := rdeepsense.FromNetwork(net, task, d.OutputDim)
			if err == nil {
				r.logf("loaded cached %s", path)
				ms.RDS = est
				return nil
			}
		}
	}
	cfg := rdeepsense.TrainConfig{
		Hidden: r.scale.Hidden, Activation: ms.Activation,
		KeepProb: defaultKeepProb,
		Epochs:   r.scale.Epochs, BatchSize: r.scale.BatchSize,
		LearningRate: defaultLR, Seed: seedFor(ms.Task, ms.Activation, 3),
	}
	r.logf("training %s %s RDeepSense net", ms.Task, ms.Activation)
	var (
		est *rdeepsense.Estimator
		err error
	)
	if task == rdeepsense.TaskRegression {
		est, err = rdeepsense.TrainRegression(d.Train, d.Val, d.InputDim, d.OutputDim, cfg)
	} else {
		est, err = rdeepsense.TrainClassification(d.Train, d.Val, d.InputDim, d.OutputDim, cfg)
	}
	if err != nil {
		return fmt.Errorf("experiments: train rdeepsense: %w", err)
	}
	ms.RDS = est
	return r.maybeSave(est.Network(), path)
}

func (r *Runner) maybeSave(net *nn.Network, path string) error {
	if path == "" {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("experiments: cache dir: %w", err)
	}
	if err := net.SaveFile(path); err != nil {
		return fmt.Errorf("experiments: cache model: %w", err)
	}
	r.logf("cached %s", path)
	return nil
}

// Estimators builds the full estimator grid of §IV-C for one model set:
// ApDeepSense, MCDrop-k for each k, and RDeepSense, in paper row order.
func (r *Runner) Estimators(ms *ModelSet) ([]core.Estimator, error) {
	out := make([]core.Estimator, 0, len(MCDropKs)+2)
	apds, err := core.NewApDeepSense(ms.Dropout, core.Options{}, zeroObsVar)
	if err != nil {
		return nil, fmt.Errorf("experiments: apdeepsense: %w", err)
	}
	out = append(out, apds)
	for _, k := range MCDropKs {
		mc, err := mcdrop.New(ms.Dropout, k, zeroObsVar, seedFor(ms.Task, ms.Activation, int64(10+k)))
		if err != nil {
			return nil, fmt.Errorf("experiments: mcdrop-%d: %w", k, err)
		}
		out = append(out, mc)
	}
	out = append(out, ms.RDS)
	return out, nil
}

// seedFor derives a stable seed from task, activation, and stream id.
func seedFor(task string, act nn.Activation, stream int64) int64 {
	var h int64 = 146959810
	for _, c := range task {
		h = h*31 + int64(c)
	}
	return h*1000 + int64(act)*100 + stream
}

func earlyStop(d *datasets.Dataset) int {
	if len(d.Val) == 0 {
		return 0
	}
	return 5
}
