package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/datasets"
	"github.com/apdeepsense/apdeepsense/internal/metrics"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/report"
	"github.com/apdeepsense/apdeepsense/internal/stats"
	"github.com/apdeepsense/apdeepsense/internal/tensor"
)

// AblationPieces sweeps the PWL piece count used to approximate Tanh and
// reports, per count: the sup-norm approximation error, the resulting test
// NLL/MAE on the given task's Tanh network, and the modeled Edison cost.
// It validates the paper's choice of 7 pieces: quality saturates while cost
// keeps growing linearly in P.
func (r *Runner) AblationPieces(task string, pieceCounts []int) (*report.Table, error) {
	if len(pieceCounts) == 0 {
		pieceCounts = []int{3, 5, 7, 9, 15}
	}
	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}
	if d.Task != datasets.TaskRegression {
		return nil, fmt.Errorf("piece ablation needs a regression task, got %s: %w", task, ErrConfig)
	}
	ms, err := r.Models(task, nn.ActTanh)
	if err != nil {
		return nil, err
	}

	tbl := &report.Table{
		Title:   fmt.Sprintf("Ablation: Tanh PWL piece count on the %s task (paper uses 7)", task),
		Headers: []string{"pieces", "sup-err", "MAE", "NLL", "NLL-raw", "Edison ms"},
	}
	for _, p := range pieceCounts {
		apds, err := core.NewApDeepSense(ms.Dropout, core.Options{TanhPieces: p}, 0)
		if err != nil {
			return nil, fmt.Errorf("ablation pieces=%d: %w", p, err)
		}
		res, err := r.Evaluate(apds, d, "tanh")
		if err != nil {
			return nil, err
		}
		supErr := tanhSupError(p)
		tbl.AddRow(
			fmt.Sprint(p),
			fmt.Sprintf("%.4f", supErr),
			fmt.Sprintf("%.2f", res.MAE),
			fmt.Sprintf("%.3f", res.NLL),
			fmt.Sprintf("%.1f", res.NLLRaw),
			fmt.Sprintf("%.2f", res.EdisonTimeMillis),
		)
	}
	tbl.Notes = append(tbl.Notes, "sup-err is the max |pwl - tanh| over [-6, 6]")
	return tbl, nil
}

// tanhSupError measures the PWL approximation's sup-norm error for p pieces.
func tanhSupError(p int) float64 {
	f, err := piecewise.Tanh(p)
	if err != nil {
		return -1
	}
	return f.SupError(math.Tanh, -6, 6, 4001)
}

// AblationSoftmaxLink compares the deterministic mean-field softmax link
// against logit sampling with varying sample counts on the classification
// task: accuracy, NLL, and the extra cost of sampling. It justifies the
// mean-field default.
func (r *Runner) AblationSoftmaxLink(samplesGrid []int) (*report.Table, error) {
	if len(samplesGrid) == 0 {
		samplesGrid = []int{10, 100, 1000}
	}
	d, err := r.Dataset("HHAR")
	if err != nil {
		return nil, err
	}
	ms, err := r.Models("HHAR", nn.ActReLU)
	if err != nil {
		return nil, err
	}
	prop, err := core.NewPropagator(ms.Dropout, core.Options{})
	if err != nil {
		return nil, err
	}

	tbl := &report.Table{
		Title:   "Ablation: classification link for ApDeepSense Gaussian logits (HHAR, ReLU)",
		Headers: []string{"link", "ACC", "NLL", "ECE"},
	}
	evalProbs := func(name string, probFn func(core.GaussianVec) (tensor.Vector, error)) error {
		probs := make([]tensor.Vector, len(d.Test))
		targets := make([]tensor.Vector, len(d.Test))
		for i, s := range d.Test {
			g, err := prop.Propagate(s.X)
			if err != nil {
				return err
			}
			if probs[i], err = probFn(g); err != nil {
				return err
			}
			targets[i] = s.Y
		}
		acc, err := metrics.Accuracy(probs, targets)
		if err != nil {
			return err
		}
		nll, err := metrics.CategoricalNLL(probs, targets)
		if err != nil {
			return err
		}
		ece, err := metrics.ECE(probs, targets, 10)
		if err != nil {
			return err
		}
		tbl.AddRow(name, fmt.Sprintf("%.2f%%", acc*100), fmt.Sprintf("%.3f", nll), fmt.Sprintf("%.3f", ece))
		return nil
	}

	if err := evalProbs("mean-field (default)", func(g core.GaussianVec) (tensor.Vector, error) {
		return core.MeanFieldSoftmax(g), nil
	}); err != nil {
		return nil, err
	}
	for _, n := range samplesGrid {
		rng := rand.New(rand.NewSource(77))
		n := n
		if err := evalProbs(fmt.Sprintf("sampled-%d", n), func(g core.GaussianVec) (tensor.Vector, error) {
			return core.SampledSoftmax(g, n, rng)
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// AblationVarianceBias quantifies the diagonal-covariance bias of
// ApDeepSense on the trained networks: the mean ratio of ApDeepSense's
// closed-form output variance to a long-run MCDrop estimate, per task and
// activation. A ratio below 1 means the layer-wise independence assumption
// loses variance on trained weights — the deviation discussed in
// EXPERIMENTS.md.
func (r *Runner) AblationVarianceBias(task string, probes, passes int) (*report.Table, error) {
	if probes < 1 || passes < 10 {
		return nil, fmt.Errorf("variance bias: probes=%d passes=%d: %w", probes, passes, ErrConfig)
	}
	d, err := r.Dataset(task)
	if err != nil {
		return nil, err
	}
	if probes > len(d.Test) {
		probes = len(d.Test)
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Ablation: ApDeepSense variance vs long-run MCDrop on trained %s networks", task),
		Headers: []string{"activation", "mean var ratio (ApDS/MC)", "mean |z| of mean diff"},
	}
	for _, act := range Activations {
		ms, err := r.Models(task, act)
		if err != nil {
			return nil, err
		}
		prop, err := core.NewPropagator(ms.Dropout, core.Options{})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(31))
		var ratioSum, zSum float64
		var count int
		for i := 0; i < probes; i++ {
			s := d.Test[i]
			g, err := prop.Propagate(s.X)
			if err != nil {
				return nil, err
			}
			acc := stats.NewVecWelford(ms.Dropout.OutputDim())
			for p := 0; p < passes; p++ {
				y, err := ms.Dropout.ForwardSample(s.X, rng)
				if err != nil {
					return nil, err
				}
				acc.Add(y)
			}
			mcMean := acc.Mean()
			mcVar := acc.Variance()
			for j := range mcVar {
				if mcVar[j] <= 1e-12 {
					continue
				}
				ratioSum += g.Var[j] / mcVar[j]
				zSum += math.Abs(g.Mean[j]-mcMean[j]) / math.Sqrt(mcVar[j]/float64(passes))
				count++
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("variance bias: no usable probes for %s: %w", act, ErrConfig)
		}
		tbl.AddRow(act.String(),
			fmt.Sprintf("%.3f", ratioSum/float64(count)),
			fmt.Sprintf("%.2f", zSum/float64(count)),
		)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("%d probe inputs x %d MCDrop passes; ratio < 1 quantifies the diagonal-covariance variance loss", probes, passes))
	return tbl, nil
}
