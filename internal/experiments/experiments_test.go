package experiments

import (
	"errors"
	"strings"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/edison"
	"github.com/apdeepsense/apdeepsense/internal/nn"
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(QuickScale, WithModelDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	return r
}

func TestNewRunnerValidation(t *testing.T) {
	bad := []Scale{
		{},
		{Name: "x", Hidden: nil, Epochs: 1, BatchSize: 1, DataFraction: 1},
		{Name: "x", Hidden: []int{8}, Epochs: 0, BatchSize: 1, DataFraction: 1},
		{Name: "x", Hidden: []int{8}, Epochs: 1, BatchSize: 1, DataFraction: 0},
		{Name: "x", Hidden: []int{8}, Epochs: 1, BatchSize: 1, DataFraction: 1.5},
	}
	for i, s := range bad {
		if _, err := NewRunner(s); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestDatasetCachingAndUnknownTask(t *testing.T) {
	r := quickRunner(t)
	d1, err := r.Dataset("NYCommute")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Dataset("NYCommute")
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("dataset not cached")
	}
	if _, err := r.Dataset("nope"); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown task err = %v", err)
	}
}

func TestModelsTrainAndDiskCache(t *testing.T) {
	dir := t.TempDir()
	r1, err := NewRunner(QuickScale, WithModelDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := r1.Models("NYCommute", nn.ActReLU)
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	if ms.Dropout == nil || ms.RDS == nil {
		t.Fatal("missing models")
	}
	if ms.Dropout.InputDim() != 5 || ms.Dropout.OutputDim() != 1 {
		t.Errorf("dropout dims %d/%d", ms.Dropout.InputDim(), ms.Dropout.OutputDim())
	}
	// RDeepSense regression head has twice the outputs.
	if ms.RDS.Network().OutputDim() != 2 {
		t.Errorf("rds output dim %d, want 2", ms.RDS.Network().OutputDim())
	}

	// A fresh runner sharing the cache dir must load, not retrain: verify by
	// checking the weights are bit-identical.
	r2, err := NewRunner(QuickScale, WithModelDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := r2.Models("NYCommute", nn.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	w1 := ms.Dropout.Layers()[0].W
	w2 := ms2.Dropout.Layers()[0].W
	if !w1.Equal(w2, 0) {
		t.Error("cached model differs from trained model")
	}
}

func TestEstimatorGridOrder(t *testing.T) {
	r := quickRunner(t)
	ms, err := r.Models("NYCommute", nn.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	ests, err := r.Estimators(ms)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ApDeepSense", "MCDrop-3", "MCDrop-5", "MCDrop-10", "MCDrop-30", "MCDrop-50", "RDeepSense"}
	if len(ests) != len(want) {
		t.Fatalf("got %d estimators, want %d", len(ests), len(want))
	}
	for i, e := range ests {
		if e.Name() != want[i] {
			t.Errorf("estimator %d = %s, want %s", i, e.Name(), want[i])
		}
	}
}

func TestTableRegression(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.Table(2) // NYCommute: cheapest regression task
	if err != nil {
		t.Fatalf("Table(2): %v", err)
	}
	if len(tbl.Rows) != 14 { // 2 activations x 7 estimators
		t.Fatalf("rows = %d, want 14", len(tbl.Rows))
	}
	out, err := tbl.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"DNN-ReLU-ApDeepSense", "DNN-Tanh-MCDrop-50", "DNN-ReLU-RDeepSense"} {
		if !strings.Contains(out, label) {
			t.Errorf("table missing row %q", label)
		}
	}
	if _, err := tbl.CSV(); err != nil {
		t.Errorf("CSV: %v", err)
	}
}

func TestTableClassification(t *testing.T) {
	r := quickRunner(t)
	tbl, err := r.Table(4) // HHAR
	if err != nil {
		t.Fatalf("Table(4): %v", err)
	}
	if len(tbl.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Headers[1], "ACC") {
		t.Errorf("classification table headers = %v", tbl.Headers)
	}
}

func TestTableBadNumber(t *testing.T) {
	r := quickRunner(t)
	if _, err := r.Table(5); !errors.Is(err, ErrConfig) {
		t.Errorf("Table(5) err = %v, want ErrConfig", err)
	}
	if _, err := r.Table(0); !errors.Is(err, ErrConfig) {
		t.Errorf("Table(0) err = %v, want ErrConfig", err)
	}
}

func TestFigureTimeEnergyShape(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Figure(3) // NYCommute time/energy: no training needed
	if err != nil {
		t.Fatalf("Figure(3): %v", err)
	}
	if len(fig.Charts) != 2 {
		t.Fatalf("charts = %d, want 2 (time + energy)", len(fig.Charts))
	}
	if len(fig.Charts[0].Bars) != 12 { // 2 acts x (ApDS + 5 MCDrop)
		t.Fatalf("bars = %d, want 12", len(fig.Charts[0].Bars))
	}

	// The headline system claim: ApDeepSense must be far cheaper than
	// MCDrop-50, with cost ordering ApDS < MCDrop-3 ... < MCDrop-50 for
	// ReLU, and the Tanh ApDS costlier than ReLU ApDS (7 pieces vs 2).
	bars := map[string]float64{}
	for _, b := range fig.Charts[0].Bars {
		bars[b.Label] = b.Value
	}
	apdsReLU := bars["DNN-ReLU-ApDeepSense"]
	apdsTanh := bars["DNN-Tanh-ApDeepSense"]
	mc50ReLU := bars["DNN-ReLU-MCDrop-50"]
	mc50Tanh := bars["DNN-Tanh-MCDrop-50"]
	if apdsReLU <= 0 || mc50ReLU <= 0 {
		t.Fatal("missing bars")
	}
	if saving := 1 - apdsReLU/mc50ReLU; saving < 0.85 || saving > 0.98 {
		t.Errorf("ReLU time saving = %.3f, want ≈ 0.94 (paper)", saving)
	}
	if saving := 1 - apdsTanh/mc50Tanh; saving < 0.70 || saving > 0.95 {
		t.Errorf("Tanh time saving = %.3f, want ≈ 0.84 (paper)", saving)
	}
	if apdsTanh <= apdsReLU {
		t.Error("Tanh ApDeepSense should cost more than ReLU (7 vs 2 pieces)")
	}
	if bars["DNN-ReLU-MCDrop-3"] >= bars["DNN-ReLU-MCDrop-50"] {
		t.Error("MCDrop cost should grow with k")
	}
	// Energy chart must be proportional to time (single power constant).
	if fig.Charts[1].Bars[0].Value <= 0 {
		t.Error("energy bars empty")
	}
	if _, err := fig.Charts[0].Render(40); err != nil {
		t.Errorf("render: %v", err)
	}
}

func TestFigureTradeoff(t *testing.T) {
	r := quickRunner(t)
	fig, err := r.Figure(7) // NYCommute tradeoff
	if err != nil {
		t.Fatalf("Figure(7): %v", err)
	}
	if fig.Scatter == nil {
		t.Fatal("missing scatter")
	}
	if len(fig.Scatter.Series) != 4 { // (MCDrop + ApDS) x 2 activations
		t.Fatalf("series = %d, want 4", len(fig.Scatter.Series))
	}
	for _, s := range fig.Scatter.Series {
		if strings.Contains(s.Name, "MCDrop") && len(s.X) != 5 {
			t.Errorf("MCDrop series %q has %d points, want 5", s.Name, len(s.X))
		}
		if strings.Contains(s.Name, "ApDeepSense") && len(s.X) != 1 {
			t.Errorf("ApDS series %q has %d points, want 1", s.Name, len(s.X))
		}
	}
	if _, err := fig.Scatter.Render(60, 14); err != nil {
		t.Errorf("render: %v", err)
	}
}

func TestFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 1 trains a 20-layer network")
	}
	r := quickRunner(t)
	fig, err := r.Figure(1)
	if err != nil {
		t.Fatalf("Figure(1): %v", err)
	}
	if !strings.Contains(fig.Text, "layer 12") || !strings.Contains(fig.Text, "layer 18") {
		t.Error("figure 1 should show layers 12 and 18")
	}
	if fig.Data == nil || len(fig.Data.Rows) != 2 {
		t.Fatal("figure 1 data table should have 2 rows")
	}
	// The Gaussian fit must be decent (TV distance < 0.25) — the empirical
	// claim of §III-A.
	for _, row := range fig.Data.Rows {
		tv := row[len(row)-1]
		if !(strings.HasPrefix(tv, "0.0") || strings.HasPrefix(tv, "0.1") || strings.HasPrefix(tv, "0.2")) {
			t.Errorf("hidden-unit distribution far from Gaussian: TV = %s", tv)
		}
	}
}

func TestFigureBadNumber(t *testing.T) {
	r := quickRunner(t)
	for _, n := range []int{0, 10, -1} {
		if _, err := r.Figure(n); !errors.Is(err, ErrConfig) {
			t.Errorf("Figure(%d) err = %v, want ErrConfig", n, err)
		}
	}
}

func TestEvaluateCellShapes(t *testing.T) {
	r := quickRunner(t)
	results, err := r.EvaluateCell("NYCommute", "relu")
	if err != nil {
		t.Fatalf("EvaluateCell: %v", err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d, want 7", len(results))
	}
	for _, res := range results {
		if res.MAE <= 0 {
			t.Errorf("%s: MAE = %v, want > 0", res.Estimator, res.MAE)
		}
		if res.EdisonTimeMillis <= 0 || res.EdisonEnergyMillijoules <= 0 {
			t.Errorf("%s: non-positive modeled cost", res.Estimator)
		}
		if res.Coverage90 < 0 || res.Coverage90 > 1 {
			t.Errorf("%s: coverage %v", res.Estimator, res.Coverage90)
		}
	}
	// ApDeepSense's modeled cost must be below MCDrop-50's.
	if results[0].EdisonTimeMillis >= results[5].EdisonTimeMillis {
		t.Errorf("ApDS %v ms >= MCDrop-50 %v ms", results[0].EdisonTimeMillis, results[5].EdisonTimeMillis)
	}
}

func TestRunnerAccessorsAndOptions(t *testing.T) {
	logged := false
	dev := edison.NewEdison()
	r, err := NewRunner(QuickScale,
		WithDevice(dev),
		WithLogf(func(string, ...any) { logged = true }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale().Name != "quick" {
		t.Errorf("Scale = %q", r.Scale().Name)
	}
	if r.Device() != dev {
		t.Error("WithDevice not applied")
	}
	if _, err := r.Dataset("NYCommute"); err != nil {
		t.Fatal(err)
	}
	if !logged {
		t.Error("WithLogf not applied")
	}
	// An invalid device surfaces at construction.
	if _, err := NewRunner(QuickScale, WithDevice(&edison.Device{})); err == nil {
		t.Error("expected error for invalid device")
	}
}

func TestRoman(t *testing.T) {
	cases := map[int]string{1: "I", 2: "II", 3: "III", 4: "IV", 7: "7"}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestModelCacheDisabled(t *testing.T) {
	// Without WithModelDir, cachePath is empty and training is in-memory
	// only — still functional.
	r, err := NewRunner(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := r.Models("NYCommute", nn.ActReLU)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Dropout == nil {
		t.Error("no model without cache dir")
	}
}
