package proptest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
	"github.com/apdeepsense/apdeepsense/internal/piecewise"
	"github.com/apdeepsense/apdeepsense/internal/stats"
)

// fuzzMoment maps an arbitrary fuzzed float64 into a hostile-but-finite
// moment value, preserving magnitude structure (the fuzzer can reach deep
// tails, sub-floor sigmas, and huge means) while excluding NaN/Inf and
// magnitudes past 1e8, where rectified moments themselves overflow
// meaningful comparison.
func fuzzMoment(raw float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 0
	}
	if math.Abs(raw) > 1e8 {
		return math.Mod(raw, 1e8)
	}
	return raw
}

// phi0 is the standard normal density at zero — the sharp bound on how far
// a rectified mean can sit above max(0, mu).
const phi0 = 0.3989422804014327

// FuzzExactVsOracle fuzzes the exact rectifier closed forms on raw (mu,
// sigma) pairs — including |z| > 8 deep tails and sub-SigmaFloor variances
// the quadrature oracle cannot resolve. Analytical invariants are enforced
// everywhere; where the quadrature oracle is trustworthy (moderate z, sane
// sigma) the closed forms must also match it to the RelTight contract.
func FuzzExactVsOracle(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(-9.0, 1.0)      // deep tail: PWL loses this entirely
	f.Add(12.0, 1.0)      // deep positive tail
	f.Add(1.0, 1e-300)    // sub-floor sigma: point-mass shortcut
	f.Add(-1e6, 1e-3)     // extreme standardization
	f.Add(1e-300, 1e-300) // denormal territory
	f.Add(-2.5, 97.0)     // bulk
	f.Fuzz(func(t *testing.T, muRaw, sigmaRaw float64) {
		mu := fuzzMoment(muRaw)
		sigma := math.Abs(fuzzMoment(sigmaRaw))

		relu := piecewise.ReLU()
		leaky := piecewise.LeakyReLU(nn.LeakyAlpha)
		exactR, err := core.NewExactActKernel(relu)
		if err != nil {
			t.Fatal(err)
		}
		exactL, err := core.NewExactActKernel(leaky)
		if err != nil {
			t.Fatal(err)
		}
		bounds := make([]stats.Boundary, exactR.NumBounds())
		pms := make([]stats.PartialMoments, exactR.NumBounds())

		mR, vR := exactR.Moments(mu, sigma*sigma, bounds, pms)
		mL, vL := exactL.Moments(mu, sigma*sigma, bounds, pms)

		// Analytical invariants — valid for every finite (mu, sigma),
		// including regions no quadrature can certify.
		for _, c := range []struct {
			name     string
			m, v     float64
			mLo, mHi float64
			vHi      float64
		}{
			{"relu", mR, vR, math.Max(0, mu), math.Max(0, mu) + phi0*sigma, sigma * sigma},
			{"leaky", mL, vL,
				nn.LeakyAlpha*mu + (1-nn.LeakyAlpha)*math.Max(0, mu),
				nn.LeakyAlpha*mu + (1-nn.LeakyAlpha)*(math.Max(0, mu)+phi0*sigma),
				sigma * sigma},
		} {
			if math.IsNaN(c.m) || math.IsInf(c.m, 0) || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
				t.Fatalf("%s(mu=%v sigma=%v): non-finite moments (%v, %v)", c.name, mu, sigma, c.m, c.v)
			}
			slack := 1e-12 * (math.Abs(mu) + sigma + 1)
			if c.m < c.mLo-slack || c.m > c.mHi+slack {
				t.Errorf("%s(mu=%v sigma=%v): mean %v outside [%v, %v]", c.name, mu, sigma, c.m, c.mLo, c.mHi)
			}
			if c.v < 0 || c.v > c.vHi*(1+1e-12)+1e-300 {
				t.Errorf("%s(mu=%v sigma=%v): var %v outside [0, %v]", c.name, mu, sigma, c.v, c.vHi)
			}
		}

		// Quadrature cross-check, restricted to where the oracle itself is
		// accurate: moderate standardization and sigma comfortably above
		// the point-mass floor.
		z := mu / sigma
		if sigma < 1e-12 || sigma > 1e6 || math.Abs(mu) > 1e6 || math.Abs(z) > 6 {
			return
		}
		reluEval := func(x float64) float64 { return math.Max(0, x) }
		leakyEval := func(x float64) float64 {
			if x < 0 {
				return nn.LeakyAlpha * x
			}
			return x
		}
		for _, c := range []struct {
			name string
			eval func(float64) float64
			m, v float64
		}{
			{"relu", reluEval, mR, vR},
			{"leaky", leakyEval, mL, vL},
		} {
			wm, wv := oracle.ActMoments(c.eval, []float64{0}, mu, sigma*sigma)
			scale := math.Abs(mu) + sigma
			if d := math.Abs(c.m - wm); d > RelTight*math.Max(math.Abs(wm), scale*1e-3) {
				t.Errorf("%s(mu=%v sigma=%v): mean %v vs quadrature %v", c.name, mu, sigma, c.m, wm)
			}
			if d := math.Abs(c.v - wv); d > RelTight*math.Max(wv, scale*scale*1e-3) {
				t.Errorf("%s(mu=%v sigma=%v): var %v vs quadrature %v", c.name, mu, sigma, c.v, wv)
			}
		}
	})
}

// FuzzConvVsOracle drives the full conv fast path — strided moment
// recursion, pooling, dense head, mixed exact/PWL layer backends — against
// the sequence oracle on fuzzer-chosen networks and input scales, under the
// same no-hand-tuned-epsilon contract as the dense target.
func FuzzConvVsOracle(f *testing.F) {
	f.Add(uint64(1), 1.0)
	f.Add(uint64(3), 0.0)
	f.Add(uint64(7), 0.5)
	f.Add(uint64(11), 0.25)
	f.Add(uint64(20260808), 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, rawScale float64) {
		scale := fuzzScale(rawScale)
		rng := rand.New(rand.NewSource(int64(seed)))
		net, steps := GenConvNet(rng)
		ref, err := oracle.NewConvRef(net, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		x := GenSeq(rng, steps, net.Convs()[0].InCh)
		for i := range x.Data {
			x.Data[i] *= scale
		}
		got, err := net.PropagateMoments(x)
		if err != nil {
			t.Fatal(err)
		}
		want, cond, err := ref.ForwardCond(x)
		if err != nil {
			t.Fatal(err)
		}
		if !finite(want) {
			t.Skip("oracle output not finite: outside the comparison domain")
		}
		if err := CompareVec(got, want, RelTight, cond); err != nil {
			t.Errorf("seed %d scale %v: conv vs oracle: %v", seed, scale, err)
		}
	})
}
