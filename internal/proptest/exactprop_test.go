package proptest

import (
	"math/rand"
	"testing"

	"github.com/apdeepsense/apdeepsense/internal/compile"
	"github.com/apdeepsense/apdeepsense/internal/core"
	"github.com/apdeepsense/apdeepsense/internal/nn"
	"github.com/apdeepsense/apdeepsense/internal/oracle"
)

// genRectNet draws a small all-rectifier network: exactly the family where
// the exact closed-form backend and the 2-piece PWL backend propagate the
// same mathematical function and differ only in numerical formulation.
func genRectNet(rng *rand.Rand) *nn.Network {
	acts := []nn.Activation{nn.ActReLU, nn.ActLeakyReLU}
	hidden := make([]int, 1+rng.Intn(2))
	for i := range hidden {
		hidden[i] = 1 + rng.Intn(10)
	}
	keep := 0.5 + 0.5*rng.Float64()
	if rng.Intn(4) == 0 {
		keep = 1
	}
	outActs := []nn.Activation{nn.ActIdentity, acts[rng.Intn(2)]}
	net, err := nn.New(nn.Config{
		InputDim:         1 + rng.Intn(6),
		Hidden:           hidden,
		OutputDim:        1 + rng.Intn(4),
		Activation:       acts[rng.Intn(2)],
		OutputActivation: outActs[rng.Intn(2)],
		KeepProb:         keep,
		Seed:             rng.Int63(),
	})
	if err != nil {
		panic("proptest: rectifier net generator: " + err.Error())
	}
	return net
}

// TestExactVsOracleForcedModes holds BOTH activation backends — forced
// exact and forced PWL — on the same rectifier networks to the same
// quadrature oracle and conditioning budget. The two backends compute the
// same function (ReLU is piecewise linear, so the 2-piece fit is not an
// approximation), so each must independently satisfy the RelTight contract.
func TestExactVsOracleForcedModes(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for iter := 0; iter < 80; iter++ {
		net := genRectNet(rng)
		x := GenInput(rng, net.InputDim())
		g := GenGaussian(rng, net.InputDim())
		for _, mode := range []nn.MomentMode{nn.MomentsExact, nn.MomentsPWL} {
			opts := core.Options{ActivationMoments: mode}
			prop, err := core.NewPropagator(net, opts)
			if err != nil {
				t.Fatalf("iter %d mode %v: %v", iter, mode, err)
			}
			ref, err := oracle.NewRef(net, opts, false)
			if err != nil {
				t.Fatalf("iter %d mode %v: %v", iter, mode, err)
			}
			got, err := prop.Propagate(x)
			if err != nil {
				t.Fatal(err)
			}
			want, cond, err := ref.ForwardCond(x)
			if err != nil {
				t.Fatal(err)
			}
			if finite(want) {
				if err := CompareVec(got, want, RelTight, cond); err != nil {
					t.Errorf("iter %d mode %v Propagate: %v", iter, mode, err)
				}
			}
			gotFrom, err := prop.PropagateFrom(g.Clone())
			if err != nil {
				t.Fatal(err)
			}
			wantFrom, condFrom, err := ref.ForwardFromCond(g)
			if err != nil {
				t.Fatal(err)
			}
			if finite(wantFrom) {
				if err := CompareVec(gotFrom, wantFrom, RelTight, condFrom); err != nil {
					t.Errorf("iter %d mode %v PropagateFrom: %v", iter, mode, err)
				}
			}
		}
	}
}

// TestExactBitIdenticalAcrossPaths pins the acceptance bit-identity
// contract for the exact backend: interpreted per-sample, interpreted
// batch, and compiled batch must produce identical bits on rectifier nets.
func TestExactBitIdenticalAcrossPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 25; iter++ {
		net := genRectNet(rng)
		prop, err := core.NewPropagator(net, core.Options{ActivationMoments: nn.MomentsExact})
		if err != nil {
			t.Fatal(err)
		}
		batch := 1 + rng.Intn(9)
		in := core.NewGaussianBatch(batch, net.InputDim())
		for r := 0; r < batch; r++ {
			g := GenGaussian(rng, net.InputDim())
			copy(in.Mean.Row(r), g.Mean)
			copy(in.Var.Row(r), g.Var)
		}

		ref, err := prop.PropagateBatchReference(in)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < batch; r++ {
			g := core.GaussianVec{Mean: in.Mean.Row(r), Var: in.Var.Row(r)}
			seq, err := prop.PropagateFrom(g.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if err := CompareBits(ref.Row(r), seq); err != nil {
				t.Errorf("iter %d row %d: batch vs sequential: %v", iter, r, err)
			}
		}

		pg, err := compile.Compile(prop, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := pg.Warm(prop); err != nil {
			t.Fatal(err)
		}
		prop.SetCompiled(pg)
		compiled, err := prop.PropagateBatchFrom(in)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < batch; r++ {
			if err := CompareBits(compiled.Row(r), ref.Row(r)); err != nil {
				t.Errorf("iter %d row %d: compiled vs interpreted: %v", iter, r, err)
			}
		}
	}
}
